package main

// The overload experiment: a closed-loop saturation harness for the
// serving layer (internal/serve). Mixed register/match traffic is driven
// at 1x, 2x and 4x of the read pool's capacity against a family-corpus
// repository; each cell records offered load, goodput, shed (429-class)
// rejections, degraded rankings and the p50/p99 latency of successful
// requests — the p99-vs-throughput knee admission control exists to
// flatten. A separate cache cell measures the warm-over-cold speedup of
// the singleflight match cache, and an identity pass asserts the cached,
// uncached and degraded paths return bit-identical rankings (the degraded
// one under its reported, shrunken candidate budget). Results merge into
// BENCH_cupid.json under "overload".

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// Overload workload shape. Capacity is defined by the read pool: slots
// default to the match worker count, so "1x load" means one closed-loop
// client per slot. Writes churn a bounded set of names so the corpus
// (and with it the per-match cost) stays comparable across cells.
const (
	overloadCorpus    = 200
	overloadTopK      = 10
	overloadQueueWait = 50 * time.Millisecond
	overloadChurn     = 64 // register ops cycle through this many names
	registerEvery     = 10 // 1 register per 10 requests (10% writes)
)

// OverloadCell is one load level of the saturation sweep.
type OverloadCell struct {
	// LoadX is the offered load as a multiple of capacity (closed-loop
	// workers per read slot).
	LoadX   int `json:"load_x"`
	Workers int `json:"workers"`
	// Offered counts every request issued; Succeeded the ones answered;
	// Shed the 429-class rejections (queue full or queue wait over the
	// latency target); Failed any other error (must be zero).
	Offered   int64 `json:"offered"`
	Succeeded int64 `json:"succeeded"`
	Shed      int64 `json:"shed"`
	Failed    int64 `json:"failed"`
	// Degraded counts successful rankings that ran under a shrunken
	// candidate budget (read-pool saturation at or past the threshold).
	Degraded int64 `json:"degraded"`
	// GoodputRPS is successful requests per second over the window;
	// P50MS/P99MS the latency percentiles of those successes.
	GoodputRPS float64 `json:"goodput_rps"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
}

// OverloadPoint is the overload experiment's record in BENCH_cupid.json.
type OverloadPoint struct {
	Corpus      int     `json:"corpus"`
	Slots       int     `json:"slots"`
	QueueWaitMS int64   `json:"queue_wait_ms"`
	WindowMS    int64   `json:"window_ms"`
	RegisterPct float64 `json:"register_pct"`
	// Cells holds the 1x/2x/4x sweep (caching disabled, so the knee
	// reflects admission and scoring, not repeated-query absorption).
	Cells []OverloadCell `json:"cells"`
	// Cache cell: mean ns for a batch ranking computed fresh (cold)
	// versus served from the warm cache, and their ratio (gated >= 10x).
	ColdNsPerOp  int64   `json:"cold_ns_per_op"`
	WarmNsPerOp  int64   `json:"warm_ns_per_op"`
	CacheSpeedup float64 `json:"cache_speedup"`
}

// percentileMS returns the p-quantile of lats in milliseconds.
func percentileMS(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(p * float64(len(lats)-1))
	return float64(lats[idx].Nanoseconds()) / 1e6
}

// overloadSpec is the retrieval mode every harness match uses: indexed
// candidates under the default budgets, like a default-flag cupidd.
func overloadSpec() serve.MatchSpec {
	return serve.MatchSpec{
		Retrieval: registry.StrategyIndexed,
		TopK:      overloadTopK,
		Prune:     registry.DefaultPruneOptions(),
		Index:     registry.DefaultIndexOptions(),
	}
}

// runOverloadCell drives `workers` closed-loop clients (each issues its
// next request as soon as the previous one resolves) for the window.
// Every registerEvery-th request is a write: admitted through the write
// pool, committed into the registry under a churn name, cache
// invalidated — exactly the server's mutation sequence.
func runOverloadCell(front *serve.Frontend, probes []*core.Prepared, reserve []*model.Schema, workers int, window time.Duration) (OverloadCell, error) {
	cell := OverloadCell{Workers: workers}
	spec := overloadSpec()
	var (
		offered, succeeded, shed, failed, degraded atomic.Int64
		regSeq                                     atomic.Int64
		mu                                         sync.Mutex
		lats                                       []time.Duration
		firstErr                                   error
	)
	deadline := time.Now().Add(window)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 256)
			reg := front.Registry()
			for seq := id; time.Now().Before(deadline); seq += workers {
				offered.Add(1)
				begin := time.Now()
				var err error
				if seq%registerEvery == 0 {
					var release func()
					release, err = front.AcquireWrite(context.Background())
					if err == nil {
						n := int(regSeq.Add(1))
						_, _, err = reg.Register(fmt.Sprintf("churn-%d", n%overloadChurn), reserve[n%len(reserve)])
						front.Invalidate()
						release()
					}
				} else {
					var res serve.Result
					res, err = front.MatchBatch(context.Background(), probes[seq%len(probes)], spec)
					if err == nil && res.Stats.Degraded {
						degraded.Add(1)
					}
				}
				switch {
				case err == nil:
					succeeded.Add(1)
					local = append(local, time.Since(begin))
				case errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrQueueWait):
					shed.Add(1)
				default:
					failed.Add(1)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return cell, fmt.Errorf("overload cell (%d workers): unexpected request error: %w", workers, firstErr)
	}
	cell.Offered = offered.Load()
	cell.Succeeded = succeeded.Load()
	cell.Shed = shed.Load()
	cell.Failed = failed.Load()
	cell.Degraded = degraded.Load()
	cell.GoodputRPS = float64(cell.Succeeded) / elapsed.Seconds()
	cell.P50MS = percentileMS(lats, 0.50)
	cell.P99MS = percentileMS(lats, 0.99)
	return cell, nil
}

// overloadRegistry builds the harness repository: overloadCorpus family
// schemas registered, per-family probes prepared, and a reserve of
// distinct schemas for the write mix.
func overloadRegistry(cfg core.Config) (*registry.Registry, []*core.Prepared, []*model.Schema, error) {
	reg, err := registry.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: overloadCorpus / workloads.NumFamilies(), Seed: 11})
	for _, s := range corpus {
		if _, _, err := reg.Register(s.Name, s); err != nil {
			return nil, nil, nil, err
		}
	}
	probes := make([]*core.Prepared, workloads.NumFamilies())
	for fam := range probes {
		p, err := reg.Matcher().Prepare(workloads.FamilyProbe(fam, 42))
		if err != nil {
			return nil, nil, nil, err
		}
		probes[fam] = p
	}
	reserve := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: overloadChurn / workloads.NumFamilies(), Seed: 99})
	return reg, probes, reserve, nil
}

// runCacheCell measures the cold-vs-warm cost of a batch ranking through
// a cache-enabled frontend: cold is the mean first-computation cost over
// the probe set, warm the mean cost once every probe's ranking is
// resident (pure cache hits, admission bypassed).
func runCacheCell(reg *registry.Registry, probes []*core.Prepared) (coldNs, warmNs int64, err error) {
	front := serve.NewFrontend(reg, serve.Options{
		CacheCapacity: 1024,
		MatchDeadline: time.Minute,
	})
	spec := overloadSpec()
	start := time.Now()
	for _, p := range probes {
		if _, err := front.MatchBatch(context.Background(), p, spec); err != nil {
			return 0, 0, err
		}
	}
	coldNs = time.Since(start).Nanoseconds() / int64(len(probes))
	const warmRounds = 200
	start = time.Now()
	for i := 0; i < warmRounds; i++ {
		res, err := front.MatchBatch(context.Background(), probes[i%len(probes)], spec)
		if err != nil {
			return 0, 0, err
		}
		if !res.Cached {
			return 0, 0, fmt.Errorf("warm cache cell: request %d recomputed (cache miss) despite no mutation", i)
		}
	}
	warmNs = time.Since(start).Nanoseconds() / warmRounds
	return coldNs, warmNs, nil
}

// rankingIdentity renders a ranking as a comparable string (entry name +
// full-precision score, the same identity the registry tests use).
func rankingIdentity(ranked []registry.Ranked) string {
	out := ""
	for _, rk := range ranked {
		out += fmt.Sprintf("%s:%.17g;", rk.Entry.Name, rk.Score)
	}
	return out
}

// overloadIdentity asserts the serving layer never changes what a caller
// sees: cached, coalesced and uncached rankings are bit-identical to the
// registry's own, and a degraded ranking equals the registry run under
// the halved budget its RetrievalStats reports.
func overloadIdentity(reg *registry.Registry, probes []*core.Prepared) error {
	spec := overloadSpec()
	probe := probes[3%len(probes)]
	direct, _, err := reg.MatchIndexed(probe, spec.TopK, spec.Index)
	if err != nil {
		return err
	}
	want := rankingIdentity(direct)

	// Cached path: cold fill, then a warm hit; both must equal direct.
	cached := serve.NewFrontend(reg, serve.Options{CacheCapacity: 64, MatchDeadline: time.Minute})
	cold, err := cached.MatchBatch(context.Background(), probe, spec)
	if err != nil {
		return err
	}
	warm, err := cached.MatchBatch(context.Background(), probe, spec)
	if err != nil {
		return err
	}
	if !warm.Cached {
		return fmt.Errorf("overload identity: repeat ranking was not a cache hit")
	}
	if got := rankingIdentity(cold.Ranked); got != want {
		return fmt.Errorf("overload identity: cold frontend ranking differs from the registry's\n got %s\nwant %s", got, want)
	}
	if got := rankingIdentity(warm.Ranked); got != want {
		return fmt.Errorf("overload identity: cached ranking differs from the registry's\n got %s\nwant %s", got, want)
	}

	// Uncached path (cache disabled) must also equal direct.
	uncached := serve.NewFrontend(reg, serve.Options{MatchDeadline: time.Minute})
	plain, err := uncached.MatchBatch(context.Background(), probe, spec)
	if err != nil {
		return err
	}
	if plain.Cached {
		return fmt.Errorf("overload identity: cache-disabled frontend served a cache hit")
	}
	if got := rankingIdentity(plain.Ranked); got != want {
		return fmt.Errorf("overload identity: uncached ranking differs from the registry's\n got %s\nwant %s", got, want)
	}

	// Degraded path: a one-slot frontend with the threshold at 0.5 is
	// saturated by its own request, so the ranking runs under the halved
	// budget — and must equal the registry run under that same budget.
	degradedFront := serve.NewFrontend(reg, serve.Options{
		Read:          serve.PoolOptions{Slots: 1, Queue: 4, MaxWait: time.Minute},
		MatchDeadline: time.Minute,
		DegradeAt:     0.5,
	})
	deg, err := degradedFront.MatchBatch(context.Background(), probe, spec)
	if err != nil {
		return err
	}
	if !deg.Stats.Degraded {
		return fmt.Errorf("overload identity: saturated one-slot frontend did not degrade")
	}
	halved := spec.Index
	halved.Fraction /= 2
	if halved.MinCandidates > 1 {
		halved.MinCandidates /= 2
	}
	if got, wantBudget := deg.Stats.CandidateBudget, halved.Limit(reg.Len(), spec.TopK); got != wantBudget {
		return fmt.Errorf("overload identity: degraded budget = %d, want the halved limit %d", got, wantBudget)
	}
	shrunk, _, err := reg.MatchIndexed(probe, spec.TopK, halved)
	if err != nil {
		return err
	}
	if got, wantDeg := rankingIdentity(deg.Ranked), rankingIdentity(shrunk); got != wantDeg {
		return fmt.Errorf("overload identity: degraded ranking differs from the registry under the same shrunken budget\n got %s\nwant %s", got, wantDeg)
	}
	return nil
}

// runOverload executes the saturation sweep, the cache cell and the
// identity pass, enforces the overload gates, and merges the result into
// the bench report at outPath (preserving any other experiment's data).
func runOverload(outPath string, window time.Duration) error {
	cfg := core.DefaultConfig()
	reg, probes, reserve, err := overloadRegistry(cfg)
	if err != nil {
		return err
	}
	if err := overloadIdentity(reg, probes); err != nil {
		return err
	}
	fmt.Println("cupidbench: overload identity checks passed (cached == uncached == registry; degraded == registry under its reported budget)")

	front := serve.NewFrontend(reg, serve.Options{
		Read:          serve.PoolOptions{MaxWait: overloadQueueWait},
		Write:         serve.PoolOptions{Slots: 2, MaxWait: time.Second},
		MatchDeadline: time.Minute,
	})
	slots := front.ReadPool().Slots()
	pt := &OverloadPoint{
		Corpus:      reg.Len(),
		Slots:       slots,
		QueueWaitMS: overloadQueueWait.Milliseconds(),
		WindowMS:    window.Milliseconds(),
		RegisterPct: 100.0 / registerEvery,
	}
	fmt.Printf("cupidbench: overload sweep (corpus %d, %d read slots, %v queue-wait, %v per cell, %d%% writes)\n",
		pt.Corpus, slots, overloadQueueWait, window, int(pt.RegisterPct))
	fmt.Println("  load  workers  offered  goodput/s  shed  degraded  p50 ms   p99 ms")
	for _, loadX := range []int{1, 2, 4} {
		cell, err := runOverloadCell(front, probes, reserve, loadX*slots, window)
		if err != nil {
			return err
		}
		cell.LoadX = loadX
		pt.Cells = append(pt.Cells, cell)
		fmt.Printf("  %2dx   %7d  %7d  %9.1f  %4d  %8d  %7.2f  %7.2f\n",
			cell.LoadX, cell.Workers, cell.Offered, cell.GoodputRPS, cell.Shed, cell.Degraded, cell.P50MS, cell.P99MS)
	}

	cold, warm, err := runCacheCell(reg, probes)
	if err != nil {
		return err
	}
	pt.ColdNsPerOp, pt.WarmNsPerOp = cold, warm
	pt.CacheSpeedup = float64(cold) / float64(warm)
	fmt.Printf("  cache: cold %d ns/op, warm %d ns/op — %.0fx\n", cold, warm, pt.CacheSpeedup)

	// Gates. 1x is the capacity reference; the 2x cell must keep goodput
	// (admission sheds instead of collapsing) and a bounded p99 (no
	// request is served after queueing past the latency target, so the
	// tail cannot grow past queue-wait plus scoring time).
	c1, c2 := pt.Cells[0], pt.Cells[1]
	if c1.Succeeded == 0 {
		return fmt.Errorf("overload gate: the 1x cell completed no requests; window %v is too small", window)
	}
	for _, c := range pt.Cells {
		if c.Failed != 0 {
			return fmt.Errorf("overload gate: %d requests failed with non-overload errors at %dx load", c.Failed, c.LoadX)
		}
	}
	if c2.GoodputRPS < 0.8*c1.GoodputRPS {
		return fmt.Errorf("overload gate: goodput at 2x load = %.1f/s, want >= 0.8x the 1x capacity %.1f/s (admission control failed to protect throughput)",
			c2.GoodputRPS, c1.GoodputRPS)
	}
	if maxP99 := float64(overloadQueueWait.Milliseconds()) + 5*c1.P99MS; c2.P99MS > maxP99 {
		return fmt.Errorf("overload gate: p99 at 2x load = %.1fms, want <= queue-wait + 5x the 1x p99 (%.1fms) — the latency knee is not flat",
			c2.P99MS, maxP99)
	}
	if pt.CacheSpeedup < 10 {
		return fmt.Errorf("overload gate: cache-warm speedup = %.1fx (cold %dns, warm %dns), want >= 10x", pt.CacheSpeedup, cold, warm)
	}

	// Merge into the bench report without clobbering other experiments.
	report := BenchReport{}
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing existing %s: %w", outPath, err)
		}
	}
	report.GeneratedUnix = time.Now().Unix()
	if report.GoMaxProcs == 0 {
		report.GoMaxProcs = runtime.GOMAXPROCS(0)
		report.NumCPU = runtime.NumCPU()
		report.Workers = par.Workers()
	}
	report.Overload = pt
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("overload results merged into %s\n", outPath)
	return nil
}
