// Command cupidbench regenerates the tables and figures of the paper's
// evaluation section (§9) and prints the measured results next to the
// paper's reported ones.
//
// Usage:
//
//	cupidbench [-exp NAME]
//
// Experiments (-exp):
//
//	table1     parameter table (Table 1)
//	table2     canonical examples 1-6 vs DIKE and MOMIS (Table 2)
//	table3     CIDX -> Excel element mappings and leaf metrics (Table 3)
//	rdbstar    RDB -> Star warehouse experiment (§9.2)
//	thesaurus  thesaurus ablation (§9.3 conclusion 2)
//	lingonly   linguistic-only on full path names (§9.3 conclusion 3)
//	university extra generalization workload (registrar vs SIS)
//	scale      scalability sweep over synthetic schemas (§10 future work)
//	ablation   design-choice ablations on CIDX-Excel (E10)
//	tune       auto-tuning grid search (§10 future work)
//	bench      sequential-vs-parallel perf sweep + the 1-vs-K batch
//	           repository workload (naive Match calls vs the prepared-
//	           schema registry) + the 1-vs-200 pruned-retrieval workload
//	           (exhaustive MatchAll vs signature-pruned MatchTop, recall@K
//	           asserted 1.0) -> BENCH_cupid.json
//	overload   serving-layer saturation harness: closed-loop mixed
//	           register/match traffic at 1x/2x/4x capacity through the
//	           admission-controlled frontend (goodput, shed, degraded,
//	           p50/p99 per cell), cache warm-vs-cold speedup, and
//	           cached/uncached/degraded ranking-identity checks
//	           -> merged into BENCH_cupid.json
//	planner    retrieval planner vs static policies: family and
//	           rare-token probe sweeps over 1-vs-200, 1-vs-2000 and
//	           1-vs-20000 FamilyCorpus registries, gated on planned
//	           recall@10 = 1.0, planned aggregate time <= every static
//	           policy, and an allocation-free planning step
//	           -> merged into BENCH_cupid.json
//	cluster    scale-out workload: scatter-gather over 1/2/4
//	           consistent-hash shards (aggregate matches/sec gated
//	           >= 1.6x from 1 to 4, merged recall@10 gated exactly
//	           1.0) plus the killed-and-restarted replica, gated on
//	           byte-identical convergence with the primary
//	           -> merged into BENCH_cupid.json
//	corpus     corpus clustering + family-routed retrieval: cluster a
//	           10k FamilyCorpus registry into schema families and race
//	           family-routed matching against the flat indexed path
//	           (gated faster, recall@10 >= 0.98 vs the exhaustive
//	           scan), then persist a clustering through the journal
//	           and gate a restarted node and a replication follower on
//	           byte-identical family assignments
//	           -> merged into BENCH_cupid.json
//	crossformat  generic-model fan-in + instance-aware matching: the
//	           cross-format corpus (each family rendered as SQL DDL,
//	           JSON Schema and Avro; the examples/crossformat files)
//	           probed against itself (top-1 family accuracy gated
//	           >= 0.95, cross-format recall@10 exactly 1.0), and the
//	           ambiguous-names tie-break corpus matched with and
//	           without instance profiles (instance blending gated to
//	           strictly beat name-only top-1)
//	           -> merged into BENCH_cupid.json
//	all        everything (default; excludes tune, bench, overload,
//	           planner, cluster, corpus and crossformat)
//
// With -csv, the scale and ablation experiments additionally emit CSV to
// stdout (the raw series behind the figures).
//
// With -compare BASELINE, no experiment runs: the report at -benchout is
// diffed against the committed BASELINE and the command fails when any
// speedup ratio degraded more than 25% or any recall metric dropped at
// all — the bench-trend regression gate CI runs after regenerating the
// report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/tuner"
	"repro/internal/workloads"
)

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func run(exp string, csvOut bool, benchOut string, benchSelfCheck bool, overloadWindow time.Duration) error {
	all := exp == "all"
	if all || exp == "table1" {
		fmt.Println(eval.Table1())
	}
	if all || exp == "table2" {
		rows, err := eval.Table2()
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable2(rows))
	}
	if all || exp == "table3" {
		res, err := eval.Table3()
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable3(res))
	}
	if all || exp == "rdbstar" {
		res, err := eval.RDBStar()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if all || exp == "thesaurus" {
		rs, err := eval.ThesaurusAblation()
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderAblations("thesaurus ablation (§9.3 conclusion 2)", rs, "no-thesaurus"))
	}
	if all || exp == "lingonly" {
		rs, err := eval.LinguisticOnly()
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderAblations("linguistic-only over path names (§9.3 conclusion 3)", rs, "ling-only"))
	}
	if all || exp == "university" {
		w := workloads.University()
		res, m, err := eval.RunCupid(w, core.DefaultConfig())
		if err != nil {
			return err
		}
		fmt.Println("university generalization workload (registrar -> SIS)")
		fmt.Printf("  leaf mapping: %s\n", m)
		fmt.Print(indent(res.Mapping.String(), "  "))
		fmt.Println()
	}
	if all || exp == "scale" {
		pts, err := eval.Scalability()
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderScale(pts))
		if csvOut {
			if err := eval.WriteScaleCSV(os.Stdout, pts); err != nil {
				return err
			}
		}
	}
	if all || exp == "ablation" {
		rows, err := eval.Ablations()
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderAblationRows(rows))
		if csvOut {
			if err := eval.WriteAblationCSV(os.Stdout, rows); err != nil {
				return err
			}
		}
	}
	if exp == "tune" { // not part of "all": the grid is slow
		res, err := tuner.Grid(workloads.Figure2(), core.DefaultConfig(), tuner.DefaultSpace())
		if err != nil {
			return err
		}
		fmt.Println(res.Render(10))
	}
	if exp == "bench" { // not part of "all": minutes of timed runs
		if err := runBench(benchOut, benchSelfCheck); err != nil {
			return err
		}
	}
	if exp == "overload" { // not part of "all": seconds of timed load cells
		if err := runOverload(benchOut, overloadWindow); err != nil {
			return err
		}
	}
	if exp == "planner" { // not part of "all": builds a 20k-schema corpus
		if err := runPlanner(benchOut); err != nil {
			return err
		}
	}
	if exp == "cluster" { // not part of "all": seconds of timed sweeps
		if err := runCluster(benchOut); err != nil {
			return err
		}
	}
	if exp == "corpus" { // not part of "all": builds a 10k-schema corpus
		if err := runCorpus(benchOut); err != nil {
			return err
		}
	}
	if exp == "crossformat" { // not part of "all": merges into the bench report
		if err := runCrossFormat(benchOut); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, table3, rdbstar, thesaurus, lingonly, university, scale, ablation, tune, bench, overload, planner, cluster, corpus, crossformat, all")
	csvOut := flag.Bool("csv", false, "also emit CSV for scale/ablation")
	benchOut := flag.String("benchout", "BENCH_cupid.json", "output path for the -exp bench/overload/planner/cluster/corpus/crossformat report")
	benchSelfCheck := flag.Bool("selfcheck", true, "run go vet + race determinism tests before -exp bench")
	overloadWindow := flag.Duration("overload-window", time.Second, "timed window per -exp overload load cell")
	compare := flag.String("compare", "", "baseline BENCH_cupid.json to gate -benchout against: fail when any speedup ratio degrades > 25% or any recall drops (no experiment runs)")
	flag.Parse()
	if *compare != "" {
		if err := runCompare(*benchOut, *compare); err != nil {
			fmt.Fprintln(os.Stderr, "cupidbench:", err)
			os.Exit(1)
		}
		return
	}
	switch *exp {
	case "all", "table1", "table2", "table3", "rdbstar", "thesaurus", "lingonly", "university", "scale", "ablation", "tune", "bench", "overload", "planner", "cluster", "corpus", "crossformat":
	default:
		fmt.Fprintf(os.Stderr, "cupidbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err := run(*exp, *csvOut, *benchOut, *benchSelfCheck, *overloadWindow); err != nil {
		fmt.Fprintln(os.Stderr, "cupidbench:", err)
		os.Exit(1)
	}
}
