package main

// Self-test for the -compare regression gate: the gate must fail on a
// synthetic 30% speedup regression and on any recall drop, and must pass
// when every gated metric holds within tolerance — this is what keeps the
// CI bench-trend step honest about its own trip-wire.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// compareBaseline mirrors the shape of a real BENCH_cupid.json closely
// enough to exercise maps, nested objects, and arrays of cells.
const compareBaseline = `{
  "generated_unix": 1700000000,
  "batch": {"corpus": 200, "speedup_vs_naive": 12.0, "recall_at_10": 1.0},
  "planner": {
    "sweeps": [
      {"corpus": 2000, "planned_speedup": 3.0, "recall_at_10": 1.0},
      {"corpus": 20000, "planned_speedup": 6.0, "recall_at_10": 1.0}
    ]
  },
  "corpus": {"corpus": 10000, "family_speedup": 2.0, "family_recall_at_10": 0.99}
}`

func parseJSON(t *testing.T, s string) any {
	t.Helper()
	v, err := parseCompareJSON([]byte(s))
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return v
}

func TestCompareWithinToleranceHolds(t *testing.T) {
	// 20% speedup loss is within the 25% tolerance; recall held exactly.
	fresh := strings.NewReplacer(
		`"speedup_vs_naive": 12.0`, `"speedup_vs_naive": 9.7`,
		`"family_speedup": 2.0`, `"family_speedup": 1.7`,
	).Replace(compareBaseline)
	findings := compareReports(parseJSON(t, compareBaseline), parseJSON(t, fresh))
	if len(findings) != 0 {
		t.Fatalf("within-tolerance report flagged: %v", findings)
	}
}

func TestCompareFailsOnSpeedupRegression(t *testing.T) {
	// The synthetic 30% regression the CI self-test injects: 12.0 -> 8.4.
	fresh := strings.Replace(compareBaseline, `"speedup_vs_naive": 12.0`, `"speedup_vs_naive": 8.4`, 1)
	findings := compareReports(parseJSON(t, compareBaseline), parseJSON(t, fresh))
	if len(findings) != 1 {
		t.Fatalf("want exactly the injected regression, got %v", findings)
	}
	if f := findings[0]; f.kind != "speedup" || !strings.Contains(f.path, "speedup_vs_naive") {
		t.Fatalf("wrong finding for injected 30%% regression: %+v", f)
	}
}

func TestCompareFailsOnAnyRecallDrop(t *testing.T) {
	// A recall drop far smaller than the speedup tolerance still fails.
	fresh := strings.Replace(compareBaseline, `"family_recall_at_10": 0.99`, `"family_recall_at_10": 0.98`, 1)
	findings := compareReports(parseJSON(t, compareBaseline), parseJSON(t, fresh))
	if len(findings) != 1 || findings[0].kind != "recall" {
		t.Fatalf("want exactly one recall finding, got %v", findings)
	}
}

func TestCompareFailsOnDroppedGatedMetric(t *testing.T) {
	// Removing a gated array cell (an experiment silently dropped) fails.
	fresh := strings.Replace(compareBaseline,
		`,
      {"corpus": 20000, "planned_speedup": 6.0, "recall_at_10": 1.0}`, "", 1)
	findings := compareReports(parseJSON(t, compareBaseline), parseJSON(t, fresh))
	if len(findings) != 2 { // the cell's speedup and recall both vanish
		t.Fatalf("want 2 findings for the dropped cell, got %v", findings)
	}
}

func TestCompareIgnoresUngatedAndNewMetrics(t *testing.T) {
	// Non-gated numbers may move freely; fresh-only metrics pass ungated.
	fresh := strings.NewReplacer(
		`"corpus": 10000`, `"corpus": 9000`,
		`"generated_unix": 1700000000`, `"generated_unix": 1800000000, "overload": {"goodput_speedup": 1.5}`,
	).Replace(compareBaseline)
	if findings := compareReports(parseJSON(t, compareBaseline), parseJSON(t, fresh)); len(findings) != 0 {
		t.Fatalf("ungated/new metrics flagged: %v", findings)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	freshOK := filepath.Join(dir, "fresh-ok.json")
	freshBad := filepath.Join(dir, "fresh-bad.json")
	regressed := strings.Replace(compareBaseline, `"family_speedup": 2.0`, `"family_speedup": 1.4`, 1)
	for path, body := range map[string]string{base: compareBaseline, freshOK: compareBaseline, freshBad: regressed} {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := runCompare(freshOK, base); err != nil {
		t.Fatalf("identical reports must pass: %v", err)
	}
	err := runCompare(freshBad, base)
	if err == nil || !strings.Contains(err.Error(), "family_speedup") {
		t.Fatalf("30%% family_speedup regression must fail naming the metric, got %v", err)
	}
}
