package main

// The crossformat experiment (-exp crossformat): the generic-model fan-in
// and instance-aware matching gates as a measured workload. The self-match
// cell registers every rendering of the cross-format corpus (each family
// as SQL DDL, JSON Schema and Avro — the same files checked in under
// examples/crossformat) and probes with each one: the top-ranked other
// entry must be the probe's own family for >= 95% of probes and both
// other-format renderings must rank in the top 10 (recall@10 exactly 1.0).
// The tie-break cell registers the ambiguous-names corpus — byte-identical
// DDL distinguishable only by sampled values — twice, with and without
// instance profiles, and gates that instance blending strictly improves
// top-1 accuracy over name/type-only matching.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	cupid "repro"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/workloads"
)

// crossTop1Gate is the self-match cell's top-1 family-accuracy floor.
const crossTop1Gate = 0.95

// crossTieTargets sizes the tie-break corpus: one schema per value-kind
// rotation, so every probe has exactly one distribution-identical target.
const crossTieTargets = 6

// CrossFormatPoint is the -exp crossformat report cell. The *_recall
// metric names are load-bearing: the -compare trend gate floors every
// numeric key containing "recall", so the cross-format fan-in and the
// instance tie-break can never silently regress once a baseline records
// them.
type CrossFormatPoint struct {
	// Docs / Families / Formats describe the self-match corpus.
	Docs     int `json:"docs"`
	Families int `json:"families"`
	Formats  int `json:"formats"`
	// SweepNs is the aggregate wall clock of the all-pairs probe sweep.
	SweepNs int64 `json:"sweep_ns"`
	// SelfTop1 is the fraction of probes whose top-ranked other entry is
	// their own family; CrossRecall10 the mean fraction of a probe's two
	// other-format renderings found in its top 10 (gated exactly 1.0).
	SelfTop1      float64 `json:"self_top1_recall"`
	CrossRecall10 float64 `json:"cross_recall_at_10"`
	// Tie-break cell: top-1 accuracy over TieBreakTargets probes, with
	// name/type evidence only and with instance profiles blended in. The
	// name-only figure is the (low) baseline instance blending must
	// strictly beat, so it is deliberately not a gated metric name.
	TieBreakTargets int     `json:"tiebreak_targets"`
	NameOnlyTop1    float64 `json:"tiebreak_nameonly_top1"`
	InstancesTop1   float64 `json:"tiebreak_instances_top1_recall"`
}

// runCrossFormatSelf measures the self-match cell over the generated
// cross-format corpus (the byte-identical source of examples/crossformat).
func runCrossFormatSelf(cfg core.Config, point *CrossFormatPoint) error {
	docs := workloads.CrossFormatCorpus()
	point.Docs = len(docs)
	point.Families = workloads.CrossFormatFamilies()
	point.Formats = len(docs) / point.Families

	reg, err := registry.New(cfg)
	if err != nil {
		return err
	}
	type probe struct {
		name   string
		family string
		p      *core.Prepared
	}
	probes := make([]probe, 0, len(docs))
	for _, d := range docs {
		s, err := cupid.ParseSchema(d.Family, d.Format, []byte(d.Content))
		if err != nil {
			return fmt.Errorf("parsing %s as %s: %w", d.File, d.Format, err)
		}
		name := fmt.Sprintf("%s_%s", d.Family, d.Format)
		if _, _, err := reg.Register(name, s); err != nil {
			return fmt.Errorf("registering %s: %w", name, err)
		}
		p, err := reg.Matcher().Prepare(s)
		if err != nil {
			return err
		}
		probes = append(probes, probe{name: name, family: d.Family, p: p})
	}

	top1Hits, recallSum := 0, 0.0
	start := time.Now()
	for _, pr := range probes {
		ranked, err := reg.MatchAll(pr.p, len(docs))
		if err != nil {
			return fmt.Errorf("matching %s: %w", pr.name, err)
		}
		// Drop the probe's own entry: self-similarity says nothing about
		// the fan-in.
		others := ranked[:0:0]
		for _, r := range ranked {
			if r.Entry.Name != pr.name {
				others = append(others, r)
			}
		}
		if len(others) == 0 {
			return fmt.Errorf("%s: no other entries ranked", pr.name)
		}
		if crossFamilyOf(others[0].Entry.Name) == pr.family {
			top1Hits++
		}
		sameFamily := 0
		for _, r := range others[:min(10, len(others))] {
			if crossFamilyOf(r.Entry.Name) == pr.family {
				sameFamily++
			}
		}
		recallSum += float64(sameFamily) / float64(point.Formats-1)
	}
	point.SweepNs = time.Since(start).Nanoseconds()
	point.SelfTop1 = float64(top1Hits) / float64(len(probes))
	point.CrossRecall10 = recallSum / float64(len(probes))

	fmt.Printf("  self-match: %d docs (%d families x %d formats), sweep %.1fms, top-1 %.3f, recall@10 %.3f\n",
		point.Docs, point.Families, point.Formats,
		float64(point.SweepNs)/1e6, point.SelfTop1, point.CrossRecall10)

	if point.SelfTop1 < crossTop1Gate {
		return fmt.Errorf("crossformat gate: self-match top-1 = %.3f, want >= %.2f (an importer's structure or datatype normalization regressed)",
			point.SelfTop1, crossTop1Gate)
	}
	if point.CrossRecall10 < 1 {
		return fmt.Errorf("crossformat gate: cross-format recall@10 = %.3f, want exactly 1.0", point.CrossRecall10)
	}
	return nil
}

// crossFamilyOf strips the _<format> suffix off a registry name.
func crossFamilyOf(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '_' {
			return name[:i]
		}
	}
	return name
}

// crossTieTop1 registers the tie-break targets and probes each value
// distribution in turn, returning top-1 accuracy. With instances=false
// both registration and probes carry no samples — name/type-only matching
// over byte-identical DDL, where every target ties exactly.
func crossTieTop1(cfg core.Config, instances bool) (float64, error) {
	m, err := core.NewMatcher(cfg)
	if err != nil {
		return 0, err
	}
	reg := registry.NewWithMatcher(m)
	targets := workloads.TieBreakTargets(crossTieTargets)
	parseSamples := func(doc string) (instance.Samples, error) {
		if !instances {
			return nil, nil
		}
		return instance.ParseSamples([]byte(doc))
	}
	for _, d := range targets {
		s, err := cupid.ParseSchema(d.Name, "sql", []byte(d.SQL))
		if err != nil {
			return 0, err
		}
		samples, err := parseSamples(d.Instances)
		if err != nil {
			return 0, err
		}
		if _, _, err := reg.RegisterInstances(d.Name, s, samples); err != nil {
			return 0, fmt.Errorf("registering %s: %w", d.Name, err)
		}
	}
	hits := 0
	for j, d := range targets {
		probe := workloads.TieBreakProbe(j)
		s, err := cupid.ParseSchema(probe.Name, "sql", []byte(probe.SQL))
		if err != nil {
			return 0, err
		}
		samples, err := parseSamples(probe.Instances)
		if err != nil {
			return 0, err
		}
		p, err := m.PrepareWithInstances(s, samples)
		if err != nil {
			return 0, err
		}
		ranked, err := reg.MatchAll(p, len(targets))
		if err != nil {
			return 0, err
		}
		if len(ranked) > 0 && ranked[0].Entry.Name == d.Name {
			hits++
		}
	}
	return float64(hits) / float64(len(targets)), nil
}

// runCrossFormatTieBreak measures the tie-break cell and enforces the
// strict-improvement gate.
func runCrossFormatTieBreak(cfg core.Config, point *CrossFormatPoint) error {
	point.TieBreakTargets = crossTieTargets
	var err error
	if point.NameOnlyTop1, err = crossTieTop1(cfg, false); err != nil {
		return err
	}
	if point.InstancesTop1, err = crossTieTop1(cfg, true); err != nil {
		return err
	}
	fmt.Printf("  tie-break: %d byte-identical targets, top-1 name-only %.3f, with instances %.3f\n",
		point.TieBreakTargets, point.NameOnlyTop1, point.InstancesTop1)
	if point.InstancesTop1 <= point.NameOnlyTop1 {
		return fmt.Errorf("crossformat gate: instance blending top-1 %.3f does not strictly beat name-only %.3f on the ambiguous corpus",
			point.InstancesTop1, point.NameOnlyTop1)
	}
	return nil
}

// runCrossFormat executes the crossformat workload, enforces its gates,
// and merges the result into the bench report at outPath.
func runCrossFormat(outPath string) error {
	cfg := core.DefaultConfig()
	point := &CrossFormatPoint{}
	fmt.Println("cupidbench: cross-format fan-in + instance tie-break (examples/crossformat)")
	if err := runCrossFormatSelf(cfg, point); err != nil {
		return err
	}
	if err := runCrossFormatTieBreak(cfg, point); err != nil {
		return err
	}

	// Merge into the bench report without clobbering other experiments.
	report := BenchReport{}
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing existing %s: %w", outPath, err)
		}
	}
	report.GeneratedUnix = time.Now().Unix()
	if report.GoMaxProcs == 0 {
		report.GoMaxProcs = runtime.GOMAXPROCS(0)
		report.NumCPU = runtime.NumCPU()
		report.Workers = par.Workers()
	}
	report.CrossFormat = point
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("crossformat results merged into %s\n", outPath)
	return nil
}
