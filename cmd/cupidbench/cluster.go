package main

// The cluster experiment (-exp cluster): the scale-out story measured
// end to end, in-process. Three cells:
//
//   - Scaling: a FamilyCorpus is consistent-hash partitioned across 1,
//     2 and 4 shard registries (the same ring cupidrouter uses) and a
//     fixed probe mix is scatter-gathered through them. On this
//     single-core box the per-shard subqueries are timed serially and
//     each query is charged its *critical path* — the slowest shard's
//     subquery, which is what a deployment with a core per shard would
//     wait for — so aggregate matches/sec measures how sharding shrinks
//     per-query work, not how many goroutines one core can interleave.
//     The exhaustive retrieval path is used because its cost is
//     proportional to shard size, making the capacity claim exact;
//     the planner's recall through the sharded path is gated in the
//     recall cell. Gated: >= 1.6x aggregate matches/sec from 1 to 4
//     shards.
//   - Router recall: every probe's per-shard top-K rankings (adaptive
//     planner, the path cupidrouter actually fans out through) are
//     merged with cluster.MergeRanked and compared against the
//     single-node exhaustive ground truth. Gated: recall@10 exactly
//     1.0.
//   - Replica convergence: a WAL primary streams its journal to a
//     follower over the real replication codec (io.Pipe transport);
//     the follower is killed mid-stream by a byte-limited reader,
//     the primary keeps writing, the follower's directory is reopened
//     (a fresh process, in effect) and the stream resumed from its
//     checkpoint. Gated: the restarted follower's rankings are
//     byte-identical (as JSON) to the primary's.
//
// Results merge into BENCH_cupid.json next to the other experiments.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	cupid "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/workloads"
)

// clusterTopK is the ranking depth of every cluster-workload query.
const clusterTopK = 10

// clusterCorpusSize is the sharded corpus size. Large enough that the
// exhaustive per-shard scan dominates fixed per-query overhead (so the
// scaling cell measures sharding, not dispatch), small enough that the
// 1+2+4 shard sweep stays in seconds.
const clusterCorpusSize = 2000

// clusterShardCounts is the scaling sweep; the gate compares the first
// and last cells.
var clusterShardCounts = []int{1, 2, 4}

// clusterScalingGate is the minimum 1-to-4-shard aggregate throughput
// ratio. Perfect partitioning of the exhaustive scan would give ~4x
// (modulo ring imbalance); 1.6x leaves room for per-query fixed costs
// and hash skew while still failing if sharding stops shrinking
// per-query work.
const clusterScalingGate = 1.6

// clusterReps is how many times each shard-count sweep repeats; the
// fastest repetition is kept (the retrieval paths are deterministic, so
// repetitions are interchangeable and min strips scheduler noise).
const clusterReps = 3

// clusterReplicaKillLimit is how many stream bytes the follower is
// allowed to read before the mid-stream kill. Sized to land partway
// through the initial catch-up (a handful of multi-KB document records)
// so the kill tears a frame rather than falling on a quiet stream.
const clusterReplicaKillLimit = 16 << 10

// ClusterScalePoint is one shard-count cell of the scaling sweep.
type ClusterScalePoint struct {
	Shards int `json:"shards"`
	// MinShardDocs/MaxShardDocs report the ring's partition balance.
	MinShardDocs int `json:"min_shard_docs"`
	MaxShardDocs int `json:"max_shard_docs"`
	// SweepNs is the fastest aggregate critical-path time for one full
	// probe sweep.
	SweepNs int64 `json:"sweep_ns"`
	// MatchesPerSec is probes / SweepNs: the aggregate throughput of a
	// cluster with a core per shard.
	MatchesPerSec float64 `json:"matches_per_sec"`
}

// ClusterPoint is the -exp cluster report.
type ClusterPoint struct {
	Corpus  int                 `json:"corpus"`
	TopK    int                 `json:"top_k"`
	Probes  int                 `json:"probes"`
	Scaling []ClusterScalePoint `json:"scaling"`
	// Speedup1To4 is the gated scaling ratio.
	Speedup1To4 float64 `json:"speedup_1_to_4"`
	// RouterRecall is recall@topK of the merged sharded rankings
	// (adaptive planner per shard) against the single-node exhaustive
	// ground truth; gated at exactly 1.0.
	RouterRecall float64 `json:"router_recall"`
	// Replica convergence cell.
	ReplicaDocs              int   `json:"replica_docs"`
	ReplicaKillLimitBytes    int64 `json:"replica_kill_limit_bytes"`
	ReplicaAppliedBeforeKill int   `json:"replica_applied_before_kill"`
	ReplicaResyncs           int   `json:"replica_resyncs"`
	// ReplicaConverged is the gated cell: after the mid-stream kill,
	// the primary writing on, a directory reopen and a resumed stream,
	// the follower's rankings marshal to exactly the primary's bytes.
	ReplicaConverged bool `json:"replica_converged"`
}

// clusterProbes prepares one family probe per domain with the given
// matcher. Each side of a comparison prepares its own probes from the
// same generated schemas, so prepared artifacts never cross matchers.
func clusterProbes(m *core.Matcher) ([]*core.Prepared, error) {
	probes := make([]*core.Prepared, 0, workloads.NumFamilies())
	for f := 0; f < workloads.NumFamilies(); f++ {
		p, err := m.Prepare(workloads.FamilyProbe(f, 1234))
		if err != nil {
			return nil, err
		}
		p.Signature()
		probes = append(probes, p)
	}
	return probes, nil
}

// clusterShards partitions the corpus across n registries (shared
// matcher) by ring ownership of the schema name — the same placement
// cupidrouter computes.
func clusterShards(m *core.Matcher, corpus []*model.Schema, n int) ([]*registry.Registry, error) {
	ring, err := cluster.NewRing(n, 0)
	if err != nil {
		return nil, err
	}
	shards := make([]*registry.Registry, n)
	for i := range shards {
		shards[i] = registry.NewWithMatcher(m)
	}
	var mu sync.Mutex
	var firstErr error
	par.For(len(corpus), func(i int) {
		s := corpus[i]
		if _, _, err := shards[ring.Owner(s.Name)].Register(s.Name, s); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	return shards, firstErr
}

// scatterGather runs one probe through every shard serially, returning
// the critical path (the slowest shard's subquery — the fan-out's wall
// clock on a core-per-shard cluster) and the per-shard rankings.
func scatterGather(shards []*registry.Registry, p *core.Prepared, opt registry.PlanOptions) (time.Duration, [][]registry.Ranked, error) {
	ctx := context.Background()
	var critical time.Duration
	parts := make([][]registry.Ranked, len(shards))
	for i, sh := range shards {
		start := time.Now()
		ranked, _, err := sh.MatchContext(ctx, p, clusterTopK, opt)
		if err != nil {
			return 0, nil, err
		}
		if d := time.Since(start); d > critical {
			critical = d
		}
		parts[i] = ranked
	}
	return critical, parts, nil
}

// rankedKey is the comparable projection of one ranked result; two
// repositories serve identical rankings iff their rankedKey lists
// marshal to identical JSON.
type rankedKey struct {
	Name        string  `json:"name"`
	Fingerprint string  `json:"fingerprint"`
	Score       float64 `json:"score"`
}

func rankingBytes(ranked []registry.Ranked) ([]byte, error) {
	keys := make([]rankedKey, len(ranked))
	for i, r := range ranked {
		keys[i] = rankedKey{Name: r.Entry.Name, Fingerprint: r.Entry.Fingerprint, Score: r.Score}
	}
	return json.Marshal(keys)
}

// runClusterScaling measures the scaling cells and the router-recall
// cell over one shared corpus.
func runClusterScaling(point *ClusterPoint) error {
	cfg := core.DefaultConfig()
	m, err := core.NewMatcher(cfg)
	if err != nil {
		return err
	}
	corpus := namedFamilyCorpus(clusterCorpusSize)
	probes, err := clusterProbes(m)
	if err != nil {
		return err
	}
	point.Corpus = len(corpus)
	point.TopK = clusterTopK
	point.Probes = len(probes)

	exactOpt := registry.DefaultPlanOptions()
	exactOpt.Force = registry.StrategyExact
	autoOpt := registry.DefaultPlanOptions()

	fmt.Println("cupidbench: scatter-gather scaling (FamilyCorpus, exhaustive path, critical-path timing)")
	fmt.Println("  shards  docs min/max  sweep ms  agg matches/sec")
	var truth [][]registry.Ranked // single-node exhaustive ground truth
	var mergedAuto [][]registry.Ranked
	for _, n := range clusterShardCounts {
		shards, err := clusterShards(m, corpus, n)
		if err != nil {
			return err
		}
		minDocs, maxDocs := shards[0].Len(), shards[0].Len()
		for _, sh := range shards[1:] {
			if l := sh.Len(); l < minDocs {
				minDocs = l
			} else if l > maxDocs {
				maxDocs = l
			}
		}
		// Warm the code paths and page in the entries before timing.
		if _, _, err := scatterGather(shards, probes[0], exactOpt); err != nil {
			return err
		}
		var bestNs int64
		for rep := 0; rep < clusterReps; rep++ {
			runtime.GC()
			var total time.Duration
			for _, p := range probes {
				critical, _, err := scatterGather(shards, p, exactOpt)
				if err != nil {
					return err
				}
				total += critical
			}
			if ns := total.Nanoseconds(); bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		// Rankings, outside the timed loops (deterministic paths).
		if n == 1 {
			truth = make([][]registry.Ranked, len(probes))
			for i, p := range probes {
				_, parts, err := scatterGather(shards, p, exactOpt)
				if err != nil {
					return err
				}
				truth[i] = parts[0]
			}
		}
		if n == clusterShardCounts[len(clusterShardCounts)-1] {
			mergedAuto = make([][]registry.Ranked, len(probes))
			for i, p := range probes {
				_, parts, err := scatterGather(shards, p, autoOpt)
				if err != nil {
					return err
				}
				mergedAuto[i] = cluster.MergeRanked(parts, clusterTopK)
			}
		}
		pt := ClusterScalePoint{
			Shards:        n,
			MinShardDocs:  minDocs,
			MaxShardDocs:  maxDocs,
			SweepNs:       bestNs,
			MatchesPerSec: float64(len(probes)) / (float64(bestNs) / 1e9),
		}
		point.Scaling = append(point.Scaling, pt)
		fmt.Printf("  %6d  %6d/%-6d  %8.1f  %15.1f\n",
			n, minDocs, maxDocs, float64(bestNs)/1e6, pt.MatchesPerSec)
	}

	first, last := point.Scaling[0], point.Scaling[len(point.Scaling)-1]
	point.Speedup1To4 = last.MatchesPerSec / first.MatchesPerSec
	point.RouterRecall = meanRecall(truth, mergedAuto)
	fmt.Printf("  1->%d shard speedup %.2fx, merged recall@%d %.3f\n",
		last.Shards, point.Speedup1To4, clusterTopK, point.RouterRecall)

	if point.Speedup1To4 < clusterScalingGate {
		return fmt.Errorf("cluster gate: aggregate matches/sec scales %.2fx from 1 to %d shards, want >= %.1fx (sharding stopped shrinking per-query work)",
			point.Speedup1To4, last.Shards, clusterScalingGate)
	}
	if point.RouterRecall != 1.0 {
		return fmt.Errorf("cluster gate: merged scatter-gather recall@%d = %.3f, want exactly 1.0 (the merge or the per-shard planner lost results the exact scan finds)",
			clusterTopK, point.RouterRecall)
	}
	return nil
}

// namedFamilyCorpus generates the corpus; registration names are the
// generated schema names (the ring hashes names, so naming is
// placement).
func namedFamilyCorpus(size int) []*model.Schema {
	return workloads.FamilyCorpus(workloads.FamilyCorpusSpec{
		PerFamily: size / workloads.NumFamilies(),
		Seed:      17,
	})
}

// shipStream drives one replication connection over an in-process pipe:
// the primary's real StreamReplication on one end, the follower's real
// ApplyReplication on the other. limit > 0 cuts the follower's read
// after that many bytes (the mid-stream kill); target != nil stops the
// connection cleanly once the follower has applied through target.
// Returns the follower's position after the connection ends.
func shipStream(pri, fol *registry.Persistent, state *registry.ReplState, from registry.ReplPos, limit int64, target *registry.ReplPos, onAdvance func(registry.ReplPos)) (registry.ReplPos, error) {
	pr, pw := io.Pipe()
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		// Ctx-cancel returns nil; a severed pipe returns a transport
		// error. Either way the deferred close delivers EOF (or the
		// error) to the apply side.
		_ = pri.StreamReplication(sctx, pw, from, 20*time.Millisecond)
		pw.Close()
	}()
	if target != nil {
		watchDone := make(chan struct{})
		defer func() { <-watchDone }()
		go func() {
			defer close(watchDone)
			for {
				st := state.Status()
				if st.CaughtUp && !st.Pos.Before(*target) {
					scancel() // stream exits, closes pw, apply sees EOF
					return
				}
				select {
				case <-streamDone:
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
		}()
	}
	var r io.Reader = pr
	if limit > 0 {
		r = io.LimitReader(pr, limit)
	}
	err := fol.ApplyReplication(context.Background(), r, state, onAdvance)
	// Unblock the streamer if it is mid-write, then reap it.
	scancel()
	pr.CloseWithError(io.ErrClosedPipe)
	<-streamDone
	return state.Status().Pos, err
}

// runClusterReplica measures the replica-convergence cell.
func runClusterReplica(point *ClusterPoint) (err error) {
	cfg := core.DefaultConfig()
	priDir, err := os.MkdirTemp("", "cupidbench-repl-pri-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(priDir)
	folDir, err := os.MkdirTemp("", "cupidbench-repl-fol-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(folDir)

	open := func(dir string) (*registry.Persistent, error) {
		m, err := core.NewMatcher(cfg)
		if err != nil {
			return nil, err
		}
		p, warns, err := registry.OpenPersistentOptions(dir, m, registry.PersistOptions{WAL: true}, cupid.ParseSchema)
		if err != nil {
			return nil, err
		}
		if len(warns) > 0 {
			return nil, fmt.Errorf("recovery warnings on %s: %v", dir, warns)
		}
		return p, nil
	}

	pri, err := open(priDir)
	if err != nil {
		return err
	}
	defer pri.Close()

	// The corpus is registered from serialized source bytes so both
	// sides parse identical documents (identical fingerprints by
	// construction; see Persistent.Register's normalization caveat).
	corpus := namedFamilyCorpus(60)
	point.ReplicaDocs = len(corpus)
	point.ReplicaKillLimitBytes = clusterReplicaKillLimit
	registerSource := func(p *registry.Persistent, s *model.Schema) error {
		content, err := s.MarshalJSON()
		if err != nil {
			return err
		}
		_, _, err = p.RegisterSource(s.Name, "json", content)
		return err
	}
	preKill := corpus[:40]
	postKill := corpus[40:]
	for _, s := range preKill {
		if err := registerSource(pri, s); err != nil {
			return err
		}
	}

	fol, err := open(folDir)
	if err != nil {
		return err
	}
	defer func() {
		if fol != nil {
			fol.Close()
		}
	}()
	state := &registry.ReplState{}
	applied := 0
	checkpoint, _ := shipStream(pri, fol, state, registry.ReplPos{}, clusterReplicaKillLimit, nil,
		func(registry.ReplPos) { applied++ })
	point.ReplicaAppliedBeforeKill = applied
	fmt.Printf("cupidbench: replica killed after <= %d stream bytes (%d of %d records applied, checkpoint %s)\n",
		clusterReplicaKillLimit, applied, len(preKill), checkpoint)

	// The follower is dead; the primary keeps mutating.
	if err := fol.Close(); err != nil {
		return err
	}
	fol = nil
	for _, s := range postKill {
		if err := registerSource(pri, s); err != nil {
			return err
		}
	}
	if _, err := pri.Remove(preKill[0].Name); err != nil {
		return err
	}

	// Restart: reopen the directory (a fresh matcher, as a new process
	// would have) and resume the stream from the checkpoint.
	fol, err = open(folDir)
	if err != nil {
		return err
	}
	target, err := pri.ReplicationPos()
	if err != nil {
		return err
	}
	if _, err := shipStream(pri, fol, state, checkpoint, 0, &target, nil); err != nil {
		return err
	}
	st := state.Status()
	point.ReplicaResyncs = st.Resyncs

	// Byte-identical rankings: each side prepares the same probes with
	// its own matcher and the JSON projections must match exactly.
	priProbes, err := clusterProbes(pri.Matcher())
	if err != nil {
		return err
	}
	folProbes, err := clusterProbes(fol.Matcher())
	if err != nil {
		return err
	}
	exactOpt := registry.DefaultPlanOptions()
	exactOpt.Force = registry.StrategyExact
	ctx := context.Background()
	converged := pri.Len() == fol.Len()
	for i := range priProbes {
		pRanked, _, err := pri.MatchContext(ctx, priProbes[i], clusterTopK, exactOpt)
		if err != nil {
			return err
		}
		fRanked, _, err := fol.MatchContext(ctx, folProbes[i], clusterTopK, exactOpt)
		if err != nil {
			return err
		}
		pb, err := rankingBytes(pRanked)
		if err != nil {
			return err
		}
		fb, err := rankingBytes(fRanked)
		if err != nil {
			return err
		}
		if string(pb) != string(fb) {
			converged = false
			fmt.Printf("  probe %d diverged:\n    primary  %s\n    follower %s\n", i, pb, fb)
		}
	}
	point.ReplicaConverged = converged
	fmt.Printf("  restarted replica at %s (resyncs %d): %d docs vs primary %d, rankings byte-identical: %v\n",
		st.Pos, st.Resyncs, fol.Len(), pri.Len(), converged)
	if !converged {
		return fmt.Errorf("cluster gate: killed-and-restarted replica did not converge to the primary's rankings")
	}
	return nil
}

// runCluster executes the cluster workload, enforces its gates, and
// merges the result into the bench report at outPath.
func runCluster(outPath string) error {
	point := &ClusterPoint{}
	if err := runClusterScaling(point); err != nil {
		return err
	}
	if err := runClusterReplica(point); err != nil {
		return err
	}

	// Merge into the bench report without clobbering other experiments.
	report := BenchReport{}
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing existing %s: %w", outPath, err)
		}
	}
	report.GeneratedUnix = time.Now().Unix()
	if report.GoMaxProcs == 0 {
		report.GoMaxProcs = runtime.GOMAXPROCS(0)
		report.NumCPU = runtime.NumCPU()
		report.Workers = par.Workers()
	}
	report.Cluster = point
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster results merged into %s\n", outPath)
	return nil
}
