package main

// The bench experiment: a sequential-vs-parallel perf trajectory for the
// whole Match pipeline plus the repository workloads (1-vs-K prepared
// batch, 1-vs-200 pruned retrieval, 1-vs-2000 indexed retrieval, and the
// write-heavy snapshot-vs-WAL registration workload), written to
// BENCH_cupid.json so future PRs have a baseline to compare against,
// plus a self-check that keeps `go vet`, the -race determinism tests,
// gofmt and the doc-presence gate green before any number is trusted.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cupid "repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/workloads"
)

// BenchPoint is one workload's measurement.
type BenchPoint struct {
	Name     string `json:"name"`
	Elements int    `json:"elements"` // total elements across both schemas
	Leaves   int    `json:"leaves"`
	// Sequential (one worker) vs parallel (default pool) full-pipeline
	// cost. Allocs counts heap objects per op (runtime.MemStats.Mallocs).
	SeqNsPerOp     int64   `json:"seq_ns_per_op"`
	ParNsPerOp     int64   `json:"par_ns_per_op"`
	SeqAllocsPerOp int64   `json:"seq_allocs_per_op"`
	ParAllocsPerOp int64   `json:"par_allocs_per_op"`
	Speedup        float64 `json:"speedup"` // seq/par wall-clock ratio
}

// BatchPoint measures the repository workload: one probe schema matched
// against K registered schemas, naively (K independent Match calls, each
// re-validating, re-expanding and re-analyzing both sides) versus via the
// prepared-schema registry (probe prepared once per op, repository
// prepared once ever, MatchAll fanning over the worker pool).
type BatchPoint struct {
	K             int `json:"k"`
	ProbeElements int `json:"probe_elements"`
	RepoElements  int `json:"repo_elements"` // total across the K schemas
	// Cost of one full 1-vs-K sweep.
	NaiveNsPerOp        int64   `json:"naive_ns_per_op"`
	PreparedNsPerOp     int64   `json:"prepared_ns_per_op"`
	NaiveAllocsPerOp    int64   `json:"naive_allocs_per_op"`
	PreparedAllocsPerOp int64   `json:"prepared_allocs_per_op"`
	Speedup             float64 `json:"speedup"` // naive/prepared wall clock
}

// PrunePoint measures candidate pruning on the big-repository workload:
// one probe ranked against K prepared schemas, exhaustively (MatchAll runs
// the full tree match K times) versus pruned (MatchTop runs cheap
// signature affinities over all K, then the full match only on the top
// candidates). Recall@K compares the two top-K result lists; the bench
// fails unless it is exactly 1.0 — pruning must not change what the
// caller sees on this corpus.
type PrunePoint struct {
	K          int `json:"k"`
	TopK       int `json:"top_k"`
	Candidates int `json:"candidates"` // entries that reached the full match
	// Cost of one full 1-vs-K ranking.
	FullNsPerOp   int64   `json:"full_ns_per_op"`
	PrunedNsPerOp int64   `json:"pruned_ns_per_op"`
	Speedup       float64 `json:"speedup"` // full/pruned wall clock
	RecallAtK     float64 `json:"recall_at_k"`
}

// IndexPoint measures indexed retrieval on the big-repository workload:
// one probe ranked against K prepared schemas three ways — exhaustively
// (MatchAll), signature-pruned (MatchTop: an affinity against every
// entry, full match on the top quarter), and indexed (MatchIndexed: the
// sharded token inverted index generates candidates from genuine token
// overlap only, full match on the top eighth). Recall@K is averaged over
// one probe per corpus family against the exact scan; the bench fails
// unless indexed recall is >= 0.98 and the indexed path beats the pruned
// one on wall clock.
type IndexPoint struct {
	K    int `json:"k"`
	TopK int `json:"top_k"`
	// PrunedCandidates and IndexedCandidates are the two paths' full-match
	// budgets (same Limit policy, different default fractions).
	PrunedCandidates  int `json:"pruned_candidates"`
	IndexedCandidates int `json:"indexed_candidates"`
	// CandidatesScored is how many entries the index's accumulator
	// actually scored for the timed probe (survivors of the stop-posting
	// cut); the pruned path always scores all K.
	CandidatesScored int `json:"candidates_scored"`
	// Cost of one full 1-vs-K ranking per path.
	FullNsPerOp     int64   `json:"full_ns_per_op"`
	PrunedNsPerOp   int64   `json:"pruned_ns_per_op"`
	IndexedNsPerOp  int64   `json:"indexed_ns_per_op"`
	SpeedupVsPruned float64 `json:"speedup_vs_pruned"` // pruned/indexed wall clock
	SpeedupVsFull   float64 `json:"speedup_vs_full"`   // full/indexed wall clock
	// RecallAtK / PrunedRecallAtK: mean top-K overlap with the exact scan
	// across the per-family probes.
	RecallAtK       float64 `json:"recall_at_k"`
	PrunedRecallAtK float64 `json:"pruned_recall_at_k"`
}

// WritePoint measures the write-heavy repository workload: sustained
// schema registrations into a durable registry, snapshot-per-mutation
// (the pre-WAL write path: every acknowledged mutation rewrites and
// fsyncs a full corpus image, O(corpus) per request) versus the
// write-ahead journal with group commit (one checksummed record append,
// concurrent writers batched into shared fsyncs, O(record) per request).
// Measured at 1 and at 8 concurrent writers over a pre-seeded corpus; the
// bench fails unless the WAL beats snapshotting on registrations/sec at 8
// writers. Post-crash ranking fidelity is not measured here — the
// crash-injection suites in internal/registry and cmd/cupidd assert it.
type WritePoint struct {
	// SeedCorpus is the repository size before the timed window (the
	// snapshot path pays a rewrite of at least this much per mutation).
	SeedCorpus int `json:"seed_corpus"`
	// WindowMS is the timed window per mode/writer-count cell.
	WindowMS int64 `json:"window_ms"`
	// Registrations/sec per cell.
	SnapshotRegsPerSec1W float64 `json:"snapshot_regs_per_sec_1w"`
	SnapshotRegsPerSec8W float64 `json:"snapshot_regs_per_sec_8w"`
	WALRegsPerSec1W      float64 `json:"wal_regs_per_sec_1w"`
	WALRegsPerSec8W      float64 `json:"wal_regs_per_sec_8w"`
	// SpeedupAt8W is WAL over snapshot throughput at 8 concurrent writers
	// (the gated cell).
	SpeedupAt8W float64 `json:"speedup_at_8w"`
}

// BenchReport is the file format of BENCH_cupid.json.
type BenchReport struct {
	GeneratedUnix int64        `json:"generated_unix"`
	GoMaxProcs    int          `json:"go_maxprocs"`
	NumCPU        int          `json:"num_cpu"`
	Workers       int          `json:"workers"`
	Note          string       `json:"note"`
	Points        []BenchPoint `json:"points"`
	// Batch is the 1-vs-K repository workload (the registry's raison
	// d'être): prepared matching must beat K independent Match calls on
	// both time and allocations.
	Batch *BatchPoint `json:"batch,omitempty"`
	// Prune is the big-repository retrieval workload: signature-based
	// candidate pruning must beat the exhaustive scan on time with
	// recall@K = 1.0.
	Prune *PrunePoint `json:"prune,omitempty"`
	// Index is the 1-vs-2000 retrieval workload: the sharded token
	// inverted index must beat the pruned scan on time with recall@10 >=
	// 0.98 against the exact scan.
	Index *IndexPoint `json:"index,omitempty"`
	// Write is the write-heavy workload: WAL group commit must beat
	// snapshot-per-mutation on registrations/sec at 8 concurrent writers.
	Write *WritePoint `json:"write,omitempty"`
	// Overload is the serving-layer saturation sweep (-exp overload):
	// closed-loop mixed traffic at 1x/2x/4x capacity through the
	// admission-controlled frontend, plus the match cache's warm-vs-cold
	// cell. Gated: goodput at 2x >= 0.8x capacity, the 2x p99 bounded by
	// queue-wait + 5x the 1x p99, cache-warm >= 10x cold.
	Overload *OverloadPoint `json:"overload,omitempty"`
	// Planner is the planner-vs-static retrieval workload (-exp planner):
	// the stats-driven adaptive planner against every static policy at
	// three FamilyCorpus scales. Gated: planned recall@10 exactly 1.0,
	// planned aggregate sweep time never above any static policy, and an
	// allocation-free planning step.
	Planner *PlannerPoint `json:"planner,omitempty"`
	// Cluster is the scale-out workload (-exp cluster): scatter-gather
	// scaling over 1/2/4 consistent-hash shards (critical-path timing),
	// merged-ranking recall through the router's merge, and the
	// killed-and-restarted replica convergence cell. Gated: >= 1.6x
	// aggregate matches/sec from 1 to 4 shards, merged recall@10
	// exactly 1.0, byte-identical replica rankings.
	Cluster *ClusterPoint `json:"cluster,omitempty"`
	// Corpus is the corpus-clustering workload (-exp corpus): family-routed
	// retrieval vs the flat indexed path on a clustered 10k FamilyCorpus
	// registry, plus clustering durability. Gated: the family sweep beats
	// flat indexed, family recall@10 >= 0.98 vs the exhaustive scan, and a
	// restarted node and a replication follower both serve byte-identical
	// clustering bytes.
	Corpus *CorpusPoint `json:"corpus,omitempty"`
	// CrossFormat is the generic-model fan-in workload (-exp crossformat):
	// cross-format self-match over the examples/crossformat corpus plus
	// the instance tie-break cell on byte-identical DDL. Gated: self-match
	// top-1 >= 0.95, cross-format recall@10 exactly 1.0, and instance
	// blending strictly beating name-only top-1 on the ambiguous corpus.
	CrossFormat *CrossFormatPoint `json:"crossformat,omitempty"`
}

// benchSpecs is the sweep measured by -exp bench: the eval scalability
// specs plus one larger workload so the trajectory has a point where the
// quadratic phases clearly dominate.
func benchSpecs() []workloads.SyntheticSpec {
	specs := eval.ScalabilitySpecs()
	specs = append(specs, workloads.SyntheticSpec{
		Tables: 24, ColsPerTable: 16, Depth: 3, Seed: 7, Rename: 0.3, Renest: 0.2, FKs: 6,
	})
	return specs
}

// selfCheck runs `go vet ./...` and the -race determinism tests of the
// parallelized packages before benchmarking, so a reported speedup can
// never come from a racy (hence potentially wrong) build. Gated on the go
// toolchain being installed; the bench binary may run on machines without
// it.
func selfCheck() error {
	if _, err := exec.LookPath("go"); err != nil {
		fmt.Println("bench self-check: go toolchain not found, skipping vet/race checks")
		return nil
	}
	// The checks operate on the module in the current directory; an
	// installed binary run from elsewhere has no sources to check.
	if _, err := os.Stat("go.mod"); err != nil {
		fmt.Println("bench self-check: no go.mod in current directory, skipping vet/race checks (run from the repo root to enable)")
		return nil
	}
	steps := [][]string{
		{"go", "vet", "./..."},
		{"go", "test", "-race", "-count=1", "./internal/linguistic", "./internal/structural", "./internal/registry", "./internal/index"},
	}
	for _, args := range steps {
		fmt.Printf("bench self-check: %v\n", args)
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("bench self-check failed (%v): %w", args, err)
		}
	}
	// Doc-presence gate: the entry-point documentation (README, the
	// architecture and API references) is part of the contract ./check.sh
	// enforces; benchmarks are only recorded from a tree that carries it.
	for _, f := range []string{"README.md", "docs/ARCHITECTURE.md", "docs/API.md", "docs/PERSISTENCE.md"} {
		if _, err := os.Stat(f); err != nil {
			return fmt.Errorf("bench self-check: required documentation missing: %s", f)
		}
	}
	// Formatting gate: benchmarks are only recorded from a gofmt-clean
	// tree, so BENCH_cupid.json never snapshots drifting sources (the
	// standalone ./check.sh runs the same gate).
	if _, err := exec.LookPath("gofmt"); err != nil {
		fmt.Println("bench self-check: gofmt not found, skipping format gate")
		return nil
	}
	fmt.Println("bench self-check: gofmt -l .")
	out, err := exec.Command("gofmt", "-l", ".").Output()
	if err != nil {
		return fmt.Errorf("bench self-check: gofmt: %w", err)
	}
	if dirty := strings.TrimSpace(string(out)); dirty != "" {
		return fmt.Errorf("bench self-check: gofmt needed on:\n%s", dirty)
	}
	return nil
}

// timeOp times op (one warm-up call, then repeats until minDuration),
// returning ns/op and heap-objects/op.
func timeOp(op func() error) (nsPerOp, allocsPerOp int64, err error) {
	// Warm-up run (page in schemas, thesaurus, code paths).
	if err = op(); err != nil {
		return 0, 0, err
	}
	const minDuration = 300 * time.Millisecond
	const minIters = 3
	var ms0, ms1 runtime.MemStats
	iters := 0
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for time.Since(start) < minDuration || iters < minIters {
		if err = op(); err != nil {
			return 0, 0, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return elapsed.Nanoseconds() / int64(iters), int64(ms1.Mallocs-ms0.Mallocs) / int64(iters), nil
}

// measure times the full pipeline on one workload at the given worker cap.
// Each iteration builds a fresh Matcher (cold caches), matching how the
// eval harness runs.
func measure(w workloads.Workload, cfg core.Config, workers int) (nsPerOp, allocsPerOp int64, err error) {
	prev := par.SetMaxWorkers(workers)
	defer par.SetMaxWorkers(prev)
	return timeOp(func() error {
		_, _, err := eval.RunCupid(w, cfg)
		return err
	})
}

// batchK is the repository size of the batch workload: one probe schema
// against K=50 prepared schemas (the ISSUE acceptance criterion).
const batchK = 50

// runBatch measures the repository workload. The naive baseline issues K
// independent Match calls on a shared matcher — today's API, which
// re-validates, re-expands and re-analyzes the probe and the stored
// schema on every call. The prepared path registers the repository once
// (outside the timed loop; that is the point of the registry), then pays
// per op only the probe's Prepare plus MatchAll.
func runBatch(cfg core.Config) (*BatchPoint, error) {
	probe := workloads.Synthetic(workloads.SyntheticSpec{
		Tables: 2, ColsPerTable: 6, Depth: 2, Seed: 99, Rename: 0.3, Renest: 0.2,
	}).Source
	repo := make([]*model.Schema, batchK)
	repoElements := 0
	for i := range repo {
		s := workloads.Synthetic(workloads.SyntheticSpec{
			Tables: 2, ColsPerTable: 6, Depth: 2, Seed: int64(i + 1), Rename: 0.4, Renest: 0.3,
		}).Target
		s.Name = fmt.Sprintf("%s-r%d", s.Name, i)
		repo[i] = s
		repoElements += s.Len()
	}

	naive, err := core.NewMatcher(cfg)
	if err != nil {
		return nil, err
	}
	naiveNs, naiveAllocs, err := timeOp(func() error {
		for _, s := range repo {
			if _, err := naive.Match(probe, s); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	reg, err := registry.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range repo {
		if _, _, err := reg.Register(s.Name, s); err != nil {
			return nil, err
		}
	}
	prepNs, prepAllocs, err := timeOp(func() error {
		p, err := reg.Matcher().Prepare(probe)
		if err != nil {
			return err
		}
		_, err = reg.MatchAll(p, 0)
		return err
	})
	if err != nil {
		return nil, err
	}

	return &BatchPoint{
		K:                   batchK,
		ProbeElements:       probe.Len(),
		RepoElements:        repoElements,
		NaiveNsPerOp:        naiveNs,
		PreparedNsPerOp:     prepNs,
		NaiveAllocsPerOp:    naiveAllocs,
		PreparedAllocsPerOp: prepAllocs,
		Speedup:             float64(naiveNs) / float64(prepNs),
	}, nil
}

// pruneK is the repository size of the pruning workload and pruneTopK the
// requested ranking depth (the ISSUE acceptance criterion: 1-vs-200,
// recall@K = 1.0).
const (
	pruneK    = 200
	pruneTopK = 10
)

// runPrune measures the pruned-vs-full retrieval workload on the
// family-structured example corpus (workloads.FamilyCorpus): 200 schemas
// across 10 domain vocabularies, probe drawn from one of them. The full
// scan tree-matches all 200; the pruned path tree-matches only the
// signature-ranked candidates. Besides timing, it verifies recall: the
// pruned top-K must be element-for-element the exhaustive top-K.
func runPrune(cfg core.Config) (*PrunePoint, error) {
	reg, err := registry.New(cfg)
	if err != nil {
		return nil, err
	}
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: pruneK / 10, Seed: 11})
	for _, s := range corpus {
		if _, _, err := reg.Register(s.Name, s); err != nil {
			return nil, err
		}
	}
	probe, err := reg.Matcher().Prepare(workloads.FamilyProbe(3, 42))
	if err != nil {
		return nil, err
	}
	opt := registry.DefaultPruneOptions()

	full, err := reg.MatchAll(probe, pruneTopK)
	if err != nil {
		return nil, err
	}
	pruned, err := reg.MatchTop(probe, pruneTopK, opt)
	if err != nil {
		return nil, err
	}
	recall := 0.0
	for i := range full {
		if i < len(pruned) && pruned[i].Entry.Name == full[i].Entry.Name && pruned[i].Score == full[i].Score {
			recall++
		}
	}
	recall /= float64(len(full))

	fullNs, _, err := timeOp(func() error {
		_, err := reg.MatchAll(probe, pruneTopK)
		return err
	})
	if err != nil {
		return nil, err
	}
	prunedNs, _, err := timeOp(func() error {
		_, err := reg.MatchTop(probe, pruneTopK, opt)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &PrunePoint{
		K:             pruneK,
		TopK:          pruneTopK,
		Candidates:    opt.Limit(pruneK, pruneTopK),
		FullNsPerOp:   fullNs,
		PrunedNsPerOp: prunedNs,
		Speedup:       float64(fullNs) / float64(prunedNs),
		RecallAtK:     recall,
	}, nil
}

// indexK is the repository size of the indexed retrieval workload and
// indexTopK its ranking depth (the ISSUE acceptance criterion: 1-vs-2000,
// recall@10 >= 0.98 vs the exact scan, indexed beats pruned on time).
const (
	indexK    = 2000
	indexTopK = 10
)

// topNames returns the entry-name set of a ranking.
func topNames(ranked []registry.Ranked) map[string]bool {
	out := make(map[string]bool, len(ranked))
	for _, rk := range ranked {
		out[rk.Entry.Name] = true
	}
	return out
}

// runIndexed measures the 1-vs-2000 retrieval workload on the family
// corpus: exhaustive MatchAll vs signature-pruned MatchTop vs indexed
// MatchIndexed. Wall clock is measured on one probe; recall@K is averaged
// over one probe per family (10 probes) so the >= 0.98 gate has real
// granularity instead of 1/topK steps.
func runIndexed(cfg core.Config) (*IndexPoint, error) {
	reg, err := registry.New(cfg)
	if err != nil {
		return nil, err
	}
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: indexK / workloads.NumFamilies(), Seed: 17})
	for _, s := range corpus {
		if _, _, err := reg.Register(s.Name, s); err != nil {
			return nil, err
		}
	}
	pruneOpt := registry.DefaultPruneOptions()
	indexOpt := registry.DefaultIndexOptions()

	recall, prunedRecall := 0.0, 0.0
	for fam := 0; fam < workloads.NumFamilies(); fam++ {
		probe, err := reg.Matcher().Prepare(workloads.FamilyProbe(fam, 99))
		if err != nil {
			return nil, err
		}
		full, err := reg.MatchAll(probe, indexTopK)
		if err != nil {
			return nil, err
		}
		indexed, _, err := reg.MatchIndexed(probe, indexTopK, indexOpt)
		if err != nil {
			return nil, err
		}
		pruned, err := reg.MatchTop(probe, indexTopK, pruneOpt)
		if err != nil {
			return nil, err
		}
		exact := topNames(full)
		for _, rk := range indexed {
			if exact[rk.Entry.Name] {
				recall++
			}
		}
		for _, rk := range pruned {
			if exact[rk.Entry.Name] {
				prunedRecall++
			}
		}
	}
	probes := float64(workloads.NumFamilies() * indexTopK)
	recall /= probes
	prunedRecall /= probes

	probe, err := reg.Matcher().Prepare(workloads.FamilyProbe(4, 99))
	if err != nil {
		return nil, err
	}
	_, stats, err := reg.MatchIndexed(probe, indexTopK, indexOpt)
	if err != nil {
		return nil, err
	}
	fullNs, _, err := timeOp(func() error {
		_, err := reg.MatchAll(probe, indexTopK)
		return err
	})
	if err != nil {
		return nil, err
	}
	prunedNs, _, err := timeOp(func() error {
		_, err := reg.MatchTop(probe, indexTopK, pruneOpt)
		return err
	})
	if err != nil {
		return nil, err
	}
	indexedNs, _, err := timeOp(func() error {
		_, _, err := reg.MatchIndexed(probe, indexTopK, indexOpt)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &IndexPoint{
		K:                 indexK,
		TopK:              indexTopK,
		PrunedCandidates:  pruneOpt.Limit(indexK, indexTopK),
		IndexedCandidates: indexOpt.Limit(indexK, indexTopK),
		CandidatesScored:  stats.CandidatesScored,
		FullNsPerOp:       fullNs,
		PrunedNsPerOp:     prunedNs,
		IndexedNsPerOp:    indexedNs,
		SpeedupVsPruned:   float64(prunedNs) / float64(indexedNs),
		SpeedupVsFull:     float64(fullNs) / float64(indexedNs),
		RecallAtK:         recall,
		PrunedRecallAtK:   prunedRecall,
	}, nil
}

// Write-heavy workload shape: writeSeed schemas registered before the
// timed window (so the snapshot path's O(corpus) rewrite has a real
// corpus), then writeWindow of sustained registrations per cell.
const (
	writeSeed    = 200
	writeWindow  = 300 * time.Millisecond
	writeWriters = 8
)

// writeDDL synthesizes a small, distinct DDL document per registration —
// the write path's cost should be dominated by durability, not parsing.
func writeDDL(i int) string {
	return fmt.Sprintf("CREATE TABLE Reg%d (ID INT PRIMARY KEY, Label%d VARCHAR(32), Amount DECIMAL(10,2), Created DATE);", i, i%7)
}

// measureWrites opens a durable registry in the given mode under a fresh
// temp dir, seeds it, and counts how many registrations the given number
// of concurrent writers complete in the timed window.
func measureWrites(cfg core.Config, wal bool, writers int) (regsPerSec float64, err error) {
	dir, err := os.MkdirTemp("", "cupidbench-write-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	m, err := core.NewMatcher(cfg)
	if err != nil {
		return 0, err
	}
	opts := registry.PersistOptions{} // snapshot-per-mutation, fsync'd
	if wal {
		opts = registry.DefaultPersistOptions()
	}
	p, _, err := registry.OpenPersistentOptions(dir, m, opts, cupid.ParseSchema)
	if err != nil {
		return 0, err
	}
	defer p.Close()
	for i := 0; i < writeSeed; i++ {
		if _, _, err := p.RegisterSource(fmt.Sprintf("seed%d", i), "sql", []byte(writeDDL(i))); err != nil {
			return 0, err
		}
	}

	var (
		ops    atomic.Int64
		nextID atomic.Int64
		wg     sync.WaitGroup
		errMu  sync.Mutex
		runErr error
	)
	deadline := time.Now().Add(writeWindow)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				i := int(nextID.Add(1)) + writeSeed
				if _, _, err := p.RegisterSource(fmt.Sprintf("reg%d", i), "sql", []byte(writeDDL(i))); err != nil {
					errMu.Lock()
					if runErr == nil {
						runErr = err
					}
					errMu.Unlock()
					return
				}
				ops.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return 0, runErr
	}
	if err := p.Close(); err != nil {
		return 0, err
	}
	return float64(ops.Load()) / elapsed.Seconds(), nil
}

// runWriteHeavy measures the four cells of the write workload.
func runWriteHeavy(cfg core.Config) (*WritePoint, error) {
	pt := &WritePoint{SeedCorpus: writeSeed, WindowMS: writeWindow.Milliseconds()}
	var err error
	if pt.SnapshotRegsPerSec1W, err = measureWrites(cfg, false, 1); err != nil {
		return nil, err
	}
	if pt.SnapshotRegsPerSec8W, err = measureWrites(cfg, false, writeWriters); err != nil {
		return nil, err
	}
	if pt.WALRegsPerSec1W, err = measureWrites(cfg, true, 1); err != nil {
		return nil, err
	}
	if pt.WALRegsPerSec8W, err = measureWrites(cfg, true, writeWriters); err != nil {
		return nil, err
	}
	pt.SpeedupAt8W = pt.WALRegsPerSec8W / pt.SnapshotRegsPerSec8W
	return pt, nil
}

// runBench executes the sweep and writes the JSON report.
func runBench(outPath string, withSelfCheck bool) error {
	if withSelfCheck {
		if err := selfCheck(); err != nil {
			return err
		}
	}
	report := BenchReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Workers:       par.Workers(),
		Note: "full Match pipeline, fresh matcher per op; sequential = 1 worker, " +
			"parallel = default pool; speedup tracks wall clock and approaches the " +
			"core count on multi-core hardware (1.0 on a single-core machine). " +
			"batch = 1 probe vs K prepared repository schemas: naive re-runs " +
			"expansion+analysis per Match call, prepared pays them once (registry). " +
			"prune = 1 probe vs K on the family corpus: full MatchAll scan vs " +
			"signature-pruned MatchTop, recall@K asserted exactly 1.0. " +
			"index = 1 probe vs 2000 on the family corpus: token inverted index " +
			"(MatchIndexed) vs pruned scan vs full scan, recall@10 averaged over " +
			"one probe per family and asserted >= 0.98, indexed required to beat " +
			"pruned on wall clock. " +
			"write = sustained registrations into a durable registry over a " +
			"pre-seeded corpus: snapshot-per-mutation vs WAL group commit at 1 " +
			"and 8 concurrent writers; the WAL must win on regs/sec at 8 writers",
	}
	fmt.Println("cupidbench: sequential vs parallel pipeline sweep")
	fmt.Printf("  GOMAXPROCS=%d NumCPU=%d workers=%d\n", report.GoMaxProcs, report.NumCPU, report.Workers)
	fmt.Println("  elements  leaves  seq ns/op      par ns/op      speedup  allocs seq/par")
	cfg := core.DefaultConfig()
	for _, spec := range benchSpecs() {
		w := workloads.Synthetic(spec)
		seqNs, seqAllocs, err := measure(w, cfg, 1)
		if err != nil {
			return err
		}
		parNs, parAllocs, err := measure(w, cfg, 0)
		if err != nil {
			return err
		}
		src := w.Source.ComputeStats()
		dst := w.Target.ComputeStats()
		pt := BenchPoint{
			Name:           w.Name,
			Elements:       w.Source.Len() + w.Target.Len(),
			Leaves:         src.Leaves + dst.Leaves,
			SeqNsPerOp:     seqNs,
			ParNsPerOp:     parNs,
			SeqAllocsPerOp: seqAllocs,
			ParAllocsPerOp: parAllocs,
			Speedup:        float64(seqNs) / float64(parNs),
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("  %8d  %6d  %-13d  %-13d  %6.2fx  %d/%d  %s\n",
			pt.Elements, pt.Leaves, pt.SeqNsPerOp, pt.ParNsPerOp, pt.Speedup,
			pt.SeqAllocsPerOp, pt.ParAllocsPerOp, pt.Name)
	}
	fmt.Printf("cupidbench: batch repository workload (1 probe vs K=%d prepared schemas)\n", batchK)
	batch, err := runBatch(cfg)
	if err != nil {
		return err
	}
	report.Batch = batch
	fmt.Printf("  naive (K Match calls):    %-13d ns/op  %d allocs/op\n", batch.NaiveNsPerOp, batch.NaiveAllocsPerOp)
	fmt.Printf("  prepared (registry):      %-13d ns/op  %d allocs/op\n", batch.PreparedNsPerOp, batch.PreparedAllocsPerOp)
	fmt.Printf("  speedup: %.2fx  alloc ratio: %.2fx\n", batch.Speedup,
		float64(batch.NaiveAllocsPerOp)/float64(batch.PreparedAllocsPerOp))
	if batch.PreparedNsPerOp >= batch.NaiveNsPerOp || batch.PreparedAllocsPerOp >= batch.NaiveAllocsPerOp {
		return fmt.Errorf("batch workload regression: prepared matching must beat %d independent Match calls on time and allocs (got %d vs %d ns/op, %d vs %d allocs/op)",
			batchK, batch.PreparedNsPerOp, batch.NaiveNsPerOp, batch.PreparedAllocsPerOp, batch.NaiveAllocsPerOp)
	}

	fmt.Printf("cupidbench: pruned retrieval workload (1 probe vs K=%d, top-%d)\n", pruneK, pruneTopK)
	prune, err := runPrune(cfg)
	if err != nil {
		return err
	}
	report.Prune = prune
	fmt.Printf("  full scan (MatchAll):     %-13d ns/op\n", prune.FullNsPerOp)
	fmt.Printf("  pruned (MatchTop, %3d):   %-13d ns/op\n", prune.Candidates, prune.PrunedNsPerOp)
	fmt.Printf("  speedup: %.2fx  recall@%d: %.3f\n", prune.Speedup, prune.TopK, prune.RecallAtK)
	if prune.RecallAtK != 1.0 {
		return fmt.Errorf("prune workload recall regression: recall@%d = %.3f, want exactly 1.0 (pruning changed the top-K ranking)", prune.TopK, prune.RecallAtK)
	}
	if prune.PrunedNsPerOp >= prune.FullNsPerOp {
		return fmt.Errorf("prune workload regression: pruned ranking must beat the full scan on time (got %d vs %d ns/op)", prune.PrunedNsPerOp, prune.FullNsPerOp)
	}

	fmt.Printf("cupidbench: indexed retrieval workload (1 probe vs K=%d, top-%d)\n", indexK, indexTopK)
	idx, err := runIndexed(cfg)
	if err != nil {
		return err
	}
	report.Index = idx
	fmt.Printf("  full scan (MatchAll):        %-13d ns/op\n", idx.FullNsPerOp)
	fmt.Printf("  pruned (MatchTop, %4d):     %-13d ns/op  recall@%d %.3f\n", idx.PrunedCandidates, idx.PrunedNsPerOp, idx.TopK, idx.PrunedRecallAtK)
	fmt.Printf("  indexed (MatchIndexed, %3d): %-13d ns/op  recall@%d %.3f  scored %d/%d\n",
		idx.IndexedCandidates, idx.IndexedNsPerOp, idx.TopK, idx.RecallAtK, idx.CandidatesScored, idx.K)
	fmt.Printf("  speedup vs pruned: %.2fx  vs full: %.2fx\n", idx.SpeedupVsPruned, idx.SpeedupVsFull)
	if idx.RecallAtK < 0.98 {
		return fmt.Errorf("index workload recall regression: recall@%d = %.3f vs the exact scan, want >= 0.98", idx.TopK, idx.RecallAtK)
	}
	if idx.IndexedNsPerOp >= idx.PrunedNsPerOp {
		return fmt.Errorf("index workload regression: indexed retrieval must beat the pruned scan on time (got %d vs %d ns/op)", idx.IndexedNsPerOp, idx.PrunedNsPerOp)
	}

	fmt.Printf("cupidbench: write-heavy workload (seed corpus %d, %v per cell)\n", writeSeed, writeWindow)
	wr, err := runWriteHeavy(cfg)
	if err != nil {
		return err
	}
	report.Write = wr
	fmt.Printf("  snapshot-per-mutation:  %8.0f regs/sec (1 writer)  %8.0f regs/sec (%d writers)\n",
		wr.SnapshotRegsPerSec1W, wr.SnapshotRegsPerSec8W, writeWriters)
	fmt.Printf("  WAL group commit:       %8.0f regs/sec (1 writer)  %8.0f regs/sec (%d writers)\n",
		wr.WALRegsPerSec1W, wr.WALRegsPerSec8W, writeWriters)
	fmt.Printf("  speedup at %d writers: %.2fx\n", writeWriters, wr.SpeedupAt8W)
	if wr.WALRegsPerSec8W <= wr.SnapshotRegsPerSec8W {
		return fmt.Errorf("write workload regression: WAL group commit must beat snapshot-per-mutation on registrations/sec at %d writers (got %.0f vs %.0f)",
			writeWriters, wr.WALRegsPerSec8W, wr.SnapshotRegsPerSec8W)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench report written to %s\n", outPath)
	return nil
}
