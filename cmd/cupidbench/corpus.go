package main

// The corpus experiment (-exp corpus): corpus-scale schema clustering and
// family-routed retrieval. One cell clusters a 10k-schema FamilyCorpus
// registry into families (index-generated candidate pairs, greedy-medoid
// components) and races family-routed retrieval against the flat indexed
// path over a family-probe mix, gated on the family route being faster
// with recall@10 >= 0.98 against the exhaustive scan. A second cell
// persists a clustering through the write-ahead journal, restarts the
// node, and replicates it to a follower, gated on both serving
// byte-identical family assignments (the canonical clustering bytes).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	cupid "repro"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/workloads"
)

// corpusScale is the registry size of the routing cell: large enough that
// generic tokens are stop-common (candidate generation is family-pure)
// and the per-family member sets dwarf the medoid probe list.
const corpusScale = 10000

// corpusTopK is the ranking depth of the routing sweeps.
const corpusTopK = 10

// corpusReps repeats each timed sweep, keeping the fastest (min-of-reps
// over interleaved repetitions, same discipline as the planner workload).
const corpusReps = 2

// corpusRecallGate is the routing cell's recall floor against the
// exhaustive scan.
const corpusRecallGate = 0.98

// corpusReplicaDocs sizes the durability cell's corpus: small enough to
// restart and replicate in milliseconds, large enough for several
// non-trivial families.
const corpusReplicaDocs = 600

// CorpusPoint is the -exp corpus report cell.
type CorpusPoint struct {
	// Corpus / Families / MedoidsProbed describe the routing cell's
	// clustering: repository size, families found, medoids the family
	// route probes per query.
	Corpus        int `json:"corpus"`
	Families      int `json:"families"`
	MedoidsProbed int `json:"medoids_probed"`
	Probes        int `json:"probes"`
	// ClusterNs is the one-off clustering cost (index-driven candidate
	// generation plus greedy-medoid assignment).
	ClusterNs int64 `json:"cluster_ns"`
	// IndexedNs / FamilyNs are the aggregate probe-sweep wall clocks.
	IndexedNs int64 `json:"indexed_ns"`
	FamilyNs  int64 `json:"family_ns"`
	// FamilySpeedup is IndexedNs / FamilyNs (the gated ratio).
	FamilySpeedup float64 `json:"family_speedup"`
	// Recall@10 against the exhaustive scan.
	IndexedRecall float64 `json:"indexed_recall_at_10"`
	FamilyRecall  float64 `json:"family_recall_at_10"`
	// Durability cell: the clustering's canonical bytes served after a
	// restart, and by a replication follower, are byte-identical to the
	// node that clustered.
	ReplicaDocs      int  `json:"replica_docs"`
	RestartIdentical bool `json:"restart_identical"`
	ReplicaIdentical bool `json:"replica_identical"`
}

// corpusRegistry builds and fills the routing cell's registry (same
// FamilyCorpus generation as the planner workload).
func corpusRegistry(cfg core.Config, k int) (*registry.Registry, error) {
	reg, err := registry.New(cfg)
	if err != nil {
		return nil, err
	}
	docs := namedFamilyCorpus(k)
	var mu sync.Mutex
	var firstErr error
	par.For(len(docs), func(i int) {
		if _, _, err := reg.Register(docs[i].Name, docs[i]); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	return reg, firstErr
}

// runCorpusRouting measures the routing cell: cluster the 10k corpus,
// then race family-routed retrieval against the flat indexed path.
func runCorpusRouting(cfg core.Config, point *CorpusPoint) error {
	reg, err := corpusRegistry(cfg, corpusScale)
	if err != nil {
		return err
	}
	point.Corpus = reg.Len()

	start := time.Now()
	res, err := reg.ClusterFamilies(corpus.Options{})
	if err != nil {
		return err
	}
	point.ClusterNs = time.Since(start).Nanoseconds()
	if err := reg.SetFamilies(res); err != nil {
		return err
	}
	point.Families = len(res.Families)
	point.MedoidsProbed = len(res.Families)
	fmt.Printf("  clustered %d schemas into %d families in %.1fms\n",
		res.Corpus, len(res.Families), float64(point.ClusterNs)/1e6)

	// One family probe per domain — the incoming-schema shape the
	// repository serves; rare-token probes are the planner workload's
	// concern.
	probes := make([]*core.Prepared, 0, workloads.NumFamilies())
	for f := 0; f < workloads.NumFamilies(); f++ {
		p, err := reg.Matcher().Prepare(workloads.FamilyProbe(f, 1234))
		if err != nil {
			return err
		}
		p.Signature()
		probes = append(probes, p)
	}
	point.Probes = len(probes)

	// Exhaustive ground truth, untimed (the planner workload times it).
	truth := make([][]registry.Ranked, len(probes))
	for i, p := range probes {
		if truth[i], err = reg.MatchAll(p, corpusTopK); err != nil {
			return err
		}
	}

	indexOpt := registry.DefaultIndexOptions()
	famOpt := registry.DefaultPlanOptions()
	famOpt.Force = registry.StrategyFamily
	bestNs, rankings, err := sweepInterleaved(probes, corpusReps, []func(*core.Prepared) ([]registry.Ranked, error){
		func(p *core.Prepared) ([]registry.Ranked, error) {
			ranked, _, err := reg.MatchIndexed(p, corpusTopK, indexOpt)
			return ranked, err
		},
		func(p *core.Prepared) ([]registry.Ranked, error) {
			ranked, _, err := reg.Match(p, corpusTopK, famOpt)
			return ranked, err
		},
	})
	if err != nil {
		return err
	}
	point.IndexedNs, point.FamilyNs = bestNs[0], bestNs[1]
	point.FamilySpeedup = float64(point.IndexedNs) / float64(point.FamilyNs)
	point.IndexedRecall = meanRecall(truth, rankings[0])
	point.FamilyRecall = meanRecall(truth, rankings[1])

	// The family route must actually route (not fall back), asserted via
	// the stats of one representative call.
	_, st, err := reg.Match(probes[0], corpusTopK, famOpt)
	if err != nil {
		return err
	}
	if st.Strategy != registry.StrategyFamily || st.FamilyFallback {
		return fmt.Errorf("corpus gate: family retrieval fell back (strategy %s, fallback %v) — the clustering is not routable", st.Strategy, st.FamilyFallback)
	}

	fmt.Printf("  1-vs-%d, top-%d, %d probes: indexed %.1fms, family %.1fms (%.2fx), recall ix/fam %.3f/%.3f\n",
		point.Corpus, corpusTopK, point.Probes,
		float64(point.IndexedNs)/1e6, float64(point.FamilyNs)/1e6, point.FamilySpeedup,
		point.IndexedRecall, point.FamilyRecall)

	if point.FamilyNs >= point.IndexedNs {
		return fmt.Errorf("corpus gate: family-routed sweep %.1fms is not faster than flat indexed %.1fms at corpus %d",
			float64(point.FamilyNs)/1e6, float64(point.IndexedNs)/1e6, point.Corpus)
	}
	if point.FamilyRecall < corpusRecallGate {
		return fmt.Errorf("corpus gate: family recall@%d = %.3f at corpus %d, want >= %.2f",
			corpusTopK, point.FamilyRecall, point.Corpus, corpusRecallGate)
	}
	return nil
}

// runCorpusDurability measures the durability cell: persist a clustering
// through the journal, restart, replicate, and compare canonical bytes.
func runCorpusDurability(cfg core.Config, point *CorpusPoint) (err error) {
	priDir, err := os.MkdirTemp("", "cupidbench-corpus-pri-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(priDir)
	folDir, err := os.MkdirTemp("", "cupidbench-corpus-fol-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(folDir)

	open := func(dir string) (*registry.Persistent, error) {
		m, err := core.NewMatcher(cfg)
		if err != nil {
			return nil, err
		}
		p, warns, err := registry.OpenPersistentOptions(dir, m, registry.PersistOptions{WAL: true}, cupid.ParseSchema)
		if err != nil {
			return nil, err
		}
		if len(warns) > 0 {
			return nil, fmt.Errorf("recovery warnings on %s: %v", dir, warns)
		}
		return p, nil
	}

	pri, err := open(priDir)
	if err != nil {
		return err
	}
	defer func() {
		if pri != nil {
			pri.Close()
		}
	}()
	docs := namedFamilyCorpus(corpusReplicaDocs)
	point.ReplicaDocs = len(docs)
	for _, s := range docs {
		if _, _, err := pri.Register(s.Name, s); err != nil {
			return err
		}
	}
	res, err := pri.ClusterFamilies(corpus.Options{})
	if err != nil {
		return err
	}
	if err := pri.StoreFamilies(res); err != nil {
		return err
	}
	want := append([]byte(nil), pri.FamiliesJSON()...)
	if len(want) == 0 {
		return fmt.Errorf("corpus gate: primary has no canonical clustering bytes after StoreFamilies")
	}

	// Restart: close, reopen, and the recovered node must serve the exact
	// clustering bytes (installed from the journaled metadata document).
	if err := pri.Close(); err != nil {
		return err
	}
	pri = nil
	pri2, err := open(priDir)
	if err != nil {
		return err
	}
	defer pri2.Close()
	point.RestartIdentical = bytes.Equal(pri2.FamiliesJSON(), want)
	fmt.Printf("  restarted node clustering bytes identical: %v (%d bytes, %d families)\n",
		point.RestartIdentical, len(want), len(res.Families))
	if !point.RestartIdentical {
		return fmt.Errorf("corpus gate: restarted node's clustering differs from the one stored")
	}

	// Replicate: a fresh follower applying the replication stream must
	// serve the same bytes (the metadata document ships like any put).
	fol, err := open(folDir)
	if err != nil {
		return err
	}
	defer fol.Close()
	target, err := pri2.ReplicationPos()
	if err != nil {
		return err
	}
	state := &registry.ReplState{}
	if _, err := shipStream(pri2, fol, state, registry.ReplPos{}, 0, &target, nil); err != nil {
		return err
	}
	point.ReplicaIdentical = bytes.Equal(fol.FamiliesJSON(), want) && fol.Len() == pri2.Len()
	fmt.Printf("  replicated node clustering bytes identical: %v (%d docs)\n",
		point.ReplicaIdentical, fol.Len())
	if !point.ReplicaIdentical {
		return fmt.Errorf("corpus gate: follower's clustering differs from the primary's")
	}
	return nil
}

// runCorpus executes the corpus workload, enforces its gates, and merges
// the result into the bench report at outPath.
func runCorpus(outPath string) error {
	cfg := core.DefaultConfig()
	point := &CorpusPoint{}
	fmt.Println("cupidbench: corpus clustering + family-routed retrieval (FamilyCorpus)")
	if err := runCorpusRouting(cfg, point); err != nil {
		return err
	}
	if err := runCorpusDurability(cfg, point); err != nil {
		return err
	}

	// Merge into the bench report without clobbering other experiments.
	report := BenchReport{}
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing existing %s: %w", outPath, err)
		}
	}
	report.GeneratedUnix = time.Now().Unix()
	if report.GoMaxProcs == 0 {
		report.GoMaxProcs = runtime.GOMAXPROCS(0)
		report.NumCPU = runtime.NumCPU()
		report.Workers = par.Workers()
	}
	report.Corpus = point
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("corpus results merged into %s\n", outPath)
	return nil
}
