package main

// Bench-trend regression gating (-compare): diff a freshly generated
// BENCH_cupid.json against a committed baseline and fail when the trend
// regresses. The walk is schema-agnostic — any numeric field whose JSON
// key contains "speedup" is a ratio that must not degrade more than
// compareSpeedupTolerance, and any key containing "recall" is a quality
// floor that must not drop at all — so new experiments are gated the
// moment they start reporting, without touching this file.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// compareSpeedupTolerance is how much of a baseline speedup ratio may be
// lost before the comparison fails: fresh >= baseline * (1 - tolerance).
// Machine-to-machine and run-to-run noise on the gated ratios is well
// under this; losing more than a quarter of a speedup is a real trend
// break, not noise.
const compareSpeedupTolerance = 0.25

// compareFinding is one regressed metric.
type compareFinding struct {
	path     string
	baseline float64
	fresh    float64
	kind     string // "speedup" or "recall"
}

func (f compareFinding) String() string {
	switch f.kind {
	case "speedup":
		return fmt.Sprintf("%s: speedup %.3f -> %.3f (lost %.0f%%, tolerance %.0f%%)",
			f.path, f.baseline, f.fresh, 100*(1-f.fresh/f.baseline), 100*compareSpeedupTolerance)
	default:
		return fmt.Sprintf("%s: recall %.4f -> %.4f (any drop fails)", f.path, f.baseline, f.fresh)
	}
}

// gatedKind classifies a JSON key: "speedup" ratios, "recall" floors, or
// "" for everything else.
func gatedKind(key string) string {
	k := strings.ToLower(key)
	switch {
	case strings.Contains(k, "speedup"):
		return "speedup"
	case strings.Contains(k, "recall"):
		return "recall"
	}
	return ""
}

// compareWalk recursively walks baseline and fresh in lockstep,
// collecting regressions on gated numeric leaves. A gated metric present
// in the baseline but missing from the fresh report is a regression too
// (an experiment silently dropped is not an improvement); metrics new in
// the fresh report pass ungated (no baseline to hold them to).
func compareWalk(path string, baseline, fresh any, findings *[]compareFinding) {
	switch b := baseline.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			f = map[string]any{}
		}
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			compareWalk(path+"."+k, b[k], f[k], findings)
		}
	case []any:
		f, _ := fresh.([]any)
		for i, bv := range b {
			var fv any
			if i < len(f) {
				fv = f[i]
			}
			compareWalk(fmt.Sprintf("%s[%d]", path, i), bv, fv, findings)
		}
	case float64:
		key := path
		if i := strings.LastIndexAny(path, ".]"); i >= 0 {
			key = path[i+1:]
		}
		kind := gatedKind(key)
		if kind == "" {
			return
		}
		fv, ok := fresh.(float64)
		if !ok {
			*findings = append(*findings, compareFinding{path: path, baseline: b, fresh: 0, kind: kind})
			return
		}
		switch kind {
		case "speedup":
			if fv < b*(1-compareSpeedupTolerance) {
				*findings = append(*findings, compareFinding{path: path, baseline: b, fresh: fv, kind: kind})
			}
		case "recall":
			if fv < b {
				*findings = append(*findings, compareFinding{path: path, baseline: b, fresh: fv, kind: kind})
			}
		}
	}
}

// compareReports diffs two parsed reports, returning the regressions.
func compareReports(baseline, fresh any) []compareFinding {
	var findings []compareFinding
	compareWalk("$", baseline, fresh, &findings)
	return findings
}

// parseCompareJSON parses report bytes into the generic tree compareWalk
// consumes.
func parseCompareJSON(data []byte) (any, error) {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// runCompare loads the fresh report (freshPath, normally the -benchout
// just regenerated) and the committed baseline, and fails with every
// regressed metric listed when the trend broke.
func runCompare(freshPath, baselinePath string) error {
	parse := func(path string) (any, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		v, err := parseCompareJSON(data)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return v, nil
	}
	baseline, err := parse(baselinePath)
	if err != nil {
		return err
	}
	fresh, err := parse(freshPath)
	if err != nil {
		return err
	}
	findings := compareReports(baseline, fresh)
	if len(findings) == 0 {
		fmt.Printf("bench compare: %s holds every speedup (within %.0f%%) and recall gate of %s\n",
			freshPath, 100*compareSpeedupTolerance, baselinePath)
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "bench compare: %d metric(s) regressed vs %s:\n", len(findings), baselinePath)
	for _, f := range findings {
		fmt.Fprintf(&sb, "  %s\n", f)
	}
	return fmt.Errorf("%s", strings.TrimRight(sb.String(), "\n"))
}
