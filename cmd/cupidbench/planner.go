package main

// The planner experiment (-exp planner): the adaptive retrieval planner
// against every static policy at three corpus scales. Each scale builds
// a FamilyCorpus registry, sweeps a fixed probe mix (family probes plus
// rare-token probes — the incoming-schema shapes the repository serves)
// through all four policies, and records aggregate sweep time, recall@10
// against the exhaustive scan, the strategies the planner chose, and the
// planning step's allocations. Gated: planned recall@10 must be exactly
// 1.0 at every scale, the planned sweep must not be slower than any
// static policy at any scale, and planning must not allocate. Stop-heavy
// probes (where no budgeted policy reaches recall 1.0 and the planner's
// job is only to not lose to the best static) are exercised by the
// property tests in internal/registry, not gated here.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/workloads"
)

// plannerTopK is the ranking depth of every planner-workload sweep.
const plannerTopK = 10

// plannerScales are the corpus sizes of the planner workload. The small
// scale is where static policies are near-indistinguishable (the planner
// must simply not lose); the large scales are where a fixed fraction of
// the corpus diverges from the probe's reachable cluster and the
// adaptive budget pays off.
var plannerScales = []int{200, 2000, 20000}

// plannerProbeSpec is one probe of the workload mix.
type plannerProbeSpec struct {
	name string
	rare bool
	fam  int
	seed int64
}

// plannerProbes returns the probe mix for one corpus scale: one family
// probe per domain, plus rare-token probes over four domains once the
// corpus is large enough for them to be meaningful. Against the small
// corpus's 20-schema families a rare-token probe is degenerate — its
// reachable posting pool is smaller than any candidate budget and the
// exhaustive top-10 is dominated by matches sharing no raw token at all
// (thesaurus and structural similarity only), which no token-driven
// policy, static or planned, can retrieve; the not-losing guarantee for
// that shape is covered by the internal/registry property tests. The
// large scale trims the mix — its exhaustive ground-truth sweeps
// dominate the experiment's runtime — while keeping both probe shapes.
func plannerProbes(k int) []plannerProbeSpec {
	var specs []plannerProbeSpec
	if k >= 20000 {
		for _, f := range []int{0, 4, 8} {
			specs = append(specs, plannerProbeSpec{name: fmt.Sprintf("fam%d", f), fam: f, seed: 1234})
		}
		for _, f := range []int{3, 6} {
			specs = append(specs, plannerProbeSpec{name: fmt.Sprintf("rare%d", f), rare: true, fam: f, seed: 55})
		}
		return specs
	}
	for f := 0; f < workloads.NumFamilies(); f++ {
		specs = append(specs, plannerProbeSpec{name: fmt.Sprintf("fam%d", f), fam: f, seed: 1234})
	}
	if k >= 2000 {
		for _, f := range []int{1, 3, 6, 8} {
			specs = append(specs, plannerProbeSpec{name: fmt.Sprintf("rare%d", f), rare: true, fam: f, seed: 55})
		}
	}
	return specs
}

// plannerReps is how many times each policy's sweep is repeated at a
// given corpus scale (the aggregate is the fastest repetition — the
// standard way to strip scheduler and allocator noise from a
// deterministic workload). Small corpora sweep in tens of milliseconds
// and need the repetitions; the 20k scale's exhaustive sweep runs for
// tens of seconds and is its own noise floor.
func plannerReps(k int) int {
	switch {
	case k >= 20000:
		return 1
	case k >= 2000:
		return 3
	default:
		return 5
	}
}

// plannerNoiseMargin is the measurement-noise guard on the time gate: at
// the small scale the planner picks the same strategy and budget as the
// best static policy for most probes, so the two sweeps do identical
// work and a strict comparison of equal quantities is a coin flip. The
// planner must stay within this fraction of every static policy — a real
// regression (a mis-planned probe pays a full extra scan) is an order of
// magnitude larger than this margin.
const plannerNoiseMargin = 0.05

// PlannerScalePoint is one corpus scale's measurements.
type PlannerScalePoint struct {
	K      int `json:"k"`
	Probes int `json:"probes"`
	// Aggregate wall clock for one full probe sweep per policy.
	ExactNs   int64 `json:"exact_ns"`
	PrunedNs  int64 `json:"pruned_ns"`
	IndexedNs int64 `json:"indexed_ns"`
	PlannedNs int64 `json:"planned_ns"`
	// Recall@10 against the exhaustive scan, averaged over the mix.
	PrunedRecall  float64 `json:"pruned_recall"`
	IndexedRecall float64 `json:"indexed_recall"`
	PlannedRecall float64 `json:"planned_recall"`
	// Strategies counts the planner's choices over the mix ("pruned": 2).
	Strategies map[string]int `json:"strategies"`
	// MeanPlannedBudget / MeanStaticBudget compare the planner's candidate
	// budgets with the static indexed policy's fixed fraction.
	MeanPlannedBudget float64 `json:"mean_planned_budget"`
	MeanStaticBudget  float64 `json:"mean_static_budget"`
	// PlanAllocsPerOp is heap allocations per Plan call (warm probe).
	PlanAllocsPerOp float64 `json:"plan_allocs_per_op"`
}

// PlannerPoint is the -exp planner report: one cell per corpus scale.
type PlannerPoint struct {
	TopK   int                 `json:"top_k"`
	Scales []PlannerScalePoint `json:"scales"`
}

// plannerRegistry builds and fills the registry for one scale. Schemas
// are generated and registered over the worker pool: corpus construction
// is ~half linguistic analysis and dominates the experiment's setup at
// the 20k scale.
func plannerRegistry(cfg core.Config, k int) (*registry.Registry, error) {
	reg, err := registry.New(cfg)
	if err != nil {
		return nil, err
	}
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{
		PerFamily: k / workloads.NumFamilies(),
		Seed:      17,
	})
	var mu sync.Mutex
	var firstErr error
	par.For(len(corpus), func(i int) {
		if _, _, err := reg.Register(corpus[i].Name, corpus[i]); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	return reg, firstErr
}

// sweep runs every probe through one retrieval policy, returning the
// aggregate wall clock and the per-probe rankings.
func sweep(probes []*core.Prepared, run func(*core.Prepared) ([]registry.Ranked, error)) (int64, [][]registry.Ranked, error) {
	out := make([][]registry.Ranked, len(probes))
	start := time.Now()
	for i, p := range probes {
		ranked, err := run(p)
		if err != nil {
			return 0, nil, err
		}
		out[i] = ranked
	}
	return time.Since(start).Nanoseconds(), out, nil
}

// sweepInterleaved repeats every policy's sweep reps times, cycling
// through the policies within each repetition, and keeps each policy's
// fastest aggregate. Two biases are neutralized beyond plain
// min-of-reps: ambient load drifts over seconds, so running one
// policy's repetitions back to back would hand whichever policy ran in
// the quietest window a phantom win (cycling samples the same windows
// for every policy); and the position within a cycle matters — the
// exhaustive sweep's garbage inflates the GC pacer's target, taxing
// whoever runs after it — so the starting policy rotates per repetition
// and each sweep starts from a freshly collected heap. The retrieval
// paths are deterministic, so the rankings of any repetition are
// interchangeable.
func sweepInterleaved(probes []*core.Prepared, reps int, runs []func(*core.Prepared) ([]registry.Ranked, error)) ([]int64, [][][]registry.Ranked, error) {
	bestNs := make([]int64, len(runs))
	out := make([][][]registry.Ranked, len(runs))
	for r := 0; r < reps; r++ {
		for j := range runs {
			i := (r + j) % len(runs)
			runtime.GC()
			ns, ranked, err := sweep(probes, runs[i])
			if err != nil {
				return nil, nil, err
			}
			if out[i] == nil || ns < bestNs[i] {
				bestNs[i], out[i] = ns, ranked
			}
		}
	}
	return bestNs, out, nil
}

// meanRecall is the mean top-K name overlap of each ranking with its
// probe's exhaustive ground truth.
func meanRecall(truth, got [][]registry.Ranked) float64 {
	total, hits := 0, 0
	for i := range truth {
		exact := topNames(truth[i])
		total += len(truth[i])
		for _, rk := range got[i] {
			if exact[rk.Entry.Name] {
				hits++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// runPlannerScale measures one corpus scale.
func runPlannerScale(cfg core.Config, k int) (*PlannerScalePoint, error) {
	reg, err := plannerRegistry(cfg, k)
	if err != nil {
		return nil, err
	}
	specs := plannerProbes(k)
	probes := make([]*core.Prepared, len(specs))
	for i, ps := range specs {
		s := workloads.FamilyProbe(ps.fam, ps.seed)
		if ps.rare {
			s = workloads.RareTokenProbe(ps.fam, ps.seed)
		}
		p, err := reg.Matcher().Prepare(s)
		if err != nil {
			return nil, err
		}
		p.Signature() // warm the cached signature: planning is measured, not memoization
		probes[i] = p
	}
	pruneOpt := registry.DefaultPruneOptions()
	indexOpt := registry.DefaultIndexOptions()
	planOpt := registry.DefaultPlanOptions()

	pt := &PlannerScalePoint{
		K:          reg.Len(),
		Probes:     len(probes),
		Strategies: map[string]int{},
	}

	// One warm-up scan (page in entries and code paths), then the timed
	// sweeps. The exact sweep doubles as ground truth.
	if _, err := reg.MatchAll(probes[0], plannerTopK); err != nil {
		return nil, err
	}
	reps := plannerReps(k)
	bestNs, rankings, err := sweepInterleaved(probes, reps, []func(*core.Prepared) ([]registry.Ranked, error){
		func(p *core.Prepared) ([]registry.Ranked, error) {
			return reg.MatchAll(p, plannerTopK)
		},
		func(p *core.Prepared) ([]registry.Ranked, error) {
			return reg.MatchTop(p, plannerTopK, pruneOpt)
		},
		func(p *core.Prepared) ([]registry.Ranked, error) {
			ranked, _, err := reg.MatchIndexed(p, plannerTopK, indexOpt)
			return ranked, err
		},
		func(p *core.Prepared) ([]registry.Ranked, error) {
			ranked, _, err := reg.Match(p, plannerTopK, planOpt)
			return ranked, err
		},
	})
	if err != nil {
		return nil, err
	}
	exactNs, prunedNs, indexedNs, plannedNs := bestNs[0], bestNs[1], bestNs[2], bestNs[3]
	truth, pruned, indexed, planned := rankings[0], rankings[1], rankings[2], rankings[3]
	// The decisions themselves, outside the timed loops (planning is
	// deterministic, so these are exactly the choices the timed planned
	// sweep made).
	var budgets int64
	for _, p := range probes {
		pl := reg.Plan(p, plannerTopK, planOpt)
		pt.Strategies[pl.Strategy.String()]++
		budgets += int64(pl.Budget)
	}

	pt.ExactNs, pt.PrunedNs, pt.IndexedNs, pt.PlannedNs = exactNs, prunedNs, indexedNs, plannedNs
	pt.PrunedRecall = meanRecall(truth, pruned)
	pt.IndexedRecall = meanRecall(truth, indexed)
	pt.PlannedRecall = meanRecall(truth, planned)
	pt.MeanPlannedBudget = float64(budgets) / float64(len(probes))
	pt.MeanStaticBudget = float64(indexOpt.Limit(reg.Len(), plannerTopK))
	pt.PlanAllocsPerOp = testing.AllocsPerRun(200, func() {
		reg.Plan(probes[0], plannerTopK, planOpt)
	})
	return pt, nil
}

// renderStrategies formats a strategy histogram deterministically.
func renderStrategies(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// runPlanner executes the planner-vs-static workload at every scale,
// enforces the planner gates, and merges the result into the bench
// report at outPath (preserving any other experiment's data).
func runPlanner(outPath string) error {
	cfg := core.DefaultConfig()
	point := &PlannerPoint{TopK: plannerTopK}
	fmt.Println("cupidbench: retrieval planner vs static policies (FamilyCorpus, top-10)")
	fmt.Println("  corpus  probes  exact ms  pruned ms  indexed ms  planned ms  recall pl/ix/pr  budget pl/static  plan choices")
	for _, k := range plannerScales {
		pt, err := runPlannerScale(cfg, k)
		if err != nil {
			return err
		}
		point.Scales = append(point.Scales, *pt)
		fmt.Printf("  %6d  %6d  %8.1f  %9.1f  %10.1f  %10.1f  %.2f/%.2f/%.2f   %5.0f/%-5.0f      %s\n",
			pt.K, pt.Probes,
			float64(pt.ExactNs)/1e6, float64(pt.PrunedNs)/1e6,
			float64(pt.IndexedNs)/1e6, float64(pt.PlannedNs)/1e6,
			pt.PlannedRecall, pt.IndexedRecall, pt.PrunedRecall,
			pt.MeanPlannedBudget, pt.MeanStaticBudget,
			renderStrategies(pt.Strategies))

		// Gates, per scale: the planner must never lose recall, must not
		// be slower than any static policy on the aggregate sweep, and the
		// planning step itself must be free.
		if pt.PlannedRecall != 1.0 {
			return fmt.Errorf("planner gate: recall@%d = %.3f at corpus %d, want exactly 1.0 (the plan lost results the exact scan finds)",
				plannerTopK, pt.PlannedRecall, pt.K)
		}
		for name, staticNs := range map[string]int64{"exact": pt.ExactNs, "pruned": pt.PrunedNs, "indexed": pt.IndexedNs} {
			if float64(pt.PlannedNs) > float64(staticNs)*(1+plannerNoiseMargin) {
				return fmt.Errorf("planner gate: planned sweep %.1fms slower than static %s %.1fms at corpus %d (tolerance %.0f%%)",
					float64(pt.PlannedNs)/1e6, name, float64(staticNs)/1e6, pt.K, 100*plannerNoiseMargin)
			}
		}
		if pt.PlanAllocsPerOp != 0 {
			return fmt.Errorf("planner gate: planning allocates %.1f objects/op at corpus %d, want 0", pt.PlanAllocsPerOp, pt.K)
		}
	}

	// Merge into the bench report without clobbering other experiments.
	report := BenchReport{}
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing existing %s: %w", outPath, err)
		}
	}
	report.GeneratedUnix = time.Now().Unix()
	if report.GoMaxProcs == 0 {
		report.GoMaxProcs = runtime.GOMAXPROCS(0)
		report.NumCPU = runtime.NumCPU()
		report.Workers = par.Workers()
	}
	report.Planner = point
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("planner results merged into %s\n", outPath)
	return nil
}
