package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadSchemaDispatch(t *testing.T) {
	dir := t.TempDir()
	sql := write(t, dir, "a.sql", `CREATE TABLE T (X INT);`)
	xsd := write(t, dir, "b.xsd", `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="R"><xs:complexType>
    <xs:attribute name="a" type="xs:int"/>
  </xs:complexType></xs:element>
</xs:schema>`)
	dtd := write(t, dir, "c.dtd", `<!ELEMENT R EMPTY> <!ATTLIST R a CDATA #REQUIRED>`)
	jsn := write(t, dir, "d.json", `{"name":"J","root":{"name":"J","children":[{"name":"A"}]}}`)
	jss := write(t, dir, "e.jsonschema", `{"type":"object","properties":{"id":{"type":"integer"}}}`)
	avs := write(t, dir, "f.avsc", `{"type":"record","name":"R","fields":[{"name":"id","type":"long"}]}`)

	for _, p := range []string{sql, xsd, dtd, jsn, jss, avs} {
		s, err := loadSchema(p)
		if err != nil {
			t.Errorf("loadSchema(%s): %v", p, err)
			continue
		}
		if s.Len() == 0 {
			t.Errorf("loadSchema(%s): empty schema", p)
		}
	}

	// Unknown extension rejected, with the extension named in the error.
	txt := write(t, dir, "e.txt", "hello")
	if _, err := loadSchema(txt); err == nil {
		t.Error("unknown extension accepted")
	} else if !strings.Contains(err.Error(), ".txt") {
		t.Errorf("unknown-extension error does not name the extension: %v", err)
	}
	// Extension-less path rejected with a readable message (not the old
	// `unknown schema format ""`).
	bare := write(t, dir, "noext", "hello")
	if _, err := loadSchema(bare); err == nil {
		t.Error("extension-less path accepted")
	} else if !strings.Contains(err.Error(), "no extension") {
		t.Errorf("extension-less error is not readable: %v", err)
	}
	// Missing file.
	if _, err := loadSchema(filepath.Join(dir, "missing.sql")); err == nil {
		t.Error("missing file accepted")
	}
	// Malformed content.
	bad := write(t, dir, "f.sql", "DROP EVERYTHING;")
	if _, err := loadSchema(bad); err == nil {
		t.Error("malformed DDL accepted")
	}
}
