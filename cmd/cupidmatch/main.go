// Command cupidmatch matches two schema files with the Cupid algorithm
// and prints the discovered mapping.
//
// Usage:
//
//	cupidmatch [flags] SOURCE TARGET
//
// SOURCE and TARGET are schema files; the format is inferred from the
// extension: .sql (SQL DDL), .xsd (XML Schema), .dtd (XML DTD), .json
// (native schema JSON), .jsonschema (JSON Schema), or .avsc (Avro).
//
// Flags:
//
//	-thesaurus FILE   load a thesaurus JSON file (default: built-in base)
//	-no-thesaurus     run with an empty thesaurus
//	-one-to-one       generate a 1:1 mapping instead of the naive 1:n
//	-mode MODE        full (default), linguistic, or structural
//	-leaves-only      suppress non-leaf mapping elements
//	-dump             print the expanded schema trees before the mapping
//	-min FLOAT        acceptance threshold thaccept (default 0.5)
//	-json             emit the mapping as JSON instead of text
//	-xslt             emit an XSLT skeleton for the mapping instead of text
//	-hierarchy        render the mapping as a nested (model-management) tree
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	cupid "repro"
)

func loadSchema(path string) (*cupid.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ext := filepath.Ext(path)
	if ext == "" {
		return nil, fmt.Errorf("cannot infer the schema format of %q: the path has no extension (want .sql, .xsd, .dtd, .json, .jsonschema or .avsc)", path)
	}
	name := strings.TrimSuffix(filepath.Base(path), ext)
	return cupid.ParseSchema(name, ext, data)
}

func run() error {
	thesaurusPath := flag.String("thesaurus", "", "thesaurus JSON file (default: built-in base thesaurus)")
	noThesaurus := flag.Bool("no-thesaurus", false, "run with an empty thesaurus")
	oneToOne := flag.Bool("one-to-one", false, "generate a 1:1 mapping")
	mode := flag.String("mode", "full", "matching mode: full, linguistic, structural")
	leavesOnly := flag.Bool("leaves-only", false, "suppress non-leaf mapping elements")
	dump := flag.Bool("dump", false, "print the expanded schema trees")
	minAccept := flag.Float64("min", 0.5, "acceptance threshold thaccept")
	asJSON := flag.Bool("json", false, "emit the mapping as JSON")
	asXSLT := flag.Bool("xslt", false, "emit an XSLT skeleton")
	asTree := flag.Bool("hierarchy", false, "render the mapping as a nested tree")
	flag.Parse()

	if flag.NArg() != 2 {
		return fmt.Errorf("usage: cupidmatch [flags] SOURCE TARGET")
	}
	src, err := loadSchema(flag.Arg(0))
	if err != nil {
		return fmt.Errorf("loading source: %w", err)
	}
	dst, err := loadSchema(flag.Arg(1))
	if err != nil {
		return fmt.Errorf("loading target: %w", err)
	}

	cfg := cupid.DefaultConfig()
	switch {
	case *noThesaurus:
		cfg.Thesaurus = cupid.NewThesaurus()
	case *thesaurusPath != "":
		f, err := os.Open(*thesaurusPath)
		if err != nil {
			return err
		}
		th, err := cupid.ReadThesaurus(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading thesaurus: %w", err)
		}
		cfg.Thesaurus = th
	}
	if *oneToOne {
		cfg.Mapping.Cardinality = cupid.OneToOne
	}
	switch *mode {
	case "full":
	case "linguistic":
		cfg.Mode = cupid.ModeLinguisticOnly
	case "structural":
		cfg.Mode = cupid.ModeStructuralOnly
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	cfg.Mapping.NonLeaves = !*leavesOnly
	cfg.Mapping.ThAccept = *minAccept

	m, err := cupid.NewMatcher(cfg)
	if err != nil {
		return err
	}
	res, err := m.Match(src, dst)
	if err != nil {
		return err
	}
	if *dump {
		fmt.Println("source tree:")
		fmt.Print(res.SourceTree.Dump())
		fmt.Println("target tree:")
		fmt.Print(res.TargetTree.Dump())
	}
	switch {
	case *asJSON:
		return res.Mapping.WriteJSON(os.Stdout)
	case *asXSLT:
		return res.Mapping.WriteXSLT(os.Stdout, res.TargetTree)
	case *asTree:
		fmt.Print(res.Mapping.Hierarchy())
	default:
		fmt.Print(res.Mapping)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cupidmatch:", err)
		os.Exit(1)
	}
}
