// Command cupidrouter fronts a cluster of cupidd shards with a single
// schema-matching endpoint. The corpus is partitioned by a consistent-hash
// ring over schema names: registrations (POST /schemas) and per-schema
// reads (GET /schemas/{name}, DELETE /schemas/{name}) are forwarded to the
// owning shard, GET /schemas merges every member's listing, and
// POST /match/batch is scatter-gathered — every shard ranks the source
// against its partition and the router merges the per-shard top-K into one
// global ranking that is element-for-element identical to a single node
// holding the whole corpus. A shard that misses the match deadline is shed:
// the response carries the surviving shards' merged results with
// "degraded": true and a per-shard status list instead of hanging.
// GET /healthz and GET /readyz behave exactly as on cupidd, so the same
// probes work against either binary.
//
// Flags:
//
//	-addr            listen address (default :8437)
//	-shards          comma-separated cupidd base URLs (required)
//	-vnodes          virtual nodes per shard on the placement ring
//	-concurrency     concurrent scatter-gather matches admitted
//	-queue-depth     bounded admission queue; beyond it arrivals get 429
//	-queue-wait      max queueing latency before a 429 with Retry-After
//	-match-deadline  end-to-end deadline per scatter-gather match
//	-max-body        request body cap in bytes (413 beyond)
//
// SIGTERM/SIGINT drain exactly like cupidd: new work is refused with 503
// while in-flight fan-outs finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

type options struct {
	addr          string
	shards        string
	vnodes        int
	concurrency   int
	queueDepth    int
	queueWait     time.Duration
	matchDeadline time.Duration
	maxBody       int64
}

func newFlagSet() (*flag.FlagSet, *options) {
	opt := &options{}
	fs := flag.NewFlagSet("cupidrouter", flag.ContinueOnError)
	fs.StringVar(&opt.addr, "addr", ":8437", "listen address")
	fs.StringVar(&opt.shards, "shards", "", "comma-separated base URLs of the cupidd shards the ring partitions the corpus over (required)")
	fs.IntVar(&opt.vnodes, "vnodes", cluster.DefaultVnodes, "virtual nodes per shard on the consistent-hash placement ring")
	fs.IntVar(&opt.concurrency, "concurrency", 0, "concurrent scatter-gather matches admitted; 0 sizes the pool automatically")
	fs.IntVar(&opt.queueDepth, "queue-depth", 0, "bounded admission queue; arrivals beyond it are rejected with 429 immediately; 0 means 8x the concurrency")
	fs.DurationVar(&opt.queueWait, "queue-wait", time.Second, "queueing latency target: a request that waits longer for a slot is rejected with 429 and a Retry-After hint")
	fs.DurationVar(&opt.matchDeadline, "match-deadline", 30*time.Second, "end-to-end deadline per scatter-gather match; a shard that misses it is shed and the response marked degraded; 0 disables")
	fs.Int64Var(&opt.maxBody, "max-body", 4<<20, "request body cap in bytes; larger bodies are rejected with 413")
	return fs, opt
}

// routerFromOptions validates the flag set into a running router.
func routerFromOptions(opt *options) (*cluster.Router, error) {
	if strings.TrimSpace(opt.shards) == "" {
		return nil, errors.New("-shards is required (comma-separated cupidd base URLs)")
	}
	var urls []string
	for _, s := range strings.Split(opt.shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			urls = append(urls, s)
		}
	}
	return cluster.NewRouter(cluster.Options{
		Shards:        urls,
		Vnodes:        opt.vnodes,
		Read:          serve.PoolOptions{Slots: opt.concurrency, Queue: opt.queueDepth, MaxWait: opt.queueWait},
		MatchDeadline: opt.matchDeadline,
		MaxBody:       opt.maxBody,
	})
}

func run(args []string) error {
	fs, opt := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	rt, err := routerFromOptions(opt)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              opt.addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("cupidrouter: routing over %d shards, listening on %s", len(rt.Shards()), opt.addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		log.Print("cupidrouter: shutting down: draining in-flight fan-outs, rejecting new ones with 503")
		rt.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cupidrouter:", err)
		os.Exit(1)
	}
}
