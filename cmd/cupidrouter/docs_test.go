package main

// Doc-conformance coverage for the router: the `## cupidrouter` section
// of docs/API.md is this binary's contract. Its route headers and flag
// table must equal what the binary declares (both directions), mirroring
// the cupidd half of the same document (cmd/cupidd/docs_test.go reads
// everything above the marker; this test reads everything below it).

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func readRouterDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist: %v", err)
	}
	_, tail, found := strings.Cut(string(b), "\n## cupidrouter")
	if !found {
		t.Fatal("docs/API.md has no `## cupidrouter` section (the router's API contract)")
	}
	return tail
}

func testRouter(t *testing.T) *cluster.Router {
	t.Helper()
	rt, err := routerFromOptions(&options{shards: "http://127.0.0.1:1, http://127.0.0.1:2"})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRouterDocRoutesMatchBinary(t *testing.T) {
	doc := readRouterDoc(t)
	routeHeader := regexp.MustCompile("(?m)^### `(GET|POST|DELETE|PUT|PATCH) ([^`]+)`$")
	documented := map[string]bool{}
	for _, m := range routeHeader.FindAllStringSubmatch(doc, -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatal("the cupidrouter section documents no routes (### `METHOD /path` headers)")
	}
	declared := map[string]bool{}
	for _, r := range testRouter(t).RouteTable() {
		declared[r.Method+" "+r.Pattern] = true
	}
	for r := range declared {
		if !documented[r] {
			t.Errorf("route %q is served but not documented in the cupidrouter section", r)
		}
	}
	for r := range documented {
		if !declared[r] {
			t.Errorf("route %q is documented in the cupidrouter section but not served", r)
		}
	}
}

func TestRouterDocFlagsMatchBinary(t *testing.T) {
	doc := readRouterDoc(t)
	flagRow := regexp.MustCompile("(?m)^\\| `-([a-z0-9-]+)` \\|")
	documented := map[string]bool{}
	for _, m := range flagRow.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("the cupidrouter section documents no flags (| `-flag` | table rows)")
	}
	fs, _ := newFlagSet()
	declared := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { declared[f.Name] = true })
	for f := range declared {
		if !documented[f] {
			t.Errorf("flag -%s is declared but not documented in the cupidrouter section", f)
		}
	}
	for f := range documented {
		if !declared[f] {
			t.Errorf("flag -%s is documented in the cupidrouter section but not declared", f)
		}
	}
}

// TestCommandDocMentionsEveryFlagAndRoute keeps the package comment at
// the top of main.go in sync with what the binary declares.
func TestCommandDocMentionsEveryFlagAndRoute(t *testing.T) {
	b, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	src := string(b)
	head := src
	if i := strings.Index(src, "package main"); i > 0 {
		head = src[:i]
	}
	fs, _ := newFlagSet()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(head, "-"+f.Name) {
			t.Errorf("command doc comment does not mention flag -%s", f.Name)
		}
	})
	for _, r := range testRouter(t).RouteTable() {
		if !strings.Contains(head, r.Pattern) {
			t.Errorf("command doc comment does not mention route %s", r.Pattern)
		}
	}
}

func TestShardsFlagValidation(t *testing.T) {
	if _, err := routerFromOptions(&options{}); err == nil {
		t.Error("empty -shards accepted")
	}
	if _, err := routerFromOptions(&options{shards: "not-a-url"}); err == nil {
		t.Error("relative shard URL accepted")
	}
	rt, err := routerFromOptions(&options{shards: "http://a:1,,http://b:2,"})
	if err != nil {
		t.Fatalf("trailing/empty list entries should be tolerated: %v", err)
	}
	if got := len(rt.Shards()); got != 2 {
		t.Errorf("parsed %d shards, want 2", got)
	}
}
