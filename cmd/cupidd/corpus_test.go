package main

// Integration coverage for the corpus endpoints: the asynchronous
// clustering job lifecycle, the canonical families document, and the
// medoid-composed mapping route — including its agreement with the
// direct pairwise match.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// corpusFixture registers two six-schema cliques — order-flavoured and
// invoice-flavoured DDL, each member with one private column — so the
// default clustering options split them into exactly two families.
func corpusFixture(t *testing.T, ts *httptest.Server) (ord, inv []string) {
	t.Helper()
	private := []string{"AlphaNote", "BravoNote", "CharlieNote", "DeltaNote", "EchoNote", "FoxtrotNote"}
	for i, p := range private {
		name := fmt.Sprintf("ord-%d", i)
		register(t, ts, name, "sql", fmt.Sprintf(`
CREATE TABLE Orders (
    OrderID INT PRIMARY KEY,
    CustomerName VARCHAR(64),
    TotalAmount DECIMAL(10,2),
    %s VARCHAR(32)
);`, p))
		ord = append(ord, name)
	}
	for i, p := range private {
		name := fmt.Sprintf("inv-%d", i)
		register(t, ts, name, "sql", fmt.Sprintf(`
CREATE TABLE Invoices (
    InvoiceRef INT PRIMARY KEY,
    WarehouseCode VARCHAR(64),
    SkuQuantity DECIMAL(10,2),
    %s VARCHAR(32)
);`, p))
		inv = append(inv, name)
	}
	return ord, inv
}

// clusterAndWait starts a clustering job and polls it to completion.
func clusterAndWait(t *testing.T, ts *httptest.Server) clusterJob {
	t.Helper()
	var j clusterJob
	if code := call(t, ts, http.MethodPost, "/corpus/cluster", nil, &j); code != http.StatusAccepted {
		t.Fatalf("POST /corpus/cluster: status %d", code)
	}
	if j.ID == 0 {
		t.Fatalf("clustering job has no id: %+v", j)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.Status == "running" {
		if time.Now().After(deadline) {
			t.Fatalf("clustering job %d still running after 10s", j.ID)
		}
		time.Sleep(10 * time.Millisecond)
		if code := call(t, ts, http.MethodGet, fmt.Sprintf("/corpus/cluster/%d", j.ID), nil, &j); code != http.StatusOK {
			t.Fatalf("polling job %d: status %d", j.ID, code)
		}
	}
	if j.Status != "done" {
		t.Fatalf("clustering job failed: %+v", j)
	}
	return j
}

func TestServerCorpusClusterAndFamilies(t *testing.T) {
	ts := newTestServer(t)

	// Before any clustering: no families doc, and the family mapping
	// route refuses with a pointer at POST /corpus/cluster.
	if code, _ := tryCall(ts, http.MethodGet, "/corpus/families", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET /corpus/families before clustering: status %d, want 404", code)
	}

	ord, inv := corpusFixture(t, ts)
	var errResp struct {
		Error string `json:"error"`
	}
	if code := call(t, ts, http.MethodGet, "/mappings/"+ord[0]+"/"+ord[1]+"?via=family", nil, &errResp); code != http.StatusConflict {
		t.Fatalf("via=family before clustering: status %d, want 409", code)
	}

	j := clusterAndWait(t, ts)
	if j.Corpus != len(ord)+len(inv) || j.Families != 2 {
		t.Fatalf("clustering job reports corpus=%d families=%d, want %d and 2", j.Corpus, j.Families, len(ord)+len(inv))
	}

	// The canonical families document: two families, no clique mixing.
	var fams struct {
		Corpus   int `json:"corpus"`
		Families []struct {
			Medoid  string   `json:"medoid"`
			Members []string `json:"members"`
		} `json:"families"`
	}
	if code := call(t, ts, http.MethodGet, "/corpus/families", nil, &fams); code != http.StatusOK {
		t.Fatalf("GET /corpus/families: status %d", code)
	}
	if fams.Corpus != len(ord)+len(inv) || len(fams.Families) != 2 {
		t.Fatalf("families doc has corpus=%d families=%d, want %d and 2", fams.Corpus, len(fams.Families), len(ord)+len(inv))
	}
	for _, f := range fams.Families {
		for _, m := range f.Members {
			if m[:3] != f.Medoid[:3] {
				t.Errorf("family %q contains cross-clique member %q", f.Medoid, m)
			}
		}
	}

	// Job endpoint error paths.
	if code, _ := tryCall(ts, http.MethodGet, "/corpus/cluster/999", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", code)
	}
	if code, _ := tryCall(ts, http.MethodGet, "/corpus/cluster/nope", nil, nil); code != http.StatusBadRequest {
		t.Errorf("non-integer job id: status %d, want 400", code)
	}
}

// mappingResp is the GET /mappings/{a}/{c} response shape.
type mappingResp struct {
	Source string     `json:"source"`
	Target string     `json:"target"`
	Via    string     `json:"via"`
	Medoid string     `json:"medoid"`
	Cached bool       `json:"cached"`
	Leaves []jsonPair `json:"leaves"`
}

func TestServerFamilyMappingAgreesWithDirect(t *testing.T) {
	ts := newTestServer(t)
	ord, inv := corpusFixture(t, ts)
	clusterAndWait(t, ts)

	var composed mappingResp
	if code := call(t, ts, http.MethodGet, "/mappings/"+ord[0]+"/"+ord[1]+"?via=family", nil, &composed); code != http.StatusOK {
		t.Fatalf("via=family: status %d", code)
	}
	if composed.Via != "family" || composed.Medoid[:3] != "ord" {
		t.Fatalf("composed mapping routed badly: %+v", composed)
	}
	if len(composed.Leaves) == 0 {
		t.Fatal("composed mapping has no leaf pairs")
	}

	var direct mappingResp
	if code := call(t, ts, http.MethodGet, "/mappings/"+ord[0]+"/"+ord[1], nil, &direct); code != http.StatusOK {
		t.Fatalf("via=direct: status %d", code)
	}
	if direct.Via != "direct" {
		t.Fatalf("default route is %q, want direct", direct.Via)
	}

	// Agreement: every pair the medoid composition derives is one the
	// direct match also finds, never with more claimed similarity (the
	// per-hop wsims multiply).
	directSim := make(map[[2]string]float64, len(direct.Leaves))
	for _, p := range direct.Leaves {
		directSim[[2]string{p.Source, p.Target}] = p.WSim
	}
	for _, p := range composed.Leaves {
		ws, ok := directSim[[2]string{p.Source, p.Target}]
		if !ok {
			t.Errorf("composed pair %s <-> %s not in the direct mapping", p.Source, p.Target)
			continue
		}
		if p.WSim > ws+1e-12 {
			t.Errorf("composed pair %s <-> %s claims wsim %v above the direct %v", p.Source, p.Target, p.WSim, ws)
		}
	}

	// Error paths: cross-family composition, unknown via, missing schema.
	if code, _ := tryCall(ts, http.MethodGet, "/mappings/"+ord[0]+"/"+inv[0]+"?via=family", nil, nil); code != http.StatusConflict {
		t.Errorf("cross-family via=family: status %d, want 409", code)
	}
	if code, _ := tryCall(ts, http.MethodGet, "/mappings/"+ord[0]+"/"+ord[1]+"?via=psychic", nil, nil); code != http.StatusBadRequest {
		t.Errorf("via=psychic: status %d, want 400", code)
	}
	if code, _ := tryCall(ts, http.MethodGet, "/mappings/nope/"+ord[1], nil, nil); code != http.StatusNotFound {
		t.Errorf("unregistered source: status %d, want 404", code)
	}
}
