package main

// Corpus-scale clustering endpoints and medoid-composed mappings.
//
// POST /corpus/cluster starts an asynchronous clustering job over the
// registered corpus (candidate pairs come from the inverted index, so the
// job is O(n·k) index probes, never the O(n²) cross product); GET
// /corpus/cluster/{id} polls it. The finished clustering is installed
// into the registry (the planner's family strategy routes through it) and
// — on a durable server — persisted through the write-ahead journal as a
// reserved metadata document, so it survives restarts and replicates to
// followers byte-identically. GET /corpus/families serves the canonical
// clustering bytes verbatim.
//
// GET /mappings/{a}/{c} derives a mapping between two registered schemas:
// directly (one match) or, with ?via=family, transitively through their
// shared family medoid — compose(A→M, invert(C→M)) — reusing the two
// medoid matches the family route already pays for, the paper's
// composition of mappings "performed earlier".

import (
	"errors"
	"net/http"
	"strconv"
	"sync"

	cupid "repro"
)

// clusterJob is one asynchronous clustering run's observable state.
type clusterJob struct {
	ID       int    `json:"id"`
	Status   string `json:"status"`             // "running", "done" or "failed"
	Corpus   int    `json:"corpus,omitempty"`   // schemas clustered (done)
	Families int    `json:"families,omitempty"` // families found (done)
	Error    string `json:"error,omitempty"`    // failure reason (failed)
}

// clusterJobs tracks clustering runs. At most one job runs at a time —
// clustering is corpus-wide, so concurrent runs would just race to
// install the same result.
type clusterJobs struct {
	mu      sync.Mutex
	seq     int
	running bool
	jobs    map[int]*clusterJob
}

// start registers a new running job, refusing while another is running.
func (c *clusterJobs) start() (*clusterJob, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		for _, j := range c.jobs {
			if j.Status == "running" {
				return nil, errf(http.StatusConflict, "clustering job %d is already running", j.ID)
			}
		}
	}
	if c.jobs == nil {
		c.jobs = make(map[int]*clusterJob)
	}
	c.seq++
	j := &clusterJob{ID: c.seq, Status: "running"}
	c.jobs[j.ID] = j
	c.running = true
	return j, nil
}

// finish records a job's outcome.
func (c *clusterJobs) finish(id int, corpus, families int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil {
		return
	}
	if err != nil {
		j.Status, j.Error = "failed", err.Error()
	} else {
		j.Status, j.Corpus, j.Families = "done", corpus, families
	}
	c.running = false
}

// get returns a copy of the job's current state.
func (c *clusterJobs) get(id int) (clusterJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return clusterJob{}, false
	}
	return *j, true
}

// handleClusterStart kicks off an asynchronous clustering job and returns
// 202 with its id for polling. The optional JSON body tunes the
// clustering ({"neighbors": N, "min_affinity": F}); an empty body takes
// the defaults. Refused on a read-only replica — followers receive the
// primary's clustering through replication instead of computing their own.
func (s *server) handleClusterStart(w http.ResponseWriter, r *http.Request) {
	if err := s.replicaWriteGuard(); err != nil {
		writeError(w, err)
		return
	}
	var req struct {
		Neighbors   int     `json:"neighbors,omitempty"`
		MinAffinity float64 `json:"min_affinity,omitempty"`
	}
	// An absent body means defaults; anything else malformed is refused.
	if err := s.decodeBody(w, r, &req); err != nil && !isEmptyBodyErr(err) {
		writeError(w, err)
		return
	}
	opt := cupid.CorpusOptions{Neighbors: req.Neighbors, MinAffinity: req.MinAffinity}
	j, err := s.corpusJobs.start()
	if err != nil {
		writeError(w, err)
		return
	}
	go s.runClusterJob(j.ID, opt)
	writeJSON(w, http.StatusAccepted, j)
}

// isEmptyBodyErr reports whether a decode failure was just an absent body
// (json.Decoder surfaces that as a bare EOF).
func isEmptyBodyErr(err error) bool {
	var he *httpError
	return errors.As(err, &he) && he.msg == "decoding request body: EOF"
}

// runClusterJob computes, installs and (when durable) persists one
// clustering; it runs on its own goroutine and reports through the job.
func (s *server) runClusterJob(id int, opt cupid.CorpusOptions) {
	res, err := s.reg.ClusterFamilies(opt)
	if err == nil {
		if s.persist != nil {
			err = s.persist.StoreFamilies(res)
		} else {
			err = s.reg.SetFamilies(res)
		}
	}
	if err != nil {
		s.corpusJobs.finish(id, 0, 0, err)
		return
	}
	// Rankings cached before the clustering may have been produced by a
	// different strategy mix; drop them so family routing takes effect
	// immediately and observably.
	s.front.Invalidate()
	s.corpusJobs.finish(id, res.Corpus, len(res.Families), nil)
}

// handleClusterStatus polls one clustering job by id.
func (s *server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "job id must be an integer"))
		return
	}
	j, ok := s.corpusJobs.get(id)
	if !ok {
		writeError(w, errf(http.StatusNotFound, "no clustering job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleFamilies serves the installed clustering's canonical bytes
// verbatim — the exact bytes the clustering produced, journaled, and
// replicated, so two nodes can be diffed byte-for-byte.
func (s *server) handleFamilies(w http.ResponseWriter, _ *http.Request) {
	raw := s.reg.FamiliesJSON()
	if raw == nil {
		writeError(w, errf(http.StatusNotFound, "no corpus clustering installed (POST /corpus/cluster)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// handleMapping derives a mapping between two registered schemas. The
// default (?via=direct) is one full match. ?via=family composes the
// mapping transitively through the schemas' shared family medoid M:
// (A→M) ∘ (M→C), with similarities multiplied along each chain — cheaper
// when the medoid matches are already cached, and the building block for
// reusing past match results. Requires an installed clustering with both
// schemas in the same family.
func (s *server) handleMapping(w http.ResponseWriter, r *http.Request) {
	aName, cName := r.PathValue("a"), r.PathValue("c")
	via := r.URL.Query().Get("via")
	if via == "" {
		via = "direct"
	}
	a, ok := s.reg.Get(aName)
	if !ok {
		writeError(w, errf(http.StatusNotFound, "schema %q is not registered", aName))
		return
	}
	c, ok := s.reg.Get(cName)
	if !ok {
		writeError(w, errf(http.StatusNotFound, "schema %q is not registered", cName))
		return
	}
	switch via {
	case "direct":
		res, cached, err := s.front.MatchPair(r.Context(), a.Prepared, c.Prepared)
		if err != nil {
			writeError(w, s.serveErr(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"source": aName, "target": cName, "via": "direct", "cached": cached,
			"leaves": pairsOf(res.Mapping.Leaves), "nonLeaves": pairsOf(res.Mapping.NonLeaves),
		})
	case "family":
		medoid, ok := s.reg.FamilyOf(aName)
		if !ok {
			writeError(w, errf(http.StatusConflict, "schema %q is not in any family (cluster the corpus first: POST /corpus/cluster)", aName))
			return
		}
		cMedoid, ok := s.reg.FamilyOf(cName)
		if !ok {
			writeError(w, errf(http.StatusConflict, "schema %q is not in any family (cluster the corpus first: POST /corpus/cluster)", cName))
			return
		}
		if medoid != cMedoid {
			writeError(w, errf(http.StatusConflict, "schemas %q (family %q) and %q (family %q) are in different families; use via=direct", aName, medoid, cName, cMedoid))
			return
		}
		m, ok := s.reg.Get(medoid)
		if !ok {
			writeError(w, errf(http.StatusConflict, "family medoid %q is no longer registered; re-cluster the corpus", medoid))
			return
		}
		// A→M and C→M are the matches the family route (and any sibling
		// derivation through this medoid) already pays for, so both hit the
		// singleflight cache on repeat derivations.
		resA, cachedA, err := s.front.MatchPair(r.Context(), a.Prepared, m.Prepared)
		if err != nil {
			writeError(w, s.serveErr(err))
			return
		}
		resC, cachedC, err := s.front.MatchPair(r.Context(), c.Prepared, m.Prepared)
		if err != nil {
			writeError(w, s.serveErr(err))
			return
		}
		composed := resA.Mapping.Compose(resC.Mapping.Invert())
		writeJSON(w, http.StatusOK, map[string]any{
			"source": aName, "target": cName, "via": "family", "medoid": medoid,
			"cached": cachedA && cachedC,
			"leaves": pairsOf(composed.Leaves), "nonLeaves": pairsOf(composed.NonLeaves),
		})
	default:
		writeError(w, errf(http.StatusBadRequest, "query parameter via must be direct or family, got %q", via))
	}
}
