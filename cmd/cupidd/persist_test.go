package main

// Integration coverage for the persistence layer as wired into the server:
// restart on a populated -data dir serves identical /match/batch rankings,
// and a torn snapshot falls back to the last consistent one.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	cupid "repro"
	"repro/internal/registry"
)

// newPersistentTestServer builds a server persisting under dir; the close
// function flushes the snapshot (call it before "restarting").
func newPersistentTestServer(t *testing.T, dir string, interval time.Duration) (*httptest.Server, func()) {
	t.Helper()
	return newOptionsTestServer(t, &options{dataDir: dir, snapshotInterval: interval, minAccept: 0.5})
}

// newWALTestServer builds a server persisting under dir through the
// write-ahead journal (the -wal default path).
func newWALTestServer(t *testing.T, dir string) (*httptest.Server, func()) {
	t.Helper()
	return newOptionsTestServer(t, &options{dataDir: dir, wal: true, minAccept: 0.5})
}

func newOptionsTestServer(t *testing.T, opt *options) (*httptest.Server, func()) {
	t.Helper()
	s, err := newServerFromOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	var closed bool
	closeAll := func() {
		if closed {
			return
		}
		closed = true
		ts.Close()
		if err := s.close(); err != nil {
			t.Errorf("closing persistent server: %v", err)
		}
	}
	t.Cleanup(closeAll)
	return ts, closeAll
}

// batchResponse captures /match/batch for byte-level comparison.
type batchResponse struct {
	Source  string        `json:"source"`
	Results []batchResult `json:"results"`
}

func batchOf(t *testing.T, ts *httptest.Server, body any) batchResponse {
	t.Helper()
	var out batchResponse
	if code := call(t, ts, http.MethodPost, "/match/batch", body, &out); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	return out
}

func TestServerRestartServesIdenticalRankings(t *testing.T) {
	dir := t.TempDir()

	ts1, close1 := newPersistentTestServer(t, dir, 0)
	register(t, ts1, "orders", "sql", ordersDDL)
	register(t, ts1, "purchases", "sql", purchasesDDL)
	register(t, ts1, "inventory", "json", inventoryJSON)
	req := map[string]any{"source": map[string]string{"name": "orders"}, "topK": 5}
	before := batchOf(t, ts1, req)
	if len(before.Results) == 0 {
		t.Fatal("no batch results before restart")
	}
	close1()

	// Restart on the same data dir: rankings — names, scores, fingerprints,
	// leaf mappings — must be identical.
	ts2, _ := newPersistentTestServer(t, dir, 0)
	var list struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	if code := call(t, ts2, http.MethodGet, "/schemas", nil, &list); code != http.StatusOK {
		t.Fatalf("list after restart: status %d", code)
	}
	if len(list.Schemas) != 3 {
		t.Fatalf("restart restored %d schemas, want 3", len(list.Schemas))
	}
	after := batchOf(t, ts2, req)
	if !reflect.DeepEqual(before, after) {
		b1, _ := json.MarshalIndent(before, "", " ")
		b2, _ := json.MarshalIndent(after, "", " ")
		t.Errorf("batch rankings differ across restart:\nbefore: %s\nafter:  %s", b1, b2)
	}
}

func TestServerRestartAfterTornSnapshot(t *testing.T) {
	dir := t.TempDir()

	ts1, close1 := newPersistentTestServer(t, dir, 0)
	register(t, ts1, "orders", "sql", ordersDDL)
	baseline := batchOf(t, ts1, map[string]any{
		"source": map[string]string{"format": "sql", "content": purchasesDDL},
	})
	// Second mutation writes a second snapshot generation; tearing it must
	// roll the repository back to the single-schema state.
	register(t, ts1, "inventory", "json", inventoryJSON)
	close1()

	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.jsonl"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want >= 2 snapshot generations, got %v (err %v)", snaps, err)
	}
	newest := snaps[len(snaps)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	ts2, _ := newPersistentTestServer(t, dir, 0)
	var list struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	call(t, ts2, http.MethodGet, "/schemas", nil, &list)
	if len(list.Schemas) != 1 || list.Schemas[0].Name != "orders" {
		t.Fatalf("torn-snapshot recovery restored %+v, want just orders", list.Schemas)
	}
	// And the surviving state matches exactly what that snapshot served.
	got := batchOf(t, ts2, map[string]any{
		"source": map[string]string{"format": "sql", "content": purchasesDDL},
	})
	if !reflect.DeepEqual(baseline, got) {
		t.Error("recovered repository serves different rankings than the consistent snapshot did")
	}
}

// TestServerBatchedSnapshotFlushedOnClose covers -snapshot-interval > 0:
// nothing hits disk per mutation, but a graceful shutdown flushes.
func TestServerBatchedSnapshotFlushedOnClose(t *testing.T) {
	dir := t.TempDir()
	ts1, close1 := newPersistentTestServer(t, dir, time.Hour)
	register(t, ts1, "orders", "sql", ordersDDL)
	if snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.jsonl")); len(snaps) != 0 {
		t.Fatalf("batched mode wrote %v before close", snaps)
	}
	close1()

	ts2, _ := newPersistentTestServer(t, dir, time.Hour)
	var list struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	call(t, ts2, http.MethodGet, "/schemas", nil, &list)
	if len(list.Schemas) != 1 {
		t.Fatalf("batched-mode restart restored %d schemas, want 1", len(list.Schemas))
	}
}

// rawBatch captures the verbatim /match/batch response bytes for the
// byte-identical crash-recovery assertions.
func rawBatch(t *testing.T, ts *httptest.Server, body any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/match/batch", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, b)
	}
	return b
}

func TestServerWALRestartServesIdenticalRankings(t *testing.T) {
	dir := t.TempDir()
	ts1, close1 := newWALTestServer(t, dir)
	register(t, ts1, "orders", "sql", ordersDDL)
	register(t, ts1, "purchases", "sql", purchasesDDL)
	register(t, ts1, "inventory", "json", inventoryJSON)
	req := map[string]any{"source": map[string]string{"name": "orders"}, "topK": 5}
	before := rawBatch(t, ts1, req)
	close1()

	// No compaction threshold was crossed: the journal alone must carry
	// the repository across the restart, byte-for-byte.
	if snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.jsonl")); len(snaps) != 0 {
		t.Fatalf("unexpected snapshots before any compaction: %v", snaps)
	}
	ts2, _ := newWALTestServer(t, dir)
	after := rawBatch(t, ts2, req)
	if !bytes.Equal(before, after) {
		t.Errorf("batch rankings not byte-identical across WAL restart:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestServerWALCrashInjectionBitIdenticalBatch truncates the journal at
// every record boundary and asserts the recovered server's /match/batch
// response is byte-identical to a server that only ever saw that prefix
// of registrations — the server-level face of the registry crash suite.
func TestServerWALCrashInjectionBitIdenticalBatch(t *testing.T) {
	docs := []struct{ name, format, content string }{
		{"orders", "sql", ordersDDL},
		{"purchases", "sql", purchasesDDL},
		{"inventory", "json", inventoryJSON},
	}
	probe := map[string]any{
		"source": map[string]string{"format": "sql", "content": ordersDDL},
		"topK":   3,
	}

	// Expected responses per prefix, from servers that never crashed.
	expected := make([][]byte, len(docs)+1)
	for k := 0; k <= len(docs); k++ {
		dir := t.TempDir()
		ts, closeTS := newWALTestServer(t, dir)
		for _, d := range docs[:k] {
			register(t, ts, d.name, d.format, d.content)
		}
		expected[k] = rawBatch(t, ts, probe)
		closeTS()
	}

	// The crashed directory: all registrations journaled, then torn at
	// each boundary.
	master := t.TempDir()
	ts, closeTS := newWALTestServer(t, master)
	for _, d := range docs {
		register(t, ts, d.name, d.format, d.content)
	}
	closeTS()
	wals, err := filepath.Glob(filepath.Join(master, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("want one journal, got %v (err %v)", wals, err)
	}
	bounds, err := registry.WALRecordBoundaries(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != len(docs)+1 {
		t.Fatalf("%d boundaries for %d registrations", len(bounds), len(docs))
	}
	journal, err := os.ReadFile(wals[0])
	if err != nil {
		t.Fatal(err)
	}

	for k := 0; k <= len(docs); k++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(wals[0])), journal[:bounds[k]], 0o644); err != nil {
			t.Fatal(err)
		}
		tsK, closeK := newWALTestServer(t, dir)
		got := rawBatch(t, tsK, probe)
		if !bytes.Equal(got, expected[k]) {
			t.Errorf("prefix %d: recovered /match/batch differs from never-crashed server:\ngot:  %s\nwant: %s", k, got, expected[k])
		}
		closeK()
	}
}

// TestServerWALCompactionAcrossRestart forces compaction through the
// server options and checks a restart serves the folded state.
func TestServerWALCompactionAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ts1, close1 := newOptionsTestServer(t, &options{dataDir: dir, wal: true, compactThreshold: 1, minAccept: 0.5})
	register(t, ts1, "orders", "sql", ordersDDL)
	register(t, ts1, "purchases", "sql", purchasesDDL)
	register(t, ts1, "inventory", "json", inventoryJSON)
	req := map[string]any{"source": map[string]string{"name": "orders"}, "topK": 5}
	before := rawBatch(t, ts1, req)
	close1()

	if snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.jsonl")); len(snaps) == 0 {
		t.Fatal("compaction threshold 1 wrote no snapshot generation")
	}
	ts2, _ := newWALTestServer(t, dir)
	var list struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	if code := call(t, ts2, http.MethodGet, "/schemas", nil, &list); code != http.StatusOK || len(list.Schemas) != 3 {
		t.Fatalf("restart after compaction: status %d, %d schemas", code, len(list.Schemas))
	}
	if after := rawBatch(t, ts2, req); !bytes.Equal(before, after) {
		t.Error("compacted restart serves different rankings")
	}
}

// TestPersistOptionsFlagSemantics pins the -wal / -snapshot-interval
// interplay: the interval is a legacy alias that implies the snapshot
// path, and explicitly combining it with -wal is refused.
func TestPersistOptionsFlagSemantics(t *testing.T) {
	cases := []struct {
		name    string
		opt     options
		wantWAL bool
		wantErr bool
	}{
		{"default flags", options{wal: true}, true, false},
		{"interval alias", options{wal: true, snapshotInterval: time.Second}, false, false},
		{"explicit contradiction", options{wal: true, walSet: true, snapshotInterval: time.Second}, false, true},
		{"legacy sync", options{}, false, false},
		{"negative interval", options{snapshotInterval: -time.Second}, false, true},
		{"negative linger", options{wal: true, walGroupCommit: -time.Second}, false, true},
		{"negative threshold", options{wal: true, compactThreshold: -1}, false, true},
		{"linger without wal", options{walGroupCommit: time.Millisecond}, false, true},
		{"threshold without wal", options{compactThreshold: 4096, snapshotInterval: time.Second}, false, true},
		{"explicit default threshold without wal", options{compactThresholdSet: true, compactThreshold: 1 << 20, snapshotInterval: time.Second}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			popt, err := tc.opt.persistOptions()
			if tc.wantErr {
				if err == nil {
					t.Fatal("want an error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if popt.WAL != tc.wantWAL {
				t.Errorf("WAL=%v, want %v", popt.WAL, tc.wantWAL)
			}
		})
	}
	// The documented default flag set selects the WAL.
	fs, opt := newFlagSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	popt, err := opt.persistOptions()
	if err != nil || !popt.WAL {
		t.Errorf("default flags: popt=%+v err=%v, want WAL mode", popt, err)
	}
}

// TestServerExactFlagMatchesPrunedOnSmallRepo sanity-checks that -exact
// and the default pruned path agree on a small repository (pruning cannot
// engage below the candidate floor).
func TestServerExactFlagMatchesPrunedOnSmallRepo(t *testing.T) {
	build := func(strat cupid.RetrievalStrategy) batchResponse {
		s, err := newServer(cupid.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.retrieval = strat
		ts := httptest.NewServer(s.routes())
		t.Cleanup(ts.Close)
		register(t, ts, "orders", "sql", ordersDDL)
		register(t, ts, "purchases", "sql", purchasesDDL)
		register(t, ts, "inventory", "json", inventoryJSON)
		return batchOf(t, ts, map[string]any{"source": map[string]string{"name": "orders"}, "topK": 2})
	}
	if exact, pruned := build(cupid.RetrievalExact), build(cupid.RetrievalPruned); !reflect.DeepEqual(exact, pruned) {
		t.Errorf("exact and pruned rankings differ on a small repository:\nexact:  %+v\npruned: %+v", exact, pruned)
	}
}
