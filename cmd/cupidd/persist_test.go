package main

// Integration coverage for the persistence layer as wired into the server:
// restart on a populated -data dir serves identical /match/batch rankings,
// and a torn snapshot falls back to the last consistent one.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	cupid "repro"
)

// newPersistentTestServer builds a server persisting under dir; the close
// function flushes the snapshot (call it before "restarting").
func newPersistentTestServer(t *testing.T, dir string, interval time.Duration) (*httptest.Server, func()) {
	t.Helper()
	s, err := newServerFromOptions(&options{dataDir: dir, snapshotInterval: interval, minAccept: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	var closed bool
	closeAll := func() {
		if closed {
			return
		}
		closed = true
		ts.Close()
		if err := s.close(); err != nil {
			t.Errorf("closing persistent server: %v", err)
		}
	}
	t.Cleanup(closeAll)
	return ts, closeAll
}

// batchResponse captures /match/batch for byte-level comparison.
type batchResponse struct {
	Source  string        `json:"source"`
	Results []batchResult `json:"results"`
}

func batchOf(t *testing.T, ts *httptest.Server, body any) batchResponse {
	t.Helper()
	var out batchResponse
	if code := call(t, ts, http.MethodPost, "/match/batch", body, &out); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	return out
}

func TestServerRestartServesIdenticalRankings(t *testing.T) {
	dir := t.TempDir()

	ts1, close1 := newPersistentTestServer(t, dir, 0)
	register(t, ts1, "orders", "sql", ordersDDL)
	register(t, ts1, "purchases", "sql", purchasesDDL)
	register(t, ts1, "inventory", "json", inventoryJSON)
	req := map[string]any{"source": map[string]string{"name": "orders"}, "topK": 5}
	before := batchOf(t, ts1, req)
	if len(before.Results) == 0 {
		t.Fatal("no batch results before restart")
	}
	close1()

	// Restart on the same data dir: rankings — names, scores, fingerprints,
	// leaf mappings — must be identical.
	ts2, _ := newPersistentTestServer(t, dir, 0)
	var list struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	if code := call(t, ts2, http.MethodGet, "/schemas", nil, &list); code != http.StatusOK {
		t.Fatalf("list after restart: status %d", code)
	}
	if len(list.Schemas) != 3 {
		t.Fatalf("restart restored %d schemas, want 3", len(list.Schemas))
	}
	after := batchOf(t, ts2, req)
	if !reflect.DeepEqual(before, after) {
		b1, _ := json.MarshalIndent(before, "", " ")
		b2, _ := json.MarshalIndent(after, "", " ")
		t.Errorf("batch rankings differ across restart:\nbefore: %s\nafter:  %s", b1, b2)
	}
}

func TestServerRestartAfterTornSnapshot(t *testing.T) {
	dir := t.TempDir()

	ts1, close1 := newPersistentTestServer(t, dir, 0)
	register(t, ts1, "orders", "sql", ordersDDL)
	baseline := batchOf(t, ts1, map[string]any{
		"source": map[string]string{"format": "sql", "content": purchasesDDL},
	})
	// Second mutation writes a second snapshot generation; tearing it must
	// roll the repository back to the single-schema state.
	register(t, ts1, "inventory", "json", inventoryJSON)
	close1()

	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.jsonl"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want >= 2 snapshot generations, got %v (err %v)", snaps, err)
	}
	newest := snaps[len(snaps)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	ts2, _ := newPersistentTestServer(t, dir, 0)
	var list struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	call(t, ts2, http.MethodGet, "/schemas", nil, &list)
	if len(list.Schemas) != 1 || list.Schemas[0].Name != "orders" {
		t.Fatalf("torn-snapshot recovery restored %+v, want just orders", list.Schemas)
	}
	// And the surviving state matches exactly what that snapshot served.
	got := batchOf(t, ts2, map[string]any{
		"source": map[string]string{"format": "sql", "content": purchasesDDL},
	})
	if !reflect.DeepEqual(baseline, got) {
		t.Error("recovered repository serves different rankings than the consistent snapshot did")
	}
}

// TestServerBatchedSnapshotFlushedOnClose covers -snapshot-interval > 0:
// nothing hits disk per mutation, but a graceful shutdown flushes.
func TestServerBatchedSnapshotFlushedOnClose(t *testing.T) {
	dir := t.TempDir()
	ts1, close1 := newPersistentTestServer(t, dir, time.Hour)
	register(t, ts1, "orders", "sql", ordersDDL)
	if snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.jsonl")); len(snaps) != 0 {
		t.Fatalf("batched mode wrote %v before close", snaps)
	}
	close1()

	ts2, _ := newPersistentTestServer(t, dir, time.Hour)
	var list struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	call(t, ts2, http.MethodGet, "/schemas", nil, &list)
	if len(list.Schemas) != 1 {
		t.Fatalf("batched-mode restart restored %d schemas, want 1", len(list.Schemas))
	}
}

// TestServerExactFlagMatchesPrunedOnSmallRepo sanity-checks that -exact
// and the default pruned path agree on a small repository (pruning cannot
// engage below the candidate floor).
func TestServerExactFlagMatchesPrunedOnSmallRepo(t *testing.T) {
	build := func(exact bool) batchResponse {
		s, err := newServer(cupid.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.exact = exact
		ts := httptest.NewServer(s.routes())
		t.Cleanup(ts.Close)
		register(t, ts, "orders", "sql", ordersDDL)
		register(t, ts, "purchases", "sql", purchasesDDL)
		register(t, ts, "inventory", "json", inventoryJSON)
		return batchOf(t, ts, map[string]any{"source": map[string]string{"name": "orders"}, "topK": 2})
	}
	if exact, pruned := build(true), build(false); !reflect.DeepEqual(exact, pruned) {
		t.Errorf("exact and pruned rankings differ on a small repository:\nexact:  %+v\npruned: %+v", exact, pruned)
	}
}
