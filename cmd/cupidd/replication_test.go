package main

// Integration coverage for WAL-shipped replication as wired into the
// server: a -follow replica converges to byte-identical /match/batch
// responses, keeps converging through cut streams and restarts (the
// HTTP-level fault injection riding on the registry-level frame-boundary
// sweep), refuses writes, and reports catching_up readiness distinctly.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// replTestServer is a server plus its httptest front and follower
// controls.
type replTestServer struct {
	s      *server
	ts     *httptest.Server
	stop   func() // cancel the follow loop and wait for it (follower only)
	closed bool
}

// newReplServer boots a WAL server on dir; follow != "" makes it a
// replica of that URL with the follow loop running.
func newReplServer(t *testing.T, dir, follow string) *replTestServer {
	t.Helper()
	s, err := newServerFromOptions(&options{dataDir: dir, wal: true, follow: follow, minAccept: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	r := &replTestServer{s: s, ts: ts, stop: func() {}}
	if follow != "" {
		ctx, cancel := context.WithCancel(context.Background())
		done := s.followLoop(ctx)
		r.stop = func() {
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Error("follow loop did not stop")
			}
		}
	}
	t.Cleanup(func() { r.close(t) })
	return r
}

// close is idempotent so tests can kill a follower explicitly and let
// the cleanup run harmlessly.
func (r *replTestServer) close(t *testing.T) {
	if r.closed {
		return
	}
	r.closed = true
	r.stop()
	r.ts.Close()
	if err := r.s.close(); err != nil {
		t.Errorf("closing server: %v", err)
	}
}

// waitCaughtUp polls until the follower has applied the primary's horizon
// and holds want schemas.
func waitCaughtUp(t *testing.T, r *replTestServer, want int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		st := r.s.replState.Status()
		if st.CaughtUp && r.s.reg.Len() == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := r.s.replState.Status()
	t.Fatalf("follower never caught up: %+v, %d/%d schemas", st, r.s.reg.Len(), want)
}

// assertBatchesIdentical compares primary and follower /match/batch wire
// bytes (rawBatch from persist_test.go) for a set of probes. Both
// servers are quiescent, so every field — scores, order, stats, flags —
// must agree exactly.
func assertBatchesIdentical(t *testing.T, primary, follower *httptest.Server, probes []any) {
	t.Helper()
	for _, body := range probes {
		p := rawBatch(t, primary, body)
		f := rawBatch(t, follower, body)
		if !bytes.Equal(p, f) {
			t.Errorf("batch %v diverged:\nprimary:  %s\nfollower: %s", body, p, f)
		}
	}
}

var replProbes = []any{
	map[string]any{"source": map[string]string{"name": "orders"}, "topK": 5},
	map[string]any{"source": map[string]string{"format": "sql", "content": purchasesDDL}, "topK": 3},
	map[string]any{"source": map[string]string{"format": "json", "content": inventoryJSON}},
}

func TestReplicaConvergesToByteIdenticalBatches(t *testing.T) {
	primary := newReplServer(t, t.TempDir(), "")
	register(t, primary.ts, "orders", "sql", ordersDDL)
	register(t, primary.ts, "purchases", "sql", purchasesDDL)

	follower := newReplServer(t, t.TempDir(), primary.ts.URL)
	waitCaughtUp(t, follower, 2)

	// Live tail: a mutation after catch-up reaches the replica too.
	register(t, primary.ts, "inventory", "json", inventoryJSON)
	waitCaughtUp(t, follower, 3)

	assertBatchesIdentical(t, primary.ts, follower.ts, replProbes)

	// The replica lists the same schemas with the same fingerprints.
	var pl, fl struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	call(t, primary.ts, http.MethodGet, "/schemas", nil, &pl)
	call(t, follower.ts, http.MethodGet, "/schemas", nil, &fl)
	if fmt.Sprint(pl) != fmt.Sprint(fl) {
		t.Errorf("schema lists diverged:\nprimary:  %v\nfollower: %v", pl, fl)
	}
}

func TestReplicaRefusesWritesNamingPrimary(t *testing.T) {
	primary := newReplServer(t, t.TempDir(), "")
	register(t, primary.ts, "orders", "sql", ordersDDL)
	follower := newReplServer(t, t.TempDir(), primary.ts.URL)
	waitCaughtUp(t, follower, 1)

	var errResp struct {
		Error string `json:"error"`
	}
	code := call(t, follower.ts, http.MethodPost, "/schemas",
		map[string]string{"name": "x", "format": "sql", "content": ordersDDL}, &errResp)
	if code != http.StatusForbidden {
		t.Fatalf("replica accepted a registration: status %d", code)
	}
	if !strings.Contains(errResp.Error, primary.ts.URL) {
		t.Errorf("403 does not name the primary: %q", errResp.Error)
	}
	if code := call(t, follower.ts, http.MethodDelete, "/schemas/orders", nil, &errResp); code != http.StatusForbidden {
		t.Fatalf("replica accepted a delete: status %d", code)
	}
	// The replicated entry is still there and still served.
	if follower.s.reg.Len() != 1 {
		t.Errorf("replica lost its replicated entry: %d schemas", follower.s.reg.Len())
	}
}

// chokeProxy fronts a primary and cuts every /replicate connection after
// a growing byte budget: connection n delivers limit(n) bytes and then
// drops, landing cuts at many different offsets — frame boundaries and
// torn mid-frame positions alike — until the budget exceeds the stream
// and a connection finally survives. Everything else proxies untouched.
type chokeProxy struct {
	target   string
	attempts atomic.Int64
	srv      *httptest.Server
}

func newChokeProxy(t *testing.T, target string) *chokeProxy {
	t.Helper()
	p := &chokeProxy{target: target}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.String(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		if r.URL.Path != "/replicate" {
			io.Copy(w, resp.Body)
			return
		}
		// The first six replication attempts are cut after 61n²
		// bytes — a quadratic stride whose offsets land mid-header,
		// mid-payload and at clean boundaries as the follower's resume
		// position shifts between attempts. After that the proxy stops
		// interfering so the test converges fast even against the
		// follower's capped reconnect backoff.
		n := p.attempts.Add(1)
		if n > 6 {
			io.Copy(w, resp.Body)
			return
		}
		budget := 61 * n * n
		flusher, _ := w.(http.Flusher)
		buf := make([]byte, 256)
		var sent int64
		for sent < budget {
			chunk := int64(len(buf))
			if rest := budget - sent; rest < chunk {
				chunk = rest
			}
			m, err := resp.Body.Read(buf[:chunk])
			if m > 0 {
				w.Write(buf[:m])
				if flusher != nil {
					flusher.Flush()
				}
				sent += int64(m)
			}
			if err != nil {
				return
			}
		}
		// Budget exhausted: drop the connection mid-stream by returning
		// (httptest closes the response); the follower must reconnect.
	}))
	t.Cleanup(p.srv.Close)
	return p
}

// TestReplicaConvergesThroughCutStreams is the HTTP face of the
// fault-injection suite (the registry-level sweep kills a follower at
// every single WAL-record boundary; see
// internal/registry.TestReplicationKilledAtEveryFrameBoundary): the
// replication stream is repeatedly cut at stride-varied byte offsets —
// torn frames included — and the follower's reconnect loop must converge
// to byte-identical batch responses anyway, never applying a partial
// record.
func TestReplicaConvergesThroughCutStreams(t *testing.T) {
	primary := newReplServer(t, t.TempDir(), "")
	register(t, primary.ts, "orders", "sql", ordersDDL)
	register(t, primary.ts, "purchases", "sql", purchasesDDL)
	register(t, primary.ts, "inventory", "json", inventoryJSON)
	// Replace one entry so the stream carries a put shadowing a put.
	register(t, primary.ts, "orders", "sql", strings.Replace(ordersDDL, "Amount", "GrandTotal", 1))

	proxy := newChokeProxy(t, primary.ts.URL)
	follower := newReplServer(t, t.TempDir(), proxy.srv.URL)
	waitCaughtUp(t, follower, 3)
	if got := proxy.attempts.Load(); got < 2 {
		t.Errorf("choke proxy saw %d replication attempts; the cuts exercised nothing", got)
	}
	assertBatchesIdentical(t, primary.ts, follower.ts, replProbes)
}

// TestReplicaRestartResumesAndConverges kills a follower (hard close of
// its journal mid-life), mutates the primary while it is down, restarts
// it on the same data dir, and requires convergence to byte-identical
// batches — then restarts again with nothing new and requires a pure
// tail resume (no resync) from the checkpoint.
func TestReplicaRestartResumesAndConverges(t *testing.T) {
	primary := newReplServer(t, t.TempDir(), "")
	register(t, primary.ts, "orders", "sql", ordersDDL)
	register(t, primary.ts, "purchases", "sql", purchasesDDL)

	dir := t.TempDir()
	f1 := newReplServer(t, dir, primary.ts.URL)
	waitCaughtUp(t, f1, 2)
	f1.close(t) // kill: follow loop canceled, journal closed

	// The primary moves on while the follower is dead.
	register(t, primary.ts, "inventory", "json", inventoryJSON)
	var del map[string]string
	if code := call(t, primary.ts, http.MethodDelete, "/schemas/purchases", nil, &del); code != http.StatusOK {
		t.Fatalf("delete on primary: %d", code)
	}

	f2 := newReplServer(t, dir, primary.ts.URL)
	waitCaughtUp(t, f2, 2) // orders + inventory
	probes := []any{
		map[string]any{"source": map[string]string{"name": "orders"}, "topK": 5},
		map[string]any{"source": map[string]string{"format": "sql", "content": purchasesDDL}, "topK": 3},
	}
	assertBatchesIdentical(t, primary.ts, f2.ts, probes)
	if f2.s.replState.Status().Resyncs > 1 {
		t.Errorf("restart fell back to %d resyncs; the checkpoint should bound it to at most one",
			f2.s.replState.Status().Resyncs)
	}
	f2.close(t)

	// Quiescent restart: everything is already applied, so the stream must
	// resume as a pure tail — zero snapshot transfers.
	f3 := newReplServer(t, dir, primary.ts.URL)
	waitCaughtUp(t, f3, 2)
	if got := f3.s.replState.Status().Resyncs; got != 0 {
		t.Errorf("quiescent restart resynced %d times; want a pure tail resume", got)
	}
	assertBatchesIdentical(t, primary.ts, f3.ts, probes)
}

// TestReadyzReportsCatchingUpDistinctly is the /readyz satellite: a
// follower that has not caught up reports catching_up (with positions),
// draining takes precedence once shutdown begins, and a non-follower
// never reports catching_up.
func TestReadyzReportsCatchingUpDistinctly(t *testing.T) {
	// A follower whose primary is unreachable stays catching_up: it has
	// never seen the primary's horizon. (No follow loop is even needed —
	// readiness is state, not liveness.)
	s, err := newServerFromOptions(&options{
		dataDir: t.TempDir(), wal: true,
		follow: "http://127.0.0.1:1", minAccept: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var ready struct {
		Ready   bool   `json:"ready"`
		Reason  string `json:"reason"`
		Applied string `json:"applied"`
		Horizon string `json:"horizon"`
	}
	if code := call(t, ts, http.MethodGet, "/readyz", nil, &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("catching-up follower readyz: status %d", code)
	}
	if ready.Reason != "catching_up" || ready.Applied == "" || ready.Horizon == "" {
		t.Errorf("catching-up readyz payload wrong: %+v", ready)
	}
	// Draining is a distinct, higher-priority reason.
	s.front.BeginDrain()
	if code := call(t, ts, http.MethodGet, "/readyz", nil, &ready); code != http.StatusServiceUnavailable || ready.Reason != "draining" {
		t.Errorf("draining follower readyz: status %d reason %q", code, ready.Reason)
	}
}

func TestFollowFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  options
	}{
		{"follow without data", options{follow: "http://localhost:1", minAccept: 0.5}},
		{"relative url", options{follow: "localhost:1", dataDir: t.TempDir(), wal: true, minAccept: 0.5}},
		{"follow with legacy snapshots", options{follow: "http://localhost:1", dataDir: t.TempDir(), snapshotInterval: time.Second, minAccept: 0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := newServerFromOptions(&tc.opt); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

// TestReplicateEndpointContract pins the endpoint's refusals: 501
// without persistence, 400 on malformed resume positions.
func TestReplicateEndpointContract(t *testing.T) {
	mem := newTestServer(t)
	resp, err := http.Get(mem.URL + "/replicate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("in-memory /replicate: want 501, got %d", resp.StatusCode)
	}

	primary := newReplServer(t, t.TempDir(), "")
	for _, q := range []string{"?base=x", "?records=-1", "?records=x"} {
		resp, err := http.Get(primary.ts.URL + "/replicate" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/replicate%s: want 400, got %d", q, resp.StatusCode)
		}
	}
}

// TestGetSchemaEndpoint pins GET /schemas/{name}: the stored source
// document round-trips on a persistent server, 404s when absent, and
// 501s without persistence.
func TestGetSchemaEndpoint(t *testing.T) {
	primary := newReplServer(t, t.TempDir(), "")
	reg := register(t, primary.ts, "orders", "sql", ordersDDL)
	var doc struct {
		Name        string `json:"name"`
		Fingerprint string `json:"fingerprint"`
		Format      string `json:"format"`
		Content     string `json:"content"`
	}
	if code := call(t, primary.ts, http.MethodGet, "/schemas/orders", nil, &doc); code != http.StatusOK {
		t.Fatalf("get schema: status %d", code)
	}
	if doc.Name != "orders" || doc.Format != "sql" || doc.Content != ordersDDL || doc.Fingerprint != reg.Fingerprint {
		t.Errorf("stored document did not round-trip: %+v", doc)
	}
	var errResp struct {
		Error string `json:"error"`
	}
	if code := call(t, primary.ts, http.MethodGet, "/schemas/ghost", nil, &errResp); code != http.StatusNotFound {
		t.Errorf("missing schema: want 404, got %d", code)
	}
	mem := newTestServer(t)
	if code := call(t, mem, http.MethodGet, "/schemas/any", nil, &errResp); code != http.StatusNotImplemented {
		t.Errorf("in-memory get schema: want 501, got %d", code)
	}
}
