package main

// Overload-resilience coverage: the JSON 404/405 contract, the 413 body
// cap, 429 + Retry-After under admission pressure, /readyz vs /healthz
// during a drain, client disconnects releasing their admission promptly,
// and a drain leaving a clean journal behind.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	cupid "repro"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// jsonErrorOf asserts a response is the JSON error contract (an
// {"error": ...} object with Content-Type application/json) and returns
// the message.
func jsonErrorOf(t *testing.T, resp *http.Response) string {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("%s %s: Content-Type %q, want application/json", resp.Request.Method, resp.Request.URL.Path, ct)
	}
	defer resp.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("%s %s: response is not the JSON error shape: %v", resp.Request.Method, resp.Request.URL.Path, err)
	}
	if body.Error == "" {
		t.Errorf("%s %s: error response has no message", resp.Request.Method, resp.Request.URL.Path)
	}
	return body.Error
}

// TestJSONErrorContractCovers404And405 walks the route table and asserts
// the error contract holds for every wrong-method request (405 with an
// Allow header naming each declared method) and for unknown paths (404)
// — an invariant over routeTable, so a route added later is covered
// automatically.
func TestJSONErrorContractCovers404And405(t *testing.T) {
	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	declared := map[string][]string{} // pattern -> methods
	for _, rt := range s.routeTable() {
		declared[rt.pattern] = append(declared[rt.pattern], rt.method)
	}
	for pattern, methods := range declared {
		supported := map[string]bool{}
		for _, m := range methods {
			supported[m] = true
		}
		path := strings.ReplaceAll(pattern, "{name}", "some-name")
		for _, method := range []string{http.MethodGet, http.MethodPost, http.MethodDelete, http.MethodPut, http.MethodPatch} {
			if supported[method] {
				continue
			}
			req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			allow := resp.Header.Get("Allow")
			for _, m := range methods {
				if !strings.Contains(allow, m) {
					t.Errorf("%s %s: Allow header %q missing %s", method, path, allow, m)
				}
			}
			jsonErrorOf(t, resp)
		}
	}

	for _, path := range []string{"/", "/nope", "/schemas/x/too/deep", "/match/batchx"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
		jsonErrorOf(t, resp)
	}
}

func TestRequestBodyCapReturns413(t *testing.T) {
	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.maxBody = 512
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	big := "CREATE TABLE T (" + strings.Repeat("LongColumnName INT, ", 200) + "ID INT);"
	var errResp struct {
		Error string `json:"error"`
	}
	code := call(t, ts, http.MethodPost, "/schemas",
		map[string]string{"name": "x", "format": "sql", "content": big}, &errResp)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized register: status %d, want 413", code)
	}
	if !strings.Contains(errResp.Error, "max-body") {
		t.Errorf("413 error %q does not point at -max-body", errResp.Error)
	}
	errResp.Error = ""
	code = call(t, ts, http.MethodPost, "/match/batch",
		map[string]any{"source": map[string]string{"format": "sql", "content": big}}, &errResp)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", code)
	}
	// A small body still works on the same server.
	register(t, ts, "orders", "sql", "CREATE TABLE Orders (OrderID INT PRIMARY KEY);")
}

// TestOverloadReturns429WithRetryAfter saturates the read pool and
// asserts shed requests get 429 + Retry-After while the JSON error
// contract holds.
func TestOverloadReturns429WithRetryAfter(t *testing.T) {
	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One slot, one queue seat, 10ms latency target, no cache (a cache
	// hit would bypass admission and dodge the 429 on purpose).
	s.front = serve.NewFrontend(s.reg, serve.Options{
		Read:  serve.PoolOptions{Slots: 1, Queue: 1, MaxWait: 10 * time.Millisecond},
		Write: serve.PoolOptions{Slots: 1, Queue: 8, MaxWait: time.Second},
	})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	register(t, ts, "orders", "sql", ordersDDL)

	// Hold the only read slot so every match request must queue.
	release, err := s.front.ReadPool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	body := strings.NewReader(`{"source": {"name": "orders"}}`)
	resp, err := ts.Client().Post(ts.URL+"/match/batch", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response has no Retry-After header")
	}
	msg := jsonErrorOf(t, resp)
	if !strings.Contains(msg, "overloaded") {
		t.Errorf("429 error %q does not say overloaded", msg)
	}
	if st := s.front.ReadPool().Stats(); st.RejectedWait == 0 && st.RejectedFull == 0 {
		t.Error("pool counters recorded no shed despite the 429")
	}
}

// TestReadyzDrainAnd503 walks the shutdown sequence: ready, then
// BeginDrain flips /readyz to 503 while /healthz stays live and every
// other route sheds with 503 + Retry-After.
func TestReadyzDrainAnd503(t *testing.T) {
	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	register(t, ts, "orders", "sql", ordersDDL)

	var ready struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if code := call(t, ts, http.MethodGet, "/readyz", nil, &ready); code != http.StatusOK || !ready.Ready {
		t.Fatalf("pre-drain readyz = %d %+v, want 200 ready", code, ready)
	}

	s.front.BeginDrain()

	if code := call(t, ts, http.MethodGet, "/readyz", nil, &ready); code != http.StatusServiceUnavailable || ready.Ready || ready.Reason != "draining" {
		t.Errorf("draining readyz = %d %+v, want 503 {ready:false, reason:draining}", code, ready)
	}
	var health map[string]string
	if code := call(t, ts, http.MethodGet, "/healthz", nil, &health); code != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness is not readiness)", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/schemas")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /schemas during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 has no Retry-After header")
	}
	jsonErrorOf(t, resp)
}

// TestClientDisconnectReleasesAdmission covers both disconnect points: a
// client that vanishes while queued gives its queue seat back, and a
// client that vanishes mid-scoring frees its slot promptly (the context
// threads into the candidate loop, so the worker stops instead of
// finishing a ranking nobody will read).
func TestClientDisconnectReleasesAdmission(t *testing.T) {
	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.front = serve.NewFrontend(s.reg, serve.Options{
		Read: serve.PoolOptions{Slots: 1, Queue: 4, MaxWait: time.Minute},
	})
	// A real corpus so a batch match does meaningful scoring work.
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: 8, Seed: 3})
	for _, sc := range corpus {
		if _, _, err := s.reg.Register(sc.Name, sc); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	pool := s.front.ReadPool()

	// Disconnect while queued: hold the slot, start a request, kill it.
	release, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/match/batch",
		strings.NewReader(fmt.Sprintf(`{"source": {"name": %q}}`, corpus[0].Name)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errc <- err
	}()
	waitForCond(t, func() bool { return pool.Queued() == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Error("canceled request reported no error to the client")
	}
	waitForCond(t, func() bool { return pool.Queued() == 0 })
	release()

	// Disconnect mid-scoring: the request now gets the slot immediately;
	// cancel once it is in flight and the slot must come back without the
	// ranking finishing on its own schedule.
	ctx2, cancel2 := context.WithCancel(context.Background())
	req2, err := http.NewRequestWithContext(ctx2, http.MethodPost, ts.URL+"/match/batch",
		strings.NewReader(fmt.Sprintf(`{"source": {"name": %q}}`, corpus[1].Name)))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, err := ts.Client().Do(req2)
		errc <- err
	}()
	waitForCond(t, func() bool { return pool.InFlight() == 1 || pool.Stats().Admitted >= 2 })
	cancel2()
	<-errc
	waitForCond(t, func() bool { return pool.InFlight() == 0 })

	// The server is still fully functional afterwards.
	var batch struct {
		Results []batchResult `json:"results"`
	}
	if code := call(t, ts, http.MethodPost, "/match/batch",
		map[string]any{"source": map[string]string{"name": corpus[2].Name}, "topK": 3}, &batch); code != http.StatusOK {
		t.Fatalf("post-disconnect batch: status %d", code)
	}
	if len(batch.Results) == 0 {
		t.Error("post-disconnect batch returned no results")
	}
}

// TestDrainLeavesCleanJournal drives the durable server through the
// shutdown sequence: acked registrations before the drain, 503 for the
// late arrival, then close and reopen — the journal must recover without
// a single warning and hold exactly the acked mutations.
func TestDrainLeavesCleanJournal(t *testing.T) {
	dir := t.TempDir()
	fs, opt := newFlagSet()
	if err := fs.Parse([]string{"-data", dir}); err != nil {
		t.Fatal(err)
	}
	s, err := newServerFromOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	register(t, ts, "orders", "sql", ordersDDL)
	register(t, ts, "purchases", "sql", purchasesDDL)

	s.front.BeginDrain()
	code, err := tryCall(ts, http.MethodPost, "/schemas",
		map[string]string{"name": "late", "format": "sql", "content": ordersDDL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Errorf("register during drain: status %d, want 503", code)
	}
	ts.Close()
	if err := s.close(); err != nil {
		t.Fatalf("closing drained server: %v", err)
	}

	m, err := cupid.NewMatcher(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, warns, err := cupid.OpenPersistentRegistryOptions(dir, m, cupid.DefaultPersistOptions())
	if err != nil {
		t.Fatalf("reopening journal after drain: %v", err)
	}
	defer p.Close()
	if len(warns) != 0 {
		t.Errorf("drained shutdown left recovery warnings: %v", warns)
	}
	if got := p.Registry.Len(); got != 2 {
		t.Errorf("recovered %d schemas, want the 2 acked ones", got)
	}
	for _, name := range []string{"orders", "purchases"} {
		if _, ok := p.Registry.Get(name); !ok {
			t.Errorf("acked registration %q missing after drained shutdown", name)
		}
	}
}

// TestCacheFlagAndResponseFields exercises the cached/degraded response
// fields end to end: a repeated batch is flagged cached with identical
// results, a mutation un-caches it, and -cache=0 disables caching.
func TestCacheFlagAndResponseFields(t *testing.T) {
	type batchResp struct {
		CandidatesScored int           `json:"candidates_scored"`
		CandidateBudget  int           `json:"candidate_budget"`
		Cached           bool          `json:"cached"`
		Degraded         bool          `json:"degraded"`
		Results          []batchResult `json:"results"`
	}
	body := map[string]any{"source": map[string]string{"name": "orders"}, "topK": 2}

	s, err := newServer(cupid.DefaultConfig()) // default -cache 1024
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	register(t, ts, "orders", "sql", ordersDDL)
	register(t, ts, "purchases", "sql", purchasesDDL)

	var cold, warm, after batchResp
	if code := call(t, ts, http.MethodPost, "/match/batch", body, &cold); code != http.StatusOK {
		t.Fatalf("cold batch: %d", code)
	}
	if cold.Cached || cold.Degraded {
		t.Errorf("cold batch flags = cached %t degraded %t, want false/false", cold.Cached, cold.Degraded)
	}
	if cold.CandidateBudget <= 0 {
		t.Errorf("candidate_budget = %d, want > 0", cold.CandidateBudget)
	}
	if code := call(t, ts, http.MethodPost, "/match/batch", body, &warm); code != http.StatusOK {
		t.Fatalf("warm batch: %d", code)
	}
	if !warm.Cached {
		t.Error("repeated batch not served from cache")
	}
	if fmt.Sprint(cold.Results) != fmt.Sprint(warm.Results) {
		t.Error("cached batch results differ from fresh ones")
	}
	// A mutation invalidates: the next identical batch recomputes.
	register(t, ts, "inventory", "json", inventoryJSON)
	if code := call(t, ts, http.MethodPost, "/match/batch", body, &after); code != http.StatusOK {
		t.Fatalf("post-mutation batch: %d", code)
	}
	if after.Cached {
		t.Error("batch after a mutation still served from cache (stale hit)")
	}

	// -cache=0 disables caching entirely.
	fs, opt := newFlagSet()
	if err := fs.Parse([]string{"-cache", "0"}); err != nil {
		t.Fatal(err)
	}
	s2, err := newServerFromOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.routes())
	defer ts2.Close()
	register(t, ts2, "orders", "sql", ordersDDL)
	register(t, ts2, "purchases", "sql", purchasesDDL)
	for i := 0; i < 2; i++ {
		var resp batchResp
		if code := call(t, ts2, http.MethodPost, "/match/batch", body, &resp); code != http.StatusOK {
			t.Fatalf("uncached batch %d: %d", i, code)
		}
		if resp.Cached {
			t.Errorf("batch %d flagged cached with -cache=0", i)
		}
	}
}

// waitForCond polls cond generously instead of sleeping fixed amounts.
func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}
