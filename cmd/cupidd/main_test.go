package main

// Integration coverage for the cupidd HTTP API, driven through httptest
// against the real handler stack: register (SQL DDL and native JSON),
// list, pair match, batch top-K match, delete, and the error paths.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	cupid "repro"
)

const ordersDDL = `
CREATE TABLE Orders (
    OrderID INT PRIMARY KEY,
    Customer VARCHAR(64),
    OrderDate DATE,
    Amount DECIMAL(10,2)
);`

const purchasesDDL = `
CREATE TABLE Purchases (
    PurchaseID INT PRIMARY KEY,
    Customer VARCHAR(64),
    PurchaseDate DATE,
    Total DECIMAL(10,2)
);`

const inventoryJSON = `{
  "name": "Inventory",
  "root": {
    "name": "Inventory",
    "children": [
      {"name": "Item", "kind": "element", "children": [
        {"name": "SKU", "kind": "attribute", "type": "string"},
        {"name": "Count", "kind": "attribute", "type": "int"}
      ]}
    ]
  }
}`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return ts
}

// tryCall sends a JSON request and decodes the JSON response into out.
// It never calls into testing.T, so it is safe from non-test goroutines.
func tryCall(ts *httptest.Server, method, path string, body, out any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s %s: decoding response: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// call is tryCall for the test goroutine: request errors are fatal.
func call(t *testing.T, ts *httptest.Server, method, path string, body, out any) int {
	t.Helper()
	code, err := tryCall(ts, method, path, body, out)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func register(t *testing.T, ts *httptest.Server, name, format, content string) schemaInfo {
	t.Helper()
	var info schemaInfo
	code := call(t, ts, http.MethodPost, "/schemas",
		map[string]string{"name": name, "format": format, "content": content}, &info)
	if code != http.StatusCreated {
		t.Fatalf("registering %s: status %d", name, code)
	}
	return info
}

func TestServerRegisterListMatchBatch(t *testing.T) {
	ts := newTestServer(t)

	// Register schemas in two formats: SQL DDL and native JSON.
	orders := register(t, ts, "orders", "sql", ordersDDL)
	if orders.Name != "orders" || len(orders.Fingerprint) != 32 || orders.Leaves == 0 {
		t.Fatalf("bad register response: %+v", orders)
	}
	register(t, ts, "purchases", "sql", purchasesDDL)
	register(t, ts, "inventory", "json", inventoryJSON)

	// Idempotent re-registration returns 200, not 201.
	var again schemaInfo
	code := call(t, ts, http.MethodPost, "/schemas",
		map[string]string{"name": "orders", "format": "sql", "content": ordersDDL}, &again)
	if code != http.StatusOK {
		t.Errorf("idempotent re-register: status %d, want 200", code)
	}
	if again.Fingerprint != orders.Fingerprint {
		t.Error("re-registration changed the fingerprint")
	}

	// List is sorted by name.
	var list struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	if code := call(t, ts, http.MethodGet, "/schemas", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Schemas) != 3 {
		t.Fatalf("list has %d schemas, want 3", len(list.Schemas))
	}
	for i, want := range []string{"inventory", "orders", "purchases"} {
		if list.Schemas[i].Name != want {
			t.Errorf("list[%d] = %q, want %q", i, list.Schemas[i].Name, want)
		}
	}

	// Pair match between two registered schemas.
	var pair struct {
		SourceSchema string     `json:"sourceSchema"`
		TargetSchema string     `json:"targetSchema"`
		Leaves       []jsonPair `json:"leaves"`
	}
	code = call(t, ts, http.MethodPost, "/match", map[string]any{
		"source": map[string]string{"name": "orders"},
		"target": map[string]string{"name": "purchases"},
	}, &pair)
	if code != http.StatusOK {
		t.Fatalf("match: status %d", code)
	}
	if len(pair.Leaves) == 0 {
		t.Fatal("pair match found no leaf correspondences")
	}
	found := false
	for _, l := range pair.Leaves {
		if l.Source == "orders.Orders.Customer" && l.Target == "purchases.Purchases.Customer" {
			found = true
			if l.WSim < 0.5 {
				t.Errorf("Customer-Customer wsim %v below acceptance", l.WSim)
			}
		}
	}
	if !found {
		t.Errorf("expected Customer<->Customer leaf missing; got %+v", pair.Leaves)
	}

	// Pair match with one inline (un-registered) schema.
	code = call(t, ts, http.MethodPost, "/match", map[string]any{
		"source": map[string]string{"format": "json", "content": inventoryJSON},
		"target": map[string]string{"name": "orders"},
	}, &pair)
	if code != http.StatusOK {
		t.Fatalf("inline match: status %d", code)
	}

	// Batch: rank the repository against a registered source. The sibling
	// DDL schema must outscore the unrelated JSON one, and the source must
	// not be ranked against itself.
	var batch struct {
		Source  string        `json:"source"`
		Results []batchResult `json:"results"`
	}
	code = call(t, ts, http.MethodPost, "/match/batch", map[string]any{
		"source": map[string]string{"name": "orders"},
	}, &batch)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if batch.Source != "orders" {
		t.Errorf("batch source = %q", batch.Source)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("batch ranked %d schemas, want 2 (source excluded)", len(batch.Results))
	}
	if batch.Results[0].Name != "purchases" {
		t.Errorf("top batch result = %q, want purchases", batch.Results[0].Name)
	}
	if batch.Results[0].Score < batch.Results[1].Score {
		t.Error("batch ranking is not descending")
	}

	// topK counts results after self-exclusion: a registered source's
	// self-match must not eat one of the caller's slots.
	code = call(t, ts, http.MethodPost, "/match/batch", map[string]any{
		"source": map[string]string{"name": "orders"},
		"topK":   2,
	}, &batch)
	if code != http.StatusOK {
		t.Fatalf("topK batch: status %d", code)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("topK=2 with registered source returned %d results, want 2", len(batch.Results))
	}
	for _, r := range batch.Results {
		if r.Name == "orders" {
			t.Error("batch ranked the source against itself")
		}
	}

	// Batch with topK=1 and an inline source.
	code = call(t, ts, http.MethodPost, "/match/batch", map[string]any{
		"source": map[string]string{"format": "sql", "content": purchasesDDL},
		"topK":   1,
	}, &batch)
	if code != http.StatusOK {
		t.Fatalf("inline batch: status %d", code)
	}
	if len(batch.Results) != 1 {
		t.Fatalf("topK=1 returned %d results", len(batch.Results))
	}

	// Delete, then matching by the stale name 404s.
	if code := call(t, ts, http.MethodDelete, "/schemas/inventory", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	code = call(t, ts, http.MethodPost, "/match", map[string]any{
		"source": map[string]string{"name": "inventory"},
		"target": map[string]string{"name": "orders"},
	}, nil)
	if code != http.StatusNotFound {
		t.Errorf("match against deleted schema: status %d, want 404", code)
	}
}

func TestServerErrorPaths(t *testing.T) {
	ts := newTestServer(t)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown format", http.MethodPost, "/schemas",
			map[string]string{"name": "x", "format": "yaml", "content": "a: 1"}, http.StatusBadRequest},
		{"malformed ddl", http.MethodPost, "/schemas",
			map[string]string{"name": "x", "format": "sql", "content": "DROP EVERYTHING"}, http.StatusBadRequest},
		{"no name or content", http.MethodPost, "/match",
			map[string]any{"source": map[string]string{}, "target": map[string]string{}}, http.StatusBadRequest},
		{"unregistered name", http.MethodPost, "/match",
			map[string]any{
				"source": map[string]string{"name": "ghost"},
				"target": map[string]string{"name": "ghost"},
			}, http.StatusNotFound},
		{"unknown request field", http.MethodPost, "/match/batch",
			map[string]any{"sauce": map[string]string{"name": "x"}}, http.StatusBadRequest},
		{"inline without format", http.MethodPost, "/match/batch",
			map[string]any{"source": map[string]string{"content": "CREATE TABLE T (X INT);"}}, http.StatusBadRequest},
		{"delete missing", http.MethodDelete, "/schemas/ghost", nil, http.StatusNotFound},
	}
	for _, c := range cases {
		var errResp struct {
			Error string `json:"error"`
		}
		code := call(t, ts, c.method, c.path, c.body, &errResp)
		if code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
		if errResp.Error == "" {
			t.Errorf("%s: error response has no message", c.name)
		}
	}

	if code := call(t, ts, http.MethodGet, "/healthz", nil, nil); code != http.StatusOK {
		t.Error("healthz not ok")
	}
}

// TestServerConcurrentClients drives registration and batch matching from
// concurrent clients (run with -race): the registry guarantees snapshot
// isolation, so every request must succeed.
func TestServerConcurrentClients(t *testing.T) {
	ts := newTestServer(t)
	register(t, ts, "orders", "sql", ordersDDL)

	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			ddl := fmt.Sprintf("CREATE TABLE Extra%d (ID INT PRIMARY KEY, Name VARCHAR(10));", g)
			var info schemaInfo
			code, err := tryCall(ts, http.MethodPost, "/schemas",
				map[string]string{"name": fmt.Sprintf("extra%d", g), "format": "sql", "content": ddl}, &info)
			if err == nil && code != http.StatusCreated {
				err = fmt.Errorf("concurrent register %d: status %d", g, code)
			}
			done <- err
		}(g)
		go func() {
			var batch struct {
				Results []batchResult `json:"results"`
			}
			code, err := tryCall(ts, http.MethodPost, "/match/batch", map[string]any{
				"source": map[string]string{"format": "sql", "content": purchasesDDL},
			}, &batch)
			if err == nil && code != http.StatusOK {
				err = fmt.Errorf("concurrent batch: status %d", code)
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestServerBatchRetrievalModes drives /match/batch under all four
// retrieval modes — planned (-retrieval=auto, the default), forced
// indexed, forced linear signature-pruned, forced exhaustive — and
// asserts they agree on the top result, always report candidates_scored,
// and name the strategy that ran. The candidate floors are lowered below
// the repository size so the indexed and pruned paths genuinely engage
// instead of falling back to the exact scan.
func TestServerBatchRetrievalModes(t *testing.T) {
	tightOpt := cupid.PruneOptions{Fraction: 0.5, MinCandidates: 2}
	servers := map[string]*server{}
	for _, mode := range []string{"auto", "indexed", "pruned", "exact"} {
		s, err := newServer(cupid.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.prune = tightOpt
		s.indexOpt = tightOpt
		switch mode {
		case "indexed":
			s.retrieval = cupid.RetrievalIndexed
		case "pruned":
			s.retrieval = cupid.RetrievalPruned
		case "exact":
			s.retrieval = cupid.RetrievalExact
		}
		servers[mode] = s
	}

	// orders + its true match, padded with unrelated domains so the
	// candidate budget (floor 2, ½ of 6 = 3) is a real subset of the
	// repository.
	schemas := []struct{ name, ddl string }{
		{"orders", ordersDDL},
		{"purchases", purchasesDDL},
		// No *ID columns and no PRIMARY KEY constraints: both leave tokens
		// ("id", "primary", "key", the identity concept) in every
		// signature, and any shared token would make a filler an
		// accumulator survivor.
		{"telemetry", "CREATE TABLE Telemetry (Sensor INT, Voltage INT, Reading INT);"},
		{"payroll", "CREATE TABLE Payroll (Employee INT, Salary DECIMAL(10,2), Grade INT);"},
		{"astro", "CREATE TABLE Observations (Star INT, Magnitude INT, Redshift INT);"},
		{"library", "CREATE TABLE Books (Shelf INT, Edition INT, Catalog INT);"},
	}
	type batchResp struct {
		Source           string        `json:"source"`
		Strategy         string        `json:"strategy"`
		Planned          bool          `json:"planned"`
		CandidatesScored int           `json:"candidates_scored"`
		Results          []batchResult `json:"results"`
	}
	got := map[string]batchResp{}
	for _, mode := range []string{"exact", "auto", "indexed", "pruned"} {
		s := servers[mode]
		ts := httptest.NewServer(s.routes())
		for _, sc := range schemas {
			register(t, ts, sc.name, "sql", sc.ddl)
		}
		var resp batchResp
		if code := call(t, ts, http.MethodPost, "/match/batch", map[string]any{
			"source": map[string]string{"name": "orders"},
			"topK":   1,
		}, &resp); code != http.StatusOK {
			t.Fatalf("%s: batch status %d", mode, code)
		}
		ts.Close()
		got[mode] = resp
	}
	if n := got["exact"].CandidatesScored; n != len(schemas) {
		t.Errorf("exact: candidates_scored = %d, want the whole repository (%d)", n, len(schemas))
	}
	// The indexed path must have engaged: only token-sharers are scored,
	// and the unrelated domains share nothing with orders.
	if n := got["indexed"].CandidatesScored; n <= 0 || n >= len(schemas) {
		t.Errorf("indexed: candidates_scored = %d, want in (0,%d) — the index did not engage", n, len(schemas))
	}
	// Forced modes report themselves; the planned mode reports a concrete
	// strategy (never "auto") and flags the decision as planned.
	for _, mode := range []string{"exact", "indexed", "pruned"} {
		if got[mode].Strategy != mode || got[mode].Planned {
			t.Errorf("%s: strategy = %q planned=%t, want the forced mode, not planned",
				mode, got[mode].Strategy, got[mode].Planned)
		}
	}
	if st := got["auto"].Strategy; st == "" || st == "auto" {
		t.Errorf("auto: strategy = %q, want the concrete strategy the planner picked", st)
	}
	if !got["auto"].Planned {
		t.Error("auto: planned = false, want true")
	}
	for mode, resp := range got {
		if resp.CandidatesScored <= 0 {
			t.Errorf("%s: candidates_scored = %d, want > 0", mode, resp.CandidatesScored)
		}
		if len(resp.Results) != 1 || len(got["exact"].Results) != 1 {
			t.Fatalf("%s: results = %+v (exact %+v), want exactly one entry each", mode, resp.Results, got["exact"].Results)
		}
		if resp.Results[0].Name != "purchases" {
			t.Errorf("%s: results = %+v, want the single entry purchases", mode, resp.Results)
		}
		if resp.Results[0].Score != got["exact"].Results[0].Score {
			t.Errorf("%s: score %v differs from exact %v", mode,
				resp.Results[0].Score, got["exact"].Results[0].Score)
		}
	}
}

// TestRetrievalFlagResolution covers the -retrieval knob and its
// deprecated -index/-exact aliases: every alias maps onto the forced
// strategy it always selected, agreement with an explicit -retrieval is
// accepted, and contradictions are refused (mirroring the
// -wal/-snapshot-interval precedent).
func TestRetrievalFlagResolution(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    cupid.RetrievalStrategy
		wantErr bool
	}{
		{name: "default is the planner", args: nil, want: cupid.RetrievalAuto},
		{name: "retrieval auto", args: []string{"-retrieval=auto"}, want: cupid.RetrievalAuto},
		{name: "retrieval index", args: []string{"-retrieval=index"}, want: cupid.RetrievalIndexed},
		{name: "retrieval indexed spelling", args: []string{"-retrieval=indexed"}, want: cupid.RetrievalIndexed},
		{name: "retrieval pruned", args: []string{"-retrieval=pruned"}, want: cupid.RetrievalPruned},
		{name: "retrieval exact", args: []string{"-retrieval=exact"}, want: cupid.RetrievalExact},
		{name: "unknown strategy", args: []string{"-retrieval=fuzzy"}, wantErr: true},
		{name: "exact alias", args: []string{"-exact"}, want: cupid.RetrievalExact},
		{name: "index alias", args: []string{"-index"}, want: cupid.RetrievalIndexed},
		{name: "index=false alias", args: []string{"-index=false"}, want: cupid.RetrievalPruned},
		{name: "exact beats index default", args: []string{"-exact", "-index=false"}, want: cupid.RetrievalExact},
		{name: "exact vs explicit index", args: []string{"-exact", "-index"}, wantErr: true},
		{name: "alias agrees with retrieval", args: []string{"-retrieval=exact", "-exact"}, want: cupid.RetrievalExact},
		{name: "index agrees with retrieval", args: []string{"-retrieval=index", "-index"}, want: cupid.RetrievalIndexed},
		{name: "pruned agrees with index=false", args: []string{"-retrieval=pruned", "-index=false"}, want: cupid.RetrievalPruned},
		{name: "exact contradicts retrieval", args: []string{"-retrieval=index", "-exact"}, wantErr: true},
		{name: "index contradicts retrieval", args: []string{"-retrieval=pruned", "-index"}, wantErr: true},
		{name: "index=false contradicts retrieval", args: []string{"-retrieval=index", "-index=false"}, wantErr: true},
		{name: "alias contradicts explicit auto", args: []string{"-retrieval=auto", "-index"}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, opt := newFlagSet()
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			opt.recordExplicitFlags(fs)
			got, err := opt.retrievalStrategy()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("retrievalStrategy() = %v, want an error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("retrievalStrategy() = %v, want %v", got, tc.want)
			}
		})
	}

	// Programmatic construction (the zero options value and the legacy
	// bools) keeps its pre--retrieval meaning.
	legacy := []struct {
		opt  options
		want cupid.RetrievalStrategy
	}{
		{options{}, cupid.RetrievalPruned},
		{options{useIndex: true}, cupid.RetrievalIndexed},
		{options{exact: true}, cupid.RetrievalExact},
		{options{exact: true, useIndex: true}, cupid.RetrievalExact},
	}
	for _, tc := range legacy {
		got, err := tc.opt.retrievalStrategy()
		if err != nil || got != tc.want {
			t.Errorf("programmatic %+v: strategy = %v, err %v; want %v", tc.opt, got, err, tc.want)
		}
	}
}
