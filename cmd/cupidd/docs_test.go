package main

// Doc-conformance coverage: docs/API.md is the server's contract, and this
// file keeps it honest. The route set and flag set documented there must
// equal the ones the binary declares (both directions), every fenced JSON
// example must parse, and the documented quickstart flow must behave as
// the doc claims when driven against the real handler stack.

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"

	cupid "repro"
)

const apiDocPath = "../../docs/API.md"

func readAPIDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("docs/API.md must exist (the cupidd API reference): %v", err)
	}
	// The document covers both binaries: cupidd's contract is everything
	// above the `## cupidrouter` heading; the router's own conformance
	// test (cmd/cupidrouter) holds the rest to the same standard.
	doc := string(b)
	if head, _, found := strings.Cut(doc, "\n## cupidrouter"); found {
		doc = head
	}
	return doc
}

func TestAPIDocRoutesMatchServer(t *testing.T) {
	doc := readAPIDoc(t)
	routeHeader := regexp.MustCompile("(?m)^### `(GET|POST|DELETE|PUT|PATCH) ([^`]+)`$")
	documented := map[string]bool{}
	for _, m := range routeHeader.FindAllStringSubmatch(doc, -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/API.md documents no routes (### `METHOD /path` headers)")
	}

	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	for _, rt := range s.routeTable() {
		declared[rt.method+" "+rt.pattern] = true
	}

	for r := range declared {
		if !documented[r] {
			t.Errorf("route %q is served but not documented in docs/API.md", r)
		}
	}
	for r := range documented {
		if !declared[r] {
			t.Errorf("route %q is documented in docs/API.md but not served", r)
		}
	}
}

func TestAPIDocFlagsMatchServer(t *testing.T) {
	doc := readAPIDoc(t)
	flagRow := regexp.MustCompile("(?m)^\\| `-([a-z0-9-]+)` \\|")
	documented := map[string]bool{}
	for _, m := range flagRow.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/API.md documents no flags (| `-flag` | table rows)")
	}

	fs, _ := newFlagSet()
	declared := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { declared[f.Name] = true })

	for f := range declared {
		if !documented[f] {
			t.Errorf("flag -%s is declared but not documented in docs/API.md", f)
		}
	}
	for f := range documented {
		if !declared[f] {
			t.Errorf("flag -%s is documented in docs/API.md but not declared", f)
		}
	}
}

func TestAPIDocJSONExamplesParse(t *testing.T) {
	doc := readAPIDoc(t)
	fence := regexp.MustCompile("(?s)```json\n(.*?)```")
	blocks := fence.FindAllStringSubmatch(doc, -1)
	if len(blocks) < 8 {
		t.Fatalf("docs/API.md has %d json examples, expected the full request/response tour (>= 8)", len(blocks))
	}
	for i, b := range blocks {
		var v any
		if err := json.Unmarshal([]byte(b[1]), &v); err != nil {
			snippet := b[1]
			if len(snippet) > 120 {
				snippet = snippet[:120] + "…"
			}
			t.Errorf("json example %d does not parse: %v\n%s", i, err, snippet)
		}
	}
}

// TestAPIDocQuickstartFlow drives the documented example sequence —
// register both example schemas, list, pair match, batch with topK,
// delete, healthz — against the real handler stack, asserting the status
// codes and response shapes the doc promises.
func TestAPIDocQuickstartFlow(t *testing.T) {
	ordersSQL, err := os.ReadFile("../../examples/schemas/orders.sql")
	if err != nil {
		t.Fatalf("examples/schemas/orders.sql (referenced by README and docs/API.md): %v", err)
	}
	purchasesSQL, err := os.ReadFile("../../examples/schemas/purchases.sql")
	if err != nil {
		t.Fatalf("examples/schemas/purchases.sql (referenced by README and docs/API.md): %v", err)
	}

	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// POST /schemas: 201 with name/fingerprint/elements/leaves.
	var info schemaInfo
	code := call(t, ts, http.MethodPost, "/schemas",
		map[string]string{"name": "orders", "format": "sql", "content": string(ordersSQL)}, &info)
	if code != http.StatusCreated {
		t.Fatalf("register: status %d, want 201", code)
	}
	if info.Name != "orders" || len(info.Fingerprint) != 32 || info.Elements == 0 || info.Leaves == 0 {
		t.Fatalf("register response missing documented fields: %+v", info)
	}
	// Idempotent re-registration: 200, as documented.
	if code := call(t, ts, http.MethodPost, "/schemas",
		map[string]string{"name": "orders", "format": "sql", "content": string(ordersSQL)}, &info); code != http.StatusOK {
		t.Errorf("idempotent re-register: status %d, want 200", code)
	}
	register(t, ts, "purchases", "sql", string(purchasesSQL))

	// POST /match with documented body shape.
	var pair struct {
		SourceSchema string     `json:"sourceSchema"`
		TargetSchema string     `json:"targetSchema"`
		Leaves       []jsonPair `json:"leaves"`
		NonLeaves    []jsonPair `json:"nonLeaves"`
	}
	if code := call(t, ts, http.MethodPost, "/match", map[string]any{
		"source": map[string]string{"name": "orders"},
		"target": map[string]string{"name": "purchases"},
	}, &pair); code != http.StatusOK {
		t.Fatalf("match: status %d", code)
	}
	if pair.SourceSchema != "orders" || pair.TargetSchema != "purchases" || len(pair.Leaves) == 0 {
		t.Fatalf("match response missing documented fields: %+v", pair)
	}

	// POST /match/batch with the documented inline-source example.
	var batch struct {
		Source  string        `json:"source"`
		Results []batchResult `json:"results"`
	}
	if code := call(t, ts, http.MethodPost, "/match/batch", map[string]any{
		"source": map[string]any{"format": "sql",
			"content": "CREATE TABLE Sales (SaleID INT PRIMARY KEY, Customer VARCHAR(64), SaleDate DATE);"},
		"topK": 2,
	}, &batch); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("batch topK=2 returned %d results", len(batch.Results))
	}

	// Error shape: one {"error": ...} object, 404 for unknown names.
	var errResp struct {
		Error string `json:"error"`
	}
	if code := call(t, ts, http.MethodPost, "/match", map[string]any{
		"source": map[string]string{"name": "ghost"},
		"target": map[string]string{"name": "orders"},
	}, &errResp); code != http.StatusNotFound || errResp.Error == "" {
		t.Errorf("error contract: status %d, error %q", code, errResp.Error)
	}

	// DELETE /schemas/{name} and GET /healthz round out the tour.
	var removed map[string]string
	if code := call(t, ts, http.MethodDelete, "/schemas/purchases", nil, &removed); code != http.StatusOK || removed["removed"] != "purchases" {
		t.Errorf("delete: status %d, body %v", code, removed)
	}
	var health map[string]string
	if code := call(t, ts, http.MethodGet, "/healthz", nil, &health); code != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz: status %d, body %v", code, health)
	}
}

// TestDocsFormatListMatchesSchemaFormats holds the schema-format lists in
// docs/API.md and the command doc comment to cupid.SchemaFormats(), both
// directions: every supported format must be documented (backticked in
// the API doc's "Formats:" sentence and named in the godoc header), and
// every format the docs name must actually be supported.
func TestDocsFormatListMatchesSchemaFormats(t *testing.T) {
	supported := map[string]bool{}
	for _, f := range cupid.SchemaFormats() {
		supported[f] = true
	}

	doc := readAPIDoc(t)
	i := strings.Index(doc, "Formats:")
	if i < 0 {
		t.Fatal("docs/API.md has no \"Formats:\" sentence")
	}
	sentence, _, _ := strings.Cut(doc[i:], ".\n")
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile("`([a-z]+)`").FindAllStringSubmatch(sentence, -1) {
		documented[m[1]] = true
	}
	for f := range supported {
		if !documented[f] {
			t.Errorf("format %q is supported but missing from docs/API.md's Formats list", f)
		}
	}
	for f := range documented {
		if !supported[f] {
			t.Errorf("format %q is documented in docs/API.md but not supported by cupid.ParseSchema", f)
		}
	}

	head, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	src := string(head)
	if i := strings.Index(src, "package main"); i > 0 {
		src = src[:i]
	}
	for f := range supported {
		if !strings.Contains(src, f) {
			t.Errorf("command doc comment does not mention format %q", f)
		}
	}
}

// TestRegisterWithInstancesFlow drives the documented instances payload
// against the real handler stack: a registration carrying samples must
// succeed with a profile-suffixed fingerprint, and a malformed payload
// must be rejected with 400.
func TestRegisterWithInstancesFlow(t *testing.T) {
	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var info schemaInfo
	code := call(t, ts, http.MethodPost, "/schemas", map[string]any{
		"name": "orders", "format": "sql",
		"content":   "CREATE TABLE Orders (OrderID INT, Customer VARCHAR(64));",
		"instances": map[string]any{"Orders.OrderID": []any{1001, 1002, 1003}, "Orders.Customer": []any{"Ada", "Grace", nil}},
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("register with instances: status %d, want 201", code)
	}
	if !strings.Contains(info.Fingerprint, "+") {
		t.Errorf("fingerprint %q has no profile suffix; instances dropped?", info.Fingerprint)
	}

	var errResp struct {
		Error string `json:"error"`
	}
	if code := call(t, ts, http.MethodPost, "/schemas", map[string]any{
		"name": "bad", "format": "sql",
		"content":   "CREATE TABLE T (X INT);",
		"instances": map[string]any{"T.X": []any{map[string]any{"nested": true}}},
	}, &errResp); code != http.StatusBadRequest || errResp.Error == "" {
		t.Errorf("malformed instances: status %d, error %q (want 400)", code, errResp.Error)
	}
}

// TestCommandDocMentionsEveryFlagAndRoute keeps the package comment at the
// top of main.go (the godoc face of the command) in sync with reality.
func TestCommandDocMentionsEveryFlagAndRoute(t *testing.T) {
	b, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	src := string(b)
	head := src
	if i := strings.Index(src, "package main"); i > 0 {
		head = src[:i]
	}
	fs, _ := newFlagSet()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(head, "-"+f.Name) {
			t.Errorf("command doc comment does not mention flag -%s", f.Name)
		}
	})
	s, err := newServer(cupid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range s.routeTable() {
		if !strings.Contains(head, rt.pattern) {
			t.Errorf("command doc comment does not mention route %s", rt.pattern)
		}
	}
}
