// Command cupidd serves Cupid schema matching over HTTP/JSON: a
// prepared-schema repository that clients register schemas into once and
// then match against — the paper's framing of a matcher that a tool
// repeatedly applies against a repository of known schemas, run as a
// service. Registration pays the per-schema cost (validation, tree
// expansion, linguistic analysis) up front; every subsequent match reuses
// the prepared artifact, and batch matching fans one-vs-all out over the
// worker pool.
//
// Usage:
//
//	cupidd [flags]
//
// Flags:
//
//	-addr ADDR        listen address (default :8427)
//	-thesaurus FILE   load a thesaurus JSON file (default: built-in base)
//	-no-thesaurus     run with an empty thesaurus
//	-one-to-one       generate 1:1 mappings instead of the naive 1:n
//	-min FLOAT        acceptance threshold thaccept (default 0.5)
//
// Endpoints (request and response bodies are JSON):
//
//	POST   /schemas          register {name?, format, content}; format is
//	                         sql, xsd, dtd or json (cupidmatch's formats)
//	GET    /schemas          list registered schemas
//	DELETE /schemas/{name}   remove one schema
//	POST   /match            match two schemas: {source, target}, each a
//	                         {"name": ...} reference to a registered schema
//	                         or an inline {"format", "content"} document
//	POST   /match/batch      rank the repository against one source schema:
//	                         {source, topK?}; returns top-K scored results
//	GET    /healthz          liveness probe
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	cupid "repro"
)

// server bundles the registry with the HTTP handlers.
type server struct {
	reg *cupid.SchemaRegistry
}

func newServer(cfg cupid.Config) (*server, error) {
	reg, err := cupid.NewRegistry(cfg)
	if err != nil {
		return nil, err
	}
	return &server{reg: reg}, nil
}

// schemaRef names a schema for a match request: either a registered
// repository entry ({"name": "po"}) or an inline document
// ({"format": "sql", "content": "CREATE TABLE ..."}).
type schemaRef struct {
	Name    string `json:"name,omitempty"`
	Format  string `json:"format,omitempty"`
	Content string `json:"content,omitempty"`
}

// schemaInfo is the summary returned for registered schemas.
type schemaInfo struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Elements    int    `json:"elements"`
	Leaves      int    `json:"leaves"`
}

func infoOf(e *cupid.RegistryEntry) schemaInfo {
	return schemaInfo{
		Name:        e.Name,
		Fingerprint: e.Fingerprint,
		Elements:    e.Prepared.Schema().Len(),
		Leaves:      e.Prepared.Tree().NumLeaves(),
	}
}

// httpError carries a status code out of a handler helper.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func errf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("cupidd: writing response: %v", err)
	}
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeBody decodes a JSON request body, rejecting unknown fields so
// client typos surface as errors instead of silent defaults.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errf(http.StatusBadRequest, "decoding request body: %v", err)
	}
	return nil
}

// resolve turns a schemaRef into a prepared schema (plus its repository
// name when registered).
func (s *server) resolve(ref schemaRef) (*cupid.Prepared, string, error) {
	switch {
	case ref.Name != "" && ref.Content == "":
		e, ok := s.reg.Get(ref.Name)
		if !ok {
			return nil, "", errf(http.StatusNotFound, "schema %q is not registered", ref.Name)
		}
		return e.Prepared, e.Name, nil
	case ref.Content != "":
		if ref.Format == "" {
			return nil, "", errf(http.StatusBadRequest, "inline schema needs a format (one of %s)", strings.Join(cupid.SchemaFormats(), ", "))
		}
		sch, err := cupid.ParseSchema(ref.Name, ref.Format, []byte(ref.Content))
		if err != nil {
			return nil, "", errf(http.StatusBadRequest, "parsing inline schema: %v", err)
		}
		p, err := s.reg.Matcher().Prepare(sch)
		if err != nil {
			return nil, "", errf(http.StatusBadRequest, "preparing inline schema: %v", err)
		}
		return p, "", nil
	default:
		return nil, "", errf(http.StatusBadRequest, `schema reference needs "name" or "format"+"content"`)
	}
}

func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name    string `json:"name,omitempty"`
		Format  string `json:"format"`
		Content string `json:"content"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	sch, err := cupid.ParseSchema(req.Name, req.Format, []byte(req.Content))
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "parsing schema: %v", err))
		return
	}
	e, created, err := s.reg.Register(req.Name, sch)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "%v", err))
		return
	}
	code := http.StatusCreated
	if !created {
		code = http.StatusOK // idempotent re-registration
	}
	writeJSON(w, code, infoOf(e))
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.List()
	infos := make([]schemaInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, infoOf(e))
	}
	writeJSON(w, http.StatusOK, map[string]any{"schemas": infos})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Remove(name) {
		writeError(w, errf(http.StatusNotFound, "schema %q is not registered", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

// jsonPair is one mapping element in a match response.
type jsonPair struct {
	Source string  `json:"source"`
	Target string  `json:"target"`
	WSim   float64 `json:"wsim"`
	SSim   float64 `json:"ssim"`
	LSim   float64 `json:"lsim"`
}

func pairsOf(es []cupid.MappingElement) []jsonPair {
	out := make([]jsonPair, 0, len(es))
	for _, e := range es {
		out = append(out, jsonPair{
			Source: e.Source.Path(),
			Target: e.Target.Path(),
			WSim:   e.WSim,
			SSim:   e.SSim,
			LSim:   e.LSim,
		})
	}
	return out
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Source schemaRef `json:"source"`
		Target schemaRef `json:"target"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	src, _, err := s.resolve(req.Source)
	if err != nil {
		writeError(w, err)
		return
	}
	dst, _, err := s.resolve(req.Target)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.reg.Matcher().MatchPrepared(src, dst)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sourceSchema": res.SourceTree.Schema.Name,
		"targetSchema": res.TargetTree.Schema.Name,
		"leaves":       pairsOf(res.Mapping.Leaves),
		"nonLeaves":    pairsOf(res.Mapping.NonLeaves),
	})
}

// batchResult is one ranked repository schema in a batch response.
type batchResult struct {
	Name        string     `json:"name"`
	Fingerprint string     `json:"fingerprint"`
	Score       float64    `json:"score"`
	Leaves      []jsonPair `json:"leaves"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Source schemaRef `json:"source"`
		TopK   int       `json:"topK,omitempty"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	src, srcName, err := s.resolve(req.Source)
	if err != nil {
		writeError(w, err)
		return
	}
	// Rank the whole repository, drop the source's trivial self-match,
	// and only then truncate — otherwise a registered source would eat
	// one of the caller's topK slots with itself.
	ranked, err := s.reg.MatchAll(src, 0)
	if err != nil {
		writeError(w, err)
		return
	}
	results := make([]batchResult, 0, len(ranked))
	for _, rk := range ranked {
		// A registered source trivially matches itself; skip that entry.
		// The fingerprint check keeps the entry in the ranking if a
		// concurrent re-registration replaced the name with different
		// content between resolve and the MatchAll snapshot.
		if srcName != "" && rk.Entry.Name == srcName && rk.Entry.Fingerprint == src.Fingerprint() {
			continue
		}
		if req.TopK > 0 && len(results) == req.TopK {
			break
		}
		results = append(results, batchResult{
			Name:        rk.Entry.Name,
			Fingerprint: rk.Entry.Fingerprint,
			Score:       rk.Score,
			Leaves:      pairsOf(rk.Result.Mapping.Leaves),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"source":  sourceName(src, srcName),
		"results": results,
	})
}

// sourceName labels the batch source: its repository name when registered,
// otherwise the inline schema's own name.
func sourceName(p *cupid.Prepared, registered string) string {
	if registered != "" {
		return registered
	}
	return p.Schema().Name
}

// routes builds the HTTP handler; split out so tests can drive the server
// through httptest without binding a socket.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schemas", s.handleRegister)
	mux.HandleFunc("GET /schemas", s.handleList)
	mux.HandleFunc("DELETE /schemas/{name}", s.handleDelete)
	mux.HandleFunc("POST /match", s.handleMatch)
	mux.HandleFunc("POST /match/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func run() error {
	addr := flag.String("addr", ":8427", "listen address")
	thesaurusPath := flag.String("thesaurus", "", "thesaurus JSON file (default: built-in base thesaurus)")
	noThesaurus := flag.Bool("no-thesaurus", false, "run with an empty thesaurus")
	oneToOne := flag.Bool("one-to-one", false, "generate 1:1 mappings")
	minAccept := flag.Float64("min", 0.5, "acceptance threshold thaccept")
	flag.Parse()

	cfg := cupid.DefaultConfig()
	switch {
	case *noThesaurus:
		cfg.Thesaurus = cupid.NewThesaurus()
	case *thesaurusPath != "":
		f, err := os.Open(*thesaurusPath)
		if err != nil {
			return err
		}
		th, err := cupid.ReadThesaurus(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading thesaurus: %w", err)
		}
		cfg.Thesaurus = th
	}
	if *oneToOne {
		cfg.Mapping.Cardinality = cupid.OneToOne
	}
	cfg.Mapping.ThAccept = *minAccept

	s, err := newServer(cfg)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("cupidd: listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		log.Print("cupidd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cupidd:", err)
		os.Exit(1)
	}
}
