// Command cupidd serves Cupid schema matching over HTTP/JSON: a
// prepared-schema repository that clients register schemas into once and
// then match against — the paper's framing of a matcher that a tool
// repeatedly applies against a repository of known schemas, run as a
// service. Registration pays the per-schema cost (validation, tree
// expansion, linguistic analysis) up front; every subsequent match reuses
// the prepared artifact, and batch matching fans one-vs-all out over the
// worker pool.
//
// With -data the repository is durable: every mutation's source document
// is journaled through an append-only write-ahead log (-wal, on by
// default) — each Register/Replace/Remove appends one checksummed record,
// a group-commit loop batches concurrent writers into a single fsync
// (linger tunable via -wal-group-commit), and a background compactor
// folds the journal into a fresh snapshot generation once it passes
// -compact-threshold bytes. An acknowledged mutation is on disk, and
// write cost is O(record) instead of O(corpus). A restart recovers the
// newest consistent snapshot plus the ordered journal tail (torn tails
// truncated) and serves bit-identical match rankings; docs/PERSISTENCE.md
// is the full durability contract. -wal=false falls back to the legacy
// snapshot-per-mutation path (batched with -snapshot-interval, which
// implies the legacy mode when set). The sharded token inverted index
// behind batch matching is never persisted; recovery rebuilds it
// deterministically while re-registering the recovered documents.
//
// Batch matching retrieves candidates from the inverted index by default
// (-index, on unless disabled): only repository schemas sharing at least
// one normalized token with the source are touched, re-ranked by exact
// signature affinity, and just the top candidates pay the full tree
// match. -index=false falls back to the linear signature-pruned scan;
// -exact overrides both with the exhaustive full scan.
//
// Usage:
//
//	cupidd [flags]
//
// Flags:
//
//	-addr ADDR             listen address (default :8427)
//	-thesaurus FILE        load a thesaurus JSON file (default: built-in base)
//	-no-thesaurus          run with an empty thesaurus
//	-one-to-one            generate 1:1 mappings instead of the naive 1:n
//	-min FLOAT             acceptance threshold thaccept (default 0.5)
//	-data DIR              persist the repository under DIR (default: in-memory only)
//	-wal                   journal mutations to a write-ahead log with group
//	                       commit and background compaction (default true;
//	                       =false falls back to legacy full snapshots)
//	-wal-group-commit DUR  linger after a write batch opens, letting more
//	                       concurrent writers join the same fsync (default 0:
//	                       batch only what queued during the previous fsync)
//	-compact-threshold N   fold the journal into a new snapshot generation
//	                       once it exceeds N bytes (default 1 MiB)
//	-snapshot-interval DUR legacy snapshot batching (implies -wal=false):
//	                       snapshot at most once per DUR; 0 = fsync a full
//	                       snapshot synchronously on every mutation
//	-index                 serve /match/batch from the token inverted index
//	                       (default true; =false falls back to the linear
//	                       signature-pruned scan)
//	-exact                 exhaustive /match/batch scans (disable indexed
//	                       retrieval and pruning)
//
// Endpoints (request and response bodies are JSON; docs/API.md is the full
// reference, kept honest by a doc-conformance test):
//
//	POST   /schemas          register {name?, format, content}; format is
//	                         sql, xsd, dtd or json (cupidmatch's formats)
//	GET    /schemas          list registered schemas
//	DELETE /schemas/{name}   remove one schema
//	POST   /match            match two schemas: {source, target}, each a
//	                         {"name": ...} reference to a registered schema
//	                         or an inline {"format", "content"} document
//	POST   /match/batch      rank the repository against one source schema:
//	                         {source, topK?}; returns top-K scored results
//	GET    /healthz          liveness probe
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests and flushing any pending snapshot before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	cupid "repro"
)

// server bundles the registry with the HTTP handlers.
type server struct {
	reg *cupid.SchemaRegistry
	// persist is the durable registry when -data is set; nil means the
	// repository is in-memory only. When non-nil, reg is persist's embedded
	// in-memory registry — reads go through reg, mutations through persist.
	persist *cupid.PersistentRegistry
	// exact disables candidate generation entirely in /match/batch
	// (exhaustive scans); useIndex picks the inverted-index candidate path
	// over the linear signature-pruned scan when exact is off.
	exact    bool
	useIndex bool
	prune    cupid.PruneOptions
	// indexOpt sizes the indexed path's candidate budget (same Limit
	// policy as prune, tighter default fraction).
	indexOpt cupid.PruneOptions
}

func newServer(cfg cupid.Config) (*server, error) {
	reg, err := cupid.NewRegistry(cfg)
	if err != nil {
		return nil, err
	}
	return &server{reg: reg, useIndex: true, prune: cupid.DefaultPruneOptions(), indexOpt: cupid.DefaultIndexOptions()}, nil
}

// newPersistentServer builds a server on a durable registry rooted at dir
// in the durability mode popt selects (WAL or legacy snapshots).
func newPersistentServer(cfg cupid.Config, dir string, popt cupid.PersistOptions) (*server, error) {
	m, err := cupid.NewMatcher(cfg)
	if err != nil {
		return nil, err
	}
	p, warns, err := cupid.OpenPersistentRegistryOptions(dir, m, popt)
	if err != nil {
		return nil, err
	}
	for _, w := range warns {
		log.Printf("cupidd: recovery: %s", w)
	}
	return &server{reg: p.Registry, persist: p, useIndex: true, prune: cupid.DefaultPruneOptions(), indexOpt: cupid.DefaultIndexOptions()}, nil
}

// close flushes and detaches the persistence layer, if any.
func (s *server) close() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.Close()
}

// schemaRef names a schema for a match request: either a registered
// repository entry ({"name": "po"}) or an inline document
// ({"format": "sql", "content": "CREATE TABLE ..."}).
type schemaRef struct {
	Name    string `json:"name,omitempty"`
	Format  string `json:"format,omitempty"`
	Content string `json:"content,omitempty"`
}

// schemaInfo is the summary returned for registered schemas.
type schemaInfo struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Elements    int    `json:"elements"`
	Leaves      int    `json:"leaves"`
}

func infoOf(e *cupid.RegistryEntry) schemaInfo {
	return schemaInfo{
		Name:        e.Name,
		Fingerprint: e.Fingerprint,
		Elements:    e.Prepared.Schema().Len(),
		Leaves:      e.Prepared.Tree().NumLeaves(),
	}
}

// httpError carries a status code out of a handler helper.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func errf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("cupidd: writing response: %v", err)
	}
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeBody decodes a JSON request body, rejecting unknown fields so
// client typos surface as errors instead of silent defaults.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errf(http.StatusBadRequest, "decoding request body: %v", err)
	}
	return nil
}

// resolve turns a schemaRef into a prepared schema (plus its repository
// name when registered).
func (s *server) resolve(ref schemaRef) (*cupid.Prepared, string, error) {
	switch {
	case ref.Name != "" && ref.Content == "":
		e, ok := s.reg.Get(ref.Name)
		if !ok {
			return nil, "", errf(http.StatusNotFound, "schema %q is not registered", ref.Name)
		}
		return e.Prepared, e.Name, nil
	case ref.Content != "":
		if ref.Format == "" {
			return nil, "", errf(http.StatusBadRequest, "inline schema needs a format (one of %s)", strings.Join(cupid.SchemaFormats(), ", "))
		}
		sch, err := cupid.ParseSchema(ref.Name, ref.Format, []byte(ref.Content))
		if err != nil {
			return nil, "", errf(http.StatusBadRequest, "parsing inline schema: %v", err)
		}
		p, err := s.reg.Matcher().Prepare(sch)
		if err != nil {
			return nil, "", errf(http.StatusBadRequest, "preparing inline schema: %v", err)
		}
		return p, "", nil
	default:
		return nil, "", errf(http.StatusBadRequest, `schema reference needs "name" or "format"+"content"`)
	}
}

func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name    string `json:"name,omitempty"`
		Format  string `json:"format"`
		Content string `json:"content"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	var (
		e       *cupid.RegistryEntry
		created bool
		err     error
	)
	if s.persist != nil {
		// The durable path parses and persists the source document
		// verbatim, so a restart re-parses exactly what was registered. A
		// failed snapshot write (entry exists but err != nil) is a
		// server-side error: the mutation is in memory but its durability
		// could not be guaranteed.
		e, created, err = s.persist.RegisterSource(req.Name, req.Format, []byte(req.Content))
		if err != nil && e != nil {
			writeError(w, errf(http.StatusInternalServerError, "%v", err))
			return
		}
	} else {
		var sch *cupid.Schema
		sch, err = cupid.ParseSchema(req.Name, req.Format, []byte(req.Content))
		if err == nil {
			e, created, err = s.reg.Register(req.Name, sch)
		}
	}
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "%v", err))
		return
	}
	code := http.StatusCreated
	if !created {
		code = http.StatusOK // idempotent re-registration
	}
	writeJSON(w, code, infoOf(e))
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.List()
	infos := make([]schemaInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, infoOf(e))
	}
	writeJSON(w, http.StatusOK, map[string]any{"schemas": infos})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var (
		ok  bool
		err error
	)
	if s.persist != nil {
		ok, err = s.persist.Remove(name)
	} else {
		ok = s.reg.Remove(name)
	}
	if !ok {
		writeError(w, errf(http.StatusNotFound, "schema %q is not registered", name))
		return
	}
	if err != nil {
		writeError(w, errf(http.StatusInternalServerError, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

// jsonPair is one mapping element in a match response.
type jsonPair struct {
	Source string  `json:"source"`
	Target string  `json:"target"`
	WSim   float64 `json:"wsim"`
	SSim   float64 `json:"ssim"`
	LSim   float64 `json:"lsim"`
}

func pairsOf(es []cupid.MappingElement) []jsonPair {
	out := make([]jsonPair, 0, len(es))
	for _, e := range es {
		out = append(out, jsonPair{
			Source: e.Source.Path(),
			Target: e.Target.Path(),
			WSim:   e.WSim,
			SSim:   e.SSim,
			LSim:   e.LSim,
		})
	}
	return out
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Source schemaRef `json:"source"`
		Target schemaRef `json:"target"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	src, _, err := s.resolve(req.Source)
	if err != nil {
		writeError(w, err)
		return
	}
	dst, _, err := s.resolve(req.Target)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.reg.Matcher().MatchPrepared(src, dst)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sourceSchema": res.SourceTree.Schema.Name,
		"targetSchema": res.TargetTree.Schema.Name,
		"leaves":       pairsOf(res.Mapping.Leaves),
		"nonLeaves":    pairsOf(res.Mapping.NonLeaves),
	})
}

// batchResult is one ranked repository schema in a batch response.
type batchResult struct {
	Name        string     `json:"name"`
	Fingerprint string     `json:"fingerprint"`
	Score       float64    `json:"score"`
	Leaves      []jsonPair `json:"leaves"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Source schemaRef `json:"source"`
		TopK   int       `json:"topK,omitempty"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	src, srcName, err := s.resolve(req.Source)
	if err != nil {
		writeError(w, err)
		return
	}
	// Rank the repository, drop the source's trivial self-match, and only
	// then truncate — otherwise a registered source would eat one of the
	// caller's topK slots with itself. The default path retrieves
	// candidates from the token inverted index (MatchIndexed) with one
	// extra slot to absorb the self-match; -index=false falls back to the
	// linear signature-pruned scan (MatchTop), -exact scans every entry
	// (MatchAll). With topK <= 0 the exact scan ranks the whole
	// repository, the other paths their candidate set.
	//
	// candidatesScored reports how many entries' cheap signatures were
	// scored during candidate generation: the index's accumulator
	// survivors on the indexed path, the repository size on the scans
	// (which score — or fully match — everything).
	var ranked []cupid.RankedMatch
	var err2 error
	var candidatesScored int
	want := req.TopK
	if want > 0 && srcName != "" {
		want++
	}
	switch {
	case s.exact:
		ranked, err2 = s.reg.MatchAll(src, 0)
		candidatesScored = len(ranked)
	case s.useIndex:
		var st cupid.RetrievalStats
		ranked, st, err2 = s.reg.MatchIndexed(src, want, s.indexOpt)
		candidatesScored = st.CandidatesScored
	default:
		ranked, err2 = s.reg.MatchTop(src, want, s.prune)
		candidatesScored = s.reg.Len()
	}
	if err2 != nil {
		writeError(w, err2)
		return
	}
	results := make([]batchResult, 0, len(ranked))
	for _, rk := range ranked {
		// A registered source trivially matches itself; skip that entry.
		// The fingerprint check keeps the entry in the ranking if a
		// concurrent re-registration replaced the name with different
		// content between resolve and the MatchAll snapshot.
		if srcName != "" && rk.Entry.Name == srcName && rk.Entry.Fingerprint == src.Fingerprint() {
			continue
		}
		if req.TopK > 0 && len(results) == req.TopK {
			break
		}
		results = append(results, batchResult{
			Name:        rk.Entry.Name,
			Fingerprint: rk.Entry.Fingerprint,
			Score:       rk.Score,
			Leaves:      pairsOf(rk.Result.Mapping.Leaves),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"source":            sourceName(src, srcName),
		"candidates_scored": candidatesScored,
		"results":           results,
	})
}

// sourceName labels the batch source: its repository name when registered,
// otherwise the inline schema's own name.
func sourceName(p *cupid.Prepared, registered string) string {
	if registered != "" {
		return registered
	}
	return p.Schema().Name
}

// route is one HTTP endpoint; the table form keeps the mux, the command
// doc and docs/API.md mechanically comparable (the doc-conformance test
// walks it).
type route struct {
	method, pattern string
	handler         http.HandlerFunc
}

// routeTable lists every endpoint the server exposes.
func (s *server) routeTable() []route {
	return []route{
		{http.MethodPost, "/schemas", s.handleRegister},
		{http.MethodGet, "/schemas", s.handleList},
		{http.MethodDelete, "/schemas/{name}", s.handleDelete},
		{http.MethodPost, "/match", s.handleMatch},
		{http.MethodPost, "/match/batch", s.handleBatch},
		{http.MethodGet, "/healthz", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}},
	}
}

// routes builds the HTTP handler; split out so tests can drive the server
// through httptest without binding a socket.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routeTable() {
		mux.HandleFunc(rt.method+" "+rt.pattern, rt.handler)
	}
	return mux
}

// options holds every command-line flag value. The zero value runs the
// legacy synchronous-snapshot persistence (tests construct it directly);
// the flag defaults declared in newFlagSet select the WAL.
type options struct {
	addr                string
	thesaurusPath       string
	noThesaurus         bool
	oneToOne            bool
	minAccept           float64
	dataDir             string
	wal                 bool
	walSet              bool // -wal passed explicitly (run() records it)
	walGroupCommit      time.Duration
	walGroupCommitSet   bool // -wal-group-commit passed explicitly
	compactThreshold    int64
	compactThresholdSet bool // -compact-threshold passed explicitly
	snapshotInterval    time.Duration
	useIndex            bool
	exact               bool
}

// newFlagSet declares the flags; split out so the doc-conformance test can
// compare the declared set against docs/API.md.
func newFlagSet() (*flag.FlagSet, *options) {
	opt := &options{}
	fs := flag.NewFlagSet("cupidd", flag.ExitOnError)
	fs.StringVar(&opt.addr, "addr", ":8427", "listen address")
	fs.StringVar(&opt.thesaurusPath, "thesaurus", "", "thesaurus JSON file (default: built-in base thesaurus)")
	fs.BoolVar(&opt.noThesaurus, "no-thesaurus", false, "run with an empty thesaurus")
	fs.BoolVar(&opt.oneToOne, "one-to-one", false, "generate 1:1 mappings")
	fs.Float64Var(&opt.minAccept, "min", 0.5, "acceptance threshold thaccept")
	fs.StringVar(&opt.dataDir, "data", "", "persist the schema repository under this directory (default: in-memory only)")
	fs.BoolVar(&opt.wal, "wal", true, "journal mutations to a write-ahead log with group commit and background compaction; =false falls back to legacy full snapshots per mutation")
	fs.DurationVar(&opt.walGroupCommit, "wal-group-commit", 0, "linger this long after a write batch opens so more concurrent writers join the same fsync; 0 batches only what queued during the previous fsync")
	fs.Int64Var(&opt.compactThreshold, "compact-threshold", cupid.DefaultPersistOptions().CompactBytes, "fold the write-ahead journal into a new snapshot generation once it exceeds this many bytes")
	fs.DurationVar(&opt.snapshotInterval, "snapshot-interval", 0, "legacy snapshot batching (setting it implies -wal=false): snapshot at most once per interval; 0 snapshots synchronously on every mutation")
	fs.BoolVar(&opt.useIndex, "index", true, "serve /match/batch candidates from the sharded token inverted index; =false falls back to the linear signature-pruned scan")
	fs.BoolVar(&opt.exact, "exact", false, "exhaustive /match/batch scans: disable indexed retrieval and candidate pruning")
	return fs, opt
}

// persistOptions derives the durability mode from the flags.
// -snapshot-interval is the legacy alias: setting it selects the legacy
// snapshot path (as it always did) unless -wal was passed explicitly too,
// which is a contradiction worth refusing rather than guessing about.
func (opt *options) persistOptions() (cupid.PersistOptions, error) {
	if opt.snapshotInterval < 0 {
		return cupid.PersistOptions{}, fmt.Errorf("negative -snapshot-interval %v", opt.snapshotInterval)
	}
	if opt.walGroupCommit < 0 {
		return cupid.PersistOptions{}, fmt.Errorf("negative -wal-group-commit %v", opt.walGroupCommit)
	}
	if opt.compactThreshold < 0 {
		return cupid.PersistOptions{}, fmt.Errorf("negative -compact-threshold %d", opt.compactThreshold)
	}
	if opt.snapshotInterval > 0 || !opt.wal {
		if opt.snapshotInterval > 0 && opt.wal && opt.walSet {
			return cupid.PersistOptions{}, fmt.Errorf("-wal and -snapshot-interval are mutually exclusive (the journal makes every acknowledged mutation durable; there is nothing to batch into interval snapshots)")
		}
		// The WAL tuning flags have no effect on the legacy snapshot
		// path; passing them alongside it is a contradiction worth
		// refusing rather than silently ignoring. The explicit-set flags
		// catch even a value equal to the default; the value checks catch
		// programmatic construction.
		if opt.walGroupCommitSet || opt.walGroupCommit != 0 {
			return cupid.PersistOptions{}, fmt.Errorf("-wal-group-commit is only meaningful with -wal")
		}
		if opt.compactThresholdSet || (opt.compactThreshold != 0 && opt.compactThreshold != cupid.DefaultPersistOptions().CompactBytes) {
			return cupid.PersistOptions{}, fmt.Errorf("-compact-threshold is only meaningful with -wal")
		}
		return cupid.PersistOptions{SnapshotInterval: opt.snapshotInterval}, nil
	}
	popt := cupid.DefaultPersistOptions()
	popt.GroupCommitWindow = opt.walGroupCommit
	if opt.compactThreshold > 0 {
		popt.CompactBytes = opt.compactThreshold
	}
	return popt, nil
}

// newServerFromOptions assembles the configured server.
func newServerFromOptions(opt *options) (*server, error) {
	cfg := cupid.DefaultConfig()
	switch {
	case opt.noThesaurus:
		cfg.Thesaurus = cupid.NewThesaurus()
	case opt.thesaurusPath != "":
		f, err := os.Open(opt.thesaurusPath)
		if err != nil {
			return nil, err
		}
		th, err := cupid.ReadThesaurus(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading thesaurus: %w", err)
		}
		cfg.Thesaurus = th
	}
	if opt.oneToOne {
		cfg.Mapping.Cardinality = cupid.OneToOne
	}
	cfg.Mapping.ThAccept = opt.minAccept

	var s *server
	var err error
	if opt.dataDir != "" {
		popt, perr := opt.persistOptions()
		if perr != nil {
			return nil, perr
		}
		s, err = newPersistentServer(cfg, opt.dataDir, popt)
	} else {
		s, err = newServer(cfg)
	}
	if err != nil {
		return nil, err
	}
	s.exact = opt.exact
	s.useIndex = opt.useIndex
	return s, nil
}

func run(args []string) error {
	fs, opt := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "wal":
			opt.walSet = true
		case "wal-group-commit":
			opt.walGroupCommitSet = true
		case "compact-threshold":
			opt.compactThresholdSet = true
		}
	})
	s, err := newServerFromOptions(opt)
	if err != nil {
		return err
	}
	if s.persist != nil {
		mode := "write-ahead journal"
		if popt, _ := opt.persistOptions(); !popt.WAL {
			mode = "legacy snapshots"
		}
		log.Printf("cupidd: repository persisted under %s via %s (%d schemas restored)", opt.dataDir, mode, s.reg.Len())
	}
	srv := &http.Server{
		Addr:              opt.addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("cupidd: listening on %s", opt.addr)
		errCh <- srv.ListenAndServe()
	}()
	// closeLoud flushes the persistence layer on the error exits, where the
	// HTTP error takes precedence but a dropped snapshot must not vanish
	// silently.
	closeLoud := func() {
		if err := s.close(); err != nil {
			log.Printf("cupidd: flushing repository snapshot: %v", err)
		}
	}
	select {
	case err := <-errCh:
		closeLoud()
		return err
	case <-ctx.Done():
		stop()
		log.Print("cupidd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			closeLoud()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			closeLoud()
			return err
		}
		// Flush any pending snapshot only after in-flight requests drained.
		if err := s.close(); err != nil {
			return fmt.Errorf("flushing repository snapshot: %w", err)
		}
		return nil
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cupidd:", err)
		os.Exit(1)
	}
}
