// Command cupidd serves Cupid schema matching over HTTP/JSON: a
// prepared-schema repository that clients register schemas into once and
// then match against — the paper's framing of a matcher that a tool
// repeatedly applies against a repository of known schemas, run as a
// service. Registration pays the per-schema cost (validation, tree
// expansion, linguistic analysis) up front; every subsequent match reuses
// the prepared artifact, and batch matching fans one-vs-all out over the
// worker pool.
//
// With -data the repository is durable: every mutation's source document
// is journaled through an append-only write-ahead log (-wal, on by
// default) — each Register/Replace/Remove appends one checksummed record,
// a group-commit loop batches concurrent writers into a single fsync
// (linger tunable via -wal-group-commit), and a background compactor
// folds the journal into a fresh snapshot generation once it passes
// -compact-threshold bytes. An acknowledged mutation is on disk, and
// write cost is O(record) instead of O(corpus). A restart recovers the
// newest consistent snapshot plus the ordered journal tail (torn tails
// truncated) and serves bit-identical match rankings; docs/PERSISTENCE.md
// is the full durability contract. -wal=false falls back to the legacy
// snapshot-per-mutation path (batched with -snapshot-interval, which
// implies the legacy mode when set). The sharded token inverted index
// behind batch matching is never persisted; recovery rebuilds it
// deterministically while re-registering the recovered documents.
//
// Batch matching goes through a stats-driven retrieval planner by
// default (-retrieval=auto): per query, cheap statistics the index
// already maintains (corpus size, posting-list lengths, stop-token
// density) pick between exhaustive scanning, the linear signature-pruned
// scan, and inverted-index candidate generation — where only repository
// schemas sharing at least one normalized token with the source are
// touched, re-ranked by exact signature affinity, and just the top
// candidates pay the full tree match — and size the candidate budget to
// the query's actual posting pool. -retrieval=index|pruned|exact forces
// one path (the deprecated -index/-exact aliases still work; every
// response reports the "strategy" that ran).
//
// The server is overload-resilient (docs/ARCHITECTURE.md has the serving
// layer diagram). Match traffic and mutations are admitted through
// separate bounded pools (-concurrency, -write-concurrency, -queue-depth)
// so a batch-match storm cannot starve registrations; a request that
// would queue past -queue-wait is rejected immediately with 429 and a
// Retry-After hint instead of accumulating unbounded latency. Every match
// runs under -match-deadline, threaded as a context through the
// candidate-scoring loops, so an abandoned client stops consuming CPU
// mid-ranking. Repeated matches are served from a fingerprint-keyed LRU
// cache (-cache) with singleflight coalescing, invalidated on every
// register/replace/remove before the mutation is acknowledged. Under
// saturation the candidate budget is halved and the reply is flagged
// "degraded". Request bodies are capped at -max-body bytes (413 beyond).
// All errors — including 404 and 405 — are JSON {"error": ...} objects.
//
// Usage:
//
//	cupidd [flags]
//
// Flags:
//
//	-addr ADDR             listen address (default :8427)
//	-thesaurus FILE        load a thesaurus JSON file (default: built-in base)
//	-no-thesaurus          run with an empty thesaurus
//	-one-to-one            generate 1:1 mappings instead of the naive 1:n
//	-min FLOAT             acceptance threshold thaccept (default 0.5)
//	-data DIR              persist the repository under DIR (default: in-memory only)
//	-follow URL            replicate from the primary cupidd at URL: the
//	                       server becomes a read-only replica (writes are
//	                       refused with 403 naming the primary) that
//	                       replays the primary's /replicate stream into
//	                       its own journal and index, checkpoints its
//	                       position, and reconnects with backoff; requires
//	                       -data with the write-ahead journal
//	-wal                   journal mutations to a write-ahead log with group
//	                       commit and background compaction (default true;
//	                       =false falls back to legacy full snapshots)
//	-wal-group-commit DUR  linger after a write batch opens, letting more
//	                       concurrent writers join the same fsync (default 0:
//	                       batch only what queued during the previous fsync)
//	-compact-threshold N   fold the journal into a new snapshot generation
//	                       once it exceeds N bytes (default 1 MiB)
//	-snapshot-interval DUR legacy snapshot batching (implies -wal=false):
//	                       snapshot at most once per DUR; 0 = fsync a full
//	                       snapshot synchronously on every mutation
//	-retrieval MODE        /match/batch retrieval strategy: auto (default;
//	                       a stats-driven planner picks exact, pruned,
//	                       indexed or family retrieval plus a candidate
//	                       budget per query), index (force inverted-index
//	                       candidates), pruned (force the linear
//	                       signature-pruned scan), family (force
//	                       family-routed matching through the installed
//	                       corpus clustering) or exact (force exhaustive
//	                       scans)
//	-index                 deprecated alias: -index is -retrieval=index,
//	                       -index=false is -retrieval=pruned; contradicting
//	                       an explicit -retrieval is refused
//	-exact                 deprecated alias for -retrieval=exact;
//	                       contradicting -retrieval or -index is refused
//	-concurrency N         concurrent match requests admitted (default 0:
//	                       one per match worker)
//	-write-concurrency N   concurrent mutations admitted (default 2)
//	-queue-depth N         admission queue bound per pool (default 0:
//	                       8x the pool's concurrency)
//	-queue-wait DUR        queueing latency target: reject with 429 after
//	                       waiting this long for a slot (default 1s)
//	-match-deadline DUR    end-to-end deadline per match request
//	                       (default 30s; 0 = none)
//	-cache N               match cache capacity in entries (default 1024;
//	                       0 disables caching)
//	-max-body N            request body cap in bytes (default 4 MiB)
//
// Endpoints (request and response bodies are JSON; docs/API.md is the full
// reference, kept honest by a doc-conformance test):
//
//	POST   /schemas          register {name?, format, content, instances?};
//	                         format is sql, xsd, dtd, json, jsonschema or
//	                         avro; the optional instances payload ({"path":
//	                         [value, ...]} sampled leaf values) builds
//	                         per-leaf profiles for instance-aware matching
//	GET    /schemas          list registered schemas
//	GET    /schemas/{name}   fetch one schema's stored source document
//	                         (requires -data; the cluster router resolves
//	                         by-name match sources through it)
//	DELETE /schemas/{name}   remove one schema
//	POST   /match            match two schemas: {source, target}, each a
//	                         {"name": ...} reference to a registered schema
//	                         or an inline {"format", "content"} document
//	POST   /match/batch      rank the repository against one source schema:
//	                         {source, topK?}; returns top-K scored results
//	GET    /mappings/{a}/{c} derive a mapping between two registered
//	                         schemas: ?via=direct (one full match, the
//	                         default) or ?via=family (composed transitively
//	                         through the schemas' shared family medoid,
//	                         similarities multiplied along each chain)
//	POST   /corpus/cluster   start an asynchronous corpus-clustering job
//	                         (greedy-medoid schema families over
//	                         index-generated candidate pairs); returns 202
//	                         with a job id; optional body {neighbors,
//	                         min_affinity}
//	GET    /corpus/cluster/{id} poll a clustering job (running/done/failed)
//	GET    /corpus/families  the installed clustering's canonical JSON,
//	                         byte-identical across restarts and replicas
//	GET    /replicate        stream the write-ahead journal to a follower
//	                         (snapshot transfer, then commit-ordered tail;
//	                         ?base=&records= resumes a checkpointed
//	                         position; docs/REPLICATION.md is the wire
//	                         contract)
//	GET    /healthz          liveness probe
//	GET    /readyz           readiness probe: 503 while draining, while a
//	                         follower is catching up to its primary, or
//	                         while journal compaction is catching up
//
// The server shuts down gracefully on SIGINT/SIGTERM: new requests are
// rejected with 503 (Retry-After: 1) while in-flight ones drain, then the
// journal is flushed and closed cleanly before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	cupid "repro"
	"repro/internal/serve"
)

// server bundles the registry, the serving layer and the HTTP handlers.
type server struct {
	reg *cupid.SchemaRegistry
	// persist is the durable registry when -data is set; nil means the
	// repository is in-memory only. When non-nil, reg is persist's embedded
	// in-memory registry — reads go through reg, mutations through persist.
	persist *cupid.PersistentRegistry
	// front admits requests (separate read and write pools), caches match
	// results with singleflight coalescing, threads the match deadline and
	// degrades candidate budgets under saturation. Mutating handlers must
	// call front.Invalidate after committing, before acknowledging.
	front *serve.Frontend
	// maxBody caps request bodies (http.MaxBytesReader; 413 beyond).
	maxBody int64
	// retrieval is /match/batch's strategy: the zero value
	// (cupid.RetrievalAuto) plans per query, the others force one path
	// (-retrieval=index|pruned|exact and the deprecated aliases).
	retrieval cupid.RetrievalStrategy
	prune     cupid.PruneOptions
	// indexOpt sizes the indexed path's candidate budget (same Limit
	// policy as prune, tighter default fraction).
	indexOpt cupid.PruneOptions
	// dataDir is the persistence root (-data); empty when in-memory. The
	// follower checkpoint file lives here.
	dataDir string
	// primary is the URL this server replicates from (-follow); non-empty
	// makes the server a read-only replica: mutations are refused with
	// 403 naming the primary, and the repository converges by replaying
	// the primary's replication stream.
	primary string
	// replState tracks the follower's replication progress for /readyz
	// (non-nil exactly in follower mode).
	replState *cupid.ReplState
	// corpusJobs tracks asynchronous corpus-clustering runs
	// (POST /corpus/cluster; corpus.go).
	corpusJobs clusterJobs
}

func newServer(cfg cupid.Config) (*server, error) {
	reg, err := cupid.NewRegistry(cfg)
	if err != nil {
		return nil, err
	}
	s := &server{reg: reg, prune: cupid.DefaultPruneOptions(), indexOpt: cupid.DefaultIndexOptions()}
	_, opt := newFlagSet() // flag defaults double as the serving defaults
	s.initServing(opt)
	return s, nil
}

// newPersistentServer builds a server on a durable registry rooted at dir
// in the durability mode popt selects (WAL or legacy snapshots).
func newPersistentServer(cfg cupid.Config, dir string, popt cupid.PersistOptions) (*server, error) {
	m, err := cupid.NewMatcher(cfg)
	if err != nil {
		return nil, err
	}
	p, warns, err := cupid.OpenPersistentRegistryOptions(dir, m, popt)
	if err != nil {
		return nil, err
	}
	for _, w := range warns {
		log.Printf("cupidd: recovery: %s", w)
	}
	s := &server{reg: p.Registry, persist: p, prune: cupid.DefaultPruneOptions(), indexOpt: cupid.DefaultIndexOptions()}
	_, opt := newFlagSet()
	s.initServing(opt)
	return s, nil
}

// initServing (re)builds the serving layer from flag values; called with
// the defaults by the constructors and again by newServerFromOptions once
// the real flags are parsed. A zero maxBody (tests construct the zero
// options value directly) gets the flag's default cap.
func (s *server) initServing(opt *options) {
	s.front = serve.NewFrontend(s.reg, opt.serveOptions())
	s.maxBody = opt.maxBody
	if s.maxBody <= 0 {
		s.maxBody = 4 << 20
	}
}

// close flushes and detaches the persistence layer, if any.
func (s *server) close() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.Close()
}

// schemaRef names a schema for a match request: either a registered
// repository entry ({"name": "po"}) or an inline document
// ({"format": "sql", "content": "CREATE TABLE ..."}).
type schemaRef struct {
	Name    string `json:"name,omitempty"`
	Format  string `json:"format,omitempty"`
	Content string `json:"content,omitempty"`
}

// schemaInfo is the summary returned for registered schemas.
type schemaInfo struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Elements    int    `json:"elements"`
	Leaves      int    `json:"leaves"`
}

func infoOf(e *cupid.RegistryEntry) schemaInfo {
	return schemaInfo{
		Name:        e.Name,
		Fingerprint: e.Fingerprint,
		Elements:    e.Prepared.Schema().Len(),
		Leaves:      e.Prepared.Tree().NumLeaves(),
	}
}

// httpError carries a status code (and an optional Retry-After hint for
// overload rejections) out of a handler helper.
type httpError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func errf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// serveErr maps serving-layer admission and lifecycle errors onto the
// HTTP overload contract: 429 + Retry-After for shed load, 503 +
// Retry-After for draining and for a blown match deadline. Anything else
// passes through.
func (s *server) serveErr(err error) error {
	hint := s.front.ReadPool().MaxWait()
	if hint < time.Second {
		hint = time.Second
	}
	switch {
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrQueueWait):
		return &httpError{code: http.StatusTooManyRequests, msg: "server overloaded: " + err.Error(), retryAfter: hint}
	case errors.Is(err, serve.ErrDraining):
		return &httpError{code: http.StatusServiceUnavailable, msg: "server is shutting down", retryAfter: time.Second}
	case errors.Is(err, context.DeadlineExceeded):
		return &httpError{code: http.StatusServiceUnavailable, msg: "match deadline exceeded under load; retry", retryAfter: time.Second}
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is for the access log only.
		return errf(http.StatusServiceUnavailable, "request canceled by client")
	}
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("cupidd: writing response: %v", err)
	}
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
		if he.retryAfter > 0 {
			secs := int((he.retryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeBody decodes a JSON request body, rejecting unknown fields so
// client typos surface as errors instead of silent defaults, and capping
// the body at -max-body bytes (413, and the connection closed, beyond —
// http.MaxBytesReader stops a mis-sized upload from being read to the
// end just to be refused).
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes (-max-body)", mbe.Limit)
		}
		return errf(http.StatusBadRequest, "decoding request body: %v", err)
	}
	return nil
}

// resolve turns a schemaRef into a prepared schema (plus its repository
// name when registered).
func (s *server) resolve(ref schemaRef) (*cupid.Prepared, string, error) {
	switch {
	case ref.Name != "" && ref.Content == "":
		e, ok := s.reg.Get(ref.Name)
		if !ok {
			return nil, "", errf(http.StatusNotFound, "schema %q is not registered", ref.Name)
		}
		return e.Prepared, e.Name, nil
	case ref.Content != "":
		if ref.Format == "" {
			return nil, "", errf(http.StatusBadRequest, "inline schema needs a format (one of %s)", strings.Join(cupid.SchemaFormats(), ", "))
		}
		sch, err := cupid.ParseSchema(ref.Name, ref.Format, []byte(ref.Content))
		if err != nil {
			return nil, "", errf(http.StatusBadRequest, "parsing inline schema: %v", err)
		}
		p, err := s.reg.Matcher().Prepare(sch)
		if err != nil {
			return nil, "", errf(http.StatusBadRequest, "preparing inline schema: %v", err)
		}
		return p, "", nil
	default:
		return nil, "", errf(http.StatusBadRequest, `schema reference needs "name" or "format"+"content"`)
	}
}

func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if err := s.replicaWriteGuard(); err != nil {
		writeError(w, err)
		return
	}
	var req struct {
		Name    string `json:"name,omitempty"`
		Format  string `json:"format"`
		Content string `json:"content"`
		// Instances is the optional sampled-instances payload: an object
		// mapping leaf paths to arrays of sampled scalar values. When
		// present, the entry is registered with per-leaf value profiles
		// (instance-aware matching) and the payload is journaled with the
		// source document.
		Instances json.RawMessage `json:"instances,omitempty"`
	}
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	release, err := s.front.AcquireWrite(r.Context())
	if err != nil {
		writeError(w, s.serveErr(err))
		return
	}
	defer release()
	instances := []byte(req.Instances)
	if string(instances) == "null" { // explicit JSON null = no samples
		instances = nil
	}
	var (
		e       *cupid.RegistryEntry
		created bool
	)
	if s.persist != nil {
		// The durable path parses and persists the source document
		// verbatim, so a restart re-parses exactly what was registered. A
		// failed snapshot write (entry exists but err != nil) is a
		// server-side error: the mutation is in memory but its durability
		// could not be guaranteed.
		e, created, err = s.persist.RegisterSourceInstances(req.Name, req.Format, []byte(req.Content), instances)
		if err != nil && e != nil {
			// The mutation is in memory even though durability failed, so
			// cached rankings are stale either way.
			s.front.Invalidate()
			writeError(w, errf(http.StatusInternalServerError, "%v", err))
			return
		}
	} else {
		var sch *cupid.Schema
		sch, err = cupid.ParseSchema(req.Name, req.Format, []byte(req.Content))
		var samples cupid.InstanceSamples
		if err == nil && len(instances) > 0 {
			samples, err = cupid.ParseInstanceSamples(instances)
			if err != nil {
				err = fmt.Errorf("instances: %w", err)
			}
		}
		if err == nil {
			e, created, err = s.reg.RegisterInstances(req.Name, sch, samples)
		}
	}
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "%v", err))
		return
	}
	// Invalidate after the mutation committed, before acknowledging it:
	// once the client sees this response, no cached ranking can predate
	// the registration.
	s.front.Invalidate()
	code := http.StatusCreated
	if !created {
		code = http.StatusOK // idempotent re-registration
	}
	writeJSON(w, code, infoOf(e))
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.List()
	infos := make([]schemaInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, infoOf(e))
	}
	writeJSON(w, http.StatusOK, map[string]any{"schemas": infos})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.replicaWriteGuard(); err != nil {
		writeError(w, err)
		return
	}
	name := r.PathValue("name")
	release, err := s.front.AcquireWrite(r.Context())
	if err != nil {
		writeError(w, s.serveErr(err))
		return
	}
	defer release()
	var ok bool
	if s.persist != nil {
		ok, err = s.persist.Remove(name)
	} else {
		ok = s.reg.Remove(name)
	}
	if !ok {
		writeError(w, errf(http.StatusNotFound, "schema %q is not registered", name))
		return
	}
	s.front.Invalidate() // committed (even if journaling failed below): drop cached rankings
	if err != nil {
		writeError(w, errf(http.StatusInternalServerError, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

// replicaWriteGuard refuses mutations on a read-only replica, naming the
// primary so clients (and the cluster router) know where writes go.
func (s *server) replicaWriteGuard() error {
	if s.primary == "" {
		return nil
	}
	return errf(http.StatusForbidden, "read-only replica: writes go to the primary at %s", s.primary)
}

// handleGetSchema serves one registered schema's stored source document —
// the bytes it was parsed from, plus its identity. The cluster router
// uses it to resolve a by-name match source into a document it can
// scatter to every shard; it needs persistence because only the durable
// store keeps source documents (the in-memory registry keeps prepared
// artifacts only).
func (s *server) handleGetSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.persist == nil {
		writeError(w, errf(http.StatusNotImplemented, "schema source documents are only stored with -data"))
		return
	}
	doc, ok := s.persist.Doc(name)
	if !ok {
		writeError(w, errf(http.StatusNotFound, "schema %q is not registered", name))
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// replQuery encodes/decodes the follower's resume position in the
// /replicate query string.
func replQuery(pos cupid.ReplPos) string {
	return fmt.Sprintf("base=%d&records=%d", pos.Base, pos.Records)
}

// handleReplicate streams the write-ahead journal to a follower:
// preamble, a hello that either resumes the follower's position as a
// tail or opens with a full snapshot transfer, then record frames as
// mutations commit and heartbeat pings when idle, until the follower
// disconnects. The stream bypasses the admission pools — it is one
// long-lived response serving commit-ordered bytes, not match work — and
// docs/REPLICATION.md specifies the wire format.
func (s *server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.persist == nil {
		writeError(w, errf(http.StatusNotImplemented, "replication requires -data with the write-ahead journal"))
		return
	}
	if _, err := s.persist.ReplicationPos(); err != nil {
		writeError(w, errf(http.StatusNotImplemented, "%v", err))
		return
	}
	var from cupid.ReplPos
	q := r.URL.Query()
	if v := q.Get("base"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, errf(http.StatusBadRequest, "query parameter base: %v", err))
			return
		}
		from.Base = n
	}
	if v := q.Get("records"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, errf(http.StatusBadRequest, "query parameter records must be a non-negative integer"))
			return
		}
		from.Records = n
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if err := s.persist.StreamReplication(r.Context(), httpFlusher{w}, from, replHeartbeat); err != nil {
		// The response is already streaming; all that is left is the log.
		log.Printf("cupidd: replication stream from %s: %v", replQuery(from), err)
	}
}

// replHeartbeat is the idle-stream ping interval: frequent enough that a
// follower (or an intervening proxy) can tell a quiet primary from a
// dead one within seconds.
const replHeartbeat = 3 * time.Second

// httpFlusher adapts a ResponseWriter so StreamReplication's per-burst
// flush reaches the client at commit latency instead of buffer latency.
type httpFlusher struct{ http.ResponseWriter }

func (f httpFlusher) Flush() {
	if fl, ok := f.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// replCheckpointFile is where a follower records the last primary
// position it durably applied (under -data). It is an optimization, not
// a durability anchor: a stale or missing checkpoint only means the next
// connection resumes earlier (idempotent re-apply) or resyncs.
const replCheckpointFile = "replpos.json"

func (s *server) loadReplCheckpoint() cupid.ReplPos {
	var pos cupid.ReplPos
	b, err := os.ReadFile(filepath.Join(s.dataDir, replCheckpointFile))
	if err != nil || json.Unmarshal(b, &pos) != nil {
		return cupid.ReplPos{}
	}
	return pos
}

func (s *server) saveReplCheckpoint(pos cupid.ReplPos) {
	b, err := json.Marshal(pos)
	if err != nil {
		return
	}
	path := filepath.Join(s.dataDir, replCheckpointFile)
	tmp := path + ".tmp"
	// No fsync: losing the checkpoint costs a resync, never correctness.
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		log.Printf("cupidd: writing replication checkpoint: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Printf("cupidd: writing replication checkpoint: %v", err)
	}
}

// followOnce runs one replication session against the primary: connect
// at the checkpointed position, then apply frames until the stream ends.
// Every applied (locally durable) position advances the checkpoint and
// drops cached rankings, so reads on the replica see replicated
// mutations exactly as they would see local ones.
func (s *server) followOnce(ctx context.Context) error {
	from := s.loadReplCheckpoint()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.primary+"/replicate?"+replQuery(from), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("primary returned status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return s.persist.ApplyReplication(ctx, resp.Body, s.replState, func(pos cupid.ReplPos) {
		s.front.Invalidate()
		s.saveReplCheckpoint(pos)
	})
}

// followLoop keeps a replica converging: run a session, reconnect with
// backoff when it ends (primary restart, network cut), forever until ctx
// is canceled. The returned channel closes when the loop has fully
// stopped, so shutdown can wait for the apply path to quiesce before
// closing the journal.
func (s *server) followLoop(ctx context.Context) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		backoff := 100 * time.Millisecond
		for ctx.Err() == nil {
			err := s.followOnce(ctx)
			if ctx.Err() != nil {
				return
			}
			if err != nil {
				log.Printf("cupidd: replication from %s: %v (reconnecting in %v)", s.primary, err, backoff)
			} else {
				// Clean EOF: the primary closed (restart, drain). Reconnect
				// quickly — the tail resume makes this cheap.
				backoff = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 3*time.Second {
				backoff = 3 * time.Second
			}
		}
	}()
	return done
}

// jsonPair is one mapping element in a match response.
type jsonPair struct {
	Source string  `json:"source"`
	Target string  `json:"target"`
	WSim   float64 `json:"wsim"`
	SSim   float64 `json:"ssim"`
	LSim   float64 `json:"lsim"`
}

func pairsOf(es []cupid.MappingElement) []jsonPair {
	out := make([]jsonPair, 0, len(es))
	for _, e := range es {
		out = append(out, jsonPair{
			Source: e.Source.Path(),
			Target: e.Target.Path(),
			WSim:   e.WSim,
			SSim:   e.SSim,
			LSim:   e.LSim,
		})
	}
	return out
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Source schemaRef `json:"source"`
		Target schemaRef `json:"target"`
	}
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	src, _, err := s.resolve(req.Source)
	if err != nil {
		writeError(w, err)
		return
	}
	dst, _, err := s.resolve(req.Target)
	if err != nil {
		writeError(w, err)
		return
	}
	res, cached, err := s.front.MatchPair(r.Context(), src, dst)
	if err != nil {
		writeError(w, s.serveErr(err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sourceSchema": res.SourceTree.Schema.Name,
		"targetSchema": res.TargetTree.Schema.Name,
		"cached":       cached,
		"leaves":       pairsOf(res.Mapping.Leaves),
		"nonLeaves":    pairsOf(res.Mapping.NonLeaves),
	})
}

// batchResult is one ranked repository schema in a batch response.
type batchResult struct {
	Name        string     `json:"name"`
	Fingerprint string     `json:"fingerprint"`
	Score       float64    `json:"score"`
	Leaves      []jsonPair `json:"leaves"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Source schemaRef `json:"source"`
		TopK   int       `json:"topK,omitempty"`
	}
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	src, srcName, err := s.resolve(req.Source)
	if err != nil {
		writeError(w, err)
		return
	}
	// Rank the repository, drop the source's trivial self-match, and only
	// then truncate — otherwise a registered source would eat one of the
	// caller's topK slots with itself (one extra slot absorbs it). The
	// default -retrieval=auto lets the registry's planner pick exhaustive,
	// pruned or indexed retrieval plus a candidate budget per query;
	// -retrieval=index|pruned|exact forces one path. With topK <= 0 the
	// exact scan ranks the whole repository, the other paths their
	// candidate set; "strategy" in the reply names what actually ran.
	//
	// The call goes through the serving frontend: admission (429/503 when
	// shed), the match deadline, the singleflight cache ("cached" in the
	// reply), and saturation-driven budget shrinking ("degraded", with
	// "candidate_budget" reporting the budget that actually produced the
	// ranking). candidates_scored keeps its meaning: signatures scored
	// during candidate generation — the index's accumulator survivors on
	// the indexed path, the repository size on the scans.
	want := req.TopK
	if want > 0 && srcName != "" {
		want++
	}
	spec := serve.MatchSpec{
		Retrieval: s.retrieval,
		TopK:      want,
		Prune:     s.prune,
		Index:     s.indexOpt,
	}
	if s.retrieval == cupid.RetrievalExact {
		spec.TopK = 0 // exhaustive mode ranks the whole repository
	}
	res, err := s.front.MatchBatch(r.Context(), src, spec)
	if err != nil {
		writeError(w, s.serveErr(err))
		return
	}
	results := make([]batchResult, 0, len(res.Ranked))
	for _, rk := range res.Ranked {
		// A registered source trivially matches itself; skip that entry.
		// The fingerprint check keeps the entry in the ranking if a
		// concurrent re-registration replaced the name with different
		// content between resolve and the MatchAll snapshot.
		if srcName != "" && rk.Entry.Name == srcName && rk.Entry.Fingerprint == src.Fingerprint() {
			continue
		}
		if req.TopK > 0 && len(results) == req.TopK {
			break
		}
		results = append(results, batchResult{
			Name:        rk.Entry.Name,
			Fingerprint: rk.Entry.Fingerprint,
			Score:       rk.Score,
			Leaves:      pairsOf(rk.Result.Mapping.Leaves),
		})
	}
	reply := map[string]any{
		"source":            sourceName(src, srcName),
		"strategy":          res.Stats.Strategy.String(),
		"planned":           res.Stats.Planned,
		"candidates_scored": res.Stats.CandidatesScored,
		"candidate_budget":  res.Stats.CandidateBudget,
		"cached":            res.Cached,
		"degraded":          res.Stats.Degraded,
		"results":           results,
	}
	// Family-route provenance, reported only when the family strategy was
	// in play: the winning medoid, or the fact that the route fell back.
	if res.Stats.Family != "" {
		reply["family"] = res.Stats.Family
	}
	if res.Stats.FamilyFallback {
		reply["family_fallback"] = true
	}
	writeJSON(w, http.StatusOK, reply)
}

// sourceName labels the batch source: its repository name when registered,
// otherwise the inline schema's own name.
func sourceName(p *cupid.Prepared, registered string) string {
	if registered != "" {
		return registered
	}
	return p.Schema().Name
}

// route is one HTTP endpoint; the table form keeps the mux, the command
// doc and docs/API.md mechanically comparable (the doc-conformance test
// walks it).
type route struct {
	method, pattern string
	handler         http.HandlerFunc
}

// routeTable lists every endpoint the server exposes.
func (s *server) routeTable() []route {
	return []route{
		{http.MethodPost, "/schemas", s.handleRegister},
		{http.MethodGet, "/schemas", s.handleList},
		{http.MethodGet, "/schemas/{name}", s.handleGetSchema},
		{http.MethodDelete, "/schemas/{name}", s.handleDelete},
		{http.MethodPost, "/match", s.handleMatch},
		{http.MethodPost, "/match/batch", s.handleBatch},
		{http.MethodGet, "/mappings/{a}/{c}", s.handleMapping},
		{http.MethodPost, "/corpus/cluster", s.handleClusterStart},
		{http.MethodGet, "/corpus/cluster/{id}", s.handleClusterStatus},
		{http.MethodGet, "/corpus/families", s.handleFamilies},
		{http.MethodGet, "/replicate", s.handleReplicate},
		{http.MethodGet, "/healthz", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}},
		{http.MethodGet, "/readyz", s.handleReady},
	}
}

// handleReady is the readiness probe, distinct from /healthz liveness:
// 503 while draining for shutdown, while a follower is still catching up
// to its primary (a replica that has never reached the primary's horizon
// would serve arbitrarily stale rankings), and while journal compaction
// is rewriting snapshot generations (a crash mid-compaction recovers, but
// routing fresh traffic at a node paying compaction I/O is the thing
// readiness gates exist to avoid). Each reason is reported distinctly —
// "draining", "catching_up" (with the applied position and horizon), or
// "compacting" — so orchestrators can tell shutdown from replication lag.
// A follower that caught up once stays ready across a primary outage: it
// serves the last converged state rather than flapping. WAL recovery
// itself happens before the listener opens, so "connection refused"
// covers the recovering state.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.front.Draining():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
	case s.replState != nil && !s.replState.Status().CaughtUp:
		st := s.replState.Status()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "reason": "catching_up",
			"applied": st.Pos.String(), "horizon": st.Horizon.String(),
		})
	case s.persist != nil && s.persist.Compacting():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "compacting"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	}
}

// routes builds the HTTP handler; split out so tests can drive the server
// through httptest without binding a socket. Dispatch is per-pattern with
// an explicit method map so that 405 (with an Allow header) and 404 keep
// the JSON error contract instead of net/http's plain-text defaults, and
// the whole tree sits behind the drain guard.
func (s *server) routes() http.Handler {
	byPattern := map[string]map[string]http.HandlerFunc{}
	var patterns []string
	for _, rt := range s.routeTable() {
		if byPattern[rt.pattern] == nil {
			byPattern[rt.pattern] = map[string]http.HandlerFunc{}
			patterns = append(patterns, rt.pattern)
		}
		byPattern[rt.pattern][rt.method] = rt.handler
	}
	mux := http.NewServeMux()
	for _, pattern := range patterns {
		methods := byPattern[pattern]
		allowed := make([]string, 0, len(methods))
		for m := range methods {
			allowed = append(allowed, m)
		}
		sort.Strings(allowed)
		allow := strings.Join(allowed, ", ")
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if h, ok := methods[r.Method]; ok {
				h(w, r)
				return
			}
			w.Header().Set("Allow", allow)
			writeError(w, errf(http.StatusMethodNotAllowed, "method %s is not allowed for %s (allowed: %s)", r.Method, r.URL.Path, allow))
		})
	}
	// Everything not matched above: JSON 404 instead of the mux default.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, errf(http.StatusNotFound, "no such endpoint: %s", r.URL.Path))
	})
	return s.drainGuard(mux)
}

// drainGuard rejects new requests with 503 + Retry-After once shutdown
// has begun, while in-flight requests drain. The probes stay reachable:
// /healthz keeps reporting live, /readyz reports the not-ready reason.
func (s *server) drainGuard(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.front.Draining() && r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
			writeError(w, &httpError{code: http.StatusServiceUnavailable, msg: "server is shutting down", retryAfter: time.Second})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// options holds every command-line flag value. The zero value runs the
// legacy synchronous-snapshot persistence (tests construct it directly);
// the flag defaults declared in newFlagSet select the WAL.
type options struct {
	addr                string
	thesaurusPath       string
	noThesaurus         bool
	oneToOne            bool
	minAccept           float64
	dataDir             string
	follow              string
	wal                 bool
	walSet              bool // -wal passed explicitly (run() records it)
	walGroupCommit      time.Duration
	walGroupCommitSet   bool // -wal-group-commit passed explicitly
	compactThreshold    int64
	compactThresholdSet bool // -compact-threshold passed explicitly
	snapshotInterval    time.Duration
	retrieval           string
	retrievalSet        bool // -retrieval passed explicitly
	useIndex            bool
	indexSet            bool // -index passed explicitly (deprecated alias)
	exact               bool
	exactSet            bool // -exact passed explicitly (deprecated alias)
	concurrency         int
	writeConcurrency    int
	queueDepth          int
	queueWait           time.Duration
	matchDeadline       time.Duration
	cacheCap            int
	maxBody             int64
}

// serveOptions derives the serving-layer configuration from the flags.
func (opt *options) serveOptions() serve.Options {
	return serve.Options{
		Read:          serve.PoolOptions{Slots: opt.concurrency, Queue: opt.queueDepth, MaxWait: opt.queueWait},
		Write:         serve.PoolOptions{Slots: opt.writeConcurrency, Queue: opt.queueDepth, MaxWait: opt.queueWait},
		CacheCapacity: opt.cacheCap,
		MatchDeadline: opt.matchDeadline,
	}
}

// newFlagSet declares the flags; split out so the doc-conformance test can
// compare the declared set against docs/API.md.
func newFlagSet() (*flag.FlagSet, *options) {
	opt := &options{}
	fs := flag.NewFlagSet("cupidd", flag.ExitOnError)
	fs.StringVar(&opt.addr, "addr", ":8427", "listen address")
	fs.StringVar(&opt.thesaurusPath, "thesaurus", "", "thesaurus JSON file (default: built-in base thesaurus)")
	fs.BoolVar(&opt.noThesaurus, "no-thesaurus", false, "run with an empty thesaurus")
	fs.BoolVar(&opt.oneToOne, "one-to-one", false, "generate 1:1 mappings")
	fs.Float64Var(&opt.minAccept, "min", 0.5, "acceptance threshold thaccept")
	fs.StringVar(&opt.dataDir, "data", "", "persist the schema repository under this directory (default: in-memory only)")
	fs.StringVar(&opt.follow, "follow", "", "replicate from the primary cupidd at this URL (read-only replica; requires -data with the write-ahead journal)")
	fs.BoolVar(&opt.wal, "wal", true, "journal mutations to a write-ahead log with group commit and background compaction; =false falls back to legacy full snapshots per mutation")
	fs.DurationVar(&opt.walGroupCommit, "wal-group-commit", 0, "linger this long after a write batch opens so more concurrent writers join the same fsync; 0 batches only what queued during the previous fsync")
	fs.Int64Var(&opt.compactThreshold, "compact-threshold", cupid.DefaultPersistOptions().CompactBytes, "fold the write-ahead journal into a new snapshot generation once it exceeds this many bytes")
	fs.DurationVar(&opt.snapshotInterval, "snapshot-interval", 0, "legacy snapshot batching (setting it implies -wal=false): snapshot at most once per interval; 0 snapshots synchronously on every mutation")
	fs.StringVar(&opt.retrieval, "retrieval", "auto", "/match/batch retrieval strategy: auto (stats-driven planner picks a strategy and candidate budget per query), index, pruned or exact")
	fs.BoolVar(&opt.useIndex, "index", true, "deprecated alias: -index is -retrieval=index, -index=false is -retrieval=pruned")
	fs.BoolVar(&opt.exact, "exact", false, "deprecated alias for -retrieval=exact")
	fs.IntVar(&opt.concurrency, "concurrency", 0, "concurrent match requests admitted; 0 sizes the pool to the match worker count")
	fs.IntVar(&opt.writeConcurrency, "write-concurrency", 2, "concurrent register/delete mutations admitted (a separate pool, so match storms cannot starve registrations)")
	fs.IntVar(&opt.queueDepth, "queue-depth", 0, "bounded admission queue per pool; arrivals beyond it are rejected with 429 immediately; 0 means 8x the pool's concurrency")
	fs.DurationVar(&opt.queueWait, "queue-wait", time.Second, "queueing latency target: a request that waits longer for a slot is rejected with 429 and a Retry-After hint")
	fs.DurationVar(&opt.matchDeadline, "match-deadline", 30*time.Second, "end-to-end deadline per match request, threaded through the candidate-scoring loops; 0 disables")
	fs.IntVar(&opt.cacheCap, "cache", 1024, "match cache capacity in entries (fingerprint-keyed LRU with singleflight coalescing, invalidated on every mutation); 0 disables")
	fs.Int64Var(&opt.maxBody, "max-body", 4<<20, "request body cap in bytes; larger bodies are rejected with 413")
	return fs, opt
}

// persistOptions derives the durability mode from the flags.
// -snapshot-interval is the legacy alias: setting it selects the legacy
// snapshot path (as it always did) unless -wal was passed explicitly too,
// which is a contradiction worth refusing rather than guessing about.
func (opt *options) persistOptions() (cupid.PersistOptions, error) {
	if opt.snapshotInterval < 0 {
		return cupid.PersistOptions{}, fmt.Errorf("negative -snapshot-interval %v", opt.snapshotInterval)
	}
	if opt.walGroupCommit < 0 {
		return cupid.PersistOptions{}, fmt.Errorf("negative -wal-group-commit %v", opt.walGroupCommit)
	}
	if opt.compactThreshold < 0 {
		return cupid.PersistOptions{}, fmt.Errorf("negative -compact-threshold %d", opt.compactThreshold)
	}
	if opt.snapshotInterval > 0 || !opt.wal {
		if opt.snapshotInterval > 0 && opt.wal && opt.walSet {
			return cupid.PersistOptions{}, fmt.Errorf("-wal and -snapshot-interval are mutually exclusive (the journal makes every acknowledged mutation durable; there is nothing to batch into interval snapshots)")
		}
		// The WAL tuning flags have no effect on the legacy snapshot
		// path; passing them alongside it is a contradiction worth
		// refusing rather than silently ignoring. The explicit-set flags
		// catch even a value equal to the default; the value checks catch
		// programmatic construction.
		if opt.walGroupCommitSet || opt.walGroupCommit != 0 {
			return cupid.PersistOptions{}, fmt.Errorf("-wal-group-commit is only meaningful with -wal")
		}
		if opt.compactThresholdSet || (opt.compactThreshold != 0 && opt.compactThreshold != cupid.DefaultPersistOptions().CompactBytes) {
			return cupid.PersistOptions{}, fmt.Errorf("-compact-threshold is only meaningful with -wal")
		}
		return cupid.PersistOptions{SnapshotInterval: opt.snapshotInterval}, nil
	}
	popt := cupid.DefaultPersistOptions()
	popt.GroupCommitWindow = opt.walGroupCommit
	if opt.compactThreshold > 0 {
		popt.CompactBytes = opt.compactThreshold
	}
	return popt, nil
}

// recordExplicitFlags notes which flags were passed explicitly (call
// after fs.Parse); the contradiction refusals in persistOptions and
// retrievalStrategy distinguish an explicit value from a default.
func (opt *options) recordExplicitFlags(fs *flag.FlagSet) {
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "wal":
			opt.walSet = true
		case "wal-group-commit":
			opt.walGroupCommitSet = true
		case "compact-threshold":
			opt.compactThresholdSet = true
		case "retrieval":
			opt.retrievalSet = true
		case "index":
			opt.indexSet = true
		case "exact":
			opt.exactSet = true
		}
	})
}

// retrievalStrategy derives the /match/batch strategy from the flags.
// -retrieval is the single knob; -index and -exact are the deprecated
// aliases it replaced, mapped onto forced strategies exactly as they used
// to behave (-exact wins over -index's default-true value, as it always
// did). An alias that contradicts an explicit -retrieval — or -exact
// alongside an explicit -index=true — is refused rather than guessed
// about, mirroring the -wal/-snapshot-interval precedent. The
// explicit-set flags catch even a value equal to the default; the value
// checks catch programmatic construction (a zero options value keeps its
// legacy meaning: the pruned scan).
func (opt *options) retrievalStrategy() (cupid.RetrievalStrategy, error) {
	alias, aliasFlag := cupid.RetrievalAuto, ""
	switch {
	case opt.exactSet || opt.exact:
		if opt.indexSet && opt.useIndex {
			return 0, fmt.Errorf("-exact and -index are contradictory (use -retrieval=exact or -retrieval=index)")
		}
		alias, aliasFlag = cupid.RetrievalExact, "-exact"
	case opt.indexSet && opt.useIndex:
		alias, aliasFlag = cupid.RetrievalIndexed, "-index"
	case (opt.indexSet || opt.retrieval == "") && !opt.useIndex:
		alias, aliasFlag = cupid.RetrievalPruned, "-index=false"
	}
	if opt.retrieval == "" {
		// Programmatic construction predating -retrieval: the legacy bools
		// decide, with the old default (indexed) when nothing forces a path.
		if aliasFlag == "" {
			return cupid.RetrievalIndexed, nil
		}
		return alias, nil
	}
	strat, err := cupid.ParseRetrievalStrategy(opt.retrieval)
	if err != nil {
		return 0, err
	}
	if aliasFlag != "" {
		if opt.retrievalSet && strat != alias {
			return 0, fmt.Errorf("%s contradicts -retrieval=%s (drop the deprecated alias)", aliasFlag, opt.retrieval)
		}
		return alias, nil
	}
	return strat, nil
}

// newServerFromOptions assembles the configured server.
func newServerFromOptions(opt *options) (*server, error) {
	cfg := cupid.DefaultConfig()
	switch {
	case opt.noThesaurus:
		cfg.Thesaurus = cupid.NewThesaurus()
	case opt.thesaurusPath != "":
		f, err := os.Open(opt.thesaurusPath)
		if err != nil {
			return nil, err
		}
		th, err := cupid.ReadThesaurus(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading thesaurus: %w", err)
		}
		cfg.Thesaurus = th
	}
	if opt.oneToOne {
		cfg.Mapping.Cardinality = cupid.OneToOne
	}
	cfg.Mapping.ThAccept = opt.minAccept
	if opt.concurrency < 0 || opt.writeConcurrency < 0 || opt.queueDepth < 0 {
		return nil, fmt.Errorf("-concurrency, -write-concurrency and -queue-depth must be >= 0")
	}
	if opt.queueWait < 0 || opt.matchDeadline < 0 || opt.maxBody < 0 {
		return nil, fmt.Errorf("-queue-wait, -match-deadline and -max-body must be >= 0")
	}
	if opt.cacheCap < 0 {
		return nil, fmt.Errorf("-cache must be >= 0 (0 disables caching)")
	}
	strat, err := opt.retrievalStrategy()
	if err != nil {
		return nil, err
	}

	if opt.follow != "" {
		if opt.dataDir == "" {
			return nil, fmt.Errorf("-follow requires -data (the replica replays the primary's journal into its own)")
		}
		u, uerr := url.Parse(opt.follow)
		if uerr != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("-follow needs an absolute primary URL, got %q", opt.follow)
		}
	}

	var s *server
	if opt.dataDir != "" {
		popt, perr := opt.persistOptions()
		if perr != nil {
			return nil, perr
		}
		if opt.follow != "" && !popt.WAL {
			return nil, fmt.Errorf("-follow requires the write-ahead journal (drop -wal=false / -snapshot-interval)")
		}
		s, err = newPersistentServer(cfg, opt.dataDir, popt)
	} else {
		s, err = newServer(cfg)
	}
	if err != nil {
		return nil, err
	}
	s.dataDir = opt.dataDir
	if opt.follow != "" {
		s.primary = strings.TrimRight(opt.follow, "/")
		s.replState = &cupid.ReplState{}
	}
	s.retrieval = strat
	s.initServing(opt)
	return s, nil
}

func run(args []string) error {
	fs, opt := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt.recordExplicitFlags(fs)
	s, err := newServerFromOptions(opt)
	if err != nil {
		return err
	}
	if s.persist != nil {
		mode := "write-ahead journal"
		if popt, _ := opt.persistOptions(); !popt.WAL {
			mode = "legacy snapshots"
		}
		log.Printf("cupidd: repository persisted under %s via %s (%d schemas restored)", opt.dataDir, mode, s.reg.Len())
	}
	srv := &http.Server{
		Addr:              opt.addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var followDone <-chan struct{}
	if s.primary != "" {
		log.Printf("cupidd: read-only replica following %s", s.primary)
		followDone = s.followLoop(ctx)
	}
	// waitFollow stops the follower loop and waits for its apply path to
	// quiesce, so the journal is closed only after the last replicated
	// record committed.
	waitFollow := func() {
		if followDone == nil {
			return
		}
		stop()
		select {
		case <-followDone:
		case <-time.After(5 * time.Second):
			log.Print("cupidd: replication loop did not stop in time")
		}
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("cupidd: listening on %s", opt.addr)
		errCh <- srv.ListenAndServe()
	}()
	// closeLoud flushes the persistence layer on the error exits, where the
	// HTTP error takes precedence but a dropped snapshot must not vanish
	// silently.
	closeLoud := func() {
		waitFollow()
		if err := s.close(); err != nil {
			log.Printf("cupidd: flushing repository snapshot: %v", err)
		}
	}
	select {
	case err := <-errCh:
		closeLoud()
		return err
	case <-ctx.Done():
		stop()
		log.Print("cupidd: shutting down: draining in-flight requests, rejecting new ones with 503")
		// New requests (including queued admissions) are refused from here
		// on; Shutdown then waits for the in-flight ones.
		s.front.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			closeLoud()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			closeLoud()
			return err
		}
		// Flush any pending snapshot only after in-flight requests (and the
		// replication apply loop, on a follower) drained.
		waitFollow()
		if err := s.close(); err != nil {
			return fmt.Errorf("flushing repository snapshot: %w", err)
		}
		return nil
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cupidd:", err)
		os.Exit(1)
	}
}
