package main

// End-to-end cluster coverage: three WAL-backed cupidd shards behind the
// scatter-gather router (internal/cluster), driven with mixed
// register/match traffic over httptest. The test asserts the sharded
// rankings are element-for-element the single-node rankings, that a
// late-started follower's replication lag drains (readyz false until
// caught up), and that draining every shard leaves each journal clean —
// a reopen recovers every schema with zero warnings.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	cupid "repro"
	"repro/internal/cluster"
)

// clusterSchema is one unit of test traffic: a registerable document.
type clusterSchema struct {
	name, format, content string
}

// clusterCorpus derives twelve schemas from the three fixture documents:
// four variants per family, each with a renamed column, so every probe
// has same-family near-matches and cross-family noise.
func clusterCorpus() []clusterSchema {
	var out []clusterSchema
	families := []struct {
		base, format, content, col string
	}{
		{"orders", "sql", ordersDDL, "Amount"},
		{"purchases", "sql", purchasesDDL, "Qty"},
		{"inventory", "json", inventoryJSON, "warehouse"},
	}
	for _, f := range families {
		for v := 0; v < 4; v++ {
			content := f.content
			if v > 0 {
				content = strings.Replace(content, f.col, fmt.Sprintf("%sV%d", f.col, v), 1)
			}
			out = append(out, clusterSchema{
				name:    fmt.Sprintf("%s-%d", f.base, v),
				format:  f.format,
				content: content,
			})
		}
	}
	return out
}

func TestClusterEndToEnd(t *testing.T) {
	// Three WAL shards and the router in front of them.
	var shards []*replTestServer
	var urls []string
	var dirs []string
	for i := 0; i < 3; i++ {
		dir := t.TempDir()
		sh := newReplServer(t, dir, "")
		shards = append(shards, sh)
		urls = append(urls, sh.ts.URL)
		dirs = append(dirs, dir)
	}
	rt, err := cluster.NewRouter(cluster.Options{Shards: urls, MatchDeadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	// A single-node oracle holding the identical corpus: the router's
	// merged rankings must be element-for-element the oracle's.
	oracle := newReplServer(t, t.TempDir(), "")

	// Mixed traffic: register through the router, and between
	// registrations keep matching through the router — the cluster serves
	// reads while the corpus is still growing.
	corpus := clusterCorpus()
	for i, cs := range corpus {
		var got schemaInfo
		code := call(t, rts, http.MethodPost, "/schemas",
			map[string]string{"name": cs.name, "format": cs.format, "content": cs.content}, &got)
		if code != http.StatusCreated {
			t.Fatalf("register %s via router: status %d", cs.name, code)
		}
		register(t, oracle.ts, cs.name, cs.format, cs.content)
		if i%4 == 3 {
			mid := batchOf(t, rts, map[string]any{
				"source": map[string]string{"name": cs.name}, "topK": 3,
			})
			if mid.Source != cs.name {
				t.Errorf("mid-traffic batch source %q, want %q", mid.Source, cs.name)
			}
		}
	}

	// The corpus is partitioned: the router lists all twelve, the shard
	// totals add up to twelve with no overlap, and placement followed the
	// ring.
	var routerList struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	call(t, rts, http.MethodGet, "/schemas", nil, &routerList)
	if len(routerList.Schemas) != len(corpus) {
		t.Fatalf("router lists %d schemas, want %d", len(routerList.Schemas), len(corpus))
	}
	perShard := make([]int, len(shards))
	total := 0
	for i, sh := range shards {
		perShard[i] = sh.s.reg.Len()
		total += perShard[i]
	}
	if total != len(corpus) {
		t.Errorf("shard partition sums to %d, want %d (per shard: %v)", total, len(corpus), perShard)
	}
	for _, cs := range corpus {
		owner := rt.Ring().Owner(cs.name)
		if _, ok := shards[owner].s.persist.Doc(cs.name); !ok {
			t.Errorf("%s is not on its ring owner (shard %d)", cs.name, owner)
		}
	}

	// Merged rankings equal the oracle's, by-name and inline, across
	// top-K values.
	for _, probe := range []map[string]any{
		{"source": map[string]string{"name": "orders-0"}, "topK": 5},
		{"source": map[string]string{"name": "inventory-3"}, "topK": 10},
		{"source": map[string]string{"format": "sql", "content": purchasesDDL}, "topK": 4},
	} {
		merged := batchOf(t, rts, probe)
		want := batchOf(t, oracle.ts, probe)
		if !reflect.DeepEqual(merged.Results, want.Results) {
			t.Errorf("probe %v: merged ranking diverged from single node:\nrouter: %+v\noracle: %+v",
				probe, merged.Results, want.Results)
		}
	}

	// Replication lag drains: a follower of shard 0 started only now —
	// after all traffic — reports catching_up (readyz false) until the
	// backlog is applied, then turns ready and holds shard 0's exact
	// schema set.
	fdir := t.TempDir()
	fs, err := newServerFromOptions(&options{dataDir: fdir, wal: true, follow: urls[0], minAccept: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fs.routes())
	defer fts.Close()
	defer fs.close()
	var ready struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if code := call(t, fts, http.MethodGet, "/readyz", nil, &ready); code != http.StatusServiceUnavailable || ready.Reason != "catching_up" {
		t.Fatalf("follower with unapplied backlog: readyz %d reason %q, want 503 catching_up", code, ready.Reason)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := fs.followLoop(ctx)
	stopFollow := func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("follow loop did not stop")
		}
	}
	defer stopFollow()
	follower := &replTestServer{s: fs, ts: fts, stop: func() {}}
	waitCaughtUp(t, follower, perShard[0])
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := call(t, fts, http.MethodGet, "/readyz", nil, &ready); code == http.StatusOK && ready.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("caught-up follower never turned ready: %+v", ready)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var fl, sl struct {
		Schemas []schemaInfo `json:"schemas"`
	}
	call(t, fts, http.MethodGet, "/schemas", nil, &fl)
	call(t, shards[0].ts, http.MethodGet, "/schemas", nil, &sl)
	if !reflect.DeepEqual(fl, sl) {
		t.Errorf("follower schema set diverged from shard 0:\nfollower: %v\nshard:    %v", fl, sl)
	}
	stopFollow()

	// Router drain: new work is refused, probes keep answering.
	rt.BeginDrain()
	var errResp struct {
		Error string `json:"error"`
	}
	if code := call(t, rts, http.MethodGet, "/schemas", nil, &errResp); code != http.StatusServiceUnavailable {
		t.Errorf("draining router still admits work: %d", code)
	}
	if code := call(t, rts, http.MethodGet, "/healthz", nil, &struct{}{}); code != http.StatusOK {
		t.Errorf("draining router healthz: %d", code)
	}

	// Shard drain: the SIGTERM path is BeginDrain + close. Afterwards
	// every journal must be clean — reopening recovers the full partition
	// with zero warnings.
	for i, sh := range shards {
		sh.s.front.BeginDrain()
		sh.close(t)
		m, err := cupid.NewMatcher(cupid.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		p, warns, err := cupid.OpenPersistentRegistryOptions(dirs[i], m, cupid.DefaultPersistOptions())
		if err != nil {
			t.Fatalf("reopening shard %d: %v", i, err)
		}
		if len(warns) != 0 {
			t.Errorf("shard %d journal not clean after drain: %v", i, warns)
		}
		if p.Registry.Len() != perShard[i] {
			t.Errorf("shard %d recovered %d schemas, want %d", i, p.Registry.Len(), perShard[i])
		}
		if err := p.Close(); err != nil {
			t.Errorf("closing reopened shard %d: %v", i, err)
		}
	}
}
