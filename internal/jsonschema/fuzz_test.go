package jsonschema

import (
	"strings"
	"testing"

	"repro/internal/schematree"
)

// FuzzParseJSONSchema asserts the importer's crash-freedom contract: no
// input panics, and every accepted document yields a schema that validates
// and expands through schematree.Build (the Prepare pipeline's per-schema
// phase), tolerating only the deliberate node-cap rejection.
func FuzzParseJSONSchema(f *testing.F) {
	f.Add([]byte(`{"type": "object", "properties": {"id": {"type": "integer"}, "name": {"type": "string"}}, "required": ["id"]}`))
	f.Add([]byte(`{"$defs": {"addr": {"type": "object", "properties": {"city": {"type": "string"}}}}, "type": "object", "properties": {"home": {"$ref": "#/$defs/addr"}, "work": {"$ref": "#/$defs/addr"}}}`))
	f.Add([]byte(`{"$defs": {"node": {"type": "object", "properties": {"next": {"$ref": "#/$defs/node"}}}}, "$ref": "#/$defs/node"}`))
	f.Add([]byte(`{"type": "array", "items": {"type": "string", "format": "date-time"}}`))
	f.Add([]byte(`{"enum": ["a", "b"], "title": "Pick"}`))
	f.Add([]byte(`{"type": ["string", "null"]}`))
	f.Add([]byte(`{"type": "object"`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			t.Skip("oversized input")
		}
		s, err := Parse("fuzz", data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted schema fails validation: %v", err)
		}
		if _, err := schematree.Build(s, schematree.Options{MaxNodes: 4096}); err != nil &&
			!strings.Contains(err.Error(), "exceeds") {
			t.Fatalf("accepted schema fails tree expansion: %v", err)
		}
	})
}
