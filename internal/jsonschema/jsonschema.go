// Package jsonschema imports JSON Schema documents (a practical draft-07
// subset) into the generic schema model, the same fan-in path as the
// sqlddl, xsdlite and dtd importers: objects with properties/required,
// $defs / definitions with $ref (shared definitions become KindType
// elements referenced via IsDerivedFrom, so two properties sharing one
// definition share structure the way two XSD elements share a complex
// type), arrays, enums, and type unions. Recursive $ref chains are cut by
// emitting an opaque DTComplex leaf at the point where a definition
// references itself (directly or transitively), because the schema-tree
// expansion deliberately rejects derivation cycles (the paper defers
// cyclic schemas to future work).
//
// Concrete type spellings ("integer", "number", "string" + "format", ...)
// are normalized through model.ParseDataType, the shared broad-type table
// every importer uses — which is what makes the datatype-compatibility
// signal comparable across formats.
package jsonschema

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/model"
)

// node is the decoded form of one (sub)schema object. Only the subset the
// importer understands is decoded; unknown keywords are ignored, matching
// JSON Schema's own open-world semantics.
type node struct {
	Ref         string           `json:"$ref"`
	Type        any              `json:"type"` // string or []string
	Format      string           `json:"format"`
	Enum        []any            `json:"enum"`
	Properties  map[string]*node `json:"properties"`
	Required    []string         `json:"required"`
	Items       json.RawMessage  `json:"items"` // node or [node, ...]
	Defs        map[string]*node `json:"$defs"`
	Definitions map[string]*node `json:"definitions"`
	Title       string           `json:"title"`
	Description string           `json:"description"`
}

type builder struct {
	s *model.Schema
	// defs maps a JSON pointer ("#/$defs/Name") to its definition node.
	defs map[string]*node
	// types maps the same pointers to their KindType elements.
	types map[string]*model.Element
	// building marks pointers whose bodies are being expanded: a $ref to
	// one of these would close a derivation cycle and is cut instead.
	building map[string]bool
	// built marks pointers whose bodies are complete.
	built map[string]bool
}

// Parse converts a JSON Schema document into a model schema named name.
// A top-level object schema merges into the root: its properties become
// the root's children (so a document of N top properties has the same
// tree shape as a DDL script of N tables). Any other top-level schema
// becomes a single child named after the document title (or "value").
func Parse(name string, data []byte) (*model.Schema, error) {
	var top node
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, fmt.Errorf("jsonschema: %w", err)
	}
	b := &builder{
		s:        model.New(name),
		defs:     map[string]*node{},
		types:    map[string]*model.Element{},
		building: map[string]bool{},
		built:    map[string]bool{},
	}
	// Pre-declare every definition as a free-standing KindType element so
	// forward references resolve; bodies expand on demand (buildDef), which
	// is where cycles are detected.
	for _, grp := range []struct {
		prefix string
		defs   map[string]*node
	}{{"#/$defs/", top.Defs}, {"#/definitions/", top.Definitions}} {
		names := make([]string, 0, len(grp.defs))
		for dn := range grp.defs {
			names = append(names, dn)
		}
		sort.Strings(names)
		for _, dn := range names {
			ptr := grp.prefix + dn
			b.defs[ptr] = grp.defs[dn]
			b.types[ptr] = b.s.NewElement(dn, model.KindType)
		}
	}
	// Expand every definition body, even ones nothing references yet.
	ptrs := make([]string, 0, len(b.defs))
	for ptr := range b.defs {
		ptrs = append(ptrs, ptr)
	}
	sort.Strings(ptrs)
	for _, ptr := range ptrs {
		if err := b.buildDef(ptr); err != nil {
			return nil, err
		}
	}
	if err := b.top(&top); err != nil {
		return nil, err
	}
	if err := b.s.Validate(); err != nil {
		return nil, fmt.Errorf("jsonschema: %w", err)
	}
	return b.s, nil
}

// top grafts the document's top-level schema onto the root.
func (b *builder) top(n *node) error {
	types, _, err := typeList(n.Type)
	if err != nil {
		return err
	}
	if isObject(types, n) {
		if n.Description != "" {
			b.s.Root().Description = n.Description
		}
		return b.properties(b.s.Root(), n)
	}
	name := n.Title
	if name == "" {
		name = "value"
	}
	e := b.s.AddChild(b.s.Root(), name, model.KindElement)
	return b.fill(e, n)
}

// buildDef expands the body of the definition at ptr into its pre-declared
// type element, exactly once.
func (b *builder) buildDef(ptr string) error {
	if b.built[ptr] || b.building[ptr] {
		return nil
	}
	b.building[ptr] = true
	err := b.fill(b.types[ptr], b.defs[ptr])
	delete(b.building, ptr)
	b.built[ptr] = true
	return err
}

// fill populates element e from schema node n: data type, description,
// children for objects/arrays, IsDerivedFrom for $refs.
func (b *builder) fill(e *model.Element, n *node) error {
	if n.Description != "" {
		e.Description = n.Description
	}
	if n.Ref != "" {
		te, ok := b.types[n.Ref]
		if !ok {
			return fmt.Errorf("jsonschema: unresolved $ref %q (only #/$defs/... and #/definitions/... are supported)", n.Ref)
		}
		if b.building[n.Ref] {
			// Cycle: the referenced definition is an ancestor of this very
			// expansion. Cut with an opaque structured leaf.
			e.Type = model.DTComplex
			return nil
		}
		if err := b.buildDef(n.Ref); err != nil {
			return err
		}
		return b.s.DeriveFrom(e, te)
	}
	types, nullable, err := typeList(n.Type)
	if err != nil {
		return err
	}
	if nullable {
		e.Optional = true
	}
	switch {
	case len(types) > 1:
		// A genuine type union ("type": ["string", "integer"]): no single
		// broad class fits, so the most permissive one does.
		e.Type = model.DTAny
		return nil
	case isObject(types, n):
		return b.properties(e, n)
	case isArray(types, n):
		return b.array(e, n)
	case len(n.Enum) > 0:
		e.Type = model.DTEnum
		return nil
	case len(types) == 1:
		e.Type = scalarType(types[0], n.Format)
		return nil
	default:
		// Empty schema {}: accepts any instance.
		e.Type = model.DTAny
		return nil
	}
}

// properties expands an object schema's properties (sorted by name for
// determinism — JSON objects are unordered) as children of e; properties
// absent from "required" are optional.
func (b *builder) properties(e *model.Element, n *node) error {
	required := make(map[string]bool, len(n.Required))
	for _, r := range n.Required {
		required[r] = true
	}
	names := make([]string, 0, len(n.Properties))
	for pn := range n.Properties {
		names = append(names, pn)
	}
	sort.Strings(names)
	for _, pn := range names {
		c := b.s.AddChild(e, pn, model.KindElement)
		if !required[pn] {
			c.Optional = true
		}
		if err := b.fill(c, n.Properties[pn]); err != nil {
			return err
		}
		if required[pn] {
			// fill may set Optional for nullable unions; an explicitly
			// required property stays required.
			c.Optional = false
		}
	}
	if len(names) == 0 {
		e.Type = model.DTComplex
	}
	return nil
}

// array expands an array schema: the element stands for the repeated item,
// so single-schema items merge into e itself and tuple items become
// children item1..itemN.
func (b *builder) array(e *model.Element, n *node) error {
	if len(n.Items) == 0 {
		e.Type = model.DTComplex
		return nil
	}
	var one node
	if err := json.Unmarshal(n.Items, &one); err == nil {
		return b.fill(e, &one)
	}
	var tuple []*node
	if err := json.Unmarshal(n.Items, &tuple); err != nil {
		return fmt.Errorf("jsonschema: items must be a schema or an array of schemas: %w", err)
	}
	for i, it := range tuple {
		if it == nil {
			return fmt.Errorf("jsonschema: null tuple item %d", i)
		}
		c := b.s.AddChild(e, fmt.Sprintf("item%d", i+1), model.KindElement)
		if err := b.fill(c, it); err != nil {
			return err
		}
	}
	return nil
}

// typeList normalizes the "type" keyword: a string, a list of strings, or
// absent. "null" members are stripped and reported as nullability.
func typeList(t any) (types []string, nullable bool, err error) {
	switch v := t.(type) {
	case nil:
		return nil, false, nil
	case string:
		if v == "null" {
			return nil, true, nil
		}
		return []string{v}, false, nil
	case []any:
		for _, m := range v {
			s, ok := m.(string)
			if !ok {
				return nil, false, fmt.Errorf("jsonschema: type union member %v is not a string", m)
			}
			if s == "null" {
				nullable = true
				continue
			}
			types = append(types, s)
		}
		sort.Strings(types)
		return types, nullable, nil
	default:
		return nil, false, fmt.Errorf("jsonschema: \"type\" must be a string or array of strings, got %T", t)
	}
}

// isObject reports whether the node describes an object: declared type, or
// no type but a properties map (common shorthand).
func isObject(types []string, n *node) bool {
	if len(types) == 1 && types[0] == "object" {
		return true
	}
	return len(types) == 0 && len(n.Properties) > 0
}

// isArray reports whether the node describes an array.
func isArray(types []string, n *node) bool {
	if len(types) == 1 && types[0] == "array" {
		return true
	}
	return len(types) == 0 && len(n.Items) > 0 && len(n.Properties) == 0
}

// scalarType maps a scalar type name plus optional "format" annotation to
// the broad class; temporal formats sharpen plain strings.
func scalarType(t, format string) model.DataType {
	if t == "string" {
		switch format {
		case "date", "date-time", "time":
			return model.ParseDataType(format)
		}
	}
	return model.ParseDataType(t)
}
