package jsonschema

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/schematree"
)

// find returns the first element whose containment path equals path.
func find(t *testing.T, s *model.Schema, path string) *model.Element {
	t.Helper()
	var out *model.Element
	model.PreOrder(s.Root(), func(e *model.Element) {
		if out == nil && e.Path() == path {
			out = e
		}
	})
	if out == nil {
		t.Fatalf("no element at path %q in:\n%s", path, s.Dump())
	}
	return out
}

func TestObjectProperties(t *testing.T) {
	doc := `{
		"type": "object",
		"title": "Order",
		"required": ["OrderID", "Amount"],
		"properties": {
			"OrderID": {"type": "integer"},
			"Amount": {"type": "number"},
			"Customer": {"type": "string"},
			"OrderDate": {"type": "string", "format": "date"},
			"Updated": {"type": "string", "format": "date-time"},
			"Active": {"type": "boolean"}
		}
	}`
	s, err := Parse("orders", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]model.DataType{
		"orders.OrderID":   model.DTInt,
		"orders.Amount":    model.DTFloat,
		"orders.Customer":  model.DTString,
		"orders.OrderDate": model.DTDate,
		"orders.Updated":   model.DTDateTime,
		"orders.Active":    model.DTBool,
	} {
		if got := find(t, s, path).Type; got != want {
			t.Errorf("%s: type %v, want %v", path, got, want)
		}
	}
	if find(t, s, "orders.OrderID").Optional {
		t.Error("required property OrderID marked optional")
	}
	if !find(t, s, "orders.Customer").Optional {
		t.Error("non-required property Customer not optional")
	}
}

func TestSharedDefsDeriveFrom(t *testing.T) {
	doc := `{
		"type": "object",
		"$defs": {
			"Address": {
				"type": "object",
				"required": ["Street", "City"],
				"properties": {
					"Street": {"type": "string"},
					"City": {"type": "string"}
				}
			}
		},
		"properties": {
			"BillTo": {"$ref": "#/$defs/Address"},
			"ShipTo": {"$ref": "#/$defs/Address"}
		}
	}`
	s, err := Parse("po", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	bill := find(t, s, "po.BillTo")
	ship := find(t, s, "po.ShipTo")
	if len(bill.DerivedFrom()) != 1 || len(ship.DerivedFrom()) != 1 {
		t.Fatalf("BillTo/ShipTo should each derive from the shared Address type")
	}
	if bill.DerivedFrom()[0] != ship.DerivedFrom()[0] {
		t.Error("BillTo and ShipTo derive from different type elements; the definition should be shared")
	}
	// The shared type expands per context in the schema tree.
	tr, err := schematree.Build(s, schematree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var cities int
	for _, n := range tr.Nodes {
		if n.Elem.Name == "City" {
			cities++
		}
	}
	if cities != 2 {
		t.Errorf("expanded tree has %d City contexts, want 2", cities)
	}
}

func TestRecursiveRefCut(t *testing.T) {
	doc := `{
		"type": "object",
		"$defs": {
			"Node": {
				"type": "object",
				"properties": {
					"Value": {"type": "integer"},
					"Next": {"$ref": "#/$defs/Node"}
				}
			}
		},
		"properties": {"Head": {"$ref": "#/$defs/Node"}}
	}`
	s, err := Parse("list", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	// The recursive back-reference must be cut into an opaque leaf so the
	// tree expansion (which rejects derivation cycles) still succeeds.
	if _, err := schematree.Build(s, schematree.DefaultOptions()); err != nil {
		t.Fatalf("recursive schema did not expand: %v", err)
	}
}

func TestMutualRecursionCut(t *testing.T) {
	doc := `{
		"type": "object",
		"definitions": {
			"A": {"type": "object", "properties": {"b": {"$ref": "#/definitions/B"}}},
			"B": {"type": "object", "properties": {"a": {"$ref": "#/definitions/A"}}}
		},
		"properties": {"root": {"$ref": "#/definitions/A"}}
	}`
	s, err := Parse("mutual", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schematree.Build(s, schematree.DefaultOptions()); err != nil {
		t.Fatalf("mutually recursive schema did not expand: %v", err)
	}
}

func TestArrays(t *testing.T) {
	doc := `{
		"type": "object",
		"properties": {
			"Tags": {"type": "array", "items": {"type": "string"}},
			"Lines": {"type": "array", "items": {
				"type": "object",
				"properties": {"Qty": {"type": "integer"}, "SKU": {"type": "string"}}
			}},
			"Pair": {"type": "array", "items": [{"type": "integer"}, {"type": "string"}]}
		}
	}`
	s, err := Parse("doc", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := find(t, s, "doc.Tags").Type; got != model.DTString {
		t.Errorf("scalar-items array type %v, want string", got)
	}
	if got := find(t, s, "doc.Lines.Qty").Type; got != model.DTInt {
		t.Errorf("object-items array child Qty type %v, want int", got)
	}
	if got := find(t, s, "doc.Pair.item2").Type; got != model.DTString {
		t.Errorf("tuple item2 type %v, want string", got)
	}
}

func TestUnionsEnumsNullable(t *testing.T) {
	doc := `{
		"type": "object",
		"required": ["Status", "Mixed", "Note"],
		"properties": {
			"Status": {"enum": ["open", "closed"]},
			"Mixed": {"type": ["integer", "string"]},
			"Note": {"type": ["string", "null"]}
		}
	}`
	s, err := Parse("doc", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := find(t, s, "doc.Status").Type; got != model.DTEnum {
		t.Errorf("enum type %v, want enum", got)
	}
	if got := find(t, s, "doc.Mixed").Type; got != model.DTAny {
		t.Errorf("union type %v, want any", got)
	}
	note := find(t, s, "doc.Note")
	if note.Type != model.DTString {
		t.Errorf("nullable string type %v, want string", note.Type)
	}
	// "required" wins over nullable-union optionality for the element flag.
	if note.Optional {
		t.Error("required nullable property marked optional")
	}
}

func TestScalarTopLevel(t *testing.T) {
	s, err := Parse("scalar", []byte(`{"type": "string", "title": "Code"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := find(t, s, "scalar.Code").Type; got != model.DTString {
		t.Errorf("top-level scalar type %v, want string", got)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"invalid json":    `{"type":`,
		"unresolved ref":  `{"type": "object", "properties": {"a": {"$ref": "#/$defs/Missing"}}}`,
		"bad type kind":   `{"type": 42}`,
		"bad union types": `{"type": ["string", 42]}`,
	}
	for name, doc := range cases {
		if _, err := Parse("x", []byte(doc)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		} else if !strings.Contains(err.Error(), "jsonschema") {
			t.Errorf("%s: error %q does not name the package", name, err)
		}
	}
}
