package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		for _, n := range []int{0, 1, 3, 4, 7, 100, 1000} {
			prev := SetMaxWorkers(workers)
			hits := make([]int32, n)
			For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			SetMaxWorkers(prev)
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestSetMaxWorkersRoundTrip(t *testing.T) {
	prev := SetMaxWorkers(3)
	defer SetMaxWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetMaxWorkers(3)", got)
	}
	if got := SetMaxWorkers(0); got != 3 {
		t.Fatalf("SetMaxWorkers returned previous cap %d, want 3", got)
	}
	if Workers() < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}

func TestForNestedDoesNotDeadlock(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	var total atomic.Int64
	For(10, func(i int) {
		For(10, func(j int) { total.Add(1) })
	})
	if total.Load() != 100 {
		t.Fatalf("nested For ran %d iterations, want 100", total.Load())
	}
}
