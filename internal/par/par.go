// Package par provides the bounded worker pool used to data-parallelize
// Cupid's quadratic phases (category-pair name similarity, element-pair
// lsim, the leaf-leaf initialization and refresh sweeps of TreeMatch).
//
// All parallel loops in this repository go through For, so a single knob —
// SetMaxWorkers — switches the whole pipeline between sequential and
// concurrent execution. That is what the determinism tests and the
// cupidbench sequential-vs-parallel comparison rely on. Every loop body
// writes only cells owned by its index, so results are bit-identical to
// the sequential order regardless of scheduling.
//
// The worker bound is per-For-call, not global: each call spawns its own
// (short-lived) goroutine set, so k concurrent top-level Match calls can
// run up to k×Workers() goroutines at once. The Go scheduler still
// multiplexes them onto GOMAXPROCS OS threads; callers that need a hard
// global CPU bound should gate their own Match concurrency.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the number of goroutines For may use. 0 (the default)
// means runtime.GOMAXPROCS(0).
var maxWorkers atomic.Int64

// SetMaxWorkers caps the worker count for subsequent For calls; n <= 0
// restores the default (GOMAXPROCS). It returns the previous cap so
// callers can defer-restore. Safe for concurrent use, but intended for
// setup/benchmark code, not for calls racing with active loops.
func SetMaxWorkers(n int) int {
	prev := int(maxWorkers.Swap(int64(n)))
	return prev
}

// Workers reports how many workers For would use for a large loop.
func Workers() int {
	if n := int(maxWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// seqThreshold is the loop size below which For always runs inline:
// goroutine startup costs more than the work it would offload.
const seqThreshold = 4

// For runs fn(i) for every i in [0, n), using up to Workers() goroutines.
// Iterations are handed out in contiguous chunks via an atomic cursor, so
// scheduling is work-stealing-ish without per-index channel traffic. fn
// must be safe to call concurrently for distinct indexes; For returns only
// after every iteration completed.
func For(n int, fn func(i int)) {
	forCancel(n, nil, fn)
}

// ForCtx is For with cooperative cancellation: every worker checks the
// context before each iteration and stops handing out work once it is
// done, so an abandoned caller (client disconnect, deadline) stops
// consuming CPU after at most one in-flight fn per worker. It returns
// ctx.Err() when the loop was cut short — iterations may then have been
// skipped, so the caller must discard partial results — and nil when
// every iteration ran. The serving layer threads request contexts through
// the registry's candidate-scoring loops with this.
func ForCtx(ctx context.Context, n int, fn func(i int)) error {
	if ctx == nil || ctx.Done() == nil {
		// Background-like contexts can never be canceled; skip the
		// per-iteration Err() calls entirely.
		forCancel(n, nil, fn)
		return nil
	}
	forCancel(n, ctx.Err, fn)
	return ctx.Err()
}

// forCancel is the shared loop body: canceled (nil = never) is consulted
// before each iteration.
func forCancel(n int, canceled func() error, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 || n < seqThreshold {
		for i := 0; i < n; i++ {
			if canceled != nil && canceled() != nil {
				return
			}
			fn(i)
		}
		return
	}
	// Chunks small enough to balance uneven iteration costs, large enough
	// to amortize the atomic increment.
	chunk := n / (w * 4)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				end := int(cursor.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if canceled != nil && canceled() != nil {
						return
					}
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
