package par

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForCtxRunsAllWithoutCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetMaxWorkers(workers)
		var sum atomic.Int64
		if err := ForCtx(context.Background(), 100, func(i int) {
			sum.Add(int64(i))
		}); err != nil {
			t.Errorf("workers=%d: ForCtx = %v, want nil", workers, err)
		}
		if got := sum.Load(); got != 4950 {
			t.Errorf("workers=%d: ran sum %d, want 4950 (every iteration exactly once)", workers, got)
		}
		SetMaxWorkers(prev)
	}
}

func TestForCtxAlreadyCanceledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		prev := SetMaxWorkers(workers)
		var ran atomic.Int64
		err := ForCtx(ctx, 1000, func(i int) { ran.Add(1) })
		SetMaxWorkers(prev)
		if err != context.Canceled {
			t.Errorf("workers=%d: ForCtx = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got != 0 {
			t.Errorf("workers=%d: %d iterations ran on an already-canceled context, want 0", workers, got)
		}
	}
}

func TestForCtxStopsMidLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForCtx(ctx, 100000, func(i int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("ForCtx = %v, want context.Canceled", err)
	}
	// Each worker may have had one iteration in flight when the context
	// died; everything else must have been skipped.
	if got := ran.Load(); got >= 100000 {
		t.Errorf("ForCtx ran all %d iterations despite mid-loop cancellation", got)
	}
}

func TestForCtxNilAndBackgroundFastPath(t *testing.T) {
	var ran atomic.Int64
	if err := ForCtx(nil, 10, func(i int) { ran.Add(1) }); err != nil { //nolint:staticcheck // nil ctx is the documented fast path
		t.Fatalf("ForCtx(nil) = %v", err)
	}
	if ran.Load() != 10 {
		t.Fatalf("ForCtx(nil) ran %d iterations, want 10", ran.Load())
	}
}
