// Package tuner implements automatic tuning of Cupid's control parameters
// — an explicit future-work item of the paper (§9.3 conclusion 8: "Tuning
// performance parameters in some cases requires expert knowledge of these
// tools. Thus auto-tuning is an open problem"; §10 lists "automatic tuning
// of the control parameters" among the immediate challenges).
//
// The tuner performs an exhaustive grid search over a parameter space,
// scoring each configuration by F1 against a workload's gold mapping.
// Invalid combinations (violating the Table 1 ordering constraints, e.g.
// thlow < thaccept < thhigh) are skipped rather than reported as errors,
// so spaces can be specified as independent axes.
package tuner

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/workloads"
)

// Space lists the candidate values per tunable parameter. Empty axes keep
// the base configuration's value.
type Space struct {
	WStruct     []float64
	WStructLeaf []float64
	CInc        []float64
	CDec        []float64
	ThAccept    []float64
	ThHigh      []float64
	ThLow       []float64
}

// DefaultSpace is a small grid around the Table 1 typical values.
func DefaultSpace() Space {
	return Space{
		WStruct:     []float64{0.55, 0.60, 0.65},
		WStructLeaf: []float64{0.50, 0.54, 0.58},
		CInc:        []float64{1.2, 1.25, 1.3},
		ThAccept:    []float64{0.45, 0.50},
		ThHigh:      []float64{0.60, 0.65},
		ThLow:       []float64{0.25, 0.30},
	}
}

// Trial is one evaluated configuration.
type Trial struct {
	// Label summarizes the parameter values, e.g.
	// "wstruct=0.60 wleaf=0.58 cinc=1.25 thacc=0.50 thhigh=0.60 thlow=0.30".
	Label   string
	Config  core.Config
	Metrics eval.Metrics
}

// Result of a grid search.
type Result struct {
	Best   Trial
	Trials []Trial // every valid trial, sorted by descending F1
	// Skipped counts parameter combinations rejected by validation.
	Skipped int
}

func axis(vals []float64, fallback float64) []float64 {
	if len(vals) == 0 {
		return []float64{fallback}
	}
	return vals
}

// Grid exhaustively evaluates the space on the workload, starting from the
// base configuration. The best trial maximizes F1, breaking ties toward
// higher precision and then the earlier (more conservative) combination.
func Grid(w workloads.Workload, base core.Config, space Space) (*Result, error) {
	sp := base.Structural
	wstructs := axis(space.WStruct, sp.WStruct)
	wleafs := axis(space.WStructLeaf, sp.WStructLeaf)
	cincs := axis(space.CInc, sp.CInc)
	cdecs := axis(space.CDec, sp.CDec)
	thaccs := axis(space.ThAccept, sp.ThAccept)
	thhighs := axis(space.ThHigh, sp.ThHigh)
	thlows := axis(space.ThLow, sp.ThLow)

	res := &Result{}
	for _, ws := range wstructs {
		for _, wl := range wleafs {
			for _, ci := range cincs {
				for _, cd := range cdecs {
					for _, ta := range thaccs {
						for _, th := range thhighs {
							for _, tl := range thlows {
								cfg := base
								cfg.Structural.WStruct = ws
								cfg.Structural.WStructLeaf = wl
								cfg.Structural.CInc = ci
								cfg.Structural.CDec = cd
								cfg.Structural.ThAccept = ta
								cfg.Structural.ThHigh = th
								cfg.Structural.ThLow = tl
								cfg.Mapping.ThAccept = ta
								if cfg.Validate() != nil {
									res.Skipped++
									continue
								}
								_, m, err := eval.RunCupid(w, cfg)
								if err != nil {
									return nil, err
								}
								res.Trials = append(res.Trials, Trial{
									Label: fmt.Sprintf(
										"wstruct=%.2f wleaf=%.2f cinc=%.2f cdec=%.2f thacc=%.2f thhigh=%.2f thlow=%.2f",
										ws, wl, ci, cd, ta, th, tl),
									Config:  cfg,
									Metrics: m,
								})
							}
						}
					}
				}
			}
		}
	}
	if len(res.Trials) == 0 {
		return nil, fmt.Errorf("tuner: the whole space is invalid")
	}
	sort.SliceStable(res.Trials, func(i, j int) bool {
		a, b := res.Trials[i].Metrics, res.Trials[j].Metrics
		if a.F1() != b.F1() {
			return a.F1() > b.F1()
		}
		return a.Precision() > b.Precision()
	})
	res.Best = res.Trials[0]
	return res, nil
}

// Render formats the top trials of a search.
func (r *Result) Render(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "auto-tuning: %d trials evaluated, %d invalid combinations skipped\n",
		len(r.Trials), r.Skipped)
	if top > len(r.Trials) {
		top = len(r.Trials)
	}
	for i := 0; i < top; i++ {
		t := r.Trials[i]
		fmt.Fprintf(&b, "  %2d. %s  %s\n", i+1, t.Metrics, t.Label)
	}
	return b.String()
}
