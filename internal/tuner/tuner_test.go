package tuner

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

func TestGridFindsPerfectConfigOnFigure2(t *testing.T) {
	res, err := Grid(workloads.Figure2(), core.DefaultConfig(), DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Metrics.F1() < 0.99 {
		t.Errorf("best F1 = %v, want ~1 (the default space contains the working region)\n%s",
			res.Best.Metrics.F1(), res.Render(5))
	}
	if len(res.Trials) == 0 {
		t.Fatal("no trials")
	}
	// Trials sorted by descending F1.
	for i := 1; i < len(res.Trials); i++ {
		if res.Trials[i-1].Metrics.F1() < res.Trials[i].Metrics.F1() {
			t.Fatal("trials not sorted by F1")
		}
	}
}

func TestGridSkipsInvalidCombos(t *testing.T) {
	space := Space{
		ThAccept: []float64{0.5},
		ThHigh:   []float64{0.4, 0.7}, // 0.4 < thaccept: invalid
		ThLow:    []float64{0.3, 0.6}, // 0.6 > thaccept: invalid
	}
	res, err := Grid(workloads.Figure1(), core.DefaultConfig(), space)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 3 { // (0.4,0.3) (0.4,0.6) (0.7,0.6) invalid; (0.7,0.3) valid
		t.Errorf("skipped = %d, want 3", res.Skipped)
	}
	if len(res.Trials) != 1 {
		t.Errorf("trials = %d, want 1", len(res.Trials))
	}
}

func TestGridWholeSpaceInvalid(t *testing.T) {
	space := Space{ThHigh: []float64{0.1}} // below thaccept in every combo
	if _, err := Grid(workloads.Figure1(), core.DefaultConfig(), space); err == nil {
		t.Error("fully invalid space accepted")
	}
}

func TestGridEmptyAxesUseBase(t *testing.T) {
	res, err := Grid(workloads.Figure1(), core.DefaultConfig(), Space{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 1 {
		t.Fatalf("empty space should evaluate exactly the base config, got %d", len(res.Trials))
	}
	base := core.DefaultConfig()
	if res.Best.Config.Structural.WStruct != base.Structural.WStruct {
		t.Error("base config not preserved")
	}
}

func TestGridDeterministic(t *testing.T) {
	space := Space{WStruct: []float64{0.55, 0.6}, CInc: []float64{1.2, 1.25}}
	a, err := Grid(workloads.Figure2(), core.DefaultConfig(), space)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Grid(workloads.Figure2(), core.DefaultConfig(), space)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render(10) != b.Render(10) {
		t.Error("grid search not deterministic")
	}
}

func TestRender(t *testing.T) {
	res, err := Grid(workloads.Figure1(), core.DefaultConfig(), Space{WStruct: []float64{0.6}})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render(3)
	if !strings.Contains(out, "auto-tuning") || !strings.Contains(out, "wstruct=0.60") {
		t.Errorf("render:\n%s", out)
	}
}
