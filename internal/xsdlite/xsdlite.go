// Package xsdlite imports XML Schema (XSD) documents into the generic
// schema model. It covers the subset the Cupid prototype consumed:
// elements, attributes, anonymous and named complex types (named types
// become shared-type targets of IsDerivedFrom relationships, yielding
// context-dependent matching), sequence/all/choice groups, optionality via
// minOccurs/use, and key/keyref pairs, which become key elements and
// RefInt constraints (paper §8.1, §8.3).
package xsdlite

import (
	"encoding/xml"
	"fmt"
	"strings"

	"repro/internal/model"
)

// Parse reads an XSD document and builds a schema. The schema name is the
// name of the single top-level element when there is exactly one,
// otherwise schemaName.
func Parse(schemaName string, doc []byte) (*model.Schema, error) {
	var xs xsdSchema
	if err := xml.Unmarshal(doc, &xs); err != nil {
		return nil, fmt.Errorf("xsdlite: %w", err)
	}
	if len(xs.Elements) == 0 {
		return nil, fmt.Errorf("xsdlite: schema declares no elements")
	}
	name := schemaName
	if len(xs.Elements) == 1 && xs.Elements[0].Name != "" {
		name = xs.Elements[0].Name
	}
	b := &builder{
		schema: model.New(name),
		types:  map[string]*model.Element{},
		keys:   map[string]*model.Element{},
	}
	// Pre-declare named complex types so forward references resolve. The
	// type elements are free-standing (no containment parent): they are
	// spliced into their users by schema-tree expansion.
	for i := range xs.ComplexTypes {
		ct := &xs.ComplexTypes[i]
		if ct.Name == "" {
			continue
		}
		te := b.schema.NewElement(ct.Name, model.KindType)
		b.types[ct.Name] = te
	}
	for i := range xs.ComplexTypes {
		ct := &xs.ComplexTypes[i]
		if ct.Name == "" {
			continue
		}
		if err := b.fillComplexType(b.types[ct.Name], ct); err != nil {
			return nil, err
		}
	}
	// Top-level elements. With a single top element its content hangs
	// directly off the schema root (which carries its name); multiple top
	// elements each become children of the root.
	if len(xs.Elements) == 1 {
		if err := b.element(&xs.Elements[0], b.schema.Root(), true); err != nil {
			return nil, err
		}
	} else {
		for i := range xs.Elements {
			if err := b.element(&xs.Elements[i], b.schema.Root(), false); err != nil {
				return nil, err
			}
		}
	}
	for _, kr := range b.keyrefs {
		if err := b.resolveKeyRef(kr); err != nil {
			return nil, err
		}
	}
	if err := b.schema.Validate(); err != nil {
		return nil, err
	}
	return b.schema, nil
}

// --- XML shapes ----------------------------------------------------------

type xsdSchema struct {
	XMLName      xml.Name         `xml:"schema"`
	Elements     []xsdElement     `xml:"element"`
	ComplexTypes []xsdComplexType `xml:"complexType"`
}

type xsdElement struct {
	Name        string          `xml:"name,attr"`
	Type        string          `xml:"type,attr"`
	MinOccurs   string          `xml:"minOccurs,attr"`
	ComplexType *xsdComplexType `xml:"complexType"`
	Keys        []xsdKey        `xml:"key"`
	KeyRefs     []xsdKeyRef     `xml:"keyref"`
}

type xsdComplexType struct {
	Name       string         `xml:"name,attr"`
	Sequence   *xsdGroup      `xml:"sequence"`
	All        *xsdGroup      `xml:"all"`
	Choice     *xsdGroup      `xml:"choice"`
	Attributes []xsdAttribute `xml:"attribute"`
}

type xsdGroup struct {
	Elements []xsdElement `xml:"element"`
}

type xsdAttribute struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
	Use  string `xml:"use,attr"`
}

type xsdKey struct {
	Name     string     `xml:"name,attr"`
	Selector xsdXPath   `xml:"selector"`
	Fields   []xsdXPath `xml:"field"`
}

type xsdKeyRef struct {
	Name     string     `xml:"name,attr"`
	Refer    string     `xml:"refer,attr"`
	Selector xsdXPath   `xml:"selector"`
	Fields   []xsdXPath `xml:"field"`
}

type xsdXPath struct {
	XPath string `xml:"xpath,attr"`
}

// --- builder -------------------------------------------------------------

type pendingKeyRef struct {
	kr    xsdKeyRef
	owner *model.Element
}

type builder struct {
	schema  *model.Schema
	types   map[string]*model.Element // named complex types
	keys    map[string]*model.Element // xsd key name -> key element
	keyrefs []pendingKeyRef
}

// localName strips a namespace prefix ("xs:string" -> "string").
func localName(s string) string {
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// isBuiltin reports whether a type reference names an XSD builtin simple
// type rather than a user-defined complex type.
func (b *builder) isBuiltin(typ string) bool {
	_, userDefined := b.types[localName(typ)]
	return !userDefined
}

// element materializes one xsd element declaration under parent. asRoot
// grafts the element's content onto parent itself (used for the single
// top-level element, whose name the schema root already carries).
func (b *builder) element(xe *xsdElement, parent *model.Element, asRoot bool) error {
	node := parent
	if !asRoot {
		if xe.Name == "" {
			return fmt.Errorf("xsdlite: element without name under %s", parent)
		}
		node = b.schema.AddChild(parent, xe.Name, model.KindElement)
		if xe.MinOccurs == "0" {
			node.Optional = true
		}
	}
	switch {
	case xe.Type != "" && b.isBuiltin(xe.Type):
		node.Type = model.ParseDataType(localName(xe.Type))
	case xe.Type != "":
		// Reference to a named complex type: shared-type semantics.
		if err := b.schema.DeriveFrom(node, b.types[localName(xe.Type)]); err != nil {
			return err
		}
	case xe.ComplexType != nil:
		if err := b.fillComplexType(node, xe.ComplexType); err != nil {
			return err
		}
	}
	for i := range xe.Keys {
		if err := b.key(&xe.Keys[i], node); err != nil {
			return err
		}
	}
	for i := range xe.KeyRefs {
		b.keyrefs = append(b.keyrefs, pendingKeyRef{kr: xe.KeyRefs[i], owner: node})
	}
	return nil
}

// fillComplexType attaches a complex type's content (group elements and
// attributes) to owner.
func (b *builder) fillComplexType(owner *model.Element, ct *xsdComplexType) error {
	groups := []*xsdGroup{ct.Sequence, ct.All}
	for _, g := range groups {
		if g == nil {
			continue
		}
		for i := range g.Elements {
			if err := b.element(&g.Elements[i], owner, false); err != nil {
				return err
			}
		}
	}
	if ct.Choice != nil {
		// Choice members are mutually exclusive, hence optional.
		for i := range ct.Choice.Elements {
			if err := b.element(&ct.Choice.Elements[i], owner, false); err != nil {
				return err
			}
			kids := owner.Children()
			kids[len(kids)-1].Optional = true
		}
	}
	for _, a := range ct.Attributes {
		attr := b.schema.AddChild(owner, a.Name, model.KindAttribute)
		attr.Type = model.ParseDataType(localName(a.Type))
		if a.Use == "optional" || a.Use == "" {
			attr.Optional = a.Use == "optional"
		}
	}
	return nil
}

// resolvePath walks an XPath-lite selector ("Item", "po/Item", ".//Item",
// "@id") relative to start. Only child steps, a leading .// descendant
// step, and attribute steps are supported.
func resolvePath(start *model.Element, path string) *model.Element {
	cur := start
	descend := false
	if strings.HasPrefix(path, ".//") {
		descend = true
		path = strings.TrimPrefix(path, ".//")
	} else {
		path = strings.TrimPrefix(path, "./")
	}
	for _, step := range strings.Split(path, "/") {
		if step == "" || step == "." {
			continue
		}
		step = strings.TrimPrefix(step, "@")
		var next *model.Element
		if descend {
			model.PreOrder(cur, func(e *model.Element) {
				if next == nil && e != cur && e.Name == step {
					next = e
				}
			})
			descend = false
		} else {
			for _, c := range cur.Children() {
				if c.Name == step {
					next = c
					break
				}
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// key materializes an xs:key as a not-instantiated key element aggregating
// the field attributes.
func (b *builder) key(k *xsdKey, owner *model.Element) error {
	target := resolvePath(owner, k.Selector.XPath)
	if target == nil {
		return fmt.Errorf("xsdlite: key %q selector %q unresolved", k.Name, k.Selector.XPath)
	}
	key := b.schema.AddChild(target, k.Name, model.KindKey)
	key.NotInstantiated = true
	for _, f := range k.Fields {
		fe := resolvePath(target, f.XPath)
		if fe == nil {
			return fmt.Errorf("xsdlite: key %q field %q unresolved", k.Name, f.XPath)
		}
		fe.IsKey = true
		if err := b.schema.Aggregate(key, fe); err != nil {
			return err
		}
	}
	b.keys[k.Name] = key
	return nil
}

// resolveKeyRef materializes an xs:keyref as a RefInt from the referring
// fields to the referred key.
func (b *builder) resolveKeyRef(p pendingKeyRef) error {
	key := b.keys[localName(p.kr.Refer)]
	if key == nil {
		return fmt.Errorf("xsdlite: keyref %q refers to unknown key %q", p.kr.Name, p.kr.Refer)
	}
	src := resolvePath(p.owner, p.kr.Selector.XPath)
	if src == nil {
		return fmt.Errorf("xsdlite: keyref %q selector %q unresolved", p.kr.Name, p.kr.Selector.XPath)
	}
	var sources []*model.Element
	for _, f := range p.kr.Fields {
		fe := resolvePath(src, f.XPath)
		if fe == nil {
			return fmt.Errorf("xsdlite: keyref %q field %q unresolved", p.kr.Name, f.XPath)
		}
		sources = append(sources, fe)
	}
	_, err := b.schema.AddRefInt(p.kr.Name, sources, key)
	return err
}
