package xsdlite

import (
	"testing"

	"repro/internal/model"
	"repro/internal/schematree"
)

const poXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="DeliverTo" type="Address"/>
        <xs:element name="InvoiceTo" type="Address" minOccurs="0"/>
        <xs:element name="Items">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Item">
                <xs:complexType>
                  <xs:attribute name="ItemNumber" type="xs:int"/>
                  <xs:attribute name="Quantity" type="xs:int" use="optional"/>
                  <xs:attribute name="UnitOfMeasure" type="xs:string"/>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
            <xs:attribute name="ItemCount" type="xs:int"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="OrderDate" type="xs:date"/>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="Address">
    <xs:sequence>
      <xs:element name="Street" type="xs:string"/>
      <xs:element name="City" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>`

func find(s *model.Schema, path string) *model.Element {
	var out *model.Element
	model.PreOrder(s.Root(), func(e *model.Element) {
		if e.Path() == path {
			out = e
		}
	})
	return out
}

func TestParsePurchaseOrder(t *testing.T) {
	s, err := Parse("fallback", []byte(poXSD))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "PurchaseOrder" {
		t.Errorf("schema name = %q, want PurchaseOrder (single top element)", s.Name)
	}
	if e := find(s, "PurchaseOrder.Items.Item.Quantity"); e == nil {
		t.Fatalf("Quantity missing\n%s", s.Dump())
	} else {
		if e.Type != model.DTInt {
			t.Errorf("Quantity type = %v", e.Type)
		}
		if !e.Optional {
			t.Error("Quantity use=optional should be optional")
		}
	}
	if e := find(s, "PurchaseOrder.OrderDate"); e == nil || e.Type != model.DTDate {
		t.Error("OrderDate attribute wrong")
	}
	// DeliverTo/InvoiceTo derive from the shared Address type.
	del := find(s, "PurchaseOrder.DeliverTo")
	if del == nil || len(del.DerivedFrom()) != 1 || del.DerivedFrom()[0].Name != "Address" {
		t.Errorf("DeliverTo derivation wrong: %v", del)
	}
	inv := find(s, "PurchaseOrder.InvoiceTo")
	if inv == nil || !inv.Optional {
		t.Error("InvoiceTo minOccurs=0 should be optional")
	}
}

func TestSharedTypeExpandsIntoContexts(t *testing.T) {
	s, err := Parse("x", []byte(poXSD))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := schematree.Build(s, schematree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeByPath("PurchaseOrder.DeliverTo.Street") == nil ||
		tr.NodeByPath("PurchaseOrder.InvoiceTo.Street") == nil {
		t.Errorf("shared Address type not expanded into both contexts:\n%s", tr.Dump())
	}
}

const keyedXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="DB">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Customer">
          <xs:complexType>
            <xs:attribute name="id" type="xs:ID"/>
            <xs:attribute name="name" type="xs:string"/>
          </xs:complexType>
        </xs:element>
        <xs:element name="Order">
          <xs:complexType>
            <xs:attribute name="oid" type="xs:ID"/>
            <xs:attribute name="customer" type="xs:IDREF"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
    <xs:key name="customerKey">
      <xs:selector xpath="Customer"/>
      <xs:field xpath="@id"/>
    </xs:key>
    <xs:keyref name="orderCustomerRef" refer="customerKey">
      <xs:selector xpath="Order"/>
      <xs:field xpath="@customer"/>
    </xs:keyref>
  </xs:element>
</xs:schema>`

func TestKeyKeyrefBecomesRefInt(t *testing.T) {
	s, err := Parse("x", []byte(keyedXSD))
	if err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	if st.RefInts != 1 {
		t.Fatalf("RefInts = %d, want 1\n%s", st.RefInts, s.Dump())
	}
	key := find(s, "DB.Customer.customerKey")
	if key == nil || key.Kind != model.KindKey || !key.NotInstantiated {
		t.Fatalf("key element wrong: %v", key)
	}
	id := find(s, "DB.Customer.id")
	if id == nil || !id.IsKey {
		t.Error("key field not marked IsKey")
	}
	ref := find(s, "DB.orderCustomerRef")
	if ref == nil {
		t.Fatalf("refint missing\n%s", s.Dump())
	}
	if len(ref.Aggregates()) != 1 || ref.Aggregates()[0].Name != "customer" {
		t.Errorf("refint sources = %v", ref.Aggregates())
	}
	if len(ref.References()) != 1 || ref.References()[0] != key {
		t.Errorf("refint target = %v", ref.References())
	}
	// Join-view augmentation picks it up.
	tr, err := schematree.Build(s, schematree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.ComputeStats().JoinViews != 1 {
		t.Errorf("join views = %d, want 1\n%s", tr.ComputeStats().JoinViews, tr.Dump())
	}
}

func TestChoiceMembersOptional(t *testing.T) {
	doc := `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="R">
    <xs:complexType>
      <xs:choice>
        <xs:element name="A" type="xs:string"/>
        <xs:element name="B" type="xs:int"/>
      </xs:choice>
    </xs:complexType>
  </xs:element>
</xs:schema>`
	s, err := Parse("x", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B"} {
		if e := find(s, "R."+name); e == nil || !e.Optional {
			t.Errorf("choice member %s should be optional", name)
		}
	}
}

func TestMultipleTopElements(t *testing.T) {
	doc := `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="A" type="xs:string"/>
  <xs:element name="B" type="xs:string"/>
</xs:schema>`
	s, err := Parse("Multi", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "Multi" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.Root().Children()) != 2 {
		t.Errorf("top elements = %d", len(s.Root().Children()))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":     "hello",
		"no elements": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"></xs:schema>`,
		"bad keyref": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
			<xs:element name="R"><xs:complexType><xs:sequence>
			<xs:element name="A" type="xs:string"/>
			</xs:sequence></xs:complexType>
			<xs:keyref name="kr" refer="nope"><xs:selector xpath="A"/><xs:field xpath="@x"/></xs:keyref>
			</xs:element></xs:schema>`,
		"bad key selector": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
			<xs:element name="R"><xs:complexType><xs:sequence>
			<xs:element name="A" type="xs:string"/>
			</xs:sequence></xs:complexType>
			<xs:key name="k"><xs:selector xpath="Missing"/><xs:field xpath="@x"/></xs:key>
			</xs:element></xs:schema>`,
	}
	for name, doc := range cases {
		if _, err := Parse("x", []byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDescendantSelector(t *testing.T) {
	doc := `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="R">
    <xs:complexType><xs:sequence>
      <xs:element name="Wrap">
        <xs:complexType><xs:sequence>
          <xs:element name="Leaf">
            <xs:complexType><xs:attribute name="id" type="xs:ID"/></xs:complexType>
          </xs:element>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
    <xs:key name="k"><xs:selector xpath=".//Leaf"/><xs:field xpath="@id"/></xs:key>
  </xs:element>
</xs:schema>`
	s, err := Parse("x", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if find(s, "R.Wrap.Leaf.k") == nil {
		t.Errorf("descendant selector failed:\n%s", s.Dump())
	}
}
