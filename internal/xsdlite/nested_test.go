package xsdlite

import (
	"testing"

	"repro/internal/schematree"
)

// Named complex types may reference other named complex types; expansion
// must splice the whole chain into every context.
const nestedTypesXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="BillTo" type="Party"/>
        <xs:element name="ShipTo" type="Party"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="Party">
    <xs:sequence>
      <xs:element name="Address" type="Address"/>
      <xs:element name="Name" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="Address">
    <xs:sequence>
      <xs:element name="Street" type="xs:string"/>
      <xs:element name="City" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>`

func TestNestedNamedTypes(t *testing.T) {
	s, err := Parse("x", []byte(nestedTypesXSD))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := schematree.Build(s, schematree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Each party context carries the full nested chain.
	for _, path := range []string{
		"Order.BillTo.Address.Street",
		"Order.BillTo.Address.City",
		"Order.BillTo.Name",
		"Order.ShipTo.Address.Street",
		"Order.ShipTo.Address.City",
		"Order.ShipTo.Name",
	} {
		if tr.NodeByPath(path) == nil {
			t.Errorf("missing context %q\n%s", path, tr.Dump())
		}
	}
	// Exactly two Street contexts materialize (the free-standing types
	// themselves are not reachable from the root).
	count := 0
	for _, n := range tr.Nodes {
		if n.Name() == "Street" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("Street contexts = %d, want 2\n%s", count, tr.Dump())
	}
}

// A named type referencing itself through a chain must be rejected as a
// recursive type when expanded.
func TestNestedTypeCycleRejected(t *testing.T) {
	doc := `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="R">
    <xs:complexType><xs:sequence>
      <xs:element name="A" type="T1"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:complexType name="T1">
    <xs:sequence><xs:element name="B" type="T2"/></xs:sequence>
  </xs:complexType>
  <xs:complexType name="T2">
    <xs:sequence><xs:element name="C" type="T1"/></xs:sequence>
  </xs:complexType>
</xs:schema>`
	s, err := Parse("x", []byte(doc))
	if err != nil {
		t.Fatal(err) // the graph itself is legal
	}
	if _, err := schematree.Build(s, schematree.DefaultOptions()); err == nil {
		t.Error("recursive type chain expanded without error")
	}
}
