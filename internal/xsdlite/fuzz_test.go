package xsdlite

import (
	"strings"
	"testing"

	"repro/internal/schematree"
)

// FuzzParseXSD asserts the importer's crash-freedom contract: no input
// panics, and every accepted document yields a schema that validates and
// expands through schematree.Build (the Prepare pipeline's per-schema
// phase), tolerating only the deliberate node-cap rejection.
func FuzzParseXSD(f *testing.F) {
	f.Add([]byte(`<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="R"><xs:complexType>
    <xs:attribute name="a" type="xs:int"/>
  </xs:complexType></xs:element>
</xs:schema>`))
	f.Add([]byte(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Addr"><xs:sequence>
    <xs:element name="City" type="xs:string"/>
  </xs:sequence></xs:complexType>
  <xs:element name="P"><xs:complexType><xs:sequence>
    <xs:element name="Home" type="Addr"/>
    <xs:element name="Work" type="Addr"/>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>`))
	f.Add([]byte(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="E" type="xs:date"/>
</xs:schema>`))
	f.Add([]byte(`<xs:schema`))
	f.Add([]byte(`<a><b/></a>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			t.Skip("oversized input")
		}
		s, err := Parse("fuzz", data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted schema fails validation: %v", err)
		}
		if _, err := schematree.Build(s, schematree.Options{MaxNodes: 4096}); err != nil &&
			!strings.Contains(err.Error(), "exceeds") {
			t.Fatalf("accepted schema fails tree expansion: %v", err)
		}
	})
}
