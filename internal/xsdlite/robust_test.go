package xsdlite

import (
	"testing"
	"testing/quick"
)

// Property: the XSD importer never panics on arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		schema, err := Parse("F", []byte(s))
		if err == nil && schema.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Near-miss documents.
	for _, s := range []string{
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element/></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="A" type="Missing"/></xs:schema>`,
		`<schema><element name="A"><complexType><sequence><element/></sequence></complexType></element></schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:complexType name="T"/><xs:element name="A" type="T"/></xs:schema>`,
	} {
		if !f(s) {
			t.Fatalf("panic on %q", s)
		}
	}
}
