// Package sqlddl imports relational schemas written as SQL DDL into the
// generic schema model. It understands the subset needed for schema
// matching — CREATE TABLE with column types, NULL/NOT NULL, PRIMARY KEY
// (column- and table-level, possibly compound), REFERENCES / FOREIGN KEY
// constraints, and CREATE VIEW with a qualified select list.
//
// The importer reproduces the modeling of the paper's Figure 5: each
// foreign key becomes a RefInt element that aggregates its source columns
// and references the target table; primary keys become key elements that
// aggregate their columns and are tagged not-instantiated.
package sqlddl

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/model"
)

// Parse reads SQL DDL and builds a schema named schemaName.
func Parse(schemaName, ddl string) (*model.Schema, error) {
	p := &parser{toks: lex(ddl)}
	s := model.New(schemaName)
	b := &builder{schema: s, tables: map[string]*model.Element{},
		columns: map[string]map[string]*model.Element{},
		pks:     map[string]*model.Element{}}
	for !p.eof() {
		switch {
		case p.acceptKw("CREATE"):
			switch {
			case p.acceptKw("TABLE"):
				if err := b.table(p); err != nil {
					return nil, err
				}
			case p.acceptKw("VIEW"):
				if err := b.view(p); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("sqlddl: CREATE %q not supported", p.peek())
			}
		case p.accept(";"):
			// stray semicolon
		default:
			return nil, fmt.Errorf("sqlddl: unexpected token %q", p.peek())
		}
	}
	// Resolve deferred foreign keys now that all tables exist.
	for _, fk := range b.fks {
		if err := b.resolveFK(fk); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- lexer --------------------------------------------------------------

func lex(in string) []string {
	var toks []string
	i := 0
	n := len(in)
	for i < n {
		c := in[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '-' && i+1 < n && in[i+1] == '-': // line comment
			for i < n && in[i] != '\n' {
				i++
			}
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '.':
			toks = append(toks, string(c))
			i++
		case c == '\'' || c == '"' || c == '`':
			q := c
			j := i + 1
			for j < n && in[j] != q {
				j++
			}
			toks = append(toks, in[i+1:j])
			i = j + 1
		default:
			j := i
			for j < n && !unicode.IsSpace(rune(in[j])) &&
				!strings.ContainsRune("(),;.'\"`", rune(in[j])) {
				j++
			}
			toks = append(toks, in[i:j])
			i = j
		}
	}
	return toks
}

// --- parser helpers ------------------------------------------------------

type parser struct {
	toks []string
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) accept(tok string) bool {
	if p.peek() == tok {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool {
	if strings.EqualFold(p.peek(), kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(tok string) error {
	if !p.accept(tok) && !p.acceptKw(tok) {
		return fmt.Errorf("sqlddl: expected %q, got %q", tok, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t == "" || strings.ContainsAny(t, "(),;") {
		return "", fmt.Errorf("sqlddl: expected identifier, got %q", t)
	}
	p.pos++
	return t, nil
}

// skipParens consumes a balanced parenthesized group, assuming the opening
// "(" was already consumed.
func (p *parser) skipParens() {
	depth := 1
	for !p.eof() && depth > 0 {
		switch p.next() {
		case "(":
			depth++
		case ")":
			depth--
		}
	}
}

// --- builder -------------------------------------------------------------

type pendingFK struct {
	fromTable string
	columns   []string
	toTable   string
	toColumns []string
}

type builder struct {
	schema  *model.Schema
	tables  map[string]*model.Element            // lower-case name -> table
	columns map[string]map[string]*model.Element // table -> column -> element
	pks     map[string]*model.Element            // table -> key element
	fks     []pendingFK
	nViews  int
}

func lower(s string) string { return strings.ToLower(s) }

func (b *builder) table(p *parser) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if _, dup := b.tables[lower(name)]; dup {
		return fmt.Errorf("sqlddl: duplicate table %q", name)
	}
	tbl := b.schema.AddChild(b.schema.Root(), name, model.KindTable)
	b.tables[lower(name)] = tbl
	b.columns[lower(name)] = map[string]*model.Element{}
	if err := p.expect("("); err != nil {
		return err
	}
	var pkCols []string
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expect("KEY"); err != nil {
				return err
			}
			cols, err := b.columnList(p)
			if err != nil {
				return err
			}
			pkCols = append(pkCols, cols...)
		case p.acceptKw("FOREIGN"):
			if err := p.expect("KEY"); err != nil {
				return err
			}
			cols, err := b.columnList(p)
			if err != nil {
				return err
			}
			if err := p.expect("REFERENCES"); err != nil {
				return err
			}
			if err := b.references(p, name, cols); err != nil {
				return err
			}
		case p.acceptKw("CONSTRAINT"):
			if _, err := p.ident(); err != nil { // constraint name
				return err
			}
			continue // loop re-dispatches on PRIMARY/FOREIGN/...
		case p.acceptKw("UNIQUE") || p.acceptKw("CHECK") || p.acceptKw("INDEX"):
			if p.accept("(") {
				p.skipParens()
			}
		default:
			pk, err := b.column(p, name)
			if err != nil {
				return err
			}
			pkCols = append(pkCols, pk...)
		}
		if p.accept(",") {
			continue
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		break
	}
	p.accept(";")
	if len(pkCols) > 0 {
		if err := b.primaryKey(name, pkCols); err != nil {
			return err
		}
	}
	return nil
}

// column parses one column definition; it returns the column names that a
// column-level PRIMARY KEY clause designated.
func (b *builder) column(p *parser, table string) ([]string, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	typeName, err := p.ident()
	if err != nil {
		return nil, fmt.Errorf("sqlddl: column %s.%s: %w", table, name, err)
	}
	if p.accept("(") { // varchar(40), decimal(10,2)
		p.skipParens()
	}
	tbl := b.tables[lower(table)]
	col := b.schema.AddChild(tbl, name, model.KindColumn)
	col.Type = model.ParseDataType(typeName)
	b.columns[lower(table)][lower(name)] = col

	var pk []string
	for {
		switch {
		case p.acceptKw("NOT"):
			if err := p.expect("NULL"); err != nil {
				return nil, err
			}
			col.Optional = false
		case p.acceptKw("NULL"):
			col.Optional = true
		case p.acceptKw("PRIMARY"):
			if err := p.expect("KEY"); err != nil {
				return nil, err
			}
			pk = append(pk, name)
		case p.acceptKw("UNIQUE"):
		case p.acceptKw("DEFAULT"):
			p.next() // skip the default value
		case p.acceptKw("REFERENCES"):
			if err := b.references(p, table, []string{name}); err != nil {
				return nil, err
			}
		default:
			return pk, nil
		}
	}
}

// columnList parses "(a, b, c)".
func (b *builder) columnList(p *parser) ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.accept(",") {
			continue
		}
		return cols, p.expect(")")
	}
}

// references parses "REFERENCES table [(cols)]" after the keyword and
// records a pending foreign key (resolved after all tables are parsed).
func (b *builder) references(p *parser, fromTable string, cols []string) error {
	target, err := p.ident()
	if err != nil {
		return err
	}
	fk := pendingFK{fromTable: fromTable, columns: cols, toTable: target}
	if p.accept("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return err
			}
			fk.toColumns = append(fk.toColumns, c)
			if p.accept(",") {
				continue
			}
			if err := p.expect(")"); err != nil {
				return err
			}
			break
		}
	}
	b.fks = append(b.fks, fk)
	return nil
}

// primaryKey materializes the key element for a table: a not-instantiated
// KindKey child that aggregates the key columns (paper §8.1: a compound
// key aggregates columns of its table).
func (b *builder) primaryKey(table string, cols []string) error {
	tbl := b.tables[lower(table)]
	key := b.schema.AddChild(tbl, table+"-pk", model.KindKey)
	key.NotInstantiated = true
	for _, c := range cols {
		col := b.columns[lower(table)][lower(c)]
		if col == nil {
			return fmt.Errorf("sqlddl: primary key of %s names unknown column %q", table, c)
		}
		col.IsKey = true
		if err := b.schema.Aggregate(key, col); err != nil {
			return err
		}
	}
	b.pks[lower(table)] = key
	return nil
}

func (b *builder) resolveFK(fk pendingFK) error {
	from := b.tables[lower(fk.fromTable)]
	to := b.tables[lower(fk.toTable)]
	if from == nil || to == nil {
		return fmt.Errorf("sqlddl: foreign key %s -> %s: unknown table", fk.fromTable, fk.toTable)
	}
	var sources []*model.Element
	for _, c := range fk.columns {
		col := b.columns[lower(fk.fromTable)][lower(c)]
		if col == nil {
			return fmt.Errorf("sqlddl: foreign key of %s names unknown column %q", fk.fromTable, c)
		}
		sources = append(sources, col)
	}
	// The RefInt references the target's primary key element when one
	// exists (Figure 5), else the target table itself.
	var target *model.Element = to
	if pk := b.pks[lower(fk.toTable)]; pk != nil {
		target = pk
	}
	name := fmt.Sprintf("%s-%s-fk", fk.fromTable, fk.toTable)
	_, err := b.schema.AddRefInt(name, sources, target)
	return err
}

// view parses "name AS SELECT t.c, t2.c2 FROM ..." (everything after the
// select list through the closing semicolon is skipped). The view becomes
// a KindView element aggregating the selected columns.
func (b *builder) view(p *parser) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("AS"); err != nil {
		return err
	}
	if err := p.expect("SELECT"); err != nil {
		return err
	}
	v := b.schema.AddChild(b.schema.Root(), name, model.KindView)
	v.NotInstantiated = true
	b.nViews++
	for {
		tbl, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("."); err != nil {
			return err
		}
		colName, err := p.ident()
		if err != nil {
			return err
		}
		col := b.columns[lower(tbl)][lower(colName)]
		if col == nil {
			return fmt.Errorf("sqlddl: view %s selects unknown column %s.%s", name, tbl, colName)
		}
		if err := b.schema.Aggregate(v, col); err != nil {
			return err
		}
		if p.accept(",") {
			continue
		}
		break
	}
	// Skip the rest of the statement (FROM ... WHERE ...).
	for !p.eof() && !p.accept(";") {
		p.next()
	}
	return nil
}
