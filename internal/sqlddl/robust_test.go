package sqlddl

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: the DDL parser never panics, whatever the input — it either
// builds a valid schema or returns an error.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		schema, err := Parse("F", s)
		if err == nil && schema.Validate() != nil {
			return false // parsed but invalid
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Targeted near-miss inputs built from DDL fragments.
	fragments := []string{
		"CREATE", "TABLE", "(", ")", ",", ";", "PRIMARY KEY", "FOREIGN KEY",
		"REFERENCES", "INT", "VARCHAR(10)", "x", "'", `"`, "--", "\n",
	}
	var b strings.Builder
	for i := 0; i < 200; i++ {
		b.WriteString(fragments[(i*7+3)%len(fragments)])
		b.WriteByte(' ')
		if i%17 == 0 {
			if !f(b.String()) {
				t.Fatalf("panic on fragment soup: %q", b.String())
			}
		}
	}
}
