package sqlddl

import (
	"testing"

	"repro/internal/model"
)

func TestColumnModifiers(t *testing.T) {
	s, err := Parse("DB", `
CREATE TABLE T (
    A INT UNIQUE,
    B INT DEFAULT 7,
    C VARCHAR(10) NOT NULL UNIQUE,
    D INT PRIMARY KEY
);`)
	if err != nil {
		t.Fatal(err)
	}
	d := find(s, "DB.T.D")
	if d == nil || !d.IsKey {
		t.Error("column-level primary key not applied")
	}
	c := find(s, "DB.T.C")
	if c == nil || c.Optional {
		t.Error("NOT NULL UNIQUE column mis-parsed")
	}
	if b := find(s, "DB.T.B"); b == nil {
		t.Error("DEFAULT column lost")
	}
}

func TestUniqueAndCheckClauses(t *testing.T) {
	s, err := Parse("DB", `
CREATE TABLE T (
    A INT,
    UNIQUE (A),
    CHECK (A > 0)
);`)
	if err != nil {
		t.Fatal(err)
	}
	if find(s, "DB.T.A") == nil {
		t.Errorf("column lost around table-level UNIQUE/CHECK:\n%s", s.Dump())
	}
}

func TestCompoundForeignKey(t *testing.T) {
	s, err := Parse("DB", `
CREATE TABLE A (X INT, Y INT, PRIMARY KEY (X, Y));
CREATE TABLE B (
    PX INT,
    PY INT,
    FOREIGN KEY (PX, PY) REFERENCES A (X, Y)
);`)
	if err != nil {
		t.Fatal(err)
	}
	ri := find(s, "DB.B-A-fk")
	if ri == nil {
		t.Fatalf("compound fk missing:\n%s", s.Dump())
	}
	if len(ri.Aggregates()) != 2 {
		t.Errorf("compound fk sources = %d, want 2", len(ri.Aggregates()))
	}
	if ri.References()[0].Kind != model.KindKey {
		t.Error("compound fk should reference the compound pk element")
	}
}

func TestViewSkipsWhereClause(t *testing.T) {
	s, err := Parse("DB", `
CREATE TABLE T (A INT, B INT);
CREATE VIEW V AS SELECT T.A FROM T WHERE T.B > 10 AND T.A < 5;
CREATE TABLE After (C INT);`)
	if err != nil {
		t.Fatal(err)
	}
	if find(s, "DB.After.C") == nil {
		t.Errorf("statement after view lost:\n%s", s.Dump())
	}
	v := find(s, "DB.V")
	if v == nil || len(v.Aggregates()) != 1 {
		t.Errorf("view mis-parsed: %v", v)
	}
}

func TestTruncatedStatements(t *testing.T) {
	for _, ddl := range []string{
		`CREATE TABLE T (A`,
		`CREATE TABLE T (A INT, PRIMARY`,
		`CREATE TABLE T (A INT REFERENCES`,
		`CREATE VIEW V AS`,
		`CREATE VIEW V AS SELECT T.`,
		`CREATE TABLE T (A INT, FOREIGN KEY (A) REFERENCES B (`,
	} {
		if _, err := Parse("DB", ddl); err == nil {
			t.Errorf("truncated DDL accepted: %q", ddl)
		}
	}
}
