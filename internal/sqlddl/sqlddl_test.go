package sqlddl

import (
	"strings"
	"testing"

	"repro/internal/model"
)

const sample = `
-- Northwind-ish fragment
CREATE TABLE Customers (
    CustomerID INT PRIMARY KEY,
    CompanyName VARCHAR(80) NOT NULL,
    City VARCHAR(40) NULL,
    PostalCode VARCHAR(10)
);

CREATE TABLE Orders (
    OrderID INT PRIMARY KEY,
    CustomerID INT REFERENCES Customers (CustomerID),
    OrderDate DATE,
    Freight DECIMAL(10,2) DEFAULT 0
);

CREATE TABLE OrderDetails (
    OrderID INT,
    ProductID INT,
    Quantity INT NOT NULL,
    PRIMARY KEY (OrderID, ProductID),
    FOREIGN KEY (OrderID) REFERENCES Orders (OrderID)
);
`

func find(s *model.Schema, path string) *model.Element {
	var out *model.Element
	model.PreOrder(s.Root(), func(e *model.Element) {
		if e.Path() == path {
			out = e
		}
	})
	return out
}

func TestParseTablesAndColumns(t *testing.T) {
	s, err := Parse("DB", sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Root().Children()) < 3 {
		t.Fatalf("tables = %d, want >= 3\n%s", len(s.Root().Children()), s.Dump())
	}
	cid := find(s, "DB.Customers.CustomerID")
	if cid == nil {
		t.Fatal("Customers.CustomerID missing")
	}
	if cid.Type != model.DTInt {
		t.Errorf("CustomerID type = %v", cid.Type)
	}
	if !cid.IsKey {
		t.Error("CustomerID should be a key column")
	}
	city := find(s, "DB.Customers.City")
	if city == nil || !city.Optional {
		t.Error("City should be optional (explicit NULL)")
	}
	cn := find(s, "DB.Customers.CompanyName")
	if cn == nil || cn.Optional {
		t.Error("CompanyName NOT NULL should not be optional")
	}
	f := find(s, "DB.Orders.Freight")
	if f == nil || f.Type != model.DTDecimal {
		t.Errorf("Freight = %v", f)
	}
	if d := find(s, "DB.Orders.OrderDate"); d == nil || d.Type != model.DTDate {
		t.Errorf("OrderDate = %v", d)
	}
}

func TestParsePrimaryKeys(t *testing.T) {
	s, err := Parse("DB", sample)
	if err != nil {
		t.Fatal(err)
	}
	// Compound primary key on OrderDetails aggregates both columns.
	key := find(s, "DB.OrderDetails.OrderDetails-pk")
	if key == nil {
		t.Fatalf("OrderDetails pk missing\n%s", s.Dump())
	}
	if !key.NotInstantiated || key.Kind != model.KindKey {
		t.Error("pk should be a not-instantiated key element")
	}
	if len(key.Aggregates()) != 2 {
		t.Errorf("compound pk aggregates %d columns, want 2", len(key.Aggregates()))
	}
}

func TestParseForeignKeys(t *testing.T) {
	s, err := Parse("DB", sample)
	if err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	if st.RefInts != 2 {
		t.Fatalf("RefInts = %d, want 2 (column-level + table-level)", st.RefInts)
	}
	ri := find(s, "DB.Orders-Customers-fk")
	if ri == nil {
		t.Fatalf("Orders-Customers-fk missing\n%s", s.Dump())
	}
	if len(ri.Aggregates()) != 1 || ri.Aggregates()[0].Name != "CustomerID" {
		t.Errorf("fk sources = %v", ri.Aggregates())
	}
	// References the target's primary key element (Figure 5).
	if len(ri.References()) != 1 || ri.References()[0].Kind != model.KindKey {
		t.Errorf("fk target = %v, want key element", ri.References())
	}
}

func TestParseView(t *testing.T) {
	ddl := sample + `
CREATE VIEW OrderSummary AS SELECT Orders.OrderID, Customers.CompanyName
FROM Orders, Customers WHERE Orders.CustomerID = Customers.CustomerID;
`
	s, err := Parse("DB", ddl)
	if err != nil {
		t.Fatal(err)
	}
	v := find(s, "DB.OrderSummary")
	if v == nil || v.Kind != model.KindView {
		t.Fatalf("view missing\n%s", s.Dump())
	}
	if len(v.Aggregates()) != 2 {
		t.Errorf("view aggregates %d, want 2", len(v.Aggregates()))
	}
}

func TestParseConstraintClause(t *testing.T) {
	ddl := `
CREATE TABLE A (X INT, Y INT, CONSTRAINT pk_a PRIMARY KEY (X));
CREATE TABLE B (Z INT, CONSTRAINT fk_b FOREIGN KEY (Z) REFERENCES A (X));
`
	s, err := Parse("DB", ddl)
	if err != nil {
		t.Fatal(err)
	}
	x := find(s, "DB.A.X")
	if x == nil || !x.IsKey {
		t.Error("constraint-clause primary key not applied")
	}
	if s.ComputeStats().RefInts != 1 {
		t.Error("constraint-clause foreign key not applied")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown statement": `DROP TABLE x;`,
		"unknown create":    `CREATE INDEX foo;`,
		"duplicate table":   `CREATE TABLE A (X INT); CREATE TABLE A (Y INT);`,
		"fk unknown table":  `CREATE TABLE A (X INT REFERENCES Nope (Y));`,
		"fk unknown column": `CREATE TABLE A (X INT); CREATE TABLE B (Y INT, FOREIGN KEY (Q) REFERENCES A);`,
		"pk unknown column": `CREATE TABLE A (X INT, PRIMARY KEY (Zed));`,
		"view unknown col":  `CREATE TABLE A (X INT); CREATE VIEW V AS SELECT A.Nope FROM A;`,
		"truncated":         `CREATE TABLE A (X INT`,
	}
	for name, ddl := range cases {
		if _, err := Parse("DB", ddl); err == nil {
			t.Errorf("%s: Parse accepted %q", name, ddl)
		}
	}
}

func TestLexerHandlesQuotesAndComments(t *testing.T) {
	ddl := `
CREATE TABLE "Order Items" ( -- quoted name with space
  'Weird Col' INT
);`
	s, err := Parse("DB", ddl)
	if err != nil {
		t.Fatal(err)
	}
	if find(s, "DB.Order Items.Weird Col") == nil {
		t.Errorf("quoted identifiers lost:\n%s", s.Dump())
	}
}

func TestRoundTripThroughTree(t *testing.T) {
	// The imported schema must expand into a schema tree with join views.
	s, err := Parse("DB", sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	d := s.Dump()
	if !strings.Contains(d, "Customers") || !strings.Contains(d, "(not-instantiated)") {
		t.Errorf("Dump unexpected:\n%s", d)
	}
}
