package sqlddl

import (
	"strings"
	"testing"

	"repro/internal/schematree"
)

// FuzzParseSQL asserts the importer's crash-freedom contract: no input
// panics, and every accepted DDL script yields a schema that validates and
// expands through schematree.Build (the Prepare pipeline's per-schema
// phase), tolerating only the deliberate node-cap rejection.
func FuzzParseSQL(f *testing.F) {
	f.Add("CREATE TABLE T (X INT);")
	f.Add("CREATE TABLE Orders (ID INT PRIMARY KEY, Total DECIMAL(10,2), Placed TIMESTAMP NOT NULL);")
	f.Add("CREATE TABLE A (ID INT PRIMARY KEY); CREATE TABLE B (AID INT REFERENCES A (ID));")
	f.Add("CREATE TABLE C (N VARCHAR(40) UNIQUE, CONSTRAINT pk PRIMARY KEY (N));")
	f.Add("-- comment\nCREATE TABLE D (V DOUBLE DEFAULT 0.5);")
	f.Add("CREATE TABLE")
	f.Add("DROP EVERYTHING;")
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 64<<10 {
			t.Skip("oversized input")
		}
		s, err := Parse("fuzz", data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted schema fails validation: %v", err)
		}
		if _, err := schematree.Build(s, schematree.Options{MaxNodes: 4096}); err != nil &&
			!strings.Contains(err.Error(), "exceeds") {
			t.Fatalf("accepted schema fails tree expansion: %v", err)
		}
	})
}
