// Package instance computes per-leaf value profiles from sampled instance
// data attached at schema registration, and the profile-compatibility
// score that sharpens leaf matching beyond declared datatypes — the
// "instance-level matching" the paper's future-work section points at and
// the heterogeneous-database scenario needs (two columns both declared
// VARCHAR still differ observably when one holds ISO dates and the other
// free text).
//
// A profile summarizes one leaf's sample column: inferred broad type, null
// rate, mean value length, numeric moments, distinct count and a top-k
// value sketch. Profiles are deliberately order-independent — samples are
// sorted canonically before any accumulation, so every permutation of the
// same multiset produces a bit-identical profile (and hence a stable
// Hash, which participates in registry entry identity).
package instance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
)

// Caps on the accepted instance payload. Registrations exceeding them are
// rejected at the door (and hence never journaled): the WAL stores the
// payload verbatim, so the caps bound both the record size and the
// recovery-time profiling cost.
const (
	// MaxLeaves is the maximum number of leaf paths one payload may carry.
	MaxLeaves = 256
	// MaxSamplesPerLeaf is the maximum sample count per leaf.
	MaxSamplesPerLeaf = 1024
	// MaxValueBytes is the maximum canonical length of a single value.
	MaxValueBytes = 256
	// TopK is how many most-frequent values a profile sketches.
	TopK = 8
)

// BlendWeight is the share of the profile-compatibility term in the
// blended leaf initialization: blended = (1-w)·table + w·(0.5·profile).
// At 0.5 the declared-type table and the observed-value profile carry
// equal weight — enough for profiles to break name-and-type ties without
// overruling a strong declared-type disagreement.
const BlendWeight = 0.5

// Sample is one sampled value in canonical text form. Numbers keep their
// JSON literal text, booleans are "true"/"false".
type Sample struct {
	// Null marks an explicit null sample (Text is empty).
	Null bool
	// Text is the canonical text of the value.
	Text string
}

// Samples maps a leaf's containment path (with or without the schema-name
// prefix, e.g. "Orders.Amount") to its sampled column.
type Samples map[string][]Sample

// ParseSamples decodes and validates an instances payload: a JSON object
// mapping leaf paths to arrays of scalar samples (strings, numbers,
// booleans, nulls), e.g.
//
//	{"Orders.Amount": [12.5, 99, null], "Orders.Status": ["open", "shipped"]}
//
// The caps (MaxLeaves, MaxSamplesPerLeaf, MaxValueBytes) are enforced
// here, so a payload that parsed once parses forever — the WAL journals it
// verbatim and recovery re-parses it. Empty input yields nil Samples.
func ParseSamples(data []byte) (Samples, error) {
	if len(data) == 0 {
		return nil, nil
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var raw map[string][]any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("instance: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("instance: trailing data after payload")
	}
	if len(raw) > MaxLeaves {
		return nil, fmt.Errorf("instance: %d leaf paths exceed the cap of %d", len(raw), MaxLeaves)
	}
	out := make(Samples, len(raw))
	for path, col := range raw {
		if len(col) > MaxSamplesPerLeaf {
			return nil, fmt.Errorf("instance: %d samples for %q exceed the cap of %d", len(col), path, MaxSamplesPerLeaf)
		}
		ss := make([]Sample, 0, len(col))
		for i, v := range col {
			s, err := canonical(v)
			if err != nil {
				return nil, fmt.Errorf("instance: %q sample %d: %w", path, i, err)
			}
			if len(s.Text) > MaxValueBytes {
				return nil, fmt.Errorf("instance: %q sample %d exceeds %d bytes", path, i, MaxValueBytes)
			}
			ss = append(ss, s)
		}
		out[path] = ss
	}
	return out, nil
}

// canonical converts one decoded JSON value into its canonical sample.
func canonical(v any) (Sample, error) {
	switch t := v.(type) {
	case nil:
		return Sample{Null: true}, nil
	case string:
		return Sample{Text: t}, nil
	case json.Number:
		return Sample{Text: t.String()}, nil
	case bool:
		if t {
			return Sample{Text: "true"}, nil
		}
		return Sample{Text: "false"}, nil
	default:
		return Sample{}, fmt.Errorf("value %v is not a scalar (objects and arrays are not sampleable)", v)
	}
}

// ValueCount is one entry of a profile's top-k sketch.
type ValueCount struct {
	Value string
	Count int
}

// Profile summarizes one leaf's sample column. All fields are derived from
// the sample multiset only — never from sample order.
type Profile struct {
	// Count is the total number of samples, nulls included.
	Count int
	// Nulls is the number of explicit null samples.
	Nulls int
	// Type is the broad type inferred from the non-null values.
	Type model.DataType
	// Distinct is the number of distinct non-null values.
	Distinct int
	// MeanLen is the mean canonical-text length of non-null values.
	MeanLen float64
	// NumFrac is the fraction of non-null values that parse as numbers.
	NumFrac float64
	// MeanNum and StdNum are the moments of the numeric-parsing values.
	MeanNum, StdNum float64
	// Top holds the most frequent values, by descending count then value.
	Top []ValueCount
}

// NullRate returns the fraction of samples that were null.
func (p *Profile) NullRate() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Nulls) / float64(p.Count)
}

// Build computes the profile of one sample column. Order-independent by
// construction: the non-null values are sorted before any accumulation,
// so float summation order is a function of the multiset alone.
func Build(samples []Sample) *Profile {
	p := &Profile{Count: len(samples)}
	vals := make([]string, 0, len(samples))
	for _, s := range samples {
		if s.Null {
			p.Nulls++
			continue
		}
		vals = append(vals, s.Text)
	}
	sort.Strings(vals)
	if len(vals) == 0 {
		return p
	}

	var typeCounts [model.NumDataTypes]int
	var lenSum float64
	var nums []float64
	counts := map[string]int{}
	for _, v := range vals {
		typeCounts[classify(v)]++
		lenSum += float64(len(v))
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			nums = append(nums, f)
		}
		counts[v]++
	}
	p.Distinct = len(counts)
	p.MeanLen = lenSum / float64(len(vals))
	p.NumFrac = float64(len(nums)) / float64(len(vals))
	if len(nums) > 0 {
		var sum float64
		for _, f := range nums {
			sum += f
		}
		p.MeanNum = sum / float64(len(nums))
		var sq float64
		for _, f := range nums {
			d := f - p.MeanNum
			sq += d * d
		}
		p.StdNum = math.Sqrt(sq / float64(len(nums)))
	}

	best, bestN := model.DTString, 0
	for dt := model.DataType(0); dt < model.NumDataTypes; dt++ {
		if typeCounts[dt] > bestN {
			best, bestN = dt, typeCounts[dt]
		}
	}
	p.Type = best
	// A short, heavily repeated vocabulary of strings is an enumeration in
	// all but declaration ("open"/"closed"/"shipped" status columns).
	if p.Type == model.DTString && p.Distinct <= 16 && p.Distinct*4 <= len(vals) {
		p.Type = model.DTEnum
	}

	top := make([]ValueCount, 0, len(counts))
	for v, n := range counts {
		top = append(top, ValueCount{Value: v, Count: n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Count != top[j].Count {
			return top[i].Count > top[j].Count
		}
		return top[i].Value < top[j].Value
	})
	if len(top) > TopK {
		top = top[:TopK]
	}
	p.Top = top
	return p
}

// classify infers the broad type of one canonical value.
func classify(v string) model.DataType {
	if v == "true" || v == "false" {
		return model.DTBool
	}
	if _, err := strconv.ParseInt(v, 10, 64); err == nil {
		return model.DTInt
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return model.DTFloat
	}
	for _, layout := range []string{"2006-01-02"} {
		if _, err := time.Parse(layout, v); err == nil {
			return model.DTDate
		}
	}
	for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02T15:04:05"} {
		if _, err := time.Parse(layout, v); err == nil {
			return model.DTDateTime
		}
	}
	if _, err := time.Parse("15:04:05", v); err == nil {
		return model.DTTime
	}
	return model.DTString
}

// Profiles maps leaf paths to their computed profiles.
type Profiles map[string]*Profile

// BuildProfiles profiles every sampled column.
func BuildProfiles(s Samples) Profiles {
	if len(s) == 0 {
		return nil
	}
	out := make(Profiles, len(s))
	for path, col := range s {
		out[path] = Build(col)
	}
	return out
}

// Compat scores how compatible two observed value distributions look, in
// [0,1]: inferred-type agreement, null-rate proximity, mean-length ratio,
// numeric-moment proximity, and top-k value overlap. It is symmetric and
// deterministic (pure float arithmetic over profile fields).
func Compat(a, b *Profile) float64 {
	if a == nil || b == nil || a.Count == 0 || b.Count == 0 {
		return 0
	}
	typeSim := 0.15
	switch {
	case a.Type == b.Type:
		typeSim = 1
	case a.Type.IsNumeric() && b.Type.IsNumeric():
		typeSim = 0.75
	case a.Type.IsTemporal() && b.Type.IsTemporal():
		typeSim = 0.75
	case (a.Type == model.DTEnum && b.Type == model.DTString) ||
		(a.Type == model.DTString && b.Type == model.DTEnum):
		typeSim = 0.6
	}
	nullSim := 1 - math.Abs(a.NullRate()-b.NullRate())
	lenSim := ratio(a.MeanLen+1, b.MeanLen+1)
	numSim := lenSim
	if a.NumFrac > 0.5 && b.NumFrac > 0.5 {
		scale := math.Max(math.Max(math.Abs(a.MeanNum), math.Abs(b.MeanNum)),
			math.Max(a.StdNum, b.StdNum))
		if scale < 1 {
			scale = 1
		}
		numSim = 1 / (1 + math.Abs(a.MeanNum-b.MeanNum)/scale)
	}
	topSim := jaccard(a.Top, b.Top)
	return 0.35*typeSim + 0.15*nullSim + 0.15*lenSim + 0.15*numSim + 0.20*topSim
}

func ratio(a, b float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b == 0 {
		return 1
	}
	return a / b
}

func jaccard(a, b []ValueCount) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, v := range a {
		set[v.Value] = true
	}
	inter := 0
	for _, v := range b {
		if set[v.Value] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// BlendCompat mixes the declared-type table compatibility (in [0, 0.5])
// with a profile compatibility (in [0, 1]) into a blended leaf
// initialization, still in [0, 0.5].
func BlendCompat(table, profile float64) float64 {
	return (1-BlendWeight)*table + BlendWeight*(0.5*profile)
}

// Hash returns a stable content hash of a profile set: sorted by path,
// every derived field written in a canonical binary form. Because Build is
// order-independent, any permutation of the same sample multiset hashes
// identically; the registry mixes this hash into entry identity so that
// re-registering the same schema with the same samples stays idempotent
// while changed samples replace the entry.
func (ps Profiles) Hash() string {
	if len(ps) == 0 {
		return ""
	}
	paths := make([]string, 0, len(ps))
	for p := range ps {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, path := range paths {
		p := ps[path]
		writeStr(h, path)
		writeInt(h, p.Count)
		writeInt(h, p.Nulls)
		writeInt(h, int(p.Type))
		writeInt(h, p.Distinct)
		writeFloat(h, p.MeanLen)
		writeFloat(h, p.NumFrac)
		writeFloat(h, p.MeanNum)
		writeFloat(h, p.StdNum)
		writeInt(h, len(p.Top))
		for _, vc := range p.Top {
			writeStr(h, vc.Value)
			writeInt(h, vc.Count)
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

func writeStr(h hash.Hash, s string) {
	writeInt(h, len(s))
	h.Write([]byte(s))
}

func writeInt(h hash.Hash, v int) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(int64(v)) >> (8 * i))
	}
	h.Write(b[:])
}

func writeFloat(h hash.Hash, f float64) {
	writeInt(h, int(int64(math.Float64bits(f))))
}
