package instance

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestParseSamples(t *testing.T) {
	data := []byte(`{
		"Orders.Amount": [12.5, 99, null, 7],
		"Orders.Status": ["open", "shipped", "open"],
		"Orders.Active": [true, false]
	}`)
	s, err := ParseSamples(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 {
		t.Fatalf("parsed %d columns, want 3", len(s))
	}
	amt := s["Orders.Amount"]
	if len(amt) != 4 || !amt[2].Null || amt[0].Text != "12.5" {
		t.Errorf("Orders.Amount = %+v", amt)
	}
	if got := s["Orders.Active"][0].Text; got != "true" {
		t.Errorf("bool canonical text = %q, want true", got)
	}
	if got, err := ParseSamples(nil); got != nil || err != nil {
		t.Errorf("empty payload: got %v, %v", got, err)
	}
}

func TestParseSamplesCaps(t *testing.T) {
	// One column over the per-leaf sample cap.
	var b strings.Builder
	b.WriteString(`{"c": [`)
	for i := 0; i <= MaxSamplesPerLeaf; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("1")
	}
	b.WriteString(`]}`)
	if _, err := ParseSamples([]byte(b.String())); err == nil {
		t.Error("over-cap sample count accepted")
	}
	// A single oversized value.
	long := strings.Repeat("x", MaxValueBytes+1)
	if _, err := ParseSamples([]byte(`{"c": ["` + long + `"]}`)); err == nil {
		t.Error("over-cap value length accepted")
	}
	// Non-scalar sample.
	if _, err := ParseSamples([]byte(`{"c": [{"nested": 1}]}`)); err == nil {
		t.Error("non-scalar sample accepted")
	}
	// Too many leaves.
	b.Reset()
	b.WriteString("{")
	for i := 0; i <= MaxLeaves; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`"c`)
		for d := i; d > 0; d /= 10 {
			b.WriteByte(byte('0' + d%10))
		}
		b.WriteString(`": [1]`)
	}
	b.WriteString("}")
	if _, err := ParseSamples([]byte(b.String())); err == nil {
		t.Error("over-cap leaf count accepted")
	}
}

func TestBuildInference(t *testing.T) {
	cases := []struct {
		name string
		col  []Sample
		want model.DataType
	}{
		{"ints", []Sample{{Text: "1"}, {Text: "42"}, {Text: "-7"}}, model.DTInt},
		{"floats", []Sample{{Text: "1.5"}, {Text: "2.25"}, {Text: "3"}}, model.DTFloat},
		{"bools", []Sample{{Text: "true"}, {Text: "false"}}, model.DTBool},
		{"dates", []Sample{{Text: "2024-01-02"}, {Text: "2023-12-31"}}, model.DTDate},
		{"datetimes", []Sample{{Text: "2024-01-02T10:00:00Z"}, {Text: "2024-01-02 10:00:00"}}, model.DTDateTime},
		{"times", []Sample{{Text: "10:00:00"}, {Text: "23:59:59"}}, model.DTTime},
		{"strings", []Sample{{Text: "alpha"}, {Text: "beta"}, {Text: "gamma"}}, model.DTString},
	}
	for _, c := range cases {
		if got := Build(c.col).Type; got != c.want {
			t.Errorf("%s: inferred %v, want %v", c.name, got, c.want)
		}
	}
	// A tiny repeated vocabulary reads as an enumeration.
	var status []Sample
	for i := 0; i < 40; i++ {
		status = append(status, Sample{Text: []string{"open", "closed", "shipped"}[i%3]})
	}
	if got := Build(status).Type; got != model.DTEnum {
		t.Errorf("status vocabulary inferred %v, want enum", got)
	}
}

// TestBuildOrderIndependent is the order-independence property: every
// permutation of the same sample multiset yields a bit-identical profile.
func TestBuildOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := []Sample{
		{Text: "12.5"}, {Text: "99"}, {Null: true}, {Text: "7"}, {Text: "12.5"},
		{Text: "0.001"}, {Null: true}, {Text: "-4"}, {Text: "1e3"}, {Text: "99"},
	}
	ref := Build(base)
	for trial := 0; trial < 50; trial++ {
		perm := make([]Sample, len(base))
		copy(perm, base)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := Build(perm)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("trial %d: profile differs under permutation:\nref %+v\ngot %+v", trial, ref, got)
		}
	}
	// Hash stability follows.
	a := Profiles{"p": ref}
	b := Profiles{"p": Build(base)}
	if a.Hash() != b.Hash() {
		t.Error("hash differs for identical profiles")
	}
	if a.Hash() == "" {
		t.Error("non-empty profiles hash to empty string")
	}
	if (Profiles{}).Hash() != "" {
		t.Error("empty profiles should hash to empty string")
	}
}

func TestCompat(t *testing.T) {
	ints := Build([]Sample{{Text: "10"}, {Text: "20"}, {Text: "30"}})
	ints2 := Build([]Sample{{Text: "12"}, {Text: "18"}, {Text: "33"}})
	dates := Build([]Sample{{Text: "2024-01-02"}, {Text: "2023-05-06"}})
	words := Build([]Sample{{Text: "alpha"}, {Text: "beta"}, {Text: "gamma"}})

	if got := Compat(ints, ints2); got <= Compat(ints, words) {
		t.Errorf("similar numeric columns (%f) should beat numeric-vs-text (%f)", got, Compat(ints, words))
	}
	if got := Compat(dates, words); got >= Compat(dates, dates) {
		t.Errorf("dates-vs-text (%f) should trail dates-vs-dates (%f)", got, Compat(dates, dates))
	}
	if a, b := Compat(ints, words), Compat(words, ints); a != b {
		t.Errorf("Compat not symmetric: %f vs %f", a, b)
	}
	if got := Compat(nil, ints); got != 0 {
		t.Errorf("nil profile compat = %f, want 0", got)
	}
	if got := Compat(ints, ints); got < 0.9 || got > 1 {
		t.Errorf("self compat = %f, want close to 1", got)
	}
}

func TestBlendCompatRange(t *testing.T) {
	for _, table := range []float64{0, 0.25, 0.5} {
		for _, prof := range []float64{0, 0.5, 1} {
			v := BlendCompat(table, prof)
			if v < 0 || v > 0.5 {
				t.Errorf("BlendCompat(%f, %f) = %f out of [0, 0.5]", table, prof, v)
			}
		}
	}
	// Higher profile compatibility must strictly increase the blend — the
	// tie-breaking property.
	if BlendCompat(0.3, 0.9) <= BlendCompat(0.3, 0.1) {
		t.Error("profile compatibility does not break ties")
	}
}
