package model

import (
	"math"
	"reflect"
	"testing"
)

func TestNewSignatureSortsAndDedups(t *testing.T) {
	s := NewSignature(4, 2, []string{"order", "city", "order", "amount", "city"})
	want := []string{"amount", "city", "order"}
	if !reflect.DeepEqual(s.Tokens, want) {
		t.Errorf("Tokens = %v, want %v", s.Tokens, want)
	}
	if s.Elements != 4 || s.Leaves != 2 {
		t.Errorf("sizes = (%d,%d), want (4,2)", s.Elements, s.Leaves)
	}
}

func TestNewWeightedSignatureSortsDedupsKeepsMaxWeight(t *testing.T) {
	s := NewWeightedSignature(4, 2,
		[]string{"order", "city", "order", "amount", "city"},
		[]float64{0.5, 1, 1, 0.25, 0.5})
	wantT := []string{"amount", "city", "order"}
	wantW := []float64{0.25, 1, 1}
	if !reflect.DeepEqual(s.Tokens, wantT) {
		t.Errorf("Tokens = %v, want %v", s.Tokens, wantT)
	}
	if !reflect.DeepEqual(s.Weights, wantW) {
		t.Errorf("Weights = %v, want %v", s.Weights, wantW)
	}
	// Input order must not matter (stability: registration-order
	// independence is what the index's remove/re-add path relies on).
	r := NewWeightedSignature(4, 2,
		[]string{"city", "amount", "order", "city", "order"},
		[]float64{0.5, 0.25, 1, 1, 0.5})
	if !reflect.DeepEqual(r, s) {
		t.Errorf("reordered input built %+v, want %+v", r, s)
	}
}

func TestSignatureWeightDefaultsToOne(t *testing.T) {
	s := Signature{Tokens: []string{"a", "b"}}
	if w := s.Weight(1); w != 1 {
		t.Errorf("unweighted Weight(1) = %v, want 1", w)
	}
	u := NewSignature(0, 0, []string{"a", "b"})
	for i := range u.Tokens {
		if u.Weight(i) != 1 {
			t.Errorf("NewSignature weight[%d] = %v, want 1", i, u.Weight(i))
		}
	}
}

func TestWeightsDoNotChangeJaccardOrAffinity(t *testing.T) {
	a := NewSignature(5, 4, []string{"purchase", "order", "city"})
	b := NewWeightedSignature(5, 4,
		[]string{"purchase", "order", "city"}, []float64{0.25, 0.5, 1})
	c := NewSignature(6, 5, []string{"order", "city", "zip"})
	if a.TokenJaccard(c) != b.TokenJaccard(c) {
		t.Errorf("TokenJaccard depends on weights: %v vs %v", a.TokenJaccard(c), b.TokenJaccard(c))
	}
	if a.Affinity(c) != b.Affinity(c) {
		t.Errorf("Affinity depends on weights: %v vs %v", a.Affinity(c), b.Affinity(c))
	}
}

func TestSizeSim(t *testing.T) {
	cases := []struct {
		a, b int
		want float64
	}{
		{10, 10, 1},
		{9, 19, 0.5},
		{0, 0, 1}, // empty trees compare equal, no division by zero
		{0, 9, 0.1},
	}
	for _, c := range cases {
		a := Signature{Leaves: c.a}
		b := Signature{Leaves: c.b}
		if got := a.SizeSim(b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SizeSim(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
		if a.SizeSim(b) != b.SizeSim(a) {
			t.Errorf("SizeSim(%d,%d) not symmetric", c.a, c.b)
		}
	}
}

func TestTokenJaccard(t *testing.T) {
	sig := func(toks ...string) Signature { return NewSignature(0, 0, toks) }
	cases := []struct {
		name string
		a, b Signature
		want float64
	}{
		{"identical", sig("a", "b", "c"), sig("a", "b", "c"), 1},
		{"disjoint", sig("a", "b"), sig("c", "d"), 0},
		{"half", sig("a", "b", "c"), sig("b", "c", "d"), 0.5},
		{"both empty", sig(), sig(), 0},
		{"one empty", sig("a"), sig(), 0},
	}
	for _, c := range cases {
		if got := c.a.TokenJaccard(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: TokenJaccard = %v, want %v", c.name, got, c.want)
		}
		if c.a.TokenJaccard(c.b) != c.b.TokenJaccard(c.a) {
			t.Errorf("%s: TokenJaccard not symmetric", c.name)
		}
	}
}

func TestAffinityBoundsAndOrdering(t *testing.T) {
	near := NewSignature(10, 8, []string{"purchase", "order", "city", "street"})
	probe := NewSignature(10, 8, []string{"purchase", "order", "city", "zip"})
	far := NewSignature(100, 90, []string{"sensor", "reading", "volt"})
	if a := probe.Affinity(probe); a != 1 {
		t.Errorf("self affinity = %v, want 1", a)
	}
	an, af := probe.Affinity(near), probe.Affinity(far)
	if an <= af {
		t.Errorf("related schema (%v) must outrank unrelated (%v)", an, af)
	}
	for _, a := range []float64{an, af} {
		if a < 0 || a > 1 {
			t.Errorf("affinity %v out of [0,1]", a)
		}
	}
}
