package model

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// buildPO constructs the PO schema of the paper's Figure 1.
func buildPO(t *testing.T) *Schema {
	t.Helper()
	s := New("PO")
	lines := s.AddChild(s.Root(), "Lines", KindElement)
	item := s.AddChild(lines, "Item", KindElement)
	for _, name := range []string{"Line", "Qty", "Uom"} {
		c := s.AddChild(item, name, KindAttribute)
		c.Type = DTString
	}
	return s
}

func TestAddChildAndPaths(t *testing.T) {
	s := buildPO(t)
	if s.Len() != 6 {
		t.Fatalf("Len() = %d, want 6", s.Len())
	}
	leaves := Leaves(s.Root())
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d, want 3", len(leaves))
	}
	if got := leaves[0].Path(); got != "PO.Lines.Item.Line" {
		t.Errorf("Path() = %q, want PO.Lines.Item.Line", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDepthAndCommonAncestor(t *testing.T) {
	s := buildPO(t)
	leaves := Leaves(s.Root())
	if d := Depth(leaves[0]); d != 3 {
		t.Errorf("Depth(leaf) = %d, want 3", d)
	}
	if d := Depth(s.Root()); d != 0 {
		t.Errorf("Depth(root) = %d, want 0", d)
	}
	anc := CommonAncestor(leaves[0], leaves[1])
	if anc == nil || anc.Name != "Item" {
		t.Errorf("CommonAncestor(Line,Qty) = %v, want Item", anc)
	}
	if got := CommonAncestor(leaves[0], leaves[0]); got != leaves[0] {
		t.Errorf("CommonAncestor(x,x) = %v, want x", got)
	}
	other := New("other")
	if got := CommonAncestor(leaves[0], other.Root()); got != nil {
		t.Errorf("CommonAncestor across schemas = %v, want nil", got)
	}
}

func TestContainRejectsSecondParent(t *testing.T) {
	s := New("S")
	a := s.AddChild(s.Root(), "A", KindElement)
	b := s.AddChild(s.Root(), "B", KindElement)
	c := s.AddChild(a, "C", KindElement)
	if err := s.Contain(b, c); err == nil {
		t.Fatal("Contain accepted a second containment parent")
	}
	if err := s.Contain(a, s.Root()); err == nil {
		t.Fatal("Contain accepted containing the root")
	}
}

func TestDeriveFromSelfRejected(t *testing.T) {
	s := New("S")
	a := s.AddChild(s.Root(), "A", KindElement)
	if err := s.DeriveFrom(a, a); err == nil {
		t.Fatal("DeriveFrom accepted a self-derivation")
	}
}

func TestCrossSchemaRelationshipsRejected(t *testing.T) {
	s1 := New("S1")
	s2 := New("S2")
	a := s1.AddChild(s1.Root(), "A", KindElement)
	b := s2.AddChild(s2.Root(), "B", KindElement)
	if err := s1.Contain(a, b); err == nil {
		t.Error("Contain accepted cross-schema link")
	}
	if err := s1.DeriveFrom(a, b); err == nil {
		t.Error("DeriveFrom accepted cross-schema link")
	}
	if err := s1.Aggregate(a, b); err == nil {
		t.Error("Aggregate accepted cross-schema link")
	}
	if err := s1.Refer(a, b); err == nil {
		t.Error("Refer accepted cross-schema link")
	}
}

func TestIsLeaf(t *testing.T) {
	s := New("S")
	a := s.AddChild(s.Root(), "A", KindElement)
	leaf := s.AddChild(a, "L", KindAttribute)
	typ := s.NewElement("T", KindType)
	s.AddChild(typ, "Member", KindAttribute)
	derived := s.AddChild(a, "D", KindElement)
	if err := s.DeriveFrom(derived, typ); err != nil {
		t.Fatal(err)
	}
	if !leaf.IsLeaf() {
		t.Error("plain childless element should be a leaf")
	}
	if a.IsLeaf() {
		t.Error("element with children should not be a leaf")
	}
	if derived.IsLeaf() {
		t.Error("element deriving from a type should not be a leaf (type substitution adds members)")
	}
}

func TestAddRefInt(t *testing.T) {
	s := New("DB")
	orders := s.AddChild(s.Root(), "Orders", KindTable)
	custID := s.AddChild(orders, "CustomerID", KindColumn)
	custID.Type = DTInt
	customers := s.AddChild(s.Root(), "Customers", KindTable)
	pk := s.AddChild(customers, "CustomerID", KindColumn)
	pk.Type = DTInt
	pk.IsKey = true

	ri, err := s.AddRefInt("Orders-Customers-fk", []*Element{custID}, customers)
	if err != nil {
		t.Fatalf("AddRefInt: %v", err)
	}
	if ri.Parent() != s.Root() {
		t.Errorf("refint parent = %v, want root (common ancestor)", ri.Parent())
	}
	if !ri.NotInstantiated {
		t.Error("refint should be tagged not-instantiated")
	}
	if len(ri.Aggregates()) != 1 || ri.Aggregates()[0] != custID {
		t.Errorf("refint aggregates = %v", ri.Aggregates())
	}
	if len(ri.References()) != 1 || ri.References()[0] != customers {
		t.Errorf("refint references = %v", ri.References())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddRefIntErrors(t *testing.T) {
	s := New("DB")
	tbl := s.AddChild(s.Root(), "T", KindTable)
	if _, err := s.AddRefInt("fk", nil, tbl); err == nil {
		t.Error("AddRefInt accepted empty sources")
	}
}

func TestValidateDetectsBrokenLinks(t *testing.T) {
	s := New("S")
	a := s.AddChild(s.Root(), "A", KindElement)
	b := s.AddChild(a, "B", KindElement)
	// Corrupt: graft b under root as well, creating a duplicated containment.
	s.Root().children = append(s.Root().children, b)
	if err := s.Validate(); err == nil {
		t.Fatal("Validate missed an element contained twice")
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	s := New("S")
	a := s.AddChild(s.Root(), "A", KindElement)
	b := s.AddChild(a, "B", KindElement)
	// Corrupt: make a a child of b, forming a cycle.
	b.children = append(b.children, a)
	if err := s.Validate(); err == nil {
		t.Fatal("Validate missed a containment cycle")
	}
}

func TestPostOrderVisitsChildrenFirst(t *testing.T) {
	s := buildPO(t)
	var order []string
	PostOrder(s.Root(), func(e *Element) { order = append(order, e.Name) })
	want := []string{"Line", "Qty", "Uom", "Item", "Lines", "PO"}
	if len(order) != len(want) {
		t.Fatalf("post-order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("post-order = %v, want %v", order, want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	s := New("DB")
	t1 := s.AddChild(s.Root(), "T1", KindTable)
	c1 := s.AddChild(t1, "C1", KindColumn)
	c1.Optional = true
	t2 := s.AddChild(s.Root(), "T2", KindTable)
	k := s.AddChild(t2, "K", KindColumn)
	k.IsKey = true
	typ := s.NewElement("Addr", KindType)
	s.AddChild(typ, "Street", KindColumn)
	d1 := s.AddChild(t1, "Ship", KindElement)
	d2 := s.AddChild(t2, "Bill", KindElement)
	if err := s.DeriveFrom(d1, typ); err != nil {
		t.Fatal(err)
	}
	if err := s.DeriveFrom(d2, typ); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRefInt("fk", []*Element{c1}, t2); err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	if st.RefInts != 1 {
		t.Errorf("RefInts = %d, want 1", st.RefInts)
	}
	if st.SharedTypes != 1 {
		t.Errorf("SharedTypes = %d, want 1", st.SharedTypes)
	}
	if st.Optional != 1 {
		t.Errorf("Optional = %d, want 1", st.Optional)
	}
	if st.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", st.MaxDepth)
	}
}

func TestDumpContainsAnnotations(t *testing.T) {
	s := New("S")
	a := s.AddChild(s.Root(), "A", KindElement)
	a.Optional = true
	leaf := s.AddChild(a, "L", KindAttribute)
	leaf.Type = DTInt
	d := s.Dump()
	for _, want := range []string{"(optional)", ": int", "  A", "    L"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := New("DB")
	orders := s.AddChild(s.Root(), "Orders", KindTable)
	cid := s.AddChild(orders, "CustomerID", KindColumn)
	cid.Type = DTInt
	opt := s.AddChild(orders, "Notes", KindColumn)
	opt.Type = DTString
	opt.Optional = true
	customers := s.AddChild(s.Root(), "Customers", KindTable)
	pk := s.AddChild(customers, "CustomerID", KindColumn)
	pk.Type = DTInt
	pk.IsKey = true
	addr := s.NewElement("Address", KindType)
	s.AddChild(addr, "Street", KindColumn).Type = DTString
	ship := s.AddChild(orders, "ShipTo", KindElement)
	if err := s.DeriveFrom(ship, addr); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRefInt("Orders-Customers-fk", []*Element{cid}, customers); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	// Shared type Address is not reachable from the root; derivations must
	// still round-trip through the path map only if the type is attached.
	// Attach it under the root for serializability, rebuild and compare.
	s2 := New("DB")
	orders2 := s2.AddChild(s2.Root(), "Orders", KindTable)
	cid2 := s2.AddChild(orders2, "CustomerID", KindColumn)
	cid2.Type = DTInt
	customers2 := s2.AddChild(s2.Root(), "Customers", KindTable)
	pk2 := s2.AddChild(customers2, "CustomerID", KindColumn)
	pk2.Type = DTInt
	pk2.IsKey = true
	addr2 := s2.AddChild(s2.Root(), "Address", KindType)
	s2.AddChild(addr2, "Street", KindColumn).Type = DTString
	ship2 := s2.AddChild(orders2, "ShipTo", KindElement)
	if err := s2.DeriveFrom(ship2, addr2); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AddRefInt("Orders-Customers-fk", []*Element{cid2}, customers2); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := s2.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.Name != "DB" {
		t.Errorf("Name = %q", got.Name)
	}
	if got.Len() != s2.Len() {
		t.Errorf("Len = %d, want %d\n%s", got.Len(), s2.Len(), got.Dump())
	}
	st := got.ComputeStats()
	if st.RefInts != 1 {
		t.Errorf("round-tripped RefInts = %d, want 1", st.RefInts)
	}
	// Derivation survived.
	var shipGot *Element
	PreOrder(got.Root(), func(e *Element) {
		if e.Name == "ShipTo" {
			shipGot = e
		}
	})
	if shipGot == nil || len(shipGot.DerivedFrom()) != 1 || shipGot.DerivedFrom()[0].Name != "Address" {
		t.Errorf("derivation lost in round trip: %v", shipGot)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"empty object":     `{}`,
		"bad json":         `{`,
		"unknown field":    `{"root":{"name":"R"},"bogus":1}`,
		"unresolved deriv": `{"root":{"name":"R","children":[{"name":"A"}]},"derivations":[{"element":"R.A","type":"R.Missing"}]}`,
		"unresolved ref":   `{"root":{"name":"R","children":[{"name":"A"}]},"refints":[{"name":"fk","sources":["R.A"],"target":"R.Nope"}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJSON accepted %q", name, in)
		}
	}
}

func TestSortChildrenByName(t *testing.T) {
	s := New("S")
	for _, n := range []string{"c", "a", "b"} {
		s.AddChild(s.Root(), n, KindElement)
	}
	s.SortChildrenByName()
	got := make([]string, 0, 3)
	for _, c := range s.Root().Children() {
		got = append(got, c.Name)
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("sorted children = %v", got)
	}
}

func TestKindString(t *testing.T) {
	if KindTable.String() != "table" {
		t.Errorf("KindTable = %q", KindTable.String())
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render non-empty")
	}
	if ParseKind("TABLE") != KindTable {
		t.Error("ParseKind should be case-insensitive")
	}
	if ParseKind("nonsense") != KindOther {
		t.Error("ParseKind unknown should map to KindOther")
	}
}

// Property: IDs are dense and ElementByID is the inverse of ID().
func TestElementIDDense(t *testing.T) {
	f := func(names []string) bool {
		s := New("S")
		for _, n := range names {
			s.AddChild(s.Root(), n, KindElement)
		}
		for i, e := range s.Elements() {
			if e.ID() != i || s.ElementByID(i) != e {
				return false
			}
		}
		return s.ElementByID(-1) == nil && s.ElementByID(s.Len()) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Depth equals the number of dots in Path for single-token names.
func TestDepthMatchesPath(t *testing.T) {
	s := New("Root")
	cur := s.Root()
	for i := 0; i < 8; i++ {
		cur = s.AddChild(cur, "n", KindElement)
		if got, want := Depth(cur), strings.Count(cur.Path(), "."); got != want {
			t.Fatalf("Depth=%d, dots=%d for %q", got, want, cur.Path())
		}
	}
}
