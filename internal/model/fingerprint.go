package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Fingerprint returns a stable content hash of the schema: two schemas
// built the same way (same element names, kinds, types, flags, and
// relationship structure, in the same creation order) share a fingerprint,
// regardless of how or when they were constructed. The schema repository
// (internal/registry) keys prepared schemas by name + fingerprint so that
// re-registering identical content is an idempotent no-op while changed
// content replaces the stale entry.
//
// The hash covers everything that influences matching: the schema name,
// and per element (in creation/ID order) its name, description, kind,
// type, flags, containment parent, and the IsDerivedFrom, aggregation and
// reference edges. It is a content identity, not a semantic one — element
// order matters, exactly as it does to the matcher's tie-breaking.
func Fingerprint(s *Schema) string {
	h := sha256.New()
	writeString(h, s.Name)
	for _, e := range s.elements {
		writeString(h, e.Name)
		writeString(h, e.Description)
		writeInt(h, int(e.Kind))
		writeInt(h, int(e.Type))
		writeBool(h, e.Optional)
		writeBool(h, e.NotInstantiated)
		writeBool(h, e.IsKey)
		if e.parent != nil {
			writeInt(h, e.parent.id)
		} else {
			writeInt(h, -1)
		}
		// Children are hashed as an ordered edge list, not only via the
		// parent pointer: Contain attaches in call order, so two schemas
		// can create identical elements yet order siblings differently —
		// which changes post-order indexes and hence tie-breaking.
		writeEdges(h, e.children)
		writeEdges(h, e.derivedFrom)
		writeEdges(h, e.aggregates)
		writeEdges(h, e.references)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

func writeString(h hash.Hash, s string) {
	writeInt(h, len(s))
	h.Write([]byte(s))
}

func writeInt(h hash.Hash, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
	h.Write(b[:])
}

func writeBool(h hash.Hash, v bool) {
	if v {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}

func writeEdges(h hash.Hash, es []*Element) {
	writeInt(h, len(es))
	for _, e := range es {
		writeInt(h, e.id)
	}
}
