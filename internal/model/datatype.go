package model

import (
	"fmt"
	"strings"
)

// DataType is the broad data-type classification used by Cupid. The paper
// groups concrete types into broad classes ("all elements with a numeric
// data type are grouped together in a category with the keyword Number");
// the structural matcher initializes leaf similarity from a compatibility
// table over these classes (internal/structural).
type DataType int

// Broad data types. DTNone is the zero value: the element carries no data
// type (typical for non-leaf structure). DTComplex marks elements whose
// type is a structured/complex type.
const (
	DTNone DataType = iota
	DTString
	DTInt
	DTFloat
	DTDecimal
	DTBool
	DTDate
	DTTime
	DTDateTime
	DTBinary
	DTEnum
	DTID
	DTIDRef
	DTComplex
	DTAny

	// NumDataTypes is the number of broad data types; compatibility tables
	// are indexed [NumDataTypes][NumDataTypes].
	NumDataTypes
)

var dtNames = [...]string{
	DTNone:     "none",
	DTString:   "string",
	DTInt:      "int",
	DTFloat:    "float",
	DTDecimal:  "decimal",
	DTBool:     "bool",
	DTDate:     "date",
	DTTime:     "time",
	DTDateTime: "datetime",
	DTBinary:   "binary",
	DTEnum:     "enum",
	DTID:       "id",
	DTIDRef:    "idref",
	DTComplex:  "complex",
	DTAny:      "any",
}

// String returns the lower-case name of the data type.
func (d DataType) String() string {
	if d >= 0 && int(d) < len(dtNames) {
		return dtNames[d]
	}
	return fmt.Sprintf("datatype(%d)", int(d))
}

// IsNumeric reports whether the type belongs to the broad Number category
// used during linguistic categorization.
func (d DataType) IsNumeric() bool {
	switch d {
	case DTInt, DTFloat, DTDecimal:
		return true
	}
	return false
}

// IsTemporal reports whether the type is a date/time type.
func (d DataType) IsTemporal() bool {
	switch d {
	case DTDate, DTTime, DTDateTime:
		return true
	}
	return false
}

// CategoryKeyword returns the keyword naming this type's broad category for
// linguistic categorization (paper §5.2), or "" when the type does not
// define a category (DTNone, DTComplex).
func (d DataType) CategoryKeyword() string {
	switch {
	case d.IsNumeric():
		return "number"
	case d == DTString:
		return "text"
	case d.IsTemporal():
		return "date"
	case d == DTBool:
		return "boolean"
	case d == DTID, d == DTIDRef:
		return "identifier"
	case d == DTEnum:
		return "enumeration"
	case d == DTBinary:
		return "binary"
	case d == DTAny:
		return "any"
	}
	return ""
}

// ParseDataType maps a concrete type name from a native schema (SQL type
// names, XSD simple types, JSON Schema primitive types, Avro primitive /
// logical types, common programming types) to its broad class. Unknown
// names map to DTString, the most permissive leaf class, so that importers
// never fail on vendor-specific types. All importer packages (sqlddl,
// xsdlite, dtd, jsonschema, avro) normalize through this one table, which
// is what makes the datatype-compatibility signal work across formats.
func ParseDataType(name string) DataType {
	n := strings.ToLower(strings.TrimSpace(name))
	if i := strings.IndexByte(n, '('); i >= 0 { // varchar(20) -> varchar
		n = n[:i]
	}
	switch n {
	case "":
		return DTNone
	case "int", "integer", "smallint", "bigint", "tinyint", "long", "short",
		"byte", "serial", "int2", "int4", "int8", "positiveinteger",
		"nonnegativeinteger", "negativeinteger", "nonpositiveinteger",
		"unsignedint", "unsignedlong", "unsignedshort", "unsignedbyte":
		return DTInt
	case "float", "real", "double", "double precision", "float4", "float8",
		"number": // JSON Schema "number" admits fractions
		return DTFloat
	case "decimal", "numeric", "money", "smallmoney", "currency":
		return DTDecimal
	case "bool", "boolean", "bit":
		return DTBool
	case "date":
		return DTDate
	case "time", "timetz",
		"time-millis", "time-micros": // Avro logical types on int/long
		return DTTime
	case "datetime", "timestamp", "timestamptz", "smalldatetime", "datetime2",
		"date-time", // JSON Schema "format": "date-time"
		"timestamp-millis", "timestamp-micros",
		"local-timestamp-millis", "local-timestamp-micros":
		return DTDateTime
	case "binary", "varbinary", "blob", "bytea", "image", "base64binary", "hexbinary",
		"bytes", "fixed", "duration": // Avro bytes/fixed; duration is fixed(12)
		return DTBinary
	case "enum", "set":
		return DTEnum
	case "id":
		return DTID
	case "idref", "idrefs":
		return DTIDRef
	case "anytype", "any":
		return DTAny
	case "null": // JSON Schema / Avro null: no instance data
		return DTNone
	case "object", "record", "map": // structured values whose shape stays opaque
		return DTComplex
	case "string", "varchar", "char", "nchar", "nvarchar", "text", "ntext",
		"clob", "character", "character varying", "uuid", "guid",
		"normalizedstring", "token", "anyuri", "qname", "language":
		return DTString
	}
	return DTString
}
