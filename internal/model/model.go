// Package model implements the generic schema model of Cupid (paper §8.1).
//
// A schema is a rooted graph whose nodes are elements. Elements are
// interconnected by three relationship types that together may produce
// non-tree schema graphs:
//
//   - Containment: physical containment; every element except the root is
//     contained by exactly one other element (a table contains its columns,
//     an XML element contains its attributes).
//   - Aggregation: a weaker grouping that allows multiple parents (a
//     compound key aggregates columns of its table).
//   - IsDerivedFrom: abstracts IsA and IsTypeOf to model shared type
//     information (an XML element derives from its complex type, a subtype
//     derives from its supertype). IsDerivedFrom shortcuts containment: the
//     members of the referenced type are implicitly members of the deriving
//     element.
//
// Referential integrity constraints (foreign keys, ID/IDREF, key/keyref)
// are modelled as RefInt elements that aggregate their source columns and
// reference the target key (a fourth relationship type, Reference).
//
// The model is deliberately independent of any concrete data model; the
// importer packages (xsdlite, dtd, sqlddl) translate concrete schemas into
// it, and internal/schematree expands it into the schema tree on which the
// TreeMatch algorithm operates.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an element by the role it plays in its native data model.
// Kinds do not affect the matching mathematics directly; they control
// schema-tree construction (e.g. keys are tagged not-instantiated) and make
// rendered mappings readable.
type Kind int

// Element kinds. KindOther is the zero value so that a bare Element is a
// plain, instantiated schema element.
const (
	KindOther Kind = iota
	// KindSchema is the root node that contains the schema's top elements.
	KindSchema
	// KindTable is a relational table (or class in an OO schema).
	KindTable
	// KindColumn is a relational column (or class attribute).
	KindColumn
	// KindElement is an XML element.
	KindElement
	// KindAttribute is an XML attribute.
	KindAttribute
	// KindType is a named (complex) type definition, typically the target
	// of IsDerivedFrom relationships.
	KindType
	// KindKey is a primary key or XSD key. Keys are tagged not-instantiated
	// during schema-tree construction: they carry no instance data.
	KindKey
	// KindRefInt reifies a referential integrity constraint (foreign key,
	// IDREF, keyref). It aggregates the constraint's source elements and
	// references its target key.
	KindRefInt
	// KindView is a view definition; treated like a referential constraint:
	// a schema-tree node is added whose children are the view's elements.
	KindView
	// KindJoinView is a synthetic node introduced by schema-tree
	// augmentation: the join of the two tables participating in a RefInt.
	KindJoinView
)

var kindNames = map[Kind]string{
	KindOther:     "other",
	KindSchema:    "schema",
	KindTable:     "table",
	KindColumn:    "column",
	KindElement:   "element",
	KindAttribute: "attribute",
	KindType:      "type",
	KindKey:       "key",
	KindRefInt:    "refint",
	KindView:      "view",
	KindJoinView:  "joinview",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Element is a node of a schema graph. Create elements through
// Schema.NewElement (or the importer packages); the zero Element is not
// usable on its own because every element belongs to exactly one Schema.
type Element struct {
	id     int
	schema *Schema

	// Name is the element's name in its native schema. It may be empty for
	// anonymous constructs such as unnamed keys.
	Name string
	// Description is optional annotation text (e.g. from a data
	// dictionary). It is currently informational only; the paper lists
	// exploiting descriptions via IR techniques as future work.
	Description string
	// Type is the element's data type. Non-leaf elements usually carry
	// DTNone or DTComplex.
	Type DataType
	// Kind classifies the element's role; see Kind.
	Kind Kind
	// Optional marks non-required elements of semi-structured schemas
	// (paper §8.4, "Optionality"). Optional leaves with no strong link are
	// discounted in the structural similarity.
	Optional bool
	// NotInstantiated marks elements that carry no instance data (keys,
	// refints). They are skipped during schema-tree construction.
	NotInstantiated bool
	// IsKey marks elements that are part of a primary key; "keyness"
	// participates in the DIKE baseline's initialization and is available
	// to linguistic matching as a constraint.
	IsKey bool

	parent      *Element // containment parent (nil for the root)
	children    []*Element
	derivedFrom []*Element // IsDerivedFrom targets, in declaration order
	aggregates  []*Element
	references  []*Element
}

// ID returns the element's stable identifier within its schema. IDs are
// assigned densely from 0 in creation order.
func (e *Element) ID() int { return e.id }

// Schema returns the schema the element belongs to.
func (e *Element) Schema() *Schema { return e.schema }

// Parent returns the containment parent, or nil for the root.
func (e *Element) Parent() *Element { return e.parent }

// Children returns the containment children in insertion order. The
// returned slice must not be modified.
func (e *Element) Children() []*Element { return e.children }

// DerivedFrom returns the IsDerivedFrom targets in declaration order.
func (e *Element) DerivedFrom() []*Element { return e.derivedFrom }

// Aggregates returns the elements this element aggregates (e.g. the source
// columns of a foreign key).
func (e *Element) Aggregates() []*Element { return e.aggregates }

// References returns the elements this element references (e.g. the primary
// key targeted by a foreign key). The reference relationship is 1:n.
func (e *Element) References() []*Element { return e.references }

// IsLeaf reports whether the element has neither containment children nor
// IsDerivedFrom targets, i.e. whether it will be a leaf of the expanded
// schema tree.
func (e *Element) IsLeaf() bool {
	return len(e.children) == 0 && len(e.derivedFrom) == 0
}

// Path returns the containment path from the root to the element, joined by
// dots, e.g. "PO.POLines.Item.Qty". The root's name is included only when
// non-empty.
func (e *Element) Path() string {
	var parts []string
	for n := e; n != nil; n = n.parent {
		if n.Name != "" {
			parts = append(parts, n.Name)
		}
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ".")
}

// String renders the element as kind:path for diagnostics.
func (e *Element) String() string {
	if e == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s:%s", e.Kind, e.Path())
}

// Schema is a rooted graph of elements. The zero value is not usable; call
// New.
type Schema struct {
	// Name identifies the schema in diagnostics and rendered mappings.
	Name string

	root     *Element
	elements []*Element
}

// New creates an empty schema with a root element of KindSchema carrying
// the given name. The root's name participates in linguistic matching just
// like any other element name (the paper's examples name their roots, e.g.
// "PO" and "PurchaseOrder").
func New(name string) *Schema {
	s := &Schema{Name: name}
	s.root = s.newElement(name, KindSchema)
	return s
}

// Root returns the schema's root element.
func (s *Schema) Root() *Element { return s.root }

// Elements returns all elements in creation order, including the root and
// any not-instantiated elements. The returned slice must not be modified.
func (s *Schema) Elements() []*Element { return s.elements }

// Len returns the number of elements in the schema (including the root).
func (s *Schema) Len() int { return len(s.elements) }

// ElementByID returns the element with the given ID, or nil when out of
// range.
func (s *Schema) ElementByID(id int) *Element {
	if id < 0 || id >= len(s.elements) {
		return nil
	}
	return s.elements[id]
}

func (s *Schema) newElement(name string, kind Kind) *Element {
	e := &Element{id: len(s.elements), schema: s, Name: name, Kind: kind}
	s.elements = append(s.elements, e)
	return e
}

// NewElement creates a free-standing element (no containment parent yet).
// Most callers should prefer AddChild, which creates and attaches in one
// step; NewElement exists for shared types that are attached to multiple
// owners via IsDerivedFrom.
func (s *Schema) NewElement(name string, kind Kind) *Element {
	return s.newElement(name, kind)
}

// AddChild creates an element of the given name and kind and attaches it
// under parent via containment. It panics if parent belongs to a different
// schema, mirroring the contract that containment never crosses schemas.
func (s *Schema) AddChild(parent *Element, name string, kind Kind) *Element {
	if parent.schema != s {
		panic("model: AddChild parent belongs to a different schema")
	}
	e := s.newElement(name, kind)
	e.parent = parent
	parent.children = append(parent.children, e)
	return e
}

// Contain attaches child under parent via containment. It returns an error
// if the child already has a containment parent (containment allows exactly
// one) or if the elements belong to different schemas.
func (s *Schema) Contain(parent, child *Element) error {
	if parent.schema != s || child.schema != s {
		return fmt.Errorf("model: containment across schemas (%s -> %s)", parent, child)
	}
	if child.parent != nil {
		return fmt.Errorf("model: %s already contained by %s", child, child.parent)
	}
	if child == s.root {
		return fmt.Errorf("model: the root cannot be contained")
	}
	child.parent = parent
	parent.children = append(parent.children, child)
	return nil
}

// DeriveFrom records that e IsDerivedFrom target: target's members become
// implicit members of e during schema-tree expansion (type substitution).
func (s *Schema) DeriveFrom(e, target *Element) error {
	if e.schema != s || target.schema != s {
		return fmt.Errorf("model: IsDerivedFrom across schemas (%s -> %s)", e, target)
	}
	if e == target {
		return fmt.Errorf("model: %s cannot derive from itself", e)
	}
	e.derivedFrom = append(e.derivedFrom, target)
	return nil
}

// Aggregate records that owner aggregates member (weak grouping; multiple
// parents allowed, no delete propagation).
func (s *Schema) Aggregate(owner, member *Element) error {
	if owner.schema != s || member.schema != s {
		return fmt.Errorf("model: aggregation across schemas (%s -> %s)", owner, member)
	}
	owner.aggregates = append(owner.aggregates, member)
	return nil
}

// Refer records that src references dst (e.g. a foreign key references the
// primary key of its target table). The relationship is 1:n: one source may
// reference several targets (an IDREF may reference multiple IDs).
func (s *Schema) Refer(src, dst *Element) error {
	if src.schema != s || dst.schema != s {
		return fmt.Errorf("model: reference across schemas (%s -> %s)", src, dst)
	}
	src.references = append(src.references, dst)
	return nil
}

// AddRefInt builds the paper's Figure 5 structure in one call: it creates a
// RefInt element named name contained by the common ancestor of the source
// and target tables, makes it aggregate each source column, and makes it
// reference the target key element. The RefInt is tagged not-instantiated;
// schema-tree augmentation turns it into a join-view node.
func (s *Schema) AddRefInt(name string, sources []*Element, target *Element) (*Element, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("model: refint %q needs at least one source", name)
	}
	anc := sources[0]
	for _, src := range sources[1:] {
		anc = CommonAncestor(anc, src)
		if anc == nil {
			return nil, fmt.Errorf("model: refint %q sources have no common ancestor", name)
		}
	}
	anc = CommonAncestor(anc, target)
	if anc == nil {
		return nil, fmt.Errorf("model: refint %q source and target have no common ancestor", name)
	}
	ri := s.AddChild(anc, name, KindRefInt)
	ri.NotInstantiated = true
	for _, src := range sources {
		if err := s.Aggregate(ri, src); err != nil {
			return nil, err
		}
	}
	if err := s.Refer(ri, target); err != nil {
		return nil, err
	}
	return ri, nil
}

// CommonAncestor returns the deepest element that is a containment ancestor
// of both a and b (either argument counts as its own ancestor), or nil when
// they belong to different schemas.
func CommonAncestor(a, b *Element) *Element {
	if a == nil || b == nil || a.schema != b.schema {
		return nil
	}
	seen := map[*Element]bool{}
	for n := a; n != nil; n = n.parent {
		seen[n] = true
	}
	for n := b; n != nil; n = n.parent {
		if seen[n] {
			return n
		}
	}
	return nil
}

// Depth returns the containment depth of e (root = 0).
func Depth(e *Element) int {
	d := 0
	for n := e.parent; n != nil; n = n.parent {
		d++
	}
	return d
}

// PreOrder visits the containment tree rooted at e in pre-order.
func PreOrder(e *Element, visit func(*Element)) {
	visit(e)
	for _, c := range e.children {
		PreOrder(c, visit)
	}
}

// PostOrder visits the containment tree rooted at e in post-order.
func PostOrder(e *Element, visit func(*Element)) {
	for _, c := range e.children {
		PostOrder(c, visit)
	}
	visit(e)
}

// Leaves returns, in document order, the leaf elements of the containment
// tree rooted at e (ignoring IsDerivedFrom expansion; schematree handles
// that).
func Leaves(e *Element) []*Element {
	var out []*Element
	PreOrder(e, func(n *Element) {
		if len(n.children) == 0 {
			out = append(out, n)
		}
	})
	return out
}

// Validate checks the structural invariants of the schema graph:
//
//   - every non-root element reachable from the root has exactly the parent
//     recorded for it (consistency of the parent/children links);
//   - the root has no parent;
//   - no containment cycles;
//   - aggregation and reference endpoints belong to this schema.
//
// IsDerivedFrom+containment cycles are legal in the model (recursive types)
// but rejected later by schema-tree construction, matching the paper, which
// defers cyclic schemas to future work.
func (s *Schema) Validate() error {
	if s.root == nil {
		return fmt.Errorf("model: schema %q has no root", s.Name)
	}
	if s.root.parent != nil {
		return fmt.Errorf("model: root of %q has a parent", s.Name)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(s.elements))
	var walk func(e *Element) error
	walk = func(e *Element) error {
		switch color[e.id] {
		case grey:
			return fmt.Errorf("model: containment cycle through %s", e)
		case black:
			return fmt.Errorf("model: %s contained twice", e)
		}
		color[e.id] = grey
		for _, c := range e.children {
			if c.parent != e {
				return fmt.Errorf("model: %s lists child %s whose parent is %s", e, c, c.parent)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		color[e.id] = black
		return nil
	}
	if err := walk(s.root); err != nil {
		return err
	}
	for _, e := range s.elements {
		for _, t := range e.derivedFrom {
			if t.schema != s {
				return fmt.Errorf("model: %s derives from foreign element %s", e, t)
			}
		}
		for _, t := range e.aggregates {
			if t.schema != s {
				return fmt.Errorf("model: %s aggregates foreign element %s", e, t)
			}
		}
		for _, t := range e.references {
			if t.schema != s {
				return fmt.Errorf("model: %s references foreign element %s", e, t)
			}
		}
	}
	return nil
}

// Stats summarizes a schema for diagnostics and experiment logs.
type Stats struct {
	Elements    int // total elements, including root and not-instantiated
	Leaves      int // containment leaves reachable from the root
	MaxDepth    int // deepest containment nesting (root = 0)
	RefInts     int // elements of KindRefInt
	SharedTypes int // elements targeted by more than one IsDerivedFrom
	Optional    int // elements marked Optional
}

// ComputeStats gathers Stats for the schema.
func (s *Schema) ComputeStats() Stats {
	st := Stats{Elements: len(s.elements)}
	inbound := make([]int, len(s.elements))
	for _, e := range s.elements {
		if e.Kind == KindRefInt {
			st.RefInts++
		}
		if e.Optional {
			st.Optional++
		}
		for _, t := range e.derivedFrom {
			inbound[t.id]++
		}
	}
	for _, n := range inbound {
		if n > 1 {
			st.SharedTypes++
		}
	}
	PreOrder(s.root, func(e *Element) {
		if d := Depth(e); d > st.MaxDepth {
			st.MaxDepth = d
		}
		if len(e.children) == 0 {
			st.Leaves++
		}
	})
	return st
}

// Dump renders the containment tree as an indented listing, useful in tests
// and the CLI's -dump flag. Children appear in insertion order; derived
// types are annotated inline.
func (s *Schema) Dump() string {
	var b strings.Builder
	var walk func(e *Element, depth int)
	walk = func(e *Element, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(e.Name)
		if e.Type != DTNone {
			fmt.Fprintf(&b, " : %s", e.Type)
		}
		if len(e.derivedFrom) > 0 {
			names := make([]string, len(e.derivedFrom))
			for i, t := range e.derivedFrom {
				names[i] = t.Name
			}
			fmt.Fprintf(&b, " <- %s", strings.Join(names, ","))
		}
		if e.Optional {
			b.WriteString(" (optional)")
		}
		if e.NotInstantiated {
			b.WriteString(" (not-instantiated)")
		}
		b.WriteByte('\n')
		for _, c := range e.children {
			walk(c, depth+1)
		}
	}
	walk(s.root, 0)
	return b.String()
}

// SortChildrenByName orders every element's children lexicographically.
// Importers whose sources have no meaningful document order (e.g. maps of
// tables) call this so that runs are deterministic.
func (s *Schema) SortChildrenByName() {
	for _, e := range s.elements {
		sort.SliceStable(e.children, func(i, j int) bool {
			return e.children[i].Name < e.children[j].Name
		})
	}
}
