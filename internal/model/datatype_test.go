package model

import (
	"testing"
	"testing/quick"
)

func TestParseDataType(t *testing.T) {
	cases := []struct {
		in   string
		want DataType
	}{
		{"int", DTInt},
		{"INTEGER", DTInt},
		{"varchar(255)", DTString},
		{"VARCHAR(40)", DTString},
		{"decimal(10,2)", DTDecimal},
		{"float", DTFloat},
		{"double precision", DTFloat},
		{"bool", DTBool},
		{"bit", DTBool},
		{"date", DTDate},
		{"timestamp", DTDateTime},
		{"time", DTTime},
		{"blob", DTBinary},
		{"ID", DTID},
		{"IDREF", DTIDRef},
		{"idrefs", DTIDRef},
		{"anyType", DTAny},
		{"", DTNone},
		{"totally-made-up", DTString}, // permissive fallback
		{"positiveInteger", DTInt},
		{"nvarchar(max)", DTString},
	}
	for _, c := range cases {
		if got := ParseDataType(c.in); got != c.want {
			t.Errorf("ParseDataType(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDataTypePredicates(t *testing.T) {
	if !DTInt.IsNumeric() || !DTFloat.IsNumeric() || !DTDecimal.IsNumeric() {
		t.Error("numeric types should report IsNumeric")
	}
	if DTString.IsNumeric() || DTBool.IsNumeric() {
		t.Error("non-numeric types should not report IsNumeric")
	}
	if !DTDate.IsTemporal() || !DTDateTime.IsTemporal() || !DTTime.IsTemporal() {
		t.Error("temporal types should report IsTemporal")
	}
	if DTInt.IsTemporal() {
		t.Error("int should not be temporal")
	}
}

func TestCategoryKeyword(t *testing.T) {
	cases := map[DataType]string{
		DTInt:      "number",
		DTFloat:    "number",
		DTDecimal:  "number",
		DTString:   "text",
		DTDate:     "date",
		DTDateTime: "date",
		DTBool:     "boolean",
		DTID:       "identifier",
		DTIDRef:    "identifier",
		DTEnum:     "enumeration",
		DTBinary:   "binary",
		DTAny:      "any",
		DTNone:     "",
		DTComplex:  "",
	}
	for dt, want := range cases {
		if got := dt.CategoryKeyword(); got != want {
			t.Errorf("CategoryKeyword(%v) = %q, want %q", dt, got, want)
		}
	}
}

func TestDataTypeString(t *testing.T) {
	if DTInt.String() != "int" {
		t.Errorf("DTInt = %q", DTInt.String())
	}
	if DataType(200).String() == "" {
		t.Error("out-of-range data type should render non-empty")
	}
}

// Property: ParseDataType never panics and never returns an out-of-range
// value for arbitrary input strings.
func TestParseDataTypeTotal(t *testing.T) {
	f := func(s string) bool {
		dt := ParseDataType(s)
		return dt >= DTNone && dt < NumDataTypes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ParseDataType(dt.String()) is the identity for all broad types
// that have a concrete spelling (i.e. everything except DTNone/DTComplex
// whose spellings intentionally normalize elsewhere).
func TestParseDataTypeRoundTrip(t *testing.T) {
	for dt := DTString; dt < NumDataTypes; dt++ {
		if dt == DTComplex {
			continue // "complex" is not a source-schema type name
		}
		if got := ParseDataType(dt.String()); got != dt {
			t.Errorf("round trip %v -> %q -> %v", dt, dt.String(), got)
		}
	}
}
