package model

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonSchema is the on-disk representation of a schema used by the native
// .schema.json format of the CLI tools. Elements refer to each other by
// their string names within the file ("name paths" for disambiguation are
// unnecessary because the format assigns every element a unique local id).
type jsonSchema struct {
	Name string        `json:"name"`
	Root *jsonElement  `json:"root"`
	Refs []jsonRefInt  `json:"refints,omitempty"`
	Ders []jsonDerives `json:"derivations,omitempty"`
}

type jsonElement struct {
	ID       string         `json:"id,omitempty"` // optional explicit id for cross references
	Name     string         `json:"name"`
	Kind     string         `json:"kind,omitempty"`
	Type     string         `json:"type,omitempty"`
	Optional bool           `json:"optional,omitempty"`
	Key      bool           `json:"key,omitempty"`
	NoInst   bool           `json:"notInstantiated,omitempty"`
	Desc     string         `json:"description,omitempty"`
	Children []*jsonElement `json:"children,omitempty"`
}

type jsonRefInt struct {
	Name    string   `json:"name"`
	Sources []string `json:"sources"` // ids or paths of source columns
	Target  string   `json:"target"`  // id or path of target key/table
}

type jsonDerives struct {
	Element string `json:"element"` // id or path
	Type    string `json:"type"`    // id or path of the shared type
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// ParseKind maps a kind name ("table", "column", ...) to its Kind; unknown
// names map to KindOther.
func ParseKind(name string) Kind {
	if k, ok := kindByName[strings.ToLower(strings.TrimSpace(name))]; ok {
		return k
	}
	return KindOther
}

// MarshalJSON implements the native schema file format. IsDerivedFrom,
// aggregation, and reference links that AddRefInt created are emitted in
// the refints/derivations sections keyed by element path.
func (s *Schema) MarshalJSON() ([]byte, error) {
	var conv func(e *Element) *jsonElement
	conv = func(e *Element) *jsonElement {
		je := &jsonElement{
			Name:     e.Name,
			Optional: e.Optional,
			Key:      e.IsKey,
			Desc:     e.Description,
		}
		if e.Kind != KindOther && e.Kind != KindSchema {
			je.Kind = e.Kind.String()
		}
		if e.Type != DTNone {
			je.Type = e.Type.String()
		}
		// RefInt containment children are re-created from the refints
		// section on load; skip them here and record not-instantiated flags
		// only for non-refint elements.
		if e.NotInstantiated && e.Kind != KindRefInt {
			je.NoInst = true
		}
		for _, c := range e.children {
			if c.Kind == KindRefInt {
				continue
			}
			je.Children = append(je.Children, conv(c))
		}
		return je
	}
	js := jsonSchema{Name: s.Name, Root: conv(s.root)}
	for _, e := range s.elements {
		if e.Kind == KindRefInt {
			ri := jsonRefInt{Name: e.Name}
			for _, src := range e.aggregates {
				ri.Sources = append(ri.Sources, src.Path())
			}
			if len(e.references) > 0 {
				ri.Target = e.references[0].Path()
			}
			js.Refs = append(js.Refs, ri)
		}
		for _, t := range e.derivedFrom {
			js.Ders = append(js.Ders, jsonDerives{Element: e.Path(), Type: t.Path()})
		}
	}
	return json.MarshalIndent(js, "", "  ")
}

// WriteJSON writes the schema in the native JSON format.
func (s *Schema) WriteJSON(w io.Writer) error {
	b, err := s.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadJSON parses a schema from the native JSON format.
func ReadJSON(r io.Reader) (*Schema, error) {
	var js jsonSchema
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("model: decoding schema json: %w", err)
	}
	if js.Root == nil {
		return nil, fmt.Errorf("model: schema json has no root")
	}
	name := js.Name
	if name == "" {
		name = js.Root.Name
	}
	s := New(name)
	if js.Root.Name != "" {
		s.root.Name = js.Root.Name
	}
	byPath := map[string]*Element{}
	byID := map[string]*Element{}
	record := func(je *jsonElement, e *Element) error {
		byPath[e.Path()] = e
		if je.ID != "" {
			if _, dup := byID[je.ID]; dup {
				return fmt.Errorf("model: duplicate element id %q", je.ID)
			}
			byID[je.ID] = e
		}
		return nil
	}
	apply := func(je *jsonElement, e *Element) {
		e.Kind = ParseKind(je.Kind)
		if je.Kind == "" && e != s.root {
			e.Kind = KindOther
		}
		e.Type = ParseDataType(je.Type)
		e.Optional = je.Optional
		e.IsKey = je.Key
		e.NotInstantiated = je.NoInst
		e.Description = je.Desc
	}
	apply(js.Root, s.root)
	s.root.Kind = KindSchema
	if err := record(js.Root, s.root); err != nil {
		return nil, err
	}
	var build func(parent *Element, jes []*jsonElement) error
	build = func(parent *Element, jes []*jsonElement) error {
		for _, je := range jes {
			e := s.AddChild(parent, je.Name, ParseKind(je.Kind))
			apply(je, e)
			if err := record(je, e); err != nil {
				return err
			}
			if err := build(e, je.Children); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(s.root, js.Root.Children); err != nil {
		return nil, err
	}
	resolve := func(ref string) (*Element, error) {
		if e, ok := byID[ref]; ok {
			return e, nil
		}
		if e, ok := byPath[ref]; ok {
			return e, nil
		}
		return nil, fmt.Errorf("model: unresolved element reference %q", ref)
	}
	for _, d := range js.Ders {
		e, err := resolve(d.Element)
		if err != nil {
			return nil, err
		}
		t, err := resolve(d.Type)
		if err != nil {
			return nil, err
		}
		if err := s.DeriveFrom(e, t); err != nil {
			return nil, err
		}
	}
	for _, rj := range js.Refs {
		var sources []*Element
		for _, ref := range rj.Sources {
			e, err := resolve(ref)
			if err != nil {
				return nil, err
			}
			sources = append(sources, e)
		}
		target, err := resolve(rj.Target)
		if err != nil {
			return nil, err
		}
		if _, err := s.AddRefInt(rj.Name, sources, target); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
