package model

import "testing"

func fpSchema() *Schema {
	s := New("PO")
	item := s.AddChild(s.Root(), "Item", KindElement)
	qty := s.AddChild(item, "Qty", KindAttribute)
	qty.Type = DTInt
	uom := s.AddChild(item, "UOM", KindAttribute)
	uom.Type = DTString
	return s
}

func TestFingerprintStable(t *testing.T) {
	a := fpSchema()
	b := fpSchema()
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("identically built schemas have different fingerprints")
	}
	if Fingerprint(a) != Fingerprint(a) {
		t.Error("fingerprint is not deterministic")
	}
	if len(Fingerprint(a)) != 32 {
		t.Errorf("fingerprint length %d, want 32 hex chars", len(Fingerprint(a)))
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(fpSchema())

	renamed := fpSchema()
	renamed.Elements()[2].Name = "Quantity"
	if Fingerprint(renamed) == base {
		t.Error("renaming an element did not change the fingerprint")
	}

	retyped := fpSchema()
	retyped.Elements()[2].Type = DTFloat
	if Fingerprint(retyped) == base {
		t.Error("retyping an element did not change the fingerprint")
	}

	optional := fpSchema()
	optional.Elements()[3].Optional = true
	if Fingerprint(optional) == base {
		t.Error("toggling Optional did not change the fingerprint")
	}

	extra := fpSchema()
	extra.AddChild(extra.Root(), "Extra", KindElement)
	if Fingerprint(extra) == base {
		t.Error("adding an element did not change the fingerprint")
	}

	derived := fpSchema()
	typ := derived.NewElement("Address", KindType)
	if err := derived.DeriveFrom(derived.Elements()[1], typ); err != nil {
		t.Fatal(err)
	}
	if Fingerprint(derived) == base {
		t.Error("adding an IsDerivedFrom edge did not change the fingerprint")
	}
}

// TestFingerprintSiblingOrder: Contain attaches children in call order,
// independent of element-creation order, and sibling order changes
// post-order tie-breaking — so it must change the fingerprint.
func TestFingerprintSiblingOrder(t *testing.T) {
	build := func(swap bool) *Schema {
		s := New("S")
		x := s.NewElement("X", KindElement)
		y := s.NewElement("Y", KindElement)
		first, second := x, y
		if swap {
			first, second = y, x
		}
		if err := s.Contain(s.Root(), first); err != nil {
			t.Fatal(err)
		}
		if err := s.Contain(s.Root(), second); err != nil {
			t.Fatal(err)
		}
		return s
	}
	if Fingerprint(build(false)) == Fingerprint(build(true)) {
		t.Error("sibling order does not change the fingerprint")
	}
}
