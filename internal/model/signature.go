package model

import "sort"

// Signature is the cheap per-schema summary the repository's candidate
// pruning stage compares instead of running the full linguistic+structural
// pipeline: the schema's element and leaf counts plus a sorted, deduplicated
// bag of normalized tokens drawn from element names and descriptions.
// Like Fingerprint it is derived once per schema and then immutable; unlike
// Fingerprint it is a similarity summary, not an identity — two schemas
// with equal signatures are likely related, not necessarily identical.
//
// The token strings themselves come from the linguistic analysis (the
// already-cached per-element token sets; see linguistic.SchemaInfo), so the
// model package only defines the container and the comparison arithmetic.
type Signature struct {
	// Elements is the schema graph's element count.
	Elements int
	// Leaves is the expanded schema tree's leaf count — the size that
	// dominates matching cost and the axis the size-bucket comparison uses.
	Leaves int
	// Tokens is the sorted, deduplicated union of the schema's normalized
	// name and description tokens.
	Tokens []string
}

// NewSignature builds a signature, sorting and deduplicating the token bag
// in place.
func NewSignature(elements, leaves int, tokens []string) Signature {
	sort.Strings(tokens)
	out := tokens[:0]
	for i, t := range tokens {
		if i == 0 || t != tokens[i-1] {
			out = append(out, t)
		}
	}
	return Signature{Elements: elements, Leaves: leaves, Tokens: out}
}

// SizeSim compares the two schemas' sizes as the ratio of their leaf
// counts, min/max in [0,1] — the smooth form of size bucketing: schemas in
// the same size bracket score near 1, an order-of-magnitude mismatch scores
// near 0. Leaf counts are offset by one so empty trees compare as equal
// rather than dividing by zero.
func (s Signature) SizeSim(o Signature) float64 {
	a, b := float64(s.Leaves+1), float64(o.Leaves+1)
	if a > b {
		a, b = b, a
	}
	return a / b
}

// TokenJaccard is the Jaccard similarity |A∩B| / |A∪B| of the two token
// bags. Both sides are sorted and unique (NewSignature guarantees it), so
// the intersection is a single linear merge. Two empty bags score 0: with
// no linguistic evidence the signature asserts nothing.
func (s Signature) TokenJaccard(o Signature) float64 {
	if len(s.Tokens) == 0 && len(o.Tokens) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(s.Tokens) && j < len(o.Tokens) {
		switch {
		case s.Tokens[i] == o.Tokens[j]:
			inter++
			i++
			j++
		case s.Tokens[i] < o.Tokens[j]:
			i++
		default:
			j++
		}
	}
	union := len(s.Tokens) + len(o.Tokens) - inter
	return float64(inter) / float64(union)
}

// affinityTokenWeight blends the two signature coordinates: token overlap
// carries most of the signal (it approximates the linguistic phase), size
// similarity the rest (a leaf-count mismatch caps the structural phase's
// normalized score).
const affinityTokenWeight = 0.75

// Affinity is the pruning score in [0,1]: a weighted blend of token
// Jaccard and size similarity. It is intentionally crude — its only job is
// to rank likely candidates ahead of unlikely ones so the expensive tree
// match runs on a fraction of the repository (registry.MatchTop asserts
// the ranking quality empirically; cupidbench records recall@K).
func (s Signature) Affinity(o Signature) float64 {
	return affinityTokenWeight*s.TokenJaccard(o) + (1-affinityTokenWeight)*s.SizeSim(o)
}
