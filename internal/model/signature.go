package model

import "sort"

// Signature is the cheap per-schema summary the repository's candidate
// pruning stage compares instead of running the full linguistic+structural
// pipeline: the schema's element and leaf counts plus a sorted, deduplicated
// bag of normalized tokens drawn from element names and descriptions.
// Like Fingerprint it is derived once per schema and then immutable; unlike
// Fingerprint it is a similarity summary, not an identity — two schemas
// with equal signatures are likely related, not necessarily identical.
//
// The token strings themselves come from the linguistic analysis (the
// already-cached per-element token sets; see linguistic.SchemaInfo), so the
// model package only defines the container and the comparison arithmetic.
type Signature struct {
	// Elements is the schema graph's element count.
	Elements int
	// Leaves is the expanded schema tree's leaf count — the size that
	// dominates matching cost and the axis the size-bucket comparison uses.
	Leaves int
	// Tokens is the sorted, deduplicated union of the schema's normalized
	// name and description tokens.
	Tokens []string
	// Weights holds one weight per token (parallel to Tokens), or nil for
	// uniformly weighted bags. Weights are *stable*: a deterministic
	// function of the schema alone (token type, not corpus statistics or
	// registration order), so two builds of the same schema's signature are
	// identical. They feed the inverted index's overlap accumulator
	// (internal/index); TokenJaccard and Affinity deliberately ignore them
	// so the pruning semantics are unchanged by weighting.
	Weights []float64
}

// NewSignature builds a uniformly weighted signature (nil Weights, the
// canonical uniform representation), sorting and deduplicating the token
// bag in place.
func NewSignature(elements, leaves int, tokens []string) Signature {
	sort.Strings(tokens)
	out := tokens[:0]
	for i, t := range tokens {
		if i == 0 || t != tokens[i-1] {
			out = append(out, t)
		}
	}
	return Signature{Elements: elements, Leaves: leaves, Tokens: out}
}

// NewWeightedSignature builds a signature from a parallel (token, weight)
// bag, sorting by token and deduplicating in place; a duplicated token
// keeps its largest weight, so the result is independent of input order.
func NewWeightedSignature(elements, leaves int, tokens []string, weights []float64) Signature {
	if len(weights) != len(tokens) {
		panic("model: NewWeightedSignature: len(weights) != len(tokens)")
	}
	order := make([]int, len(tokens))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if tokens[order[i]] != tokens[order[j]] {
			return tokens[order[i]] < tokens[order[j]]
		}
		return weights[order[i]] > weights[order[j]]
	})
	outT := make([]string, 0, len(tokens))
	outW := make([]float64, 0, len(tokens))
	for _, k := range order {
		if n := len(outT); n > 0 && outT[n-1] == tokens[k] {
			continue // duplicate: the first (largest-weight) occurrence won
		}
		outT = append(outT, tokens[k])
		outW = append(outW, weights[k])
	}
	return Signature{Elements: elements, Leaves: leaves, Tokens: outT, Weights: outW}
}

// Weight returns the weight of token i (1 for unweighted signatures).
func (s Signature) Weight(i int) float64 {
	if s.Weights == nil {
		return 1
	}
	return s.Weights[i]
}

// SizeSim compares the two schemas' sizes as the ratio of their leaf
// counts, min/max in [0,1] — the smooth form of size bucketing: schemas in
// the same size bracket score near 1, an order-of-magnitude mismatch scores
// near 0. Leaf counts are offset by one so empty trees compare as equal
// rather than dividing by zero.
func (s Signature) SizeSim(o Signature) float64 {
	a, b := float64(s.Leaves+1), float64(o.Leaves+1)
	if a > b {
		a, b = b, a
	}
	return a / b
}

// TokenJaccard is the Jaccard similarity |A∩B| / |A∪B| of the two token
// bags. Both sides are sorted and unique (NewSignature guarantees it), so
// the intersection is a single linear merge. Two empty bags score 0: with
// no linguistic evidence the signature asserts nothing.
func (s Signature) TokenJaccard(o Signature) float64 {
	if len(s.Tokens) == 0 && len(o.Tokens) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(s.Tokens) && j < len(o.Tokens) {
		switch {
		case s.Tokens[i] == o.Tokens[j]:
			inter++
			i++
			j++
		case s.Tokens[i] < o.Tokens[j]:
			i++
		default:
			j++
		}
	}
	union := len(s.Tokens) + len(o.Tokens) - inter
	return float64(inter) / float64(union)
}

// affinityTokenWeight blends the two signature coordinates: token overlap
// carries most of the signal (it approximates the linguistic phase), size
// similarity the rest (a leaf-count mismatch caps the structural phase's
// normalized score).
const affinityTokenWeight = 0.75

// Affinity is the pruning score in [0,1]: a weighted blend of token
// Jaccard and size similarity. It is intentionally crude — its only job is
// to rank likely candidates ahead of unlikely ones so the expensive tree
// match runs on a fraction of the repository (registry.MatchTop asserts
// the ranking quality empirically; cupidbench records recall@K).
func (s Signature) Affinity(o Signature) float64 {
	return affinityTokenWeight*s.TokenJaccard(o) + (1-affinityTokenWeight)*s.SizeSim(o)
}
