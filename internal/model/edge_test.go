package model

import (
	"strings"
	"testing"
)

func TestElementAccessors(t *testing.T) {
	s := New("S")
	a := s.AddChild(s.Root(), "A", KindElement)
	if a.Schema() != s {
		t.Error("Schema() accessor wrong")
	}
	var nilElem *Element
	if nilElem.String() != "<nil>" {
		t.Error("nil element String")
	}
	if !strings.Contains(a.String(), "element:S.A") {
		t.Errorf("String() = %q", a.String())
	}
}

func TestAddChildPanicsAcrossSchemas(t *testing.T) {
	s1 := New("S1")
	s2 := New("S2")
	defer func() {
		if recover() == nil {
			t.Error("AddChild across schemas did not panic")
		}
	}()
	s1.AddChild(s2.Root(), "X", KindElement)
}

func TestContainRoot(t *testing.T) {
	s := New("S")
	a := s.AddChild(s.Root(), "A", KindElement)
	// Free-standing element can be contained later.
	free := s.NewElement("F", KindElement)
	if err := s.Contain(a, free); err != nil {
		t.Fatalf("Contain free element: %v", err)
	}
	if free.Parent() != a {
		t.Error("containment not recorded")
	}
}

func TestAddRefIntNoCommonAncestor(t *testing.T) {
	s := New("S")
	tbl := s.AddChild(s.Root(), "T", KindTable)
	col := s.AddChild(tbl, "C", KindColumn)
	// Target in a different schema: CommonAncestor fails.
	other := New("O")
	foreign := other.AddChild(other.Root(), "F", KindTable)
	if _, err := s.AddRefInt("fk", []*Element{col}, foreign); err == nil {
		t.Error("AddRefInt accepted a cross-schema target")
	}
	// Sources from different schemas fail too.
	if _, err := s.AddRefInt("fk2", []*Element{col, foreign}, tbl); err == nil {
		t.Error("AddRefInt accepted cross-schema sources")
	}
}

func TestValidateRootless(t *testing.T) {
	s := &Schema{Name: "broken"}
	if err := s.Validate(); err == nil {
		t.Error("rootless schema validated")
	}
}

func TestValidateForeignLinks(t *testing.T) {
	s1 := New("S1")
	s2 := New("S2")
	a := s1.AddChild(s1.Root(), "A", KindElement)
	b := s2.AddChild(s2.Root(), "B", KindElement)
	// Bypass the guarded methods to corrupt the graph directly.
	a.derivedFrom = append(a.derivedFrom, b)
	if err := s1.Validate(); err == nil {
		t.Error("foreign derivation validated")
	}
	a.derivedFrom = nil
	a.aggregates = append(a.aggregates, b)
	if err := s1.Validate(); err == nil {
		t.Error("foreign aggregation validated")
	}
	a.aggregates = nil
	a.references = append(a.references, b)
	if err := s1.Validate(); err == nil {
		t.Error("foreign reference validated")
	}
}

func TestJSONDuplicateID(t *testing.T) {
	in := `{"root":{"name":"R","children":[
		{"id":"x","name":"A"},{"id":"x","name":"B"}]}}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("duplicate explicit ids accepted")
	}
}

func TestJSONByIDReference(t *testing.T) {
	in := `{"root":{"name":"R","children":[
		{"id":"col","name":"A","type":"int"},
		{"id":"tbl","name":"T","children":[{"name":"K","type":"int","key":true}]}]},
		"refints":[{"name":"fk","sources":["col"],"target":"tbl"}]}`
	s, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.ComputeStats().RefInts != 1 {
		t.Error("id-referenced refint lost")
	}
}

func TestJSONUnresolvedRefintSource(t *testing.T) {
	in := `{"root":{"name":"R","children":[{"name":"A"}]},
		"refints":[{"name":"fk","sources":["R.Missing"],"target":"R.A"}]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("unresolved refint source accepted")
	}
}
