// Package schematree converts generic schema graphs (internal/model) into
// the schema trees on which Cupid's TreeMatch algorithm operates (paper
// §8.2–8.3).
//
// A schema graph may share substructure via IsDerivedFrom relationships; an
// element reachable over several paths must map differently in each
// context. Expansion materializes every containment/IsDerivedFrom path
// from the root — essentially type substitution — so each schema-tree node
// is one *context* of one schema element. Elements tagged not-instantiated
// (keys) are skipped. Construction fails on containment/IsDerivedFrom
// cycles (recursive types), which the paper defers to future work.
//
// Referential constraints are reified as join-view nodes: for each RefInt
// the tree gains a node, attached under the common ancestor of the
// participating tables, whose children are copies of both tables' members
// (paper Figure 6). View definitions are expanded the same way. Join views
// of join views are not expanded (the paper declines escalating expansion
// for tractability).
package schematree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Node is one context of one schema element in the expanded schema tree.
type Node struct {
	// Elem is the underlying schema element. Several nodes may share an
	// element (one per context); join-view nodes point at their RefInt or
	// View element.
	Elem *model.Element
	// Parent and Children define the tree.
	Parent   *Node
	Children []*Node
	// Idx is the node's post-order index within the tree (leaves first,
	// root last). Assigned by Build.
	Idx int
	// SubFirst is the smallest post-order index inside this node's
	// subtree; the subtree occupies the contiguous range [SubFirst, Idx].
	SubFirst int
	// Depth is the distance from the root (root = 0).
	Depth int
	// IsJoinView marks synthetic join-view nodes.
	IsJoinView bool
	// CopyOf points at the first materialized node of the same element
	// whose subtree has identical shape (contexts duplicated by type
	// substitution or join views); nil for originals. Used by the lazy
	// expansion optimization.
	CopyOf *Node
	// optDepth is, for leaves, the depth of the deepest optional element
	// on the path from the root to this leaf (-1 when none): the leaf is
	// optional relative to ancestor a iff optDepth > a.Depth.
	optDepth int
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Name returns the display name: the element name, or the RefInt/View name
// for join views.
func (n *Node) Name() string { return n.Elem.Name }

// Path returns the context path of the node within the tree, e.g.
// "PurchaseOrder.DeliverTo.Address.Street". For context-dependent copies
// the path disambiguates which context the node stands for.
func (n *Node) Path() string {
	var parts []string
	for x := n; x != nil; x = x.Parent {
		if x.Elem.Name != "" {
			parts = append(parts, x.Elem.Name)
		}
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ".")
}

// OptionalRelativeTo reports whether leaf l is optional relative to
// ancestor a (paper §8.4): at least one optional element lies on the path
// from a (exclusive) down to l (inclusive).
func (l *Node) OptionalRelativeTo(a *Node) bool {
	return l.optDepth > a.Depth
}

// Tree is an expanded schema tree.
type Tree struct {
	Schema *model.Schema
	Root   *Node
	// Nodes lists every node in post-order; Nodes[i].Idx == i.
	Nodes []*Node
	// leafIdx lists the post-order indexes of all leaves, ascending.
	leafIdx []int
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.Nodes) }

// NumLeaves returns the number of leaf nodes.
func (t *Tree) NumLeaves() int { return len(t.leafIdx) }

// Leaves returns the post-order indexes of the leaves in the subtree
// rooted at n, ascending. The slice aliases internal storage; do not
// modify.
func (t *Tree) Leaves(n *Node) []int {
	lo := sort.SearchInts(t.leafIdx, n.SubFirst)
	hi := sort.SearchInts(t.leafIdx, n.Idx+1)
	return t.leafIdx[lo:hi]
}

// LeafCount returns the number of leaves under n (n itself when a leaf).
func (t *Tree) LeafCount(n *Node) int { return len(t.Leaves(n)) }

// Frontier returns the post-order indexes of the depth-k frontier of n
// (paper §8.4, "Pruning leaves"): descendants that are leaves within k
// levels of n, plus non-leaf descendants at exactly depth n.Depth+k, which
// are treated as pseudo-leaves. k <= 0 means no pruning (all leaves).
func (t *Tree) Frontier(n *Node, k int) []int {
	if k <= 0 {
		return t.Leaves(n)
	}
	var out []int
	var walk func(x *Node)
	walk = func(x *Node) {
		if x.IsLeaf() || x.Depth-n.Depth >= k {
			out = append(out, x.Idx)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	sort.Ints(out)
	return out
}

// NodeByPath returns the first node (in post-order) whose Path equals the
// given dotted path, or nil.
func (t *Tree) NodeByPath(path string) *Node {
	for _, n := range t.Nodes {
		if n.Path() == path {
			return n
		}
	}
	return nil
}

// NodesOfElement returns all context nodes of the given element, in
// post-order.
func (t *Tree) NodesOfElement(e *model.Element) []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.Elem == e {
			out = append(out, n)
		}
	}
	return out
}

// Options configures expansion.
type Options struct {
	// JoinViews reifies referential constraints as join-view nodes
	// (default true via DefaultOptions).
	JoinViews bool
	// Views expands view elements into nodes over their members.
	Views bool
	// MaxNodes caps the expanded tree size to guard against exponential
	// type-substitution blow-ups; Build fails beyond it. 0 means the
	// default of 1,000,000.
	MaxNodes int
}

// DefaultOptions enables join views and views with the default node cap.
func DefaultOptions() Options {
	return Options{JoinViews: true, Views: true}
}

// ErrCycle is returned (wrapped) when containment/IsDerivedFrom
// relationships form a cycle, i.e. the schema uses recursive types.
var ErrCycle = fmt.Errorf("schematree: containment/IsDerivedFrom cycle (recursive type)")

type builder struct {
	tree    *Tree
	opt     Options
	onPath  map[*model.Element]bool // cycle detection along the expansion path
	count   int
	firstOf map[*model.Element]*Node // first materialized node per element
}

func skipElement(e *model.Element) bool {
	return e.NotInstantiated || e.Kind == model.KindRefInt || e.Kind == model.KindView
}

// Build expands the schema graph into a schema tree.
func Build(s *model.Schema, opt Options) (*Tree, error) {
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 1_000_000
	}
	b := &builder{
		tree:    &Tree{Schema: s},
		opt:     opt,
		onPath:  map[*model.Element]bool{},
		firstOf: map[*model.Element]*Node{},
	}
	root, err := b.construct(s.Root(), nil)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("schematree: schema %q root is not instantiated", s.Name)
	}
	b.tree.Root = root
	if opt.JoinViews || opt.Views {
		if err := b.augment(); err != nil {
			return nil, err
		}
	}
	b.finalize()
	return b.tree, nil
}

// construct implements the paper's Figure 4: a pre-order traversal that
// creates a node per element reached through containment (or the root) and
// splices in the members of IsDerivedFrom targets without creating nodes
// for the targets themselves (type substitution).
func (b *builder) construct(e *model.Element, parent *Node) (*Node, error) {
	if skipElement(e) {
		return nil, nil
	}
	b.count++
	if b.count > b.opt.MaxNodes {
		return nil, fmt.Errorf("schematree: expansion of %q exceeds %d nodes", b.tree.Schema.Name, b.opt.MaxNodes)
	}
	if b.onPath[e] {
		return nil, fmt.Errorf("%w: through %s", ErrCycle, e)
	}
	b.onPath[e] = true
	defer delete(b.onPath, e)

	n := &Node{Elem: e, Parent: parent, optDepth: -1}
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	if err := b.expandInto(e, n); err != nil {
		return nil, err
	}
	if first, ok := b.firstOf[e]; ok {
		n.CopyOf = first
	} else {
		b.firstOf[e] = n
	}
	return n, nil
}

// expandInto attaches e's containment children to node n and splices in
// the members of each IsDerivedFrom target.
func (b *builder) expandInto(e *model.Element, n *Node) error {
	for _, c := range e.Children() {
		if _, err := b.construct(c, n); err != nil {
			return err
		}
	}
	for _, t := range e.DerivedFrom() {
		if b.onPath[t] {
			return fmt.Errorf("%w: through %s", ErrCycle, t)
		}
		b.onPath[t] = true
		err := b.expandInto(t, n)
		delete(b.onPath, t)
		if err != nil {
			return err
		}
	}
	return nil
}

// augment reifies referential constraints as join-view nodes and expands
// view definitions (paper §8.3 and §8.4). Join views are appended after
// their sibling subtrees so that post-order compares them after the tables
// they join, fixing the DAG-ordering ambiguity the paper notes.
func (b *builder) augment() error {
	for _, e := range b.tree.Schema.Elements() {
		switch {
		case e.Kind == model.KindRefInt && b.opt.JoinViews:
			if err := b.addJoinView(e); err != nil {
				return err
			}
		case e.Kind == model.KindView && b.opt.Views:
			if err := b.addView(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// tableOf walks containment up from a column to the element just below the
// refint's parent — the "table" participating in the join.
func tableOf(col, ancestor *model.Element) *model.Element {
	t := col
	for t.Parent() != nil && t.Parent() != ancestor {
		t = t.Parent()
	}
	return t
}

// addJoinView builds the join-view node for one RefInt: children are
// copies of the members of the source table(s) and of the target table.
func (b *builder) addJoinView(ri *model.Element) error {
	parentElem := ri.Parent()
	if parentElem == nil {
		return fmt.Errorf("schematree: refint %s has no containment parent", ri)
	}
	parentNode := b.firstOf[parentElem]
	if parentNode == nil {
		return fmt.Errorf("schematree: refint %s parent %s not materialized", ri, parentElem)
	}
	jv := &Node{Elem: ri, Parent: parentNode, IsJoinView: true, optDepth: -1}
	// Participating tables: the ancestors (below the refint's parent) of
	// each source column, then the target's table.
	var tables []*model.Element
	seen := map[*model.Element]bool{}
	addTable := func(t *model.Element) {
		if t != nil && !seen[t] && !skipElement(t) {
			seen[t] = true
			tables = append(tables, t)
		}
	}
	for _, src := range ri.Aggregates() {
		addTable(tableOf(src, parentElem))
	}
	for _, ref := range ri.References() {
		addTable(tableOf(ref, parentElem))
	}
	for _, tbl := range tables {
		orig := b.firstOf[tbl]
		if orig == nil {
			continue
		}
		// Children of the join view are copies of the table's members
		// (columns), not of the table node itself (Figure 6).
		for _, c := range orig.Children {
			if c.IsJoinView {
				continue // no escalating expansion of nested refints
			}
			jv.Children = append(jv.Children, b.copySubtree(c, jv))
		}
	}
	if len(jv.Children) == 0 {
		return nil // nothing joinable; drop the view silently
	}
	parentNode.Children = append(parentNode.Children, jv)
	return nil
}

// addView expands a view element: a node whose children are copies of the
// subtrees of the elements the view aggregates.
func (b *builder) addView(v *model.Element) error {
	parentElem := v.Parent()
	if parentElem == nil {
		return fmt.Errorf("schematree: view %s has no containment parent", v)
	}
	parentNode := b.firstOf[parentElem]
	if parentNode == nil {
		return fmt.Errorf("schematree: view %s parent %s not materialized", v, parentElem)
	}
	vn := &Node{Elem: v, Parent: parentNode, IsJoinView: true, optDepth: -1}
	for _, m := range v.Aggregates() {
		orig := b.firstOf[m]
		if orig == nil {
			continue
		}
		vn.Children = append(vn.Children, b.copySubtree(orig, vn))
	}
	if len(vn.Children) == 0 {
		return nil
	}
	parentNode.Children = append(parentNode.Children, vn)
	return nil
}

// copySubtree deep-copies a subtree under a new parent, marking the copies'
// CopyOf so lazy expansion can reuse similarity computations.
func (b *builder) copySubtree(orig *Node, parent *Node) *Node {
	cp := &Node{
		Elem:       orig.Elem,
		Parent:     parent,
		IsJoinView: orig.IsJoinView,
		optDepth:   -1,
	}
	if orig.CopyOf != nil {
		cp.CopyOf = orig.CopyOf
	} else {
		cp.CopyOf = orig
	}
	for _, c := range orig.Children {
		cp.Children = append(cp.Children, b.copySubtree(c, cp))
	}
	return cp
}

// finalize assigns post-order indexes, depths, subtree ranges, leaf lists
// and per-leaf optional depths.
func (b *builder) finalize() {
	t := b.tree
	t.Nodes = t.Nodes[:0]
	t.leafIdx = t.leafIdx[:0]
	var walk func(n *Node, depth, deepOpt int) int
	walk = func(n *Node, depth, deepOpt int) int {
		n.Depth = depth
		if n.Elem.Optional {
			deepOpt = depth
		}
		first := len(t.Nodes)
		for _, c := range n.Children {
			f := walk(c, depth+1, deepOpt)
			if f < first {
				first = f
			}
		}
		n.Idx = len(t.Nodes)
		if len(n.Children) == 0 {
			first = n.Idx
			n.optDepth = deepOpt
			t.leafIdx = append(t.leafIdx, n.Idx)
		}
		n.SubFirst = first
		t.Nodes = append(t.Nodes, n)
		return first
	}
	walk(t.Root, 0, -1)
}

// Stats summarizes an expanded tree.
type Stats struct {
	Nodes     int
	Leaves    int
	MaxDepth  int
	JoinViews int
	Copies    int // nodes that are context copies of another node
}

// ComputeStats gathers Stats.
func (t *Tree) ComputeStats() Stats {
	var st Stats
	st.Nodes = len(t.Nodes)
	st.Leaves = len(t.leafIdx)
	for _, n := range t.Nodes {
		if n.Depth > st.MaxDepth {
			st.MaxDepth = n.Depth
		}
		if n.IsJoinView {
			st.JoinViews++
		}
		if n.CopyOf != nil {
			st.Copies++
		}
	}
	return st
}

// Dump renders the tree with post-order indexes for debugging.
func (t *Tree) Dump() string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&sb, "[%d] %s", n.Idx, n.Name())
		if n.IsJoinView {
			sb.WriteString(" (joinview)")
		}
		if n.CopyOf != nil {
			sb.WriteString(" (copy)")
		}
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return sb.String()
}
