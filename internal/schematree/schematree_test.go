package schematree

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
)

// buildShared builds the paper's §8.2 example: PurchaseOrder where Address
// is a shared type referenced by both DeliverTo and InvoiceTo.
func buildShared(t *testing.T) (*model.Schema, *model.Element) {
	t.Helper()
	s := model.New("PurchaseOrder")
	addr := s.AddChild(s.Root(), "Address", model.KindType)
	s.AddChild(addr, "Street", model.KindColumn).Type = model.DTString
	s.AddChild(addr, "City", model.KindColumn).Type = model.DTString
	deliver := s.AddChild(s.Root(), "DeliverTo", model.KindElement)
	invoice := s.AddChild(s.Root(), "InvoiceTo", model.KindElement)
	if err := s.DeriveFrom(deliver, addr); err != nil {
		t.Fatal(err)
	}
	if err := s.DeriveFrom(invoice, addr); err != nil {
		t.Fatal(err)
	}
	return s, addr
}

func TestBuildSimpleTree(t *testing.T) {
	s := model.New("PO")
	lines := s.AddChild(s.Root(), "Lines", model.KindElement)
	item := s.AddChild(lines, "Item", model.KindElement)
	s.AddChild(item, "Line", model.KindAttribute)
	s.AddChild(item, "Qty", model.KindAttribute)
	tr, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5\n%s", tr.Len(), tr.Dump())
	}
	// Post-order: Line, Qty, Item, Lines, PO.
	names := make([]string, tr.Len())
	for i, n := range tr.Nodes {
		if n.Idx != i {
			t.Fatalf("Nodes[%d].Idx = %d", i, n.Idx)
		}
		names[i] = n.Name()
	}
	want := []string{"Line", "Qty", "Item", "Lines", "PO"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("post-order = %v, want %v", names, want)
		}
	}
	if tr.NumLeaves() != 2 {
		t.Errorf("NumLeaves = %d, want 2", tr.NumLeaves())
	}
	// Subtree leaf ranges.
	item2 := tr.NodeByPath("PO.Lines.Item")
	if item2 == nil {
		t.Fatal("NodeByPath failed")
	}
	if got := tr.Leaves(item2); len(got) != 2 {
		t.Errorf("Leaves(Item) = %v", got)
	}
	if got := tr.LeafCount(tr.Root); got != 2 {
		t.Errorf("LeafCount(root) = %d", got)
	}
}

func TestTypeSubstitutionCreatesContexts(t *testing.T) {
	s, addr := buildShared(t)
	tr, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Address's members appear under Address itself, DeliverTo and
	// InvoiceTo: 3 contexts for Street and for City.
	var street *model.Element
	model.PreOrder(s.Root(), func(e *model.Element) {
		if e.Name == "Street" {
			street = e
		}
	})
	nodes := tr.NodesOfElement(street)
	if len(nodes) != 3 {
		t.Fatalf("Street contexts = %d, want 3\n%s", len(nodes), tr.Dump())
	}
	paths := map[string]bool{}
	for _, n := range nodes {
		paths[n.Path()] = true
	}
	for _, want := range []string{
		"PurchaseOrder.Address.Street",
		"PurchaseOrder.DeliverTo.Street",
		"PurchaseOrder.InvoiceTo.Street",
	} {
		if !paths[want] {
			t.Errorf("missing context %q (have %v)", want, paths)
		}
	}
	// Later contexts are marked as copies of the first.
	copies := 0
	for _, n := range nodes {
		if n.CopyOf != nil {
			copies++
		}
	}
	if copies != 2 {
		t.Errorf("copies = %d, want 2", copies)
	}
	_ = addr
}

func TestCycleDetection(t *testing.T) {
	s := model.New("S")
	a := s.AddChild(s.Root(), "A", model.KindType)
	b := s.AddChild(a, "B", model.KindElement)
	if err := s.DeriveFrom(b, a); err != nil { // B IsDerivedFrom A, A contains B
		t.Fatal(err)
	}
	_, err := Build(s, DefaultOptions())
	if err == nil {
		t.Fatal("Build accepted a recursive type")
	}
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("error %v is not ErrCycle", err)
	}
}

func TestNotInstantiatedSkipped(t *testing.T) {
	s := model.New("DB")
	tbl := s.AddChild(s.Root(), "T", model.KindTable)
	s.AddChild(tbl, "C", model.KindColumn)
	key := s.AddChild(tbl, "PK", model.KindKey)
	key.NotInstantiated = true
	tr, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes {
		if n.Elem == key {
			t.Fatal("not-instantiated key materialized")
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
}

// buildFK builds the paper's Figure 6: Purchase Order and Customer tables
// with a foreign key from PurchaseOrder.CustomerID to Customer.
func buildFK(t *testing.T) *model.Schema {
	t.Helper()
	s := model.New("DB")
	po := s.AddChild(s.Root(), "PurchaseOrder", model.KindTable)
	s.AddChild(po, "OrderID", model.KindColumn).Type = model.DTInt
	s.AddChild(po, "ProductName", model.KindColumn).Type = model.DTString
	cid := s.AddChild(po, "CustomerID", model.KindColumn)
	cid.Type = model.DTInt
	cust := s.AddChild(s.Root(), "Customer", model.KindTable)
	pk := s.AddChild(cust, "CustomerID", model.KindColumn)
	pk.Type = model.DTInt
	pk.IsKey = true
	s.AddChild(cust, "Name", model.KindColumn).Type = model.DTString
	s.AddChild(cust, "Address", model.KindColumn).Type = model.DTString
	if _, err := s.AddRefInt("Order-Customer-fk", []*model.Element{cid}, cust); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJoinViewAugmentation(t *testing.T) {
	s := buildFK(t)
	tr, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var jv *Node
	for _, n := range tr.Nodes {
		if n.IsJoinView {
			jv = n
		}
	}
	if jv == nil {
		t.Fatalf("no join view node\n%s", tr.Dump())
	}
	if jv.Name() != "Order-Customer-fk" {
		t.Errorf("join view name = %q", jv.Name())
	}
	if jv.Parent != tr.Root {
		t.Errorf("join view parent = %v, want root (common ancestor)", jv.Parent.Name())
	}
	// Children: copies of the columns of both tables (3 + 3).
	if len(jv.Children) != 6 {
		t.Errorf("join view children = %d, want 6\n%s", len(jv.Children), tr.Dump())
	}
	for _, c := range jv.Children {
		if c.CopyOf == nil {
			t.Errorf("join view child %s not marked as copy", c.Name())
		}
	}
	// Join view appears after both tables in post-order (DAG ordering fix).
	for _, n := range tr.Nodes {
		if n.Elem.Kind == model.KindTable && n.Idx > jv.Idx {
			t.Errorf("table %s ordered after join view", n.Name())
		}
	}
}

func TestJoinViewDisabled(t *testing.T) {
	s := buildFK(t)
	tr, err := Build(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes {
		if n.IsJoinView {
			t.Fatal("join view created despite JoinViews=false")
		}
	}
}

func TestViewExpansion(t *testing.T) {
	s := model.New("DB")
	t1 := s.AddChild(s.Root(), "Orders", model.KindTable)
	c1 := s.AddChild(t1, "OrderID", model.KindColumn)
	t2 := s.AddChild(s.Root(), "Items", model.KindTable)
	c2 := s.AddChild(t2, "ItemID", model.KindColumn)
	v := s.AddChild(s.Root(), "OrderItems", model.KindView)
	if err := s.Aggregate(v, c1); err != nil {
		t.Fatal(err)
	}
	if err := s.Aggregate(v, c2); err != nil {
		t.Fatal(err)
	}
	tr, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vn := tr.NodeByPath("DB.OrderItems")
	if vn == nil || !vn.IsJoinView {
		t.Fatalf("view node missing\n%s", tr.Dump())
	}
	if len(vn.Children) != 2 {
		t.Errorf("view children = %d, want 2", len(vn.Children))
	}
}

func TestOptionalRelativeTo(t *testing.T) {
	s := model.New("S")
	a := s.AddChild(s.Root(), "A", model.KindElement)
	opt := s.AddChild(a, "Opt", model.KindElement)
	opt.Optional = true
	leaf1 := s.AddChild(opt, "L1", model.KindAttribute)
	leaf2 := s.AddChild(a, "L2", model.KindAttribute)
	_ = leaf1
	_ = leaf2
	tr, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root
	aN := tr.NodeByPath("S.A")
	l1 := tr.NodeByPath("S.A.Opt.L1")
	l2 := tr.NodeByPath("S.A.L2")
	if !l1.OptionalRelativeTo(root) || !l1.OptionalRelativeTo(aN) {
		t.Error("L1 should be optional relative to root and A (Opt on path)")
	}
	if l2.OptionalRelativeTo(root) {
		t.Error("L2 should be required relative to root")
	}
	optN := tr.NodeByPath("S.A.Opt")
	if l1.OptionalRelativeTo(optN) {
		t.Error("L1 should be required relative to Opt itself (no optional strictly below)")
	}
	// An optional leaf itself is optional relative to its parent.
	s2 := model.New("S2")
	p := s2.AddChild(s2.Root(), "P", model.KindElement)
	ol := s2.AddChild(p, "OL", model.KindAttribute)
	ol.Optional = true
	tr2, err := Build(s2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pn := tr2.NodeByPath("S2.P")
	oln := tr2.NodeByPath("S2.P.OL")
	if !oln.OptionalRelativeTo(pn) {
		t.Error("optional leaf should be optional relative to its parent")
	}
}

func TestFrontier(t *testing.T) {
	s := model.New("S")
	a := s.AddChild(s.Root(), "A", model.KindElement)
	b := s.AddChild(a, "B", model.KindElement)
	s.AddChild(b, "C", model.KindAttribute)
	s.AddChild(a, "D", model.KindAttribute)
	tr, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root
	// k=1: frontier of root = {A} (non-leaf at depth 1 treated as pseudo-leaf).
	f1 := tr.Frontier(root, 1)
	if len(f1) != 1 || tr.Nodes[f1[0]].Name() != "A" {
		t.Errorf("Frontier(root,1) = %v", f1)
	}
	// k=2: frontier = {B, D}.
	f2 := tr.Frontier(root, 2)
	if len(f2) != 2 {
		t.Errorf("Frontier(root,2) = %v", f2)
	}
	// k=0: all leaves.
	f0 := tr.Frontier(root, 0)
	if len(f0) != tr.NumLeaves() {
		t.Errorf("Frontier(root,0) = %v", f0)
	}
}

func TestMaxNodesGuard(t *testing.T) {
	// Chain of shared types multiplying contexts: each level derives twice
	// from the level below, doubling the expansion.
	s := model.New("S")
	prev := s.AddChild(s.Root(), "T0", model.KindType)
	s.AddChild(prev, "leaf", model.KindAttribute)
	for i := 1; i < 20; i++ {
		ti := s.AddChild(s.Root(), "T"+strings.Repeat("i", i), model.KindType)
		a := s.AddChild(ti, "a", model.KindElement)
		b := s.AddChild(ti, "b", model.KindElement)
		if err := s.DeriveFrom(a, prev); err != nil {
			t.Fatal(err)
		}
		if err := s.DeriveFrom(b, prev); err != nil {
			t.Fatal(err)
		}
		prev = ti
	}
	_, err := Build(s, Options{MaxNodes: 10000})
	if err == nil {
		t.Fatal("Build accepted exponential expansion beyond MaxNodes")
	}
}

func TestStatsAndDump(t *testing.T) {
	s := buildFK(t)
	tr, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if st.JoinViews != 1 {
		t.Errorf("JoinViews = %d, want 1", st.JoinViews)
	}
	if st.Copies == 0 {
		t.Error("Copies = 0, want > 0 (join view children)")
	}
	if st.Nodes != tr.Len() || st.Leaves != tr.NumLeaves() {
		t.Error("stats disagree with tree")
	}
	d := tr.Dump()
	if !strings.Contains(d, "(joinview)") || !strings.Contains(d, "(copy)") {
		t.Errorf("Dump missing annotations:\n%s", d)
	}
}

// Invariants: post-order indexes are dense; every subtree occupies the
// contiguous range [SubFirst, Idx]; leaves lists are consistent.
func TestTreeInvariants(t *testing.T) {
	s, _ := buildShared(t)
	tr, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range tr.Nodes {
		if n.Idx != i {
			t.Fatalf("Idx mismatch at %d", i)
		}
		if n.SubFirst > n.Idx {
			t.Fatalf("SubFirst %d > Idx %d", n.SubFirst, n.Idx)
		}
		// Every child's range nests inside the parent's.
		for _, c := range n.Children {
			if c.SubFirst < n.SubFirst || c.Idx >= n.Idx {
				t.Fatalf("child range [%d,%d] outside parent [%d,%d]",
					c.SubFirst, c.Idx, n.SubFirst, n.Idx)
			}
		}
		// Leaves(n) all fall inside the range and are leaves.
		for _, li := range tr.Leaves(n) {
			if li < n.SubFirst || li > n.Idx {
				t.Fatalf("leaf %d outside [%d,%d]", li, n.SubFirst, n.Idx)
			}
			if !tr.Nodes[li].IsLeaf() {
				t.Fatalf("Leaves returned non-leaf %d", li)
			}
		}
	}
	// Root covers everything.
	if tr.Root.Idx != tr.Len()-1 || tr.Root.SubFirst != 0 {
		t.Error("root range wrong")
	}
}
