package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/par"
)

// sig builds a uniformly weighted test signature.
func sig(leaves int, tokens ...string) model.Signature {
	return model.NewSignature(leaves, leaves, append([]string(nil), tokens...))
}

// fp derives a deterministic fake fingerprint for a test document.
func fp(key string, version int) string {
	return fmt.Sprintf("%s#%d", key, version)
}

// bruteTopK is the reference retrieval: score every document sharing at
// least one token with the query by exact affinity, sort descending with
// key tie-break, truncate.
func bruteTopK(docs map[string]model.Signature, q model.Signature, k int) []Candidate {
	shared := func(a, b []string) int {
		i, j, n := 0, 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] == b[j]:
				n++
				i++
				j++
			case a[i] < b[j]:
				i++
			default:
				j++
			}
		}
		return n
	}
	var out []Candidate
	for key, ds := range docs {
		if shared(q.Tokens, ds.Tokens) == 0 {
			continue
		}
		out = append(out, Candidate{Key: key, Affinity: q.Affinity(ds)})
	}
	sortCandidates(out)
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

func sortCandidates(cs []Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			a, b := cs[j-1], cs[j]
			if b.Affinity > a.Affinity || (b.Affinity == a.Affinity && b.Key < a.Key) {
				cs[j-1], cs[j] = b, a
			} else {
				break
			}
		}
	}
}

func assertSameCandidates(t *testing.T, want, got []Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("candidate counts differ: want %d, got %d\nwant %v\ngot  %v", len(want), len(got), want, got)
	}
	for i := range want {
		if want[i].Key != got[i].Key || want[i].Affinity != got[i].Affinity {
			t.Errorf("candidate %d: want (%s, %v), got (%s, %v)",
				i, want[i].Key, want[i].Affinity, got[i].Key, got[i].Affinity)
		}
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	ix := New(4)
	docs := map[string]model.Signature{
		"orders":    sig(4, "order", "date", "custom", "amount"),
		"purchases": sig(5, "purchas", "date", "custom", "total"),
		"telemetry": sig(3, "sensor", "volt", "read"),
		"payroll":   sig(6, "salari", "employe", "date"),
		"empty":     sig(2),
	}
	for k, s := range docs {
		ix.Upsert(k, fp(k, 0), s)
	}
	q := sig(4, "order", "date", "custom")
	for _, k := range []int{0, 1, 2, 10} {
		got, st := ix.TopK(q, k)
		want := bruteTopK(docs, q, k)
		assertSameCandidates(t, want, got)
		if st.Scored != 3 { // orders, purchases, payroll share tokens
			t.Errorf("k=%d: scored %d survivors, want 3", k, st.Scored)
		}
	}
	// telemetry and the token-less doc share nothing: never touched.
	all, _ := ix.TopK(q, 0)
	for _, c := range all {
		if c.Key == "telemetry" || c.Key == "empty" {
			t.Errorf("zero-overlap document %q surfaced", c.Key)
		}
	}
}

func TestTopKEmptyQueryAndEmptyIndex(t *testing.T) {
	ix := New(2)
	if got, st := ix.TopK(sig(1, "order"), 5); len(got) != 0 || st.Scored != 0 {
		t.Errorf("empty index returned %v (scored %d)", got, st.Scored)
	}
	ix.Upsert("orders", fp("orders", 0), sig(2, "order"))
	if got, st := ix.TopK(sig(0), 5); len(got) != 0 || st.Scored != 0 {
		t.Errorf("token-less query returned %v (scored %d)", got, st.Scored)
	}
}

func TestUpsertReplacesAcrossShards(t *testing.T) {
	// Replacing content under the same key hashes to a (likely) different
	// shard; the old postings must be gone no matter where they lived.
	ix := New(8)
	ix.Upsert("orders", fp("orders", 0), sig(3, "order", "date"))
	for v := 1; v <= 32; v++ {
		ix.Upsert("orders", fp("orders", v), sig(3, "purchas", "total"))
		if n := ix.Len(); n != 1 {
			t.Fatalf("after replace %d: Len = %d, want 1", v, n)
		}
	}
	if got, _ := ix.TopK(sig(3, "order", "date"), 0); len(got) != 0 {
		t.Errorf("stale postings survived replacement: %v", got)
	}
	got, _ := ix.TopK(sig(3, "purchas"), 0)
	if len(got) != 1 || got[0].Key != "orders" {
		t.Errorf("replacement not retrievable: %v", got)
	}
}

func TestRemove(t *testing.T) {
	ix := New(4)
	ix.Upsert("a", fp("a", 0), sig(2, "order", "date"))
	ix.Upsert("b", fp("b", 0), sig(2, "order", "total"))
	if !ix.Remove("a") {
		t.Fatal("Remove(a) = false, want true")
	}
	if ix.Remove("a") {
		t.Error("double Remove(a) = true, want false")
	}
	if n := ix.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
	got, _ := ix.TopK(sig(2, "order"), 0)
	if len(got) != 1 || got[0].Key != "b" {
		t.Errorf("postings after remove: %v", got)
	}
}

func TestTopKWeightedOverlapAccumulates(t *testing.T) {
	ix := New(2)
	ds := model.NewWeightedSignature(2, 2,
		[]string{"order", "number:1"}, []float64{1, 0.25})
	ix.Upsert("d", fp("d", 0), ds)
	q := model.NewWeightedSignature(2, 2,
		[]string{"order", "number:1"}, []float64{1, 0.25})
	got, _ := ix.TopK(q, 0)
	if len(got) != 1 {
		t.Fatalf("got %d candidates, want 1", len(got))
	}
	if got[0].Hits != 2 {
		t.Errorf("Hits = %d, want 2", got[0].Hits)
	}
	want := 1*1 + 0.25*0.25
	if got[0].Overlap != want {
		t.Errorf("Overlap = %v, want %v", got[0].Overlap, want)
	}
	if got[0].Affinity != q.Affinity(ds) {
		t.Errorf("Affinity = %v, want the exact signature affinity %v", got[0].Affinity, q.Affinity(ds))
	}
}

// TestStopPostingCutSkipsCommonTokens pins the discovery cut: a token
// most of a shard contains stops generating survivors, but still counts
// in every survivor's exact affinity.
func TestStopPostingCutSkipsCommonTokens(t *testing.T) {
	ix := New(1) // single shard so posting lengths are fully controlled
	docs := map[string]model.Signature{}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("noise%d", i)
		docs[key] = sig(2, "date", fmt.Sprintf("uniq%d", i))
		ix.Upsert(key, fp(key, 0), docs[key])
	}
	docs["target"] = sig(2, "date", "order", "custom")
	ix.Upsert("target", fp("target", 0), docs["target"])

	// "date" is in 41 of 41 docs: above the floor (32) and the fraction
	// (0.25·41); "order" is rare. Only genuine overlap should surface.
	q := sig(2, "date", "order")
	got, st := ix.TopK(q, 0)
	if len(got) != 1 || got[0].Key != "target" {
		t.Fatalf("survivors = %v, want only target (the date-sharers must be cut)", got)
	}
	if st.Scored != 1 {
		t.Errorf("scored %d, want 1", st.Scored)
	}
	// The affinity re-rank still sees the full bags, skipped token
	// included: it must equal the literal Signature.Affinity.
	if want := q.Affinity(docs["target"]); got[0].Affinity != want {
		t.Errorf("Affinity = %v, want exact %v", got[0].Affinity, want)
	}
	// Hits/Overlap report only accumulated (non-cut) evidence.
	if got[0].Hits != 1 {
		t.Errorf("Hits = %d, want 1 (the cut token must not count)", got[0].Hits)
	}

	// A query of nothing but common tokens must not go blind: the guard
	// accumulates them all, exactly the scan the pruned path would do.
	all, st2 := ix.TopK(sig(1, "date"), 0)
	if len(all) != 41 || st2.Scored != 41 {
		t.Errorf("all-common query scored %d survivors, want all 41", st2.Scored)
	}

	// An absent token must not count as "kept": a query pairing a common
	// token with one the shard has never seen still falls back to the
	// common token instead of going blind.
	ghost, st3 := ix.TopK(sig(2, "date", "zebra"), 0)
	if len(ghost) != 41 || st3.Scored != 41 {
		t.Errorf("common+absent query scored %d survivors, want all 41 (absent token suppressed the fallback)", st3.Scored)
	}
}

// TestIncrementalEqualsFromScratch is the property test: after any random
// interleaving of Upsert (inserts and replaces) and Remove, the
// incrementally maintained index retrieves exactly what an index built
// from scratch over the surviving entries retrieves.
func TestIncrementalEqualsFromScratch(t *testing.T) {
	vocab := []string{"order", "date", "custom", "total", "purchas", "salari",
		"employe", "sensor", "volt", "read", "street", "citi", "zip"}
	rng := rand.New(rand.NewSource(7))
	randSig := func() model.Signature {
		n := 1 + rng.Intn(6)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = vocab[rng.Intn(len(vocab))]
		}
		return sig(1+rng.Intn(8), toks...)
	}

	for trial := 0; trial < 20; trial++ {
		ix := New(1 + rng.Intn(8))
		live := map[string]model.Signature{}
		version := map[string]int{}
		for op := 0; op < 120; op++ {
			key := fmt.Sprintf("doc%d", rng.Intn(20))
			switch rng.Intn(3) {
			case 0, 1: // insert or replace
				s := randSig()
				version[key]++
				ix.Upsert(key, fp(key, version[key]), s)
				live[key] = s
			case 2:
				got := ix.Remove(key)
				if _, ok := live[key]; ok != got {
					t.Fatalf("trial %d op %d: Remove(%s) = %v, live says %v", trial, op, key, got, ok)
				}
				delete(live, key)
			}
		}
		if ix.Len() != len(live) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, ix.Len(), len(live))
		}
		fresh := New(4)
		for k, s := range live {
			fresh.Upsert(k, fp(k, version[k]), s)
		}
		for probe := 0; probe < 5; probe++ {
			q := randSig()
			for _, k := range []int{0, 3, 10} {
				inc, _ := ix.TopK(q, k)
				scr, _ := fresh.TopK(q, k)
				assertSameCandidates(t, scr, inc)
				assertSameCandidates(t, bruteTopK(live, q, k), inc)
			}
		}
	}
}

func TestTopKDeterministicAcrossWorkerCounts(t *testing.T) {
	ix := New(8)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("doc%d", i)
		ix.Upsert(key, fp(key, 0), sig(1+i%5, "order", fmt.Sprintf("tok%d", i%7), "date"))
	}
	q := sig(3, "order", "tok3", "date")
	prev := par.SetMaxWorkers(1)
	seq, _ := ix.TopK(q, 16)
	par.SetMaxWorkers(8)
	conc, _ := ix.TopK(q, 16)
	par.SetMaxWorkers(prev)
	assertSameCandidates(t, seq, conc)
}

// TestConcurrentMaintenanceAndRetrieval exercises the lock structure
// under -race: concurrent upserts, removes and queries across shards.
func TestConcurrentMaintenanceAndRetrieval(t *testing.T) {
	ix := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("doc%d", (g*7+i)%31)
				switch i % 4 {
				case 0, 1:
					ix.Upsert(key, fp(key, g*1000+i), sig(2, "order", fmt.Sprintf("tok%d", i%5)))
				case 2:
					ix.Remove(key)
				default:
					ix.TopK(sig(2, "order", "tok1"), 5)
				}
			}
		}(g)
	}
	wg.Wait()
}
