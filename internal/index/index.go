// Package index implements the repository's sharded token inverted index:
// the sublinear candidate-generation stage of retrieval. Where signature
// pruning (registry.MatchTop) still computes an affinity against every
// stored schema — O(n) per query — the index inverts the token bags once,
// at registration: each normalized signature token maps to a posting list
// of the schemas containing it, so a query only ever touches schemas that
// share at least one token with it.
//
// Retrieval is the classic two-stage funnel:
//
//  1. Accumulate: every query token's posting list is walked once,
//     accumulating the weighted token overlap (query weight × posting
//     weight, model.Signature weights) and the raw hit count per posting.
//     Schemas sharing no token are never touched, and query tokens whose
//     posting list covers a large fraction of a shard (corpus-wide stems
//     like "date" or "name") are skipped as discriminating nothing —
//     the stop-posting cut that keeps the survivor set proportional to
//     genuine overlap instead of collapsing to the whole repository.
//  2. Re-rank: the accumulator's survivors are re-ranked by the exact
//     signature affinity (a literal model.Signature.Affinity call —
//     identical to the score the pruned path uses, skipped tokens and
//     all), descending, ties broken by key, and truncated to the
//     candidate budget.
//
// The caller (registry.MatchIndexed) then runs the full tree match on the
// returned candidates only. A schema whose only overlap with the query is
// skipped common tokens is unreachable — by construction such a schema's
// token Jaccard is low, and the recall trade is measured, not assumed
// (cupidbench asserts recall@10 >= 0.98 vs the exact scan on the
// 1-vs-2000 corpus).
//
// The index is sharded N ways by document: a schema's resident shard is
// chosen by an FNV-1a hash of its content fingerprint, so each shard is a
// complete mini-index over its subset of schemas and both maintenance
// (Upsert/Remove lock one shard) and retrieval (every shard accumulates
// independently, fanned over the internal/par pool, results merged once)
// scale across cores. A separate key directory, sharded by key hash, maps
// a registry name to its resident shard so replacing a schema under the
// same name finds — and evicts — the old posting set even though new
// content hashes to a different shard.
//
// The index is maintained strictly incrementally and is never persisted:
// the durable registry rebuilds it deterministically by re-registering the
// snapshot's documents on recovery. Determinism holds by construction —
// signature token bags are sorted and deduplicated with stable weights, a
// document's accumulator sums are accumulated in query-token order
// regardless of posting-list order, and the final ordering breaks ties by
// key — so any interleaving of Upsert/Remove that reaches the same entry
// set yields the same TopK as an index built from scratch (asserted by the
// property tests).
package index

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/par"
)

// DefaultShards is the shard count New uses for n <= 0: enough to spread
// registration and retrieval across the worker pool on typical core
// counts without fragmenting small repositories.
const DefaultShards = 16

// posting is one document's entry in a token's posting list: the
// document's shard-local id and the token's stable weight in that
// document's signature.
type posting struct {
	id     uint32
	weight float64
}

// docInfo is the per-document record a shard keeps: the registry key and
// the full signature (the token bag drives posting removal; the whole
// signature serves the exact affinity re-rank).
type docInfo struct {
	key string
	sig model.Signature
}

// shard is one doc-partition of the index. All its state is guarded by
// one RWMutex: maintenance takes the write lock, retrieval the read lock,
// and different shards never contend.
type shard struct {
	mu    sync.RWMutex
	next  uint32
	free  []uint32
	docs  map[uint32]docInfo
	byKey map[string]uint32 // registry key → shard-local id, for O(1) eviction
	post  map[string][]posting
}

// dirShard is one partition of the key directory, mapping a registry key
// to the doc shard its current content lives in. Its mutex also
// serializes maintenance per key: Upsert/Remove of the same key always
// lock the same dirShard first, so a replace can never interleave with a
// concurrent remove of the same key.
type dirShard struct {
	mu  sync.Mutex
	loc map[string]int // key → doc-shard index
}

// Index is the sharded inverted index. All methods are safe for
// concurrent use.
type Index struct {
	shards []shard
	dir    []dirShard
	// dfs is the token-hash-sharded document-frequency table behind
	// ProbeStats: df[t] = number of indexed documents whose signature
	// contains token t, maintained incrementally alongside the posting
	// lists (stats.go).
	dfs []dfShard
	// ndocs mirrors Len as an atomic counter so ProbeStats can read the
	// corpus size without walking the directory shards.
	ndocs atomic.Int64
}

// New builds an empty index with the given shard count (DefaultShards
// for n <= 0).
func New(shards int) *Index {
	if shards <= 0 {
		shards = DefaultShards
	}
	ix := &Index{shards: make([]shard, shards), dir: make([]dirShard, shards), dfs: make([]dfShard, shards)}
	for i := range ix.shards {
		ix.shards[i].docs = map[uint32]docInfo{}
		ix.shards[i].byKey = map[string]uint32{}
		ix.shards[i].post = map[string][]posting{}
	}
	for i := range ix.dir {
		ix.dir[i].loc = map[string]int{}
	}
	for i := range ix.dfs {
		ix.dfs[i].df = map[string]int{}
	}
	return ix
}

// Hash32 is the 32-bit FNV-1a hash — tiny, allocation-free, and good
// enough to spread fingerprints (already uniform hashes) and keys across
// shards. Exported because the registry places its own map shards with
// the same function; keeping one implementation keeps the two sharding
// schemes from drifting apart.
func Hash32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Upsert indexes the signature under key, evicting any previous content
// indexed under the same key. The resident shard is chosen by the content
// fingerprint, so replacing a schema may move it between shards; the key
// directory tracks the move.
func (ix *Index) Upsert(key, fingerprint string, sig model.Signature) {
	d := &ix.dir[Hash32(key)%uint32(len(ix.dir))]
	target := int(Hash32(fingerprint) % uint32(len(ix.shards)))
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.loc[key]; ok {
		if oldSig, had := ix.shards[old].remove(key); had {
			ix.dfUpdate(oldSig, -1)
		}
	} else {
		ix.ndocs.Add(1)
	}
	ix.shards[target].add(key, sig)
	ix.dfUpdate(sig, +1)
	d.loc[key] = target
}

// Remove drops the document indexed under key, reporting whether it was
// indexed.
func (ix *Index) Remove(key string) bool {
	d := &ix.dir[Hash32(key)%uint32(len(ix.dir))]
	d.mu.Lock()
	defer d.mu.Unlock()
	old, ok := d.loc[key]
	if !ok {
		return false
	}
	if oldSig, had := ix.shards[old].remove(key); had {
		ix.dfUpdate(oldSig, -1)
	}
	delete(d.loc, key)
	ix.ndocs.Add(-1)
	return true
}

// Len reports the number of indexed documents.
func (ix *Index) Len() int {
	n := 0
	for i := range ix.dir {
		ix.dir[i].mu.Lock()
		n += len(ix.dir[i].loc)
		ix.dir[i].mu.Unlock()
	}
	return n
}

// add inserts the document into this shard's docs and posting lists.
func (s *shard) add(key string, sig model.Signature) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id uint32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	s.docs[id] = docInfo{key: key, sig: sig}
	s.byKey[key] = id
	for i, t := range sig.Tokens {
		s.post[t] = append(s.post[t], posting{id: id, weight: sig.Weight(i)})
	}
}

// remove deletes the document registered in this shard under key, along
// with every posting it contributed, returning the removed signature so
// the caller can decrement its tokens' document frequencies. Posting
// lists are unordered (the accumulator is order-independent per
// document), so eviction is a swap-remove.
func (s *shard) remove(key string) (model.Signature, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, found := s.byKey[key]
	if !found {
		return model.Signature{}, false
	}
	delete(s.byKey, key)
	for _, t := range s.docs[id].sig.Tokens {
		ps := s.post[t]
		for i := range ps {
			if ps[i].id == id {
				ps[i] = ps[len(ps)-1]
				ps = ps[:len(ps)-1]
				break
			}
		}
		if len(ps) == 0 {
			delete(s.post, t)
		} else {
			s.post[t] = ps
		}
	}
	sig := s.docs[id].sig
	delete(s.docs, id)
	s.free = append(s.free, id)
	return sig, true
}

// Candidate is one retrieval survivor: a document sharing at least one
// token with the query, scored for the final candidate ranking.
type Candidate struct {
	// Key is the registry key the document was indexed under.
	Key string
	// Affinity is the exact signature affinity (model.Signature.Affinity)
	// between the query and this document — the re-rank score, identical
	// to what the pruned path would have computed.
	Affinity float64
	// Overlap is the accumulated weighted token overlap (Σ query weight ×
	// posting weight over shared accumulated tokens) — the stage-1
	// discovery evidence. Tokens dropped by the stop-posting cut do not
	// contribute.
	Overlap float64
	// Hits is the number of distinct shared accumulated tokens (same cut
	// caveat as Overlap; the Affinity re-rank always sees the full bags).
	Hits int
}

// Stats reports what one TopK call did, for observability (the server
// surfaces it as candidates_scored).
type Stats struct {
	// Scored is the number of accumulator survivors — documents sharing at
	// least one token with the query, each of which received an exact
	// affinity score. The gap between Scored and the repository size is
	// the work the inverted index never did.
	Scored int
}

// accum is one document's accumulator cell.
type accum struct {
	hits    int
	overlap float64
}

// Stop-posting cut: a query token is skipped in a shard when its posting
// list exceeds both an absolute floor (small shards never skip — tiny
// repositories must behave exactly like a scan) and a fraction of the
// shard's documents (a token most of the shard contains separates
// nothing). Both tests are pure functions of the shard's current entry
// set, so skipping is deterministic and identical for an incrementally
// maintained and a from-scratch index.
const (
	commonPostingFloor    = 32
	commonPostingFraction = 0.25
)

// commonCutoff returns the posting-list length above which a token
// counts as common in this shard; callers hold at least a read lock.
func (s *shard) commonCutoff() int {
	frac := int(commonPostingFraction * float64(len(s.docs)))
	if frac < commonPostingFloor {
		return commonPostingFloor
	}
	return frac
}

// TopK retrieves the top k candidates for the query signature: weighted
// token overlap accumulated per posting, then the exact affinity re-rank
// over the accumulator's survivors, descending, ties broken by key.
// k <= 0 returns every survivor. Shards accumulate independently over the
// internal/par pool; the result is deterministic regardless of worker
// count or maintenance interleaving.
func (ix *Index) TopK(q model.Signature, k int) ([]Candidate, Stats) {
	perShard := make([][]Candidate, len(ix.shards))
	par.For(len(ix.shards), func(i int) {
		perShard[i] = ix.shards[i].survivors(q)
	})
	var out []Candidate
	for _, cs := range perShard {
		out = append(out, cs...)
	}
	st := Stats{Scored: len(out)}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Affinity != out[j].Affinity {
			return out[i].Affinity > out[j].Affinity
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, st
}

// survivors accumulates the query against one shard and scores every
// document sharing at least one accumulated token. Accumulation per
// document happens in query-token order (the outer loop), so sums are
// bit-identical no matter how posting lists are ordered internally.
func (s *shard) survivors(q model.Signature) []Candidate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.docs) == 0 || len(q.Tokens) == 0 {
		return nil
	}
	// Stop-posting cut, with a guard: if every query token *present in
	// this shard* is common (a query whose overlap here is nothing but
	// corpus-wide stems), skipping them all would hide the shard entirely
	// — accumulate everything instead, which is still exactly the scan
	// the pruned path would do. Absent tokens (empty posting list) do not
	// count as kept: they contribute nothing, so they must not suppress
	// the fallback.
	cut := s.commonCutoff()
	anyKept := false
	for _, t := range q.Tokens {
		if n := len(s.post[t]); n > 0 && n <= cut {
			anyKept = true
			break
		}
	}
	acc := make(map[uint32]accum)
	for i, t := range q.Tokens {
		ps, ok := s.post[t]
		if !ok {
			continue
		}
		if anyKept && len(ps) > cut {
			continue
		}
		qw := q.Weight(i)
		for _, p := range ps {
			a := acc[p.id]
			a.hits++
			a.overlap += qw * p.weight
			acc[p.id] = a
		}
	}
	if len(acc) == 0 {
		return nil
	}
	out := make([]Candidate, 0, len(acc))
	for id, a := range acc {
		d := s.docs[id]
		// The exact re-rank: a literal Affinity call over the full bags,
		// so a survivor's score is identical to the pruned path's no
		// matter what the stop-posting cut skipped during discovery.
		out = append(out, Candidate{
			Key:      d.key,
			Affinity: q.Affinity(d.sig),
			Overlap:  a.overlap,
			Hits:     a.hits,
		})
	}
	return out
}
