package index

import (
	"sync"

	"repro/internal/model"
)

// Per-query probe statistics: the cheap, O(probe tokens) numbers the
// retrieval planner (registry.Plan) consults before committing to a
// strategy. The index already knows, per token, how many documents
// contain it — the document-frequency table maintained incrementally
// alongside the posting lists — so a planner can estimate the candidate
// pool a probe can reach, and how much of that pool sits behind
// stop-common tokens, without touching a single posting list. None of
// this changes retrieval behavior; TopK is byte-identical with or
// without a ProbeStats call.

// dfShard is one token-hash partition of the document-frequency table.
// Sharding mirrors the posting shards' purpose (maintenance from
// different registrations rarely contends) but hashes by token, not by
// document: df is a corpus-wide count, so it cannot live inside the
// per-document shards.
type dfShard struct {
	mu sync.RWMutex
	df map[string]int
}

// ProbeStats summarizes what the index knows about one query signature:
// corpus size, how many of the probe's tokens the index has seen, how
// many of those are stop-common (posting lists past CommonCutoff), and
// the size of the posting pool behind the remaining discriminating
// tokens. Every field is derived from per-token document frequencies —
// the call is O(len(q.Tokens)) map lookups and allocates nothing.
type ProbeStats struct {
	// Docs is the number of indexed documents (the corpus size).
	Docs int
	// ProbeTokens is len(q.Tokens): the probe signature's vocabulary size.
	ProbeTokens int
	// TokensIndexed is the number of probe tokens at least one document
	// contains. Zero means the index is blind to this probe — it would
	// generate no candidates at all.
	TokensIndexed int
	// TokensCommon is the number of indexed probe tokens whose document
	// frequency exceeds CommonCutoff — corpus-wide stems the stop-posting
	// cut will skip during accumulation (approximately; the cut itself is
	// per shard).
	TokensCommon int
	// PostingsTotal is the summed document frequency over every indexed
	// probe token — an upper bound on the accumulation work the indexed
	// path can do for this probe.
	PostingsTotal int
	// PostingsKept is the summed document frequency over the indexed,
	// non-common probe tokens — an estimate of the candidate pool
	// reachable through discriminating tokens once the stop-posting cut
	// has done its work.
	PostingsKept int
	// MaxKeptDF is the largest single document frequency among the kept
	// (indexed, non-common) tokens: the size of the biggest one-token
	// candidate cluster. A budget covering this cluster covers every
	// document reachable through the probe's most popular discriminating
	// token.
	MaxKeptDF int
	// MinKeptDF is the smallest single document frequency among the kept
	// tokens: the probe's sharpest discriminating signal. When even this
	// is a large fraction of the corpus, every posting list the
	// accumulator would walk is near-uniform noise and the index cannot
	// separate true matches from the crowd. Zero when nothing is kept.
	MinKeptDF int
}

// CommonCutoff is the corpus-wide document-frequency threshold above
// which a token counts as stop-common for planning purposes:
//
//	max(commonPostingFloor × shards, commonPostingFraction × docs)
//
// It approximates the per-shard stop-posting cut (shard.commonCutoff)
// for a token spread uniformly over the shards: such a token's per-shard
// posting list of df/shards postings exceeds max(floor, fraction ×
// docs/shards) exactly when df exceeds the value returned here. Skewed
// tokens can straddle the per-shard cut differently in different shards;
// the planner only needs the estimate, retrieval always applies the real
// per-shard rule.
func CommonCutoff(docs, shards int) int {
	if shards <= 0 {
		shards = DefaultShards
	}
	floor := commonPostingFloor * shards
	frac := int(commonPostingFraction * float64(docs))
	if frac < floor {
		return floor
	}
	return frac
}

// ProbeStats reports the planner statistics for one query signature. It
// is O(len(q.Tokens)), allocation-free, and safe for concurrent use with
// maintenance; each token's frequency is read under its df shard's read
// lock, so the numbers are a consistent-enough snapshot for planning (a
// concurrent registration can shift them by one, never corrupt them).
func (ix *Index) ProbeStats(q model.Signature) ProbeStats {
	st := ProbeStats{Docs: int(ix.ndocs.Load()), ProbeTokens: len(q.Tokens)}
	cut := CommonCutoff(st.Docs, len(ix.shards))
	for _, t := range q.Tokens {
		sh := &ix.dfs[Hash32(t)%uint32(len(ix.dfs))]
		sh.mu.RLock()
		df := sh.df[t]
		sh.mu.RUnlock()
		if df == 0 {
			continue
		}
		st.TokensIndexed++
		st.PostingsTotal += df
		if df > cut {
			st.TokensCommon++
			continue
		}
		st.PostingsKept += df
		if df > st.MaxKeptDF {
			st.MaxKeptDF = df
		}
		if st.MinKeptDF == 0 || df < st.MinKeptDF {
			st.MinKeptDF = df
		}
	}
	return st
}

// dfUpdate shifts every signature token's document frequency by delta
// (+1 on add, -1 on remove). Signature token bags are deduplicated, so
// each token counts its document exactly once; entries that reach zero
// are deleted so the table never outgrows the live vocabulary.
func (ix *Index) dfUpdate(sig model.Signature, delta int) {
	for _, t := range sig.Tokens {
		sh := &ix.dfs[Hash32(t)%uint32(len(ix.dfs))]
		sh.mu.Lock()
		if n := sh.df[t] + delta; n <= 0 {
			delete(sh.df, t)
		} else {
			sh.df[t] = n
		}
		sh.mu.Unlock()
	}
}
