package index

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// recountDF recomputes the document-frequency table by brute force from
// the live shard contents — the reference the incremental table must
// match after any maintenance interleaving.
func recountDF(ix *Index) (map[string]int, int) {
	df := map[string]int{}
	docs := 0
	for i := range ix.shards {
		s := &ix.shards[i]
		s.mu.RLock()
		for _, d := range s.docs {
			docs++
			for _, t := range d.sig.Tokens {
				df[t]++
			}
		}
		s.mu.RUnlock()
	}
	return df, docs
}

func dfSnapshot(ix *Index) map[string]int {
	df := map[string]int{}
	for i := range ix.dfs {
		ix.dfs[i].mu.RLock()
		for t, n := range ix.dfs[i].df {
			df[t] = n
		}
		ix.dfs[i].mu.RUnlock()
	}
	return df
}

func dfEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for t, n := range a {
		if b[t] != n {
			return false
		}
	}
	return true
}

// TestDocumentFrequenciesTrackMaintenance drives a randomized (seeded)
// upsert/replace/remove sequence and asserts the incremental df table and
// document count always equal a from-scratch recount. Replacements
// exercise the decrement-then-increment path, including same-key upserts
// whose old and new signatures overlap.
func TestDocumentFrequenciesTrackMaintenance(t *testing.T) {
	ix := New(8)
	rng := rand.New(rand.NewSource(23))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	version := map[string]int{}
	live := map[string]bool{}
	for step := 0; step < 400; step++ {
		key := fmt.Sprintf("doc%d", rng.Intn(25))
		switch {
		case rng.Intn(4) == 0 && live[key]:
			ix.Remove(key)
			delete(live, key)
		default:
			toks := make([]string, 0, 4)
			for _, v := range vocab {
				if rng.Intn(2) == 0 {
					toks = append(toks, v)
				}
			}
			version[key]++
			ix.Upsert(key, fp(key, version[key]), sig(3, toks...))
			live[key] = true
		}
		want, wantDocs := recountDF(ix)
		if got := dfSnapshot(ix); !dfEqual(got, want) {
			t.Fatalf("step %d: df table diverged from recount:\n got %v\nwant %v", step, got, want)
		}
		if got := int(ix.ndocs.Load()); got != wantDocs || got != len(live) {
			t.Fatalf("step %d: ndocs = %d, recount %d, live %d", step, got, wantDocs, len(live))
		}
	}
}

// TestProbeStatsValues pins ProbeStats field semantics on a hand-built
// corpus: per-token document frequencies, the common cutoff split, and
// the kept-postings aggregates.
func TestProbeStatsValues(t *testing.T) {
	ix := New(2)
	// commonCutoff(2 shards): floor 32*2 = 64 dominates until 256 docs, so
	// make "pop" common by document count alone: 0.25 * 400 = 100 > 64.
	for i := 0; i < 400; i++ {
		toks := []string{"pop"}
		if i < 9 {
			toks = append(toks, "niche")
		}
		if i < 3 {
			toks = append(toks, "scarce")
		}
		key := fmt.Sprintf("d%d", i)
		ix.Upsert(key, fp(key, 1), sig(2, toks...))
	}
	st := ix.ProbeStats(sig(2, "pop", "niche", "scarce", "absent"))
	want := ProbeStats{
		Docs:          400,
		ProbeTokens:   4,
		TokensIndexed: 3,
		TokensCommon:  1,   // pop: df 400 > cutoff 100
		PostingsTotal: 412, // 400 + 9 + 3
		PostingsKept:  12,  // niche + scarce
		MaxKeptDF:     9,   // niche
		MinKeptDF:     3,   // scarce
	}
	if st != want {
		t.Errorf("ProbeStats = %+v, want %+v", st, want)
	}
	if got := ix.ProbeStats(model.Signature{}); got != (ProbeStats{Docs: 400}) {
		t.Errorf("empty-probe stats = %+v, want Docs only", got)
	}
}

// TestCommonCutoff pins the corpus-wide cutoff approximation: the floor
// scaled by shard count until the fractional term overtakes it.
func TestCommonCutoff(t *testing.T) {
	cases := []struct{ docs, shards, want int }{
		{0, 16, 512},
		{200, 16, 512},
		{2048, 16, 512},
		{2049, 16, 512},
		{20000, 16, 5000},
		{400, 2, 100},
		{100, 0, 32 * DefaultShards}, // shards <= 0 falls back to the default
	}
	for _, tc := range cases {
		if got := CommonCutoff(tc.docs, tc.shards); got != tc.want {
			t.Errorf("CommonCutoff(%d, %d) = %d, want %d", tc.docs, tc.shards, got, tc.want)
		}
	}
}

// TestProbeStatsDoesNotChangeRetrieval asserts the stats surface is pure
// observation: TopK before and after a ProbeStats call is identical.
func TestProbeStatsDoesNotChangeRetrieval(t *testing.T) {
	ix := New(4)
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"red", "green", "blue", "cyan", "teal", "plum"}
	for i := 0; i < 60; i++ {
		toks := make([]string, 0, 3)
		for _, v := range vocab {
			if rng.Intn(3) == 0 {
				toks = append(toks, v)
			}
		}
		key := fmt.Sprintf("d%d", i)
		ix.Upsert(key, fp(key, 1), sig(2, toks...))
	}
	q := sig(2, "red", "teal")
	before, bst := ix.TopK(q, 10)
	ix.ProbeStats(q)
	after, ast := ix.TopK(q, 10)
	if bst != ast {
		t.Fatalf("TopK stats changed: %+v vs %+v", bst, ast)
	}
	if len(before) != len(after) {
		t.Fatalf("TopK size changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("TopK[%d] changed: %+v vs %+v", i, before[i], after[i])
		}
	}
}

// TestProbeStatsAllocationFree pins the warm-path contract: planning
// consults ProbeStats on every query, so it must not allocate.
func TestProbeStatsAllocationFree(t *testing.T) {
	ix := New(4)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("d%d", i)
		ix.Upsert(key, fp(key, 1), sig(2, "shared", fmt.Sprintf("tok%d", i%7)))
	}
	q := sig(2, "shared", "tok3", "missing")
	if allocs := testing.AllocsPerRun(200, func() { ix.ProbeStats(q) }); allocs > 0 {
		t.Errorf("ProbeStats allocates %.1f objects per call, want 0", allocs)
	}
}
