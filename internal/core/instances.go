package core

// Instance-aware preparation: a schema may be prepared together with
// sampled instance data (internal/instance), producing per-leaf value
// profiles that MatchPrepared blends into the leaf similarity
// initialization. The blend only engages when BOTH sides of a match carry
// profiles — a Prepared without instances matches bit-identically to the
// profile-free pipeline (asserted by the zero-instance regression tests).

import (
	"repro/internal/instance"
	"repro/internal/model"
	"repro/internal/structural"
)

// PrepareWithInstances is Prepare plus instance profiling: the samples'
// leaf paths (with or without the schema-name prefix) are resolved to the
// schema's instantiable leaf elements, each sampled column is profiled
// (instance.Build), and the profiles ride along in the artifact. Paths
// that name no leaf are ignored — schemas evolve and samples lag — and a
// nil/empty samples map degrades to plain Prepare. The profile hash is
// mixed into Fingerprint, so the same schema with different samples is a
// different repository identity.
func (m *Matcher) PrepareWithInstances(s *model.Schema, samples instance.Samples) (*Prepared, error) {
	p, err := m.Prepare(s)
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return p, nil
	}
	byElem, resolved := resolveProfiles(s, instance.BuildProfiles(samples))
	if len(byElem) == 0 {
		return p, nil
	}
	p.profiles = byElem
	p.profileHash = resolved.Hash()
	return p, nil
}

// resolveProfiles maps sampled paths onto the schema's instantiable leaf
// elements. It returns the element-keyed profile map the leaf-compat hook
// reads, plus the same profiles re-keyed by canonical element path (the
// deterministic identity that gets hashed). When two sampled spellings
// resolve to the same leaf, the lexicographically smaller path wins.
func resolveProfiles(s *model.Schema, profs instance.Profiles) (map[*model.Element]*instance.Profile, instance.Profiles) {
	if len(profs) == 0 {
		return nil, nil
	}
	rootPrefix := ""
	if s.Root().Name != "" {
		rootPrefix = s.Root().Name + "."
	}
	index := map[string]*model.Element{}
	for _, e := range s.Elements() {
		if !e.IsLeaf() || e.NotInstantiated || e == s.Root() {
			continue
		}
		full := e.Path()
		if _, dup := index[full]; !dup {
			index[full] = e
		}
		if rootPrefix != "" {
			if short, ok := cutPrefix(full, rootPrefix); ok {
				if _, dup := index[short]; !dup {
					index[short] = e
				}
			}
		}
	}
	byElem := map[*model.Element]*instance.Profile{}
	claimed := map[*model.Element]string{}
	resolved := instance.Profiles{}
	for path, prof := range profs {
		e, ok := index[path]
		if !ok {
			continue
		}
		if prev, dup := claimed[e]; dup {
			if path > prev {
				continue
			}
		}
		claimed[e] = path
		byElem[e] = prof
		resolved[e.Path()] = prof
	}
	return byElem, resolved
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// HasProfiles reports whether the artifact carries instance profiles
// (i.e. was built by PrepareWithInstances with at least one resolvable
// sampled leaf).
func (p *Prepared) HasProfiles() bool { return len(p.profiles) > 0 }

// ProfiledLeaves returns how many leaf elements carry a profile.
func (p *Prepared) ProfiledLeaves() int { return len(p.profiles) }

// leafCompatFn builds the TreeMatch leaf-initialization hook for a match
// where both sides carry profiles: for leaf pairs profiled on both sides
// the declared-type table value is blended with the observed
// profile compatibility (instance.BlendCompat); every other pair falls
// back to the table. The closure reads immutable per-Prepared maps only,
// so concurrent MatchPrepared calls stay race-free and deterministic.
func leafCompatFn(src, dst map[*model.Element]*instance.Profile, table *structural.CompatTable) func(s, t *model.Element) (float64, bool) {
	if table == nil {
		table = structural.DefaultCompat()
	}
	return func(s, t *model.Element) (float64, bool) {
		ps, ok := src[s]
		if !ok {
			return 0, false
		}
		pt, ok := dst[t]
		if !ok {
			return 0, false
		}
		return instance.BlendCompat(table.Lookup(s.Type, t.Type), instance.Compat(ps, pt)), true
	}
}
