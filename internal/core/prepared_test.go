package core

// Prepared-artifact coverage: MatchPrepared must be bit-identical to Match
// (the ISSUE acceptance criterion), artifacts must be reusable across many
// concurrent calls, and cross-matcher artifacts must be rejected. Run with
// -race to exercise the concurrent reuse paths.

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func assertSameResult(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if !want.LSim.Equal(got.LSim) {
		t.Fatalf("%s: prepared lsim differs from Match (max diff %v)",
			name, want.LSim.MaxAbsDiff(got.LSim))
	}
	if !want.WSim.Equal(got.WSim) {
		t.Fatalf("%s: prepared wsim differs from Match (max diff %v)",
			name, want.WSim.MaxAbsDiff(got.WSim))
	}
	if (want.Struct == nil) != (got.Struct == nil) {
		t.Fatalf("%s: structural result presence differs", name)
	}
	if want.Struct != nil && !want.Struct.SSim.Equal(got.Struct.SSim) {
		t.Fatalf("%s: prepared ssim differs from Match", name)
	}
	if w, g := want.Mapping.String(), got.Mapping.String(); w != g {
		t.Fatalf("%s: mappings differ\nMatch:\n%s\nMatchPrepared:\n%s", name, w, g)
	}
}

// TestMatchPreparedEqualsMatch checks element-for-element equality of the
// full Result across workloads and all three modes.
func TestMatchPreparedEqualsMatch(t *testing.T) {
	for _, mode := range []Mode{ModeFull, ModeLinguisticOnly, ModeStructuralOnly} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		m, err := NewMatcher(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []workloads.Workload{
			workloads.Figure2(),
			workloads.CIDXExcel(),
			workloads.University(),
		} {
			want, err := m.Match(w.Source, w.Target)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := m.Prepare(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			pd, err := m.Prepare(w.Target)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.MatchPrepared(ps, pd)
			if err != nil {
				t.Fatal(err)
			}
			name := w.Name
			assertSameResult(t, name, want, got)

			// The artifact is reusable: a second match over the same
			// Prepared values must reproduce the result exactly.
			again, err := m.MatchPrepared(ps, pd)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, name+" (reused)", want, again)
		}
	}
}

// TestMatchPreparedConcurrentReuse shares two Prepared artifacts across
// goroutines; all results must equal the sequential one (run with -race).
func TestMatchPreparedConcurrentReuse(t *testing.T) {
	w := workloads.Figure2()
	m, err := NewMatcher(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := m.Prepare(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := m.Prepare(w.Target)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.MatchPrepared(ps, pd)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 6
	results := make([]*Result, callers)
	errs := make([]error, callers)
	done := make(chan struct{})
	for g := 0; g < callers; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			results[g], errs[g] = m.MatchPrepared(ps, pd)
		}(g)
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for g := 0; g < callers; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !results[g].WSim.Equal(want.WSim) {
			t.Fatalf("concurrent MatchPrepared call %d drifted", g)
		}
		if results[g].Mapping.String() != want.Mapping.String() {
			t.Fatalf("concurrent MatchPrepared call %d produced a different mapping", g)
		}
	}
}

func TestMatchPreparedForeignMatcherRejected(t *testing.T) {
	w := workloads.Figure2()
	m1, err := NewMatcher(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMatcher(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := m1.Prepare(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := m2.Prepare(w.Target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.MatchPrepared(ps, pd); err == nil {
		t.Error("prepared artifact from a different matcher accepted")
	} else if !strings.Contains(err.Error(), "different matcher") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, err := m1.MatchPrepared(nil, pd); err == nil {
		t.Error("nil prepared artifact accepted")
	}
}

func TestPreparedAccessors(t *testing.T) {
	w := workloads.Figure2()
	m, err := NewMatcher(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Prepare(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema() != w.Source {
		t.Error("Schema() does not return the prepared schema")
	}
	if p.Tree() == nil || p.Tree().Len() == 0 {
		t.Error("Tree() is empty")
	}
	if p.Info() == nil || len(p.Info().Tokens) != w.Source.Len() {
		t.Error("Info() analysis missing or wrong size")
	}
	if len(p.Fingerprint()) != 32 {
		t.Errorf("Fingerprint() length %d, want 32", len(p.Fingerprint()))
	}
}
