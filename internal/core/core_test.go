package core

import (
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/structural"
	"repro/internal/thesaurus"
)

// figure2PO builds the PO schema of the paper's Figure 2.
func figure2PO() *model.Schema {
	s := model.New("PO")
	str := func(p *model.Element, name string) {
		s.AddChild(p, name, model.KindAttribute).Type = model.DTString
	}
	lines := s.AddChild(s.Root(), "POLines", model.KindElement)
	item := s.AddChild(lines, "Item", model.KindElement)
	intCol := s.AddChild(item, "Line", model.KindAttribute)
	intCol.Type = model.DTInt
	qty := s.AddChild(item, "Qty", model.KindAttribute)
	qty.Type = model.DTInt
	str(item, "UoM")
	cnt := s.AddChild(lines, "Count", model.KindAttribute)
	cnt.Type = model.DTInt
	ship := s.AddChild(s.Root(), "POShipTo", model.KindElement)
	str(ship, "Street")
	str(ship, "City")
	bill := s.AddChild(s.Root(), "POBillTo", model.KindElement)
	str(bill, "Street")
	str(bill, "City")
	return s
}

// figure2POrder builds the PurchaseOrder schema of Figure 2.
func figure2POrder() *model.Schema {
	s := model.New("PurchaseOrder")
	str := func(p *model.Element, name string) {
		s.AddChild(p, name, model.KindAttribute).Type = model.DTString
	}
	addr := func(p *model.Element) {
		a := s.AddChild(p, "Address", model.KindElement)
		str(a, "Street")
		str(a, "City")
	}
	deliver := s.AddChild(s.Root(), "DeliverTo", model.KindElement)
	addr(deliver)
	invoice := s.AddChild(s.Root(), "InvoiceTo", model.KindElement)
	addr(invoice)
	items := s.AddChild(s.Root(), "Items", model.KindElement)
	item := s.AddChild(items, "Item", model.KindElement)
	in := s.AddChild(item, "ItemNumber", model.KindAttribute)
	in.Type = model.DTInt
	q := s.AddChild(item, "Quantity", model.KindAttribute)
	q.Type = model.DTInt
	str(item, "UnitOfMeasure")
	ic := s.AddChild(items, "ItemCount", model.KindAttribute)
	ic.Type = model.DTInt
	return s
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejectsBadParams(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Structural.CInc = 0.1
	if _, err := NewMatcher(cfg); err == nil {
		t.Error("NewMatcher accepted invalid structural params")
	}
	cfg = DefaultConfig()
	cfg.Mapping.ThAccept = 2
	if _, err := NewMatcher(cfg); err == nil {
		t.Error("NewMatcher accepted invalid mapping threshold")
	}
}

// TestFigure2RunningExample verifies the paper's §4 running example:
// matching PO against PurchaseOrder finds Line↔ItemNumber (via parents and
// siblings), Qty↔Quantity and UoM↔UnitOfMeasure (thesaurus), and binds the
// City/Street pairs context-correctly (Bill~Invoice, Ship~Deliver).
func TestFigure2RunningExample(t *testing.T) {
	res, err := Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	mustPair := func(src, dst string) {
		t.Helper()
		if !m.HasPair(src, dst) {
			t.Errorf("missing %s <-> %s\n%s", src, dst, m)
		}
	}
	mustPair("PO.POLines.Item.Qty", "PurchaseOrder.Items.Item.Quantity")
	mustPair("PO.POLines.Item.UoM", "PurchaseOrder.Items.Item.UnitOfMeasure")
	mustPair("PO.POLines.Item.Line", "PurchaseOrder.Items.Item.ItemNumber")
	mustPair("PO.POLines.Count", "PurchaseOrder.Items.ItemCount")
	mustPair("PO.POBillTo.City", "PurchaseOrder.InvoiceTo.Address.City")
	mustPair("PO.POBillTo.Street", "PurchaseOrder.InvoiceTo.Address.Street")
	mustPair("PO.POShipTo.City", "PurchaseOrder.DeliverTo.Address.City")
	mustPair("PO.POShipTo.Street", "PurchaseOrder.DeliverTo.Address.Street")
	// The wrong cross-context pairs must be absent.
	if m.HasPair("PO.POBillTo.City", "PurchaseOrder.DeliverTo.Address.City") {
		t.Errorf("POBillTo.City bound to DeliverTo context\n%s", m)
	}
	if m.HasPair("PO.POShipTo.City", "PurchaseOrder.InvoiceTo.Address.City") {
		t.Errorf("POShipTo.City bound to InvoiceTo context\n%s", m)
	}
	// Non-leaf structure. Under the naive 1:n generator the target Items
	// may take either POLines or Item (their wsim ties via the items/item
	// stem); the 1:1 generator below resolves it the way Table 3 reports.
	mustPair("PO.POLines.Item", "PurchaseOrder.Items.Item")
	mustPair("PO", "PurchaseOrder")

	cfg := DefaultConfig()
	cfg.Mapping.Cardinality = mapping.OneToOne
	mm, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res11, err := mm.Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	if !res11.Mapping.HasPair("PO.POLines", "PurchaseOrder.Items") {
		t.Errorf("1:1: missing POLines <-> Items\n%s", res11.Mapping)
	}
	if !res11.Mapping.HasPair("PO.POLines.Item", "PurchaseOrder.Items.Item") {
		t.Errorf("1:1: missing Item <-> Item\n%s", res11.Mapping)
	}
}

func TestMatchWithoutThesaurusDegrades(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thesaurus = thesaurus.New()
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	// Without Qty->Quantity etc. the mapping loses thesaurus-driven pairs
	// (§9.3 conclusion 2: dropping the thesaurus hurts the PO example).
	if res.Mapping.HasPair("PO.POLines.Item.UoM", "PurchaseOrder.Items.Item.UnitOfMeasure") &&
		res.Mapping.HasPair("PO.POBillTo.City", "PurchaseOrder.InvoiceTo.Address.City") &&
		res.Mapping.HasPair("PO.POShipTo.City", "PurchaseOrder.DeliverTo.Address.City") {
		t.Errorf("empty thesaurus still produced every thesaurus-dependent pair\n%s", res.Mapping)
	}
}

func TestInitialMappingGuidesMatch(t *testing.T) {
	// Two schemas with opaque names: only the initial mapping links them.
	s1 := model.New("A")
	t1 := s1.AddChild(s1.Root(), "Alpha", model.KindTable)
	x := s1.AddChild(t1, "X1", model.KindColumn)
	x.Type = model.DTInt
	y := s1.AddChild(t1, "Y1", model.KindColumn)
	y.Type = model.DTString

	s2 := model.New("B")
	t2 := s2.AddChild(s2.Root(), "Beta", model.KindTable)
	u := s2.AddChild(t2, "U2", model.KindColumn)
	u.Type = model.DTInt
	v := s2.AddChild(t2, "V2", model.KindColumn)
	v.Type = model.DTString

	cfg := DefaultConfig()
	cfg.InitialMapping = []PathPair{
		{Source: "A.Alpha.X1", Target: "B.Beta.U2"},
		{Source: "A.Alpha.Y1", Target: "B.Beta.V2"},
	}
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapping.HasPair("A.Alpha.X1", "B.Beta.U2") {
		t.Errorf("initial mapping pair not in result\n%s", res.Mapping)
	}
	// The hint propagates upward: Alpha and Beta become structurally
	// similar because their leaves now strongly link (§8.4).
	if !res.Mapping.HasPair("A.Alpha", "B.Beta") {
		t.Errorf("initial mapping did not lift ancestor similarity\n%s", res.Mapping)
	}
}

func TestInitialMappingUnknownPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialMapping = []PathPair{{Source: "PO.Nope", Target: "PurchaseOrder.DeliverTo"}}
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Match(figure2PO(), figure2POrder()); err == nil {
		t.Error("unknown initial-mapping path accepted")
	}
}

func TestLinguisticOnlyMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeLinguisticOnly
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	if res.Struct != nil {
		t.Error("linguistic-only mode ran structural matching")
	}
	// Path-name matching still finds the obvious pairs.
	if !res.Mapping.HasPair("PO.POLines.Item.Qty", "PurchaseOrder.Items.Item.Quantity") {
		t.Errorf("linguistic-only missed Qty/Quantity\n%s", res.Mapping)
	}
	// WSim is exactly the path-name linguistic similarity.
	if !res.WSim.Equal(res.LSim) {
		t.Fatal("linguistic-only wsim must equal lsim")
	}
}

func TestStructuralOnlyMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeStructuralOnly
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.LSim.Rows(); i++ {
		for j := 0; j < res.LSim.Cols(); j++ {
			if res.LSim.At(i, j) != 0 {
				t.Fatal("structural-only mode must zero lsim")
			}
		}
	}
}

func TestOneToOneCardinality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mapping.Cardinality = mapping.OneToOne
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	seenSrc := map[string]bool{}
	for _, e := range res.Mapping.Leaves {
		p := e.Source.Path()
		if seenSrc[p] {
			t.Errorf("1:1 mapping reuses source %s", p)
		}
		seenSrc[p] = true
	}
}

func TestMatchRejectsCyclicSchema(t *testing.T) {
	s := model.New("S")
	a := s.AddChild(s.Root(), "A", model.KindType)
	b := s.AddChild(a, "B", model.KindElement)
	if err := s.DeriveFrom(b, a); err != nil {
		t.Fatal(err)
	}
	if _, err := Match(s, figure2PO()); err == nil {
		t.Error("cyclic source schema accepted")
	}
	if _, err := Match(figure2PO(), s); err == nil {
		t.Error("cyclic target schema accepted")
	}
}

func TestResultExposesDiagnostics(t *testing.T) {
	res, err := Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceInfo == nil || res.TargetInfo == nil {
		t.Error("linguistic analysis not exposed")
	}
	if res.Struct == nil || res.Struct.Comparisons == 0 {
		t.Error("structural stats not exposed")
	}
	if res.LSim.Rows() != res.SourceTree.Len() {
		t.Error("lsim not node-indexed")
	}
	if res.WSim.Empty() {
		t.Error("wsim missing")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	var outs []string
	for i := 0; i < 3; i++ {
		res, err := Match(figure2PO(), figure2POrder())
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, res.Mapping.String())
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Error("Match is not deterministic across runs")
	}
}

// TestSharedTypeContextMapping is the §8.2 example: Address shared by
// DeliverTo and InvoiceTo must still yield context-qualified mappings.
func TestSharedTypeContextMapping(t *testing.T) {
	shared := model.New("PurchaseOrder")
	addrT := shared.NewElement("Address", model.KindType)
	shared.AddChild(addrT, "Street", model.KindAttribute).Type = model.DTString
	shared.AddChild(addrT, "City", model.KindAttribute).Type = model.DTString
	del := shared.AddChild(shared.Root(), "DeliverTo", model.KindElement)
	inv := shared.AddChild(shared.Root(), "InvoiceTo", model.KindElement)
	if err := shared.DeriveFrom(del, addrT); err != nil {
		t.Fatal(err)
	}
	if err := shared.DeriveFrom(inv, addrT); err != nil {
		t.Fatal(err)
	}

	po := model.New("PO")
	ship := po.AddChild(po.Root(), "POShipTo", model.KindElement)
	po.AddChild(ship, "Street", model.KindAttribute).Type = model.DTString
	po.AddChild(ship, "City", model.KindAttribute).Type = model.DTString
	bill := po.AddChild(po.Root(), "POBillTo", model.KindElement)
	po.AddChild(bill, "Street", model.KindAttribute).Type = model.DTString
	po.AddChild(bill, "City", model.KindAttribute).Type = model.DTString

	res, err := Match(po, shared)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	if !m.HasPair("PO.POShipTo.Street", "PurchaseOrder.DeliverTo.Street") {
		t.Errorf("shared-type: POShipTo.Street should map to DeliverTo context\n%s", m)
	}
	if !m.HasPair("PO.POBillTo.Street", "PurchaseOrder.InvoiceTo.Street") {
		t.Errorf("shared-type: POBillTo.Street should map to InvoiceTo context\n%s", m)
	}
	if m.HasPair("PO.POBillTo.Street", "PurchaseOrder.DeliverTo.Street") {
		t.Errorf("shared-type: POBillTo.Street bound to wrong context\n%s", m)
	}
}

func TestLazyMemoMatchesEager(t *testing.T) {
	cfgE := DefaultConfig()
	cfgE.Structural.LazyMemo = false
	cfgL := DefaultConfig()
	cfgL.Structural.LazyMemo = true
	me, err := NewMatcher(cfgE)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := NewMatcher(cfgL)
	if err != nil {
		t.Fatal(err)
	}
	re, err := me.Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	rl, err := ml.Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	if re.Mapping.String() != rl.Mapping.String() {
		t.Errorf("lazy and eager mappings differ:\n%s\nvs\n%s", re.Mapping, rl.Mapping)
	}
}

func TestValidateStructuralToggle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Structural.StructuralBasis = structural.BasisChildren
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Match(figure2PO(), figure2POrder()); err != nil {
		t.Fatal(err)
	}
}

func TestMappingStringMentionsSchemas(t *testing.T) {
	res, err := Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Mapping.String()
	if !strings.Contains(s, "PO") || !strings.Contains(s, "PurchaseOrder") {
		t.Error("mapping string missing schema names")
	}
}
