package core

import (
	"testing"

	"repro/internal/sqlddl"
)

// TestViewMatchesDenormalizedTable exercises the §8.4 "Views" feature end
// to end: a view definition becomes a schema-tree node whose children are
// the view's columns, and that node can match a denormalized table of the
// other schema.
func TestViewMatchesDenormalizedTable(t *testing.T) {
	src, err := sqlddl.Parse("OLTP", `
CREATE TABLE Orders (
    OrderID INT PRIMARY KEY,
    OrderDate DATE,
    Freight DECIMAL(10,2)
);
CREATE TABLE Customers (
    CustomerID INT PRIMARY KEY,
    CompanyName VARCHAR(80),
    City VARCHAR(40)
);
CREATE VIEW OrderReport AS SELECT Orders.OrderID, Orders.OrderDate,
    Customers.CompanyName, Customers.City
FROM Orders, Customers;`)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := sqlddl.Parse("Reporting", `
CREATE TABLE OrderReport (
    OrderID INT PRIMARY KEY,
    OrderDate DATE,
    CompanyName VARCHAR(80),
    City VARCHAR(40)
);`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Match(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// The view node must map to the denormalized table.
	if !res.Mapping.HasPair("OLTP.OrderReport", "Reporting.OrderReport") {
		t.Errorf("view did not match the denormalized table\n%s", res.Mapping)
	}
	// And it should be the *best* source: the individual Orders/Customers
	// tables cover only half the columns each.
	vn := res.SourceTree.NodeByPath("OLTP.OrderReport")
	on := res.SourceTree.NodeByPath("OLTP.Orders")
	tn := res.TargetTree.NodeByPath("Reporting.OrderReport")
	if vn == nil || on == nil || tn == nil {
		t.Fatalf("nodes missing:\n%s", res.SourceTree.Dump())
	}
	if res.WSim.At(vn.Idx, tn.Idx) <= res.WSim.At(on.Idx, tn.Idx) {
		t.Errorf("view wsim %v should beat table wsim %v",
			res.WSim.At(vn.Idx, tn.Idx), res.WSim.At(on.Idx, tn.Idx))
	}
	// With view expansion disabled the pair disappears.
	cfg := DefaultConfig()
	cfg.Tree.Views = false
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m.Match(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mapping.HasPair("OLTP.OrderReport", "Reporting.OrderReport") {
		t.Error("view matched despite Views=false")
	}
}

// TestConcurrentMatchers: independent Matcher instances are safe to run in
// parallel (each owns its caches); run with -race to verify.
func TestConcurrentMatchers(t *testing.T) {
	done := make(chan string, 4)
	for i := 0; i < 4; i++ {
		go func() {
			m, err := NewMatcher(DefaultConfig())
			if err != nil {
				done <- err.Error()
				return
			}
			res, err := m.Match(figure2PO(), figure2POrder())
			if err != nil {
				done <- err.Error()
				return
			}
			done <- res.Mapping.String()
		}()
	}
	first := <-done
	for i := 1; i < 4; i++ {
		if got := <-done; got != first {
			t.Fatal("concurrent matchers disagree")
		}
	}
}
