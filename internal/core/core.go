// Package core assembles Cupid's three phases (paper §4) into the Match
// operation: linguistic matching of schema elements (internal/linguistic),
// structural matching of the expanded schema trees via TreeMatch
// (internal/schematree + internal/structural), and mapping generation
// (internal/mapping).
//
// The package is the paper's "primary contribution" glue: everything a
// caller needs to go from two generic schema graphs to a validated-ready
// mapping, including the §8.4 extras — initial (user-supplied) mappings,
// join-view augmentation for referential constraints, optionality, lazy
// expansion — and the ablation modes used in the paper's §9.3 analysis
// (linguistic-only over full path names; structure-only).
package core

import (
	"fmt"

	"repro/internal/linguistic"
	"repro/internal/mapping"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/schematree"
	"repro/internal/structural"
	"repro/internal/thesaurus"
)

// Mode selects which similarity evidence drives the match.
type Mode int

const (
	// ModeFull is the complete Cupid pipeline (default).
	ModeFull Mode = iota
	// ModeLinguisticOnly compares elements using only the linguistic
	// similarity of their complete path names (the evaluation methodology
	// of §9.3 conclusion 3); no structural matching runs.
	ModeLinguisticOnly
	// ModeStructuralOnly zeroes the linguistic similarity, leaving the
	// data-type initialization and mutual structural reinforcement as the
	// only evidence.
	ModeStructuralOnly
)

// PathPair names a source and a target element by their containment paths
// ("PO.POBillTo.City"); used for initial mappings.
type PathPair struct {
	Source string
	Target string
}

// Config collects every knob of the pipeline. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Thesaurus supplies synonyms, hypernyms, abbreviations, stop-words
	// and concepts; nil means an empty thesaurus (the ablation of §9.3
	// conclusion 2).
	Thesaurus *thesaurus.Thesaurus
	// Linguistic holds the comparison weights and thns.
	Linguistic linguistic.Params
	// Structural holds the Table 1 thresholds and §8.4 toggles.
	Structural structural.Params
	// Tree controls schema-tree expansion (join views, views, node cap).
	Tree schematree.Options
	// Mapping controls generation (cardinality, thresholds, non-leaves).
	Mapping mapping.Options
	// InitialMapping lists user-asserted correspondences; the linguistic
	// similarity of each pair is initialized to the maximum value before
	// structural matching (§8.4), which propagates into higher structural
	// similarity of their ancestors on re-runs.
	InitialMapping []PathPair
	// DescriptionWeight blends schema-annotation (Element.Description)
	// similarity into lsim for element pairs where both sides carry a
	// description: lsim' = (1-w)·lsim + w·descSim. 0 disables the feature
	// (the default); the paper lists annotation-based linguistic matching
	// as future work (§10).
	DescriptionWeight float64
	// Mode selects full, linguistic-only, or structural-only matching.
	Mode Mode
}

// DefaultConfig returns the paper's typical configuration with the base
// thesaurus.
func DefaultConfig() Config {
	return Config{
		Thesaurus:  thesaurus.Base(),
		Linguistic: linguistic.DefaultParams(),
		Structural: structural.DefaultParams(),
		Tree:       schematree.DefaultOptions(),
		Mapping:    mapping.DefaultOptions(),
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if err := c.Linguistic.Validate(); err != nil {
		return err
	}
	if err := c.Structural.Validate(); err != nil {
		return err
	}
	if c.Mapping.ThAccept < 0 || c.Mapping.ThAccept > 1 {
		return fmt.Errorf("core: mapping thaccept %.3f out of [0,1]", c.Mapping.ThAccept)
	}
	if c.DescriptionWeight < 0 || c.DescriptionWeight > 1 {
		return fmt.Errorf("core: description weight %.3f out of [0,1]", c.DescriptionWeight)
	}
	return nil
}

// Result is the full output of one Match run: the mapping plus every
// intermediate artifact, so callers (and the experiment harness) can
// inspect similarities directly.
type Result struct {
	Mapping    *mapping.Mapping
	SourceTree *schematree.Tree
	TargetTree *schematree.Tree
	// LSim is the node-level linguistic similarity, indexed (source node
	// post-order, target node post-order).
	LSim matrix.Matrix
	// Struct holds ssim/wsim and the TreeMatch statistics; nil in
	// ModeLinguisticOnly.
	Struct *structural.Result
	// WSim is the matrix mapping generation ran on: Struct.WSim in full
	// mode, LSim over path names in linguistic-only mode.
	WSim matrix.Matrix
	// SourceInfo and TargetInfo expose the linguistic analysis (token
	// sets, categories).
	SourceInfo *linguistic.SchemaInfo
	TargetInfo *linguistic.SchemaInfo
}

// Matcher runs the Cupid pipeline for one configuration. A Matcher may be
// reused across schema pairs and is safe for concurrent Match calls: the
// linguistic matcher's token-similarity cache is sharded and lock-striped,
// and all other per-match state is local to the call. Match itself fans
// the quadratic phases out over a bounded worker pool (see internal/par),
// so even a single call uses the available cores.
type Matcher struct {
	cfg  Config
	ling *linguistic.Matcher
}

// NewMatcher builds a Matcher, validating the configuration.
func NewMatcher(cfg Config) (*Matcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lm := linguistic.NewMatcher(cfg.Thesaurus)
	lm.P = cfg.Linguistic
	return &Matcher{cfg: cfg, ling: lm}, nil
}

// Match computes a mapping between the source and target schemas. It is
// Prepare + MatchPrepared in one call: callers that match the same schema
// repeatedly (the repository workload of internal/registry) should Prepare
// once and reuse the artifact — the results are bit-identical.
func (m *Matcher) Match(src, dst *model.Schema) (*Result, error) {
	ps, err := m.Prepare(src)
	if err != nil {
		return nil, err
	}
	pd, err := m.Prepare(dst)
	if err != nil {
		return nil, err
	}
	return m.MatchPrepared(ps, pd)
}

// matchLinguisticOnly implements the §9.3 methodology: similarity is the
// linguistic similarity of complete path names; mapping generation applies
// the same acceptance threshold. Each node's path is normalized once per
// Prepared artifact (tokS/tokT are the cached token sets; the old code
// re-tokenized both full path strings for every node pair — O(n·m)
// normalizations), then the pair sweep runs NameSimTS over the cached
// token sets, rows fanned out over the worker pool.
func (m *Matcher) matchLinguisticOnly(res *Result, tokS, tokT []linguistic.TokenSet) (*Result, error) {
	ts, tt := res.SourceTree, res.TargetTree
	lsim := matrix.New(ts.Len(), tt.Len())
	par.For(ts.Len(), func(i int) {
		row := lsim.Row(i)
		for j := range tokT {
			row[j] = m.ling.NameSimTS(tokS[i], tokT[j])
		}
	})
	res.LSim = lsim
	res.WSim = lsim
	// Reuse the mapping generator by presenting lsim as wsim.
	fake := &structural.Result{SSim: lsim, WSim: lsim}
	res.Mapping = mapping.Generate(ts, tt, fake, lsim, m.cfg.Mapping)
	return res, nil
}

// applyInitialMapping raises the linguistic similarity of user-asserted
// pairs to the maximum value (§8.4, "Initial mappings"). A path→element
// index is built once per schema (single pre-order traversal), so each
// pair is an O(1) lookup instead of a full traversal.
func (m *Matcher) applyInitialMapping(src, dst *model.Schema, elemLSim matrix.Matrix) error {
	if len(m.cfg.InitialMapping) == 0 {
		return nil
	}
	index := func(s *model.Schema) map[string]*model.Element {
		out := make(map[string]*model.Element, s.Len())
		model.PreOrder(s.Root(), func(e *model.Element) {
			p := e.Path()
			if _, ok := out[p]; !ok { // first match wins, as before
				out[p] = e
			}
		})
		return out
	}
	srcByPath := index(src)
	dstByPath := index(dst)
	for _, pp := range m.cfg.InitialMapping {
		se := srcByPath[pp.Source]
		if se == nil {
			return fmt.Errorf("core: initial mapping source %q not found", pp.Source)
		}
		de := dstByPath[pp.Target]
		if de == nil {
			return fmt.Errorf("core: initial mapping target %q not found", pp.Target)
		}
		elemLSim.Set(se.ID(), de.ID(), 1)
	}
	return nil
}

// liftToNodes turns an element-level similarity matrix into a node-level
// one: every context copy of an element inherits the element's value.
func liftToNodes(ts, tt *schematree.Tree, elem matrix.Matrix) matrix.Matrix {
	out := matrix.New(ts.Len(), tt.Len())
	par.For(ts.Len(), func(i int) {
		row := elem.Row(ts.Nodes[i].Elem.ID())
		dst := out.Row(i)
		for j, t := range tt.Nodes {
			dst[j] = row[t.Elem.ID()]
		}
	})
	return out
}

// Match is a convenience that runs the full pipeline with DefaultConfig.
func Match(src, dst *model.Schema) (*Result, error) {
	m, err := NewMatcher(DefaultConfig())
	if err != nil {
		return nil, err
	}
	return m.Match(src, dst)
}
