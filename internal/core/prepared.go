package core

import (
	"fmt"
	"sync"

	"repro/internal/instance"
	"repro/internal/linguistic"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/schematree"
	"repro/internal/structural"
)

// Prepared is the reusable per-schema matching artifact: a validated
// schema together with its expanded schema tree and linguistic analysis.
// Preparing a schema once and matching it many times turns the per-schema
// phases of the pipeline (validation, schematree.Build, linguistic
// Analyze) into a one-time cost — the repository/service workload the
// paper envisions, where one incoming schema is compared against many
// stored ones.
//
// A Prepared is immutable after construction and safe for concurrent use
// by any number of MatchPrepared calls. It is bound to the Matcher that
// built it (the tree depends on the matcher's tree options, the analysis
// on its thesaurus and linguistic parameters); passing it to a different
// Matcher is an error. The caller must not mutate the underlying schema
// after Prepare — the artifact holds the analysis of the schema as it was.
type Prepared struct {
	owner  *Matcher
	schema *model.Schema
	tree   *schematree.Tree
	info   *linguistic.SchemaInfo

	// fp caches the content hash. Lazy (once, concurrency-safe): plain
	// Match goes through Prepare too and never reads it, so the per-call
	// fast path should not pay two schema hashes.
	fpOnce sync.Once
	fp     string

	// pathToks caches the normalized token set of every node's full
	// context path. Only ModeLinguisticOnly consumes it, so it is computed
	// lazily (once, concurrency-safe) instead of on every Prepare.
	pathOnce sync.Once
	pathToks []linguistic.TokenSet

	// sig caches the pruning signature. Lazy like fp: only repository
	// candidate pruning (registry.MatchTop) reads it, so plain Match never
	// pays the token-bag sweep.
	sigOnce sync.Once
	sig     model.Signature

	// profiles holds the per-leaf instance profiles when the schema was
	// prepared with sampled instance data (PrepareWithInstances); nil
	// otherwise. profileHash is the stable content hash of the resolved
	// profiles, mixed into Fingerprint so instance data participates in
	// repository entry identity. The retrieval Signature is deliberately
	// NOT affected: pruning, the inverted index, the planner and family
	// routing all see the same tokens with or without instances.
	profiles    map[*model.Element]*instance.Profile
	profileHash string
}

// Schema returns the underlying schema graph.
func (p *Prepared) Schema() *model.Schema { return p.schema }

// Tree returns the expanded schema tree.
func (p *Prepared) Tree() *schematree.Tree { return p.tree }

// Info returns the linguistic analysis (token sets, categories).
func (p *Prepared) Info() *linguistic.SchemaInfo { return p.info }

// Fingerprint returns the content hash of the artifact, the identity the
// registry keys entries by: model.Fingerprint of the schema, suffixed with
// the instance-profile hash when the artifact carries sampled instance
// data ("<schema-hash>+<profile-hash>"), so the same schema registered
// with different samples replaces the entry while identical samples stay
// idempotent. Computed on first use.
func (p *Prepared) Fingerprint() string {
	p.fpOnce.Do(func() {
		p.fp = model.Fingerprint(p.schema)
		if p.profileHash != "" {
			p.fp += "+" + p.profileHash
		}
	})
	return p.fp
}

// Signature returns the schema's retrieval signature (model.Signature):
// element count, expanded-tree leaf count, and the weighted normalized
// token bag of the cached linguistic analysis. The repository's candidate
// pruning stage (registry.MatchTop) ranks entries by signature affinity
// before running the full tree match on the survivors, and the inverted
// index (internal/index) posts each token with its stable weight.
// Computed on first use, concurrency-safe, immutable afterwards.
func (p *Prepared) Signature() model.Signature {
	p.sigOnce.Do(func() {
		toks, weights := p.owner.ling.WeightedSignatureTokens(p.info)
		p.sig = model.NewWeightedSignature(p.schema.Len(), p.tree.NumLeaves(), toks, weights)
	})
	return p.sig
}

// Prepare validates the schema and builds the reusable matching artifact:
// the expanded schema tree (under the matcher's tree options) and the
// linguistic analysis (under its thesaurus and parameters). Prepare is
// safe for concurrent use, like every other method of Matcher.
func (m *Matcher) Prepare(s *model.Schema) (*Prepared, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: schema %q: %w", s.Name, err)
	}
	t, err := schematree.Build(s, m.cfg.Tree)
	if err != nil {
		return nil, fmt.Errorf("core: expanding %q: %w", s.Name, err)
	}
	return &Prepared{
		owner:  m,
		schema: s,
		tree:   t,
		info:   m.ling.Analyze(s),
	}, nil
}

// pathTokens returns the normalized token set of every node's context
// path, computed once per Prepared (ModeLinguisticOnly's per-tree cost).
func (p *Prepared) pathTokens() []linguistic.TokenSet {
	p.pathOnce.Do(func() {
		toks := make([]linguistic.TokenSet, p.tree.Len())
		par.For(p.tree.Len(), func(i int) {
			toks[i] = linguistic.Normalize(p.tree.Nodes[i].Path(), p.owner.ling.Th)
		})
		p.pathToks = toks
	})
	return p.pathToks
}

// MatchPrepared computes a mapping between two prepared schemas, skipping
// the per-schema validation/expansion/analysis phases. The result is
// bit-identical to Match on the same schemas (Match is implemented on top
// of Prepare + MatchPrepared; the determinism tests assert the
// equivalence). Both artifacts must have been built by this Matcher.
func (m *Matcher) MatchPrepared(src, dst *Prepared) (*Result, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("core: nil prepared schema")
	}
	if src.owner != m || dst.owner != m {
		return nil, fmt.Errorf("core: prepared schema belongs to a different matcher (prepare and match with the same Matcher)")
	}
	res := &Result{
		SourceTree: src.tree,
		TargetTree: dst.tree,
		SourceInfo: src.info,
		TargetInfo: dst.info,
	}
	if m.cfg.Mode == ModeLinguisticOnly {
		return m.matchLinguisticOnly(res, src.pathTokens(), dst.pathTokens())
	}

	// Element-level lsim lifted to tree nodes (context copies inherit the
	// similarity of their element — linguistic matching is unaffected by
	// the graph-to-tree expansion, §8.2).
	elemLSim := m.ling.LSim(res.SourceInfo, res.TargetInfo)
	m.ling.BlendDescriptions(res.SourceInfo, res.TargetInfo, elemLSim, m.cfg.DescriptionWeight)
	if m.cfg.Mode == ModeStructuralOnly {
		elemLSim.Zero()
	}
	if err := m.applyInitialMapping(src.schema, dst.schema, elemLSim); err != nil {
		return nil, err
	}
	res.LSim = liftToNodes(src.tree, dst.tree, elemLSim)

	// Instance-aware leaf initialization: when BOTH artifacts carry value
	// profiles, leaf pairs profiled on both sides blend observed-value
	// compatibility into the declared-type table lookup (tie-breaking
	// evidence, internal/instance). The hook rides on a per-call copy of
	// the structural parameters; with either side profile-free the copy is
	// hook-less and the pipeline is bit-identical to the profile-free path.
	sp := m.cfg.Structural
	if len(src.profiles) > 0 && len(dst.profiles) > 0 {
		sp.LeafCompat = leafCompatFn(src.profiles, dst.profiles, sp.Compat)
	}
	res.Struct = structural.TreeMatch(src.tree, dst.tree, res.LSim, sp)
	if m.cfg.Mapping.NonLeaves {
		// Second post-order traversal (§7): leaf similarity updates during
		// TreeMatch may have changed non-leaf structural similarity.
		structural.SecondPass(res.Struct, src.tree, dst.tree, res.LSim, sp)
	}
	res.WSim = res.Struct.WSim
	res.Mapping = mapping.Generate(src.tree, dst.tree, res.Struct, res.LSim, m.cfg.Mapping)
	return res, nil
}
