package core

import (
	"testing"

	"repro/internal/model"
)

// buildPermuted builds Figure 2's PO schema with children declared in a
// different order. The set of discovered leaf pairs must be identical:
// matching must not depend on declaration order beyond deterministic
// tie-breaking among genuinely tied alternatives, and Figure 2 has no such
// ties for the gold pairs.
func buildPermutedPO() *model.Schema {
	s := model.New("PO")
	str := func(p *model.Element, name string) {
		s.AddChild(p, name, model.KindAttribute).Type = model.DTString
	}
	// Declare POBillTo before POShipTo, and reverse the item columns.
	bill := s.AddChild(s.Root(), "POBillTo", model.KindElement)
	str(bill, "City")
	str(bill, "Street")
	ship := s.AddChild(s.Root(), "POShipTo", model.KindElement)
	str(ship, "City")
	str(ship, "Street")
	lines := s.AddChild(s.Root(), "POLines", model.KindElement)
	cnt := s.AddChild(lines, "Count", model.KindAttribute)
	cnt.Type = model.DTInt
	item := s.AddChild(lines, "Item", model.KindElement)
	str(item, "UoM")
	qty := s.AddChild(item, "Qty", model.KindAttribute)
	qty.Type = model.DTInt
	line := s.AddChild(item, "Line", model.KindAttribute)
	line.Type = model.DTInt
	return s
}

func leafPairSet(res *Result) map[[2]string]bool {
	out := map[[2]string]bool{}
	for _, e := range res.Mapping.Leaves {
		out[[2]string{e.Source.Path(), e.Target.Path()}] = true
	}
	return out
}

func TestChildOrderInvariance(t *testing.T) {
	orig, err := Match(figure2PO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	perm, err := Match(buildPermutedPO(), figure2POrder())
	if err != nil {
		t.Fatal(err)
	}
	a := leafPairSet(orig)
	b := leafPairSet(perm)
	for p := range a {
		if !b[p] {
			t.Errorf("pair %v lost after permuting child order\n%s", p, perm.Mapping)
		}
	}
	for p := range b {
		if !a[p] {
			t.Errorf("pair %v appeared only after permuting child order", p)
		}
	}
}
