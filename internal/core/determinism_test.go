package core

// End-to-end parallel-vs-sequential determinism: the whole pipeline
// (Analyze, CompatiblePairs, LSim, lift, TreeMatch, SecondPass, Generate)
// must produce bit-identical similarity matrices and the same mapping
// whether the par pool runs one worker or many. The ISSUE acceptance
// criterion; run with -race to exercise the concurrent paths on any
// machine.

import (
	"testing"

	"repro/internal/par"
	"repro/internal/workloads"
)

func matchWorkers(t *testing.T, w workloads.Workload, workers int) *Result {
	t.Helper()
	prev := par.SetMaxWorkers(workers)
	defer par.SetMaxWorkers(prev)
	m, err := NewMatcher(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(w.Source, w.Target)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPipelineParallelMatchesSequential(t *testing.T) {
	for _, w := range []workloads.Workload{
		workloads.Figure2(),   // canonical PO example
		workloads.CIDXExcel(), // the paper's real-world PO workload
		workloads.University(),
	} {
		seq := matchWorkers(t, w, 1)
		par8 := matchWorkers(t, w, 8)

		if !seq.LSim.Equal(par8.LSim) {
			t.Fatalf("%s: parallel node lsim differs from sequential (max diff %v)",
				w.Name, seq.LSim.MaxAbsDiff(par8.LSim))
		}
		if !seq.WSim.Equal(par8.WSim) {
			t.Fatalf("%s: parallel wsim differs from sequential (max diff %v)",
				w.Name, seq.WSim.MaxAbsDiff(par8.WSim))
		}
		if !seq.Struct.SSim.Equal(par8.Struct.SSim) {
			t.Fatalf("%s: parallel ssim differs from sequential", w.Name)
		}
		if got, want := par8.Mapping.String(), seq.Mapping.String(); got != want {
			t.Fatalf("%s: mappings differ\nsequential:\n%s\nparallel:\n%s", w.Name, want, got)
		}
	}
}

// Concurrent Match calls on one shared Matcher must be safe and agree with
// the sequential result (the documented concurrency contract).
func TestConcurrentMatchCalls(t *testing.T) {
	w := workloads.Figure2()
	m, err := NewMatcher(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Match(w.Source, w.Target)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 6
	results := make([]*Result, callers)
	errs := make([]error, callers)
	done := make(chan int, callers)
	for g := 0; g < callers; g++ {
		go func(g int) {
			results[g], errs[g] = m.Match(w.Source, w.Target)
			done <- g
		}(g)
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for g := 0; g < callers; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !results[g].WSim.Equal(want.WSim) {
			t.Fatalf("concurrent Match call %d drifted from sequential result", g)
		}
		if results[g].Mapping.String() != want.Mapping.String() {
			t.Fatalf("concurrent Match call %d produced a different mapping", g)
		}
	}
}
