package core

// Instance-aware preparation coverage: the zero-instances path must be
// bit-identical to plain Prepare (probe by probe, asserted over real
// workloads), profile-blended matching must be deterministic across
// repeated and concurrent runs (run with -race), and the profile hash must
// extend — never replace — the schema fingerprint.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/instance"
	"repro/internal/sqlddl"
	"repro/internal/workloads"
)

func mustSamples(t *testing.T, doc string) instance.Samples {
	t.Helper()
	s, err := instance.ParseSamples([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestZeroInstancesBitIdentical: PrepareWithInstances with nil, empty, and
// entirely unresolvable samples must produce artifacts whose match output
// is bit-identical to plain Prepare — the regression gate guaranteeing the
// instance subsystem costs existing users nothing.
func TestZeroInstancesBitIdentical(t *testing.T) {
	m, err := NewMatcher(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	unresolvable := mustSamples(t, `{"no.such.leaf": [1, 2, 3]}`)
	for _, w := range []workloads.Workload{
		workloads.Figure2(),
		workloads.CIDXExcel(),
		workloads.University(),
	} {
		ps, err := m.Prepare(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		pd, err := m.Prepare(w.Target)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.MatchPrepared(ps, pd)
		if err != nil {
			t.Fatal(err)
		}
		for name, samples := range map[string]instance.Samples{
			"nil": nil, "empty": {}, "unresolvable": unresolvable,
		} {
			qs, err := m.PrepareWithInstances(w.Source, samples)
			if err != nil {
				t.Fatal(err)
			}
			qd, err := m.PrepareWithInstances(w.Target, samples)
			if err != nil {
				t.Fatal(err)
			}
			if qs.HasProfiles() || qd.HasProfiles() {
				t.Fatalf("%s/%s: artifact unexpectedly carries profiles", w.Name, name)
			}
			if qs.Fingerprint() != ps.Fingerprint() {
				t.Fatalf("%s/%s: fingerprint changed without resolvable samples", w.Name, name)
			}
			got, err := m.MatchPrepared(qs, qd)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, w.Name+"/"+name, want, got)
		}
	}
}

// tieBreakArtifacts prepares two profile-carrying artifacts from the
// workloads tie-break corpus: the shared generic SQL schema with two
// different instance payloads.
func tieBreakArtifacts(t *testing.T, m *Matcher) (src, dst *Prepared) {
	t.Helper()
	targets := workloads.TieBreakTargets(2)
	prep := func(d workloads.TieBreakDoc) *Prepared {
		s, err := sqlddl.Parse(d.Name, d.SQL)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.PrepareWithInstances(s, mustSamples(t, d.Instances))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	src, dst = prep(targets[0]), prep(targets[1])
	if !src.HasProfiles() || !dst.HasProfiles() {
		t.Fatalf("tie-break artifacts missing profiles: %d / %d leaves", src.ProfiledLeaves(), dst.ProfiledLeaves())
	}
	return src, dst
}

// TestInstanceBlendDeterministic runs the profile-blended match repeatedly
// and concurrently: every run must produce bit-identical similarity
// matrices and mapping output. Under -race this also proves the
// leaf-compat hook shares no mutable state across calls.
func TestInstanceBlendDeterministic(t *testing.T) {
	m, err := NewMatcher(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, dst := tieBreakArtifacts(t, m)
	want, err := m.MatchPrepared(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 8
	results := make([]*Result, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := m.MatchPrepared(src, dst)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r == nil {
			t.Fatalf("run %d produced no result", i)
		}
		assertSameResult(t, fmt.Sprintf("blend run %d", i), want, r)
	}
}

// TestProfiledFingerprintExtends: attaching resolvable samples suffixes
// the schema fingerprint (schema hash unchanged as prefix), identical
// samples reproduce the same suffix, different samples a different one.
func TestProfiledFingerprintExtends(t *testing.T) {
	m, err := NewMatcher(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	targets := workloads.TieBreakTargets(2)
	s, err := sqlddl.Parse("plain", targets[0].SQL)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	with := func(doc string) string {
		sch, err := sqlddl.Parse("plain", targets[0].SQL)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.PrepareWithInstances(sch, mustSamples(t, doc))
		if err != nil {
			t.Fatal(err)
		}
		return p.Fingerprint()
	}
	a := with(targets[0].Instances)
	b := with(targets[0].Instances)
	c := with(targets[1].Instances)
	if !strings.HasPrefix(a, plain.Fingerprint()+"+") {
		t.Errorf("profiled fingerprint %q does not extend schema fingerprint %q", a, plain.Fingerprint())
	}
	if a != b {
		t.Errorf("identical samples produced different fingerprints: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("different samples produced the same fingerprint %q", a)
	}
}
