package core

import (
	"testing"

	"repro/internal/model"
)

// buildAnnotated builds a schema pair whose names carry no signal but
// whose descriptions (data-dictionary annotations) do.
func buildAnnotated() (*model.Schema, *model.Schema) {
	s1 := model.New("Legacy")
	t1 := s1.AddChild(s1.Root(), "REC17", model.KindTable)
	a := s1.AddChild(t1, "FLD_A", model.KindColumn)
	a.Type = model.DTInt
	a.Description = "unique number identifying the customer"
	b := s1.AddChild(t1, "FLD_B", model.KindColumn)
	b.Type = model.DTString
	b.Description = "street address of the customer"

	s2 := model.New("CRM")
	t2 := s2.AddChild(s2.Root(), "Party", model.KindTable)
	n := s2.AddChild(t2, "PNO", model.KindColumn)
	n.Type = model.DTInt
	n.Description = "the customer's unique identifying number"
	ad := s2.AddChild(t2, "ADDR1", model.KindColumn)
	ad.Type = model.DTString
	ad.Description = "customer street address line"
	return s1, s2
}

// TestDescriptionMatchingEndToEnd exercises the §10 future-work feature:
// schema annotations rescue pairs whose names are opaque.
func TestDescriptionMatchingEndToEnd(t *testing.T) {
	s1, s2 := buildAnnotated()

	// Without descriptions: nothing aligns (names are opaque; ADDR1
	// expands addr -> address but FLD names stay dark, so at most noise).
	plain, err := Match(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	plainHit := plain.Mapping.HasPair("Legacy.REC17.FLD_A", "CRM.Party.PNO") &&
		plain.Mapping.HasPair("Legacy.REC17.FLD_B", "CRM.Party.ADDR1")

	cfg := DefaultConfig()
	cfg.DescriptionWeight = 0.6
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapping.HasPair("Legacy.REC17.FLD_A", "CRM.Party.PNO") {
		t.Errorf("description matching missed FLD_A <-> PNO\n%s", res.Mapping)
	}
	if !res.Mapping.HasPair("Legacy.REC17.FLD_B", "CRM.Party.ADDR1") {
		t.Errorf("description matching missed FLD_B <-> ADDR1\n%s", res.Mapping)
	}
	if plainHit {
		t.Log("note: plain matching also aligned the pair (weak signal); description weight still validated above")
	}
}

func TestDescriptionWeightValidated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DescriptionWeight = 1.5
	if _, err := NewMatcher(cfg); err == nil {
		t.Error("out-of-range description weight accepted")
	}
	cfg.DescriptionWeight = -0.1
	if _, err := NewMatcher(cfg); err == nil {
		t.Error("negative description weight accepted")
	}
}
