package registry

// WAL-mode Persistent coverage: durability round trips, replace/remove
// replay, group commit batching concurrent writers into shared fsyncs,
// background compaction folding the journal into snapshot generations,
// cross-mode data-directory compatibility, torn-tail recovery, and the
// Close drain/idempotency contract.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workloads"
)

// newWAL opens a WAL-mode Persistent over dir with the given options
// (zero-valued fields take the defaults).
func newWAL(t *testing.T, dir string, opts PersistOptions) *Persistent {
	t.Helper()
	opts.WAL = true
	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, warns, err := OpenPersistentOptions(dir, m, opts, storeParse)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range warns {
		t.Logf("open warning: %s", w)
	}
	return p
}

func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestWALRoundTripPreservesFingerprintAndRanking(t *testing.T) {
	dir := t.TempDir()
	p1 := newWAL(t, dir, PersistOptions{})
	e1, created, err := p1.RegisterSource("orders", "sql", []byte(storeDDL))
	if err != nil || !created {
		t.Fatalf("register: created=%v err=%v", created, err)
	}
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{Families: 3, PerFamily: 3, Seed: 5})
	for _, s := range corpus {
		b, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p1.RegisterSource(s.Name, "json", b); err != nil {
			t.Fatal(err)
		}
	}
	probe, err := p1.Matcher().Prepare(workloads.FamilyProbe(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	before, err := p1.MatchAll(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	// WAL mode never snapshotted (threshold untouched): the journal alone
	// must carry the repository.
	if snaps := snapshotFiles(t, dir); len(snaps) != 0 {
		t.Fatalf("unexpected snapshots before any compaction: %v", snaps)
	}
	if len(walFiles(t, dir)) != 1 {
		t.Fatalf("want exactly one journal, got %v", walFiles(t, dir))
	}

	p2 := newWAL(t, dir, PersistOptions{})
	defer p2.Close()
	if p2.Len() != p1.Len() {
		t.Fatalf("restart lost entries: %d vs %d", p2.Len(), p1.Len())
	}
	e2, ok := p2.Get("orders")
	if !ok {
		t.Fatal("orders not restored")
	}
	if e2.Fingerprint != e1.Fingerprint {
		t.Errorf("fingerprint drifted across restart: %s vs %s", e2.Fingerprint, e1.Fingerprint)
	}
	probe2, err := p2.Matcher().Prepare(workloads.FamilyProbe(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	after, err := p2.MatchAll(probe2, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, before, after)
}

func TestWALReplaceAndRemoveReplayInOrder(t *testing.T) {
	dir := t.TempDir()
	p1 := newWAL(t, dir, PersistOptions{})
	if _, _, err := p1.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p1.RegisterSource("billing", "sql",
		[]byte("CREATE TABLE Billing (BillID INT PRIMARY KEY, Total DECIMAL(10,2));")); err != nil {
		t.Fatal(err)
	}
	// Replace orders with different content (new fingerprint), then remove
	// billing: replay must land on exactly this final state.
	replaced := "CREATE TABLE Orders (OrderID INT PRIMARY KEY, Shipped DATE);"
	e, created, err := p1.RegisterSource("orders", "sql", []byte(replaced))
	if err != nil || !created {
		t.Fatalf("replace: created=%v err=%v", created, err)
	}
	if ok, err := p1.Remove("billing"); err != nil || !ok {
		t.Fatalf("remove: ok=%v err=%v", ok, err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := newWAL(t, dir, PersistOptions{})
	defer p2.Close()
	if p2.Len() != 1 {
		t.Fatalf("restored %d entries, want 1", p2.Len())
	}
	got, ok := p2.Get("orders")
	if !ok {
		t.Fatal("orders missing after replay")
	}
	if got.Fingerprint != e.Fingerprint {
		t.Errorf("replay restored pre-replacement content: fingerprint %s, want %s", got.Fingerprint, e.Fingerprint)
	}
	if _, ok := p2.Get("billing"); ok {
		t.Error("removed entry resurrected by replay")
	}
}

// TestWALGroupCommitSharesFsyncs proves the group-commit loop batches
// concurrent writers: with a linger window, 8 writers registering
// concurrently must complete in far fewer fsyncs than mutations.
func TestWALGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{GroupCommitWindow: 40 * time.Millisecond})
	defer p.Close()

	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ddl := fmt.Sprintf("CREATE TABLE W%d (ID INT PRIMARY KEY, Val%d VARCHAR(8));", i, i)
			_, _, errs[i] = p.RegisterSource(fmt.Sprintf("w%d", i), "sql", []byte(ddl))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if p.wal.records != writers {
		t.Fatalf("journal holds %d records, want %d", p.wal.records, writers)
	}
	if p.wal.syncs >= writers {
		t.Errorf("group commit degenerated: %d fsyncs for %d concurrent writers", p.wal.syncs, writers)
	}
	t.Logf("group commit: %d writers, %d fsyncs", writers, p.wal.syncs)
}

// TestWALCompactionFoldsTailIntoSnapshot drives the background compactor
// with a tiny byte threshold and checks the steady-state invariants: at
// most two snapshot generations, at most two journals, and a restart that
// restores the full repository.
func TestWALCompactionFoldsTailIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{CompactBytes: 1})
	const n = 6
	for i := 0; i < n; i++ {
		ddl := fmt.Sprintf("CREATE TABLE C%d (ID INT PRIMARY KEY, F%d VARCHAR(16));", i, i)
		if _, _, err := p.RegisterSource(fmt.Sprintf("c%d", i), "sql", []byte(ddl)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	snaps := snapshotFiles(t, dir)
	if len(snaps) == 0 || len(snaps) > snapshotsKept {
		t.Fatalf("compaction left %v, want 1..%d snapshot generations", snaps, snapshotsKept)
	}
	if wals := walFiles(t, dir); len(wals) == 0 || len(wals) > snapshotsKept {
		t.Fatalf("compaction left %v, want 1..%d journals", wals, snapshotsKept)
	}
	p2 := newWAL(t, dir, PersistOptions{})
	defer p2.Close()
	if p2.Len() != n {
		t.Fatalf("restart after compaction restored %d entries, want %d", p2.Len(), n)
	}
	for i := 0; i < n; i++ {
		if _, ok := p2.Get(fmt.Sprintf("c%d", i)); !ok {
			t.Errorf("entry c%d lost across compaction", i)
		}
	}
}

// TestWALOpensLegacyDirAndBack: a legacy snapshot directory is a valid
// generation-0 for WAL mode, and a WAL directory recovers fully under a
// legacy open (recovery replays the journal regardless of mode).
func TestWALOpensLegacyDirAndBack(t *testing.T) {
	dir := t.TempDir()
	legacy := newPersistent(t, dir, 0)
	if _, _, err := legacy.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}

	wal := newWAL(t, dir, PersistOptions{})
	if _, ok := wal.Get("orders"); !ok {
		t.Fatal("legacy snapshot not restored under WAL mode")
	}
	if _, _, err := wal.RegisterSource("billing", "sql",
		[]byte("CREATE TABLE Billing (BillID INT PRIMARY KEY);")); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	back := newPersistent(t, dir, 0)
	defer back.Close()
	if back.Len() != 2 {
		t.Fatalf("legacy reopen of a WAL dir restored %d entries, want 2", back.Len())
	}
	if _, ok := back.Get("billing"); !ok {
		t.Error("journaled entry lost under legacy reopen")
	}
}

func TestWALTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	p1 := newWAL(t, dir, PersistOptions{})
	for i := 0; i < 3; i++ {
		ddl := fmt.Sprintf("CREATE TABLE T%d (ID INT PRIMARY KEY);", i)
		if _, _, err := p1.RegisterSource(fmt.Sprintf("t%d", i), "sql", []byte(ddl)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	wal := walFiles(t, dir)[0]
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	goodSize := fi.Size()
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("\x00\x00\x01torn"))
	f.Close()

	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, warns, err := OpenPersistentOptions(dir, m, PersistOptions{WAL: true}, storeParse)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Len() != 3 {
		t.Fatalf("recovery restored %d entries, want 3", p2.Len())
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "torn tail") {
			found = true
		}
	}
	if !found {
		t.Errorf("no torn-tail warning in %v", warns)
	}
	if fi, err := os.Stat(wal); err != nil || fi.Size() != goodSize {
		t.Errorf("journal not truncated back to %d bytes (got %v, err %v)", goodSize, fi, err)
	}
	// The truncated journal keeps accepting appends.
	if _, _, err := p2.RegisterSource("t3", "sql", []byte("CREATE TABLE T3 (ID INT PRIMARY KEY);")); err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	p3 := newWAL(t, dir, PersistOptions{})
	defer p3.Close()
	if p3.Len() != 4 {
		t.Fatalf("post-truncation append lost: %d entries, want 4", p3.Len())
	}
}

// TestCloseConcurrentWithIntervalFlush is the regression test for the
// Close/interval-flush race: many goroutines closing a batched-mode
// registry while its background writer is actively flushing must neither
// panic (the old select-with-default double close) nor race the final
// snapshot write, and every Close call must return the same outcome.
func TestCloseConcurrentWithIntervalFlush(t *testing.T) {
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		p := newPersistent(t, dir, time.Millisecond)
		for i := 0; i < 3; i++ {
			ddl := fmt.Sprintf("CREATE TABLE R%d (ID INT PRIMARY KEY);", i)
			if _, _, err := p.RegisterSource(fmt.Sprintf("r%d", i), "sql", []byte(ddl)); err != nil {
				t.Fatal(err)
			}
		}
		// Let the 1ms ticker get a flush in flight, then close from many
		// goroutines at once.
		time.Sleep(2 * time.Millisecond)
		const closers = 6
		errs := make([]error, closers)
		var wg sync.WaitGroup
		for i := 0; i < closers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = p.Close()
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != errs[0] {
				t.Fatalf("Close call %d returned %v, call 0 returned %v", i, err, errs[0])
			}
		}
		if errs[0] != nil {
			t.Fatal(errs[0])
		}
		// The drained close must have flushed everything.
		p2 := newPersistent(t, dir, 0)
		if p2.Len() != 3 {
			t.Fatalf("round %d: %d entries after concurrent close, want 3", round, p2.Len())
		}
		p2.Close()
	}
}

// TestWALIdempotentReRegisterSemantics: re-registering content whose put
// is confirmed durable is a free no-op (no record, no fsync), but while
// the put is unconfirmed — its commit failed or is still in flight — the
// re-registration re-journals before acknowledging (closing the hole
// where a retry after a failed commit was acknowledged without anything
// ever reaching the journal).
func TestWALIdempotentReRegisterSemantics(t *testing.T) {
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{})
	_, created, err := p.RegisterSource("orders", "sql", []byte(storeDDL))
	if err != nil || !created {
		t.Fatalf("register: created=%v err=%v", created, err)
	}
	// Confirmed content: the re-registration must not touch the journal.
	if _, created, err := p.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil || created {
		t.Fatalf("re-register: created=%v err=%v, want idempotent success", created, err)
	}
	if p.wal.records != 1 {
		t.Fatalf("re-registering confirmed content journaled %d records, want 1 (free no-op)", p.wal.records)
	}
	// Synthesize an unconfirmed put (the state after "registered but
	// journaling failed"): the retry must append a fresh record and clear
	// the marker.
	p.mu.Lock()
	p.markLocked("orders", walOpPut)
	p.mu.Unlock()
	if _, created, err := p.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil || created {
		t.Fatalf("retry re-register: created=%v err=%v", created, err)
	}
	if p.wal.records != 2 {
		t.Fatalf("retrying an unconfirmed put journaled %d records, want 2", p.wal.records)
	}
	p.mu.Lock()
	_, pending := p.unjournaled["orders"]
	p.mu.Unlock()
	if pending {
		t.Error("confirmed retry left its unjournaled marker set")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := newWAL(t, dir, PersistOptions{})
	defer p2.Close()
	if p2.Len() != 1 {
		t.Fatalf("replay of duplicate puts restored %d entries, want 1", p2.Len())
	}
}

// TestWALOversizedRecordFailsOnlyItsWriter: a record beyond the size
// limit is refused at encode time and fails only its own writer — the
// rest of the batch still commits and stays durable.
func TestWALOversizedRecordFailsOnlyItsWriter(t *testing.T) {
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{})
	defer p.Close()
	p.mu.Lock()
	dBig := p.enqueueLocked(walRecord{Op: walOpPut, Name: "big", Format: "json",
		Content: strings.Repeat("a", walMaxPayload)})
	dOK := p.enqueueLocked(delRecord("ghost"))
	p.mu.Unlock()
	if err := <-dBig; err == nil {
		t.Error("oversized record committed")
	}
	if err := <-dOK; err != nil {
		t.Errorf("valid record in the same window failed: %v", err)
	}
	if p.wal.records != 1 {
		t.Errorf("journal holds %d records, want 1 (the valid one)", p.wal.records)
	}
}

// TestDataDirLockedAgainstSecondProcess: the data directory refuses a
// second concurrent open (two writers would truncate each other's
// journal) and frees the lock on Close.
func TestDataDirLockedAgainstSecondProcess(t *testing.T) {
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{})
	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPersistentOptions(dir, m, PersistOptions{WAL: true}, storeParse); err == nil {
		t.Fatal("second open of a live data directory succeeded")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, _, err := OpenPersistentOptions(dir, m, PersistOptions{WAL: true}, storeParse)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	p2.Close()
}

// TestWALAppendFailureNeverSilentlyAcks: once the journal cannot commit,
// every mutation — including retries of ones already applied in memory —
// must keep failing rather than acknowledge undurable state, and a
// restart must serve exactly what was acknowledged before the failure.
func TestWALAppendFailureNeverSilentlyAcks(t *testing.T) {
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{})
	if _, _, err := p.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	// Fail all further appends: closing the descriptor makes the next
	// write error and the rollback truncate fail, poisoning the journal.
	if err := p.wal.f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.RegisterSource("billing", "sql",
		[]byte("CREATE TABLE Billing (BillID INT PRIMARY KEY);")); err == nil {
		t.Fatal("registration acknowledged while the journal could not commit")
	}
	// The retry hole: billing is now in memory, so a naive idempotent
	// path would acknowledge this without journaling anything.
	if _, _, err := p.RegisterSource("billing", "sql",
		[]byte("CREATE TABLE Billing (BillID INT PRIMARY KEY);")); err == nil {
		t.Fatal("retried registration acknowledged without a durable record")
	}
	if _, err := p.Remove("orders"); err == nil {
		t.Fatal("removal acknowledged while the journal could not commit")
	}
	if _, err := p.Remove("orders"); err == nil {
		t.Fatal("retried removal acknowledged without a durable record")
	}
	p.Close() // surfaces the journal failure; the double close of f is expected

	p2 := newWAL(t, dir, PersistOptions{})
	defer p2.Close()
	if _, ok := p2.Get("orders"); !ok {
		t.Error("the one acknowledged registration did not survive")
	}
	if _, ok := p2.Get("billing"); ok {
		t.Error("a never-acknowledged registration leaked to disk")
	}
}

// TestWALRemoveRetryJournalsDeletion: after "removed but journaling
// failed", the entry is gone from memory; the client's retry must land
// the del record, not be told "already gone" while the entry would
// resurrect on restart.
func TestWALRemoveRetryJournalsDeletion(t *testing.T) {
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{})
	if _, _, err := p.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	// Synthesize the post-failure state: in-memory removal done, del
	// record never committed, marker pending.
	p.mu.Lock()
	p.Registry.Remove("orders")
	delete(p.docs, "orders")
	p.markLocked("orders", walOpDel)
	p.mu.Unlock()

	existed, err := p.Remove("orders")
	if err != nil {
		t.Fatalf("retried remove: %v", err)
	}
	if existed {
		t.Error("retried remove reported existed=true for an entry already gone from memory")
	}
	p.mu.Lock()
	_, marked := p.unjournaled["orders"]
	p.mu.Unlock()
	if marked {
		t.Error("confirmed removal left its unjournaled marker set")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := newWAL(t, dir, PersistOptions{})
	defer p2.Close()
	if _, ok := p2.Get("orders"); ok {
		t.Error("removed entry resurrected: the retried del never reached the journal")
	}
}

func TestMutateAfterCloseFails(t *testing.T) {
	for _, mode := range []string{"wal", "sync", "interval"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			var p *Persistent
			switch mode {
			case "wal":
				p = newWAL(t, dir, PersistOptions{})
			case "sync":
				p = newPersistent(t, dir, 0)
			case "interval":
				p = newPersistent(t, dir, time.Hour)
			}
			if _, _, err := p.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := p.RegisterSource("late", "sql", []byte("CREATE TABLE L (ID INT);")); err == nil {
				t.Error("registration after Close succeeded")
			}
			if _, err := p.Remove("orders"); err == nil {
				t.Error("removal after Close succeeded")
			}
			// Reads keep serving the in-memory state.
			if _, ok := p.Get("orders"); !ok {
				t.Error("read after Close lost the entry")
			}
		})
	}
}
