package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sqlddl"
	"repro/internal/workloads"
)

// storeParse is the multi-format ParseFunc the cupidd server would supply,
// reduced to the two formats these tests use.
func storeParse(name, format string, data []byte) (*model.Schema, error) {
	if format == "sql" {
		return sqlddl.Parse(name, string(data))
	}
	return model.ReadJSON(strings.NewReader(string(data)))
}

const storeDDL = `CREATE TABLE Orders (
  OrderID INT PRIMARY KEY,
  Customer VARCHAR(64),
  Amount DECIMAL(10,2),
  Ref INT,
  FOREIGN KEY (Ref) REFERENCES Billing(BillID)
);
CREATE TABLE Billing (BillID INT PRIMARY KEY, Total DECIMAL(10,2));`

func newPersistent(t *testing.T, dir string, interval time.Duration) *Persistent {
	t.Helper()
	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, warns, err := OpenPersistent(dir, m, interval, storeParse)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range warns {
		t.Logf("open warning: %s", w)
	}
	return p
}

func snapshotFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, snapshotPrefix+"*"+snapshotSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestPersistentRoundTripPreservesFingerprintAndRanking(t *testing.T) {
	dir := t.TempDir()

	p1 := newPersistent(t, dir, 0)
	e1, created, err := p1.RegisterSource("orders", "sql", []byte(storeDDL))
	if err != nil || !created {
		t.Fatalf("register: created=%v err=%v", created, err)
	}
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{Families: 3, PerFamily: 3, Seed: 5})
	for _, s := range corpus {
		b, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p1.RegisterSource(s.Name, "json", b); err != nil {
			t.Fatal(err)
		}
	}
	probe, err := p1.Matcher().Prepare(workloads.FamilyProbe(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	before, err := p1.MatchAll(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same dir: same entries, same fingerprints, identical
	// ranking for the same probe.
	p2 := newPersistent(t, dir, 0)
	defer p2.Close()
	if p2.Len() != p1.Len() {
		t.Fatalf("restart lost entries: %d vs %d", p2.Len(), p1.Len())
	}
	e2, ok := p2.Get("orders")
	if !ok {
		t.Fatal("orders not restored")
	}
	if e2.Fingerprint != e1.Fingerprint {
		t.Errorf("fingerprint drifted across restart: %s vs %s", e2.Fingerprint, e1.Fingerprint)
	}
	probe2, err := p2.Matcher().Prepare(workloads.FamilyProbe(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	after, err := p2.MatchAll(probe2, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, before, after)
	for i := range before {
		if before[i].Entry.Fingerprint != after[i].Entry.Fingerprint {
			t.Errorf("rank %d fingerprint drifted", i)
		}
	}
}

func TestPersistentRemoveSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	p1 := newPersistent(t, dir, 0)
	if _, _, err := p1.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p1.RegisterSource("billing", "sql",
		[]byte("CREATE TABLE Billing (BillID INT PRIMARY KEY, Total DECIMAL(10,2));")); err != nil {
		t.Fatal(err)
	}
	ok, err := p1.Remove("orders")
	if err != nil || !ok {
		t.Fatalf("remove: ok=%v err=%v", ok, err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := newPersistent(t, dir, 0)
	defer p2.Close()
	if _, ok := p2.Get("orders"); ok {
		t.Error("removed entry came back after restart")
	}
	if _, ok := p2.Get("billing"); !ok {
		t.Error("surviving entry lost after restart")
	}
}

// TestCrashRecoveryTornSnapshot simulates a crash that tears the newest
// snapshot mid-write (truncated file): restart must fall back to the last
// consistent snapshot and serve its exact state.
func TestCrashRecoveryTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	p1 := newPersistent(t, dir, 0)
	if _, _, err := p1.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	// Second mutation creates a second snapshot generation.
	if _, _, err := p1.RegisterSource("billing", "sql",
		[]byte("CREATE TABLE Billing (BillID INT PRIMARY KEY, Total DECIMAL(10,2));")); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	files := snapshotFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("expected 2 retained snapshot generations, got %v", files)
	}
	// Tear the newest snapshot: keep the header and half a record.
	newest := files[len(files)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, b[:len(b)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, warns, err := OpenPersistent(dir, m, 0, storeParse)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if len(warns) == 0 {
		t.Error("recovery from a torn snapshot produced no warning")
	}
	// The last consistent snapshot held only "orders".
	if _, ok := p2.Get("orders"); !ok {
		t.Error("last consistent snapshot's entry missing")
	}
	if _, ok := p2.Get("billing"); ok {
		t.Error("torn snapshot's entry leaked into the restored state")
	}
}

// TestCrashRecoveryGarbageSnapshot: a snapshot overwritten with garbage is
// skipped the same way.
func TestCrashRecoveryGarbageSnapshot(t *testing.T) {
	dir := t.TempDir()
	p1 := newPersistent(t, dir, 0)
	if _, _, err := p1.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p1.RegisterSource("extra", "sql",
		[]byte("CREATE TABLE Extra (ID INT PRIMARY KEY);")); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	files := snapshotFiles(t, dir)
	if err := os.WriteFile(files[len(files)-1], []byte("{\"magic\":\"not-a-registry\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := newPersistent(t, dir, 0)
	defer p2.Close()
	if p2.Len() != 1 {
		t.Fatalf("restored %d entries from fallback snapshot, want 1", p2.Len())
	}
}

func TestPersistentEmptyDirStartsEmpty(t *testing.T) {
	p := newPersistent(t, t.TempDir(), 0)
	defer p.Close()
	if p.Len() != 0 {
		t.Fatalf("fresh store restored %d entries", p.Len())
	}
}

func TestPersistentBatchedIntervalFlushesOnClose(t *testing.T) {
	dir := t.TempDir()
	// Interval long enough that the ticker never fires during the test:
	// only Close's flush can have written the snapshot.
	p1 := newPersistent(t, dir, time.Hour)
	if _, _, err := p1.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	if len(snapshotFiles(t, dir)) != 0 {
		t.Error("batched mode snapshotted synchronously")
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	if len(snapshotFiles(t, dir)) != 1 {
		t.Error("Close did not flush the pending snapshot")
	}
	p2 := newPersistent(t, dir, time.Hour)
	defer p2.Close()
	if _, ok := p2.Get("orders"); !ok {
		t.Error("entry lost across batched-mode restart")
	}
}

func TestPersistentBatchedWriterFires(t *testing.T) {
	dir := t.TempDir()
	p := newPersistent(t, dir, 10*time.Millisecond)
	defer p.Close()
	if _, _, err := p.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(snapshotFiles(t, dir)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background writer never snapshotted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPersistentNativeJSONFallbackRegister(t *testing.T) {
	dir := t.TempDir()
	p1 := newPersistent(t, dir, 0)
	w := workloads.Figure2()
	if _, _, err := p1.Register("po", w.Source); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := newPersistent(t, dir, 0)
	defer p2.Close()
	e, ok := p2.Get("po")
	if !ok {
		t.Fatal("library-registered schema not restored")
	}
	// The restored schema must match like the original: same leaf count,
	// and a self-match against the original scores 1-ish per leaf.
	if got, want := e.Prepared.Tree().NumLeaves(), 8; got != want {
		t.Errorf("restored schema has %d leaves, want %d", got, want)
	}
	// Fingerprint may have normalized once; a second restart is stable.
	fp := e.Fingerprint
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	p3 := newPersistent(t, dir, 0)
	defer p3.Close()
	e3, _ := p3.Get("po")
	if e3.Fingerprint != fp {
		t.Errorf("native-JSON fallback fingerprint unstable across restarts: %s vs %s", e3.Fingerprint, fp)
	}
}

// TestSyncSnapshotFailureIsRetried: in synchronous mode a failed snapshot
// write must leave the repository dirty so a later attempt (retry of the
// same registration, Flush, or Close) lands the state on disk — not
// strand acknowledged in-memory state ahead of disk forever.
func TestSyncSnapshotFailureIsRetried(t *testing.T) {
	dir := t.TempDir()
	p := newPersistent(t, dir, 0)
	defer p.Close()

	// Fail the snapshot's temp-file creation by yanking the data dir out
	// from under the store (works regardless of euid, unlike chmod).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	_, _, err := p.RegisterSource("orders", "sql", []byte(storeDDL))
	if err == nil {
		t.Fatal("registration acknowledged durable success while the snapshot write failed")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Retrying the identical registration must now write the snapshot.
	if _, _, err := p.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatalf("retry after disk recovery: %v", err)
	}
	if len(snapshotFiles(t, dir)) == 0 {
		t.Fatal("retry did not write the pending snapshot")
	}
	p2 := newPersistent(t, dir, 0)
	defer p2.Close()
	if _, ok := p2.Get("orders"); !ok {
		t.Error("retried registration not durable")
	}
}

// TestRecoverRefusesNewerSnapshotVersion: a snapshot written by a newer
// format version hard-fails the open (mirroring the journal policy) —
// deleting it or silently serving an older generation would destroy or
// hide committed data after a binary downgrade.
func TestRecoverRefusesNewerSnapshotVersion(t *testing.T) {
	dir := t.TempDir()
	future := "{\"magic\":\"cupid-registry\",\"version\":2,\"seq\":5,\"count\":0}\n{\"eof\":true,\"count\":0}\n"
	path := filepath.Join(dir, snapshotPrefix+"5"+snapshotSuffix)
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, storeParse)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Recover(); err == nil {
		t.Fatal("recovery over a newer snapshot version did not refuse")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("refused snapshot was deleted: %v", err)
	}
}

// TestRecoverKeepsSnapshotItCannotParse: a snapshot whose documents this
// store's parse function cannot handle is skipped with a warning but
// never deleted — a correctly configured reopen must still be able to
// read it.
func TestRecoverKeepsSnapshotItCannotParse(t *testing.T) {
	dir := t.TempDir()
	p := newPersistent(t, dir, 0)
	if _, _, err := p.RegisterSource("orders", "sql", []byte(storeDDL)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// nil parse restricts the store to native JSON: the sql document is
	// unreadable here, but its snapshot must survive untouched.
	st, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Docs) != 0 {
		t.Fatalf("json-only store parsed %d docs from a sql snapshot", len(rec.Docs))
	}
	if len(rec.Warnings) == 0 {
		t.Error("skipping an unparseable snapshot produced no warning")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := newPersistent(t, dir, 0)
	defer p2.Close()
	if _, ok := p2.Get("orders"); !ok {
		t.Error("snapshot was damaged by the json-only open; reopen with the right parser lost the entry")
	}
}

func TestStoreSnapshotRetention(t *testing.T) {
	dir := t.TempDir()
	p := newPersistent(t, dir, 0)
	defer p.Close()
	for i := 0; i < 5; i++ {
		ddl := "CREATE TABLE T" + string(rune('A'+i)) + " (ID INT PRIMARY KEY);"
		if _, _, err := p.RegisterSource("t"+string(rune('a'+i)), "sql", []byte(ddl)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(snapshotFiles(t, dir)); got != snapshotsKept {
		t.Errorf("%d snapshot generations retained, want %d", got, snapshotsKept)
	}
}
