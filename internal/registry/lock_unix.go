//go:build unix

package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDataDir takes an exclusive advisory flock on a lock file inside the
// data directory, refusing to open a directory another live process holds
// — two writers would corrupt each other's journal (one recovery
// truncating a file the other is appending to). The lock dies with the
// process, so a crash never leaves a stale lock behind.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registry: opening data dir lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("registry: data directory %s is locked by another process: %w", dir, err)
	}
	return f, nil
}
