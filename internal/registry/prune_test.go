package registry

import (
	"testing"

	"repro/internal/par"
	"repro/internal/workloads"
)

func TestPruneOptionsLimit(t *testing.T) {
	opt := PruneOptions{Fraction: 0.25, MinCandidates: 16}
	cases := []struct {
		n, topK, want int
	}{
		{200, 10, 50},  // fraction dominates
		{40, 5, 16},    // floor dominates
		{200, 80, 80},  // topK dominates
		{10, 0, 16},    // floor above n: MatchTop falls back to a full scan
		{1000, 0, 250}, // fraction of a big repository
	}
	for _, c := range cases {
		if got := opt.Limit(c.n, c.topK); got != c.want {
			t.Errorf("limit(n=%d, topK=%d) = %d, want %d", c.n, c.topK, got, c.want)
		}
	}
}

// prunedCorpus registers a family-structured repository (domain-clustered
// vocabularies) so the signature's token-overlap coordinate separates the
// probe's domain from the rest — the workload pruning is built for.
func prunedCorpus(t *testing.T, r *Registry, n int) {
	t.Helper()
	perFam := (n + workloads.NumFamilies() - 1) / workloads.NumFamilies()
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: perFam, Seed: 1})
	for _, s := range corpus[:n] {
		if _, _, err := r.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMatchTopSmallRepositoryEqualsFullScan(t *testing.T) {
	r := newTestRegistry(t)
	prunedCorpus(t, r, 8) // below MinCandidates: pruning must not engage
	probe, err := r.Matcher().Prepare(workloads.Figure2().Source)
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.MatchAll(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := r.MatchTop(probe, 0, DefaultPruneOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, full, pruned)
}

func TestMatchTopRecallOnDiverseCorpus(t *testing.T) {
	const n, topK = 64, 5
	r := newTestRegistry(t)
	prunedCorpus(t, r, n)
	probe, err := r.Matcher().Prepare(workloads.FamilyProbe(2, 77))
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.MatchAll(probe, topK)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := r.MatchTop(probe, topK, DefaultPruneOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != topK {
		t.Fatalf("pruned ranking has %d results, want %d", len(pruned), topK)
	}
	assertSameRanking(t, full, pruned)
}

// TestMatchTopDeterministicAcrossWorkerCounts asserts the pruned ranking is
// identical under sequential and parallel execution (the affinity pre-rank
// and the full match both fan over the pool).
func TestMatchTopDeterministicAcrossWorkerCounts(t *testing.T) {
	r := newTestRegistry(t)
	prunedCorpus(t, r, 48)
	probe, err := r.Matcher().Prepare(workloads.Figure2().Source)
	if err != nil {
		t.Fatal(err)
	}
	prev := par.SetMaxWorkers(1)
	seq, err := r.MatchTop(probe, 8, DefaultPruneOptions())
	par.SetMaxWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	par.SetMaxWorkers(8)
	defer par.SetMaxWorkers(prev)
	parR, err := r.MatchTop(probe, 8, DefaultPruneOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, seq, parR)
}

func assertSameRanking(t *testing.T, want, got []Ranked) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Entry.Name != got[i].Entry.Name || want[i].Score != got[i].Score {
			t.Errorf("rank %d: (%s, %v) vs (%s, %v)",
				i, want[i].Entry.Name, want[i].Score, got[i].Entry.Name, got[i].Score)
		}
	}
}
