//go:build !unix

package registry

import "os"

// lockDataDir is a no-op on platforms without flock semantics: the
// single-writer requirement on a data directory (see lock_unix.go) is
// then the operator's responsibility.
func lockDataDir(dir string) (*os.File, error) { return nil, nil }
