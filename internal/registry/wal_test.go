package registry

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []walRecord{
		putRecord(Doc{Name: "orders", Fingerprint: "fp1", Format: "sql", Content: "CREATE TABLE Orders (ID INT);"}),
		delRecord("orders"),
		putRecord(Doc{Name: "üñïçôdé", Fingerprint: "fp2", Format: "json", Content: `{"name":"x"}`}),
	}
	var buf []byte
	var err error
	for _, r := range recs {
		if buf, err = appendWALRecord(buf, r); err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i, want := range recs {
		got, n, err := decodeWALRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Errorf("record %d round-tripped to %+v, want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestWALRecordDetectsCorruption(t *testing.T) {
	frame, err := appendWALRecord(nil, putRecord(Doc{Name: "orders", Format: "sql", Content: "CREATE TABLE T (ID INT);"}))
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single byte must fail the decode: the length prefix and
	// checksum fields are load-bearing, the payload is checksummed.
	for i := range frame {
		mutated := append([]byte(nil), frame...)
		mutated[i] ^= 0x40
		if _, _, err := decodeWALRecord(mutated); err == nil {
			// A flipped length byte may still decode if the shorter prefix
			// happens to be valid JSON with a matching checksum — it cannot,
			// since the checksum covers the exact payload length.
			t.Errorf("flipping byte %d went undetected", i)
		}
	}
	// Truncation at every interior boundary must fail too.
	for n := 0; n < len(frame); n++ {
		if _, _, err := decodeWALRecord(frame[:n]); err == nil {
			t.Errorf("truncation to %d bytes went undetected", n)
		}
	}
}

// TestAppendWALRecordRejectsOversizedPayload: a record the decoder would
// treat as corruption must be refused at write time — otherwise it would
// be acknowledged, then truncated (with everything after it) at the next
// recovery.
func TestAppendWALRecordRejectsOversizedPayload(t *testing.T) {
	rec := putRecord(Doc{Name: "big", Format: "json", Content: strings.Repeat("a", walMaxPayload)})
	if _, err := appendWALRecord(nil, rec); err == nil {
		t.Fatal("oversized record accepted at write time")
	}
}

func TestWALRecordRejectsImplausibleLength(t *testing.T) {
	b := binary.BigEndian.AppendUint32(nil, walMaxPayload+1)
	b = binary.BigEndian.AppendUint32(b, 0)
	if _, _, err := decodeWALRecord(b); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

// TestScanWALTornTail writes a valid journal, appends garbage, and checks
// the scan returns the whole-record prefix with the corruption named and
// validEnd at the last good boundary.
func TestScanWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walPrefix+"0"+walSuffix)
	buf := appendWALHeader(nil)
	var err error
	want := []walRecord{
		putRecord(Doc{Name: "a", Format: "sql", Content: "CREATE TABLE A (ID INT);"}),
		putRecord(Doc{Name: "b", Format: "sql", Content: "CREATE TABLE B (ID INT);"}),
		delRecord("a"),
	}
	for _, r := range want {
		if buf, err = appendWALRecord(buf, r); err != nil {
			t.Fatal(err)
		}
	}
	goodEnd := int64(len(buf))
	buf = append(buf, []byte("garbage tail from a torn write")...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, validEnd, corruption, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d: %+v, want %+v", i, recs[i], want[i])
		}
	}
	if validEnd != goodEnd {
		t.Errorf("validEnd %d, want %d", validEnd, goodEnd)
	}
	if corruption == "" {
		t.Error("torn tail not reported")
	}

	bounds, err := WALRecordBoundaries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != len(want)+1 {
		t.Fatalf("%d boundaries, want %d", len(bounds), len(want)+1)
	}
	if bounds[0] != int64(walHeaderSize) || bounds[len(bounds)-1] != goodEnd {
		t.Errorf("boundaries %v: want first %d, last %d", bounds, walHeaderSize, goodEnd)
	}
}

func TestScanWALMissingHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walPrefix+"0"+walSuffix)
	if err := os.WriteFile(path, []byte("CUP"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, validEnd, corruption, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || validEnd != 0 || corruption == "" {
		t.Fatalf("torn header scan: recs=%d validEnd=%d corruption=%q", len(recs), validEnd, corruption)
	}
}

// TestScanWALRefusesForeignOrNewerFiles: a full preamble with the wrong
// magic or a newer version is a hard error, never a truncation point —
// truncating would destroy acknowledged records after a binary
// downgrade.
func TestScanWALRefusesForeignOrNewerFiles(t *testing.T) {
	dir := t.TempDir()
	wrongMagic := filepath.Join(dir, walPrefix+"0"+walSuffix)
	if err := os.WriteFile(wrongMagic, []byte("NOTAWAL!\x00\x00\x00\x01records"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := scanWAL(wrongMagic); err == nil {
		t.Error("foreign magic accepted")
	}
	newer := filepath.Join(dir, walPrefix+"1"+walSuffix)
	hdr := append([]byte(walMagic), 0, 0, 0, walVersion+1)
	if err := os.WriteFile(newer, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := scanWAL(newer); err == nil {
		t.Error("newer journal version accepted")
	}
	// And recovery refuses the whole open rather than truncating.
	st, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Recover(); err == nil {
		t.Fatal("recovery over an unsupported journal version did not refuse")
	}
	if b, err := os.ReadFile(newer); err != nil || len(b) != walHeaderSize {
		t.Errorf("refused journal was modified (len %d, err %v)", len(b), err)
	}
}

// TestOpenWALCreatesPreambleAndAppends drives the walFile primitive
// directly: create, append a batch, reopen, scan it all back.
func TestOpenWALCreatesPreambleAndAppends(t *testing.T) {
	st, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.openWAL(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch := []walRecord{
		putRecord(Doc{Name: "a", Format: "json", Content: `{"name":"a"}`}),
		delRecord("b"),
	}
	if err := w.append(batch); err != nil {
		t.Fatal(err)
	}
	if w.records != 2 || w.syncs != 1 {
		t.Errorf("records=%d syncs=%d after one batched append, want 2/1", w.records, w.syncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(st.walPath(3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, []byte(walMagic)) {
		t.Fatal("journal missing magic preamble")
	}
	recs, _, corruption, err := scanWAL(st.walPath(3))
	if err != nil || corruption != "" {
		t.Fatalf("rescan: err=%v corruption=%q", err, corruption)
	}
	if len(recs) != 2 || recs[0] != batch[0] || recs[1] != batch[1] {
		t.Fatalf("rescan got %+v", recs)
	}
	// Reopen primes size from disk and appends after the existing tail.
	w2, err := st.openWAL(3, len(recs))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.append([]walRecord{delRecord("a")}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	recs, _, _, _ = scanWAL(st.walPath(3))
	if len(recs) != 3 {
		t.Fatalf("after reopen+append: %d records, want 3", len(recs))
	}
}
