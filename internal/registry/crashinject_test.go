package registry

// The crash-injection harness: build a journal from a known mutation
// sequence, then simulate a crash at every record boundary — clean
// truncation, mid-record truncation, and bit corruption — and assert that
// recovery always lands on a consistent prefix of the acknowledged order,
// serving rankings identical to a registry built fresh from that prefix.
// This is the executable form of docs/PERSISTENCE.md's crash matrix.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// crashOp is one mutation in the injected sequence.
type crashOp struct {
	op      string // "put" or "del"
	name    string
	format  string
	content string
}

// crashOps is the journal-building sequence: registrations across two
// formats, a replacement, and a removal, so every record kind appears and
// prefixes differ meaningfully from each other.
func crashOps(t *testing.T) []crashOp {
	t.Helper()
	ops := []crashOp{
		{op: "put", name: "orders", format: "sql", content: storeDDL},
		{op: "put", name: "billing", format: "sql", content: "CREATE TABLE Billing (BillID INT PRIMARY KEY, Total DECIMAL(10,2), Payer VARCHAR(32));"},
		{op: "put", name: "shipping", format: "sql", content: "CREATE TABLE Shipping (ShipID INT PRIMARY KEY, Carrier VARCHAR(24), Weight DECIMAL(8,2));"},
	}
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{Families: 2, PerFamily: 2, Seed: 9})
	for _, s := range corpus {
		b, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, crashOp{op: "put", name: s.Name, format: "json", content: string(b)})
	}
	ops = append(ops,
		// Replace an early registration with different content…
		crashOp{op: "put", name: "billing", format: "sql", content: "CREATE TABLE Billing (BillID INT PRIMARY KEY, Amount DECIMAL(12,2), Currency VARCHAR(3));"},
		// …and remove another, so replay order is observable.
		crashOp{op: "del", name: "shipping"},
	)
	return ops
}

// applyPrefix replays ops[:n] into a fresh in-memory registry — the
// oracle a crashed-and-recovered store is compared against.
func applyPrefix(t *testing.T, m *core.Matcher, ops []crashOp, n int) *Registry {
	t.Helper()
	reg := NewWithMatcher(m)
	for _, op := range ops[:n] {
		switch op.op {
		case "put":
			s, err := storeParse(op.name, op.format, []byte(op.content))
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := reg.Register(op.name, s); err != nil {
				t.Fatal(err)
			}
		case "del":
			reg.Remove(op.name)
		}
	}
	return reg
}

// rankingOf renders a registry's full MatchAll ranking for a fixed probe
// into a comparable, fully precise string (names, scores, every leaf
// pair) — "byte-identical rankings" without depending on JSON field
// order.
func rankingOf(t *testing.T, reg *Registry, m *core.Matcher) string {
	t.Helper()
	probe, err := m.Prepare(workloads.FamilyProbe(1, 77))
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := reg.MatchAll(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, rk := range ranked {
		out += fmt.Sprintf("%s %s %x\n", rk.Entry.Name, rk.Entry.Fingerprint, rk.Score)
		for _, e := range rk.Result.Mapping.Leaves {
			out += fmt.Sprintf("  %s -> %s %x %x %x\n", e.Source.Path(), e.Target.Path(), e.WSim, e.SSim, e.LSim)
		}
	}
	return out
}

// buildCrashDir journals the full op sequence in WAL mode (compaction
// disabled by a huge threshold so every op stays in the tail) and returns
// the data dir and the journal path.
func buildCrashDir(t *testing.T, ops []crashOp) (dir, journal string) {
	t.Helper()
	dir = t.TempDir()
	p := newWAL(t, dir, PersistOptions{CompactBytes: 1 << 40, CompactRecords: 1 << 30})
	for _, op := range ops {
		switch op.op {
		case "put":
			if _, _, err := p.RegisterSource(op.name, op.format, []byte(op.content)); err != nil {
				t.Fatal(err)
			}
		case "del":
			if ok, err := p.Remove(op.name); err != nil || !ok {
				t.Fatalf("remove %s: ok=%v err=%v", op.name, ok, err)
			}
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	wals := walFiles(t, dir)
	if len(wals) != 1 {
		t.Fatalf("want one journal, got %v", wals)
	}
	return dir, wals[0]
}

// copyCrashDir clones a data directory so each injection mutates a fresh
// copy.
func copyCrashDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recoverCrashDir reopens an injected directory and returns the restored
// registry (closed via cleanup).
func recoverCrashDir(t *testing.T, dir string, m *core.Matcher) *Persistent {
	t.Helper()
	p, warns, err := OpenPersistentOptions(dir, m, PersistOptions{WAL: true}, storeParse)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	_ = warns
	return p
}

// assertPrefixState checks the recovered registry equals the oracle for
// prefix n: same entry set, same fingerprints, identical full rankings.
func assertPrefixState(t *testing.T, label string, rec *Persistent, oracle *Registry, oracleRanking string, m *core.Matcher) {
	t.Helper()
	if rec.Len() != oracle.Len() {
		t.Fatalf("%s: recovered %d entries, oracle has %d", label, rec.Len(), oracle.Len())
	}
	for _, e := range oracle.List() {
		got, ok := rec.Get(e.Name)
		if !ok {
			t.Fatalf("%s: entry %q missing after recovery", label, e.Name)
		}
		if got.Fingerprint != e.Fingerprint {
			t.Fatalf("%s: entry %q fingerprint %s, oracle %s", label, e.Name, got.Fingerprint, e.Fingerprint)
		}
	}
	if got := rankingOf(t, rec.Registry, m); got != oracleRanking {
		t.Errorf("%s: recovered rankings differ from the oracle prefix:\n--- recovered\n%s--- oracle\n%s", label, got, oracleRanking)
	}
}

// TestCrashInjectionEveryRecordBoundary is the harness's main sweep:
// truncating the journal exactly at boundary k must recover precisely the
// first k acknowledged mutations, with rankings identical to a registry
// built fresh from that prefix.
func TestCrashInjectionEveryRecordBoundary(t *testing.T) {
	ops := crashOps(t)
	masterDir, _ := buildCrashDir(t, ops)
	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	bounds, err := WALRecordBoundaries(walFiles(t, masterDir)[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != len(ops)+1 {
		t.Fatalf("%d boundaries for %d ops", len(bounds), len(ops))
	}

	for k := 0; k <= len(ops); k++ {
		oracle := applyPrefix(t, m, ops, k)
		oracleRanking := rankingOf(t, oracle, m)

		dir := copyCrashDir(t, masterDir)
		journal := walFiles(t, dir)[0]
		if err := os.Truncate(journal, bounds[k]); err != nil {
			t.Fatal(err)
		}
		rec := recoverCrashDir(t, dir, m)
		assertPrefixState(t, fmt.Sprintf("truncate@record %d", k), rec, oracle, oracleRanking, m)
	}
}

// TestCrashInjectionMidRecordAndCorruption tears the journal *inside*
// each record — a few bytes past every boundary (torn write) and a bit
// flip mid-record (rot) — and asserts recovery truncates back to the
// preceding whole record.
func TestCrashInjectionMidRecordAndCorruption(t *testing.T) {
	ops := crashOps(t)
	masterDir, _ := buildCrashDir(t, ops)
	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := WALRecordBoundaries(walFiles(t, masterDir)[0])
	if err != nil {
		t.Fatal(err)
	}

	for k := 0; k < len(ops); k++ {
		oracle := applyPrefix(t, m, ops, k)
		oracleRanking := rankingOf(t, oracle, m)

		// Torn write: the record after boundary k made it only partially to
		// disk (cut 3 bytes into its frame).
		dir := copyCrashDir(t, masterDir)
		journal := walFiles(t, dir)[0]
		if err := os.Truncate(journal, bounds[k]+3); err != nil {
			t.Fatal(err)
		}
		rec := recoverCrashDir(t, dir, m)
		assertPrefixState(t, fmt.Sprintf("torn@record %d", k), rec, oracle, oracleRanking, m)

		// Bit rot: flip one byte in the middle of record k. Everything from
		// the corrupted record on is the torn tail.
		dir2 := copyCrashDir(t, masterDir)
		journal2 := walFiles(t, dir2)[0]
		b, err := os.ReadFile(journal2)
		if err != nil {
			t.Fatal(err)
		}
		mid := (bounds[k] + bounds[k+1]) / 2
		b[mid] ^= 0x20
		if err := os.WriteFile(journal2, b, 0o644); err != nil {
			t.Fatal(err)
		}
		rec2 := recoverCrashDir(t, dir2, m)
		assertPrefixState(t, fmt.Sprintf("bitflip@record %d", k), rec2, oracle, oracleRanking, m)
	}
}

// TestCrashInjectionMidCompaction simulates the compaction crash cells of
// the matrix: the rotated journal exists but the folding snapshot is
// absent, torn, or complete — recovery must serve the full state in every
// case.
func TestCrashInjectionMidCompaction(t *testing.T) {
	ops := crashOps(t)
	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := applyPrefix(t, m, ops, len(ops))
	oracleRanking := rankingOf(t, oracle, m)

	// Build with compaction forced on every commit, then synthesize the
	// crash states from a copy of the healthy directory.
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{CompactBytes: 1})
	for _, op := range ops {
		switch op.op {
		case "put":
			if _, _, err := p.RegisterSource(op.name, op.format, []byte(op.content)); err != nil {
				t.Fatal(err)
			}
		case "del":
			if _, err := p.Remove(op.name); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash cell: newest snapshot torn mid-write (truncated) — recovery
	// falls back to the prior generation plus both journal tails.
	dirTorn := copyCrashDir(t, dir)
	snaps := snapshotFiles(t, dirTorn)
	newest := snaps[len(snaps)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rec := recoverCrashDir(t, dirTorn, m)
	assertPrefixState(t, "torn newest snapshot", rec, oracle, oracleRanking, m)

	// Crash cell: crash before the rename — the snapshot is only a temp
	// file. Recovery ignores and removes it.
	dirTmp := copyCrashDir(t, dir)
	if err := os.WriteFile(filepath.Join(dirTmp, ".snapshot-12345.tmp"), b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	rec2 := recoverCrashDir(t, dirTmp, m)
	assertPrefixState(t, "snapshot temp leftover", rec2, oracle, oracleRanking, m)
	if tmps, _ := filepath.Glob(filepath.Join(dirTmp, ".snapshot-*.tmp")); len(tmps) != 0 {
		t.Errorf("recovery left snapshot temp files behind: %v", tmps)
	}

	// Crash cell: crash between the snapshot rename and the stale-journal
	// delete — a journal superseded by the newest snapshot is still on
	// disk. Recovery must ignore it (its records are folded in) and clean
	// it up, even when its content disagrees with the snapshot.
	dirStale := copyCrashDir(t, dir)
	staleFrame := appendWALHeader(nil)
	staleFrame, err = appendWALRecord(staleFrame, delRecord("orders"))
	if err != nil {
		t.Fatal(err)
	}
	stalePath := filepath.Join(dirStale, walPrefix+"0"+walSuffix)
	if err := os.WriteFile(stalePath, staleFrame, 0o644); err != nil {
		t.Fatal(err)
	}
	rec3 := recoverCrashDir(t, dirStale, m)
	assertPrefixState(t, "stale journal leftover", rec3, oracle, oracleRanking, m)
	if _, err := os.Stat(stalePath); !os.IsNotExist(err) {
		t.Errorf("stale journal not cleaned up at recovery (stat err %v)", err)
	}
}
