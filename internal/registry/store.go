package registry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Store is the registry's durability layer: versioned JSON-lines snapshot
// generations plus an append-only write-ahead journal, all under one data
// directory. docs/PERSISTENCE.md is the byte-level specification (layout,
// record formats, fsync points, crash matrix), kept honest by a
// conformance test. Each snapshot is a complete, self-validating image of
// the repository:
//
//	{"magic":"cupid-registry","version":1,"seq":3,"count":2}   header
//	{"name":"orders","fingerprint":"…","format":"sql","content":"…"}
//	{"name":"po","fingerprint":"…","format":"json","content":"…"}
//	{"eof":true,"count":2}                                     footer
//
// Snapshots are written to a temp file, fsync'd, and atomically renamed to
// snapshot-<seq>.jsonl (the directory is fsync'd too), so a crash mid-write
// never clobbers the previous image. A journal file wal-<base>.log (see
// wal.go) holds the checksummed, length-prefixed mutation records appended
// after snapshot <base>; Recover restores the newest consistent snapshot,
// replays the ordered journal tail on top of it, and truncates a torn
// tail back to the last whole record. The two most recent snapshot
// generations are retained; older ones — and journals every retained
// generation supersedes — are pruned on each save.
//
// Records persist the schema's original source document (format + raw
// content), not a re-serialization: re-parsing the same bytes is
// deterministic, so a reloaded repository serves bit-identical match
// rankings and fingerprints. Schemas registered from an in-memory graph
// (no source document) fall back to the native JSON serialization, whose
// first round-trip may normalize the fingerprint (refint reconstruction
// reorders element creation); their match behaviour is preserved, and the
// normalized form is stable from then on.
// A store holds an exclusive advisory lock on its data directory for its
// whole lifetime (see lockDataDir): a second process opening the same
// directory is refused instead of corrupting the first one's journal.
// Close releases it.
type Store struct {
	dir   string
	parse ParseFunc
	lock  *os.File
	seq   uint64 // sequence of the most recent snapshot written or seen
}

// ParseFunc turns a persisted source document back into a schema. The
// cupidd server passes the shared multi-format loader (cupid.ParseSchema);
// nil restricts the store to the native "json" format.
type ParseFunc func(name, format string, data []byte) (*model.Schema, error)

// Doc is one persisted repository entry: the registration key plus the
// source document it was parsed from.
type Doc struct {
	// Name is the repository key the schema is registered under.
	Name string `json:"name"`
	// Fingerprint is the schema's content hash (model.Fingerprint),
	// suffixed with the instance-profile hash when Instances is set.
	Fingerprint string `json:"fingerprint"`
	// Format names the source document format (sql, xsd, dtd, json,
	// jsonschema, avro).
	Format string `json:"format"`
	// Content is the original source document, byte for byte.
	Content string `json:"content"`
	// Instances is the optional sampled-instances payload attached at
	// registration (internal/instance JSON form), byte for byte; empty for
	// instance-free registrations (and omitted from the persisted record,
	// keeping the on-disk format backward compatible).
	Instances string `json:"instances,omitempty"`
}

const (
	snapshotMagic   = "cupid-registry"
	snapshotVersion = 1
	snapshotPrefix  = "snapshot-"
	snapshotSuffix  = ".jsonl"
	// snapshotsKept is how many consistent generations stay on disk: the
	// current one plus one fallback for torn-write recovery.
	snapshotsKept = 2
)

// FamiliesDocName and FamiliesDocFormat identify the reserved metadata
// document that carries the corpus clustering (internal/corpus canonical
// JSON) through the ordinary persistence machinery: journaled like any
// put, folded into snapshots, shipped to replication followers — so
// family assignments survive restarts and replicate byte-identically
// without a second durability path. The name is reserved: RegisterSource
// refuses it for ordinary schemas.
const (
	FamiliesDocName   = ".corpus/families"
	FamiliesDocFormat = "corpus-families"
)

// metaDoc reports whether a persisted record is repository metadata
// rather than a schema document: metadata is never parsed as a schema and
// never registered into the entry shards.
func metaDoc(format string) bool { return format == FamiliesDocFormat }

// Sentinel failure kinds loadNewest dispatches on: a version mismatch
// hard-fails the open, a document parse failure skips the generation
// without deleting it; everything else is structural crash damage.
var (
	errSnapshotVersion  = errors.New("unsupported snapshot version")
	errSnapshotDocParse = errors.New("re-parsing")
)

type snapshotHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	Count   int    `json:"count"`
}

type snapshotFooter struct {
	EOF   bool `json:"eof"`
	Count int  `json:"count"`
}

// OpenStore opens (creating if needed) the data directory and scans it for
// existing snapshots.
func OpenStore(dir string, parse ParseFunc) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("registry: store needs a data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating data dir: %w", err)
	}
	if parse == nil {
		parse = func(name, format string, data []byte) (*model.Schema, error) {
			if strings.TrimPrefix(strings.ToLower(strings.TrimSpace(format)), ".") != "json" {
				return nil, fmt.Errorf("registry: store has no parser for format %q (only the native json format without one)", format)
			}
			return model.ReadJSON(bytes.NewReader(data))
		}
	}
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, parse: parse, lock: lock}
	for _, seq := range st.sequences() {
		if seq > st.seq {
			st.seq = seq
		}
	}
	return st, nil
}

// Dir returns the store's data directory.
func (st *Store) Dir() string { return st.dir }

// Close releases the data directory lock; the store must not be used
// afterwards.
func (st *Store) Close() error {
	if st.lock == nil {
		return nil
	}
	err := st.lock.Close()
	st.lock = nil
	return err
}

// sequences lists the snapshot sequence numbers present on disk,
// ascending. Unparseable names are ignored.
func (st *Store) sequences() []uint64 {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

func (st *Store) path(seq uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s%d%s", snapshotPrefix, seq, snapshotSuffix))
}

// Save writes the given docs as the next snapshot generation. It is the
// legacy (snapshot-mode) entry point; the WAL compactor uses SaveAt to
// pin the generation number to the journal base it folds in.
func (st *Store) Save(docs []Doc) error {
	return st.SaveAt(st.seq+1, docs)
}

// SaveAt writes the given docs as snapshot generation seq: temp file,
// fsync, atomic rename, directory fsync, then pruning of snapshot
// generations older than the retained window and of journal files every
// retained generation supersedes. Docs are written sorted by name so
// equal repository states produce byte-identical snapshots. seq must be
// newer than every snapshot already seen.
func (st *Store) SaveAt(seq uint64, docs []Doc) error {
	if seq <= st.seq {
		return fmt.Errorf("registry: snapshot generation %d is not newer than %d", seq, st.seq)
	}
	sorted := append([]Doc(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(snapshotHeader{Magic: snapshotMagic, Version: snapshotVersion, Seq: seq, Count: len(sorted)}); err != nil {
		return fmt.Errorf("registry: encoding snapshot header: %w", err)
	}
	for _, d := range sorted {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("registry: encoding snapshot record %q: %w", d.Name, err)
		}
	}
	if err := enc.Encode(snapshotFooter{EOF: true, Count: len(sorted)}); err != nil {
		return fmt.Errorf("registry: encoding snapshot footer: %w", err)
	}

	tmp, err := os.CreateTemp(st.dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("registry: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, st.path(seq)); err != nil {
		return fmt.Errorf("registry: publishing snapshot: %w", err)
	}
	syncDir(st.dir)
	st.seq = seq

	// Prune snapshot generations beyond the retained window, and journal
	// files whose base predates the oldest retained generation (their
	// records are folded into every snapshot that could still be chosen).
	// Failures are cosmetic.
	seqs := st.sequences()
	for i := 0; i+snapshotsKept < len(seqs); i++ {
		os.Remove(st.path(seqs[i]))
	}
	if kept := st.sequences(); len(kept) > 0 {
		oldest := kept[0]
		for _, base := range st.walSequences() {
			if base < oldest {
				os.Remove(st.walPath(base))
			}
		}
	}
	return nil
}

// Loaded is one restored repository entry: the persisted document plus the
// schema parsed back from it.
type Loaded struct {
	// Doc is the persisted document as read back from disk.
	Doc Doc
	// Schema is the schema re-parsed from Doc's content.
	Schema *model.Schema
}

// loadNewest walks snapshots newest-first and returns the first
// consistent one — header, every record, footer, every document
// re-parseable — together with its sequence number and the sequence
// numbers of every newer generation that is *structurally* broken (torn
// writes, garbage, undecodable records: known crash damage recovery
// should clean up so retention pruning never evicts a good fallback in
// their favor). Two failure kinds are treated differently:
//
//   - an unsupported snapshot version is a hard error — the file was
//     written by a different build (e.g. before a binary downgrade) and
//     neither deleting it nor silently serving an older generation is
//     safe;
//   - a document that fails to re-parse marks the snapshot skipped (the
//     schema set may simply exceed this store's parse function) but
//     never deleted — the bytes are intact and a correctly configured
//     reopen can still read them.
//
// It ignores the write-ahead journal; Recover is the only recovery entry
// point (snapshot + ordered tail replay).
func (st *Store) loadNewest() (docs []Loaded, seq uint64, warnings []string, bad []uint64, err error) {
	seqs := st.sequences()
	for i := len(seqs) - 1; i >= 0; i-- {
		loaded, lerr := st.loadSnapshot(seqs[i])
		switch {
		case lerr == nil:
			return loaded, seqs[i], warnings, bad, nil
		case errors.Is(lerr, errSnapshotVersion):
			return nil, 0, warnings, bad, fmt.Errorf("registry: snapshot %d: %w; refusing to open rather than discard it", seqs[i], lerr)
		case errors.Is(lerr, errSnapshotDocParse):
			warnings = append(warnings, fmt.Sprintf("snapshot %d skipped (kept on disk): %v", seqs[i], lerr))
		default:
			warnings = append(warnings, fmt.Sprintf("snapshot %d unusable: %v", seqs[i], lerr))
			bad = append(bad, seqs[i])
		}
	}
	return nil, 0, warnings, bad, nil
}

// Recovery is the outcome of a Store.Recover call: the repository state a
// restart serves, plus where the write-ahead journal left off so the
// group-commit loop can keep appending.
type Recovery struct {
	// Docs is the restored repository, sorted by name: the newest
	// consistent snapshot with the ordered journal tail replayed on top.
	Docs []Loaded
	// Warnings records everything recovery had to skip, truncate or
	// delete: torn snapshots, torn journal tails, stale files.
	Warnings []string
	// SnapshotSeq is the chosen snapshot generation (0 when the directory
	// held no usable snapshot).
	SnapshotSeq uint64
	// WALBase is the journal base generation appends should continue on;
	// openWAL(WALBase, WALRecords) resumes exactly where recovery left
	// off, creating the file if none survived.
	WALBase uint64
	// WALRecords is the number of valid records already in that journal.
	WALRecords int
	// WALBytes is that journal's valid size in bytes (the file is
	// truncated to this length when a torn tail was cut).
	WALBytes int64
}

// Recover restores the repository: newest consistent snapshot + ordered
// journal tail replay. Its cleanup makes the on-disk state match the
// state it returns —
//
//   - snapshots newer than the chosen one (necessarily torn) are deleted,
//     so retention pruning can never evict the good fallback in favor of
//     a known-bad file;
//   - journal files whose base predates the chosen snapshot are deleted
//     (each of their records is already folded into it);
//   - the journal tail is truncated back to the last whole, checksummed
//     record, and journals beyond a mid-sequence tear are deleted — replay
//     always lands on a consistent, contiguous prefix of the acknowledged
//     mutation order;
//   - leftover snapshot temp files (a crash mid-compaction, before the
//     atomic rename) are removed.
//
// Replay applies put/del records in append order (last writer wins) and
// re-parses each surviving document, so the recovered repository serves
// bit-identical rankings (asserted by the crash-injection suite).
func (st *Store) Recover() (*Recovery, error) {
	docs, snapSeq, warnings, bad, err := st.loadNewest()
	if err != nil {
		return nil, err
	}
	for _, seq := range bad {
		if rmErr := os.Remove(st.path(seq)); rmErr == nil {
			warnings = append(warnings, fmt.Sprintf("deleted unusable snapshot %d", seq))
		}
	}
	if tmps, _ := filepath.Glob(filepath.Join(st.dir, ".snapshot-*.tmp")); len(tmps) > 0 {
		for _, tmp := range tmps {
			os.Remove(tmp)
		}
		warnings = append(warnings, fmt.Sprintf("removed %d leftover snapshot temp file(s)", len(tmps)))
	}
	st.seq = snapSeq
	for _, s := range st.sequences() {
		if s > st.seq {
			st.seq = s
		}
	}

	state := make(map[string]Doc, len(docs))
	// parsed carries the schemas loadSnapshot already validated; a journal
	// put invalidates its name (the replayed document must be re-parsed).
	parsed := make(map[string]*model.Schema, len(docs))
	for _, l := range docs {
		state[l.Doc.Name] = l.Doc
		parsed[l.Doc.Name] = l.Schema
	}

	rec := &Recovery{SnapshotSeq: snapSeq, WALBase: snapSeq}
	bases := st.walSequences()
	torn := false
	for _, base := range bases {
		if base < snapSeq {
			// Superseded: every record is folded into the chosen snapshot.
			if rmErr := os.Remove(st.walPath(base)); rmErr == nil {
				warnings = append(warnings, fmt.Sprintf("deleted stale journal wal-%d (superseded by snapshot %d)", base, snapSeq))
			}
			continue
		}
		if torn {
			// A tear in an earlier journal ends the consistent prefix; a
			// later journal's records must not leapfrog the gap.
			os.Remove(st.walPath(base))
			warnings = append(warnings, fmt.Sprintf("deleted journal wal-%d beyond a torn predecessor", base))
			continue
		}
		recs, validEnd, corruption, serr := scanWAL(st.walPath(base))
		if serr != nil {
			return nil, fmt.Errorf("registry: scanning journal wal-%d: %w", base, serr)
		}
		for _, r := range recs {
			switch r.Op {
			case walOpPut:
				state[r.Name] = r.doc()
				delete(parsed, r.Name)
			case walOpDel:
				delete(state, r.Name)
				delete(parsed, r.Name)
			}
		}
		if corruption != "" {
			torn = true
			if err := os.Truncate(st.walPath(base), validEnd); err != nil {
				return nil, fmt.Errorf("registry: truncating torn journal tail: %w", err)
			}
			warnings = append(warnings, fmt.Sprintf("journal wal-%d: torn tail truncated to %d whole record(s) (%s)", base, len(recs), corruption))
		}
		rec.WALBase = base
		rec.WALRecords = len(recs)
		rec.WALBytes = validEnd
	}

	// Parse the surviving state. A document that fails to re-parse is a
	// defect the checksums cannot catch (it was journaled as-is); recovery
	// surfaces it as an error rather than silently dropping an
	// acknowledged registration.
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	sort.Strings(names)
	rec.Docs = make([]Loaded, 0, len(names))
	for _, name := range names {
		d := state[name]
		if metaDoc(d.Format) {
			// Metadata replays like any other record (last writer wins) but
			// is never parsed as a schema; the opener installs it.
			rec.Docs = append(rec.Docs, Loaded{Doc: d})
			continue
		}
		s, ok := parsed[name]
		if !ok {
			var perr error
			if s, perr = st.parse(d.Name, d.Format, []byte(d.Content)); perr != nil {
				return nil, fmt.Errorf("registry: re-parsing %q during recovery: %w", name, perr)
			}
		}
		rec.Docs = append(rec.Docs, Loaded{Doc: d, Schema: s})
	}
	rec.Warnings = warnings
	return rec, nil
}

// loadSnapshot reads and fully validates one snapshot generation.
func (st *Store) loadSnapshot(seq uint64) ([]Loaded, error) {
	f, err := os.Open(st.path(seq))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("empty snapshot")
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("decoding header: %w", err)
	}
	if hdr.Magic != snapshotMagic {
		return nil, fmt.Errorf("bad magic %q", hdr.Magic)
	}
	if hdr.Version != snapshotVersion {
		return nil, fmt.Errorf("%w %d (this build reads %d)", errSnapshotVersion, hdr.Version, snapshotVersion)
	}
	out := make([]Loaded, 0, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("torn snapshot: %d of %d records", i, hdr.Count)
		}
		var d Doc
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return nil, fmt.Errorf("decoding record %d: %w", i, err)
		}
		if metaDoc(d.Format) {
			// Repository metadata (the corpus clustering) is carried, not
			// parsed: the opener validates and installs it separately.
			out = append(out, Loaded{Doc: d})
			continue
		}
		s, err := st.parse(d.Name, d.Format, []byte(d.Content))
		if err != nil {
			return nil, fmt.Errorf("%w %q: %v", errSnapshotDocParse, d.Name, err)
		}
		out = append(out, Loaded{Doc: d, Schema: s})
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("torn snapshot: missing footer")
	}
	var ftr snapshotFooter
	if err := json.Unmarshal(sc.Bytes(), &ftr); err != nil {
		return nil, fmt.Errorf("decoding footer: %w", err)
	}
	if !ftr.EOF || ftr.Count != hdr.Count {
		return nil, fmt.Errorf("inconsistent footer (eof=%v count=%d, header count=%d)", ftr.EOF, ftr.Count, hdr.Count)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
