package registry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Store is the registry's durability layer: a versioned JSON-lines
// snapshot store under one data directory. Each snapshot is a complete,
// self-validating image of the repository:
//
//	{"magic":"cupid-registry","version":1,"seq":3,"count":2}   header
//	{"name":"orders","fingerprint":"…","format":"sql","content":"…"}
//	{"name":"po","fingerprint":"…","format":"json","content":"…"}
//	{"eof":true,"count":2}                                     footer
//
// Snapshots are written to a temp file, fsync'd, and atomically renamed to
// snapshot-<seq>.jsonl (the directory is fsync'd too), so a crash mid-write
// never clobbers the previous image. Load walks snapshots newest-first and
// returns the first consistent one — header and footer intact, every record
// decodable, every schema parseable — which makes recovery after a torn or
// corrupted snapshot automatic. The two most recent snapshots are retained;
// older ones are pruned on each Save.
//
// Records persist the schema's original source document (format + raw
// content), not a re-serialization: re-parsing the same bytes is
// deterministic, so a reloaded repository serves bit-identical match
// rankings and fingerprints. Schemas registered from an in-memory graph
// (no source document) fall back to the native JSON serialization, whose
// first round-trip may normalize the fingerprint (refint reconstruction
// reorders element creation); their match behaviour is preserved, and the
// normalized form is stable from then on.
type Store struct {
	dir   string
	parse ParseFunc
	seq   uint64 // sequence of the most recent snapshot written or seen
}

// ParseFunc turns a persisted source document back into a schema. The
// cupidd server passes the shared multi-format loader (cupid.ParseSchema);
// nil restricts the store to the native "json" format.
type ParseFunc func(name, format string, data []byte) (*model.Schema, error)

// Doc is one persisted repository entry: the registration key plus the
// source document it was parsed from.
type Doc struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Format      string `json:"format"`
	Content     string `json:"content"`
}

const (
	snapshotMagic   = "cupid-registry"
	snapshotVersion = 1
	snapshotPrefix  = "snapshot-"
	snapshotSuffix  = ".jsonl"
	// snapshotsKept is how many consistent generations stay on disk: the
	// current one plus one fallback for torn-write recovery.
	snapshotsKept = 2
)

type snapshotHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	Count   int    `json:"count"`
}

type snapshotFooter struct {
	EOF   bool `json:"eof"`
	Count int  `json:"count"`
}

// OpenStore opens (creating if needed) the data directory and scans it for
// existing snapshots.
func OpenStore(dir string, parse ParseFunc) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("registry: store needs a data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating data dir: %w", err)
	}
	if parse == nil {
		parse = func(name, format string, data []byte) (*model.Schema, error) {
			if strings.TrimPrefix(strings.ToLower(strings.TrimSpace(format)), ".") != "json" {
				return nil, fmt.Errorf("registry: store has no parser for format %q (only the native json format without one)", format)
			}
			return model.ReadJSON(bytes.NewReader(data))
		}
	}
	st := &Store{dir: dir, parse: parse}
	for _, seq := range st.sequences() {
		if seq > st.seq {
			st.seq = seq
		}
	}
	return st, nil
}

// Dir returns the store's data directory.
func (st *Store) Dir() string { return st.dir }

// sequences lists the snapshot sequence numbers present on disk,
// ascending. Unparseable names are ignored.
func (st *Store) sequences() []uint64 {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

func (st *Store) path(seq uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s%d%s", snapshotPrefix, seq, snapshotSuffix))
}

// Save writes the given docs as the next snapshot generation: temp file,
// fsync, atomic rename, directory fsync, then pruning of generations older
// than the retained window. Docs are written sorted by name so equal
// repository states produce byte-identical snapshots.
func (st *Store) Save(docs []Doc) error {
	sorted := append([]Doc(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(snapshotHeader{Magic: snapshotMagic, Version: snapshotVersion, Seq: st.seq + 1, Count: len(sorted)}); err != nil {
		return fmt.Errorf("registry: encoding snapshot header: %w", err)
	}
	for _, d := range sorted {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("registry: encoding snapshot record %q: %w", d.Name, err)
		}
	}
	if err := enc.Encode(snapshotFooter{EOF: true, Count: len(sorted)}); err != nil {
		return fmt.Errorf("registry: encoding snapshot footer: %w", err)
	}

	tmp, err := os.CreateTemp(st.dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("registry: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: closing snapshot: %w", err)
	}
	next := st.seq + 1
	if err := os.Rename(tmpName, st.path(next)); err != nil {
		return fmt.Errorf("registry: publishing snapshot: %w", err)
	}
	if d, err := os.Open(st.dir); err == nil {
		d.Sync()
		d.Close()
	}
	st.seq = next

	// Prune generations beyond the retained window; failures are cosmetic.
	seqs := st.sequences()
	for i := 0; i+snapshotsKept < len(seqs); i++ {
		os.Remove(st.path(seqs[i]))
	}
	return nil
}

// Loaded is one restored repository entry: the persisted document plus the
// schema parsed back from it.
type Loaded struct {
	Doc    Doc
	Schema *model.Schema
}

// Load restores the newest consistent snapshot, or (nil, nil) when the
// directory holds no usable snapshot (a fresh store). Inconsistent
// snapshots — torn writes, corrupted records, unparseable schemas — are
// skipped with their reason recorded in the returned warnings, falling
// back to the previous generation.
func (st *Store) Load() (docs []Loaded, warnings []string, err error) {
	seqs := st.sequences()
	for i := len(seqs) - 1; i >= 0; i-- {
		loaded, err := st.loadSnapshot(seqs[i])
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("snapshot %d unusable: %v", seqs[i], err))
			continue
		}
		return loaded, warnings, nil
	}
	return nil, warnings, nil
}

// loadSnapshot reads and fully validates one snapshot generation.
func (st *Store) loadSnapshot(seq uint64) ([]Loaded, error) {
	f, err := os.Open(st.path(seq))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("empty snapshot")
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("decoding header: %w", err)
	}
	if hdr.Magic != snapshotMagic {
		return nil, fmt.Errorf("bad magic %q", hdr.Magic)
	}
	if hdr.Version != snapshotVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d", hdr.Version)
	}
	out := make([]Loaded, 0, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("torn snapshot: %d of %d records", i, hdr.Count)
		}
		var d Doc
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return nil, fmt.Errorf("decoding record %d: %w", i, err)
		}
		s, err := st.parse(d.Name, d.Format, []byte(d.Content))
		if err != nil {
			return nil, fmt.Errorf("re-parsing %q: %w", d.Name, err)
		}
		out = append(out, Loaded{Doc: d, Schema: s})
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("torn snapshot: missing footer")
	}
	var ftr snapshotFooter
	if err := json.Unmarshal(sc.Bytes(), &ftr); err != nil {
		return nil, fmt.Errorf("decoding footer: %w", err)
	}
	if !ftr.EOF || ftr.Count != hdr.Count {
		return nil, fmt.Errorf("inconsistent footer (eof=%v count=%d, header count=%d)", ftr.EOF, ftr.Count, hdr.Count)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
