package registry

// Property tests for corpus-scale schema families: clustering determinism
// across registration interleavings, persistence and staleness of the
// installed view, the family retrieval route's agreement with the flat
// indexed path, and the reserved metadata document's lifecycle.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/model"
	"repro/internal/workloads"
)

// familyTestCorpus returns a deterministic FamilyCorpus of n schemas.
func familyTestCorpus(n int) []*model.Schema {
	perFam := (n + workloads.NumFamilies() - 1) / workloads.NumFamilies()
	return workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: perFam, Seed: 17})[:n]
}

// clusterOver registers docs into a fresh registry (in the given order)
// and returns the clustering's canonical bytes.
func clusterOver(t *testing.T, docs []*model.Schema) []byte {
	t.Helper()
	r := newTestRegistry(t)
	for _, s := range docs {
		if _, _, err := r.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.ClusterFamilies(corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestClusterFamiliesDeterministicAcrossInterleavings is the tentpole
// determinism property: the clustering's canonical bytes depend only on
// the surviving entry set — not on registration order, not on removals
// and re-registrations along the way (index rebuild paths), not on which
// shard an entry hashed to first.
func TestClusterFamiliesDeterministicAcrossInterleavings(t *testing.T) {
	docs := familyTestCorpus(120)
	want := clusterOver(t, docs)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		shuffled := append([]*model.Schema(nil), docs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := clusterOver(t, shuffled); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: clustering differs under registration order", trial)
		}
	}

	// Churn: register everything, remove a third, re-register it — the
	// incrementally maintained index must cluster like a fresh build.
	r := newTestRegistry(t)
	for _, s := range docs {
		if _, _, err := r.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range docs {
		if i%3 == 0 && !r.Remove(s.Name) {
			t.Fatalf("removing %s", s.Name)
		}
	}
	for i, s := range docs {
		if i%3 == 0 {
			if _, _, err := r.Register(s.Name, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := r.ClusterFamilies(corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("clustering after remove/re-register churn differs from a fresh build")
	}
}

// TestFamilyRouteWithinIndexedTopK: the family route may match far fewer
// entries, but everything it returns must be something the flat indexed
// path also ranks in its top-K — family routing narrows the candidate
// set, it must never surface a result the indexed path would not. The
// corpus sits above familyAutoMinCorpus: the regime family routing is
// built for (and the only one the planner auto-selects it in).
func TestFamilyRouteWithinIndexedTopK(t *testing.T) {
	const topK = 10
	docs := familyTestCorpus(2000)
	r := newTestRegistry(t)
	for _, s := range docs {
		if _, _, err := r.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.ClusterFamilies(corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetFamilies(res); err != nil {
		t.Fatal(err)
	}
	opt := DefaultPlanOptions()
	opt.Force = StrategyFamily
	for fam := 0; fam < workloads.NumFamilies(); fam++ {
		probe, err := r.Matcher().Prepare(workloads.FamilyProbe(fam, 4321))
		if err != nil {
			t.Fatal(err)
		}
		famRanked, st, err := r.Match(probe, topK, opt)
		if err != nil {
			t.Fatal(err)
		}
		if st.Strategy != StrategyFamily || st.FamilyFallback {
			t.Fatalf("probe %d: strategy %v fallback %v, want a routed family match", fam, st.Strategy, st.FamilyFallback)
		}
		indexed, _, err := r.MatchIndexed(probe, topK, DefaultIndexOptions())
		if err != nil {
			t.Fatal(err)
		}
		inIndexed := make(map[string]bool, len(indexed))
		for _, rk := range indexed {
			inIndexed[rk.Entry.Name] = true
		}
		for i, rk := range famRanked {
			if !inIndexed[rk.Entry.Name] {
				t.Errorf("probe %d: family result %d (%s) is outside the flat indexed top-%d",
					fam, i, rk.Entry.Name, topK)
			}
		}
	}
}

// TestFamiliesStalenessAndFallback: the planner stops trusting an
// installed clustering once the corpus has mutated past the tolerance,
// and a forced family match then falls back to the indexed path (flagged
// in the stats) instead of serving stale routing.
func TestFamiliesStalenessAndFallback(t *testing.T) {
	docs := familyTestCorpus(64)
	r := newTestRegistry(t)
	for _, s := range docs {
		if _, _, err := r.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.ClusterFamilies(corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetFamilies(res); err != nil {
		t.Fatal(err)
	}
	if !r.FamiliesFresh() {
		t.Fatal("freshly installed clustering reports stale")
	}

	// Mutate past the tolerance (max(16, 64/8) = 16 mutations).
	extra := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: 2, Seed: 23})
	for i, s := range extra {
		if i >= 17 {
			break
		}
		if _, _, err := r.Register("staleness-"+s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	if r.FamiliesFresh() {
		t.Fatal("clustering still fresh after mutating past the tolerance")
	}

	probe, err := r.Matcher().Prepare(workloads.FamilyProbe(1, 4321))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultPlanOptions()
	opt.Force = StrategyFamily
	ranked, st, err := r.Match(probe, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FamilyFallback {
		t.Fatalf("stale clustering did not fall back (stats %+v)", st)
	}
	indexed, _, err := r.MatchIndexed(probe, 5, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, indexed, ranked)

	// Re-clustering restores the route.
	res, err = r.ClusterFamilies(corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetFamilies(res); err != nil {
		t.Fatal(err)
	}
	if !r.FamiliesFresh() {
		t.Fatal("re-clustering did not restore freshness")
	}
}

// TestFamiliesPersistAcrossRestartByteIdentical: StoreFamilies journals
// the canonical clustering bytes through the WAL; a reopened node serves
// exactly those bytes, and removing the reserved document clears the
// clustering durably.
func TestFamiliesPersistAcrossRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{WAL: true})
	for _, s := range familyTestCorpus(120) {
		if _, _, err := p.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.ClusterFamilies(corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreFamilies(res); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), p.FamiliesJSON()...)
	if len(want) == 0 {
		t.Fatal("no canonical bytes after StoreFamilies")
	}
	if !p.FamiliesFresh() {
		t.Fatal("clustering not routable right after StoreFamilies")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := newWAL(t, dir, PersistOptions{WAL: true})
	if got := p2.FamiliesJSON(); !bytes.Equal(got, want) {
		t.Fatalf("restarted node serves different clustering bytes:\n%s\nvs\n%s", got, want)
	}
	if !p2.FamiliesFresh() {
		t.Fatal("recovered clustering reports stale immediately after restart")
	}

	// Removing the reserved document clears the clustering and survives
	// another restart.
	if existed, err := p2.Remove(FamiliesDocName); err != nil || !existed {
		t.Fatalf("removing families doc: existed=%v err=%v", existed, err)
	}
	if p2.FamiliesJSON() != nil {
		t.Fatal("clustering still installed after removing the reserved document")
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	p3 := newWAL(t, dir, PersistOptions{WAL: true})
	defer p3.Close()
	if p3.FamiliesJSON() != nil {
		t.Fatal("removed clustering came back after restart")
	}
}

// TestFamiliesDocNameReserved: the reserved metadata document name and
// format are rejected as ordinary registrations on every path.
func TestFamiliesDocNameReserved(t *testing.T) {
	dir := t.TempDir()
	p := newWAL(t, dir, PersistOptions{WAL: true})
	defer p.Close()
	if _, _, err := p.RegisterSource(FamiliesDocName, "json", []byte(`{}`)); err == nil {
		t.Error("RegisterSource accepted the reserved families document name")
	}
	if _, _, err := p.RegisterSource("innocent", FamiliesDocFormat, []byte(`{}`)); err == nil {
		t.Error("RegisterSource accepted the reserved families document format")
	}
}
