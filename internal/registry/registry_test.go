package registry

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/workloads"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// repoSchemas returns a deterministic set of distinct repository schemas.
func repoSchemas(n int) []*model.Schema {
	out := make([]*model.Schema, 0, n)
	for i := 0; i < n; i++ {
		w := workloads.Synthetic(workloads.SyntheticSpec{
			Tables: 2, ColsPerTable: 4, Depth: 2, Seed: int64(i + 1), Rename: 0.4, Renest: 0.3,
		})
		s := w.Target
		s.Name = s.Name + string(rune('A'+i%26))
		out = append(out, s)
	}
	return out
}

func TestRegisterIdempotentAndReplace(t *testing.T) {
	r := newTestRegistry(t)
	w := workloads.Figure2()

	e1, created, err := r.Register("po", w.Source)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first registration reported created=false")
	}
	e2, created, err := r.Register("po", w.Source)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Error("idempotent re-registration reported created=true")
	}
	if e1 != e2 {
		t.Error("re-registering identical content did not return the existing entry")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}

	// Different content under the same name replaces the entry.
	e3, created, err := r.Register("po", w.Target)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("replacement registration reported created=false")
	}
	if e3 == e1 || e3.Fingerprint == e1.Fingerprint {
		t.Error("changed content did not replace the entry")
	}
	if r.Len() != 1 {
		t.Fatalf("Len after replace = %d, want 1", r.Len())
	}
	got, ok := r.Get("po")
	if !ok || got != e3 {
		t.Error("Get does not return the replacing entry")
	}

	// Default name comes from the schema.
	e4, _, err := r.Register("", w.Source)
	if err != nil {
		t.Fatal(err)
	}
	if e4.Name != w.Source.Name {
		t.Errorf("default name = %q, want %q", e4.Name, w.Source.Name)
	}

	if !r.Remove("po") {
		t.Error("Remove of existing entry returned false")
	}
	if r.Remove("po") {
		t.Error("Remove of missing entry returned true")
	}
	if _, _, err := r.Register("anon", model.New("")); err != nil {
		t.Errorf("explicit name with a nameless schema rejected: %v", err)
	}
	if _, _, err := r.Register("", model.New("")); err == nil {
		t.Error("registration with no name at all accepted")
	}
	if _, _, err := r.Register("nil", nil); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestListSorted(t *testing.T) {
	r := newTestRegistry(t)
	for _, s := range repoSchemas(5) {
		if _, _, err := r.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	list := r.List()
	if len(list) != 5 {
		t.Fatalf("List length %d, want 5", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name >= list[i].Name {
			t.Fatalf("List not sorted: %q before %q", list[i-1].Name, list[i].Name)
		}
	}
}

func matchAllWorkers(t *testing.T, r *Registry, src *model.Schema, workers, topK int) []Ranked {
	t.Helper()
	prev := par.SetMaxWorkers(workers)
	defer par.SetMaxWorkers(prev)
	ranked, err := r.MatchAllSchema(src, topK)
	if err != nil {
		t.Fatal(err)
	}
	return ranked
}

// TestMatchAllDeterministic: the ranking must be identical with one worker
// and many (run with -race; the ISSUE acceptance criterion).
func TestMatchAllDeterministic(t *testing.T) {
	r := newTestRegistry(t)
	for _, s := range repoSchemas(8) {
		if _, _, err := r.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	probe := workloads.Synthetic(workloads.SyntheticSpec{
		Tables: 2, ColsPerTable: 4, Depth: 2, Seed: 3, Rename: 0.4, Renest: 0.3,
	}).Source

	seq := matchAllWorkers(t, r, probe, 1, 0)
	par8 := matchAllWorkers(t, r, probe, 8, 0)
	if len(seq) != 8 || len(par8) != 8 {
		t.Fatalf("rankings cover %d/%d entries, want 8", len(seq), len(par8))
	}
	for i := range seq {
		if seq[i].Entry.Name != par8[i].Entry.Name || seq[i].Score != par8[i].Score {
			t.Fatalf("rank %d differs: seq %s %.6f vs par %s %.6f",
				i, seq[i].Entry.Name, seq[i].Score, par8[i].Entry.Name, par8[i].Score)
		}
		if !seq[i].Result.WSim.Equal(par8[i].Result.WSim) {
			t.Fatalf("rank %d: wsim differs between worker counts", i)
		}
	}
	for i := 1; i < len(seq); i++ {
		if seq[i-1].Score < seq[i].Score {
			t.Fatalf("ranking not descending at %d: %.6f < %.6f", i, seq[i-1].Score, seq[i].Score)
		}
	}

	top3 := matchAllWorkers(t, r, probe, 8, 3)
	if len(top3) != 3 {
		t.Fatalf("topK=3 returned %d results", len(top3))
	}
	for i := range top3 {
		if top3[i].Entry.Name != seq[i].Entry.Name {
			t.Fatalf("topK ranking diverges at %d", i)
		}
	}
}

// TestConcurrentRegisterAndMatchAll hammers the registry from concurrent
// registrars and matchers (run with -race). In-flight MatchAll calls work
// on snapshots, so every call must succeed and return a consistent,
// descending ranking.
func TestConcurrentRegisterAndMatchAll(t *testing.T) {
	r := newTestRegistry(t)
	schemas := repoSchemas(6)
	for _, s := range schemas[:2] {
		if _, _, err := r.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	probe := workloads.Figure2().Source

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for _, s := range schemas[2:] {
		wg.Add(1)
		go func(s *model.Schema) {
			defer wg.Done()
			if _, _, err := r.Register(s.Name, s); err != nil {
				errCh <- err
			}
		}(s)
	}
	// Prepared once on the test goroutine (t.Fatal must not run in the
	// workers) and shared — exercising concurrent artifact reuse too.
	prepared := mustPrepare(t, r, probe)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ranked, err := r.MatchAll(prepared, 0)
			if err != nil {
				errCh <- err
				return
			}
			for i := 1; i < len(ranked); i++ {
				if ranked[i-1].Score < ranked[i].Score {
					errCh <- errNotSorted
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if r.Len() != 6 {
		t.Fatalf("Len = %d after concurrent registration, want 6", r.Len())
	}
}

var errNotSorted = &notSortedError{}

type notSortedError struct{}

func (*notSortedError) Error() string { return "registry: MatchAll ranking not descending" }

func mustPrepare(t *testing.T, r *Registry, s *model.Schema) *core.Prepared {
	t.Helper()
	p, err := r.Matcher().Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMatchAllForeignPreparedRejected(t *testing.T) {
	r := newTestRegistry(t)
	w := workloads.Figure2()
	if _, _, err := r.Register("po", w.Target); err != nil {
		t.Fatal(err)
	}
	other, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.Prepare(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.MatchAll(foreign, 0); err == nil {
		t.Error("MatchAll accepted a Prepared from a foreign matcher")
	}
}

func TestScoreEmptyMapping(t *testing.T) {
	r := newTestRegistry(t)
	// Two schemas with nothing in common: score must be 0 and MatchAll
	// must still rank them without error.
	a := model.New("Alpha")
	model.PreOrder(a.Root(), func(*model.Element) {})
	a.AddChild(a.Root(), "Zebra", model.KindElement).Type = model.DTBinary
	b := model.New("QQQ")
	b.AddChild(b.Root(), "Wombat", model.KindElement).Type = model.DTDate
	if _, _, err := r.Register("b", b); err != nil {
		t.Fatal(err)
	}
	ranked, err := r.MatchAllSchema(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 1 {
		t.Fatalf("ranked %d entries, want 1", len(ranked))
	}
	if ranked[0].Score < 0 || ranked[0].Score > 1 {
		t.Errorf("score %v out of [0,1]", ranked[0].Score)
	}
}
