package registry

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// The retrieval planner: one entry point (Match/MatchContext) in front of
// the repository's three retrieval strategies — the exhaustive scan, the
// linear signature-pruned scan, and the inverted-index path — choosing
// per probe from cheap statistics the index already maintains
// (index.ProbeStats: corpus size, per-token posting-list lengths, stop
// -token density), plus a candidate budget sized to the probe's actual
// reachable pool instead of a fixed fraction of the corpus. Planning is
// O(probe tokens) and allocation-free; the decision and its inputs are
// recorded in the returned RetrievalStats, so every ranking is
// self-describing. The legacy entry points (MatchAll, MatchTop,
// MatchIndexed) remain as thin forced-plan wrappers and behave
// bit-identically to their pre-planner selves.

// Strategy identifies one retrieval path through the repository.
type Strategy uint8

const (
	// StrategyAuto lets the planner choose a strategy from per-probe
	// statistics (the zero value: unconfigured callers get planning).
	StrategyAuto Strategy = iota
	// StrategyExact is the exhaustive full scan (MatchAll): every entry
	// pays the full tree match.
	StrategyExact
	// StrategyPruned is the linear signature-pruned scan (MatchTop): an
	// affinity against every entry, full match on the top candidates.
	StrategyPruned
	// StrategyIndexed is the inverted-index path (MatchIndexed): only
	// token-sharing entries are touched at all.
	StrategyIndexed
	// StrategyFamily is the corpus-clustered route (families.go): the
	// probe is tree-matched against the K family medoids first, then
	// full-matched only within the winning family. Requires an installed,
	// fresh clustering (Registry.SetFamilies); execution falls back to the
	// indexed path otherwise, flagged FamilyFallback in the stats.
	StrategyFamily
)

// String returns the strategy's wire name (the value cupidd's -retrieval
// flag parses and /match/batch reports).
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyExact:
		return "exact"
	case StrategyPruned:
		return "pruned"
	case StrategyIndexed:
		return "indexed"
	case StrategyFamily:
		return "family"
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// ParseStrategy parses a -retrieval flag value: auto, exact, pruned,
// family, or index (indexed is accepted as a synonym).
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "auto":
		return StrategyAuto, nil
	case "exact":
		return StrategyExact, nil
	case "pruned":
		return StrategyPruned, nil
	case "index", "indexed":
		return StrategyIndexed, nil
	case "family":
		return StrategyFamily, nil
	}
	return StrategyAuto, fmt.Errorf("unknown retrieval strategy %q (want auto, index, pruned, family or exact)", s)
}

// PlanOptions configures one planned match: which strategy to run (or
// StrategyAuto to let the statistics decide), the per-path candidate
// budget policies, and whether the serving layer wants budgets halved to
// shed load. The zero value plans automatically under full-scan budgets;
// DefaultPlanOptions supplies the tuned per-path defaults.
type PlanOptions struct {
	// Force pins the strategy instead of planning: StrategyExact,
	// StrategyPruned and StrategyIndexed reproduce the legacy MatchAll,
	// MatchTop and MatchIndexed behavior exactly (budgets derived from
	// the corpus size at execution, identical fallbacks). StrategyAuto —
	// the zero value — plans from per-probe statistics.
	Force Strategy
	// Prune sizes the pruned path's candidate budget (PruneOptions.Limit).
	Prune PruneOptions
	// Index sizes the indexed path's candidate budget.
	Index PruneOptions
	// Degraded halves both budget policies before planning or execution
	// (PruneOptions.Halve — exactly the serving layer's load-shedding
	// shrink), and marks the resulting stats Degraded unless the exact
	// path ran (a full scan has no budget to shrink).
	Degraded bool
}

// DefaultPlanOptions plans automatically under the default per-path
// budget policies (DefaultPruneOptions, DefaultIndexOptions).
func DefaultPlanOptions() PlanOptions {
	return PlanOptions{Prune: DefaultPruneOptions(), Index: DefaultIndexOptions()}
}

// Halve shrinks a candidate budget policy for degraded (load-shedding)
// operation: half the fraction, half the floor. A full-scan config
// (Fraction outside (0,1] means "everything") is left alone — there is
// no budget to shrink.
func (o PruneOptions) Halve() PruneOptions {
	if o.Fraction <= 0 || o.Fraction > 1 {
		return o
	}
	o.Fraction /= 2
	if o.MinCandidates > 1 {
		o.MinCandidates /= 2
	}
	return o
}

// Plan is one retrieval decision: the strategy that will run, the
// candidate budget it will run under, and — when the planner chose —
// the statistics it chose from. Forced plans (Planned=false) carry
// Budget=0: the executor derives the budget from the corpus size at
// execution time, exactly like the legacy entry points did.
type Plan struct {
	// Strategy is the path that will run (never StrategyAuto).
	Strategy Strategy
	// Planned reports the strategy was chosen from statistics rather than
	// forced by the caller.
	Planned bool
	// Degraded reports the budgets were halved to shed load (never set
	// with StrategyExact — a full scan has no budget).
	Degraded bool
	// Budget is the resolved candidate budget for planned runs (the
	// number of entries allowed through to the full tree match; for
	// StrategyExact it is the corpus size). Zero on forced plans, whose
	// budget the executor re-derives at execution time.
	Budget int
	// Prune is the (possibly halved) pruned-path budget policy.
	Prune PruneOptions
	// Index is the (possibly halved) indexed-path budget policy.
	Index PruneOptions
	// Corpus is the indexed document count the decision saw.
	Corpus int
	// ProbeTokens is the probe signature's token count.
	ProbeTokens int
	// TokensIndexed is how many probe tokens the index has seen at all.
	TokensIndexed int
	// TokensCommon is how many of those are stop-common
	// (index.CommonCutoff) — skipped by the stop-posting cut.
	TokensCommon int
	// PostingsKept is the summed document frequency of the kept
	// (indexed, non-common) probe tokens: the reachable candidate pool.
	PostingsKept int
	// MaxKeptDF is the largest kept token's document frequency: the
	// biggest one-token candidate cluster, which the adaptive budget is
	// sized to cover.
	MaxKeptDF int
	// MinKeptDF is the smallest kept token's document frequency: the
	// probe's sharpest discriminating signal. The planner abandons the
	// index when even this cluster overflows the static candidate budget.
	MinKeptDF int
	// Families is the installed family count the family route will probe
	// (zero when the plan is not StrategyFamily). The family budget itself
	// is resolved at execution time from the winning family's size.
	Families int
}

// Plan decides how a probe will be retrieved, without running anything.
// Forced strategies pass through (budgets resolved at execution, for
// bit-identity with the legacy entry points). StrategyAuto consults
// index.ProbeStats — O(probe tokens), allocation-free — and picks
// greedily:
//
//	exact    n = 0, a token-less probe, or static budgets that already
//	         reach the whole corpus: every path degenerates to the full
//	         scan, so run the cheapest spelling of it.
//	family   a fresh corpus clustering is installed (SetFamilies) and the
//	         corpus is large enough (familyAutoMinCorpus) for medoid
//	         routing to pay: tree-match the K medoids, full-match only
//	         within the winning family. Falls back to indexed at
//	         execution time if the clustering went stale in between.
//	pruned   the index cannot separate this probe's true matches from
//	         the crowd: it is blind to the probe (no token indexed),
//	         sees only stop-common tokens (accumulation would touch
//	         most of the corpus to discriminate nothing), or every
//	         token it keeps is generic (even the probe's rarest
//	         indexed token reaches more documents than the candidate
//	         budget admits, so the accumulator cannot isolate a
//	         cluster and ranks noise). The linear affinity sweep
//	         scores every entry on the full signature — token overlap
//	         and size similarity — and reaches everything the index
//	         would and more, at the pruned budget.
//	indexed  otherwise — with the budget adapted down from the static
//	         ⅛-of-corpus policy to cover the probe's biggest one-token
//	         cluster (MaxKeptDF plus headroom) when that cluster is
//	         smaller: a selective probe's true matches concentrate in
//	         its clusters, so matching a fixed corpus fraction beyond
//	         them is pure waste.
func (r *Registry) Plan(src *core.Prepared, topK int, opt PlanOptions) Plan {
	if opt.Degraded {
		opt.Prune = opt.Prune.Halve()
		opt.Index = opt.Index.Halve()
	}
	p := Plan{Strategy: opt.Force, Degraded: opt.Degraded, Prune: opt.Prune, Index: opt.Index}
	if opt.Force != StrategyAuto {
		if opt.Force == StrategyExact {
			p.Degraded = false
		}
		return p
	}
	p.Planned = true
	sig := src.Signature()
	st := r.idx.ProbeStats(sig)
	n := st.Docs
	p.Corpus, p.ProbeTokens = n, st.ProbeTokens
	p.TokensIndexed, p.TokensCommon = st.TokensIndexed, st.TokensCommon
	p.PostingsKept, p.MaxKeptDF, p.MinKeptDF = st.PostingsKept, st.MaxKeptDF, st.MinKeptDF
	pruneLimit := opt.Prune.Limit(n, topK)
	idxLimit := opt.Index.Limit(n, topK)
	fams := r.usableFamilies()
	switch {
	case n == 0 || len(sig.Tokens) == 0 || idxLimit >= n || pruneLimit >= n:
		p.Strategy, p.Budget, p.Degraded = StrategyExact, n, false
	case fams != nil && n >= familyAutoMinCorpus:
		// Budget resolved at execution from the winning family's size
		// (plan.Index.Limit over its members, plus the medoid probes).
		p.Strategy, p.Families = StrategyFamily, len(fams.medoids)
	case st.TokensIndexed == 0 || st.PostingsKept == 0 || st.MinKeptDF >= idxLimit:
		p.Strategy, p.Budget = StrategyPruned, pruneLimit
	default:
		budget := idxLimit
		if adaptive := adaptiveBudget(st.MaxKeptDF, opt.Index, topK); adaptive < budget {
			budget = adaptive
		}
		p.Strategy, p.Budget = StrategyIndexed, budget
	}
	return p
}

// adaptiveBudget sizes a planned indexed run for a selective probe: the
// probe's biggest one-token candidate cluster plus 25% headroom (so
// near-cluster candidates reachable through rarer tokens still fit),
// floored at the policy's MinCandidates and at topK. The caller caps it
// at the static policy budget — adaptation only ever shrinks.
func adaptiveBudget(maxKeptDF int, opt PruneOptions, topK int) int {
	b := maxKeptDF + maxKeptDF/4
	floor := opt.MinCandidates
	if floor < 1 {
		floor = 1
	}
	if b < floor {
		b = floor
	}
	if b < topK {
		b = topK
	}
	return b
}

// Match is MatchContext with a background context: plan (or obey Force)
// and run one retrieval, returning the ranking and the stats that
// describe what ran.
func (r *Registry) Match(src *core.Prepared, topK int, opt PlanOptions) ([]Ranked, RetrievalStats, error) {
	return r.MatchContext(context.Background(), src, topK, opt)
}

// MatchContext is the planned entry point unifying the repository's
// retrieval paths: it plans (Plan), executes the chosen strategy, and
// returns the ranking plus a RetrievalStats recording the decision, its
// inputs and what the execution actually touched. All strategies check
// ctx cooperatively in their scoring loops, so an abandoned caller stops
// consuming CPU; ctx.Err() is returned when cut short.
func (r *Registry) MatchContext(ctx context.Context, src *core.Prepared, topK int, opt PlanOptions) ([]Ranked, RetrievalStats, error) {
	return r.execute(ctx, src, topK, r.Plan(src, topK, opt))
}

// execute runs one plan. Forced plans re-derive their candidate budget
// from the corpus size at execution time — the exact computation (and
// the exact fallbacks) of the legacy entry points, which keeps the thin
// wrappers bit-identical to their pre-planner behavior.
func (r *Registry) execute(ctx context.Context, src *core.Prepared, topK int, plan Plan) ([]Ranked, RetrievalStats, error) {
	st := RetrievalStats{
		Strategy:      plan.Strategy,
		Planned:       plan.Planned,
		Degraded:      plan.Degraded,
		Corpus:        plan.Corpus,
		ProbeTokens:   plan.ProbeTokens,
		TokensIndexed: plan.TokensIndexed,
		TokensCommon:  plan.TokensCommon,
		PostingsKept:  plan.PostingsKept,
	}
	switch plan.Strategy {
	case StrategyPruned:
		entries := r.List()
		limit := plan.Budget
		if !plan.Planned {
			limit = plan.Prune.Limit(len(entries), topK)
			st.Corpus = len(entries)
		}
		st.CandidateBudget = limit
		st.CandidatesScored = len(entries)
		if limit >= len(entries) {
			ranked, err := r.rank(ctx, entries, src, topK)
			st.CandidatesMatched = len(entries)
			return ranked, st, err
		}
		cands, err := r.pruneByAffinity(ctx, entries, src, limit)
		if err != nil {
			return nil, st, err
		}
		ranked, err := r.rank(ctx, cands, src, topK)
		st.CandidatesMatched = len(cands)
		return ranked, st, err
	case StrategyIndexed:
		n := r.Len()
		limit := plan.Budget
		if !plan.Planned {
			limit = plan.Index.Limit(n, topK)
			st.Corpus = n
		}
		srcSig := src.Signature()
		if limit >= n || len(srcSig.Tokens) == 0 {
			entries := r.List()
			ranked, err := r.rank(ctx, entries, src, topK)
			st.CandidatesScored, st.CandidatesMatched, st.CandidateBudget = len(entries), len(entries), limit
			return ranked, st, err
		}
		cands, ist := r.idx.TopK(srcSig, limit)
		entries := make([]*Entry, 0, len(cands))
		for _, c := range cands {
			// A candidate may have been removed (or replaced under a name
			// that now hashes elsewhere) since the index snapshot; skip the
			// gone.
			if e, ok := r.Get(c.Key); ok {
				entries = append(entries, e)
			}
		}
		ranked, err := r.rank(ctx, entries, src, topK)
		st.CandidatesScored, st.CandidatesMatched, st.CandidateBudget = ist.Scored, len(entries), limit
		st.Indexed = true
		return ranked, st, err
	case StrategyFamily:
		return r.executeFamily(ctx, src, topK, plan, st)
	default: // StrategyExact — and the safe fallback for invalid values
		entries := r.List()
		ranked, err := r.rank(ctx, entries, src, topK)
		st.Strategy = StrategyExact
		st.CandidatesScored, st.CandidatesMatched, st.CandidateBudget = len(entries), len(entries), len(entries)
		if !plan.Planned {
			st.Corpus = len(entries)
		}
		return ranked, st, err
	}
}
