package registry

// Corpus-scale schema families: the registry-side state of the
// internal/corpus clustering. ClusterFamilies computes the clustering
// over the live entry set using the inverted index for candidate
// generation; SetFamilies installs a (validated) result, and the family
// retrieval strategy (StrategyFamily, planner.go) consults the installed
// view — probing the family medoids first, full-matching only inside the
// winning family.
//
// Freshness is judged against the registry's mutation counter: an
// installed clustering records the counter at install time, and once the
// corpus has mutated past a tolerance proportional to the clustered
// corpus size the view stops being usable — the planner falls back to
// the indexed path until a re-clustering is installed. The raw canonical
// bytes are kept alongside the decoded result so the persistence layer
// journals (and the server serves) exactly the bytes the clustering
// produced, byte-identical across restarts and replicas.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/model"
)

// familyView is one installed clustering: the decoded result, the
// canonical bytes it was installed from, the medoid probe list, the
// member→family lookup, and the staleness bookkeeping.
type familyView struct {
	res *corpus.Result
	raw []byte
	// medoids in family order (sorted by medoid name, same as res.Families).
	medoids []string
	// family maps every member name to its index in res.Families.
	family map[string]int
	// installedMut is the registry mutation counter at install time;
	// staleAfter is how many further mutations the view tolerates.
	installedMut uint64
	staleAfter   uint64
}

// familyStaleFloor and familyStaleFraction size the staleness tolerance:
// an installed clustering survives max(16, corpus/8) mutations before the
// planner stops trusting it.
const (
	familyStaleFloor    = 16
	familyStaleFraction = 8
)

// familyAutoMinCorpus is the corpus size below which the planner never
// auto-selects the family route: probing every medoid only pays off once
// the per-family member sets dwarf the medoid list.
const familyAutoMinCorpus = 512

// ClusterFamilies computes the corpus clustering over the current entry
// set: candidate pairs from the inverted index (O(n·k) probes, never the
// O(n²) cross product), deterministic greedy-medoid components
// (corpus.Cluster). It only computes — install the result with
// SetFamilies (or persist it with Persistent.StoreFamilies).
func (r *Registry) ClusterFamilies(opt corpus.Options) (*corpus.Result, error) {
	entries := r.List()
	items := make([]corpus.Item, len(entries))
	for i, e := range entries {
		items[i] = corpus.Item{Key: e.Name, Sig: e.Prepared.Signature()}
	}
	res := corpus.Cluster(items, func(sig model.Signature, k int) []corpus.Neighbor {
		cands, _ := r.idx.TopK(sig, k)
		out := make([]corpus.Neighbor, len(cands))
		for i, c := range cands {
			out[i] = corpus.Neighbor{Key: c.Key, Affinity: c.Affinity}
		}
		return out
	}, opt)
	return res, nil
}

// SetFamilies validates and installs a clustering result, resetting the
// staleness clock. A nil result clears the installed state.
func (r *Registry) SetFamilies(res *corpus.Result) error {
	if res == nil {
		r.ClearFamilies()
		return nil
	}
	raw, err := res.Encode()
	if err != nil {
		return err
	}
	return r.SetFamiliesJSON(raw)
}

// SetFamiliesJSON installs a clustering from its canonical bytes — the
// form the persistence and replication layers carry — keeping exactly
// those bytes as the served representation (FamiliesJSON), so a restarted
// or replicated node is byte-identical to the node that clustered.
func (r *Registry) SetFamiliesJSON(raw []byte) error {
	res, err := corpus.Decode(raw)
	if err != nil {
		return fmt.Errorf("registry: installing families: %w", err)
	}
	fv := &familyView{
		res:        res,
		raw:        append([]byte(nil), raw...),
		medoids:    make([]string, len(res.Families)),
		family:     make(map[string]int, res.Members()),
		staleAfter: familyStaleFloor,
	}
	for i, f := range res.Families {
		fv.medoids[i] = f.Medoid
		for _, m := range f.Members {
			fv.family[m] = i
		}
	}
	if frac := uint64(res.Corpus / familyStaleFraction); frac > fv.staleAfter {
		fv.staleAfter = frac
	}
	fv.installedMut = r.mutations.Load()
	r.families.Store(fv)
	return nil
}

// ClearFamilies removes the installed clustering; the planner falls back
// to the indexed path.
func (r *Registry) ClearFamilies() {
	r.families.Store(nil)
}

// Families returns the installed clustering result, or nil when none is
// installed. The result is shared — callers must not mutate it.
func (r *Registry) Families() *corpus.Result {
	fv := r.families.Load()
	if fv == nil {
		return nil
	}
	return fv.res
}

// FamiliesJSON returns the canonical bytes of the installed clustering
// (exactly what SetFamiliesJSON installed, what the WAL journals, and
// what GET /corpus/families serves), or nil when none is installed.
func (r *Registry) FamiliesJSON() []byte {
	fv := r.families.Load()
	if fv == nil {
		return nil
	}
	return fv.raw
}

// FamilyOf returns the medoid of the installed family containing name.
func (r *Registry) FamilyOf(name string) (medoid string, ok bool) {
	fv := r.families.Load()
	if fv == nil {
		return "", false
	}
	i, ok := fv.family[name]
	if !ok {
		return "", false
	}
	return fv.medoids[i], true
}

// FamiliesFresh reports whether a clustering is installed and still
// within its staleness tolerance — the condition under which the planner
// will route through it.
func (r *Registry) FamiliesFresh() bool {
	return r.usableFamilies() != nil
}

// usableFamilies returns the installed view when it is routable: at least
// two families (with one family the probe list is the corpus — routing
// buys nothing) and fewer corpus mutations since install than the
// tolerance. Allocation-free: one atomic load and two counter reads, so
// Plan stays allocation-free with families installed.
func (r *Registry) usableFamilies() *familyView {
	fv := r.families.Load()
	if fv == nil || len(fv.medoids) < 2 {
		return nil
	}
	if r.mutations.Load()-fv.installedMut > fv.staleAfter {
		return nil
	}
	return fv
}

// executeFamily runs the family route of one plan: tree-match the family
// medoids (real scores — every medoid result is reusable, the medoid
// being a member of its own family), pick the best-scoring medoid's
// family, full-match every member of that family, and merge them with
// the medoid results under the single-node ranking order. The winning
// family is matched whole, never affinity-pruned: within a family the
// signatures are near-uniform by construction (that is what made it a
// family), so an affinity cut there is close to a random sample and
// destroys recall — the clustering already did the corpus-level
// narrowing, and the route's speed comes from one family plus the
// medoid probes being far smaller than the flat indexed candidate
// budget. When the installed clustering is unusable — none installed,
// gone stale since planning, or its medoids no longer resolve — it
// falls back to the indexed path and flags the stats FamilyFallback.
func (r *Registry) executeFamily(ctx context.Context, src *core.Prepared, topK int, plan Plan, st RetrievalStats) ([]Ranked, RetrievalStats, error) {
	fv := r.usableFamilies()
	var medoids []*Entry
	if fv != nil {
		medoids = make([]*Entry, 0, len(fv.medoids))
		for _, name := range fv.medoids {
			// A medoid removed since clustering simply stops being probed;
			// its family members are unreachable by this route until a
			// re-clustering, which the staleness clock forces soon anyway.
			if e, ok := r.Get(name); ok {
				medoids = append(medoids, e)
			}
		}
	}
	if fv == nil || len(medoids) < 2 {
		np := plan
		np.Strategy = StrategyIndexed
		if plan.Planned {
			// The budget the planner would have chosen had it gone indexed:
			// the static policy, adapted down to the probe's biggest kept
			// token cluster exactly as the indexed branch of Plan does.
			np.Budget = plan.Index.Limit(r.Len(), topK)
			if a := adaptiveBudget(plan.MaxKeptDF, plan.Index, topK); plan.MaxKeptDF > 0 && a < np.Budget {
				np.Budget = a
			}
		}
		ranked, fst, err := r.execute(ctx, src, topK, np)
		fst.FamilyFallback = true
		return ranked, fst, err
	}
	st.Families = len(medoids)

	medRanked, err := r.rank(ctx, medoids, src, 0)
	if err != nil {
		return nil, st, err
	}
	winner := medRanked[0].Entry
	st.Family = winner.Name
	members := fv.res.Families[fv.family[winner.Name]].Members
	entries := make([]*Entry, 0, len(members))
	for _, name := range members {
		if name == winner.Name {
			continue // already matched as a medoid
		}
		if e, ok := r.Get(name); ok {
			entries = append(entries, e)
		}
	}
	st.CandidateBudget = len(medoids) + len(members)
	st.CandidatesScored = len(medoids) + len(entries)
	ranked, err := r.rank(ctx, entries, src, 0)
	if err != nil {
		return nil, st, err
	}
	st.CandidatesMatched = len(medoids) + len(entries)
	merged := append(ranked, medRanked...)
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].Entry.Name < merged[j].Entry.Name
	})
	if topK > 0 && topK < len(merged) {
		merged = merged[:topK]
	}
	return merged, st, nil
}
