package registry

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/workloads"
)

func TestStrategyStringParseRoundTrip(t *testing.T) {
	for _, s := range []Strategy{StrategyAuto, StrategyExact, StrategyPruned, StrategyIndexed} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if got, err := ParseStrategy("index"); err != nil || got != StrategyIndexed {
		t.Errorf("ParseStrategy(index) = %v, %v; want the indexed strategy", got, err)
	}
	if _, err := ParseStrategy("fuzzy"); err == nil {
		t.Error("ParseStrategy(fuzzy) should fail")
	}
	if got := Strategy(250).String(); got != "strategy(250)" {
		t.Errorf("invalid strategy String() = %q", got)
	}
}

func TestPruneOptionsHalve(t *testing.T) {
	cases := []struct{ in, want PruneOptions }{
		{PruneOptions{Fraction: 0.25, MinCandidates: 16}, PruneOptions{Fraction: 0.125, MinCandidates: 8}},
		{PruneOptions{Fraction: 0.125, MinCandidates: 1}, PruneOptions{Fraction: 0.0625, MinCandidates: 1}},
		// Full-scan configs (fraction outside (0,1]) have no budget to halve.
		{PruneOptions{}, PruneOptions{}},
		{PruneOptions{Fraction: 2, MinCandidates: 16}, PruneOptions{Fraction: 2, MinCandidates: 16}},
	}
	for _, tc := range cases {
		if got := tc.in.Halve(); got != tc.want {
			t.Errorf("%+v.Halve() = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// unseenProbe is a schema whose every token is absent from the family
// corpus vocabularies: the index is blind to it.
func unseenProbe() *model.Schema {
	s := model.New("Zyzzyva")
	tbl := s.AddChild(s.Root(), "Quokka", model.KindTable)
	s.AddChild(tbl, "Axolotl", model.KindColumn)
	s.AddChild(tbl, "Wombat", model.KindColumn)
	s.Name = "probe-unseen"
	return s
}

// TestPlanAutoSelection pins the planner's decision rules on corpora
// where each branch is forced: empty and tiny repositories degenerate to
// the exact scan, index-blind probes route to the pruned scan at the
// pruned budget, and selective probes run indexed with the adaptive
// budget capped by the static policy.
func TestPlanAutoSelection(t *testing.T) {
	const topK = 10
	opts := DefaultPlanOptions()

	t.Run("empty repository", func(t *testing.T) {
		r := newTestRegistry(t)
		src := mustPrepare(t, r, workloads.Figure2().Source)
		p := r.Plan(src, topK, opts)
		if p.Strategy != StrategyExact || !p.Planned || p.Budget != 0 {
			t.Errorf("plan on empty repository = %+v, want planned exact with zero budget", p)
		}
	})

	t.Run("tiny repository", func(t *testing.T) {
		r := newTestRegistry(t)
		prunedCorpus(t, r, 8)
		src := mustPrepare(t, r, workloads.FamilyProbe(1, 5))
		p := r.Plan(src, topK, opts)
		if p.Strategy != StrategyExact || !p.Planned || p.Budget != 8 {
			t.Errorf("plan on 8-entry repository = %+v, want planned exact with budget 8", p)
		}
		if p.Corpus != 8 {
			t.Errorf("plan saw corpus %d, want 8", p.Corpus)
		}
	})

	r := newTestRegistry(t)
	prunedCorpus(t, r, 200)

	t.Run("index-blind probe", func(t *testing.T) {
		src := mustPrepare(t, r, unseenProbe())
		p := r.Plan(src, topK, opts)
		if p.TokensIndexed != 0 {
			t.Fatalf("probe unexpectedly shares tokens with the corpus: %+v", p)
		}
		want := opts.Prune.Limit(200, topK)
		if p.Strategy != StrategyPruned || !p.Planned || p.Budget != want {
			t.Errorf("plan = %+v, want planned pruned with budget %d", p, want)
		}
	})

	t.Run("stop-heavy probe", func(t *testing.T) {
		// Below the common cutoff nothing is stop-common, but every token
		// the stop-heavy probe shares with the corpus is near-corpus-wide:
		// the selectivity rule must abandon the index.
		src := mustPrepare(t, r, workloads.StopHeavyProbe(7))
		p := r.Plan(src, topK, opts)
		if p.TokensIndexed == 0 || p.PostingsKept == 0 {
			t.Fatalf("stop-heavy probe should share kept tokens below the cutoff: %+v", p)
		}
		if p.MinKeptDF < opts.Index.Limit(200, topK) {
			t.Fatalf("stop-heavy probe's rarest kept token df %d fits the static budget", p.MinKeptDF)
		}
		want := opts.Prune.Limit(200, topK)
		if p.Strategy != StrategyPruned || !p.Planned || p.Budget != want {
			t.Errorf("plan = %+v, want planned pruned with budget %d", p, want)
		}
	})

	t.Run("selective probe", func(t *testing.T) {
		src := mustPrepare(t, r, workloads.RareTokenProbe(3, 99))
		p := r.Plan(src, topK, opts)
		if p.Strategy != StrategyIndexed || !p.Planned {
			t.Fatalf("plan = %+v, want planned indexed", p)
		}
		if p.TokensIndexed == 0 || p.PostingsKept == 0 || p.MaxKeptDF == 0 {
			t.Fatalf("plan stats empty for a family probe: %+v", p)
		}
		// The budget is the adaptive cluster-sized one, capped at the
		// static policy limit and floored at MinCandidates and topK.
		want := opts.Index.Limit(200, topK)
		if adaptive := adaptiveBudget(p.MaxKeptDF, opts.Index, topK); adaptive < want {
			want = adaptive
		}
		if p.Budget != want {
			t.Errorf("plan budget = %d, want %d (MaxKeptDF %d)", p.Budget, want, p.MaxKeptDF)
		}
		if static := opts.Index.Limit(200, topK); p.Budget > static {
			t.Errorf("adaptive budget %d exceeds the static policy %d", p.Budget, static)
		}
	})
}

// TestAdaptiveBudget pins the cluster-plus-headroom sizing and its floors.
func TestAdaptiveBudget(t *testing.T) {
	opt := PruneOptions{Fraction: 0.125, MinCandidates: 16}
	cases := []struct{ maxDF, topK, want int }{
		{100, 10, 125}, // cluster + 25% headroom
		{4, 10, 16},    // floored at MinCandidates
		{4, 40, 40},    // floored at topK
		{0, 0, 16},     // degenerate: the MinCandidates floor still applies
	}
	for _, tc := range cases {
		if got := adaptiveBudget(tc.maxDF, opt, tc.topK); got != tc.want {
			t.Errorf("adaptiveBudget(%d, topK %d) = %d, want %d", tc.maxDF, tc.topK, got, tc.want)
		}
	}
	if got := adaptiveBudget(4, PruneOptions{}, 0); got != 5 {
		t.Errorf("adaptiveBudget with zero floor = %d, want 5", got)
	}
}

// TestForcedPlansMatchLegacyEntryPoints is the wrapper bit-identity
// regression: Match with a forced strategy must produce exactly the
// ranking of the corresponding legacy entry point, for every strategy,
// on probes spanning the planner's decision space.
func TestForcedPlansMatchLegacyEntryPoints(t *testing.T) {
	const topK = 10
	r := newTestRegistry(t)
	prunedCorpus(t, r, 120)
	probes := []*model.Schema{
		workloads.FamilyProbe(2, 7),
		workloads.RareTokenProbe(4, 11),
		workloads.StopHeavyProbe(13),
		unseenProbe(),
	}
	for _, ps := range probes {
		src := mustPrepare(t, r, ps)

		wantExact, err := r.MatchAll(src, topK)
		if err != nil {
			t.Fatal(err)
		}
		gotExact, st, err := r.Match(src, topK, PlanOptions{Force: StrategyExact})
		if err != nil {
			t.Fatal(err)
		}
		assertSameRanking(t, wantExact, gotExact)
		if st.Planned || st.Strategy != StrategyExact {
			t.Errorf("%s: forced exact stats = %+v", ps.Name, st)
		}

		popt := DefaultPruneOptions()
		wantPruned, err := r.MatchTop(src, topK, popt)
		if err != nil {
			t.Fatal(err)
		}
		gotPruned, st, err := r.Match(src, topK, PlanOptions{Force: StrategyPruned, Prune: popt})
		if err != nil {
			t.Fatal(err)
		}
		assertSameRanking(t, wantPruned, gotPruned)
		if st.Planned || st.Strategy != StrategyPruned {
			t.Errorf("%s: forced pruned stats = %+v", ps.Name, st)
		}

		iopt := DefaultIndexOptions()
		wantIndexed, ist, err := r.MatchIndexed(src, topK, iopt)
		if err != nil {
			t.Fatal(err)
		}
		gotIndexed, st, err := r.Match(src, topK, PlanOptions{Force: StrategyIndexed, Index: iopt})
		if err != nil {
			t.Fatal(err)
		}
		assertSameRanking(t, wantIndexed, gotIndexed)
		if st != ist {
			t.Errorf("%s: forced indexed stats = %+v, legacy %+v", ps.Name, st, ist)
		}
	}
}

// TestMatchDegradedHalvesBudgets: a degraded planned/forced run must rank
// exactly like the same strategy under pre-halved budget policies — the
// serving layer's load shedding is a planner input, not a separate path —
// and the stats must say so. A forced exact scan has no budget to shed,
// so it never reports degraded.
func TestMatchDegradedHalvesBudgets(t *testing.T) {
	const topK = 10
	r := newTestRegistry(t)
	prunedCorpus(t, r, 120)
	src := mustPrepare(t, r, workloads.FamilyProbe(3, 21))

	iopt := DefaultIndexOptions()
	want, wantSt, err := r.MatchIndexed(src, topK, iopt.Halve())
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := r.Match(src, topK, PlanOptions{Force: StrategyIndexed, Index: iopt, Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, want, got)
	if !st.Degraded {
		t.Error("degraded indexed run did not report Degraded")
	}
	wantSt.Degraded = true
	if st != wantSt {
		t.Errorf("degraded stats = %+v, want %+v", st, wantSt)
	}

	popt := DefaultPruneOptions()
	want, err = r.MatchTop(src, topK, popt.Halve())
	if err != nil {
		t.Fatal(err)
	}
	got, st, err = r.Match(src, topK, PlanOptions{Force: StrategyPruned, Prune: popt, Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, want, got)
	if !st.Degraded {
		t.Error("degraded pruned run did not report Degraded")
	}

	if _, st, err = r.Match(src, topK, PlanOptions{Force: StrategyExact, Degraded: true}); err != nil {
		t.Fatal(err)
	} else if st.Degraded {
		t.Error("a forced exact scan has no budget; it must not report Degraded")
	}
}

// TestPlannedRecallAtLeastBestStatic is the planner's quality property:
// on a family corpus with probes spanning the frequency spectrum, the
// planned top-10 must recall (against the exhaustive ground truth) at
// least as well as every static policy on every probe.
func TestPlannedRecallAtLeastBestStatic(t *testing.T) {
	const n, topK = 300, 10
	r := newTestRegistry(t)
	prunedCorpus(t, r, n)
	probes := []*model.Schema{
		workloads.FamilyProbe(0, 3),
		workloads.FamilyProbe(4, 8),
		workloads.FamilyProbe(7, 15),
		workloads.RareTokenProbe(1, 31),
		workloads.RareTokenProbe(6, 32),
		workloads.StopHeavyProbe(9),
	}
	recall := func(truth, got []Ranked) int {
		in := make(map[string]bool, len(truth))
		for _, rk := range truth {
			in[rk.Entry.Name] = true
		}
		hits := 0
		for _, rk := range got {
			if in[rk.Entry.Name] {
				hits++
			}
		}
		return hits
	}
	for _, ps := range probes {
		src := mustPrepare(t, r, ps)
		truth, err := r.MatchAll(src, topK)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := r.MatchTop(src, topK, DefaultPruneOptions())
		if err != nil {
			t.Fatal(err)
		}
		indexed, _, err := r.MatchIndexed(src, topK, DefaultIndexOptions())
		if err != nil {
			t.Fatal(err)
		}
		planned, st, err := r.Match(src, topK, DefaultPlanOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !st.Planned || st.Strategy == StrategyAuto {
			t.Fatalf("%s: planned run reported %+v", ps.Name, st)
		}
		got := recall(truth, planned)
		for name, static := range map[string][]Ranked{"pruned": pruned, "indexed": indexed} {
			if want := recall(truth, static); got < want {
				t.Errorf("%s: planned recall@%d = %d < static %s recall %d (plan %+v)",
					ps.Name, topK, got, name, want, st)
			}
		}
	}
}

// TestPlanAllocationFree pins the warm-path contract: planning runs on
// every request, so with the probe signature pre-warmed it must not
// allocate at all.
func TestPlanAllocationFree(t *testing.T) {
	r := newTestRegistry(t)
	prunedCorpus(t, r, 100)
	src := mustPrepare(t, r, workloads.FamilyProbe(2, 44))
	src.Signature() // warm the cached signature outside the measured loop
	opts := DefaultPlanOptions()
	if allocs := testing.AllocsPerRun(200, func() { r.Plan(src, 10, opts) }); allocs > 0 {
		t.Errorf("Plan allocates %.1f objects per call, want 0", allocs)
	}
}

// TestMatchContextCancelled: the planned entry point must propagate a
// cancelled context from every strategy's scoring loop.
func TestMatchContextCancelled(t *testing.T) {
	r := newTestRegistry(t)
	prunedCorpus(t, r, 40)
	src := mustPrepare(t, r, workloads.FamilyProbe(1, 2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, force := range []Strategy{StrategyAuto, StrategyExact, StrategyPruned, StrategyIndexed} {
		opt := DefaultPlanOptions()
		opt.Force = force
		if _, _, err := r.MatchContext(ctx, src, 5, opt); err == nil {
			t.Errorf("force=%s: cancelled context did not abort the match", force)
		}
	}
}
