package registry

// Replication substrate tests: live WAL shipping over a pipe, snapshot
// resync for stale and diverged followers, mid-stream resync across a
// compaction rotation, and the fault-injection sweep — the follower
// killed at (and inside) every frame boundary of a captured stream, then
// restarted from its checkpoint — asserting convergence to rankings
// byte-identical to the primary's. The sweep is the streaming counterpart
// of crashinject_test.go's journal sweep.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

// replMatcher builds the shared matcher for replication tests.
func replMatcher(t *testing.T) *core.Matcher {
	t.Helper()
	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// openRepl opens a durable registry on the shared test matcher (so
// rankings of primary, follower and oracle are directly comparable).
func openRepl(t *testing.T, m *core.Matcher, dir string, opts PersistOptions) *Persistent {
	t.Helper()
	p, warns, err := OpenPersistentOptions(dir, m, opts, storeParse)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("unexpected recovery warnings: %v", warns)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// applyOps replays a crash-injection op sequence into a durable registry.
func applyOps(t *testing.T, p *Persistent, ops []crashOp) {
	t.Helper()
	for _, op := range ops {
		switch op.op {
		case "put":
			if _, _, err := p.RegisterSource(op.name, op.format, []byte(op.content)); err != nil {
				t.Fatal(err)
			}
		case "del":
			if _, err := p.Remove(op.name); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// replLink runs a live primary→follower stream over an in-memory pipe.
type replLink struct {
	cancel  context.CancelFunc
	state   *ReplState
	stream  chan error
	applied chan error
}

func startRepl(t *testing.T, primary, follower *Persistent, from ReplPos, onAdvance func(ReplPos)) *replLink {
	t.Helper()
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	l := &replLink{
		cancel:  cancel,
		state:   &ReplState{},
		stream:  make(chan error, 1),
		applied: make(chan error, 1),
	}
	go func() {
		err := primary.StreamReplication(ctx, pw, from, 25*time.Millisecond)
		pw.Close()
		l.stream <- err
	}()
	go func() {
		l.applied <- follower.ApplyReplication(ctx, pr, l.state, onAdvance)
	}()
	t.Cleanup(cancel)
	return l
}

// stop tears the link down and surfaces both goroutines' outcomes.
func (l *replLink) stop(t *testing.T) {
	t.Helper()
	l.cancel()
	if err := <-l.stream; err != nil {
		t.Errorf("streamer: %v", err)
	}
	if err := <-l.applied; err != nil {
		t.Errorf("applier: %v", err)
	}
}

// waitApplied polls until the follower has applied through target.
func (l *replLink) waitApplied(t *testing.T, target ReplPos) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := l.state.Status(); !st.Pos.Before(target) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never applied through %v (at %v)", target, l.state.Status().Pos)
}

// assertConverged compares the follower's registry against the primary's:
// same entries, byte-identical full rankings for the fixed probe.
func assertConverged(t *testing.T, label string, primary, follower *Persistent, m *core.Matcher) {
	t.Helper()
	if got, want := follower.Len(), primary.Len(); got != want {
		t.Fatalf("%s: follower has %d entries, primary %d", label, got, want)
	}
	want := rankingOf(t, primary.Registry, m)
	if got := rankingOf(t, follower.Registry, m); got != want {
		t.Errorf("%s: follower rankings differ from primary:\n--- follower\n%s--- primary\n%s", label, got, want)
	}
}

// TestReplicationTailConvergesLive streams a mutation sequence (puts
// across two formats, a replacement, a removal) to a follower over a live
// pipe — a tail from genesis, no resync — and asserts byte-identical
// convergence.
func TestReplicationTailConvergesLive(t *testing.T) {
	m := replMatcher(t)
	primary := openRepl(t, m, t.TempDir(), PersistOptions{WAL: true})
	follower := openRepl(t, m, t.TempDir(), PersistOptions{WAL: true})
	link := startRepl(t, primary, follower, ReplPos{}, nil)

	applyOps(t, primary, crashOps(t))
	target, err := primary.ReplicationPos()
	if err != nil {
		t.Fatal(err)
	}
	link.waitApplied(t, target)
	assertConverged(t, "live tail", primary, follower, m)
	if st := link.state.Status(); !st.CaughtUp || st.Resyncs != 0 {
		t.Errorf("tail follower status = %+v, want caught up with no resyncs", st)
	}
	link.stop(t)
}

// TestReplicationResyncForStaleFollower connects a follower whose
// checkpoint the primary has compacted past: the stream must open with a
// generation-aware full snapshot (resync), diff-apply a divergent local
// entry away, and converge byte-identically.
func TestReplicationResyncForStaleFollower(t *testing.T) {
	m := replMatcher(t)
	// Compact on every commit so the live generation moves past genesis.
	primary := openRepl(t, m, t.TempDir(), PersistOptions{WAL: true, CompactBytes: 1})
	applyOps(t, primary, crashOps(t))
	target, err := primary.ReplicationPos()
	if err != nil {
		t.Fatal(err)
	}
	if target.Base == 0 {
		t.Fatalf("primary never compacted (pos %v); the stale-checkpoint case needs a rotated journal", target)
	}

	follower := openRepl(t, m, t.TempDir(), PersistOptions{WAL: true})
	// Diverged local state the snapshot must remove.
	if _, _, err := follower.RegisterSource("ghost", "sql", []byte("CREATE TABLE Ghost (ID INT PRIMARY KEY);")); err != nil {
		t.Fatal(err)
	}

	link := startRepl(t, primary, follower, ReplPos{}, nil)
	link.waitApplied(t, target)
	if _, ok := follower.Get("ghost"); ok {
		t.Error("resync did not diff-apply the diverged entry away")
	}
	assertConverged(t, "stale resync", primary, follower, m)
	if st := link.state.Status(); !st.CaughtUp || st.Resyncs == 0 {
		t.Errorf("stale follower status = %+v, want caught up via at least one resync", st)
	}
	link.stop(t)
}

// TestReplicationMidStreamResyncAcrossCompaction starts a tail at
// generation 0 and then lets the primary compact underneath the live
// stream: the streamer must fall back to a mid-stream snapshot resync
// (same connection) and the follower must still converge.
func TestReplicationMidStreamResyncAcrossCompaction(t *testing.T) {
	m := replMatcher(t)
	primary := openRepl(t, m, t.TempDir(), PersistOptions{WAL: true, CompactBytes: 1})
	follower := openRepl(t, m, t.TempDir(), PersistOptions{WAL: true})
	link := startRepl(t, primary, follower, ReplPos{}, nil)

	applyOps(t, primary, crashOps(t))
	target, err := primary.ReplicationPos()
	if err != nil {
		t.Fatal(err)
	}
	link.waitApplied(t, target)
	assertConverged(t, "compaction resync", primary, follower, m)
	if st := link.state.Status(); st.Resyncs == 0 {
		t.Errorf("follower status = %+v, want at least one mid-stream resync (the journal rotated %d times)", st, target.Base)
	}
	link.stop(t)
}

// captureStream records the raw bytes of a replication stream carrying
// exactly wantFrames frames (the primary is quiescent, so the stream is
// deterministic: one hello plus the buffered records).
func captureStream(t *testing.T, p *Persistent, from ReplPos, wantFrames int) []byte {
	t.Helper()
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		err := p.StreamReplication(ctx, pw, from, time.Hour)
		pw.Close()
		done <- err
	}()
	var buf bytes.Buffer
	tmp := make([]byte, 4096)
	for len(replFrameBounds(buf.Bytes()))-1 < wantFrames {
		n, err := pr.Read(tmp)
		buf.Write(tmp[:n])
		if err != nil {
			t.Fatalf("captured %d bytes then: %v", buf.Len(), err)
		}
	}
	cancel()
	pr.Close()
	if err := <-done; err != nil {
		t.Fatalf("streamer: %v", err)
	}
	return buf.Bytes()
}

// replFrameBounds returns the byte offsets of every frame boundary in a
// captured stream: the preamble end, then the offset after each whole
// frame.
func replFrameBounds(b []byte) []int {
	if len(b) < replHeaderSize {
		return nil
	}
	bounds := []int{replHeaderSize}
	off := replHeaderSize
	for {
		_, n, err := decodeReplFrame(b[off:])
		if err != nil {
			return bounds
		}
		off += n
		bounds = append(bounds, off)
	}
}

// TestReplicationKilledAtEveryFrameBoundary is the fault-injection sweep:
// a follower is fed the stream cut exactly at every frame boundary (the
// kill) and three bytes into the next frame (the torn kill), verified to
// hold exactly the acknowledged prefix, then restarted from its
// checkpoint against the live primary and required to converge to
// byte-identical rankings versus the never-killed oracle — with the
// restart resuming as a tail, never a gratuitous full resync.
func TestReplicationKilledAtEveryFrameBoundary(t *testing.T) {
	m := replMatcher(t)
	ops := crashOps(t)
	primary := openRepl(t, m, t.TempDir(), PersistOptions{WAL: true})
	applyOps(t, primary, ops)
	target, err := primary.ReplicationPos()
	if err != nil {
		t.Fatal(err)
	}
	oracleRanking := rankingOf(t, primary.Registry, m)

	// One hello frame, then every op as a rec frame.
	stream := captureStream(t, primary, ReplPos{}, len(ops)+1)
	bounds := replFrameBounds(stream)
	if len(bounds) != len(ops)+2 {
		t.Fatalf("stream has %d frame boundaries, want %d (preamble + hello + %d records)", len(bounds), len(ops)+2, len(ops))
	}

	// prefixRanking caches the oracle ranking for each applied-op count.
	prefixRanking := make(map[int]string)
	rankingForPrefix := func(n int) string {
		if _, ok := prefixRanking[n]; !ok {
			prefixRanking[n] = rankingOf(t, applyPrefix(t, m, ops, n), m)
		}
		return prefixRanking[n]
	}

	run := func(label string, cut int, wantOps int, wantCleanEOF bool) {
		dir := t.TempDir()
		follower := openRepl(t, m, dir, PersistOptions{WAL: true})
		var checkpoint ReplPos
		err := follower.ApplyReplication(context.Background(), bytes.NewReader(stream[:cut]),
			nil, func(p ReplPos) { checkpoint = p })
		if wantCleanEOF && err != nil {
			t.Errorf("%s: apply of a boundary-cut stream errored: %v", label, err)
		}
		if !wantCleanEOF && err == nil {
			t.Errorf("%s: apply of a mid-frame cut reported no disconnect", label)
		}
		// The kill must leave exactly the acknowledged prefix applied.
		if got, want := rankingOf(t, follower.Registry, m), rankingForPrefix(wantOps); got != want {
			t.Fatalf("%s: killed follower holds a state that is not the %d-op prefix:\n--- follower\n%s--- prefix oracle\n%s", label, wantOps, got, want)
		}
		if checkpoint.Records != wantOps {
			t.Fatalf("%s: checkpoint %v after %d applied ops", label, checkpoint, wantOps)
		}
		if err := follower.Close(); err != nil {
			t.Fatal(err)
		}

		// Restart: recover the follower's own journal, reconnect from the
		// checkpoint, and converge against the live primary.
		restarted, warns, err := OpenPersistentOptions(dir, m, PersistOptions{WAL: true}, storeParse)
		if err != nil {
			t.Fatalf("%s: follower restart: %v", label, err)
		}
		defer restarted.Close()
		if len(warns) != 0 {
			t.Errorf("%s: follower restart warnings: %v", label, warns)
		}
		link := startRepl(t, primary, restarted, checkpoint, nil)
		link.waitApplied(t, target)
		if got := rankingOf(t, restarted.Registry, m); got != oracleRanking {
			t.Errorf("%s: restarted follower did not converge to the oracle ranking:\n--- follower\n%s--- oracle\n%s", label, got, oracleRanking)
		}
		if st := link.state.Status(); st.Resyncs != 0 {
			t.Errorf("%s: restart from checkpoint %v resynced %d times, want a pure tail resume", label, checkpoint, st.Resyncs)
		}
		link.stop(t)
	}

	for k, cut := range bounds {
		// Ops applied by the prefix: boundary 0 is the bare preamble,
		// boundary 1 adds the hello, k >= 2 adds k-1 records.
		wantOps := k - 1
		if wantOps < 0 {
			wantOps = 0
		}
		run(fmt.Sprintf("kill@frame %d", k), cut, wantOps, true)
		if cut+3 <= len(stream) {
			run(fmt.Sprintf("torn@frame %d", k), cut+3, wantOps, false)
		}
	}
}

// TestReplicationRequiresWAL pins the mode contract: a legacy snapshot
// registry has no journal to ship and must refuse to stream.
func TestReplicationRequiresWAL(t *testing.T) {
	m := replMatcher(t)
	p, warns, err := OpenPersistentOptions(t.TempDir(), m, PersistOptions{}, storeParse)
	if err != nil || len(warns) != 0 {
		t.Fatalf("open: %v %v", err, warns)
	}
	defer p.Close()
	if _, err := p.ReplicationPos(); err == nil {
		t.Error("ReplicationPos on a legacy registry reported a position")
	}
	if err := p.StreamReplication(context.Background(), io.Discard, ReplPos{}, 0); err == nil {
		t.Error("StreamReplication on a legacy registry did not refuse")
	}
}
