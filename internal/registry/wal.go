package registry

// The write-ahead journal behind Persistent's WAL mode. One WAL file holds
// the mutations that happened *after* the snapshot generation its name
// carries: wal-<base>.log contains the ordered Register/Replace/Remove
// tail on top of snapshot-<base>.jsonl (or on top of nothing for base 0).
// Recovery is newest-consistent-snapshot + ordered tail replay; a torn
// tail is truncated back to the last whole record. docs/PERSISTENCE.md is
// the byte-level specification of everything in this file, kept honest by
// a conformance test that decodes the documented example with this
// decoder.
//
// File layout:
//
//	offset  size  field
//	0       8     magic "CUPIDWAL"
//	8       4     format version, big-endian uint32 (currently 1)
//	12      ...   records, back to back
//
// Record framing (everything before the payload is big-endian):
//
//	offset  size  field
//	0       4     payload length n
//	4       4     IEEE CRC-32 of the payload bytes
//	8       n     payload: one JSON walRecord
//
// The payload is JSON (one walRecord) so the journal stays debuggable
// with standard tools, but the frame is binary: the length prefix makes
// scanning O(records) without parsing, and the checksum turns every torn
// or bit-rotted write into a detectable truncation point instead of a
// silently wrong repository.
import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	walMagic   = "CUPIDWAL"
	walVersion = 1
	walPrefix  = "wal-"
	walSuffix  = ".log"
	// walHeaderSize is the file preamble: 8 magic bytes + 4 version bytes.
	walHeaderSize = len(walMagic) + 4
	// walFrameSize is the per-record frame before the payload: 4 length
	// bytes + 4 checksum bytes.
	walFrameSize = 8
	// walMaxPayload bounds a single record (a schema source document plus
	// framing); longer length prefixes are treated as corruption.
	walMaxPayload = 64 << 20
)

// WAL record operations: a put journals a registration or replacement
// (carrying the full source document), a del journals a removal.
const (
	walOpPut = "put"
	walOpDel = "del"
)

// walRecord is one journaled mutation. Put records carry the same fields
// a snapshot record (Doc) does — the original source document — so replay
// re-parses exactly the bytes the client registered; del records carry
// only the name.
type walRecord struct {
	Op          string `json:"op"`
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Format      string `json:"format,omitempty"`
	Content     string `json:"content,omitempty"`
	Instances   string `json:"instances,omitempty"`
}

// doc converts a put record back into the snapshot-record shape.
func (r walRecord) doc() Doc {
	return Doc{Name: r.Name, Fingerprint: r.Fingerprint, Format: r.Format, Content: r.Content, Instances: r.Instances}
}

// putRecord frames a Doc as a put mutation.
func putRecord(d Doc) walRecord {
	return walRecord{Op: walOpPut, Name: d.Name, Fingerprint: d.Fingerprint, Format: d.Format, Content: d.Content, Instances: d.Instances}
}

// delRecord frames a removal.
func delRecord(name string) walRecord {
	return walRecord{Op: walOpDel, Name: name}
}

// appendWALHeader appends the file preamble to buf.
func appendWALHeader(buf []byte) []byte {
	buf = append(buf, walMagic...)
	return binary.BigEndian.AppendUint32(buf, walVersion)
}

// appendFrame appends one length+checksum frame around payload to buf.
// This is the framing primitive shared by the on-disk journal and the
// replication stream (repl.go): 4-byte big-endian payload length, 4-byte
// IEEE CRC-32 of the payload, then the payload itself.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// decodeFrame decodes one frame from b, returning the payload and the
// number of bytes consumed. Any defect — short frame, oversized length,
// checksum mismatch — is an error; the caller treats the frame and
// everything after it as torn.
func decodeFrame(b []byte) ([]byte, int, error) {
	if len(b) < walFrameSize {
		return nil, 0, fmt.Errorf("short frame: %d bytes", len(b))
	}
	n := binary.BigEndian.Uint32(b[0:4])
	sum := binary.BigEndian.Uint32(b[4:8])
	if n > walMaxPayload {
		return nil, 0, fmt.Errorf("implausible payload length %d", n)
	}
	if int64(len(b))-walFrameSize < int64(n) {
		return nil, 0, fmt.Errorf("torn payload: %d of %d bytes", len(b)-walFrameSize, n)
	}
	payload := b[walFrameSize : walFrameSize+int(n)]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, 0, fmt.Errorf("checksum mismatch: %08x, frame says %08x", got, sum)
	}
	return payload, walFrameSize + int(n), nil
}

// appendWALRecord appends one framed record to buf. A payload the
// decoder would reject as implausible is refused here, symmetrically —
// writing it would produce an acknowledged record that the next recovery
// treats as corruption, truncating it and everything after it.
func appendWALRecord(buf []byte, rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("registry: encoding WAL record %q: %w", rec.Name, err)
	}
	if len(payload) > walMaxPayload {
		return nil, fmt.Errorf("registry: WAL record %q is %d bytes, beyond the %d-byte record limit", rec.Name, len(payload), walMaxPayload)
	}
	return appendFrame(buf, payload), nil
}

// decodeWALRecord decodes one framed record from b, returning the record
// and the number of bytes consumed. Any defect — short frame, oversized
// length, checksum mismatch, unparseable payload, unknown op — is an
// error; the caller treats the record and everything after it as the torn
// tail.
func decodeWALRecord(b []byte) (walRecord, int, error) {
	var rec walRecord
	payload, size, err := decodeFrame(b)
	if err != nil {
		return rec, 0, err
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, fmt.Errorf("decoding payload: %w", err)
	}
	switch rec.Op {
	case walOpPut, walOpDel:
	default:
		return rec, 0, fmt.Errorf("unknown op %q", rec.Op)
	}
	if rec.Name == "" {
		return rec, 0, fmt.Errorf("record without a name")
	}
	return rec, size, nil
}

// scanWAL reads a journal file and returns every whole, checksum-valid
// record plus the byte offset where the valid prefix ends. A file too
// short to carry the preamble yields validEnd 0 (the whole file is a
// torn creation). corruption describes why scanning stopped early; it is
// empty when the file was read to a clean end.
//
// A full-length preamble with the wrong magic or an unsupported version
// is a hard error, never a truncation point: the file is not something
// this code wrote (or was written by a newer format after a binary
// downgrade), and "recovering" it by truncation would destroy every
// acknowledged record it holds. Refusing to open is the only safe move.
func scanWAL(path string) (recs []walRecord, validEnd int64, corruption string, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, "", err
	}
	if len(b) < walHeaderSize {
		return nil, 0, "torn file header", nil
	}
	if string(b[:len(walMagic)]) != walMagic {
		return nil, 0, "", fmt.Errorf("registry: %s is not a cupid journal (bad magic)", path)
	}
	if v := binary.BigEndian.Uint32(b[len(walMagic):walHeaderSize]); v != walVersion {
		return nil, 0, "", fmt.Errorf("registry: %s has unsupported journal version %d (this build reads %d); refusing to open rather than truncate it", path, v, walVersion)
	}
	off := int64(walHeaderSize)
	for off < int64(len(b)) {
		rec, n, derr := decodeWALRecord(b[off:])
		if derr != nil {
			return recs, off, derr.Error(), nil
		}
		recs = append(recs, rec)
		off += int64(n)
	}
	return recs, off, "", nil
}

// WALRecordBoundaries returns the byte offsets of every record boundary
// in a journal file: the offset before the first record (the header end),
// then the offset after each whole valid record. The crash-injection
// suite truncates at (and corrupts after) each of these to prove recovery
// lands on a consistent prefix; it is exported as an operational
// introspection helper for the same reason.
func WALRecordBoundaries(path string) ([]int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < walHeaderSize {
		return nil, fmt.Errorf("registry: %s: too short for a WAL header", path)
	}
	bounds := []int64{int64(walHeaderSize)}
	off := int64(walHeaderSize)
	for off < int64(len(b)) {
		_, n, derr := decodeWALRecord(b[off:])
		if derr != nil {
			break
		}
		off += int64(n)
		bounds = append(bounds, off)
	}
	return bounds, nil
}

// walFile is an open, append-only journal owned by exactly one writer
// (Persistent's group-commit loop). It tracks its own size and record
// count so the compaction trigger never needs to stat or rescan.
type walFile struct {
	f       *os.File
	path    string
	base    uint64 // snapshot generation this journal's records follow
	size    int64
	records int
	syncs   int // fsyncs issued for record appends (group-commit ratio)
	// failed poisons the journal after an append failure that could not
	// be rolled back: later records must never land behind a torn frame
	// or an unsyncable region (recovery would truncate at the damage and
	// silently discard them), so every subsequent append fails fast
	// instead. A restart recovers and reopens cleanly.
	failed bool
}

// openWAL opens (creating and preamble-initializing if needed) the
// journal for the given base generation, positioned for appending.
// records primes the record count for a file that recovery already
// scanned; pass 0 for a fresh file.
func (st *Store) openWAL(base uint64, records int) (*walFile, error) {
	path := st.walPath(base)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registry: opening WAL: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("registry: stating WAL: %w", err)
	}
	w := &walFile{f: f, path: path, base: base, size: fi.Size(), records: records}
	if w.size == 0 {
		if _, err := f.Write(appendWALHeader(nil)); err != nil {
			f.Close()
			return nil, fmt.Errorf("registry: writing WAL header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("registry: syncing WAL header: %w", err)
		}
		w.size = int64(walHeaderSize)
		syncDir(st.dir)
	} else if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("registry: seeking WAL end: %w", err)
	}
	return w, nil
}

// append writes the given records as one contiguous write followed by one
// fsync — the group-commit primitive: however many writers are batched
// into recs, durability costs a single disk barrier.
//
// Failure handling protects later batches: a failed write may have left a
// torn frame, so the batch is rolled back (truncated off) before the
// error is returned; if the rollback cannot be made — or the fsync itself
// failed, after which the kernel may silently have dropped dirty pages —
// the journal is poisoned and every later append fails fast. Nothing is
// ever appended behind damage that recovery would truncate at.
func (w *walFile) append(recs []walRecord) error {
	buf := make([]byte, 0, 256*len(recs))
	var err error
	for _, rec := range recs {
		if buf, err = appendWALRecord(buf, rec); err != nil {
			return err
		}
	}
	return w.appendEncoded(buf, len(recs))
}

// appendEncoded is append for a pre-encoded batch — the group-commit
// loop encodes records one by one so a single unencodable record fails
// only its own writer, never the whole batch.
func (w *walFile) appendEncoded(buf []byte, records int) error {
	if w.failed {
		return fmt.Errorf("registry: journal %s is failed after an earlier unrecoverable append error; restart to recover", w.path)
	}
	start := w.size
	if _, err := w.f.Write(buf); err != nil {
		w.rollback(start)
		return fmt.Errorf("registry: appending to WAL: %w", err)
	}
	w.size = start + int64(len(buf))
	if err := w.f.Sync(); err != nil {
		w.rollback(start)
		w.failed = true
		return fmt.Errorf("registry: syncing WAL: %w", err)
	}
	w.syncs++
	w.records += records
	return nil
}

// rollback cuts a failed batch back off the journal so the file never
// carries a torn frame mid-stream; if the cut cannot be made the journal
// is poisoned (recovery truncates the tear at the next open instead).
func (w *walFile) rollback(start int64) {
	if err := w.f.Truncate(start); err != nil {
		w.failed = true
		return
	}
	if _, err := w.f.Seek(start, io.SeekStart); err != nil {
		w.failed = true
		return
	}
	w.size = start
}

// Close closes the underlying file.
func (w *walFile) Close() error { return w.f.Close() }

// walPath names the journal for a base generation.
func (st *Store) walPath(base uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s%d%s", walPrefix, base, walSuffix))
}

// walSequences lists the base generations of the journal files on disk,
// ascending. Unparseable names are ignored, like snapshot names.
func (st *Store) walSequences() []uint64 {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash; failures are ignored (the caller's own fsync already
// made the data durable on filesystems that need nothing more).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
