package registry

// Doc-conformance coverage for docs/REPLICATION.md, the replication
// protocol contract: the worked byte-level stream example must decode
// with the real frame decoder to exactly the frames the prose claims,
// re-encode byte-for-byte, and every fenced JSON payload must match a
// decoded frame. If the wire format evolves, this test forces the
// specification to evolve with it.

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"
)

const replicationDocPath = "../../docs/REPLICATION.md"

func readReplicationDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(replicationDocPath)
	if err != nil {
		t.Fatalf("docs/REPLICATION.md must exist (the replication protocol contract): %v", err)
	}
	return string(b)
}

// replWorkedExampleBytes extracts the hexdump under "### Worked example"
// and reassembles the raw stream bytes.
func replWorkedExampleBytes(t *testing.T, doc string) []byte {
	t.Helper()
	_, after, found := strings.Cut(doc, "### Worked example")
	if !found {
		t.Fatal("docs/REPLICATION.md has no '### Worked example' section")
	}
	fence := regexp.MustCompile("(?s)```text\n(.*?)```")
	m := fence.FindStringSubmatch(after)
	if m == nil {
		t.Fatal("worked example has no ```text hexdump block")
	}
	hexByte := regexp.MustCompile(`^[0-9a-f]{2}$`)
	var out []byte
	for _, line := range strings.Split(strings.TrimSpace(m[1]), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("hexdump line %q has no byte columns", line)
		}
		for _, f := range fields[1:] {
			if !hexByte.MatchString(f) {
				t.Fatalf("hexdump line %q: %q is not a byte", line, f)
			}
			b, err := hex.DecodeString(f)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b...)
		}
	}
	return out
}

func TestReplicationDocWorkedExampleDecodes(t *testing.T) {
	doc := readReplicationDoc(t)
	raw := replWorkedExampleBytes(t, doc)
	if len(raw) <= replHeaderSize {
		t.Fatalf("worked example is %d bytes, shorter than the %d-byte preamble", len(raw), replHeaderSize)
	}
	// The preamble must be exactly what the streamer emits.
	if got := string(raw[:len(replMagic)]); got != replMagic {
		t.Fatalf("documented magic %q, streamer emits %q", got, replMagic)
	}
	if v := binary.BigEndian.Uint32(raw[len(replMagic):replHeaderSize]); v != replVersion {
		t.Fatalf("documented version %d, streamer emits %d", v, replVersion)
	}

	// Decode every frame with the real decoder; the example promises a
	// tail hello, one shipped delete, and a heartbeat.
	var frames []replFrame
	rest := raw[replHeaderSize:]
	for len(rest) > 0 {
		f, n, err := decodeReplFrame(rest)
		if err != nil {
			t.Fatalf("documented frame %d does not decode: %v", len(frames), err)
		}
		frames = append(frames, f)
		rest = rest[n:]
	}
	if len(frames) != 3 {
		t.Fatalf("worked example decodes to %d frames, the prose promises 3", len(frames))
	}
	hello, rec, ping := frames[0], frames[1], frames[2]
	if hello.Kind != replKindHello || hello.Resync ||
		hello.Pos != (ReplPos{Base: 3, Records: 5}) ||
		hello.Horizon == nil || *hello.Horizon != (ReplPos{Base: 3, Records: 6}) {
		t.Errorf("frame 0 decodes to %+v, the prose promises a tail hello 3/5 with horizon 3/6", hello)
	}
	if rec.Kind != replKindRec || rec.Rec == nil ||
		rec.Rec.Op != walOpDel || rec.Rec.Name != "orders" ||
		rec.Pos != (ReplPos{Base: 3, Records: 6}) {
		t.Errorf("frame 1 decodes to %+v, the prose promises del orders at 3/6", rec)
	}
	if ping.Kind != replKindPing || ping.Pos != (ReplPos{Base: 3, Records: 6}) {
		t.Errorf("frame 2 decodes to %+v, the prose promises a ping at 3/6", ping)
	}

	// Re-encoding the decoded frames must reproduce the documented bytes
	// exactly (the format has no nondeterminism).
	reenc := appendReplHeader(nil)
	for _, f := range frames {
		var err error
		reenc, err = encodeReplFrame(reenc, f)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(reenc, raw) {
		t.Errorf("re-encoding the documented frames yields\n%x\nthe doc shows\n%x", reenc, raw)
	}
}

// TestReplicationDocJSONPayloadsMatchFrames requires every fenced JSON
// example in the document to be a valid frame payload, and the three
// under the worked example to be exactly the decoded frames' payloads.
func TestReplicationDocJSONPayloadsMatchFrames(t *testing.T) {
	doc := readReplicationDoc(t)
	fence := regexp.MustCompile("(?s)```json\n(.*?)```")
	blocks := fence.FindAllStringSubmatch(doc, -1)
	if len(blocks) < 3 {
		t.Fatalf("docs/REPLICATION.md has %d json examples, expected at least the three worked-example payloads", len(blocks))
	}
	raw := replWorkedExampleBytes(t, doc)
	var payloads []string
	rest := raw[replHeaderSize:]
	for len(rest) > 0 {
		payload, n, err := decodeFrame(rest)
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, string(payload))
		rest = rest[n:]
	}
	for i, b := range blocks {
		var f replFrame
		dec := json.NewDecoder(strings.NewReader(b[1]))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&f); err != nil {
			t.Errorf("json example %d is not a frame payload: %v", i, err)
			continue
		}
		if i >= len(payloads) {
			continue
		}
		// The documented payload must be the decoded frame's payload,
		// modulo whitespace: re-marshal both compactly.
		var want, got any
		if err := json.Unmarshal([]byte(payloads[i]), &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(b[1]), &got); err != nil {
			t.Fatal(err)
		}
		wantC, _ := json.Marshal(want)
		gotC, _ := json.Marshal(got)
		if !bytes.Equal(wantC, gotC) {
			t.Errorf("json example %d is %s, the stream's frame %d payload is %s", i, gotC, i, wantC)
		}
	}
}

// TestReplicationDocConstants pins the names and notations the prose
// leans on, so a rename in the implementation surfaces here.
func TestReplicationDocConstants(t *testing.T) {
	doc := readReplicationDoc(t)
	for _, want := range []string{
		"`CUPIDREP`", "replpos.json", "CRC-32", "base/records",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/REPLICATION.md does not mention %s", want)
		}
	}
}
