package registry

// Godoc hygiene for the repository layer: every exported symbol in
// internal/registry and internal/index must carry a doc comment (the
// per-symbol half of what check.sh's package-comment gate enforces at
// package granularity), and the package docs must not describe a
// pre-sharded registry — the audit that caught PR 4's stale comments,
// kept as a test so they cannot regress.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// exportedDocTargets parses a package directory (tests excluded) and
// reports every exported top-level symbol lacking a doc comment.
func exportedDocTargets(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	for _, pkg := range pkgs {
		for fname, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						missing = append(missing, fname+": func "+d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
								missing = append(missing, fname+": type "+s.Name.Name)
							}
							// Exported fields of exported structs need docs
							// too (the registry's option structs are contract
							// surface).
							if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
								for _, fld := range st.Fields.List {
									for _, n := range fld.Names {
										if n.IsExported() && fld.Doc == nil && fld.Comment == nil {
											missing = append(missing, fname+": field "+s.Name.Name+"."+n.Name)
										}
									}
								}
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									missing = append(missing, fname+": "+n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing
}

func TestExportedSymbolsAreDocumented(t *testing.T) {
	for _, dir := range []string{".", "../index"} {
		for _, m := range exportedDocTargets(t, dir) {
			t.Errorf("exported symbol without a doc comment: %s", m)
		}
	}
}

// TestNoStaleSingleMapDocs greps the non-test sources for wording that
// described the pre-sharded, single-mutex registry ("a single map guarded
// by one RWMutex"): since PR 4 the repository is 16 name-hashed shards
// and any comment claiming otherwise misleads.
func TestNoStaleSingleMapDocs(t *testing.T) {
	stale := []string{
		"single map",
		"one RWMutex",
		"a global lock",
		"the registry mutex",
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		src := strings.ToLower(string(b))
		for _, phrase := range stale {
			if strings.Contains(src, phrase) {
				t.Errorf("%s still describes the pre-sharded registry (%q)", name, phrase)
			}
		}
	}
}
