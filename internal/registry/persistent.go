package registry

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// Persistent is a Registry whose contents survive restarts. It embeds the
// in-memory Registry — matching (MatchAll, MatchTop, Get, List) is served
// straight from memory at the same cost — and journals every mutation's
// source document to a Store snapshot.
//
// Two durability modes, chosen by the snapshot interval:
//
//   - interval == 0 (synchronous): every Register/Remove writes and fsyncs
//     a full snapshot before returning. A mutation that was acknowledged is
//     on disk.
//   - interval > 0 (batched): mutations mark the repository dirty and a
//     background writer snapshots at most once per interval; Close (and
//     Flush) write any pending state. A crash can lose at most the last
//     interval's mutations — the store still guarantees the surviving
//     snapshot is a consistent point-in-time image, never a torn one.
//
// Mutations are serialized by an internal lock so the persisted document
// set can never disagree with the in-memory registry; reads and matching
// never take that lock.
type Persistent struct {
	*Registry
	store    *Store
	interval time.Duration

	mu    sync.Mutex // serializes mutations + snapshot state
	docs  map[string]Doc
	dirty bool

	wg   sync.WaitGroup
	stop chan struct{}

	errMu   sync.Mutex
	saveErr error // first background snapshot failure, surfaced on Close
}

// OpenPersistent opens the data directory, restores the newest consistent
// snapshot into a fresh registry around the given matcher, and returns the
// durable registry. Warnings describe snapshots that had to be skipped
// (e.g. a torn write recovered from). A nil parse restricts persisted
// documents to the native "json" format.
func OpenPersistent(dir string, m *core.Matcher, interval time.Duration, parse ParseFunc) (p *Persistent, warnings []string, err error) {
	st, err := OpenStore(dir, parse)
	if err != nil {
		return nil, nil, err
	}
	loaded, warnings, err := st.Load()
	if err != nil {
		return nil, warnings, err
	}
	p = &Persistent{
		Registry: NewWithMatcher(m),
		store:    st,
		interval: interval,
		docs:     make(map[string]Doc, len(loaded)),
		stop:     make(chan struct{}),
	}
	for _, l := range loaded {
		e, _, err := p.Registry.Register(l.Doc.Name, l.Schema)
		if err != nil {
			return nil, warnings, fmt.Errorf("registry: restoring %q: %w", l.Doc.Name, err)
		}
		// Keep the original document; refresh the fingerprint to the one
		// the restored entry actually carries (identical for source-doc
		// registrations, normalized once for native-JSON fallbacks).
		d := l.Doc
		d.Fingerprint = e.Fingerprint
		p.docs[e.Name] = d
	}
	if interval > 0 {
		p.wg.Add(1)
		go p.writer()
	}
	return p, warnings, nil
}

// writer is the batched-mode background snapshotter.
func (p *Persistent) writer() {
	defer p.wg.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := p.Flush(); err != nil {
				p.noteErr(err)
			}
		case <-p.stop:
			return
		}
	}
}

func (p *Persistent) noteErr(err error) {
	p.errMu.Lock()
	if p.saveErr == nil {
		p.saveErr = err
	}
	p.errMu.Unlock()
}

// Err returns the first background snapshot failure, if any (batched mode
// only; synchronous mode returns failures from the mutation itself).
func (p *Persistent) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.saveErr
}

// snapshotLocked writes the current document set; callers hold p.mu.
func (p *Persistent) snapshotLocked() error {
	docs := make([]Doc, 0, len(p.docs))
	for _, d := range p.docs {
		docs = append(docs, d)
	}
	if err := p.store.Save(docs); err != nil {
		return err
	}
	p.dirty = false
	return nil
}

// noteMutationLocked persists per the durability mode; callers hold p.mu.
// The dirty flag is raised before a synchronous snapshot attempt (and
// cleared only by a successful one), so a failed write leaves the
// repository marked un-persisted and a later mutation, Flush or Close
// retries it — otherwise a transient disk error would strand acknowledged
// in-memory state ahead of disk forever.
func (p *Persistent) noteMutationLocked() error {
	p.dirty = true
	if p.interval == 0 {
		return p.snapshotLocked()
	}
	return nil
}

// RegisterSource parses a source document and registers the schema under
// the given name (the schema's own name when empty), persisting the
// document bytes verbatim so a restart re-parses exactly what was
// registered. This is the durable path the cupidd server uses.
func (p *Persistent) RegisterSource(name, format string, content []byte) (*Entry, bool, error) {
	s, err := p.store.parse(name, format, content)
	if err != nil {
		return nil, false, err
	}
	return p.register(name, s, func(e *Entry) (Doc, error) {
		return Doc{Name: e.Name, Fingerprint: e.Fingerprint, Format: format, Content: string(content)}, nil
	})
}

// Register registers an in-memory schema graph, persisting its native JSON
// serialization. See Store: the first reload of such an entry may
// normalize its fingerprint; registering via RegisterSource avoids that.
func (p *Persistent) Register(name string, s *model.Schema) (*Entry, bool, error) {
	return p.register(name, s, func(e *Entry) (Doc, error) {
		b, err := e.Prepared.Schema().MarshalJSON()
		if err != nil {
			return Doc{}, fmt.Errorf("registry: serializing %q for persistence: %w", e.Name, err)
		}
		return Doc{Name: e.Name, Fingerprint: e.Fingerprint, Format: "json", Content: string(b)}, nil
	})
}

func (p *Persistent) register(name string, s *model.Schema, doc func(*Entry) (Doc, error)) (*Entry, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, created, err := p.Registry.Register(name, s)
	if err != nil {
		return nil, false, err
	}
	if !created {
		if _, ok := p.docs[e.Name]; ok {
			// Idempotent re-registration: nothing new to persist — unless an
			// earlier synchronous snapshot failed, in which case this is the
			// retry that must land the state on disk before acknowledging.
			if p.dirty && p.interval == 0 {
				return e, false, p.snapshotLocked()
			}
			return e, false, nil
		}
	}
	d, err := doc(e)
	if err != nil {
		return e, created, err
	}
	p.docs[e.Name] = d
	if err := p.noteMutationLocked(); err != nil {
		return e, created, fmt.Errorf("registry: registered %q but persisting failed: %w", e.Name, err)
	}
	return e, created, nil
}

// Remove deletes the entry and persists the removal, reporting whether the
// entry existed.
func (p *Persistent) Remove(name string) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.Registry.Remove(name) {
		return false, nil
	}
	delete(p.docs, name)
	if err := p.noteMutationLocked(); err != nil {
		return true, fmt.Errorf("registry: removed %q but persisting failed: %w", name, err)
	}
	return true, nil
}

// Flush snapshots now if there are unpersisted mutations.
func (p *Persistent) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.dirty {
		return nil
	}
	return p.snapshotLocked()
}

// Close stops the background writer (batched mode), flushes pending state,
// and surfaces any earlier background snapshot failure. The registry
// remains usable in memory after Close, but nothing persists anymore.
func (p *Persistent) Close() error {
	select {
	case <-p.stop:
		// already closed
	default:
		close(p.stop)
	}
	p.wg.Wait()
	if err := p.Flush(); err != nil {
		return err
	}
	return p.Err()
}
