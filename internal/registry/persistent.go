package registry

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/instance"
	"repro/internal/model"
)

// Persistent is a Registry whose contents survive restarts. It embeds the
// in-memory Registry — matching (MatchAll, MatchTop, MatchIndexed, Get,
// List) is served straight from memory at the same cost — and makes every
// mutation's source document durable through one of two write paths:
//
//   - WAL mode (PersistOptions.WAL, the default the cupidd server runs):
//     each Register/Replace/Remove appends one checksummed,
//     length-prefixed record to an append-only journal. A group-commit
//     loop batches concurrent writers into a single fsync — write cost is
//     O(record), not O(corpus) — and a background compactor folds the
//     journal tail into a fresh snapshot generation once it passes a
//     size/record threshold. An acknowledged mutation is on disk.
//   - Snapshot mode (legacy): every mutation rewrites and fsyncs a full
//     snapshot before returning (interval 0), or mutations mark the
//     repository dirty and a background writer snapshots at most once per
//     SnapshotInterval, flushing on Close. A crash can lose at most the
//     last interval's mutations.
//
// Both modes recover identically (Store.Recover): newest consistent
// snapshot + ordered journal tail replay, so a data directory written by
// either mode opens under the other. docs/PERSISTENCE.md specifies the
// on-disk formats, fsync points and crash matrix.
//
// Mutations are serialized by an internal lock so the persisted document
// set can never disagree with the in-memory registry; reads and matching
// never take that lock. In WAL mode the lock covers only the in-memory
// commit and the journal enqueue — the fsync wait happens outside it,
// which is what lets concurrent writers share one disk barrier. After
// Close every mutation fails; reads keep serving the in-memory state.
type Persistent struct {
	*Registry
	store *Store
	opts  PersistOptions

	mu      sync.Mutex // serializes mutations + snapshot/journal state
	docs    map[string]Doc
	dirty   bool
	closed  bool
	pending []walReq // WAL mode: records awaiting the next group commit
	// unjournaled marks names whose latest in-memory mutation has not
	// been confirmed durable yet (the record is in flight or its commit
	// failed). An idempotent re-registration (or a Remove of an absent
	// name) consults it and re-journals instead of acknowledging —
	// otherwise a client retrying a failed mutation would get success
	// while nothing ever reached the journal. A confirmed commit clears
	// its own marker only (generation-matched, so a stale waiter can
	// never erase a newer in-flight mutation's marker), which keeps the
	// common idempotent re-register of durable content a free no-op.
	unjournaled map[string]pendingMark
	// markGen stamps each mutation's marker; bumped under mu.
	markGen uint64

	kick       chan struct{} // signals the committer that pending is non-empty
	stop       chan struct{}
	wg         sync.WaitGroup // committer (WAL) / interval writer (snapshot)
	compacting atomic.Bool    // one background compaction at a time
	compactWG  sync.WaitGroup

	wal *walFile // owned by the committer once it starts
	// hub fans committed journal records out to replication followers
	// (repl.go); non-nil exactly in WAL mode. The committer publishes each
	// batch after its fsync and rebases the hub when compaction rotates
	// the journal.
	hub *replHub

	closeOnce sync.Once
	closeErr  error

	errMu   sync.Mutex
	saveErr error // first background persistence failure, surfaced on Close
}

// walReq is one writer waiting for its record to become durable: the
// group-commit loop appends rec and delivers the fsync outcome on done.
type walReq struct {
	rec  walRecord
	done chan error
}

// pendingMark is one name's unconfirmed mutation: which generation of
// mutation it is (monotonic across all names) and what kind. The
// invariant, maintained under p.mu: a put marker exists only while
// p.docs holds the name, a del marker only while it does not.
type pendingMark struct {
	gen uint64
	op  string // walOpPut or walOpDel
}

// PersistOptions selects and tunes the durability mode; the zero value is
// legacy synchronous snapshot mode and DefaultPersistOptions is the WAL.
type PersistOptions struct {
	// WAL selects the write-ahead-journal mode. When false the legacy
	// snapshot modes apply, chosen by SnapshotInterval.
	WAL bool
	// SnapshotInterval batches legacy-mode snapshots: 0 snapshots
	// synchronously on every mutation, > 0 at most once per interval.
	// Ignored in WAL mode.
	SnapshotInterval time.Duration
	// GroupCommitWindow is how long the WAL committer lingers after the
	// first writer of a batch arrives, letting concurrent writers join the
	// same fsync. 0 still group-commits: everything queued while the
	// previous fsync was in flight shares the next one.
	GroupCommitWindow time.Duration
	// CompactBytes triggers background compaction: once the live journal
	// reaches this many bytes, its tail is folded into a new snapshot
	// generation. Zero takes the default (1 MiB).
	CompactBytes int64
	// CompactRecords is the record-count compaction trigger, reached
	// first on corpora of tiny documents. Zero takes the default (4096).
	CompactRecords int
}

// DefaultCompactBytes and DefaultCompactRecords are the compaction
// thresholds used when PersistOptions leaves them zero.
const (
	DefaultCompactBytes   = 1 << 20
	DefaultCompactRecords = 4096
)

// DefaultPersistOptions is WAL mode with the default compaction
// thresholds and no extra group-commit linger — the configuration cupidd
// runs unless flagged otherwise.
func DefaultPersistOptions() PersistOptions {
	return PersistOptions{WAL: true, CompactBytes: DefaultCompactBytes, CompactRecords: DefaultCompactRecords}
}

// normalized fills zero thresholds and clamps negative durations.
func (o PersistOptions) normalized() PersistOptions {
	if o.CompactBytes <= 0 {
		o.CompactBytes = DefaultCompactBytes
	}
	if o.CompactRecords <= 0 {
		o.CompactRecords = DefaultCompactRecords
	}
	if o.SnapshotInterval < 0 {
		o.SnapshotInterval = 0
	}
	if o.GroupCommitWindow < 0 {
		o.GroupCommitWindow = 0
	}
	return o
}

// OpenPersistent opens the data directory in legacy snapshot mode — kept
// for callers of the pre-WAL API. See OpenPersistentOptions.
func OpenPersistent(dir string, m *core.Matcher, interval time.Duration, parse ParseFunc) (p *Persistent, warnings []string, err error) {
	return OpenPersistentOptions(dir, m, PersistOptions{SnapshotInterval: interval}, parse)
}

// OpenPersistentOptions opens the data directory, recovers the repository
// (newest consistent snapshot + ordered journal tail replay) into a fresh
// registry around the given matcher, and returns the durable registry in
// the requested mode. Warnings describe everything recovery skipped,
// truncated or deleted (e.g. a torn journal tail). A nil parse restricts
// persisted documents to the native "json" format.
//
// A legacy data directory (snapshots only) is a valid generation under
// WAL mode: the newest snapshot becomes the journal's base generation and
// a fresh wal-<seq>.log is created beside it on the first mutation.
func OpenPersistentOptions(dir string, m *core.Matcher, opts PersistOptions, parse ParseFunc) (p *Persistent, warnings []string, err error) {
	st, err := OpenStore(dir, parse)
	if err != nil {
		return nil, nil, err
	}
	rec, err := st.Recover()
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	p = &Persistent{
		Registry:    NewWithMatcher(m),
		store:       st,
		opts:        opts.normalized(),
		docs:        make(map[string]Doc, len(rec.Docs)),
		unjournaled: make(map[string]pendingMark),
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}
	var famDoc *Doc
	for _, l := range rec.Docs {
		if l.Schema == nil && metaDoc(l.Doc.Format) {
			// Repository metadata rides the same recovery stream but is
			// installed after the schema registrations (below), so the
			// staleness clock it records covers the whole recovered corpus.
			d := l.Doc
			famDoc = &d
			continue
		}
		// Recover the sampled-instances payload, when the document carries
		// one, so restored entries rebuild the same value profiles (and
		// the same profile-suffixed fingerprints) the primary registered
		// with. A payload that no longer parses is dropped with a warning
		// rather than failing recovery — the schema itself is still good.
		var samples instance.Samples
		if l.Doc.Instances != "" {
			var serr error
			samples, serr = instance.ParseSamples([]byte(l.Doc.Instances))
			if serr != nil {
				rec.Warnings = append(rec.Warnings, fmt.Sprintf("dropping instance payload of %q: %v", l.Doc.Name, serr))
			}
		}
		e, _, err := p.Registry.RegisterInstances(l.Doc.Name, l.Schema, samples)
		if err != nil {
			st.Close()
			return nil, rec.Warnings, fmt.Errorf("registry: restoring %q: %w", l.Doc.Name, err)
		}
		// Keep the original document; refresh the fingerprint to the one
		// the restored entry actually carries (identical for source-doc
		// registrations, normalized once for native-JSON fallbacks).
		d := l.Doc
		d.Fingerprint = e.Fingerprint
		p.docs[e.Name] = d
	}
	if famDoc != nil {
		// An undecodable clustering is dropped with a warning, never fatal:
		// the registry serves fine without one (the planner just routes
		// indexed), and the next compaction stops persisting it.
		if err := p.Registry.SetFamiliesJSON([]byte(famDoc.Content)); err != nil {
			rec.Warnings = append(rec.Warnings, fmt.Sprintf("dropping persisted corpus clustering: %v", err))
		} else {
			p.docs[famDoc.Name] = *famDoc
		}
	}
	switch {
	case p.opts.WAL:
		w, err := st.openWAL(rec.WALBase, rec.WALRecords)
		if err != nil {
			st.Close()
			return nil, rec.Warnings, err
		}
		p.wal = w
		// Prime the replication replay buffer with the live journal's
		// recovered records, so a follower whose checkpoint predates this
		// restart can still resume as a tail instead of a full resync.
		var primed []walRecord
		if rec.WALRecords > 0 {
			if recs, _, _, err := scanWAL(st.walPath(rec.WALBase)); err == nil {
				primed = recs
			}
		}
		p.hub = newReplHub(rec.WALBase, primed)
		p.wg.Add(1)
		go p.committer()
	case p.opts.SnapshotInterval > 0:
		p.wg.Add(1)
		go p.writer()
	}
	return p, rec.Warnings, nil
}

// writer is the legacy batched-mode background snapshotter.
func (p *Persistent) writer() {
	defer p.wg.Done()
	t := time.NewTicker(p.opts.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := p.Flush(); err != nil {
				p.noteErr(err)
			}
		case <-p.stop:
			return
		}
	}
}

// committer is the WAL group-commit loop: the journal's only writer. Each
// round it takes every record queued so far (optionally lingering
// GroupCommitWindow to let more concurrent writers join), appends them as
// one write + one fsync, acknowledges every waiter with the outcome, and
// triggers compaction when the journal has outgrown its threshold.
func (p *Persistent) committer() {
	defer p.wg.Done()
	for {
		stopping := false
		select {
		case <-p.kick:
		case <-p.stop:
			stopping = true
		}
		if !stopping && p.opts.GroupCommitWindow > 0 {
			t := time.NewTimer(p.opts.GroupCommitWindow)
			select {
			case <-t.C:
			case <-p.stop:
				t.Stop()
			}
		}
		p.commitPending()
		if stopping {
			// Close set closed (rejecting new enqueues) before closing
			// stop, so the drain above was complete: every acknowledged
			// waiter has its outcome and the journal is quiescent.
			return
		}
	}
}

// commitPending performs one group commit: swap out the queue, append
// the batch in one write + fsync, deliver the shared outcome to every
// batched writer. Records are encoded one by one so a record that cannot
// be encoded (e.g. beyond the record size limit) fails only its own
// writer — the rest of the batch still commits.
func (p *Persistent) commitPending() {
	p.mu.Lock()
	batch := p.pending
	p.pending = nil
	p.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	buf := make([]byte, 0, 256*len(batch))
	good := batch[:0]
	for _, r := range batch {
		next, err := appendWALRecord(buf, r.rec)
		if err != nil {
			r.done <- err
			continue
		}
		buf = next
		good = append(good, r)
	}
	if len(good) == 0 {
		return
	}
	err := p.wal.appendEncoded(buf, len(good))
	if err != nil {
		p.noteErr(err)
	}
	if err == nil {
		// Publish to replication followers only after the fsync: a
		// follower must never see a record the primary could still lose.
		recs := make([]walRecord, len(good))
		for i, r := range good {
			recs[i] = r.rec
		}
		p.hub.publish(recs)
	}
	for _, r := range good {
		r.done <- err
	}
	if err == nil {
		p.maybeCompact()
	}
}

// maybeCompact rotates the journal and folds its tail into a new snapshot
// generation once a threshold is passed. The rotation (cheap: create the
// next journal, swap the committer's handle) happens inline so record
// order is never split across an ambiguous boundary; the expensive part —
// writing the snapshot — runs in a background goroutine, so writers keep
// committing into the fresh journal meanwhile. Runs on the committer
// goroutine only.
//
// Crash-ordering: the new journal exists before the snapshot that
// supersedes the old one, so recovery always finds either (old snapshot +
// both journal tails) or (new snapshot + new tail) — never a gap. See
// docs/PERSISTENCE.md's crash matrix.
func (p *Persistent) maybeCompact() {
	if p.wal.size < p.opts.CompactBytes && p.wal.records < p.opts.CompactRecords {
		return
	}
	if !p.compacting.CompareAndSwap(false, true) {
		return // previous compaction still writing its snapshot
	}
	newBase := p.wal.base + 1
	nw, err := p.store.openWAL(newBase, 0)
	if err != nil {
		p.noteErr(fmt.Errorf("registry: rotating journal: %w", err))
		p.compacting.Store(false)
		return
	}
	old := p.wal
	p.wal = nw
	old.Close()
	// Rebase the replication buffer: followers tailing the old generation
	// fall back to a snapshot resync, exactly as a follower reconnecting
	// after the compaction would.
	p.hub.rotate(newBase)
	// The document set to fold: copied under the mutation lock *after* the
	// rotation, so it covers every record in the old journal (their
	// in-memory commits happened before their enqueue, which happened
	// before the committer appended them, which happened before now).
	// Records already queued for the new journal may also be included —
	// replay is last-writer-wins, so re-applying them is a no-op.
	p.mu.Lock()
	docs := make([]Doc, 0, len(p.docs))
	for _, d := range p.docs {
		docs = append(docs, d)
	}
	p.mu.Unlock()
	p.compactWG.Add(1)
	go func() {
		defer p.compactWG.Done()
		defer p.compacting.Store(false)
		// SaveAt also prunes snapshots beyond the retained window and the
		// journals they supersede; the old journal is deleted only once a
		// newer retained snapshot covers it.
		if err := p.store.SaveAt(newBase, docs); err != nil {
			p.noteErr(fmt.Errorf("registry: compaction: %w", err))
		}
	}()
}

func (p *Persistent) noteErr(err error) {
	p.errMu.Lock()
	if p.saveErr == nil {
		p.saveErr = err
	}
	p.errMu.Unlock()
}

// Doc returns the persisted source document registered under name — the
// exact bytes a restart (or a replication follower) re-parses. The
// cluster router uses it to resolve a by-name batch source into an
// inline document it can scatter to every shard.
func (p *Persistent) Doc(name string) (Doc, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.docs[name]
	return d, ok
}

// Compacting reports whether a background journal compaction is
// currently folding the journal tail into a new snapshot generation. The
// server's readiness probe consults it: a replica still writing its
// compaction snapshot is serving but not yet a clean handoff point.
func (p *Persistent) Compacting() bool { return p.compacting.Load() }

// Err returns the first background persistence failure, if any: a
// batched-mode snapshot write, a WAL compaction, or a group-commit append
// (which every batched writer also received synchronously).
func (p *Persistent) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.saveErr
}

// snapshotLocked writes the current document set; callers hold p.mu.
func (p *Persistent) snapshotLocked() error {
	docs := make([]Doc, 0, len(p.docs))
	for _, d := range p.docs {
		docs = append(docs, d)
	}
	if err := p.store.Save(docs); err != nil {
		return err
	}
	p.dirty = false
	return nil
}

// noteMutationLocked persists per the legacy durability mode; callers
// hold p.mu. The dirty flag is raised before a synchronous snapshot
// attempt (and cleared only by a successful one), so a failed write
// leaves the repository marked un-persisted and a later mutation, Flush
// or Close retries it — otherwise a transient disk error would strand
// acknowledged in-memory state ahead of disk forever.
func (p *Persistent) noteMutationLocked() error {
	p.dirty = true
	if p.opts.SnapshotInterval == 0 {
		return p.snapshotLocked()
	}
	return nil
}

// enqueueLocked queues one journal record for the next group commit and
// wakes the committer; callers hold p.mu and wait on the returned channel
// for the fsync outcome after releasing it.
func (p *Persistent) enqueueLocked(rec walRecord) chan error {
	done := make(chan error, 1)
	p.pending = append(p.pending, walReq{rec: rec, done: done})
	select {
	case p.kick <- struct{}{}:
	default:
	}
	return done
}

// errClosed is returned by mutations after Close.
func errClosed() error { return fmt.Errorf("registry: persistent registry is closed") }

// RegisterSource parses a source document and registers the schema under
// the given name (the schema's own name when empty), persisting the
// document bytes verbatim so a restart re-parses exactly what was
// registered. This is the durable path the cupidd server uses.
func (p *Persistent) RegisterSource(name, format string, content []byte) (*Entry, bool, error) {
	return p.RegisterSourceInstances(name, format, content, nil)
}

// RegisterSourceInstances is RegisterSource with an optional sampled
// instance payload (internal/instance JSON form). The instance bytes are
// journaled alongside the source document, so a restart — and every
// replication follower — rebuilds the same value profiles the primary
// registered with. Empty instances degrade to plain RegisterSource.
func (p *Persistent) RegisterSourceInstances(name, format string, content, instances []byte) (*Entry, bool, error) {
	if name == FamiliesDocName || metaDoc(format) {
		return nil, false, fmt.Errorf("registry: name %q / format %q is reserved for corpus clustering metadata", FamiliesDocName, FamiliesDocFormat)
	}
	s, err := p.store.parse(name, format, content)
	if err != nil {
		return nil, false, err
	}
	var samples instance.Samples
	if len(instances) > 0 {
		samples, err = instance.ParseSamples(instances)
		if err != nil {
			return nil, false, fmt.Errorf("registry: instances for %q: %w", name, err)
		}
	}
	return p.register(name, s, samples, func(e *Entry) (Doc, error) {
		return Doc{Name: e.Name, Fingerprint: e.Fingerprint, Format: format, Content: string(content), Instances: string(instances)}, nil
	})
}

// Register registers an in-memory schema graph, persisting its native JSON
// serialization. See Store: the first reload of such an entry may
// normalize its fingerprint; registering via RegisterSource avoids that.
func (p *Persistent) Register(name string, s *model.Schema) (*Entry, bool, error) {
	return p.register(name, s, nil, func(e *Entry) (Doc, error) {
		b, err := e.Prepared.Schema().MarshalJSON()
		if err != nil {
			return Doc{}, fmt.Errorf("registry: serializing %q for persistence: %w", e.Name, err)
		}
		return Doc{Name: e.Name, Fingerprint: e.Fingerprint, Format: "json", Content: string(b)}, nil
	})
}

func (p *Persistent) register(name string, s *model.Schema, samples instance.Samples, doc func(*Entry) (Doc, error)) (*Entry, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, errClosed()
	}
	e, created, err := p.Registry.RegisterInstances(name, s, samples)
	if err != nil {
		p.mu.Unlock()
		return nil, false, err
	}
	if !created {
		if cur, ok := p.docs[e.Name]; ok {
			if p.opts.WAL {
				// Idempotent re-registration: free when the content is
				// confirmed durable. A pending marker means the original
				// commit failed or is still in flight, and an
				// acknowledgment re-promises durability — so this is the
				// retry that must land a fresh record first (replay
				// dedups duplicates last-writer-wins).
				if _, pending := p.unjournaled[e.Name]; !pending {
					p.mu.Unlock()
					return e, false, nil
				}
				return e, false, p.journalPutLocked(cur, "re-registered")
			}
			// Legacy: nothing new to persist — unless an earlier
			// synchronous snapshot failed, in which case this is the retry
			// that must land the state on disk before acknowledging.
			if p.dirty && p.opts.SnapshotInterval == 0 {
				err := p.snapshotLocked()
				p.mu.Unlock()
				return e, false, err
			}
			p.mu.Unlock()
			return e, false, nil
		}
	}
	d, err := doc(e)
	if err != nil {
		p.mu.Unlock()
		return e, created, err
	}
	p.docs[e.Name] = d
	if !p.opts.WAL {
		err := p.noteMutationLocked()
		p.mu.Unlock()
		if err != nil {
			return e, created, fmt.Errorf("registry: registered %q but persisting failed: %w", e.Name, err)
		}
		return e, created, nil
	}
	return e, created, p.journalPutLocked(d, "registered")
}

// markLocked stamps a fresh unconfirmed-mutation marker for name;
// callers hold p.mu.
func (p *Persistent) markLocked(name, op string) pendingMark {
	p.markGen++
	mark := pendingMark{gen: p.markGen, op: op}
	p.unjournaled[name] = mark
	return mark
}

// clearMark removes name's marker if — and only if — it is still this
// exact mutation's: a later mutation of the name overwrote the marker
// with a higher generation, and a stale waiter confirming an older
// record must not erase the newer mutation's durability debt.
func (p *Persistent) clearMark(name string, mark pendingMark) {
	p.mu.Lock()
	if cur, ok := p.unjournaled[name]; ok && cur.gen == mark.gen {
		delete(p.unjournaled, name)
	}
	p.mu.Unlock()
}

// journalPutLocked commits one put record: marker raised, record
// enqueued, lock released, fsync outcome awaited. The caller holds p.mu
// on entry; it is released on every path. The in-memory commit and the
// enqueue share the critical section (so journal order always equals
// commit order), but the fsync wait happens outside it — concurrent
// writers batch into one group commit. A failed commit leaves the marker
// standing, so the mutation stays flagged as undurable until a retry
// confirms a fresh record.
func (p *Persistent) journalPutLocked(d Doc, verb string) error {
	mark := p.markLocked(d.Name, walOpPut)
	done := p.enqueueLocked(putRecord(d))
	p.mu.Unlock()
	if err := <-done; err != nil {
		return fmt.Errorf("registry: %s %q but journaling failed: %w", verb, d.Name, err)
	}
	p.clearMark(d.Name, mark)
	return nil
}

// familiesFingerprint derives the reserved metadata document's
// fingerprint from its canonical bytes, so idempotence and replication
// diffing work the same way they do for schema documents.
func familiesFingerprint(raw []byte) string {
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("corpus-%016x", h.Sum64())
}

// StoreFamilies validates and installs a corpus clustering result and
// persists its canonical bytes as the reserved metadata document — one
// journaled put through the ordinary WAL/snapshot path, so the clustering
// survives restarts, folds into compaction snapshots, and streams to
// replication followers like any other acknowledged mutation.
func (p *Persistent) StoreFamilies(res *corpus.Result) error {
	if res == nil {
		return fmt.Errorf("registry: storing nil corpus clustering")
	}
	raw, err := res.Encode()
	if err != nil {
		return err
	}
	return p.storeFamiliesJSON(raw)
}

// storeFamiliesJSON is StoreFamilies on canonical bytes — also the
// replication apply path (applyFamiliesDoc), which must journal exactly
// the primary's bytes locally so a follower's own restart and its own
// followers see the identical clustering.
func (p *Persistent) storeFamiliesJSON(raw []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errClosed()
	}
	if err := p.Registry.SetFamiliesJSON(raw); err != nil {
		p.mu.Unlock()
		return err
	}
	d := Doc{Name: FamiliesDocName, Fingerprint: familiesFingerprint(raw), Format: FamiliesDocFormat, Content: string(raw)}
	identical := false
	if cur, ok := p.docs[d.Name]; ok && cur.Content == d.Content {
		identical = true
	}
	p.docs[d.Name] = d
	if identical {
		if p.opts.WAL {
			// Same idempotence contract as re-registration: free when the
			// content is confirmed durable, a fresh record when a pending
			// marker says the earlier commit never confirmed.
			if _, pending := p.unjournaled[d.Name]; !pending {
				p.mu.Unlock()
				return nil
			}
		} else if !(p.dirty && p.opts.SnapshotInterval == 0) {
			p.mu.Unlock()
			return nil
		}
	}
	if !p.opts.WAL {
		err := p.noteMutationLocked()
		p.mu.Unlock()
		if err != nil {
			return fmt.Errorf("registry: installed corpus clustering but persisting failed: %w", err)
		}
		return nil
	}
	return p.journalPutLocked(d, "installed corpus clustering")
}

// applyFamiliesDoc installs a clustering document received from
// replication (a streamed put record or a resync snapshot doc),
// journaling it locally with the primary's exact content bytes.
func (p *Persistent) applyFamiliesDoc(d Doc) error {
	return p.storeFamiliesJSON([]byte(d.Content))
}

// Remove deletes the entry and persists the removal, reporting whether the
// entry existed.
func (p *Persistent) Remove(name string) (bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false, errClosed()
	}
	existed := p.Registry.Remove(name)
	if existed {
		delete(p.docs, name)
	}
	if !existed && name == FamiliesDocName {
		// The reserved metadata document never lives in the entry shards;
		// removing it clears the installed clustering (planner falls back
		// to indexed) and journals an ordinary del record.
		if _, ok := p.docs[name]; ok {
			p.Registry.ClearFamilies()
			delete(p.docs, name)
			existed = true
		}
	}
	if !p.opts.WAL {
		if !existed {
			p.mu.Unlock()
			return false, nil
		}
		err := p.noteMutationLocked()
		p.mu.Unlock()
		if err != nil {
			return true, fmt.Errorf("registry: removed %q but persisting failed: %w", name, err)
		}
		return true, nil
	}
	// WAL mode: journal the deletion if the entry existed now, or if an
	// earlier removal of this name is not yet confirmed durable — a
	// retried Remove must land the del record before "already gone" can
	// be an acknowledgment. The marker is stamped pessimistically before
	// the commit (superseding any unconfirmed put of the name) and
	// cleared only generation-matched on a confirmed one, so a concurrent
	// Remove racing an in-flight del also waits for real durability.
	if !existed {
		if cur, ok := p.unjournaled[name]; !ok || cur.op != walOpDel {
			p.mu.Unlock()
			return false, nil
		}
	}
	mark := p.markLocked(name, walOpDel)
	done := p.enqueueLocked(delRecord(name))
	p.mu.Unlock()
	if err := <-done; err != nil {
		return existed, fmt.Errorf("registry: removed %q but journaling failed: %w", name, err)
	}
	p.clearMark(name, mark)
	return existed, nil
}

// Flush snapshots now if there are unpersisted legacy-mode mutations. In
// WAL mode it is a no-op: every acknowledged mutation is already durable.
func (p *Persistent) Flush() error {
	if p.opts.WAL {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.dirty {
		return nil
	}
	return p.snapshotLocked()
}

// Close makes the registry stop persisting and reports the first
// persistence failure, if any. It is idempotent and safe to call
// concurrently: every call returns the same outcome, after the shutdown
// fully completed. The sequence drains, in order: new mutations are
// rejected, the background loop (group-commit committer or interval
// writer) finishes its in-flight work and exits, any in-flight compaction
// completes, pending legacy-mode state is flushed, and the data directory
// lock is released (another process may open it). The registry remains
// readable in memory after Close; mutations fail.
func (p *Persistent) Close() error {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		close(p.stop)
		p.wg.Wait()
		p.compactWG.Wait()
		if p.opts.WAL {
			if err := p.wal.Close(); err != nil && !p.wal.failed {
				p.noteErr(fmt.Errorf("registry: closing journal: %w", err))
			}
		} else {
			// The writer goroutine (if any) has exited: this flush cannot
			// race an interval snapshot, and a failed interval write is
			// retried here rather than lost.
			p.mu.Lock()
			if p.dirty {
				if err := p.snapshotLocked(); err != nil {
					p.noteErr(err)
				}
			}
			p.mu.Unlock()
		}
		if err := p.store.Close(); err != nil {
			p.noteErr(fmt.Errorf("registry: releasing data dir lock: %w", err))
		}
		p.closeErr = p.Err()
	})
	return p.closeErr
}
