package registry

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/workloads"
)

func TestMatchIndexedSmallRepositoryEqualsFullScan(t *testing.T) {
	r := newTestRegistry(t)
	prunedCorpus(t, r, 8) // below MinCandidates: retrieval must not engage
	probe, err := r.Matcher().Prepare(workloads.Figure2().Source)
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.MatchAll(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	indexed, st, err := r.MatchIndexed(probe, 0, DefaultPruneOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, full, indexed)
	if st.Indexed {
		t.Error("small repository should fall back to the exact scan")
	}
	if st.CandidatesScored != 8 || st.CandidatesMatched != 8 {
		t.Errorf("fallback stats = %+v, want 8 scored and matched", st)
	}
}

func TestMatchIndexedRecallOnFamilyCorpus(t *testing.T) {
	const n, topK = 100, 10
	r := newTestRegistry(t)
	prunedCorpus(t, r, n)
	probe, err := r.Matcher().Prepare(workloads.FamilyProbe(2, 77))
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.MatchAll(probe, topK)
	if err != nil {
		t.Fatal(err)
	}
	indexed, st, err := r.MatchIndexed(probe, topK, DefaultPruneOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Indexed {
		t.Fatalf("repository of %d must use the index (stats %+v)", n, st)
	}
	// Every survivor must at least share a token; on this corpus common
	// stems (date, name, ...) cross families, so scored may approach n —
	// the saving is the O(1) accumulator affinity and the tree-match cap,
	// not the survivor count.
	if st.CandidatesScored == 0 || st.CandidatesScored > n {
		t.Errorf("index scored %d of %d entries", st.CandidatesScored, n)
	}
	if len(indexed) != topK {
		t.Fatalf("indexed ranking has %d results, want %d", len(indexed), topK)
	}
	inTop := map[string]bool{}
	for _, rk := range full {
		inTop[rk.Entry.Name] = true
	}
	recall := 0
	for _, rk := range indexed {
		if inTop[rk.Entry.Name] {
			recall++
		}
	}
	if got := float64(recall) / float64(topK); got < 0.98 {
		t.Errorf("recall@%d vs the exact scan = %.2f, want >= 0.98", topK, got)
	}
}

// TestMatchIndexedEqualsFromScratchAfterInterleaving is the registry-level
// incrementality property: after any interleaving of Register (inserts and
// replaces) and Remove, indexed retrieval on the incrementally maintained
// registry equals retrieval on a registry built from scratch over the
// surviving entries.
func TestMatchIndexedEqualsFromScratchAfterInterleaving(t *testing.T) {
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: 8, Seed: 3})
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3; trial++ {
		r := newTestRegistry(t)
		type liveEntry struct{ idx int }
		live := map[string]liveEntry{}
		names := make([]string, 12)
		for i := range names {
			names[i] = fmt.Sprintf("slot%d", i)
		}
		for op := 0; op < 60; op++ {
			name := names[rng.Intn(len(names))]
			if rng.Intn(3) < 2 { // register: fresh insert or content replace
				ci := rng.Intn(len(corpus))
				if _, _, err := r.Register(name, corpus[ci]); err != nil {
					t.Fatal(err)
				}
				live[name] = liveEntry{idx: ci}
			} else {
				want := false
				if _, ok := live[name]; ok {
					want = true
				}
				if got := r.Remove(name); got != want {
					t.Fatalf("trial %d op %d: Remove(%s) = %v, want %v", trial, op, name, got, want)
				}
				delete(live, name)
			}
		}

		fresh := newTestRegistry(t)
		for name, le := range live {
			if _, _, err := fresh.Register(name, corpus[le.idx]); err != nil {
				t.Fatal(err)
			}
		}

		opt := PruneOptions{Fraction: 0.25, MinCandidates: 4} // small floor so the index engages
		for probeFam := 0; probeFam < 3; probeFam++ {
			probe, err := r.Matcher().Prepare(workloads.FamilyProbe(probeFam, int64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			freshProbe, err := fresh.Matcher().Prepare(workloads.FamilyProbe(probeFam, int64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			inc, incSt, err := r.MatchIndexed(probe, 5, opt)
			if err != nil {
				t.Fatal(err)
			}
			scr, scrSt, err := fresh.MatchIndexed(freshProbe, 5, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRanking(t, scr, inc)
			if incSt.CandidatesScored != scrSt.CandidatesScored {
				t.Errorf("trial %d probe %d: scored %d vs from-scratch %d",
					trial, probeFam, incSt.CandidatesScored, scrSt.CandidatesScored)
			}
		}
	}
}

// TestMatchIndexedRebuiltOnRecovery asserts the inverted index — which is
// never persisted — is rebuilt deterministically when a Persistent
// registry restores its snapshot: indexed retrieval after a restart is
// identical to before.
func TestMatchIndexedRebuiltOnRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() *Persistent {
		t.Helper()
		m, err := core.NewMatcher(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		p, warns, err := OpenPersistent(dir, m, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(warns) != 0 {
			t.Fatalf("unexpected recovery warnings: %v", warns)
		}
		return p
	}

	p := open()
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: 4, Seed: 5})
	for _, s := range corpus {
		if _, _, err := p.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	opt := PruneOptions{Fraction: 0.25, MinCandidates: 4}
	probe, err := p.Matcher().Prepare(workloads.FamilyProbe(1, 13))
	if err != nil {
		t.Fatal(err)
	}
	before, beforeSt, err := p.MatchIndexed(probe, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !beforeSt.Indexed {
		t.Fatalf("corpus of %d must use the index (stats %+v)", len(corpus), beforeSt)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := open()
	defer p2.Close()
	if p2.Len() != len(corpus) {
		t.Fatalf("restored %d entries, want %d", p2.Len(), len(corpus))
	}
	probe2, err := p2.Matcher().Prepare(workloads.FamilyProbe(1, 13))
	if err != nil {
		t.Fatal(err)
	}
	after, afterSt, err := p2.MatchIndexed(probe2, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, before, after)
	if beforeSt != afterSt {
		t.Errorf("retrieval stats changed across restart: %+v vs %+v", beforeSt, afterSt)
	}
}

func TestMatchIndexedDeterministicAcrossWorkerCounts(t *testing.T) {
	r := newTestRegistry(t)
	prunedCorpus(t, r, 48)
	probe, err := r.Matcher().Prepare(workloads.FamilyProbe(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultPruneOptions()
	prev := par.SetMaxWorkers(1)
	seq, seqSt, err := r.MatchIndexed(probe, 8, opt)
	par.SetMaxWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	par.SetMaxWorkers(8)
	defer par.SetMaxWorkers(prev)
	conc, concSt, err := r.MatchIndexed(probe, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, seq, conc)
	if seqSt != concSt {
		t.Errorf("stats differ across worker counts: %+v vs %+v", seqSt, concSt)
	}
}

func TestPruneOptionsLimitTinyRepositories(t *testing.T) {
	// The fraction must never collapse to zero candidates for tiny n, and
	// degenerate options normalize to the safe full scan.
	frac := PruneOptions{Fraction: 0.25, MinCandidates: 1}
	for n := 1; n <= 4; n++ {
		if got := frac.Limit(n, 0); got < 1 {
			t.Errorf("Limit(n=%d) = %d; the candidate floor collapsed", n, got)
		}
	}
	cases := []struct {
		name    string
		opt     PruneOptions
		n, topK int
		want    int
	}{
		{"zero value scans everything", PruneOptions{}, 100, 0, 100},
		{"negative fraction scans everything", PruneOptions{Fraction: -1, MinCandidates: 2}, 50, 0, 50},
		{"fraction above 1 scans everything", PruneOptions{Fraction: 3}, 10, 0, 10},
		{"non-positive floor lifted to 1", PruneOptions{Fraction: 0.1, MinCandidates: 0}, 8, 0, 1},
		{"negative topK ignored", PruneOptions{Fraction: 0.5, MinCandidates: 1}, 8, -5, 4},
		{"empty repository", DefaultPruneOptions(), 0, 10, 0},
		{"negative n", DefaultPruneOptions(), -3, 10, 0},
	}
	for _, c := range cases {
		if got := c.opt.Limit(c.n, c.topK); got != c.want {
			t.Errorf("%s: Limit(n=%d, topK=%d) = %d, want %d", c.name, c.n, c.topK, got, c.want)
		}
	}
}
