package registry

// Doc-conformance coverage for docs/PERSISTENCE.md, the durability
// contract: the worked byte-level record example must decode with the
// real decoder to exactly what the prose claims, the documented magic
// numbers and file-name patterns must match the store's actual
// constants, and every JSON payload example must be a valid journal
// record. If the format evolves, this test forces the specification to
// evolve with it.

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"
)

const persistenceDocPath = "../../docs/PERSISTENCE.md"

func readPersistenceDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(persistenceDocPath)
	if err != nil {
		t.Fatalf("docs/PERSISTENCE.md must exist (the durability contract): %v", err)
	}
	return string(b)
}

// workedExampleBytes extracts the hexdump under "### Worked example" and
// reassembles the raw bytes.
func workedExampleBytes(t *testing.T, doc string) []byte {
	t.Helper()
	_, after, found := strings.Cut(doc, "### Worked example")
	if !found {
		t.Fatal("docs/PERSISTENCE.md has no '### Worked example' section")
	}
	fence := regexp.MustCompile("(?s)```text\n(.*?)```")
	m := fence.FindStringSubmatch(after)
	if m == nil {
		t.Fatal("worked example has no ```text hexdump block")
	}
	hexByte := regexp.MustCompile(`\b[0-9a-f]{2}\b`)
	var out []byte
	for _, line := range strings.Split(strings.TrimSpace(m[1]), "\n") {
		// Drop the leading offset column, keep the byte columns.
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("hexdump line %q has no byte columns", line)
		}
		for _, f := range fields[1:] {
			if !hexByte.MatchString(f) || len(f) != 2 {
				t.Fatalf("hexdump line %q: %q is not a byte", line, f)
			}
			b, err := hex.DecodeString(f)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b...)
		}
	}
	return out
}

func TestPersistenceDocWorkedExampleDecodes(t *testing.T) {
	doc := readPersistenceDoc(t)
	raw := workedExampleBytes(t, doc)
	if len(raw) <= walHeaderSize {
		t.Fatalf("worked example is %d bytes, shorter than the %d-byte preamble", len(raw), walHeaderSize)
	}
	// The preamble must be exactly what the writer emits.
	if got := string(raw[:len(walMagic)]); got != walMagic {
		t.Fatalf("documented magic %q, writer emits %q", got, walMagic)
	}
	if v := binary.BigEndian.Uint32(raw[len(walMagic):walHeaderSize]); v != walVersion {
		t.Fatalf("documented version %d, writer emits %d", v, walVersion)
	}
	// The record must decode with the real decoder to the documented
	// mutation, consuming the example exactly.
	rec, n, err := decodeWALRecord(raw[walHeaderSize:])
	if err != nil {
		t.Fatalf("the documented record does not decode: %v", err)
	}
	if rec.Op != walOpDel || rec.Name != "orders" {
		t.Errorf("documented record decodes to %+v, the prose promises {op: del, name: orders}", rec)
	}
	if walHeaderSize+n != len(raw) {
		t.Errorf("record ends at byte %d, example has %d bytes", walHeaderSize+n, len(raw))
	}
	// And re-encoding the decoded record must reproduce the documented
	// frame byte for byte (the format has no nondeterminism).
	reenc, err := appendWALRecord(appendWALHeader(nil), rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(reenc) != string(raw) {
		t.Errorf("re-encoding the documented record yields\n%x\nthe doc shows\n%x", reenc, raw)
	}
}

func TestPersistenceDocFileNamePatterns(t *testing.T) {
	doc := readPersistenceDoc(t)
	// The documented patterns must be the store's actual naming.
	for _, pat := range []string{
		snapshotPrefix + "<seq>" + snapshotSuffix,
		walPrefix + "<base>" + walSuffix,
	} {
		if !strings.Contains(doc, "`"+pat+"`") {
			t.Errorf("docs/PERSISTENCE.md does not document the file pattern %q", pat)
		}
	}
	// And the layout diagram must show names the store would really
	// generate.
	st := &Store{dir: "."}
	for _, name := range []string{
		strings.TrimPrefix(st.path(42), "./"),
		strings.TrimPrefix(st.walPath(42), "./"),
	} {
		if !strings.Contains(doc, name) {
			t.Errorf("layout diagram does not show a real generated name %q", name)
		}
	}
	// The documented magic numbers are the real ones.
	for _, magic := range []string{walMagic, snapshotMagic} {
		if !strings.Contains(doc, magic) {
			t.Errorf("docs/PERSISTENCE.md does not mention the magic %q", magic)
		}
	}
}

func TestPersistenceDocPayloadExamplesAreValidRecords(t *testing.T) {
	doc := readPersistenceDoc(t)
	fence := regexp.MustCompile("(?s)```json\n(.*?)```")
	blocks := fence.FindAllStringSubmatch(doc, -1)
	if len(blocks) < 2 {
		t.Fatalf("docs/PERSISTENCE.md has %d json payload examples, want the put and del shapes (>= 2)", len(blocks))
	}
	ops := map[string]bool{}
	for i, b := range blocks {
		payload := strings.TrimSpace(b[1])
		var rec walRecord
		if err := json.Unmarshal([]byte(payload), &rec); err != nil {
			t.Errorf("json example %d does not parse as a journal record: %v", i, err)
			continue
		}
		// Round-trip through the real frame codec: a documented payload
		// must be acceptable to the decoder.
		frame, err := appendWALRecord(nil, rec)
		if err != nil {
			t.Errorf("json example %d does not encode: %v", i, err)
			continue
		}
		got, _, err := decodeWALRecord(frame)
		if err != nil {
			t.Errorf("json example %d does not survive the frame codec: %v", i, err)
			continue
		}
		ops[got.Op] = true
	}
	if !ops[walOpPut] || !ops[walOpDel] {
		t.Errorf("payload examples cover ops %v, want both put and del", ops)
	}
}
