// Package registry implements the prepared-schema repository: a
// concurrency-safe store of core.Prepared artifacts that a long-lived
// service (cmd/cupidd) registers schemas into once and then matches
// incoming schemas against many times. This is the workload the paper
// frames Cupid for — a matching component that a tool repeatedly applies
// against a repository of known schemas — made cheap by paying the
// per-schema cost (validation, tree expansion, linguistic analysis) at
// registration instead of on every match.
//
// Entries are keyed by name and content fingerprint (model.Fingerprint):
// re-registering identical content under the same name is an idempotent
// no-op, while changed content replaces the stale entry. MatchAll fans
// one-vs-all matching out over the internal/par worker pool and returns
// results ranked by score; the ranking is deterministic regardless of
// worker count (asserted by the -race determinism tests).
//
// Retrieval goes through one planned entry point (Match/MatchContext,
// planner.go): a stats-driven planner picks per probe between the three
// strategies — the exhaustive scan, the linear signature-pruned scan and
// the inverted-index path — from cheap statistics the index maintains
// (index.ProbeStats), and sizes the candidate budget to the probe's
// reachable pool. The strategies themselves, also reachable as forced
// plans through the legacy entry points:
//
//   - Indexed retrieval (MatchIndexed): a sharded token inverted index
//     (internal/index), maintained incrementally on every
//     Register/Replace/Remove, generates candidates sublinearly — only
//     entries sharing at least one normalized signature token with the
//     query are ever touched — then re-ranks them by exact signature
//     affinity and runs the full tree match on the survivors.
//   - Candidate pruning (MatchTop): the linear-scan predecessor — an
//     affinity (size similarity + normalized token Jaccard,
//     model.Signature) computed against *every* entry, full match on the
//     top candidate fraction. Still exact over its candidate set, and the
//     baseline the indexed path is benchmarked against. MatchAll remains
//     the exact full scan.
//
// Alongside those, the third serving layer:
//   - Persistence (Persistent, Store, the write-ahead journal in
//     wal.go): each mutation's source document is made durable by
//     appending one checksummed record to an append-only journal, with a
//     group-commit loop batching concurrent writers into shared fsyncs
//     and a background compactor folding the journal tail into versioned
//     JSON-lines snapshot generations (atomic write+rename, fsync).
//     Recovery is newest-consistent-snapshot + ordered tail replay with
//     torn-tail truncation; the legacy snapshot-per-mutation and
//     interval-batched modes remain available. docs/PERSISTENCE.md is
//     the byte-level contract. The inverted index is never persisted:
//     recovery re-registers every document, rebuilding it
//     deterministically.
//
// The repository itself is sharded: entries live in N name-keyed map
// shards (FNV-1a on the name) with per-shard locks, and the index shards
// documents by content fingerprint, so registration and retrieval both
// scale across the internal/par worker pool instead of serializing on one
// mutex.
package registry

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/instance"
	"repro/internal/model"
	"repro/internal/par"
)

// Entry is one registered schema: its repository name, content
// fingerprint, and the prepared matching artifact. Entries are immutable;
// re-registration replaces the whole entry.
type Entry struct {
	// Name is the repository key the schema was registered under.
	Name string
	// Fingerprint is the content hash of the schema (model.Fingerprint).
	Fingerprint string
	// Prepared is the reusable matching artifact.
	Prepared *core.Prepared
}

// regShards is the registry's map shard count: entries are spread over
// this many independently locked name-keyed maps so concurrent
// registrations (and the index maintenance they trigger) contend only
// when they hash to the same shard.
const regShards = 16

// regShard is one partition of the repository: a name-keyed entry map
// under its own lock.
type regShard struct {
	mu     sync.RWMutex
	byName map[string]*Entry
}

// Registry is the concurrency-safe prepared-schema repository. All
// methods may be called from any number of goroutines; Register/Remove
// take one shard's write lock only around the map+index mutation
// (preparation and signature derivation run outside any lock), and
// MatchAll works on an immutable snapshot, so matching never blocks
// registration and vice versa.
//
// Alongside the entry maps the registry maintains a sharded token
// inverted index (internal/index) incrementally: every Register (insert
// or replace) upserts the entry's signature token bag, every Remove
// evicts it. Same-name mutations are serialized by the name's shard lock,
// so the index can never disagree with the map about a name's current
// content; MatchIndexed consumes it.
type Registry struct {
	matcher *core.Matcher
	idx     *index.Index
	shards  [regShards]regShard

	// families is the installed corpus clustering (families.go); nil until
	// SetFamilies. mutations counts committed map mutations (inserts,
	// replacements, removals) — the staleness clock an installed clustering
	// is judged against.
	families  atomic.Pointer[familyView]
	mutations atomic.Uint64
}

// New builds a registry with its own Matcher for the given configuration.
func New(cfg core.Config) (*Registry, error) {
	m, err := core.NewMatcher(cfg)
	if err != nil {
		return nil, err
	}
	return NewWithMatcher(m), nil
}

// NewWithMatcher builds a registry around an existing Matcher. Every
// schema registered is prepared by (and every match runs on) this matcher.
func NewWithMatcher(m *core.Matcher) *Registry {
	r := &Registry{matcher: m, idx: index.New(regShards)}
	for i := range r.shards {
		r.shards[i].byName = map[string]*Entry{}
	}
	return r
}

// shard returns the map shard owning name (index.Hash32, the same FNV-1a
// the inverted index shards by).
func (r *Registry) shard(name string) *regShard {
	return &r.shards[index.Hash32(name)%regShards]
}

// Matcher returns the registry's matcher, e.g. to Prepare an incoming
// schema for MatchAll.
func (r *Registry) Matcher() *core.Matcher { return r.matcher }

// Register prepares the schema and stores it under the given name (the
// schema's own name when empty). Registering content identical to the
// current entry of that name returns the existing entry without
// re-preparing and reports created=false; new names and changed content
// store a fresh entry and report created=true. The created flag is
// decided under the name's shard lock, so concurrent registrations agree
// on which call actually created the entry.
func (r *Registry) Register(name string, s *model.Schema) (e *Entry, created bool, err error) {
	return r.RegisterInstances(name, s, nil)
}

// RegisterInstances is Register with sampled instance data attached: the
// schema is prepared with per-leaf value profiles
// (Matcher.PrepareWithInstances) that sharpen leaf matching against other
// profile-carrying entries, and the entry fingerprint covers schema AND
// profiles, so re-registering the same schema with changed samples
// replaces the entry while identical samples stay idempotent. Empty
// samples degrade to plain Register — including its cheap
// fingerprint-before-Prepare idempotence fast path, which instance
// registrations skip (profile resolution needs the prepared artifact).
func (r *Registry) RegisterInstances(name string, s *model.Schema, samples instance.Samples) (e *Entry, created bool, err error) {
	if s == nil {
		return nil, false, fmt.Errorf("registry: nil schema")
	}
	if name == "" {
		name = s.Name
	}
	if name == "" {
		return nil, false, fmt.Errorf("registry: schema has no name; register with an explicit one")
	}
	if len(samples) == 0 {
		fp := model.Fingerprint(s)
		sh := r.shard(name)
		sh.mu.RLock()
		cur, ok := sh.byName[name]
		sh.mu.RUnlock()
		if ok && cur.Fingerprint == fp {
			return cur, false, nil
		}
		p, err := r.matcher.Prepare(s)
		if err != nil {
			return nil, false, fmt.Errorf("registry: preparing %q: %w", name, err)
		}
		return r.commit(name, fp, p)
	}
	p, err := r.matcher.PrepareWithInstances(s, samples)
	if err != nil {
		return nil, false, fmt.Errorf("registry: preparing %q: %w", name, err)
	}
	return r.commit(name, p.Fingerprint(), p)
}

// commit stores a freshly prepared entry under the name's shard lock,
// keeping whichever identical-fingerprint entry a racing registration may
// have landed first (idempotence).
func (r *Registry) commit(name, fp string, p *core.Prepared) (*Entry, bool, error) {
	// Derive the retrieval signature outside the lock: the token-bag sweep
	// is the expensive part of index maintenance, and Signature() caches.
	sig := p.Signature()
	e := &Entry{Name: name, Fingerprint: fp, Prepared: p}
	sh := r.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.byName[name]; ok && cur.Fingerprint == fp {
		return cur, false, nil
	}
	sh.byName[name] = e
	// Index upsert under the same shard lock: same-name map and index
	// mutations commit in the same order, so a replace can never leave the
	// index pointing at evicted content.
	r.idx.Upsert(name, fp, sig)
	r.mutations.Add(1)
	return e, true, nil
}

// Get returns the entry registered under name.
func (r *Registry) Get(name string) (*Entry, bool) {
	sh := r.shard(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.byName[name]
	return e, ok
}

// Remove deletes the entry registered under name, reporting whether it
// existed.
func (r *Registry) Remove(name string) bool {
	sh := r.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.byName[name]
	if ok {
		delete(sh.byName, name)
		r.idx.Remove(name)
		r.mutations.Add(1)
	}
	return ok
}

// Len returns the number of registered schemas.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		r.shards[i].mu.RLock()
		n += len(r.shards[i].byName)
		r.shards[i].mu.RUnlock()
	}
	return n
}

// List returns the entries sorted by name.
func (r *Registry) List() []*Entry {
	out := make([]*Entry, 0, r.Len())
	for i := range r.shards {
		r.shards[i].mu.RLock()
		for _, e := range r.shards[i].byName {
			out = append(out, e)
		}
		r.shards[i].mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Ranked is one repository schema's result in a MatchAll run.
type Ranked struct {
	// Entry is the repository entry the source was matched against (the
	// match target).
	Entry *Entry
	// Result is the full match output (source = the MatchAll argument,
	// target = Entry's schema).
	Result *core.Result
	// Score is the ranking score; see Score.
	Score float64
}

// Score ranks a match result for one-vs-all retrieval: the sum of the
// leaf mapping elements' weighted similarities, normalized by the larger
// of the two trees' leaf counts. It rewards both strength (high wsim) and
// coverage (many mapped leaves) and lies in [0,1] for default parameters
// (each leaf wsim is at most 1 and each target leaf maps at most once).
func Score(res *core.Result) float64 {
	leaves := res.SourceTree.NumLeaves()
	if n := res.TargetTree.NumLeaves(); n > leaves {
		leaves = n
	}
	if leaves == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range res.Mapping.Leaves {
		sum += e.WSim
	}
	return sum / float64(leaves)
}

// MatchAll matches one prepared source schema against every registered
// entry, fanning the one-vs-all sweep out over the internal/par worker
// pool, and returns the results ranked by descending score (ties broken
// by name). topK truncates the ranking; topK <= 0 returns all. The source
// must have been prepared by the registry's matcher.
//
// The sweep runs over an immutable snapshot of the repository: entries
// registered or removed concurrently do not affect an in-flight call, and
// the ranking is deterministic for a given snapshot regardless of worker
// count.
func (r *Registry) MatchAll(src *core.Prepared, topK int) ([]Ranked, error) {
	return r.MatchAllContext(context.Background(), src, topK)
}

// MatchAllContext is MatchAll with a request lifecycle: the per-entry
// tree-match fan-out checks ctx cooperatively before every candidate, so
// an abandoned caller (client disconnect, deadline) stops consuming CPU
// mid-sweep. It returns ctx.Err() when cut short. It is a forced-plan
// wrapper over MatchContext (PlanOptions.Force = StrategyExact).
func (r *Registry) MatchAllContext(ctx context.Context, src *core.Prepared, topK int) ([]Ranked, error) {
	ranked, _, err := r.MatchContext(ctx, src, topK, PlanOptions{Force: StrategyExact})
	return ranked, err
}

// rank runs the full tree match of src against every given entry (fanned
// over the worker pool, canceled cooperatively per candidate via ctx) and
// returns the descending-score ranking, ties broken by name, truncated to
// topK (<= 0 keeps all).
func (r *Registry) rank(ctx context.Context, entries []*Entry, src *core.Prepared, topK int) ([]Ranked, error) {
	out := make([]Ranked, len(entries))
	errs := make([]error, len(entries))
	if err := par.ForCtx(ctx, len(entries), func(i int) {
		res, err := r.matcher.MatchPrepared(src, entries[i].Prepared)
		if err != nil {
			errs[i] = fmt.Errorf("registry: matching against %q: %w", entries[i].Name, err)
			return
		}
		out[i] = Ranked{Entry: entries[i], Result: res, Score: Score(res)}
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entry.Name < out[j].Entry.Name
	})
	if topK > 0 && topK < len(out) {
		out = out[:topK]
	}
	return out, nil
}

// PruneOptions sizes the candidate set MatchTop lets through to the full
// tree match. The candidate budget for a repository of n entries is
//
//	max(MinCandidates, ceil(Fraction·n), topK)
//
// so pruning only engages once the repository outgrows the floor, and a
// caller asking for more results than the budget always gets at least topK
// candidates matched.
type PruneOptions struct {
	// Fraction of the repository that reaches the full match, in (0,1].
	Fraction float64
	// MinCandidates is the floor below which pruning is pointless: small
	// repositories are scanned exactly.
	MinCandidates int
}

// DefaultPruneOptions keeps the top quarter of the repository, never fewer
// than 16 candidates — the setting cupidbench validates recall@K = 1.0 for
// on its 1-vs-200 corpus.
func DefaultPruneOptions() PruneOptions {
	return PruneOptions{Fraction: 0.25, MinCandidates: 16}
}

// DefaultIndexOptions sizes MatchIndexed's candidate budget: an eighth of
// the repository, never fewer than 16 candidates. The indexed path can
// afford half the pruned path's fraction because its candidates are all
// genuine token-sharers — the pruned path's quarter compensates for
// ranking blindly over every entry, overlap or not. The setting is
// validated empirically like the pruned one: cupidbench's 1-vs-2000
// workload asserts recall@10 >= 0.98 against the exact scan across all
// family probes. Both policies flow through the same Limit function.
func DefaultIndexOptions() PruneOptions {
	return PruneOptions{Fraction: 0.125, MinCandidates: 16}
}

// Limit returns the candidate budget for a repository of n entries: the
// single, shared candidate-floor policy — the pruned (MatchTop) and
// indexed (MatchIndexed) retrieval paths both size their candidate set
// with this function, so the two paths can never drift apart on how many
// entries reach the full tree match.
//
// The fraction is applied with a ceiling, never integer division, so it
// cannot collapse to zero for tiny repositories (¼ of n=2 is 1 candidate,
// not 0). Degenerate options are normalized rather than trusted: a
// Fraction outside (0,1] means "everything" (the zero value is a full
// scan, the safe default), a non-positive MinCandidates floor is lifted
// to 1, and a negative topK counts as 0. n <= 0 always yields 0. The
// returned budget may exceed n — callers treat that as "scan everything".
func (o PruneOptions) Limit(n, topK int) int {
	if n <= 0 {
		return 0
	}
	f := o.Fraction
	if f <= 0 || f > 1 {
		f = 1
	}
	l := int(math.Ceil(f * float64(n)))
	if l < 1 {
		l = 1
	}
	floor := o.MinCandidates
	if floor < 1 {
		floor = 1
	}
	if l < floor {
		l = floor
	}
	if l < topK {
		l = topK
	}
	return l
}

// MatchTop is the pruned form of MatchAll: instead of tree-matching the
// source against every entry, it first ranks the repository by signature
// affinity — size similarity blended with normalized name/description
// token Jaccard (model.Signature), both derived from the linguistic
// analysis cached at registration — and runs the full match only on the
// top candidates per opt. The returned ranking is exact over the candidate
// set (scores are real MatchPrepared scores, never affinities).
//
// Pruning trades the guarantee of a full scan for sublinear match cost:
// a true top-K entry whose cheap signature looks nothing like the source
// can be pruned away. cupidbench measures that risk (recall@K on its
// synthetic corpus, asserted 1.0 at the default options); callers that
// need the exact ranking unconditionally use MatchAll — cupidd's -exact
// flag does exactly that. Determinism is preserved: the affinity pre-rank
// breaks ties by name, so equal snapshots prune identically regardless of
// worker count.
//
// MatchTop still scores an affinity against every entry — O(n) per query.
// MatchIndexed reaches the same kind of candidate set through the token
// inverted index without touching non-overlapping entries, sized by the
// same PruneOptions.Limit policy.
func (r *Registry) MatchTop(src *core.Prepared, topK int, opt PruneOptions) ([]Ranked, error) {
	return r.MatchTopContext(context.Background(), src, topK, opt)
}

// MatchTopContext is MatchTop with a request lifecycle: both the affinity
// sweep and the candidate tree-match loop check ctx cooperatively, so an
// abandoned caller stops consuming CPU. It returns ctx.Err() when cut
// short. It is a forced-plan wrapper over MatchContext
// (PlanOptions.Force = StrategyPruned).
func (r *Registry) MatchTopContext(ctx context.Context, src *core.Prepared, topK int, opt PruneOptions) ([]Ranked, error) {
	ranked, _, err := r.MatchContext(ctx, src, topK, PlanOptions{Force: StrategyPruned, Prune: opt})
	return ranked, err
}

// pruneByAffinity is the pruned path's candidate-generation stage: rank
// every entry by signature affinity against src (fanned over the worker
// pool, ties broken by name so pruning is deterministic) and return the
// top limit entries. The caller has already established limit <
// len(entries).
func (r *Registry) pruneByAffinity(ctx context.Context, entries []*Entry, src *core.Prepared, limit int) ([]*Entry, error) {
	affs := make([]float64, len(entries))
	srcSig := src.Signature()
	if err := par.ForCtx(ctx, len(entries), func(i int) {
		affs[i] = srcSig.Affinity(entries[i].Prepared.Signature())
	}); err != nil {
		return nil, err
	}
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if affs[order[i]] != affs[order[j]] {
			return affs[order[i]] > affs[order[j]]
		}
		return entries[order[i]].Name < entries[order[j]].Name
	})
	cands := make([]*Entry, limit)
	for i := range cands {
		cands[i] = entries[order[i]]
	}
	return cands, nil
}

// MatchAllSchema prepares the schema with the registry's matcher and runs
// MatchAll — the one-call form for serving an incoming (un-prepared)
// schema.
func (r *Registry) MatchAllSchema(s *model.Schema, topK int) ([]Ranked, error) {
	p, err := r.matcher.Prepare(s)
	if err != nil {
		return nil, fmt.Errorf("registry: preparing source: %w", err)
	}
	return r.MatchAll(p, topK)
}
