package registry

// Request-lifecycle coverage: the context-threaded match paths must stop
// consuming CPU when the caller abandons them, must report ctx.Err()
// instead of partial rankings, and must stay bit-identical to their
// context-free forms when never canceled.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/workloads"
)

// corpusRegistry builds a registry over n family-corpus schemas.
func corpusRegistry(t *testing.T, n int) *Registry {
	t.Helper()
	r, err := New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	corpus := workloads.FamilyCorpus(workloads.FamilyCorpusSpec{PerFamily: n / workloads.NumFamilies(), Seed: 5})
	for _, s := range corpus {
		if _, _, err := r.Register(s.Name, s); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestMatchContextCanceledReturnsError(t *testing.T) {
	r := corpusRegistry(t, 40)
	probe, err := r.Matcher().Prepare(workloads.FamilyProbe(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := r.MatchAllContext(ctx, probe, 5); err != context.Canceled {
		t.Errorf("MatchAllContext on canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := r.MatchTopContext(ctx, probe, 5, PruneOptions{Fraction: 0.25, MinCandidates: 4}); err != context.Canceled {
		t.Errorf("MatchTopContext on canceled ctx = %v, want context.Canceled", err)
	}
	if _, _, err := r.MatchIndexedContext(ctx, probe, 5, PruneOptions{Fraction: 0.25, MinCandidates: 4}); err != context.Canceled {
		t.Errorf("MatchIndexedContext on canceled ctx = %v, want context.Canceled", err)
	}
}

// countdownCtx is a context whose Err() flips to context.Canceled after
// a fixed number of Err() calls. Because the match loops consult Err()
// exactly once per candidate (plus once for the return value), it turns
// "cancel mid-scoring" into a deterministic event — no timers, no racing
// the scheduler — and its call counter records how many checks the loop
// made after cancellation.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	fuse  int64
	done  chan struct{}
}

func newCountdownCtx(fuse int64) *countdownCtx {
	return &countdownCtx{Context: context.Background(), fuse: fuse, done: make(chan struct{})}
}

// Done returns a non-nil (never-closed) channel so ForCtx takes its
// cancellation path rather than the background fast path.
func (c *countdownCtx) Done() <-chan struct{} { return c.done }

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.fuse {
		return context.Canceled
	}
	return nil
}

// TestMatchContextCancellationIsPrompt cancels a 1-vs-N ranking
// mid-scoring — deterministically, after exactly fuse candidate checks —
// and asserts the sweep stops there instead of scoring the rest of the
// corpus.
func TestMatchContextCancellationIsPrompt(t *testing.T) {
	prev := par.SetMaxWorkers(1) // sequential: one Err() check per candidate, in order
	defer par.SetMaxWorkers(prev)
	r := corpusRegistry(t, 100)
	if r.Len() < 20 {
		t.Fatalf("corpus too small for a mid-loop cancellation: %d entries", r.Len())
	}
	probe, err := r.Matcher().Prepare(workloads.FamilyProbe(2, 7))
	if err != nil {
		t.Fatal(err)
	}

	const fuse = 5 // scored candidates before Err() starts reporting Canceled
	ctx := newCountdownCtx(fuse)
	ranked, err := r.MatchAllContext(ctx, probe, 5)
	if err != context.Canceled {
		t.Fatalf("canceled MatchAllContext = %v, want context.Canceled", err)
	}
	if ranked != nil {
		t.Errorf("canceled MatchAllContext returned a partial ranking (%d entries), want nil", len(ranked))
	}
	// The loop checks Err() once per candidate; after the first Canceled it
	// must stop immediately. ForCtx consults Err() once more for its return
	// value, so a prompt stop is fuse+2 calls; scoring the whole corpus
	// would be > r.Len() calls.
	if calls := ctx.calls.Load(); calls > fuse+2 {
		t.Errorf("loop kept checking after cancellation: %d Err() calls, want <= %d (corpus %d)", calls, fuse+2, r.Len())
	}
}

// TestMatchContextIdenticalToContextFree asserts the ctx-threaded paths
// return bit-identical rankings to the context-free ones when never
// canceled.
func TestMatchContextIdenticalToContextFree(t *testing.T) {
	r := corpusRegistry(t, 60)
	probe, err := r.Matcher().Prepare(workloads.FamilyProbe(3, 9))
	if err != nil {
		t.Fatal(err)
	}
	opt := PruneOptions{Fraction: 0.25, MinCandidates: 4}
	ctx := context.Background()

	type pathPair struct {
		name     string
		plain    func() ([]Ranked, error)
		threaded func() ([]Ranked, error)
	}
	paths := []pathPair{
		{"MatchAll",
			func() ([]Ranked, error) { return r.MatchAll(probe, 10) },
			func() ([]Ranked, error) { return r.MatchAllContext(ctx, probe, 10) }},
		{"MatchTop",
			func() ([]Ranked, error) { return r.MatchTop(probe, 10, opt) },
			func() ([]Ranked, error) { return r.MatchTopContext(ctx, probe, 10, opt) }},
		{"MatchIndexed",
			func() ([]Ranked, error) { ranked, _, err := r.MatchIndexed(probe, 10, opt); return ranked, err },
			func() ([]Ranked, error) {
				ranked, _, err := r.MatchIndexedContext(ctx, probe, 10, opt)
				return ranked, err
			}},
	}
	for _, p := range paths {
		a, err := p.plain()
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		b, err := p.threaded()
		if err != nil {
			t.Fatalf("%s (ctx): %v", p.name, err)
		}
		if fmt.Sprint(rankingKey(a)) != fmt.Sprint(rankingKey(b)) {
			t.Errorf("%s: ctx-threaded ranking differs from context-free:\n%v\nvs\n%v", p.name, rankingKey(a), rankingKey(b))
		}
	}
}

func rankingKey(ranked []Ranked) []string {
	out := make([]string, len(ranked))
	for i, rk := range ranked {
		out[i] = fmt.Sprintf("%s:%.17g", rk.Entry.Name, rk.Score)
	}
	return out
}

// TestRetrievalStatsReportsBudget asserts every MatchIndexed outcome
// carries the candidate budget it ran under — the field the serving layer
// relies on to make degraded rankings self-describing.
func TestRetrievalStatsReportsBudget(t *testing.T) {
	r := corpusRegistry(t, 60)
	probe, err := r.Matcher().Prepare(workloads.FamilyProbe(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	opt := PruneOptions{Fraction: 0.125, MinCandidates: 4}
	_, st, err := r.MatchIndexed(probe, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := opt.Limit(r.Len(), 5); st.CandidateBudget != want {
		t.Errorf("CandidateBudget = %d, want Limit(%d, 5) = %d", st.CandidateBudget, r.Len(), want)
	}
	if st.Degraded {
		t.Error("MatchIndexed set Degraded itself; only the serving layer may")
	}
	// The exact-scan fallback reports its (over-)budget too.
	_, st, err = r.MatchIndexed(probe, 5, PruneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CandidateBudget < r.Len() {
		t.Errorf("fallback CandidateBudget = %d, want >= corpus %d", st.CandidateBudget, r.Len())
	}
}
