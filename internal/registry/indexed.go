package registry

import (
	"context"

	"repro/internal/core"
)

// RetrievalStats reports what a MatchIndexed call did — the server
// surfaces it so clients can see how much of the repository a query
// actually touched.
type RetrievalStats struct {
	// CandidatesScored is the number of entries whose cheap signature was
	// scored during candidate generation: the inverted index's accumulator
	// survivors (entries sharing at least one normalized token with the
	// query), or the whole repository when retrieval fell back to a full
	// scan. The gap between this and the repository size is the work the
	// index never did.
	CandidatesScored int
	// CandidatesMatched is the number of entries that reached the full
	// tree match.
	CandidatesMatched int
	// CandidateBudget is the candidate limit the call ran under
	// (PruneOptions.Limit for the repository size and topK at hand) — the
	// number the serving layer shrinks when it degrades under load, so a
	// response always carries the budget that actually produced it.
	CandidateBudget int
	// Indexed reports whether the inverted index generated the candidates
	// (false when the repository was small enough, or the query signature
	// token-less, so the call fell back to an exact scan).
	Indexed bool
	// Degraded reports that the caller deliberately shrank the candidate
	// budget below its configured policy to shed load. MatchIndexed never
	// sets it — the serving layer (internal/serve) does when it substitutes
	// degraded PruneOptions, so clients can tell a load-shed ranking from a
	// full-budget one.
	Degraded bool
}

// MatchIndexed is the inverted-index form of MatchTop: instead of scoring
// a signature affinity against every entry (O(n) per query), it asks the
// sharded token inverted index for candidates — accumulating weighted
// token overlap over the posting lists of the query's tokens, then
// re-ranking the accumulator's survivors by the exact signature affinity
// — and runs the full tree match only on the top candidates per opt. Only
// entries sharing at least one normalized token with the query are ever
// touched, so retrieval cost scales with the query's posting lists, not
// the repository size. The candidate budget is the same shared policy as
// the pruned path (PruneOptions.Limit).
//
// The returned ranking is exact over the candidate set (scores are real
// MatchPrepared scores, never affinities or overlaps), deterministic for
// a given entry set regardless of worker count or of the
// Register/Replace/Remove interleaving that produced the index (asserted
// by the property tests).
//
// Two cases fall back to exact scans, reported in the stats: a
// repository at or below the candidate floor (where indexing buys
// nothing), and a query whose signature has no tokens (which shares
// nothing with anything — the index would return zero candidates, the
// scan still ranks by tree match). Entries whose signatures share no
// token with a token-bearing query are unreachable by design; that recall
// trade is measured by cupidbench (recall@10 vs the exact scan on the
// 1-vs-2000 corpus) and callers that need the full-scan guarantee use
// MatchAll.
func (r *Registry) MatchIndexed(src *core.Prepared, topK int, opt PruneOptions) ([]Ranked, RetrievalStats, error) {
	return r.MatchIndexedContext(context.Background(), src, topK, opt)
}

// MatchIndexedContext is MatchIndexed with a request lifecycle: the
// candidate tree-match loop (the expensive part — each iteration is a
// full TreeMatch) checks ctx cooperatively before every candidate, so an
// abandoned caller stops consuming CPU mid-ranking. It returns ctx.Err()
// when cut short.
func (r *Registry) MatchIndexedContext(ctx context.Context, src *core.Prepared, topK int, opt PruneOptions) ([]Ranked, RetrievalStats, error) {
	n := r.Len()
	limit := opt.Limit(n, topK)
	srcSig := src.Signature()
	if limit >= n || len(srcSig.Tokens) == 0 {
		entries := r.List()
		ranked, err := r.rank(ctx, entries, src, topK)
		return ranked, RetrievalStats{CandidatesScored: len(entries), CandidatesMatched: len(entries), CandidateBudget: limit}, err
	}
	cands, st := r.idx.TopK(srcSig, limit)
	entries := make([]*Entry, 0, len(cands))
	for _, c := range cands {
		// A candidate may have been removed (or replaced under a name that
		// now hashes elsewhere) since the index snapshot; skip the gone.
		if e, ok := r.Get(c.Key); ok {
			entries = append(entries, e)
		}
	}
	ranked, err := r.rank(ctx, entries, src, topK)
	return ranked, RetrievalStats{CandidatesScored: st.Scored, CandidatesMatched: len(entries), CandidateBudget: limit, Indexed: true}, err
}
