package registry

import (
	"context"

	"repro/internal/core"
)

// RetrievalStats reports what one retrieval call did — the decision the
// planner made (or the caller forced), the inputs it decided from, and
// what the execution actually touched. Every retrieval path returns it
// (exact and pruned included), so the server always surfaces how much of
// the repository a query cost regardless of strategy.
type RetrievalStats struct {
	// Strategy is the retrieval path that ran (never StrategyAuto).
	Strategy Strategy
	// Planned reports the strategy was chosen by the planner from
	// per-probe statistics; false means the caller forced it (the legacy
	// entry points, or cupidd's -retrieval=index|pruned|exact).
	Planned bool
	// CandidatesScored is the number of entries whose cheap signature was
	// scored during candidate generation: the inverted index's accumulator
	// survivors on the indexed path, the whole repository on the pruned
	// sweep and the scans. The gap between this and the repository size is
	// the work the index never did.
	CandidatesScored int
	// CandidatesMatched is the number of entries that reached the full
	// tree match.
	CandidatesMatched int
	// CandidateBudget is the candidate limit the call ran under: the
	// planner's adaptive budget on planned runs, PruneOptions.Limit for
	// the repository size and topK at hand on forced ones, the corpus
	// size on exact scans — so a response always carries the budget that
	// actually produced it.
	CandidateBudget int
	// Indexed reports whether the inverted index generated the candidates
	// (false when the repository was small enough, or the query signature
	// token-less, so an indexed call fell back to an exact scan).
	Indexed bool
	// Degraded reports that the budget was deliberately shrunk below its
	// configured policy to shed load (PlanOptions.Degraded, set by the
	// serving layer under saturation), so clients can tell a load-shed
	// ranking from a full-budget one. Never set when the exact path ran.
	Degraded bool
	// Corpus is the repository size the decision saw — a planner input,
	// also filled on forced runs from the execution-time size.
	Corpus int
	// ProbeTokens is the probe signature's token count (planner input;
	// zero on forced runs, which never consult the statistics).
	ProbeTokens int
	// TokensIndexed is how many probe tokens the index has seen (planner
	// input; zero on forced runs).
	TokensIndexed int
	// TokensCommon is how many of those are stop-common — posting lists
	// past index.CommonCutoff (planner input; zero on forced runs).
	TokensCommon int
	// PostingsKept is the summed document frequency of the kept probe
	// tokens: the candidate pool the planner sized its budget against
	// (planner input; zero on forced runs).
	PostingsKept int
	// Families is the number of family medoids the family route probed
	// (zero unless the family strategy actually ran).
	Families int
	// Family is the winning family's medoid name when the family route
	// produced the ranking.
	Family string
	// FamilyFallback reports that a family-strategy call could not run as
	// one — no clustering installed, the clustering gone stale, or its
	// medoids no longer resolving — and fell back to the indexed path.
	FamilyFallback bool
}

// MatchIndexed is the inverted-index form of MatchTop: instead of scoring
// a signature affinity against every entry (O(n) per query), it asks the
// sharded token inverted index for candidates — accumulating weighted
// token overlap over the posting lists of the query's tokens, then
// re-ranking the accumulator's survivors by the exact signature affinity
// — and runs the full tree match only on the top candidates per opt. Only
// entries sharing at least one normalized token with the query are ever
// touched, so retrieval cost scales with the query's posting lists, not
// the repository size. The candidate budget is the same shared policy as
// the pruned path (PruneOptions.Limit).
//
// The returned ranking is exact over the candidate set (scores are real
// MatchPrepared scores, never affinities or overlaps), deterministic for
// a given entry set regardless of worker count or of the
// Register/Replace/Remove interleaving that produced the index (asserted
// by the property tests).
//
// Two cases fall back to exact scans, reported in the stats: a
// repository at or below the candidate floor (where indexing buys
// nothing), and a query whose signature has no tokens (which shares
// nothing with anything — the index would return zero candidates, the
// scan still ranks by tree match). Entries whose signatures share no
// token with a token-bearing query are unreachable by design; that recall
// trade is measured by cupidbench (recall@10 vs the exact scan on the
// 1-vs-2000 corpus) and callers that need the full-scan guarantee use
// MatchAll.
//
// MatchIndexed is a forced-plan wrapper over the planned entry point
// (Match with PlanOptions.Force = StrategyIndexed) and behaves
// bit-identically to its pre-planner implementation; Match with
// StrategyAuto lets the planner pick the strategy and budget per probe.
func (r *Registry) MatchIndexed(src *core.Prepared, topK int, opt PruneOptions) ([]Ranked, RetrievalStats, error) {
	return r.MatchIndexedContext(context.Background(), src, topK, opt)
}

// MatchIndexedContext is MatchIndexed with a request lifecycle: the
// candidate tree-match loop (the expensive part — each iteration is a
// full TreeMatch) checks ctx cooperatively before every candidate, so an
// abandoned caller stops consuming CPU mid-ranking. It returns ctx.Err()
// when cut short.
func (r *Registry) MatchIndexedContext(ctx context.Context, src *core.Prepared, topK int, opt PruneOptions) ([]Ranked, RetrievalStats, error) {
	return r.MatchContext(ctx, src, topK, PlanOptions{Force: StrategyIndexed, Index: opt})
}
