package registry

// Instance-aware registration coverage: sampled instances must break
// name/type ties in repository retrieval, ride the WAL through restarts
// (same profile-suffixed fingerprint, same rankings), and ship over the
// replication stream so a follower rebuilds the same profiles.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/sqlddl"
	"repro/internal/workloads"
)

func tieBreakSamples(t *testing.T, doc string) instance.Samples {
	t.Helper()
	s, err := instance.ParseSamples([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRegisterInstancesBreaksTies registers the tie-break corpus — n
// byte-identical SQL schemas distinguishable only by sampled values — and
// probes with each schema's value distribution in turn: with instances
// attached on both sides the probe's own schema must rank first every
// time, which name- and type-only matching cannot achieve (all n targets
// tie exactly).
func TestRegisterInstancesBreaksTies(t *testing.T) {
	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewWithMatcher(m)
	targets := workloads.TieBreakTargets(6)
	for _, d := range targets {
		s, err := sqlddl.Parse(d.Name, d.SQL)
		if err != nil {
			t.Fatal(err)
		}
		if _, created, err := reg.RegisterInstances(d.Name, s, tieBreakSamples(t, d.Instances)); err != nil || !created {
			t.Fatalf("registering %s: created=%v err=%v", d.Name, created, err)
		}
	}
	for j, d := range targets {
		probe := workloads.TieBreakProbe(j)
		s, err := sqlddl.Parse(probe.Name, probe.SQL)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.PrepareWithInstances(s, tieBreakSamples(t, probe.Instances))
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := reg.MatchAll(p, len(targets))
		if err != nil {
			t.Fatal(err)
		}
		if len(ranked) == 0 || ranked[0].Entry.Name != d.Name {
			got := "none"
			if len(ranked) > 0 {
				got = ranked[0].Entry.Name
			}
			t.Errorf("probe %d: top-1 = %s, want %s", j, got, d.Name)
		}
	}
}

// TestRegisterInstancesIdempotent: same schema + same samples is a
// repository no-op, changed samples replace the entry (new fingerprint).
func TestRegisterInstancesIdempotent(t *testing.T) {
	m, err := core.NewMatcher(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewWithMatcher(m)
	targets := workloads.TieBreakTargets(2)
	parse := func() *workloads.TieBreakDoc { return &targets[0] }
	s1, err := sqlddl.Parse(parse().Name, parse().SQL)
	if err != nil {
		t.Fatal(err)
	}
	e1, created, err := reg.RegisterInstances("t", s1, tieBreakSamples(t, targets[0].Instances))
	if err != nil || !created {
		t.Fatalf("first register: created=%v err=%v", created, err)
	}
	s2, err := sqlddl.Parse(parse().Name, parse().SQL)
	if err != nil {
		t.Fatal(err)
	}
	e2, created, err := reg.RegisterInstances("t", s2, tieBreakSamples(t, targets[0].Instances))
	if err != nil || created {
		t.Fatalf("idempotent re-register: created=%v err=%v", created, err)
	}
	if e1.Fingerprint != e2.Fingerprint {
		t.Errorf("idempotent re-register changed fingerprint: %q vs %q", e1.Fingerprint, e2.Fingerprint)
	}
	s3, err := sqlddl.Parse(parse().Name, parse().SQL)
	if err != nil {
		t.Fatal(err)
	}
	e3, created, err := reg.RegisterInstances("t", s3, tieBreakSamples(t, targets[1].Instances))
	if err != nil || !created {
		t.Fatalf("changed-samples re-register: created=%v err=%v", created, err)
	}
	if e3.Fingerprint == e1.Fingerprint {
		t.Errorf("changed samples kept fingerprint %q", e1.Fingerprint)
	}
}

// TestInstancesWALRoundTrip: a RegisterSourceInstances entry must recover
// after a restart with the same profile-suffixed fingerprint — the proof
// that the instances payload was journaled and replayed, not dropped.
func TestInstancesWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	targets := workloads.TieBreakTargets(2)
	p1 := newWAL(t, dir, PersistOptions{})
	e1, created, err := p1.RegisterSourceInstances("amb", "sql", []byte(targets[0].SQL), []byte(targets[0].Instances))
	if err != nil || !created {
		t.Fatalf("register: created=%v err=%v", created, err)
	}
	if !strings.Contains(e1.Fingerprint, "+") {
		t.Fatalf("instance registration fingerprint %q has no profile suffix", e1.Fingerprint)
	}
	if d, ok := p1.Doc("amb"); !ok || d.Instances != targets[0].Instances {
		t.Fatalf("persisted doc does not carry the instances payload: ok=%v", ok)
	}
	// A plain registration of the same bytes without instances must be a
	// distinct identity (replace), not an idempotent no-op.
	e2, created, err := p1.RegisterSource("amb2", "sql", []byte(targets[0].SQL))
	if err != nil || !created {
		t.Fatalf("plain register: created=%v err=%v", created, err)
	}
	if e2.Fingerprint == e1.Fingerprint {
		t.Errorf("instance-free registration shares fingerprint %q", e1.Fingerprint)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := newWAL(t, dir, PersistOptions{})
	defer p2.Close()
	re, ok := p2.Get("amb")
	if !ok {
		t.Fatal("entry lost across restart")
	}
	if re.Fingerprint != e1.Fingerprint {
		t.Errorf("recovered fingerprint %q, want %q (instances payload dropped in replay?)", re.Fingerprint, e1.Fingerprint)
	}
	if !re.Prepared.HasProfiles() {
		t.Error("recovered entry carries no instance profiles")
	}
}

// TestInstancesReplicate: a follower resyncing from a primary with an
// instance-carrying entry must rebuild the same profiles (fingerprint
// equality across the stream).
func TestInstancesReplicate(t *testing.T) {
	targets := workloads.TieBreakTargets(2)
	primary := newWAL(t, t.TempDir(), PersistOptions{})
	defer primary.Close()
	e1, _, err := primary.RegisterSourceInstances("amb", "sql", []byte(targets[0].SQL), []byte(targets[0].Instances))
	if err != nil {
		t.Fatal(err)
	}
	follower := newWAL(t, t.TempDir(), PersistOptions{})
	defer follower.Close()
	docs := make([]Doc, 0, 1)
	if d, ok := primary.Doc("amb"); ok {
		docs = append(docs, d)
	}
	if err := follower.applyResync(docs); err != nil {
		t.Fatal(err)
	}
	fe, ok := follower.Get("amb")
	if !ok {
		t.Fatal("follower did not apply the entry")
	}
	if fe.Fingerprint != e1.Fingerprint {
		t.Errorf("follower fingerprint %q, want %q", fe.Fingerprint, e1.Fingerprint)
	}
	if !fe.Prepared.HasProfiles() {
		t.Error("follower entry carries no instance profiles")
	}
	// The streamed-record path must carry instances too.
	follower2 := newWAL(t, t.TempDir(), PersistOptions{})
	defer follower2.Close()
	if d, ok := primary.Doc("amb"); ok {
		if err := follower2.applyReplRecord(putRecord(d)); err != nil {
			t.Fatal(err)
		}
	}
	fe2, ok := follower2.Get("amb")
	if !ok || fe2.Fingerprint != e1.Fingerprint {
		t.Errorf("streamed put lost instances: ok=%v fingerprint=%q want %q", ok, fe2.Fingerprint, e1.Fingerprint)
	}
}
