package registry

// WAL shipping: the replication substrate behind cupidd's /replicate
// endpoint. A primary running in WAL mode keeps the current journal
// generation's records in an in-memory replay buffer (the replHub, fed by
// the group-commit loop after each fsync) and streams them to followers;
// each follower replays the records into its own Persistent registry —
// re-parsing exactly the source documents the primary journaled — so a
// caught-up follower's registry, index and rankings are byte-identical to
// the primary's.
//
// Catch-up is generation-aware. A follower presents the last position it
// applied (journal base generation + record count). If that position is
// still inside the primary's live buffer the stream resumes as a tail: a
// hello frame, then every record after the position. If the primary has
// compacted past it (or the follower is brand new, or ahead of a primary
// restored from older state) the stream opens with a resync instead: a
// hello frame announcing a full snapshot, the snapshot's documents, then
// the tail from the snapshot's position. Replay is last-writer-wins
// idempotent, so over-delivery around either boundary is harmless; a
// resync diff-applies (removing local names absent from the snapshot)
// so a diverged follower converges instead of accumulating ghosts.
//
// The wire format reuses the journal's frame codec (wal.go): a preamble
// ("CUPIDREP" + big-endian version), then length+CRC-framed JSON frames.
// A torn frame — the follower was killed, the connection dropped — is a
// clean disconnect at the last whole frame, never a partial application.
// docs/REPLICATION.md specifies the protocol; a conformance test decodes
// its worked example with this decoder.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

const (
	replMagic   = "CUPIDREP"
	replVersion = 1
	// replHeaderSize is the stream preamble: 8 magic bytes + 4 version
	// bytes, mirroring the journal file preamble.
	replHeaderSize = len(replMagic) + 4
)

// Replication frame kinds. A stream is: hello, then (for a resync) the
// announced number of doc frames, then rec frames as mutations commit,
// with ping frames during idle stretches. A new hello may appear
// mid-stream when the primary compacts past a slow follower's position.
const (
	replKindHello = "hello"
	replKindDoc   = "doc"
	replKindRec   = "rec"
	replKindPing  = "ping"
)

// ReplPos is a position in the primary's journal history: the snapshot
// generation its live journal is based on, plus how many records of that
// journal have been applied. Positions are totally ordered lexicographic
// on (Base, Records); compaction bumps Base and resets Records.
type ReplPos struct {
	// Base is the snapshot generation the live journal is based on.
	Base uint64 `json:"base"`
	// Records is how many records of that journal have been applied.
	Records int `json:"records"`
}

// Before reports whether p is strictly earlier than o.
func (p ReplPos) Before(o ReplPos) bool {
	if p.Base != o.Base {
		return p.Base < o.Base
	}
	return p.Records < o.Records
}

// String renders the position as "base/records" for logs and probes.
func (p ReplPos) String() string { return fmt.Sprintf("%d/%d", p.Base, p.Records) }

// replFrame is one JSON frame on the replication stream.
type replFrame struct {
	Kind string `json:"kind"`
	// Pos is the position this frame advances the follower to: for a
	// hello, where the stream (tail or snapshot) starts; for a rec, the
	// position after applying it; for a ping, the primary's current
	// position (pure lag information, nothing to apply).
	Pos ReplPos `json:"pos"`
	// Horizon (hello only) is the primary's position at connect time —
	// the catch-up target: a follower is caught up once it has applied
	// through it. A pointer so non-hello frames omit it on the wire
	// (omitempty never elides a struct value).
	Horizon *ReplPos `json:"horizon,omitempty"`
	// Resync (hello only) announces a full snapshot transfer: Docs doc
	// frames follow before the record tail, and the follower must drop
	// local names the snapshot does not carry.
	Resync bool `json:"resync,omitempty"`
	Docs   int  `json:"docs,omitempty"`
	// Doc carries one snapshot document (kind "doc").
	Doc *Doc `json:"doc,omitempty"`
	// Rec carries one journaled mutation (kind "rec").
	Rec *walRecord `json:"rec,omitempty"`
}

// appendReplHeader appends the stream preamble to buf.
func appendReplHeader(buf []byte) []byte {
	buf = append(buf, replMagic...)
	return binary.BigEndian.AppendUint32(buf, replVersion)
}

// encodeReplFrame encodes one frame with the shared journal framing.
func encodeReplFrame(buf []byte, f replFrame) ([]byte, error) {
	payload, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("registry: encoding replication frame: %w", err)
	}
	if len(payload) > walMaxPayload {
		return nil, fmt.Errorf("registry: replication frame is %d bytes, beyond the %d-byte limit", len(payload), walMaxPayload)
	}
	return appendFrame(buf, payload), nil
}

// decodeReplFrame decodes one frame from b, returning the frame and the
// bytes consumed — the symmetric in-memory decoder the doc-conformance
// test drives against docs/REPLICATION.md's worked example.
func decodeReplFrame(b []byte) (replFrame, int, error) {
	var f replFrame
	payload, size, err := decodeFrame(b)
	if err != nil {
		return f, 0, err
	}
	if err := json.Unmarshal(payload, &f); err != nil {
		return f, 0, fmt.Errorf("decoding frame payload: %w", err)
	}
	switch f.Kind {
	case replKindHello, replKindDoc, replKindRec, replKindPing:
	default:
		return f, 0, fmt.Errorf("unknown frame kind %q", f.Kind)
	}
	return f, size, nil
}

// readReplFrame reads one frame from the stream. io.EOF at a frame
// boundary means the stream ended cleanly; a cut anywhere inside a frame
// surfaces as io.ErrUnexpectedEOF (and a corrupted frame as a checksum
// error) — in every case nothing partial escapes.
func readReplFrame(r io.Reader) (replFrame, error) {
	var hdr [walFrameSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return replFrame{}, io.EOF
		}
		return replFrame{}, fmt.Errorf("registry: replication stream cut mid-frame: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > walMaxPayload {
		return replFrame{}, fmt.Errorf("registry: replication frame claims implausible %d-byte payload", n)
	}
	buf := make([]byte, walFrameSize+int(n))
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[walFrameSize:]); err != nil {
		return replFrame{}, fmt.Errorf("registry: replication stream cut mid-frame: %w", err)
	}
	f, _, err := decodeReplFrame(buf)
	if err != nil {
		return replFrame{}, fmt.Errorf("registry: replication frame: %w", err)
	}
	return f, nil
}

// replHub is the primary-side fan-out point: the current journal
// generation's committed records, kept in memory (bounded by the
// compaction threshold — once the journal rotates, the buffer rebases and
// empties), plus wake-up channels for the streamers tailing it. The
// group-commit loop publishes records only after their fsync succeeded,
// so a follower can never observe a mutation the primary might lose.
type replHub struct {
	mu   sync.Mutex
	base uint64
	recs []walRecord
	subs map[chan struct{}]struct{}
}

func newReplHub(base uint64, recs []walRecord) *replHub {
	return &replHub{
		base: base,
		recs: append([]walRecord(nil), recs...),
		subs: make(map[chan struct{}]struct{}),
	}
}

// pos is the hub's current position.
func (h *replHub) pos() ReplPos {
	h.mu.Lock()
	defer h.mu.Unlock()
	return ReplPos{Base: h.base, Records: len(h.recs)}
}

// publish appends freshly fsynced records; committer goroutine only.
func (h *replHub) publish(recs []walRecord) {
	h.mu.Lock()
	h.recs = append(h.recs, recs...)
	h.notifyLocked()
	h.mu.Unlock()
}

// rotate rebases the buffer onto a fresh journal generation (compaction
// folded the old one into a snapshot); committer goroutine only.
func (h *replHub) rotate(base uint64) {
	h.mu.Lock()
	h.base = base
	h.recs = h.recs[:0:0]
	h.notifyLocked()
	h.mu.Unlock()
}

func (h *replHub) notifyLocked() {
	for ch := range h.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (h *replHub) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *replHub) unsubscribe(ch chan struct{}) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// after returns a copy of the records past cur plus the hub's current
// position. ok is false when cur is not a resumable point of the live
// generation — it predates the buffer (compacted away), follows a
// different base, or lies beyond what this primary ever wrote — and the
// caller must fall back to a snapshot resync.
func (h *replHub) after(cur ReplPos) (recs []walRecord, pos ReplPos, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	pos = ReplPos{Base: h.base, Records: len(h.recs)}
	if cur.Base != h.base || cur.Records > len(h.recs) {
		return nil, pos, false
	}
	return append([]walRecord(nil), h.recs[cur.Records:]...), pos, true
}

// ReplicationPos reports the primary's current replication position (the
// live journal generation and its committed record count). It errors on a
// registry not running in WAL mode — there is no journal to ship.
func (p *Persistent) ReplicationPos() (ReplPos, error) {
	if p.hub == nil {
		return ReplPos{}, fmt.Errorf("registry: replication requires WAL mode")
	}
	return p.hub.pos(), nil
}

// replSnapshot captures a consistent resync payload: the hub position
// first, then the document set — the set is at least as new as the
// position, so a follower that applies the snapshot and tails from the
// position can only re-apply (idempotent), never miss.
func (p *Persistent) replSnapshot() (ReplPos, []Doc) {
	pos := p.hub.pos()
	p.mu.Lock()
	docs := make([]Doc, 0, len(p.docs))
	for _, d := range p.docs {
		docs = append(docs, d)
	}
	p.mu.Unlock()
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	return pos, docs
}

// errFlusher matches bufio.Writer; flusher matches http.Flusher (via the
// thin adapters callers wrap ResponseWriters in).
type errFlusher interface{ Flush() error }
type flusher interface{ Flush() }

func flushStream(w io.Writer) error {
	switch f := w.(type) {
	case errFlusher:
		return f.Flush()
	case flusher:
		f.Flush()
	}
	return nil
}

// StreamReplication serves one follower: it writes the preamble, a hello
// (tail resume when from is still in the live buffer, snapshot resync
// otherwise), and then record frames as mutations commit, heartbeat pings
// when idle, until ctx is canceled or the writer fails. If w implements
// Flush (http.Flusher-style or bufio-style) it is flushed after every
// burst so followers see records at commit latency. The error reports why
// the stream ended; a canceled ctx returns nil (normal disconnect).
func (p *Persistent) StreamReplication(ctx context.Context, w io.Writer, from ReplPos, heartbeat time.Duration) error {
	err := p.streamReplication(ctx, w, from, heartbeat)
	if err != nil && ctx.Err() != nil {
		// A canceled stream's writer fails however the disconnect lands;
		// the cancellation is the real (normal) reason.
		return nil
	}
	return err
}

func (p *Persistent) streamReplication(ctx context.Context, w io.Writer, from ReplPos, heartbeat time.Duration) error {
	if p.hub == nil {
		return fmt.Errorf("registry: replication requires WAL mode")
	}
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	notify := p.hub.subscribe()
	defer p.hub.unsubscribe(notify)

	if _, err := w.Write(appendReplHeader(nil)); err != nil {
		return err
	}
	writeFrames := func(frames ...replFrame) error {
		var buf []byte
		for _, f := range frames {
			next, err := encodeReplFrame(buf, f)
			if err != nil {
				return err
			}
			buf = next
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		return flushStream(w)
	}
	// resync ships a hello + full snapshot and returns the position the
	// tail resumes from.
	resync := func() (ReplPos, error) {
		pos, docs := p.replSnapshot()
		frames := make([]replFrame, 0, len(docs)+1)
		frames = append(frames, replFrame{Kind: replKindHello, Pos: pos, Horizon: &pos, Resync: true, Docs: len(docs)})
		for i := range docs {
			frames = append(frames, replFrame{Kind: replKindDoc, Pos: pos, Doc: &docs[i]})
		}
		return pos, writeFrames(frames...)
	}

	cur := from
	if _, pos, ok := p.hub.after(from); ok {
		if err := writeFrames(replFrame{Kind: replKindHello, Pos: from, Horizon: &pos}); err != nil {
			return err
		}
	} else {
		pos, err := resync()
		if err != nil {
			return err
		}
		cur = pos
	}

	beat := time.NewTicker(heartbeat)
	defer beat.Stop()
	for {
		recs, pos, ok := p.hub.after(cur)
		switch {
		case !ok:
			// The live generation rotated past this follower mid-stream;
			// fall back to a fresh snapshot on the same connection.
			next, err := resync()
			if err != nil {
				return err
			}
			cur = next
			continue
		case len(recs) > 0:
			frames := make([]replFrame, 0, len(recs))
			for i := range recs {
				frames = append(frames, replFrame{
					Kind: replKindRec,
					Pos:  ReplPos{Base: pos.Base, Records: cur.Records + i + 1},
					Rec:  &recs[i],
				})
			}
			if err := writeFrames(frames...); err != nil {
				return err
			}
			cur = pos
			continue
		}
		select {
		case <-ctx.Done():
			return nil
		case <-notify:
		case <-beat.C:
			if err := writeFrames(replFrame{Kind: replKindPing, Pos: cur}); err != nil {
				return err
			}
		}
	}
}

// ReplStatus is a point-in-time view of a follower's progress, consumed
// by cupidd's /readyz (catching_up) and the integration tests.
type ReplStatus struct {
	// Pos is the last position the follower fully applied.
	Pos ReplPos
	// Horizon is the catch-up target announced by the latest hello.
	Horizon ReplPos
	// Primary is the primary's most recently observed position (advanced
	// by pings and records) — Primary minus Pos is the live lag.
	Primary ReplPos
	// CaughtUp reports that Pos has reached Horizon: the follower has
	// applied everything the primary had when the stream opened.
	CaughtUp bool
	// Resyncs counts full snapshot transfers (1 for a fresh follower;
	// more mean the primary compacted past this follower mid-life).
	Resyncs int
	// Frames counts every frame applied or observed on the stream.
	Frames int
}

// ReplState is the shared, concurrency-safe follower status cell: the
// apply loop writes it, readiness probes read it.
type ReplState struct {
	mu sync.Mutex
	st ReplStatus
}

// Status returns a snapshot of the follower's progress.
func (s *ReplState) Status() ReplStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

func (s *ReplState) update(f func(*ReplStatus)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	f(&s.st)
	if !s.st.Pos.Before(s.st.Horizon) {
		s.st.CaughtUp = true
	}
	s.mu.Unlock()
}

// ApplyReplication consumes one replication stream, replaying it into
// this registry: snapshot documents and put records re-register the
// journaled source documents (idempotent by fingerprint), del records
// remove, and a resync hello diff-applies — local names absent from the
// snapshot are removed — so a diverged or stale follower converges to
// exactly the primary's document set. state (optional) is kept current
// for readiness probes; onAdvance (optional) fires after each applied
// position becomes locally durable — the caller checkpoints it so a
// restart can resume as a tail.
//
// The stream ending cleanly (EOF at a frame boundary) returns nil; a cut
// mid-frame, a checksum mismatch, or a record that cannot be applied
// returns the reason. Nothing partial is ever applied: a record either
// fully commits (locally journaled) before its position is reported, or
// the stream stops at the previous record.
func (p *Persistent) ApplyReplication(ctx context.Context, r io.Reader, state *ReplState, onAdvance func(ReplPos)) error {
	var hdr [replHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("registry: reading replication preamble: %w", err)
	}
	if string(hdr[:len(replMagic)]) != replMagic {
		return fmt.Errorf("registry: not a replication stream (bad magic)")
	}
	if v := binary.BigEndian.Uint32(hdr[len(replMagic):]); v != replVersion {
		return fmt.Errorf("registry: unsupported replication stream version %d (this build speaks %d)", v, replVersion)
	}
	advance := func(pos ReplPos) {
		state.update(func(st *ReplStatus) {
			st.Pos = pos
			if st.Primary.Before(pos) {
				st.Primary = pos
			}
			st.Frames++
		})
		if onAdvance != nil {
			onAdvance(pos)
		}
	}
	for {
		f, err := readReplFrame(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				// The caller hung up; the transport error is just how the
				// disconnect surfaced.
				return nil
			}
			return err
		}
		switch f.Kind {
		case replKindHello:
			horizon := f.Pos
			if f.Horizon != nil {
				horizon = *f.Horizon
			}
			state.update(func(st *ReplStatus) {
				st.Horizon = horizon
				if st.Primary.Before(horizon) {
					st.Primary = horizon
				}
				if !f.Resync && st.Pos.Before(f.Pos) {
					// A tail hello resumes from the follower's own
					// checkpoint: everything through it is already applied.
					st.Pos = f.Pos
				}
				st.CaughtUp = false
				st.Frames++
				if f.Resync {
					st.Resyncs++
				}
			})
			if !f.Resync {
				continue
			}
			docs := make([]Doc, 0, f.Docs)
			for i := 0; i < f.Docs; i++ {
				df, err := readReplFrame(r)
				if err != nil {
					return fmt.Errorf("registry: replication snapshot cut after %d of %d documents: %w", i, f.Docs, err)
				}
				if df.Kind != replKindDoc || df.Doc == nil {
					return fmt.Errorf("registry: replication snapshot expected a doc frame, got %q", df.Kind)
				}
				docs = append(docs, *df.Doc)
			}
			if err := p.applyResync(docs); err != nil {
				return err
			}
			advance(f.Pos)
		case replKindDoc:
			return fmt.Errorf("registry: unexpected doc frame outside a snapshot transfer")
		case replKindRec:
			if f.Rec == nil {
				return fmt.Errorf("registry: rec frame without a record")
			}
			if err := p.applyReplRecord(*f.Rec); err != nil {
				return err
			}
			advance(f.Pos)
		case replKindPing:
			state.update(func(st *ReplStatus) {
				if st.Primary.Before(f.Pos) {
					st.Primary = f.Pos
				}
				st.Frames++
			})
		}
	}
}

// applyResync makes the local document set exactly the snapshot's:
// removes names the snapshot does not carry, then (re-)registers every
// snapshot document. Re-registering durable identical content is a no-op.
func (p *Persistent) applyResync(docs []Doc) error {
	keep := make(map[string]bool, len(docs))
	for _, d := range docs {
		keep[d.Name] = true
	}
	for _, e := range p.Registry.List() {
		if !keep[e.Name] {
			if _, err := p.Remove(e.Name); err != nil {
				return fmt.Errorf("registry: resync removing %q: %w", e.Name, err)
			}
		}
	}
	if !keep[FamiliesDocName] {
		// The primary dropped (or never had) a corpus clustering; a
		// follower holding a stale one must drop it too.
		if _, err := p.Remove(FamiliesDocName); err != nil {
			return fmt.Errorf("registry: resync removing corpus clustering: %w", err)
		}
	}
	for _, d := range docs {
		if metaDoc(d.Format) {
			if err := p.applyFamiliesDoc(d); err != nil {
				return fmt.Errorf("registry: resync applying corpus clustering: %w", err)
			}
			continue
		}
		if _, _, err := p.RegisterSourceInstances(d.Name, d.Format, []byte(d.Content), []byte(d.Instances)); err != nil {
			return fmt.Errorf("registry: resync applying %q: %w", d.Name, err)
		}
	}
	return nil
}

// applyReplRecord replays one shipped journal record.
func (p *Persistent) applyReplRecord(rec walRecord) error {
	switch rec.Op {
	case walOpPut:
		if metaDoc(rec.Format) {
			if err := p.applyFamiliesDoc(rec.doc()); err != nil {
				return fmt.Errorf("registry: replaying replicated corpus clustering: %w", err)
			}
			return nil
		}
		if _, _, err := p.RegisterSourceInstances(rec.Name, rec.Format, []byte(rec.Content), []byte(rec.Instances)); err != nil {
			return fmt.Errorf("registry: replaying replicated put %q: %w", rec.Name, err)
		}
	case walOpDel:
		if _, err := p.Remove(rec.Name); err != nil {
			return fmt.Errorf("registry: replaying replicated del %q: %w", rec.Name, err)
		}
	default:
		return fmt.Errorf("registry: replicated record has unknown op %q", rec.Op)
	}
	return nil
}
