// Package workloads defines the schemas and gold-standard mappings of the
// paper's evaluation (§9): the Figure 1/2 purchase orders, the six
// canonical examples of §9.1, the CIDX and Excel purchase orders of Figure
// 7, the RDB and Star relational schemas of Figure 8, and a synthetic
// schema generator for the scalability experiments the paper lists as
// future work.
package workloads

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/thesaurus"
)

// PaperThesaurus returns exactly the thesaurus the paper used for the
// CIDX-Excel experiment (§9.2): four abbreviations (UOM, PO, Qty, Num) and
// two synonymy entries (Invoice~Bill, Ship~Deliver), plus the stop-word
// list the tokenizer needs.
func PaperThesaurus() *thesaurus.Thesaurus {
	t := thesaurus.New()
	for _, w := range []string{"a", "an", "the", "of", "to", "for", "and", "or", "in"} {
		t.AddStopword(w)
	}
	t.AddAbbreviation("uom", "unit", "of", "measure")
	t.AddAbbreviation("po", "purchase", "order")
	t.AddAbbreviation("qty", "quantity")
	t.AddAbbreviation("num", "number")
	t.AddSynonym("invoice", "bill", 1.0)
	t.AddSynonym("ship", "deliver", 1.0)
	return t
}

// GoldPair is one expected correspondence, named by schema-tree node paths.
type GoldPair struct {
	Source string
	Target string
}

// Gold is a gold-standard mapping for one experiment: the pairs a correct
// matcher should produce and pairs it must not produce. When a target
// genuinely has several defensible sources (denormalized columns such as
// Sales.Quantity, which exists in both Orders and OrderDetails),
// AltSources lists the additional acceptable source paths per target.
type Gold struct {
	Pairs      []GoldPair
	Forbidden  []GoldPair
	AltSources map[string][]string
}

// Workload bundles a schema pair with its gold mapping.
type Workload struct {
	Name   string
	Source *model.Schema
	Target *model.Schema
	Gold   Gold
	// ScoreByElement scores predicted pairs by schema-element paths rather
	// than schema-tree (context) paths: join-view copies of a column count
	// as that column. Used by the relational RDB-Star experiment, whose
	// gold is context-free.
	ScoreByElement bool
}

func str(s *model.Schema, p *model.Element, name string) *model.Element {
	e := s.AddChild(p, name, model.KindAttribute)
	e.Type = model.DTString
	return e
}

func intAttr(s *model.Schema, p *model.Element, name string) *model.Element {
	e := s.AddChild(p, name, model.KindAttribute)
	e.Type = model.DTInt
	return e
}

// Figure1 builds the PO / POrder pair of the paper's Figure 1.
func Figure1() Workload {
	s1 := model.New("PO")
	lines := s1.AddChild(s1.Root(), "Lines", model.KindElement)
	item1 := s1.AddChild(lines, "Item", model.KindElement)
	intAttr(s1, item1, "Line")
	intAttr(s1, item1, "Qty")
	str(s1, item1, "Uom")

	s2 := model.New("POrder")
	items := s2.AddChild(s2.Root(), "Items", model.KindElement)
	item2 := s2.AddChild(items, "Item", model.KindElement)
	intAttr(s2, item2, "ItemNumber")
	intAttr(s2, item2, "Quantity")
	str(s2, item2, "UnitOfMeasure")

	return Workload{
		Name:   "figure1",
		Source: s1,
		Target: s2,
		Gold: Gold{Pairs: []GoldPair{
			{"PO.Lines.Item.Line", "POrder.Items.Item.ItemNumber"},
			{"PO.Lines.Item.Qty", "POrder.Items.Item.Quantity"},
			{"PO.Lines.Item.Uom", "POrder.Items.Item.UnitOfMeasure"},
		}},
	}
}

// Figure2 builds the running example of §4 (Figure 2): the PO and
// PurchaseOrder XML schemas with nesting and naming variations.
func Figure2() Workload {
	s1 := model.New("PO")
	lines := s1.AddChild(s1.Root(), "POLines", model.KindElement)
	item := s1.AddChild(lines, "Item", model.KindElement)
	intAttr(s1, item, "Line")
	intAttr(s1, item, "Qty")
	str(s1, item, "UoM")
	intAttr(s1, lines, "Count")
	ship := s1.AddChild(s1.Root(), "POShipTo", model.KindElement)
	str(s1, ship, "Street")
	str(s1, ship, "City")
	bill := s1.AddChild(s1.Root(), "POBillTo", model.KindElement)
	str(s1, bill, "Street")
	str(s1, bill, "City")

	s2 := model.New("PurchaseOrder")
	addAddr := func(p *model.Element) {
		a := s2.AddChild(p, "Address", model.KindElement)
		str(s2, a, "Street")
		str(s2, a, "City")
	}
	deliver := s2.AddChild(s2.Root(), "DeliverTo", model.KindElement)
	addAddr(deliver)
	invoice := s2.AddChild(s2.Root(), "InvoiceTo", model.KindElement)
	addAddr(invoice)
	items := s2.AddChild(s2.Root(), "Items", model.KindElement)
	item2 := s2.AddChild(items, "Item", model.KindElement)
	intAttr(s2, item2, "ItemNumber")
	intAttr(s2, item2, "Quantity")
	str(s2, item2, "UnitOfMeasure")
	intAttr(s2, items, "ItemCount")

	return Workload{
		Name:   "figure2",
		Source: s1,
		Target: s2,
		Gold: Gold{
			Pairs: []GoldPair{
				{"PO.POLines.Item.Line", "PurchaseOrder.Items.Item.ItemNumber"},
				{"PO.POLines.Item.Qty", "PurchaseOrder.Items.Item.Quantity"},
				{"PO.POLines.Item.UoM", "PurchaseOrder.Items.Item.UnitOfMeasure"},
				{"PO.POLines.Count", "PurchaseOrder.Items.ItemCount"},
				{"PO.POShipTo.Street", "PurchaseOrder.DeliverTo.Address.Street"},
				{"PO.POShipTo.City", "PurchaseOrder.DeliverTo.Address.City"},
				{"PO.POBillTo.Street", "PurchaseOrder.InvoiceTo.Address.Street"},
				{"PO.POBillTo.City", "PurchaseOrder.InvoiceTo.Address.City"},
			},
			Forbidden: []GoldPair{
				{"PO.POShipTo.Street", "PurchaseOrder.InvoiceTo.Address.Street"},
				{"PO.POShipTo.City", "PurchaseOrder.InvoiceTo.Address.City"},
				{"PO.POBillTo.Street", "PurchaseOrder.DeliverTo.Address.Street"},
				{"PO.POBillTo.City", "PurchaseOrder.DeliverTo.Address.City"},
			},
		},
	}
}

// SharedTypePO builds the §8.2 variant of Figure 2's PurchaseOrder where
// Address is one shared type referenced by DeliverTo and InvoiceTo, paired
// against the plain PO schema. Context-dependent mappings are required.
func SharedTypePO() Workload {
	w := Figure2()
	s2 := model.New("PurchaseOrder")
	addrT := s2.NewElement("Address", model.KindType)
	str(s2, addrT, "Street")
	str(s2, addrT, "City")
	deliver := s2.AddChild(s2.Root(), "DeliverTo", model.KindElement)
	invoice := s2.AddChild(s2.Root(), "InvoiceTo", model.KindElement)
	must(s2.DeriveFrom(deliver, addrT))
	must(s2.DeriveFrom(invoice, addrT))
	items := s2.AddChild(s2.Root(), "Items", model.KindElement)
	item2 := s2.AddChild(items, "Item", model.KindElement)
	intAttr(s2, item2, "ItemNumber")
	intAttr(s2, item2, "Quantity")
	str(s2, item2, "UnitOfMeasure")
	intAttr(s2, items, "ItemCount")
	return Workload{
		Name:   "sharedtype",
		Source: w.Source,
		Target: s2,
		Gold: Gold{
			Pairs: []GoldPair{
				{"PO.POLines.Item.Qty", "PurchaseOrder.Items.Item.Quantity"},
				{"PO.POShipTo.Street", "PurchaseOrder.DeliverTo.Street"},
				{"PO.POShipTo.City", "PurchaseOrder.DeliverTo.City"},
				{"PO.POBillTo.Street", "PurchaseOrder.InvoiceTo.Street"},
				{"PO.POBillTo.City", "PurchaseOrder.InvoiceTo.City"},
			},
			Forbidden: []GoldPair{
				{"PO.POShipTo.Street", "PurchaseOrder.InvoiceTo.Street"},
				{"PO.POBillTo.Street", "PurchaseOrder.DeliverTo.Street"},
			},
		},
	}
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("workloads: %v", err))
	}
}
