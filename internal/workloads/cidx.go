package workloads

import "repro/internal/model"

// CIDX builds the CIDX purchase order of Figure 7 (left): an XML schema
// with POHeader, Contact, POBillTo, POShipTo and POLines sections.
func CIDX() *model.Schema {
	s := model.New("PO")
	header := s.AddChild(s.Root(), "POHeader", model.KindElement)
	s.AddChild(header, "PODate", model.KindAttribute).Type = model.DTDate
	str(s, header, "PONumber")

	contact := s.AddChild(s.Root(), "Contact", model.KindElement)
	str(s, contact, "ContactName")
	str(s, contact, "ContactEmail")
	str(s, contact, "ContactFunctionCode")
	str(s, contact, "ContactPhone")

	addrBlock := func(name string) *model.Element {
		e := s.AddChild(s.Root(), name, model.KindElement)
		str(s, e, "Street1")
		str(s, e, "Street2")
		str(s, e, "Street3")
		str(s, e, "Street4")
		str(s, e, "City")
		str(s, e, "StateProvince")
		str(s, e, "PostalCode")
		str(s, e, "Country")
		str(s, e, "attn")
		str(s, e, "entityIdentifier")
		return e
	}
	addrBlock("POBillTo")
	ship := addrBlock("POShipTo")
	str(s, ship, "startAt")

	lines := s.AddChild(s.Root(), "POLines", model.KindElement)
	intAttr(s, lines, "count")
	item := s.AddChild(lines, "Item", model.KindElement)
	str(s, item, "partno")
	intAttr(s, item, "line")
	intAttr(s, item, "qty")
	dec := s.AddChild(item, "unitPrice", model.KindAttribute)
	dec.Type = model.DTDecimal
	str(s, item, "uom")
	return s
}

// Excel builds the Excel purchase order of Figure 7 (right). Address and
// Contact are shared types referenced by both DeliverTo and InvoiceTo, so
// their attributes occur in multiple contexts (the "18 XML attributes in
// multiple contexts" of §9.3).
func Excel() *model.Schema {
	s := model.New("PurchaseOrder")

	addrT := s.NewElement("Address", model.KindType)
	str(s, addrT, "street1")
	str(s, addrT, "street2")
	str(s, addrT, "street3")
	str(s, addrT, "street4")
	str(s, addrT, "city")
	str(s, addrT, "stateProvince")
	str(s, addrT, "postalCode")
	str(s, addrT, "country")

	contactT := s.NewElement("Contact", model.KindType)
	str(s, contactT, "contactName")
	str(s, contactT, "e-mail")
	str(s, contactT, "companyName")
	str(s, contactT, "telephone")

	party := func(name string) {
		p := s.AddChild(s.Root(), name, model.KindElement)
		a := s.AddChild(p, "Address", model.KindElement)
		must(s.DeriveFrom(a, addrT))
		c := s.AddChild(p, "Contact", model.KindElement)
		must(s.DeriveFrom(c, contactT))
	}
	party("DeliverTo")
	party("InvoiceTo")

	items := s.AddChild(s.Root(), "Items", model.KindElement)
	intAttr(s, items, "itemCount")
	item := s.AddChild(items, "Item", model.KindElement)
	str(s, item, "partNumber")
	up := s.AddChild(item, "unitPrice", model.KindAttribute)
	up.Type = model.DTDecimal
	intAttr(s, item, "itemNumber")
	str(s, item, "unitOfMeasure")
	intAttr(s, item, "Quantity")
	str(s, item, "yourPartNumber")
	str(s, item, "partDescription")

	hdr := s.AddChild(s.Root(), "Header", model.KindElement)
	str(s, hdr, "yourAccountCode")
	str(s, hdr, "ourAccountCode")
	orderDate := s.AddChild(hdr, "orderDate", model.KindAttribute)
	orderDate.Type = model.DTDate
	str(s, hdr, "orderNum")

	footer := s.AddChild(s.Root(), "Footer", model.KindElement)
	dec := s.AddChild(footer, "totalValue", model.KindAttribute)
	dec.Type = model.DTDecimal
	return s
}

// CIDXExcel is the §9.2 real-world workload: CIDX -> Excel with the leaf
// gold mapping and the Table 3 element-level rows.
func CIDXExcel() Workload {
	addr := func(sContainer, tContainer string) []GoldPair {
		var out []GoldPair
		for _, p := range [][2]string{
			{"Street1", "street1"}, {"Street2", "street2"},
			{"Street3", "street3"}, {"Street4", "street4"},
			{"City", "city"}, {"StateProvince", "stateProvince"},
			{"PostalCode", "postalCode"}, {"Country", "country"},
		} {
			out = append(out, GoldPair{
				Source: "PO." + sContainer + "." + p[0],
				Target: "PurchaseOrder." + tContainer + ".Address." + p[1],
			})
		}
		return out
	}
	gold := Gold{
		Pairs: []GoldPair{
			{"PO.POHeader.PODate", "PurchaseOrder.Header.orderDate"},
			{"PO.POHeader.PONumber", "PurchaseOrder.Header.orderNum"},
			{"PO.POLines.count", "PurchaseOrder.Items.itemCount"},
			{"PO.POLines.Item.partno", "PurchaseOrder.Items.Item.partNumber"},
			{"PO.POLines.Item.line", "PurchaseOrder.Items.Item.itemNumber"},
			{"PO.POLines.Item.qty", "PurchaseOrder.Items.Item.Quantity"},
			{"PO.POLines.Item.unitPrice", "PurchaseOrder.Items.Item.unitPrice"},
			{"PO.POLines.Item.uom", "PurchaseOrder.Items.Item.unitOfMeasure"},
		},
		Forbidden: []GoldPair{
			{"PO.POBillTo.City", "PurchaseOrder.DeliverTo.Address.city"},
			{"PO.POShipTo.City", "PurchaseOrder.InvoiceTo.Address.city"},
			{"PO.POBillTo.Street1", "PurchaseOrder.DeliverTo.Address.street1"},
			{"PO.POShipTo.Street1", "PurchaseOrder.InvoiceTo.Address.street1"},
		},
	}
	gold.Pairs = append(gold.Pairs, addr("POBillTo", "InvoiceTo")...)
	gold.Pairs = append(gold.Pairs, addr("POShipTo", "DeliverTo")...)
	// The single CIDX Contact legitimately maps into both Excel contexts
	// (the 1:n scheme maps each target contact attribute to it).
	for _, ctx := range []string{"DeliverTo", "InvoiceTo"} {
		gold.Pairs = append(gold.Pairs,
			GoldPair{"PO.Contact.ContactName", "PurchaseOrder." + ctx + ".Contact.contactName"},
			GoldPair{"PO.Contact.ContactEmail", "PurchaseOrder." + ctx + ".Contact.e-mail"},
			GoldPair{"PO.Contact.ContactPhone", "PurchaseOrder." + ctx + ".Contact.telephone"},
		)
	}
	return Workload{Name: "cidx-excel", Source: CIDX(), Target: Excel(), Gold: gold}
}

// Table3Rows lists the XML-element-level mappings of the paper's Table 3
// as (CIDX path, Excel path) pairs. The paper reports Cupid finding all of
// them (element mappings reported by structural similarity).
func Table3Rows() []GoldPair {
	return []GoldPair{
		{"PO.POHeader", "PurchaseOrder.Header"},
		{"PO.POLines.Item", "PurchaseOrder.Items.Item"},
		{"PO.POLines", "PurchaseOrder.Items"},
		{"PO.POBillTo", "PurchaseOrder.InvoiceTo"},
		{"PO.POShipTo", "PurchaseOrder.DeliverTo"},
		{"PO.Contact", "PurchaseOrder.InvoiceTo.Contact"},
		{"PO", "PurchaseOrder"},
	}
}
