package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Planner-stress probes: FamilyProbe draws a typical domain schema, but
// the retrieval planner's interesting decisions happen at the edges of
// the token-frequency spectrum. RareTokenProbe builds a schema whose
// signature reaches only a narrow posting pool (an adaptive candidate
// budget can be much smaller than the static policy at equal recall);
// StopHeavyProbe builds one whose every indexed token is corpus-common at
// scale (the inverted index degenerates to a full accumulation, and the
// planner should prefer the pruned scan, whose candidate set is a
// superset of anything the index returns). The planner benchmark
// (cupidbench -exp planner) mixes both in with family probes.

// stopStems are element names built from stems every FamilyCorpus schema
// (or most of its domains) carries: the generator names roots "Target",
// containers "Table<i>"/"Group<i>_<j>", suffixes columns with their
// index digit, and several domain vocabularies share "…Date"/"…Name"
// column words. At planner scale (thousands of schemas) all of these sit
// past the stop-posting cutoff.
var stopStems = []string{"Target", "Table0", "Group0", "Date1", "Name2", "DateOfName", "NameDate"}

// fillerNames carry stems absent from every corpus vocabulary, so the
// index has never seen them (document frequency zero). They make a
// stop-heavy probe a realistic schema with some unique noise instead of
// a degenerate all-stop-word bag, without widening its reachable
// posting pool.
var fillerNames = []string{"Widget", "Gizmo", "Sprocket", "Doohickey"}

// RareTokenProbe generates an incoming schema from the given family's
// domain whose signature deliberately avoids the corpus-wide tokens: the
// root and container are named from the family vocabulary (not
// "Target"/"Table0"), columns take variant names from just two
// vocabulary pairs, and nothing carries a numeric suffix. Its posting
// pool is therefore a few family stems — the shape of a probe where an
// adaptive candidate budget far below the static fraction still reaches
// every true match. Deterministic for a given (family, seed).
func RareTokenProbe(family int, seed int64) *model.Schema {
	vocab := familyVocabs[family%len(familyVocabs)]
	rng := rand.New(rand.NewSource(seed + int64(family)*7919))
	i := rng.Intn(len(vocab))
	j := (i + 1 + rng.Intn(len(vocab)-1)) % len(vocab)
	s := model.New(vocab[i][0])
	tbl := s.AddChild(s.Root(), vocab[j][0], model.KindTable)
	for _, pair := range [][2]string{vocab[i], vocab[j]} {
		col := s.AddChild(tbl, pair[1], model.KindColumn)
		col.Type = synthTypes[rng.Intn(len(synthTypes))]
	}
	s.Name = fmt.Sprintf("rare-fam%d", family)
	return s
}

// StopHeavyProbe generates an incoming schema dominated by stop-common
// tokens: every token the index has seen is (at planner scale) past the
// stop-posting cutoff, and the rest are filler stems the index has never
// seen. The index can only degenerate on it — skipping the common
// posting lists leaves nothing, keeping them accumulates the whole
// corpus — which is exactly the probe shape the planner should route to
// the signature-pruned scan instead. Deterministic for a given seed.
func StopHeavyProbe(seed int64) *model.Schema {
	rng := rand.New(rand.NewSource(seed ^ 0x5707))
	s := model.New(stopStems[0])
	tbl := s.AddChild(s.Root(), stopStems[1], model.KindTable)
	for _, name := range stopStems[2:] {
		col := s.AddChild(tbl, name, model.KindColumn)
		col.Type = synthTypes[rng.Intn(len(synthTypes))]
	}
	filler := s.AddChild(s.Root(), fillerNames[rng.Intn(len(fillerNames))], model.KindTable)
	for _, name := range fillerNames {
		col := s.AddChild(filler, name+"Value", model.KindColumn)
		col.Type = synthTypes[rng.Intn(len(synthTypes))]
	}
	s.Name = "probe-stop"
	return s
}
