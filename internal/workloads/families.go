package workloads

import (
	"fmt"

	"repro/internal/model"
)

// Family-structured repository corpus: FamilyCorpus generates a repository
// whose schemas cluster into distinct domains, each domain drawing its
// column names from its own vocabulary. That is the shape of a real schema
// repository (purchase orders next to payroll next to telemetry), and it is
// the workload the registry's signature-based candidate pruning is built
// for — an incoming schema's true matches live in its own domain cluster,
// everything else is noise a cheap token-overlap test can discard. The
// pruned 1-vs-200 benchmark (cupidbench) and the registry recall tests both
// run on this corpus.

// familyVocabs are the per-domain (canonical, variant) column vocabularies.
// Variants are realistic renamings: word reorderings, abbreviations, and
// synonyms, so within a domain the Rename perturbation produces pairs the
// linguistic matcher still relates while across domains token overlap is
// minimal.
var familyVocabs = [][][2]string{
	{ // finance
		{"AccountNumber", "AcctNo"}, {"Balance", "CurrentBalance"},
		{"InterestRate", "RateOfInterest"}, {"BranchCode", "CodeOfBranch"},
		{"TransactionDate", "DateOfTransaction"}, {"Currency", "CurrencyCode"},
		{"CreditLimit", "LimitOfCredit"}, {"IBAN", "InternationalAccountNumber"},
		{"Portfolio", "PortfolioName"}, {"MaturityDate", "DateOfMaturity"},
	},
	{ // healthcare
		{"PatientName", "NameOfPatient"}, {"Diagnosis", "DiagnosisCode"},
		{"AdmissionDate", "DateOfAdmission"}, {"Ward", "WardNumber"},
		{"Physician", "AttendingPhysician"}, {"BloodType", "BloodGroup"},
		{"Dosage", "DosageMg"}, {"Allergy", "AllergyList"},
		{"InsurancePolicy", "PolicyOfInsurance"}, {"DischargeDate", "DateOfDischarge"},
	},
	{ // logistics
		{"ShipmentWeight", "WeightOfShipment"}, {"ContainerNumber", "ContainerNo"},
		{"PortOfLoading", "LoadingPort"}, {"VesselName", "NameOfVessel"},
		{"ArrivalEstimate", "EstimatedArrival"}, {"FreightCharge", "ChargeForFreight"},
		{"PalletCount", "CountOfPallets"}, {"CustomsCode", "CodeForCustoms"},
		{"RouteSegment", "SegmentOfRoute"}, {"DeliveryWindow", "WindowForDelivery"},
	},
	{ // astronomy
		{"RightAscension", "RA"}, {"Declination", "Dec"},
		{"Magnitude", "ApparentMagnitude"}, {"Redshift", "RedshiftZ"},
		{"Telescope", "TelescopeName"}, {"ExposureSeconds", "ExposureTime"},
		{"Spectrum", "SpectrumClass"}, {"Parallax", "ParallaxMas"},
		{"GalaxyType", "TypeOfGalaxy"}, {"ObservationNight", "NightOfObservation"},
	},
	{ // human resources
		{"EmployeeName", "NameOfEmployee"}, {"Salary", "AnnualSalary"},
		{"Department", "DeptName"}, {"HireDate", "DateOfHire"},
		{"JobTitle", "TitleOfJob"}, {"ManagerName", "NameOfManager"},
		{"VacationDays", "DaysOfVacation"}, {"PayGrade", "GradeOfPay"},
		{"Certification", "CertificationList"}, {"TerminationDate", "DateOfTermination"},
	},
	{ // library
		{"BookTitle", "TitleOfBook"}, {"AuthorName", "NameOfAuthor"},
		{"ISBN", "ISBNCode"}, {"PublisherName", "NameOfPublisher"},
		{"LoanDate", "DateOfLoan"}, {"ReturnDue", "DueForReturn"},
		{"ShelfLocation", "LocationOfShelf"}, {"EditionYear", "YearOfEdition"},
		{"BorrowerCard", "CardOfBorrower"}, {"CatalogEntry", "EntryInCatalog"},
	},
	{ // telemetry
		{"SensorReading", "ReadingOfSensor"}, {"Voltage", "VoltageMv"},
		{"Temperature", "TemperatureCelsius"}, {"Humidity", "HumidityPct"},
		{"FirmwareVersion", "VersionOfFirmware"}, {"BatteryLevel", "LevelOfBattery"},
		{"SignalStrength", "StrengthOfSignal"}, {"SampleEpoch", "EpochOfSample"},
		{"GatewayAddress", "AddressOfGateway"}, {"CalibrationOffset", "OffsetOfCalibration"},
	},
	{ // travel
		{"FlightNumber", "FlightNo"}, {"DepartureGate", "GateOfDeparture"},
		{"SeatAssignment", "AssignedSeat"}, {"FareClass", "ClassOfFare"},
		{"LayoverMinutes", "MinutesOfLayover"}, {"BaggageAllowance", "AllowanceForBaggage"},
		{"BookingReference", "ReferenceOfBooking"}, {"PassportNumber", "PassportNo"},
		{"Itinerary", "ItineraryPlan"}, {"BoardingTime", "TimeOfBoarding"},
	},
	{ // sports
		{"PlayerName", "NameOfPlayer"}, {"TeamName", "NameOfTeam"},
		{"GoalsScored", "ScoredGoals"}, {"MatchAttendance", "AttendanceAtMatch"},
		{"LeaguePosition", "PositionInLeague"}, {"CoachName", "NameOfCoach"},
		{"StadiumCapacity", "CapacityOfStadium"}, {"SeasonYear", "YearOfSeason"},
		{"PenaltyCount", "CountOfPenalties"}, {"TransferFee", "FeeForTransfer"},
	},
	{ // agriculture
		{"CropYield", "YieldOfCrop"}, {"FieldHectares", "HectaresOfField"},
		{"IrrigationRate", "RateOfIrrigation"}, {"HarvestDate", "DateOfHarvest"},
		{"SoilAcidity", "AcidityOfSoil"}, {"SeedVariety", "VarietyOfSeed"},
		{"FertilizerKg", "KgOfFertilizer"}, {"LivestockCount", "CountOfLivestock"},
		{"RainfallMm", "MmOfRainfall"}, {"GreenhouseZone", "ZoneOfGreenhouse"},
	},
}

// NumFamilies is the number of distinct domain vocabularies FamilyCorpus
// can draw from.
func NumFamilies() int { return len(familyVocabs) }

// FamilyCorpusSpec parameterizes FamilyCorpus.
type FamilyCorpusSpec struct {
	// Families is the number of domain clusters (capped at NumFamilies).
	Families int
	// PerFamily is the number of schemas generated per cluster.
	PerFamily int
	// Seed offsets every schema's generator seed, so two corpora with
	// different seeds differ while equal specs are identical.
	Seed int64
}

// familySpec derives the deterministic generator spec for schema i of a
// family: sizes cycle within the family so clusters are not uniform, and
// every schema is a renamed/re-nested perturbation of its family domain.
func familySpec(fam, i int, seed int64) SyntheticSpec {
	return SyntheticSpec{
		Tables:       1 + (fam+i)%3,
		ColsPerTable: 4 + (fam+2*i)%5,
		Depth:        1 + i%2,
		Seed:         seed + int64(fam*1000+i),
		Rename:       0.4,
		Renest:       0.2,
		Vocab:        familyVocabs[fam%len(familyVocabs)],
	}
}

// FamilyCorpus generates Families×PerFamily repository schemas named
// "fam<f>-<i>", clustered by domain vocabulary. Deterministic for a given
// spec.
func FamilyCorpus(spec FamilyCorpusSpec) []*model.Schema {
	if spec.Families <= 0 || spec.Families > NumFamilies() {
		spec.Families = NumFamilies()
	}
	if spec.PerFamily <= 0 {
		spec.PerFamily = 1
	}
	out := make([]*model.Schema, 0, spec.Families*spec.PerFamily)
	for f := 0; f < spec.Families; f++ {
		for i := 0; i < spec.PerFamily; i++ {
			s := Synthetic(familySpec(f, i, spec.Seed)).Target
			s.Name = fmt.Sprintf("fam%d-%d", f, i)
			out = append(out, s)
		}
	}
	return out
}

// FamilyProbe generates an incoming schema from the given family's domain —
// a fresh draw, not a member of FamilyCorpus — to rank against the corpus.
func FamilyProbe(family int, seed int64) *model.Schema {
	spec := familySpec(family, 0, seed+7777)
	spec.Tables, spec.ColsPerTable, spec.Depth = 2, 5, 2
	s := Synthetic(spec).Source
	s.Name = fmt.Sprintf("probe-fam%d", family)
	return s
}
