package workloads

import (
	"testing"

	"repro/internal/model"
	"repro/internal/schematree"
)

func validTree(t *testing.T, s *model.Schema) *schematree.Tree {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	tr, err := schematree.Build(s, schematree.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return tr
}

// goldResolvable checks every gold path names a real schema-tree node.
func goldResolvable(t *testing.T, w Workload) {
	t.Helper()
	ts := validTree(t, w.Source)
	tt := validTree(t, w.Target)
	for _, p := range w.Gold.Pairs {
		if ts.NodeByPath(p.Source) == nil {
			t.Errorf("%s: gold source %q unresolved", w.Name, p.Source)
		}
		if tt.NodeByPath(p.Target) == nil {
			t.Errorf("%s: gold target %q unresolved", w.Name, p.Target)
		}
	}
	for _, p := range w.Gold.Forbidden {
		if ts.NodeByPath(p.Source) == nil || tt.NodeByPath(p.Target) == nil {
			t.Errorf("%s: forbidden pair %v unresolved", w.Name, p)
		}
	}
}

func TestFigure1(t *testing.T)      { goldResolvable(t, Figure1()) }
func TestFigure2(t *testing.T)      { goldResolvable(t, Figure2()) }
func TestSharedTypePO(t *testing.T) { goldResolvable(t, SharedTypePO()) }
func TestCIDXExcel(t *testing.T)    { goldResolvable(t, CIDXExcel()) }
func TestRDBStar(t *testing.T)      { goldResolvable(t, RDBStar()) }

func TestCanonicalExamples(t *testing.T) {
	exs := Canonical()
	if len(exs) != 6 {
		t.Fatalf("canonical examples = %d, want 6", len(exs))
	}
	for i, ex := range exs {
		if ex.ID != i+1 {
			t.Errorf("example %d has ID %d", i, ex.ID)
		}
		if !ex.Expected[0] {
			t.Errorf("example %d: Table 2 reports Cupid = Y on every row", ex.ID)
		}
		goldResolvable(t, ex.Workload)
	}
	// Table 2 failure pattern: DIKE fails 6; MOMIS fails 5 and 6.
	if exs[5].Expected[1] || exs[5].Expected[2] {
		t.Error("example 6 should be expected-fail for DIKE and MOMIS")
	}
	if exs[4].Expected[2] {
		t.Error("example 5 should be expected-fail for MOMIS")
	}
}

func TestCIDXStats(t *testing.T) {
	tr := validTree(t, CIDX())
	st := tr.ComputeStats()
	if st.Leaves < 30 {
		t.Errorf("CIDX leaves = %d, want >= 30", st.Leaves)
	}
	tr2 := validTree(t, Excel())
	// Shared Address/Contact types expand into both parties.
	if tr2.NodeByPath("PurchaseOrder.DeliverTo.Address.street1") == nil ||
		tr2.NodeByPath("PurchaseOrder.InvoiceTo.Address.street1") == nil {
		t.Errorf("Excel shared types not expanded:\n%s", tr2.Dump())
	}
	if tr2.ComputeStats().Copies == 0 {
		t.Error("Excel should contain context copies")
	}
}

func TestRDBStarStats(t *testing.T) {
	rdb := RDB()
	if got := rdb.ComputeStats().RefInts; got != 12 {
		t.Errorf("RDB foreign keys = %d, want 12", got)
	}
	star := Star()
	if got := star.ComputeStats().RefInts; got != 4 {
		t.Errorf("Star foreign keys = %d, want 4", got)
	}
	tr := validTree(t, rdb)
	if tr.ComputeStats().JoinViews != 12 {
		t.Errorf("RDB join views = %d, want 12", tr.ComputeStats().JoinViews)
	}
}

func TestPaperThesaurus(t *testing.T) {
	th := PaperThesaurus()
	if s := th.Sim("Invoice", "Bill"); s != 1 {
		t.Errorf("Sim(Invoice,Bill) = %v", s)
	}
	if th.Expand("uom") == nil || th.Expand("po") == nil ||
		th.Expand("qty") == nil || th.Expand("num") == nil {
		t.Error("paper thesaurus missing an abbreviation")
	}
	// Nothing else: e.g. no customer~client entry.
	if _, ok := th.Lookup("customer", "client"); ok {
		t.Error("paper thesaurus should carry only the four+two entries")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	spec := SyntheticSpec{Tables: 3, ColsPerTable: 5, Depth: 2, Seed: 42, Rename: 0.4, Renest: 0.3, FKs: 2}
	a := Synthetic(spec)
	b := Synthetic(spec)
	if a.Source.Dump() != b.Source.Dump() || a.Target.Dump() != b.Target.Dump() {
		t.Error("synthetic generation not deterministic for equal seeds")
	}
	if len(a.Gold.Pairs) != 15 {
		t.Errorf("gold pairs = %d, want 15", len(a.Gold.Pairs))
	}
	goldResolvable(t, a)
	// Different seed differs.
	spec.Seed = 43
	c := Synthetic(spec)
	if c.Target.Dump() == a.Target.Dump() {
		t.Error("different seeds produced identical schemas")
	}
}

func TestSyntheticShapes(t *testing.T) {
	w := Synthetic(SyntheticSpec{Tables: 2, ColsPerTable: 4, Depth: 3, Seed: 7})
	tr := validTree(t, w.Source)
	if tr.ComputeStats().MaxDepth < 3 {
		t.Errorf("depth-3 spec produced max depth %d", tr.ComputeStats().MaxDepth)
	}
	// Defaults fill in.
	d := Synthetic(SyntheticSpec{Seed: 1})
	if d.Source.Len() == 0 {
		t.Error("default spec produced empty schema")
	}
	// FKs materialize as refints.
	f := Synthetic(SyntheticSpec{Tables: 3, ColsPerTable: 4, Seed: 9, FKs: 2})
	if f.Source.ComputeStats().RefInts == 0 {
		t.Error("FK spec produced no refints")
	}
}

func TestTable3RowsResolvable(t *testing.T) {
	w := CIDXExcel()
	ts := validTree(t, w.Source)
	tt := validTree(t, w.Target)
	for _, r := range Table3Rows() {
		if ts.NodeByPath(r.Source) == nil {
			t.Errorf("table3 source %q unresolved", r.Source)
		}
		if tt.NodeByPath(r.Target) == nil {
			t.Errorf("table3 target %q unresolved", r.Target)
		}
	}
}

func TestUniversity(t *testing.T) { goldResolvable(t, University()) }

// TestFamilyCorpusScalesDeterministically covers the planner benchmark's
// 20k-schema corpus: generation at that scale stays deterministic
// (spot-checked by Dump over a spread of schemas — hashing all 20k twice
// would dominate the test run), names stay unique, and a different seed
// produces a different corpus.
func TestFamilyCorpusScalesDeterministically(t *testing.T) {
	spec := FamilyCorpusSpec{PerFamily: 2000, Seed: 5}
	a := FamilyCorpus(spec)
	b := FamilyCorpus(spec)
	if len(a) != 2000*NumFamilies() || len(b) != len(a) {
		t.Fatalf("corpus sizes %d/%d, want %d", len(a), len(b), 2000*NumFamilies())
	}
	seen := map[string]bool{}
	for _, s := range a {
		if seen[s.Name] {
			t.Fatalf("duplicate schema name %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, i := range []int{0, 1, 999, 7321, 12345, len(a) - 1} {
		if a[i].Name != b[i].Name || a[i].Dump() != b[i].Dump() {
			t.Errorf("schema %d (%s) differs between equal-spec generations", i, a[i].Name)
		}
	}
	c := FamilyCorpus(FamilyCorpusSpec{PerFamily: 2000, Seed: 6})
	if c[12345].Dump() == a[12345].Dump() {
		t.Error("different corpus seeds produced an identical schema")
	}
}

// TestPlannerProbesDeterministicAndShaped covers the planner-stress probe
// generators: deterministic for equal seeds, differing across seeds and
// families, and shaped as documented — RareTokenProbe carries no numeric
// suffixes or generator boilerplate names, StopHeavyProbe is built from
// the corpus-wide stems plus never-indexed fillers.
func TestPlannerProbesDeterministicAndShaped(t *testing.T) {
	r1, r2 := RareTokenProbe(2, 9), RareTokenProbe(2, 9)
	if r1.Dump() != r2.Dump() {
		t.Error("RareTokenProbe not deterministic")
	}
	if RareTokenProbe(3, 9).Dump() == r1.Dump() || RareTokenProbe(2, 10).Dump() == r1.Dump() {
		t.Error("RareTokenProbe ignores family or seed")
	}
	for _, e := range r1.Elements() {
		for _, c := range e.Name {
			if c >= '0' && c <= '9' {
				t.Errorf("RareTokenProbe element %q carries a numeric suffix", e.Name)
			}
		}
		if e.Name == "Target" || e.Name == "Table0" {
			t.Errorf("RareTokenProbe element %q collides with generator boilerplate", e.Name)
		}
	}

	s1, s2 := StopHeavyProbe(4), StopHeavyProbe(4)
	if s1.Dump() != s2.Dump() {
		t.Error("StopHeavyProbe not deterministic")
	}
	names := map[string]bool{}
	for _, e := range s1.Elements() {
		if names[e.Name] {
			t.Errorf("StopHeavyProbe duplicates element name %q", e.Name)
		}
		names[e.Name] = true
	}
	for _, want := range stopStems {
		if !names[want] {
			t.Errorf("StopHeavyProbe missing stop-stem element %q", want)
		}
	}
}
