package workloads

import (
	"testing"

	"repro/internal/model"
	"repro/internal/schematree"
)

func validTree(t *testing.T, s *model.Schema) *schematree.Tree {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	tr, err := schematree.Build(s, schematree.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return tr
}

// goldResolvable checks every gold path names a real schema-tree node.
func goldResolvable(t *testing.T, w Workload) {
	t.Helper()
	ts := validTree(t, w.Source)
	tt := validTree(t, w.Target)
	for _, p := range w.Gold.Pairs {
		if ts.NodeByPath(p.Source) == nil {
			t.Errorf("%s: gold source %q unresolved", w.Name, p.Source)
		}
		if tt.NodeByPath(p.Target) == nil {
			t.Errorf("%s: gold target %q unresolved", w.Name, p.Target)
		}
	}
	for _, p := range w.Gold.Forbidden {
		if ts.NodeByPath(p.Source) == nil || tt.NodeByPath(p.Target) == nil {
			t.Errorf("%s: forbidden pair %v unresolved", w.Name, p)
		}
	}
}

func TestFigure1(t *testing.T)      { goldResolvable(t, Figure1()) }
func TestFigure2(t *testing.T)      { goldResolvable(t, Figure2()) }
func TestSharedTypePO(t *testing.T) { goldResolvable(t, SharedTypePO()) }
func TestCIDXExcel(t *testing.T)    { goldResolvable(t, CIDXExcel()) }
func TestRDBStar(t *testing.T)      { goldResolvable(t, RDBStar()) }

func TestCanonicalExamples(t *testing.T) {
	exs := Canonical()
	if len(exs) != 6 {
		t.Fatalf("canonical examples = %d, want 6", len(exs))
	}
	for i, ex := range exs {
		if ex.ID != i+1 {
			t.Errorf("example %d has ID %d", i, ex.ID)
		}
		if !ex.Expected[0] {
			t.Errorf("example %d: Table 2 reports Cupid = Y on every row", ex.ID)
		}
		goldResolvable(t, ex.Workload)
	}
	// Table 2 failure pattern: DIKE fails 6; MOMIS fails 5 and 6.
	if exs[5].Expected[1] || exs[5].Expected[2] {
		t.Error("example 6 should be expected-fail for DIKE and MOMIS")
	}
	if exs[4].Expected[2] {
		t.Error("example 5 should be expected-fail for MOMIS")
	}
}

func TestCIDXStats(t *testing.T) {
	tr := validTree(t, CIDX())
	st := tr.ComputeStats()
	if st.Leaves < 30 {
		t.Errorf("CIDX leaves = %d, want >= 30", st.Leaves)
	}
	tr2 := validTree(t, Excel())
	// Shared Address/Contact types expand into both parties.
	if tr2.NodeByPath("PurchaseOrder.DeliverTo.Address.street1") == nil ||
		tr2.NodeByPath("PurchaseOrder.InvoiceTo.Address.street1") == nil {
		t.Errorf("Excel shared types not expanded:\n%s", tr2.Dump())
	}
	if tr2.ComputeStats().Copies == 0 {
		t.Error("Excel should contain context copies")
	}
}

func TestRDBStarStats(t *testing.T) {
	rdb := RDB()
	if got := rdb.ComputeStats().RefInts; got != 12 {
		t.Errorf("RDB foreign keys = %d, want 12", got)
	}
	star := Star()
	if got := star.ComputeStats().RefInts; got != 4 {
		t.Errorf("Star foreign keys = %d, want 4", got)
	}
	tr := validTree(t, rdb)
	if tr.ComputeStats().JoinViews != 12 {
		t.Errorf("RDB join views = %d, want 12", tr.ComputeStats().JoinViews)
	}
}

func TestPaperThesaurus(t *testing.T) {
	th := PaperThesaurus()
	if s := th.Sim("Invoice", "Bill"); s != 1 {
		t.Errorf("Sim(Invoice,Bill) = %v", s)
	}
	if th.Expand("uom") == nil || th.Expand("po") == nil ||
		th.Expand("qty") == nil || th.Expand("num") == nil {
		t.Error("paper thesaurus missing an abbreviation")
	}
	// Nothing else: e.g. no customer~client entry.
	if _, ok := th.Lookup("customer", "client"); ok {
		t.Error("paper thesaurus should carry only the four+two entries")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	spec := SyntheticSpec{Tables: 3, ColsPerTable: 5, Depth: 2, Seed: 42, Rename: 0.4, Renest: 0.3, FKs: 2}
	a := Synthetic(spec)
	b := Synthetic(spec)
	if a.Source.Dump() != b.Source.Dump() || a.Target.Dump() != b.Target.Dump() {
		t.Error("synthetic generation not deterministic for equal seeds")
	}
	if len(a.Gold.Pairs) != 15 {
		t.Errorf("gold pairs = %d, want 15", len(a.Gold.Pairs))
	}
	goldResolvable(t, a)
	// Different seed differs.
	spec.Seed = 43
	c := Synthetic(spec)
	if c.Target.Dump() == a.Target.Dump() {
		t.Error("different seeds produced identical schemas")
	}
}

func TestSyntheticShapes(t *testing.T) {
	w := Synthetic(SyntheticSpec{Tables: 2, ColsPerTable: 4, Depth: 3, Seed: 7})
	tr := validTree(t, w.Source)
	if tr.ComputeStats().MaxDepth < 3 {
		t.Errorf("depth-3 spec produced max depth %d", tr.ComputeStats().MaxDepth)
	}
	// Defaults fill in.
	d := Synthetic(SyntheticSpec{Seed: 1})
	if d.Source.Len() == 0 {
		t.Error("default spec produced empty schema")
	}
	// FKs materialize as refints.
	f := Synthetic(SyntheticSpec{Tables: 3, ColsPerTable: 4, Seed: 9, FKs: 2})
	if f.Source.ComputeStats().RefInts == 0 {
		t.Error("FK spec produced no refints")
	}
}

func TestTable3RowsResolvable(t *testing.T) {
	w := CIDXExcel()
	ts := validTree(t, w.Source)
	tt := validTree(t, w.Target)
	for _, r := range Table3Rows() {
		if ts.NodeByPath(r.Source) == nil {
			t.Errorf("table3 source %q unresolved", r.Source)
		}
		if tt.NodeByPath(r.Target) == nil {
			t.Errorf("table3 target %q unresolved", r.Target)
		}
	}
}

func TestUniversity(t *testing.T) { goldResolvable(t, University()) }
