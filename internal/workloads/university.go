package workloads

import (
	"repro/internal/model"
	"repro/internal/sqlddl"
)

// University is an extra generalization workload outside the paper's
// purchase-order domain: a relational registrar database matched against a
// differently-shaped student-information schema. It exercises the same
// machinery — abbreviation expansion (DOB, Dept), synonymy
// (Surname~LastName, Semester~Term), foreign keys as join views, and
// structural disambiguation — on fresh vocabulary, supporting the paper's
// claim that the matcher is generic across application domains.
func University() Workload {
	src, err := sqlddl.Parse("Registrar", `
CREATE TABLE Students (
    StudentID INT PRIMARY KEY,
    FirstName VARCHAR(40),
    LastName VARCHAR(40),
    DOB DATE,
    Email VARCHAR(80)
);
CREATE TABLE Courses (
    CourseID INT PRIMARY KEY,
    Title VARCHAR(80),
    Credits INT,
    DeptCode VARCHAR(10)
);
CREATE TABLE Enrollment (
    StudentID INT REFERENCES Students (StudentID),
    CourseID INT REFERENCES Courses (CourseID),
    Grade VARCHAR(2),
    Semester VARCHAR(10),
    PRIMARY KEY (StudentID, CourseID)
);`)
	must3(err)

	dst := model.New("SIS")
	student := dst.AddChild(dst.Root(), "Student", model.KindElement)
	id := dst.AddChild(student, "Id", model.KindAttribute)
	id.Type = model.DTInt
	id.IsKey = true
	str(dst, student, "GivenName")
	str(dst, student, "Surname")
	bd := dst.AddChild(student, "BirthDate", model.KindAttribute)
	bd.Type = model.DTDate
	str(dst, student, "EMail")

	course := dst.AddChild(dst.Root(), "Course", model.KindElement)
	cid := dst.AddChild(course, "Code", model.KindAttribute)
	cid.Type = model.DTInt
	cid.IsKey = true
	str(dst, course, "CourseTitle")
	ch := dst.AddChild(course, "CreditHours", model.KindAttribute)
	ch.Type = model.DTInt
	str(dst, course, "Department")

	reg := dst.AddChild(dst.Root(), "Registration", model.KindElement)
	rs := dst.AddChild(reg, "StudentRef", model.KindAttribute)
	rs.Type = model.DTInt
	rc := dst.AddChild(reg, "CourseRef", model.KindAttribute)
	rc.Type = model.DTInt
	str(dst, reg, "FinalGrade")
	str(dst, reg, "Term")

	return Workload{
		Name:   "university",
		Source: src,
		Target: dst,
		Gold: Gold{
			Pairs: []GoldPair{
				{"Registrar.Students.StudentID", "SIS.Student.Id"},
				{"Registrar.Students.FirstName", "SIS.Student.GivenName"},
				{"Registrar.Students.LastName", "SIS.Student.Surname"},
				{"Registrar.Students.DOB", "SIS.Student.BirthDate"},
				{"Registrar.Students.Email", "SIS.Student.EMail"},
				{"Registrar.Courses.Title", "SIS.Course.CourseTitle"},
				{"Registrar.Courses.Credits", "SIS.Course.CreditHours"},
				{"Registrar.Courses.DeptCode", "SIS.Course.Department"},
				{"Registrar.Enrollment.Grade", "SIS.Registration.FinalGrade"},
				{"Registrar.Enrollment.Semester", "SIS.Registration.Term"},
				{"Registrar.Enrollment.StudentID", "SIS.Registration.StudentRef"},
				{"Registrar.Enrollment.CourseID", "SIS.Registration.CourseRef"},
			},
			AltSources: map[string][]string{
				"SIS.Student.Id":              {"Registrar.Enrollment.StudentID"},
				"SIS.Course.Code":             {"Registrar.Courses.CourseID", "Registrar.Enrollment.CourseID"},
				"SIS.Registration.StudentRef": {"Registrar.Students.StudentID"},
				"SIS.Registration.CourseRef":  {"Registrar.Courses.CourseID"},
			},
		},
		ScoreByElement: true,
	}
}

func must3(err error) {
	if err != nil {
		panic("workloads: " + err.Error())
	}
}
