package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// SyntheticSpec parameterizes the synthetic schema generator used for the
// scalability experiments (§10 lists scalability analysis as necessary
// future work; E9 in DESIGN.md).
type SyntheticSpec struct {
	// Tables is the number of top-level containers.
	Tables int
	// ColsPerTable is the number of leaf columns per container.
	ColsPerTable int
	// Depth nests each table's columns under Depth-1 intermediate group
	// elements (1 = flat).
	Depth int
	// Seed drives all pseudo-random choices; equal seeds give equal
	// schemas.
	Seed int64
	// Rename perturbs the copy: a fraction [0,1] of names get a synonym /
	// abbreviation substitution so the pair is not a trivial identity.
	Rename float64
	// Renest moves this fraction of a copy's leaves from their group to
	// the table level, varying the nesting.
	Renest float64
	// FKs adds this many foreign keys between consecutive tables.
	FKs int
	// Vocab overrides the (canonical, variant) column-name vocabulary; nil
	// uses the built-in commerce vocabulary. FamilyCorpus passes per-domain
	// vocabularies here to generate repositories with distinct clusters.
	Vocab [][2]string
}

// vocabulary for generated column names; pairs of (canonical, variant) let
// Rename produce realistic renamings.
var synthVocab = [][2]string{
	{"CustomerName", "ClientName"},
	{"OrderDate", "DateOfOrder"},
	{"UnitPrice", "PricePerUnit"},
	{"Quantity", "Qty"},
	{"PostalCode", "ZipCode"},
	{"Street", "StreetAddress"},
	{"City", "CityName"},
	{"Country", "CountryCode"},
	{"Telephone", "PhoneNumber"},
	{"Description", "Desc"},
	{"TotalAmount", "AmountTotal"},
	{"TaxRate", "RateOfTax"},
	{"Discount", "DiscountPct"},
	{"ProductName", "ItemName"},
	{"InvoiceNumber", "BillNumber"},
	{"ShipDate", "DeliveryDate"},
	{"Status", "State"},
	{"Category", "CategoryName"},
	{"Weight", "WeightKg"},
	{"Volume", "VolumeM3"},
}

var synthTypes = []model.DataType{
	model.DTInt, model.DTString, model.DTDecimal, model.DTDate, model.DTBool,
}

// Synthetic generates a source/target schema pair per spec. The target is
// a perturbed copy of the source (renamed and re-nested per the spec), and
// the gold mapping records the true correspondences.
func Synthetic(spec SyntheticSpec) Workload {
	if spec.Tables <= 0 {
		spec.Tables = 4
	}
	if spec.ColsPerTable <= 0 {
		spec.ColsPerTable = 6
	}
	if spec.Depth <= 0 {
		spec.Depth = 1
	}
	vocab := spec.Vocab
	if vocab == nil {
		vocab = synthVocab
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	type colSpec struct {
		table, group int
		name, alt    string
		typ          model.DataType
	}
	var cols []colSpec
	for t := 0; t < spec.Tables; t++ {
		for c := 0; c < spec.ColsPerTable; c++ {
			v := vocab[rng.Intn(len(vocab))]
			cs := colSpec{
				table: t,
				group: c % spec.Depth,
				name:  fmt.Sprintf("%s%d", v[0], c),
				alt:   fmt.Sprintf("%s%d", v[1], c),
				typ:   synthTypes[rng.Intn(len(synthTypes))],
			}
			cols = append(cols, cs)
		}
	}

	build := func(name string, target bool) (*model.Schema, map[string]string) {
		s := model.New(name)
		paths := map[string]string{} // colKey -> node path
		for t := 0; t < spec.Tables; t++ {
			tblName := fmt.Sprintf("Table%d", t)
			tbl := s.AddChild(s.Root(), tblName, model.KindTable)
			groups := make([]*model.Element, spec.Depth)
			groups[0] = tbl
			for g := 1; g < spec.Depth; g++ {
				groups[g] = s.AddChild(groups[g-1], fmt.Sprintf("Group%d_%d", t, g), model.KindElement)
			}
			for i, cs := range cols {
				if cs.table != t {
					continue
				}
				parent := groups[cs.group]
				colName := cs.name
				if target && rng.Float64() < spec.Rename {
					colName = cs.alt
				}
				if target && cs.group > 0 && rng.Float64() < spec.Renest {
					parent = tbl
				}
				col := s.AddChild(parent, colName, model.KindColumn)
				col.Type = cs.typ
				paths[fmt.Sprintf("%d", i)] = col.Path()
			}
		}
		for f := 0; f < spec.FKs && spec.Tables > 1; f++ {
			from := f % spec.Tables
			to := (f + 1) % spec.Tables
			var srcCol *model.Element
			model.PreOrder(s.Root(), func(e *model.Element) {
				if srcCol == nil && e.Kind == model.KindColumn &&
					e.Type == model.DTInt && ancestorTable(e) == fmt.Sprintf("Table%d", from) {
					srcCol = e
				}
			})
			var toTbl *model.Element
			for _, c := range s.Root().Children() {
				if c.Name == fmt.Sprintf("Table%d", to) {
					toTbl = c
				}
			}
			if srcCol != nil && toTbl != nil {
				must2ret(s.AddRefInt(fmt.Sprintf("fk%d", f), []*model.Element{srcCol}, toTbl))
			}
		}
		return s, paths
	}

	// The target must use an independent-but-identical random stream for
	// column perturbation, so regenerate deterministically.
	src, srcPaths := build("Source", false)
	rng = rand.New(rand.NewSource(spec.Seed + 1))
	dst, dstPaths := build("Target", true)

	var gold Gold
	for k, sp := range srcPaths {
		if dp, ok := dstPaths[k]; ok {
			gold.Pairs = append(gold.Pairs, GoldPair{Source: sp, Target: dp})
		}
	}
	return Workload{
		Name:   fmt.Sprintf("synthetic-t%d-c%d-d%d", spec.Tables, spec.ColsPerTable, spec.Depth),
		Source: src,
		Target: dst,
		Gold:   gold,
	}
}

func ancestorTable(e *model.Element) string {
	for n := e; n != nil; n = n.Parent() {
		if n.Kind == model.KindTable {
			return n.Name
		}
	}
	return ""
}

func must2ret(_ *model.Element, err error) {
	if err != nil {
		panic("workloads: " + err.Error())
	}
}
