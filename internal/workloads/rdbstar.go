package workloads

import (
	"repro/internal/model"
	"repro/internal/sqlddl"
)

// rdbDDL transcribes the RDB schema of Figure 8: a normalized operational
// database with a dozen tables and foreign keys.
const rdbDDL = `
CREATE TABLE ShippingMethods (
    ShippingMethodID INT PRIMARY KEY,
    ShippingMethod VARCHAR(40)
);
CREATE TABLE Region (
    RegionID INT PRIMARY KEY,
    RegionDescription VARCHAR(80)
);
CREATE TABLE Territories (
    TerritoryID INT PRIMARY KEY,
    TerritoryDescription VARCHAR(80)
);
CREATE TABLE TerritoryRegion (
    TerritoryID INT REFERENCES Territories (TerritoryID),
    RegionID INT REFERENCES Region (RegionID),
    PRIMARY KEY (TerritoryID, RegionID)
);
CREATE TABLE Employees (
    EmployeeID INT PRIMARY KEY,
    FirstName VARCHAR(40),
    LastName VARCHAR(40),
    Title VARCHAR(40),
    EmailName VARCHAR(60),
    Extension VARCHAR(10),
    Workphone VARCHAR(24)
);
CREATE TABLE EmployeeTerritory (
    EmployeeID INT REFERENCES Employees (EmployeeID),
    TerritoryID INT REFERENCES Territories (TerritoryID),
    PRIMARY KEY (EmployeeID, TerritoryID)
);
CREATE TABLE Brands (
    BrandID INT PRIMARY KEY,
    BrandDescription VARCHAR(80)
);
CREATE TABLE Products (
    ProductID INT PRIMARY KEY,
    BrandID INT REFERENCES Brands (BrandID),
    ProductName VARCHAR(80),
    BrandDescription VARCHAR(80)
);
CREATE TABLE Customers (
    CustomerID INT PRIMARY KEY,
    CompanyName VARCHAR(80),
    ContactFirstName VARCHAR(40),
    ContactLastName VARCHAR(40),
    BillingAddress VARCHAR(120),
    City VARCHAR(40),
    StateOrProvince VARCHAR(40),
    PostalCode VARCHAR(10),
    Country VARCHAR(40),
    ContactTitle VARCHAR(40),
    PhoneNumber VARCHAR(24),
    FaxNumber VARCHAR(24)
);
CREATE TABLE Orders (
    OrderID INT PRIMARY KEY,
    ShippingMethodID INT REFERENCES ShippingMethods (ShippingMethodID),
    EmployeeID INT REFERENCES Employees (EmployeeID),
    CustomerID INT REFERENCES Customers (CustomerID),
    OrderDate DATE,
    Quantity INT,
    UnitPrice DECIMAL(10,2),
    Discount DECIMAL(4,2),
    PurchaseOrdNumber VARCHAR(20),
    ShipName VARCHAR(80),
    ShipAddress VARCHAR(120),
    ShipDate DATE,
    FreightCharge DECIMAL(10,2),
    SalesTaxRate DECIMAL(4,2)
);
CREATE TABLE OrderDetails (
    OrderDetailID INT PRIMARY KEY,
    OrderID INT REFERENCES Orders (OrderID),
    ProductID INT REFERENCES Products (ProductID),
    Quantity INT,
    UnitPrice DECIMAL(10,2),
    Discount DECIMAL(4,2)
);
CREATE TABLE PaymentMethods (
    PaymentMethodID INT PRIMARY KEY,
    PaymentMethod VARCHAR(40)
);
CREATE TABLE Payment (
    PaymentID INT PRIMARY KEY,
    OrderID INT REFERENCES Orders (OrderID),
    PaymentMethodID INT REFERENCES PaymentMethods (PaymentMethodID),
    PaymentAmount DECIMAL(10,2),
    PaymentDate DATE,
    CreditCardNumber VARCHAR(20),
    CardholdersName VARCHAR(80),
    CredCardExpDate DATE
);
`

// starDDL transcribes the Star data-warehouse schema of Figure 8: the
// Sales fact table with Geography, Customers, Time and Products
// dimensions.
const starDDL = `
CREATE TABLE Geography (
    PostalCode VARCHAR(10) PRIMARY KEY,
    TerritoryID INT,
    TerritoryDescription VARCHAR(80),
    RegionID INT,
    RegionDescription VARCHAR(80)
);
CREATE TABLE Customers (
    CustomerID INT PRIMARY KEY,
    CustomerName VARCHAR(80),
    CustomerTypeID INT,
    CustomerTypeDescription VARCHAR(80),
    PostalCode VARCHAR(10),
    State VARCHAR(40)
);
CREATE TABLE Time (
    Date DATE PRIMARY KEY,
    DayOfWeek VARCHAR(12),
    Month INT,
    Year INT,
    Quarter INT,
    DayOfYear INT,
    Holiday VARCHAR(40),
    Weekend VARCHAR(3),
    YearMonth VARCHAR(10),
    WeekOfYear INT
);
CREATE TABLE Products (
    ProductID INT PRIMARY KEY,
    ProductName VARCHAR(80),
    BrandID INT,
    BrandDescription VARCHAR(80)
);
CREATE TABLE Sales (
    OrderID INT,
    OrderDetailID INT,
    CustomerID INT REFERENCES Customers (CustomerID),
    PostalCode VARCHAR(10) REFERENCES Geography (PostalCode),
    ProductID INT REFERENCES Products (ProductID),
    OrderDate DATE REFERENCES Time (Date),
    Quantity INT,
    UnitPrice DECIMAL(10,2),
    Discount DECIMAL(4,2),
    PRIMARY KEY (OrderID, OrderDetailID)
);
`

// RDB parses the normalized relational schema of Figure 8.
func RDB() *model.Schema {
	s, err := sqlddl.Parse("RDB", rdbDDL)
	must2(s, err)
	return s
}

// Star parses the star data-warehouse schema of Figure 8.
func Star() *model.Schema {
	s, err := sqlddl.Parse("Star", starDDL)
	must2(s, err)
	return s
}

func must2(s *model.Schema, err error) {
	if err != nil {
		panic("workloads: " + err.Error())
	}
}

// RDBStar is the §9.2 RDB -> Star workload. A good mapping maps the join
// of Orders and OrderDetails to Sales, Customers to Customers, Products to
// Products, the join of Territories and Region to Geography, and all three
// Star PostalCode columns to RDB Customers.PostalCode. The gold is stated
// in schema-element paths (ScoreByElement): a join-view context copy of a
// column counts as that column. Denormalized fact columns carry
// alternative acceptable sources.
func RDBStar() Workload {
	gold := Gold{
		Pairs: []GoldPair{
			// Customers dimension.
			{"RDB.Customers.CustomerID", "Star.Customers.CustomerID"},
			{"RDB.Customers.PostalCode", "Star.Customers.PostalCode"},
			{"RDB.Customers.StateOrProvince", "Star.Customers.State"},
			// Products dimension.
			{"RDB.Products.ProductID", "Star.Products.ProductID"},
			{"RDB.Products.ProductName", "Star.Products.ProductName"},
			{"RDB.Products.BrandID", "Star.Products.BrandID"},
			{"RDB.Products.BrandDescription", "Star.Products.BrandDescription"},
			// Sales fact table: Orders ⋈ OrderDetails.
			{"RDB.Orders.OrderID", "Star.Sales.OrderID"},
			{"RDB.OrderDetails.OrderDetailID", "Star.Sales.OrderDetailID"},
			{"RDB.Orders.CustomerID", "Star.Sales.CustomerID"},
			{"RDB.Customers.PostalCode", "Star.Sales.PostalCode"},
			{"RDB.OrderDetails.ProductID", "Star.Sales.ProductID"},
			{"RDB.Orders.OrderDate", "Star.Sales.OrderDate"},
			{"RDB.OrderDetails.Quantity", "Star.Sales.Quantity"},
			{"RDB.OrderDetails.UnitPrice", "Star.Sales.UnitPrice"},
			{"RDB.OrderDetails.Discount", "Star.Sales.Discount"},
			// Geography dimension: Territories ⋈ Region via TerritoryRegion.
			{"RDB.Customers.PostalCode", "Star.Geography.PostalCode"},
			{"RDB.TerritoryRegion.TerritoryID", "Star.Geography.TerritoryID"},
			{"RDB.Territories.TerritoryDescription", "Star.Geography.TerritoryDescription"},
			{"RDB.TerritoryRegion.RegionID", "Star.Geography.RegionID"},
			{"RDB.Region.RegionDescription", "Star.Geography.RegionDescription"},
		},
		AltSources: map[string][]string{
			"Star.Sales.OrderID":             {"RDB.OrderDetails.OrderID", "RDB.Payment.OrderID"},
			"Star.Sales.CustomerID":          {"RDB.Customers.CustomerID"},
			"Star.Sales.ProductID":           {"RDB.Products.ProductID"},
			"Star.Sales.Quantity":            {"RDB.Orders.Quantity"},
			"Star.Sales.UnitPrice":           {"RDB.Orders.UnitPrice"},
			"Star.Sales.Discount":            {"RDB.Orders.Discount"},
			"Star.Products.BrandID":          {"RDB.Brands.BrandID"},
			"Star.Products.BrandDescription": {"RDB.Brands.BrandDescription"},
			"Star.Geography.TerritoryID":     {"RDB.EmployeeTerritory.TerritoryID"},
		},
	}
	return Workload{Name: "rdb-star", Source: RDB(), Target: Star(), Gold: gold, ScoreByElement: true}
}
