package workloads

import (
	"fmt"
	"strings"
)

// Cross-format conformance corpus: the same logical schema per domain
// family rendered as SQL DDL, JSON Schema and Avro. Each family's schema
// is two tables (records / object properties) splitting the family
// vocabulary's ten canonical column names, with column types drawn from a
// fixed cycle whose spellings map to the same broad class
// (model.ParseDataType) in every format. The examples/crossformat files
// are this corpus checked in verbatim (a conformance test keeps them in
// sync), and the cupidbench crossformat experiment regenerates it to gate
// format-to-format retrieval quality.

// crossFamilyNames names the familyVocabs domains, in order.
var crossFamilyNames = []string{
	"Finance", "Healthcare", "Logistics", "Astronomy", "HumanResources",
	"Library", "Telemetry", "Travel", "Sports", "Agriculture",
}

// crossTypes is the per-column type cycle: one concrete spelling per
// format, all normalizing to the same broad class.
var crossTypes = []struct{ sql, js, avro string }{
	{"INT", `{"type": "integer"}`, `"long"`},
	{"VARCHAR(80)", `{"type": "string"}`, `"string"`},
	{"DOUBLE", `{"type": "number"}`, `"double"`},
	{"DATE", `{"type": "string", "format": "date"}`, `{"type": "int", "logicalType": "date"}`},
	{"TIMESTAMP", `{"type": "string", "format": "date-time"}`, `{"type": "long", "logicalType": "timestamp-millis"}`},
	{"BOOLEAN", `{"type": "boolean"}`, `"boolean"`},
}

// CrossFormatDoc is one logical schema rendered in one concrete format.
type CrossFormatDoc struct {
	// Family is the domain name ("Finance", ...). It doubles as the schema
	// name passed to the parser, so the root element carries the same
	// tokens in every rendering.
	Family string
	// Format is the cupid.ParseSchema format key: "sql", "jsonschema" or
	// "avro".
	Format string
	// File is the examples/crossformat file name the rendering is checked
	// in under ("finance.sql", "finance.jsonschema", "finance.avsc").
	File string
	// Content is the rendered schema document.
	Content string
}

// CrossFormatFamilies reports how many domain families the corpus covers.
func CrossFormatFamilies() int { return len(crossFamilyNames) }

// CrossFormatCorpus renders every family in every format: len(families)×3
// documents, fully deterministic.
func CrossFormatCorpus() []CrossFormatDoc {
	var docs []CrossFormatDoc
	for fam, name := range crossFamilyNames {
		vocab := familyVocabs[fam]
		cols := make([]string, len(vocab))
		for i, v := range vocab {
			cols[i] = v[0] // canonical spelling
		}
		half := len(cols) / 2
		tables := []struct {
			name string
			cols []string
			off  int // column index offset into the type cycle
		}{
			{name + "Master", cols[:half], 0},
			{name + "Detail", cols[half:], half},
		}
		lower := strings.ToLower(name)
		ext := map[string]string{"sql": ".sql", "jsonschema": ".jsonschema", "avro": ".avsc"}
		render := map[string]string{
			"sql":        renderCrossSQL(tables),
			"jsonschema": renderCrossJSONSchema(name, tables),
			"avro":       renderCrossAvro(name, tables),
		}
		for _, format := range []string{"sql", "jsonschema", "avro"} {
			docs = append(docs, CrossFormatDoc{
				Family:  name,
				Format:  format,
				File:    lower + ext[format],
				Content: render[format],
			})
		}
	}
	return docs
}

type crossTable = struct {
	name string
	cols []string
	off  int
}

func renderCrossSQL(tables []crossTable) string {
	var b strings.Builder
	for _, t := range tables {
		fmt.Fprintf(&b, "CREATE TABLE %s (\n", t.name)
		for i, c := range t.cols {
			comma := ","
			if i == len(t.cols)-1 {
				comma = ""
			}
			fmt.Fprintf(&b, "    %s %s%s\n", c, crossTypes[(t.off+i)%len(crossTypes)].sql, comma)
		}
		b.WriteString(");\n")
	}
	return b.String()
}

func renderCrossJSONSchema(name string, tables []crossTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "{\n  \"title\": %q,\n  \"type\": \"object\",\n  \"properties\": {\n", name)
	for ti, t := range tables {
		fmt.Fprintf(&b, "    %q: {\n      \"type\": \"object\",\n      \"properties\": {\n", t.name)
		for i, c := range t.cols {
			comma := ","
			if i == len(t.cols)-1 {
				comma = ""
			}
			fmt.Fprintf(&b, "        %q: %s%s\n", c, crossTypes[(t.off+i)%len(crossTypes)].js, comma)
		}
		b.WriteString("      }\n    }")
		if ti < len(tables)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  }\n}\n")
	return b.String()
}

func renderCrossAvro(name string, tables []crossTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "{\n  \"type\": \"record\",\n  \"name\": %q,\n  \"fields\": [\n", name)
	for ti, t := range tables {
		fmt.Fprintf(&b, "    {\"name\": %q, \"type\": {\n      \"type\": \"record\",\n      \"name\": \"%sType\",\n      \"fields\": [\n", t.name, t.name)
		for i, c := range t.cols {
			comma := ","
			if i == len(t.cols)-1 {
				comma = ""
			}
			fmt.Fprintf(&b, "        {\"name\": %q, \"type\": %s}%s\n", c, crossTypes[(t.off+i)%len(crossTypes)].avro, comma)
		}
		b.WriteString("      ]\n    }}")
		if ti < len(tables)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  ]\n}\n")
	return b.String()
}
