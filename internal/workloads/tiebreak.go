package workloads

import (
	"fmt"
	"strings"
)

// Ambiguous-names tie-break corpus: n relational schemas that are
// byte-identical as SQL — one table of generically named, uniformly typed
// columns — so name- and type-based matching cannot tell them apart, while
// each schema's sampled instance values follow a distinct per-column value
// kind (ints, words, floats, dates, timestamps, booleans, rotated by
// schema index). A probe drawn from one schema's value distribution ranks
// all n targets identically without instances (the tie resolves by
// registry order, ~1/n top-1 accuracy) and should rank its own schema
// first once instance profiles blend into leaf matching. The cupidbench
// crossformat experiment gates exactly that separation.

// tieBreakColumns is the per-schema column count; with tieBreakKinds value
// kinds rotated by schema index, up to tieBreakKinds schemas have pairwise
// fully distinct per-column kinds.
const (
	tieBreakColumns = 6
	tieBreakKinds   = 6
)

// TieBreakDoc is one tie-break target: the (shared) SQL rendering and the
// schema's own sampled-instances payload.
type TieBreakDoc struct {
	Name      string
	SQL       string
	Instances string
}

// TieBreakTargets renders the n tie-break target schemas (n capped at
// tieBreakKinds so per-column value kinds stay pairwise distinct).
func TieBreakTargets(n int) []TieBreakDoc {
	if n > tieBreakKinds {
		n = tieBreakKinds
	}
	docs := make([]TieBreakDoc, n)
	for j := range docs {
		docs[j] = TieBreakDoc{
			Name:      fmt.Sprintf("tiebreak%d", j),
			SQL:       tieBreakSQL(),
			Instances: tieBreakInstances(j, 0),
		}
	}
	return docs
}

// TieBreakProbe renders a probe drawn from target j's value distribution:
// the same SQL document with fresh samples of the same per-column kinds.
func TieBreakProbe(j int) TieBreakDoc {
	return TieBreakDoc{
		Name:      fmt.Sprintf("tiebreak%d_probe", j),
		SQL:       tieBreakSQL(),
		Instances: tieBreakInstances(j, 50),
	}
}

// tieBreakSQL renders the shared schema: generic names, uniform type.
func tieBreakSQL() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE Records (\n")
	for i := 0; i < tieBreakColumns; i++ {
		comma := ","
		if i == tieBreakColumns-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "    Field%d VARCHAR(64)%s\n", i+1, comma)
	}
	b.WriteString(");\n")
	return b.String()
}

// tieBreakInstances renders schema j's sampled-instances payload: 16
// values per column, column i drawing kind (i+j) mod tieBreakKinds, with
// off shifting the concrete draws (a probe samples the same distribution,
// not the same values).
func tieBreakInstances(j, off int) string {
	var b strings.Builder
	b.WriteString("{")
	for i := 0; i < tieBreakColumns; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q: [", fmt.Sprintf("Records.Field%d", i+1))
		for k := 0; k < 16; k++ {
			if k > 0 {
				b.WriteString(", ")
			}
			b.WriteString(tieBreakValue((i+j)%tieBreakKinds, j, i, k+off))
		}
		b.WriteString("]")
	}
	b.WriteString("}")
	return b.String()
}

// tieBreakValue renders one sampled value of the given kind as a JSON
// scalar literal. Values vary with (j, i, k) so top-k sketches overlap
// within a distribution without being constant.
func tieBreakValue(kind, j, i, k int) string {
	switch kind {
	case 0: // small integers
		return fmt.Sprintf("%d", j*100+i*10+k%8)
	case 1: // words
		return fmt.Sprintf("%q", fmt.Sprintf("item-%c%c-%02d", 'a'+j, 'a'+i, k%8))
	case 2: // floats
		return fmt.Sprintf("%.2f", float64(j+1)*10+float64(k%8)/4)
	case 3: // dates
		return fmt.Sprintf("%q", fmt.Sprintf("2024-%02d-%02d", 1+(j+i)%12, 1+k%28))
	case 4: // timestamps
		return fmt.Sprintf("%q", fmt.Sprintf("2024-%02d-%02dT0%d:00:00Z", 1+(j+i)%12, 1+k%28, k%10))
	default: // booleans
		if (j+i+k)%2 == 0 {
			return "true"
		}
		return "false"
	}
}
