package workloads

import "repro/internal/model"

// CanonicalExample is one of the six §9.1 sensitivity tests. The schemas
// are small object-oriented class definitions (classes with typed
// attributes); Expected records the paper's Table 2 row — whether Cupid,
// DIKE, and MOMIS achieve the desired mapping.
type CanonicalExample struct {
	ID          int
	Description string
	Workload
	// Expected is the Table 2 row: Y/N for Cupid, DIKE, MOMIS-ARTEMIS.
	Expected [3]bool
}

// customerSchema builds Customer(Customer_Number:int key, Name:string,
// Address:string) plus optional extra columns, used by examples 1-4.
func customerSchema(schemaName, className string, tel model.DataType, renames map[string]string) *model.Schema {
	s := model.New(schemaName)
	c := s.AddChild(s.Root(), className, model.KindTable)
	name := func(n string) string {
		if r, ok := renames[n]; ok {
			return r
		}
		return n
	}
	num := s.AddChild(c, name("CustomerNumber"), model.KindColumn)
	num.Type = model.DTInt
	num.IsKey = true
	s.AddChild(c, name("Name"), model.KindColumn).Type = model.DTString
	s.AddChild(c, name("Address"), model.KindColumn).Type = model.DTString
	if tel != model.DTNone {
		s.AddChild(c, name("Telephone"), model.KindColumn).Type = tel
	}
	return s
}

// Canonical returns the six canonical examples of §9.1 in order.
func Canonical() []CanonicalExample {
	var out []CanonicalExample

	// 1. Identical schemas.
	{
		s1 := customerSchema("Schema1", "Customer", model.DTNone, nil)
		s2 := customerSchema("Schema2", "Customer", model.DTNone, nil)
		out = append(out, CanonicalExample{
			ID:          1,
			Description: "Identical schemas",
			Expected:    [3]bool{true, true, true},
			Workload: Workload{
				Name: "canonical1", Source: s1, Target: s2,
				Gold: Gold{Pairs: []GoldPair{
					{"Schema1.Customer.CustomerNumber", "Schema2.Customer.CustomerNumber"},
					{"Schema1.Customer.Name", "Schema2.Customer.Name"},
					{"Schema1.Customer.Address", "Schema2.Customer.Address"},
				}},
			},
		})
	}

	// 2. Same names, different data types (Telephone: string vs integer).
	{
		s1 := customerSchema("Schema1", "Customer", model.DTString, nil)
		s2 := customerSchema("Schema2", "Customer", model.DTInt, nil)
		out = append(out, CanonicalExample{
			ID:          2,
			Description: "Atomic elements with same names, but different data types",
			Expected:    [3]bool{true, true, true},
			Workload: Workload{
				Name: "canonical2", Source: s1, Target: s2,
				Gold: Gold{Pairs: []GoldPair{
					{"Schema1.Customer.CustomerNumber", "Schema2.Customer.CustomerNumber"},
					{"Schema1.Customer.Name", "Schema2.Customer.Name"},
					{"Schema1.Customer.Address", "Schema2.Customer.Address"},
					{"Schema1.Customer.Telephone", "Schema2.Customer.Telephone"},
				}},
			},
		})
	}

	// 3. Same data types, slightly different names (prefix/suffix added).
	{
		s1 := customerSchema("Schema1", "Customer", model.DTString, nil)
		s2 := customerSchema("Schema2", "Customer", model.DTString, map[string]string{
			"Address":        "StreetAddress",
			"Name":           "CustomerName",
			"CustomerNumber": "CustomerNumberID",
			"Telephone":      "TelephoneNumber",
		})
		out = append(out, CanonicalExample{
			ID:          3,
			Description: "Atomic elements with same data types, but different names (prefix/suffix added)",
			Expected:    [3]bool{true, true, true}, // DIKE/MOMIS need manual entries (footnotes a, b)
			Workload: Workload{
				Name: "canonical3", Source: s1, Target: s2,
				Gold: Gold{Pairs: []GoldPair{
					{"Schema1.Customer.CustomerNumber", "Schema2.Customer.CustomerNumberID"},
					{"Schema1.Customer.Name", "Schema2.Customer.CustomerName"},
					{"Schema1.Customer.Address", "Schema2.Customer.StreetAddress"},
					{"Schema1.Customer.Telephone", "Schema2.Customer.TelephoneNumber"},
				}},
			},
		})
	}

	// 4. Different class names, same attributes (Customer vs Person).
	{
		s1 := customerSchema("Schema1", "Customer", model.DTString, nil)
		s2 := customerSchema("Schema2", "Person", model.DTString, nil)
		out = append(out, CanonicalExample{
			ID:          4,
			Description: "Different class names, but atomic elements same names and data types",
			Expected:    [3]bool{true, true, true},
			Workload: Workload{
				Name: "canonical4", Source: s1, Target: s2,
				Gold: Gold{Pairs: []GoldPair{
					{"Schema1.Customer.CustomerNumber", "Schema2.Person.CustomerNumber"},
					{"Schema1.Customer.Name", "Schema2.Person.Name"},
					{"Schema1.Customer.Address", "Schema2.Person.Address"},
					{"Schema1.Customer.Telephone", "Schema2.Person.Telephone"},
				}},
			},
		})
	}

	// 5. Different nesting: nested vs flat Customer.
	{
		s1 := model.New("NestedSchema")
		c := s1.AddChild(s1.Root(), "Customer", model.KindTable)
		intAttr(s1, c, "SSN").IsKey = true
		str(s1, c, "Telephone")
		n := s1.AddChild(c, "Name", model.KindElement)
		str(s1, n, "FirstName")
		str(s1, n, "LastName")
		a := s1.AddChild(c, "Address", model.KindElement)
		str(s1, a, "Street")
		str(s1, a, "City")
		str(s1, a, "State")
		str(s1, a, "Zip")

		s2 := model.New("FlatSchema")
		f := s2.AddChild(s2.Root(), "Customer", model.KindTable)
		intAttr(s2, f, "SSN").IsKey = true
		str(s2, f, "Telephone")
		str(s2, f, "FirstName")
		str(s2, f, "LastName")
		str(s2, f, "Street")
		str(s2, f, "City")
		str(s2, f, "State")
		str(s2, f, "Zip")

		out = append(out, CanonicalExample{
			ID:          5,
			Description: "Different nesting of the data - similar schemas with nested and flat structures",
			Expected:    [3]bool{true, true, false},
			Workload: Workload{
				Name: "canonical5", Source: s1, Target: s2,
				Gold: Gold{Pairs: []GoldPair{
					{"NestedSchema.Customer.SSN", "FlatSchema.Customer.SSN"},
					{"NestedSchema.Customer.Telephone", "FlatSchema.Customer.Telephone"},
					{"NestedSchema.Customer.Name.FirstName", "FlatSchema.Customer.FirstName"},
					{"NestedSchema.Customer.Name.LastName", "FlatSchema.Customer.LastName"},
					{"NestedSchema.Customer.Address.Street", "FlatSchema.Customer.Street"},
					{"NestedSchema.Customer.Address.City", "FlatSchema.Customer.City"},
					{"NestedSchema.Customer.Address.State", "FlatSchema.Customer.State"},
					{"NestedSchema.Customer.Address.Zip", "FlatSchema.Customer.Zip"},
				}},
			},
		})
	}

	// 6. Type substitution / context-dependent mapping.
	{
		s1 := model.New("Schema1")
		po1 := s1.AddChild(s1.Root(), "PurchaseOrder", model.KindTable)
		intAttr(s1, po1, "OrderNumber").IsKey = true
		str(s1, po1, "ProductName")
		addrT := s1.NewElement("Address", model.KindType)
		str(s1, addrT, "Name")
		str(s1, addrT, "Street")
		str(s1, addrT, "City")
		str(s1, addrT, "Zip")
		str(s1, addrT, "Telephone")
		shipping := s1.AddChild(po1, "ShippingAddress", model.KindElement)
		billing := s1.AddChild(po1, "BillingAddress", model.KindElement)
		must(s1.DeriveFrom(shipping, addrT))
		must(s1.DeriveFrom(billing, addrT))

		s2 := model.New("Schema2")
		po2 := s2.AddChild(s2.Root(), "PurchaseOrder", model.KindTable)
		intAttr(s2, po2, "OrderNumber").IsKey = true
		str(s2, po2, "ProductName")
		addrClass := func(parent *model.Element, elemName, typeName string) {
			t := s2.NewElement(typeName, model.KindType)
			str(s2, t, "Name")
			str(s2, t, "Street")
			str(s2, t, "City")
			str(s2, t, "Zip")
			str(s2, t, "Telephone")
			e := s2.AddChild(parent, elemName, model.KindElement)
			must(s2.DeriveFrom(e, t))
		}
		addrClass(po2, "ShippingAddress", "ShipTo")
		addrClass(po2, "BillingAddress", "BillTo")

		out = append(out, CanonicalExample{
			ID:          6,
			Description: "Type Substitution or Context dependent mapping",
			Expected:    [3]bool{true, false, false},
			Workload: Workload{
				Name: "canonical6", Source: s1, Target: s2,
				Gold: Gold{
					Pairs: []GoldPair{
						{"Schema1.PurchaseOrder.OrderNumber", "Schema2.PurchaseOrder.OrderNumber"},
						{"Schema1.PurchaseOrder.ProductName", "Schema2.PurchaseOrder.ProductName"},
						{"Schema1.PurchaseOrder.ShippingAddress.Street", "Schema2.PurchaseOrder.ShippingAddress.Street"},
						{"Schema1.PurchaseOrder.ShippingAddress.City", "Schema2.PurchaseOrder.ShippingAddress.City"},
						{"Schema1.PurchaseOrder.BillingAddress.Street", "Schema2.PurchaseOrder.BillingAddress.Street"},
						{"Schema1.PurchaseOrder.BillingAddress.City", "Schema2.PurchaseOrder.BillingAddress.City"},
					},
					Forbidden: []GoldPair{
						{"Schema1.PurchaseOrder.ShippingAddress.Street", "Schema2.PurchaseOrder.BillingAddress.Street"},
						{"Schema1.PurchaseOrder.BillingAddress.Street", "Schema2.PurchaseOrder.ShippingAddress.Street"},
					},
				},
			},
		})
	}
	return out
}
