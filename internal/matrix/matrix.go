// Package matrix provides the flat row-major float64 matrix used for
// every similarity table in the pipeline (element-level lsim, node-level
// lsim, ssim, wsim).
//
// The earlier representation was [][]float64 with one allocation per row;
// on the quadratic phases of Cupid (TreeMatch's leaf sweeps, mapping
// generation, the eval consumers) that cost one pointer indirection per
// row access and scattered rows across the heap. Matrix keeps a single
// backing []float64, so rows are cache-contiguous, whole-matrix operations
// (Zero, Equal, MaxAbsDiff) are simple slice loops, and building an n×m
// table is exactly two allocations. Matrix is a small value (four words);
// copies share the backing slice, as with ordinary slices.
//
// Concurrent use: distinct cells may be written concurrently (the parallel
// sweeps write disjoint index ranges); concurrent reads are always safe.
package matrix

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows×cols matrix backed by one allocation.
func New(rows, cols int) Matrix {
	return Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a Matrix by copying a [][]float64; it panics on ragged
// input. Convenience for tests and callers migrating from the old
// representation.
func FromRows(rows [][]float64) Matrix {
	if len(rows) == 0 {
		return Matrix{}
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrix: FromRows given ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Rows returns the number of rows.
func (m Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m Matrix) Cols() int { return m.cols }

// Empty reports whether the matrix has no cells (the zero value is empty).
func (m Matrix) Empty() bool { return m.rows == 0 || m.cols == 0 }

// At returns the element at row i, column j.
func (m Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set stores v at row i, column j.
func (m Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the backing store. The slice is
// full-capacity-clipped, so appends by the caller cannot bleed into the
// next row.
func (m Matrix) Row(i int) []float64 {
	lo, hi := i*m.cols, (i+1)*m.cols
	return m.data[lo:hi:hi]
}

// Zero resets every cell to 0 in place.
func (m Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	out := Matrix{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(out.data, m.data)
	return out
}

// Equal reports whether the two matrices have identical shape and
// bit-identical cells (no tolerance: the determinism tests require the
// parallel pipeline to reproduce the sequential result exactly).
func (m Matrix) Equal(o Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute cell difference between two
// same-shaped matrices; it panics on shape mismatch.
func (m Matrix) MaxAbsDiff(o Matrix) float64 {
	if m.rows != o.rows || m.cols != o.cols {
		panic("matrix: MaxAbsDiff shape mismatch")
	}
	worst := 0.0
	for i, v := range m.data {
		d := v - o.data[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
