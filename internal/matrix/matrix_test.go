package matrix

import "testing"

func TestAtSetRow(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 0.5)
	if got := m.At(1, 2); got != 0.5 {
		t.Fatalf("At(1,2) = %v after Set", got)
	}
	row := m.Row(1)
	if len(row) != 4 || row[2] != 0.5 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[3] = 0.75 // row aliases the backing store
	if got := m.At(1, 3); got != 0.75 {
		t.Fatalf("write through Row not visible: At(1,3) = %v", got)
	}
	// Rows are capacity-clipped: an append must not clobber row 2.
	_ = append(row, 99)
	if got := m.At(2, 0); got != 0 {
		t.Fatalf("append through Row bled into next row: %v", got)
	}
}

func TestFromRowsAndEqual(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	n := New(2, 2)
	n.Set(0, 0, 1)
	n.Set(0, 1, 2)
	n.Set(1, 0, 3)
	n.Set(1, 1, 4)
	if !m.Equal(n) {
		t.Fatal("FromRows result differs from Set-built matrix")
	}
	n.Set(1, 1, 5)
	if m.Equal(n) {
		t.Fatal("Equal missed a differing cell")
	}
	if m.Equal(New(2, 3)) {
		t.Fatal("Equal ignored shape mismatch")
	}
}

func TestZeroCloneMaxAbsDiff(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {3, 4}})
	c := m.Clone()
	m.Zero()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("Zero left %v at %d,%d", m.At(i, j), i, j)
			}
		}
	}
	if c.At(1, 1) != 4 {
		t.Fatal("Clone shares backing store with original")
	}
	if d := c.MaxAbsDiff(m); d != 4 {
		t.Fatalf("MaxAbsDiff = %v, want 4", d)
	}
}

func TestEmpty(t *testing.T) {
	var zero Matrix
	if !zero.Empty() {
		t.Fatal("zero value must be Empty")
	}
	if New(2, 2).Empty() {
		t.Fatal("2x2 matrix reported Empty")
	}
}
