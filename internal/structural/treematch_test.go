package structural

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/schematree"
)

// lsimByName builds a node-level lsim matrix: 1.0 for equal names, plus
// explicit overrides for named pairs (order-insensitive).
func lsimByName(ts, tt *schematree.Tree, overrides map[[2]string]float64) matrix.Matrix {
	l := matrix.New(ts.Len(), tt.Len())
	get := func(a, b string) (float64, bool) {
		if v, ok := overrides[[2]string{a, b}]; ok {
			return v, true
		}
		v, ok := overrides[[2]string{b, a}]
		return v, ok
	}
	for _, s := range ts.Nodes {
		for _, t := range tt.Nodes {
			switch {
			case s.Name() == t.Name():
				l.Set(s.Idx, t.Idx, 1)
			default:
				if v, ok := get(s.Name(), t.Name()); ok {
					l.Set(s.Idx, t.Idx, v)
				}
			}
		}
	}
	return l
}

func mustTree(t *testing.T, s *model.Schema) *schematree.Tree {
	t.Helper()
	tr, err := schematree.Build(s, schematree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// flatCustomer builds Customer(CustomerNumber:int, Name:string,
// Address:string) under the given schema name.
func flatCustomer(name string) *model.Schema {
	s := model.New(name)
	c := s.AddChild(s.Root(), "Customer", model.KindTable)
	s.AddChild(c, "CustomerNumber", model.KindColumn).Type = model.DTInt
	s.AddChild(c, "Name", model.KindColumn).Type = model.DTString
	s.AddChild(c, "Address", model.KindColumn).Type = model.DTString
	return s
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	p.ThHigh = 0.3 // below thaccept
	if p.Validate() == nil {
		t.Error("accepted thhigh < thaccept")
	}
	p = DefaultParams()
	p.CInc = 0.5
	if p.Validate() == nil {
		t.Error("accepted cinc < 1")
	}
	p = DefaultParams()
	p.CDec = 0
	if p.Validate() == nil {
		t.Error("accepted cdec = 0")
	}
	p = DefaultParams()
	p.LeafCountRatio = 0.5
	if p.Validate() == nil {
		t.Error("accepted ratio < 1")
	}
	p = DefaultParams()
	p.FrontierDepth = -1
	if p.Validate() == nil {
		t.Error("accepted negative frontier depth")
	}
}

func TestCompatTable(t *testing.T) {
	c := DefaultCompat()
	if got := c.Lookup(model.DTInt, model.DTInt); got != 0.5 {
		t.Errorf("identical types = %v, want 0.5", got)
	}
	if got := c.Lookup(model.DTInt, model.DTFloat); got != 0.45 {
		t.Errorf("int/float = %v, want 0.45", got)
	}
	if got := c.Lookup(model.DTString, model.DTInt); got != 0.3 {
		t.Errorf("string/int = %v, want 0.3", got)
	}
	if got := c.Lookup(model.DTBool, model.DTDate); got != 0.1 {
		t.Errorf("bool/date = %v, want 0.1", got)
	}
	// Symmetry over the whole table.
	for a := model.DataType(0); a < model.NumDataTypes; a++ {
		for b := model.DataType(0); b < model.NumDataTypes; b++ {
			if c[a][b] != c[b][a] {
				t.Fatalf("asymmetric at %v,%v", a, b)
			}
			if c[a][b] < 0 || c[a][b] > 0.5 {
				t.Fatalf("entry %v,%v = %v out of [0,0.5]", a, b, c[a][b])
			}
		}
	}
	// Set clamps.
	c.Set(model.DTInt, model.DTBool, 0.9)
	if c.Lookup(model.DTInt, model.DTBool) != 0.5 {
		t.Error("Set did not clamp to 0.5")
	}
}

func TestIdenticalSchemasMatch(t *testing.T) {
	ts := mustTree(t, flatCustomer("S1"))
	tt := mustTree(t, flatCustomer("S2"))
	lsim := lsimByName(ts, tt, nil)
	p := DefaultParams()
	res := TreeMatch(ts, tt, lsim, p)

	// Every leaf maps to its namesake with wsim >= thaccept.
	for _, si := range ts.Leaves(ts.Root) {
		s := ts.Nodes[si]
		for _, ti := range tt.Leaves(tt.Root) {
			tn := tt.Nodes[ti]
			w := res.WSim.At(si, ti)
			if s.Name() == tn.Name() && w < p.ThAccept {
				t.Errorf("wsim(%s,%s) = %v below thaccept", s.Name(), tn.Name(), w)
			}
			if s.Name() != tn.Name() && w >= res.WSim.At(si, bestByName(tt, s.Name())) {
				t.Errorf("wsim(%s,%s) = %v not below namesake", s.Name(), tn.Name(), w)
			}
		}
	}
	// Customer table pair matches structurally.
	cs := ts.NodeByPath("S1.Customer")
	ct := tt.NodeByPath("S2.Customer")
	if res.SSim.At(cs.Idx, ct.Idx) < 0.99 {
		t.Errorf("ssim(Customer,Customer) = %v, want ~1", res.SSim.At(cs.Idx, ct.Idx))
	}
	if res.Comparisons == 0 {
		t.Error("no comparisons recorded")
	}
}

func bestByName(tt *schematree.Tree, name string) int {
	for _, n := range tt.Nodes {
		if n.Name() == name {
			return n.Idx
		}
	}
	return 0
}

// TestContextDisambiguation reproduces the paper's City/Street example:
// City and Street under POBillTo must bind to City and Street under
// InvoiceTo (Bill ~ Invoice) rather than under DeliverTo.
func TestContextDisambiguation(t *testing.T) {
	s1 := model.New("PO")
	bill := s1.AddChild(s1.Root(), "POBillTo", model.KindElement)
	s1.AddChild(bill, "City", model.KindColumn).Type = model.DTString
	s1.AddChild(bill, "Street", model.KindColumn).Type = model.DTString
	ship := s1.AddChild(s1.Root(), "POShipTo", model.KindElement)
	s1.AddChild(ship, "City", model.KindColumn).Type = model.DTString
	s1.AddChild(ship, "Street", model.KindColumn).Type = model.DTString

	s2 := model.New("PurchaseOrder")
	inv := s2.AddChild(s2.Root(), "InvoiceTo", model.KindElement)
	s2.AddChild(inv, "City", model.KindColumn).Type = model.DTString
	s2.AddChild(inv, "Street", model.KindColumn).Type = model.DTString
	del := s2.AddChild(s2.Root(), "DeliverTo", model.KindElement)
	s2.AddChild(del, "City", model.KindColumn).Type = model.DTString
	s2.AddChild(del, "Street", model.KindColumn).Type = model.DTString

	ts, tt := mustTree(t, s1), mustTree(t, s2)
	lsim := lsimByName(ts, tt, map[[2]string]float64{
		{"POBillTo", "InvoiceTo"}: 0.85,
		{"POShipTo", "DeliverTo"}: 0.85,
		{"PO", "PurchaseOrder"}:   1.0,
	})
	res := TreeMatch(ts, tt, lsim, DefaultParams())

	cityBill := ts.NodeByPath("PO.POBillTo.City")
	cityInv := tt.NodeByPath("PurchaseOrder.InvoiceTo.City")
	cityDel := tt.NodeByPath("PurchaseOrder.DeliverTo.City")
	wInv := res.WSim.At(cityBill.Idx, cityInv.Idx)
	wDel := res.WSim.At(cityBill.Idx, cityDel.Idx)
	if wInv <= wDel {
		t.Errorf("POBillTo.City: wsim(InvoiceTo.City)=%v should exceed wsim(DeliverTo.City)=%v", wInv, wDel)
	}
	// And the containers themselves.
	bN := ts.NodeByPath("PO.POBillTo")
	iN := tt.NodeByPath("PurchaseOrder.InvoiceTo")
	dN := tt.NodeByPath("PurchaseOrder.DeliverTo")
	if res.WSim.At(bN.Idx, iN.Idx) <= res.WSim.At(bN.Idx, dN.Idx) {
		t.Errorf("POBillTo should prefer InvoiceTo: %v vs %v",
			res.WSim.At(bN.Idx, iN.Idx), res.WSim.At(bN.Idx, dN.Idx))
	}
}

// TestNestingRobustness reproduces canonical example 5: a nested and a
// flat Customer schema still produce correct leaf matches because ssim is
// leaf-based.
func TestNestingRobustness(t *testing.T) {
	nested := model.New("Nested")
	c := nested.AddChild(nested.Root(), "Customer", model.KindTable)
	nested.AddChild(c, "SSN", model.KindColumn).Type = model.DTInt
	nm := nested.AddChild(c, "Name", model.KindElement)
	nested.AddChild(nm, "FirstName", model.KindColumn).Type = model.DTString
	nested.AddChild(nm, "LastName", model.KindColumn).Type = model.DTString
	ad := nested.AddChild(c, "Address", model.KindElement)
	nested.AddChild(ad, "Street", model.KindColumn).Type = model.DTString
	nested.AddChild(ad, "City", model.KindColumn).Type = model.DTString

	flat := model.New("Flat")
	f := flat.AddChild(flat.Root(), "Customer", model.KindTable)
	for _, col := range []string{"SSN", "FirstName", "LastName", "Street", "City"} {
		typ := model.DTString
		if col == "SSN" {
			typ = model.DTInt
		}
		flat.AddChild(f, col, model.KindColumn).Type = typ
	}

	ts, tt := mustTree(t, nested), mustTree(t, flat)
	lsim := lsimByName(ts, tt, nil)
	p := DefaultParams()
	res := TreeMatch(ts, tt, lsim, p)
	for _, name := range []string{"SSN", "FirstName", "LastName", "Street", "City"} {
		var sN, tN *schematree.Node
		for _, n := range ts.Nodes {
			if n.Name() == name {
				sN = n
			}
		}
		for _, n := range tt.Nodes {
			if n.Name() == name {
				tN = n
			}
		}
		if w := res.WSim.At(sN.Idx, tN.Idx); w < p.ThAccept {
			t.Errorf("nested/flat leaf %s wsim = %v below thaccept", name, w)
		}
	}
	// The two Customer nodes match despite different nesting.
	cs := ts.NodeByPath("Nested.Customer")
	cf := tt.NodeByPath("Flat.Customer")
	if w := res.WSim.At(cs.Idx, cf.Idx); w < p.ThAccept {
		t.Errorf("Customer/Customer wsim = %v below thaccept", w)
	}
}

func TestLeafCountPruning(t *testing.T) {
	s1 := model.New("A")
	big := s1.AddChild(s1.Root(), "Big", model.KindTable)
	for i := 0; i < 10; i++ {
		s1.AddChild(big, "c"+string(rune('0'+i)), model.KindColumn).Type = model.DTString
	}
	s2 := model.New("B")
	small := s2.AddChild(s2.Root(), "Small", model.KindTable)
	s2.AddChild(small, "c0", model.KindColumn).Type = model.DTString

	ts, tt := mustTree(t, s1), mustTree(t, s2)
	p := DefaultParams()
	res := TreeMatch(ts, tt, lsimByName(ts, tt, nil), p)
	if res.Pruned == 0 {
		t.Error("expected pruned pairs for 10:1 leaf-count ratio")
	}
	// Big vs Small was pruned: ssim 0.
	bN := ts.NodeByPath("A.Big")
	sN := tt.NodeByPath("B.Small")
	if res.SSim.At(bN.Idx, sN.Idx) != 0 {
		t.Errorf("pruned pair ssim = %v, want 0", res.SSim.At(bN.Idx, sN.Idx))
	}
	// Without pruning the pair is compared.
	p.LeafCountPruning = false
	res2 := TreeMatch(ts, tt, lsimByName(ts, tt, nil), p)
	if res2.Pruned != 0 {
		t.Error("pruning disabled but pairs pruned")
	}
	if res2.SSim.At(bN.Idx, sN.Idx) == 0 {
		t.Error("unpruned pair should have nonzero ssim (c0 links)")
	}
}

// TestOptionalDiscount: an optional unmatched leaf should not drag down
// its parent's structural similarity, while a required one should.
func TestOptionalDiscount(t *testing.T) {
	build := func(extraOptional bool) *model.Schema {
		s := model.New("S")
		tb := s.AddChild(s.Root(), "T", model.KindTable)
		s.AddChild(tb, "A", model.KindColumn).Type = model.DTString
		s.AddChild(tb, "B", model.KindColumn).Type = model.DTString
		x := s.AddChild(tb, "Extra", model.KindColumn)
		x.Type = model.DTString
		x.Optional = extraOptional
		return s
	}
	other := model.New("O")
	ob := other.AddChild(other.Root(), "T", model.KindTable)
	other.AddChild(ob, "A", model.KindColumn).Type = model.DTString
	other.AddChild(ob, "B", model.KindColumn).Type = model.DTString

	p := DefaultParams()
	p.LeafCountPruning = false

	tOpt := mustTree(t, build(true))
	tReq := mustTree(t, build(false))
	tOther := mustTree(t, other)

	// "Extra" has no counterpart; with lsim by name it gets no strong link.
	resOpt := TreeMatch(tOpt, tOther, lsimByName(tOpt, tOther, nil), p)
	resReq := TreeMatch(tReq, tOther, lsimByName(tReq, tOther, nil), p)

	sOpt := tOpt.NodeByPath("S.T")
	sReq := tReq.NodeByPath("S.T")
	oN := tOther.NodeByPath("O.T")
	if resOpt.SSim.At(sOpt.Idx, oN.Idx) <= resReq.SSim.At(sReq.Idx, oN.Idx) {
		t.Errorf("optional unmatched leaf should be discounted: opt=%v req=%v",
			resOpt.SSim.At(sOpt.Idx, oN.Idx), resReq.SSim.At(sReq.Idx, oN.Idx))
	}
	// With the discount the optional case is a perfect structural match.
	if resOpt.SSim.At(sOpt.Idx, oN.Idx) < 0.99 {
		t.Errorf("optional-discounted ssim = %v, want ~1", resOpt.SSim.At(sOpt.Idx, oN.Idx))
	}
}

// TestLazyMemoIdenticalResults: lazy expansion is an optimization only —
// results must match the eager computation bit for bit, and it must
// actually hit its memo on a schema with shared types.
func TestLazyMemoIdenticalResults(t *testing.T) {
	build := func() *model.Schema {
		s := model.New("PO")
		addr := s.AddChild(s.Root(), "Address", model.KindType)
		s.AddChild(addr, "Street", model.KindColumn).Type = model.DTString
		s.AddChild(addr, "City", model.KindColumn).Type = model.DTString
		s.AddChild(addr, "Zip", model.KindColumn).Type = model.DTString
		ship := s.AddChild(s.Root(), "ShipTo", model.KindElement)
		bill := s.AddChild(s.Root(), "BillTo", model.KindElement)
		if err := s.DeriveFrom(ship, addr); err != nil {
			t.Fatal(err)
		}
		if err := s.DeriveFrom(bill, addr); err != nil {
			t.Fatal(err)
		}
		return s
	}
	ts, tt := mustTree(t, build()), mustTree(t, build())
	lsim := lsimByName(ts, tt, nil)

	p := DefaultParams()
	p.LazyMemo = false
	eager := TreeMatch(ts, tt, lsim, p)
	p.LazyMemo = true
	lazy := TreeMatch(ts, tt, lsim, p)

	if lazy.MemoHits == 0 {
		t.Error("lazy run recorded no memo hits on duplicated subtrees")
	}
	for i := 0; i < eager.SSim.Rows(); i++ {
		for j := 0; j < eager.SSim.Cols(); j++ {
			if eager.SSim.At(i, j) != lazy.SSim.At(i, j) {
				t.Fatalf("ssim[%d][%d] differs: eager %v lazy %v",
					i, j, eager.SSim.At(i, j), lazy.SSim.At(i, j))
			}
			if eager.WSim.At(i, j) != lazy.WSim.At(i, j) {
				t.Fatalf("wsim[%d][%d] differs: eager %v lazy %v",
					i, j, eager.WSim.At(i, j), lazy.WSim.At(i, j))
			}
		}
	}
}

func TestBasisChildrenAblation(t *testing.T) {
	ts := mustTree(t, flatCustomer("S1"))
	tt := mustTree(t, flatCustomer("S2"))
	p := DefaultParams()
	p.StructuralBasis = BasisChildren
	res := TreeMatch(ts, tt, lsimByName(ts, tt, nil), p)
	cs := ts.NodeByPath("S1.Customer")
	ct := tt.NodeByPath("S2.Customer")
	if res.SSim.At(cs.Idx, ct.Idx) < 0.99 {
		t.Errorf("children-basis ssim(Customer,Customer) = %v", res.SSim.At(cs.Idx, ct.Idx))
	}
}

func TestFrontierDepthBasis(t *testing.T) {
	ts := mustTree(t, flatCustomer("S1"))
	tt := mustTree(t, flatCustomer("S2"))
	p := DefaultParams()
	p.FrontierDepth = 1
	res := TreeMatch(ts, tt, lsimByName(ts, tt, nil), p)
	cs := ts.NodeByPath("S1.Customer")
	ct := tt.NodeByPath("S2.Customer")
	if res.SSim.At(cs.Idx, ct.Idx) < 0.99 {
		t.Errorf("frontier-basis ssim = %v", res.SSim.At(cs.Idx, ct.Idx))
	}
}

func TestSecondPassRefreshesNonLeaves(t *testing.T) {
	ts := mustTree(t, flatCustomer("S1"))
	tt := mustTree(t, flatCustomer("S2"))
	lsim := lsimByName(ts, tt, nil)
	p := DefaultParams()
	res := TreeMatch(ts, tt, lsim, p)

	// Corrupt a non-leaf entry, run the second pass, verify recomputation.
	cs := ts.NodeByPath("S1.Customer")
	ct := tt.NodeByPath("S2.Customer")
	res.SSim.Set(cs.Idx, ct.Idx, 0.123)
	SecondPass(res, ts, tt, lsim, p)
	if res.SSim.At(cs.Idx, ct.Idx) < 0.99 {
		t.Errorf("second pass did not recompute: %v", res.SSim.At(cs.Idx, ct.Idx))
	}
}

// All similarities stay within [0,1] even with aggressive increase factors.
func TestBounds(t *testing.T) {
	ts := mustTree(t, flatCustomer("S1"))
	tt := mustTree(t, flatCustomer("S2"))
	p := DefaultParams()
	p.CInc = 3.0
	res := TreeMatch(ts, tt, lsimByName(ts, tt, nil), p)
	for i := 0; i < res.SSim.Rows(); i++ {
		for j := 0; j < res.SSim.Cols(); j++ {
			if res.SSim.At(i, j) < 0 || res.SSim.At(i, j) > 1 {
				t.Fatalf("ssim out of range: %v", res.SSim.At(i, j))
			}
			if res.WSim.At(i, j) < 0 || res.WSim.At(i, j) > 1 {
				t.Fatalf("wsim out of range: %v", res.WSim.At(i, j))
			}
		}
	}
}

// Determinism: two runs produce identical matrices.
func TestDeterminism(t *testing.T) {
	ts := mustTree(t, flatCustomer("S1"))
	tt := mustTree(t, flatCustomer("S2"))
	lsim := lsimByName(ts, tt, nil)
	a := TreeMatch(ts, tt, lsim, DefaultParams())
	b := TreeMatch(ts, tt, lsim, DefaultParams())
	for i := 0; i < a.WSim.Rows(); i++ {
		for j := 0; j < a.WSim.Cols(); j++ {
			if a.WSim.At(i, j) != b.WSim.At(i, j) {
				t.Fatalf("nondeterministic wsim at %d,%d", i, j)
			}
		}
	}
}
