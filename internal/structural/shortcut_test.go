package structural

import (
	"testing"

	"repro/internal/model"
)

// TestChildrenShortcutOnIdenticalSchemas: the §8.4 fast path fires on
// nearly identical schemas and the resulting leaf mapping quality is
// preserved (every namesake leaf still acceptable).
func TestChildrenShortcutOnIdenticalSchemas(t *testing.T) {
	build := func(name string) *model.Schema {
		s := model.New(name)
		for _, tbl := range []string{"Customers", "Orders", "Products"} {
			tb := s.AddChild(s.Root(), tbl, model.KindTable)
			for _, col := range []string{"ID", "Name", "Code", "Value"} {
				c := s.AddChild(tb, tbl+col, model.KindColumn)
				c.Type = model.DTString
			}
		}
		return s
	}
	ts := mustTree(t, build("A"))
	tt := mustTree(t, build("B"))
	lsim := lsimByName(ts, tt, nil)

	p := DefaultParams()
	p.ChildrenShortcut = true
	res := TreeMatch(ts, tt, lsim, p)
	if res.Shortcuts == 0 {
		t.Error("shortcut never fired on identical schemas")
	}
	// Leaf quality preserved: every namesake leaf pair acceptable.
	for _, si := range ts.Leaves(ts.Root) {
		for _, ti := range tt.Leaves(tt.Root) {
			if ts.Nodes[si].Name() == tt.Nodes[ti].Name() {
				if w := res.WSim.At(si, ti); w < p.ThAccept {
					t.Errorf("leaf %s wsim = %v below thaccept with shortcut",
						ts.Nodes[si].Name(), w)
				}
			}
		}
	}
	// Root pair similarity remains high.
	if v := res.SSim.At(ts.Root.Idx, tt.Root.Idx); v < 0.9 {
		t.Errorf("root ssim with shortcut = %v", v)
	}
}

func TestChildrenShortcutOffByDefault(t *testing.T) {
	ts := mustTree(t, flatCustomer("S1"))
	tt := mustTree(t, flatCustomer("S2"))
	res := TreeMatch(ts, tt, lsimByName(ts, tt, nil), DefaultParams())
	if res.Shortcuts != 0 {
		t.Error("shortcut fired with the flag off")
	}
}

func TestChildrenShortcutNotOnDissimilar(t *testing.T) {
	// Dissimilar children should not take the fast path.
	s1 := model.New("A")
	t1 := s1.AddChild(s1.Root(), "T", model.KindTable)
	s1.AddChild(t1, "Alpha", model.KindColumn).Type = model.DTString
	s1.AddChild(t1, "Beta", model.KindColumn).Type = model.DTString
	s2 := model.New("B")
	t2 := s2.AddChild(s2.Root(), "T", model.KindTable)
	s2.AddChild(t2, "Gamma", model.KindColumn).Type = model.DTInt
	s2.AddChild(t2, "Delta", model.KindColumn).Type = model.DTInt

	ts, tt := mustTree(t, s1), mustTree(t, s2)
	p := DefaultParams()
	p.ChildrenShortcut = true
	res := TreeMatch(ts, tt, lsimByName(ts, tt, nil), p)
	n1 := ts.NodeByPath("A.T")
	n2 := tt.NodeByPath("B.T")
	if res.SSim.At(n1.Idx, n2.Idx) >= 0.9 {
		t.Errorf("dissimilar tables got shortcut-level ssim %v", res.SSim.At(n1.Idx, n2.Idx))
	}
}
