package structural

import (
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/schematree"
)

// Result holds the similarity matrices computed by TreeMatch, indexed by
// the post-order indexes of the source and target trees.
type Result struct {
	// SSim is the structural similarity; leaf entries start from the
	// data-type compatibility table and are mutated by the increase /
	// decrease steps.
	SSim matrix.Matrix
	// WSim is the weighted similarity wsim = wstruct·ssim + (1−wstruct)·lsim.
	// After TreeMatch returns, leaf entries reflect the final leaf ssim;
	// non-leaf entries are as of their (single) visit — call SecondPass to
	// recompute them for non-leaf mapping generation (paper §7).
	WSim matrix.Matrix

	// Stats.
	Comparisons int // node pairs fully compared
	Pruned      int // node pairs skipped by leaf-count pruning
	MemoHits    int // lazy-expansion reuses
	Shortcuts   int // children-shortcut fast paths taken (§8.4)
}

type matcher struct {
	ts, tt *schematree.Tree
	lsim   matrix.Matrix
	p      Params
	compat *CompatTable
	res    *Result

	// touched marks leaves whose ssim was modified by increase/decrease;
	// the lazy memo is only valid for untouched subtrees.
	touchedS []bool
	touchedT []bool
	links    *linkIndex
	memo     map[[2]string]float64
	// frontier caches the descendant basis per node.
	frontS, frontT [][]int
}

// TreeMatch runs the algorithm of Figure 3 over two expanded schema trees.
// lsim must be indexed by node post-order indexes ([sIdx][tIdx]); the core
// package derives it from element-level linguistic similarity. The
// parameter set p should satisfy p.Validate().
func TreeMatch(ts, tt *schematree.Tree, lsim matrix.Matrix, p Params) *Result {
	m := &matcher{ts: ts, tt: tt, lsim: lsim, p: p, compat: p.Compat}
	if m.compat == nil {
		m.compat = DefaultCompat()
	}
	ns, nt := ts.Len(), tt.Len()
	m.res = &Result{SSim: matrix.New(ns, nt), WSim: matrix.New(ns, nt)}
	m.touchedS = make([]bool, ns)
	m.touchedT = make([]bool, nt)
	// The lazy memo's copy-invariance argument holds for the leaf basis
	// only (frontier and children bases include non-leaf cells whose
	// values are not copy-invariant), so it is disabled otherwise.
	if p.LazyMemo && p.StructuralBasis == BasisLeaves && p.FrontierDepth == 0 {
		m.memo = map[[2]string]float64{}
	}
	// The bitset index likewise applies only to the leaf basis.
	if p.FastStrongLinks && p.StructuralBasis == BasisLeaves && p.FrontierDepth == 0 {
		m.links = newLinkIndex(ts, tt)
	}
	m.frontS = make([][]int, ns)
	m.frontT = make([][]int, nt)
	for _, n := range ts.Nodes {
		m.frontS[n.Idx] = m.basis(ts, n)
	}
	for _, n := range tt.Nodes {
		m.frontT[n.Idx] = m.basis(tt, n)
	}

	// Phase 1: initialize leaf structural similarity from the data-type
	// compatibility table (value in [0, 0.5]). Embarrassingly parallel:
	// each source leaf owns its matrix row, the compat table is read-only.
	srcLeaves := ts.Leaves(ts.Root)
	tgtLeaves := tt.Leaves(tt.Root)
	par.For(len(srcLeaves), func(i int) {
		si := srcLeaves[i]
		se := ts.Nodes[si].Elem
		row := m.res.SSim.Row(si)
		for _, ti := range tgtLeaves {
			te := tt.Nodes[ti].Elem
			if p.LeafCompat != nil {
				if v, ok := p.LeafCompat(se, te); ok {
					row[ti] = v
					continue
				}
			}
			row[ti] = m.compat.Lookup(se.Type, te.Type)
		}
	})

	// Populate the strong-link index from the initialized leaf values.
	m.reindexLinks()

	// Phase 2: post-order sweep over all node pairs. Sequential by design:
	// the increase/decrease steps make later comparisons depend on earlier
	// ones, so this is where the paper's order semantics live.
	for _, s := range ts.Nodes {
		for _, t := range tt.Nodes {
			m.compare(s, t)
		}
	}

	// Refresh leaf wsim entries: increase/decrease steps after a leaf
	// pair's visit may have changed its ssim. Also embarrassingly parallel
	// (reads final ssim/lsim, writes disjoint wsim rows).
	par.For(len(srcLeaves), func(i int) {
		si := srcLeaves[i]
		wRow := m.res.WSim.Row(si)
		for _, ti := range tgtLeaves {
			wRow[ti] = m.wsimLeaf(si, ti)
		}
	})
	return m.res
}

// basis returns the descendant set that drives structural similarity for a
// node: its leaves (default), its depth-k frontier, or its immediate
// children (ablation). For a leaf it is the node itself.
func (m *matcher) basis(tr *schematree.Tree, n *schematree.Node) []int {
	if n.IsLeaf() {
		return []int{n.Idx}
	}
	switch {
	case m.p.StructuralBasis == BasisChildren:
		out := make([]int, len(n.Children))
		for i, c := range n.Children {
			out[i] = c.Idx
		}
		return out
	case m.p.FrontierDepth > 0:
		return tr.Frontier(n, m.p.FrontierDepth)
	}
	return tr.Leaves(n)
}

// wsimLeaf computes the current weighted similarity of a leaf (or
// pseudo-leaf basis node) pair from live ssim.
func (m *matcher) wsimLeaf(si, ti int) float64 {
	w := m.p.WStructLeaf
	return w*m.res.SSim.At(si, ti) + (1-w)*m.lsim.At(si, ti)
}

// strongLink reports whether basis nodes x,y currently have a strong link:
// weighted similarity at or above ThAccept (paper §6).
func (m *matcher) strongLink(xi, yi int) bool {
	return m.wsimLeaf(xi, yi) >= m.p.ThAccept
}

// compare processes one (s,t) pair of the post-order sweep.
func (m *matcher) compare(s, t *schematree.Node) {
	bothLeaves := s.IsLeaf() && t.IsLeaf()
	ls, lt := m.frontS[s.Idx], m.frontT[t.Idx]

	if !bothLeaves && m.p.LeafCountPruning {
		a, b := len(ls), len(lt)
		if a > b {
			a, b = b, a
		}
		if float64(b) > m.p.LeafCountRatio*float64(a) {
			m.res.Pruned++
			// Not compared: ssim stays 0, wsim records the linguistic part
			// only, no increase/decrease.
			m.res.WSim.Set(s.Idx, t.Idx, (1-m.p.WStruct)*m.lsim.At(s.Idx, t.Idx))
			return
		}
	}
	m.res.Comparisons++

	var ssim, w float64
	if bothLeaves {
		ssim = m.res.SSim.At(s.Idx, t.Idx) // initialized from the compat table
		w = m.p.WStructLeaf
	} else {
		ssim = m.structuralSim(s, t, ls, lt)
		m.res.SSim.Set(s.Idx, t.Idx, ssim)
		w = m.p.WStruct
	}
	wsim := w*ssim + (1-w)*m.lsim.At(s.Idx, t.Idx)
	m.res.WSim.Set(s.Idx, t.Idx, wsim)

	// Increase/decrease applies only to comparisons involving a non-leaf:
	// the paper's rationale is ancestor context ("leaves with highly
	// similar ancestors occur in similar contexts"), and a leaf pair is
	// not its own ancestor — letting leaf pairs adjust themselves would
	// decay every pure-structural match (zero lsim, compatible types)
	// below rescue before any ancestor is compared.
	if !bothLeaves {
		switch {
		case wsim > m.p.ThHigh:
			m.adjustLeaves(s, t, m.p.CInc)
		case wsim < m.p.ThLow:
			m.adjustLeaves(s, t, m.p.CDec)
		}
	}
}

// structuralSim estimates ssim(s,t) as the fraction of basis nodes in the
// two subtrees that have at least one strong link into the other subtree.
// With OptionalDiscount, optional leaves lacking a strong link are dropped
// from both numerator and denominator (§8.4).
func (m *matcher) structuralSim(s, t *schematree.Node, ls, lt []int) float64 {
	if m.memo != nil {
		if v, ok := m.memoLookup(s, t, ls, lt); ok {
			m.res.MemoHits++
			return v
		}
	}
	if m.p.ChildrenShortcut && !s.IsLeaf() && !t.IsLeaf() {
		if v, ok := m.childrenShortcut(s, t); ok {
			m.res.Shortcuts++
			return v
		}
	}
	linked := 0
	total := 0
	var sLo, sHi, tLo, tHi int
	if m.links != nil {
		sLo, sHi = leafRange(m.links, m.links.posS, ls)
		tLo, tHi = leafRange(m.links, m.links.posT, lt)
	}
	count := func(from []int, to []int, fromTree int, anchor *schematree.Node) {
		for _, xi := range from {
			var has bool
			switch {
			case m.links != nil && fromTree == 0:
				has = m.links.sourceHasLink(xi, tLo, tHi)
			case m.links != nil:
				has = m.links.targetHasLink(xi, sLo, sHi)
			case fromTree == 0:
				for _, yi := range to {
					if m.strongLink(xi, yi) {
						has = true
						break
					}
				}
			default:
				for _, yi := range to {
					if m.strongLink(yi, xi) {
						has = true
						break
					}
				}
			}
			if has {
				linked++
				total++
				continue
			}
			if m.p.OptionalDiscount && m.isOptionalBasis(fromTree, xi, anchor) {
				continue // dropped from numerator and denominator
			}
			total++
		}
	}
	count(ls, lt, 0, s)
	count(lt, ls, 1, t)
	var v float64
	if total > 0 {
		v = float64(linked) / float64(total)
	}
	if m.memo != nil {
		m.memoStore(s, t, ls, lt, v)
	}
	return v
}

// childrenShortcut compares the immediate children of two non-leaf nodes
// using their already-computed weighted similarities (post-order
// guarantees children were visited first). When the linked fraction is a
// very good match, it stands in for the leaf-level computation (§8.4:
// "While comparing nearly identical schemas, it might seem wasteful to
// compare the leaves ... If a very good match is detected, then the leaf
// level similarity computation is skipped").
func (m *matcher) childrenShortcut(s, t *schematree.Node) (float64, bool) {
	th := m.p.ShortcutThreshold
	if th == 0 {
		th = 0.95
	}
	linked := 0
	total := len(s.Children) + len(t.Children)
	if total == 0 {
		return 0, false
	}
	for _, cs := range s.Children {
		for _, ct := range t.Children {
			if m.res.WSim.At(cs.Idx, ct.Idx) >= m.p.ThAccept {
				linked++
				break
			}
		}
	}
	for _, ct := range t.Children {
		for _, cs := range s.Children {
			if m.res.WSim.At(cs.Idx, ct.Idx) >= m.p.ThAccept {
				linked++
				break
			}
		}
	}
	v := float64(linked) / float64(total)
	if v >= th {
		return v, true
	}
	return 0, false
}

// isOptionalBasis reports whether basis node xi (in tree fromTree: 0 =
// source, 1 = target) is optional relative to the compared ancestor.
func (m *matcher) isOptionalBasis(fromTree, xi int, anchor *schematree.Node) bool {
	var n *schematree.Node
	if fromTree == 0 {
		n = m.ts.Nodes[xi]
	} else {
		n = m.tt.Nodes[xi]
	}
	return n.IsLeaf() && n.OptionalRelativeTo(anchor)
}

// adjustLeaves multiplies the structural similarity of every leaf pair
// under (s,t) by factor, clamped to [0,1], records the touched leaves for
// lazy-memo invalidation, and keeps the strong-link index exact.
func (m *matcher) adjustLeaves(s, t *schematree.Node, factor float64) {
	for _, xi := range m.ts.Leaves(s) {
		for _, yi := range m.tt.Leaves(t) {
			v := m.res.SSim.At(xi, yi) * factor
			if v > 1 {
				v = 1
			}
			m.res.SSim.Set(xi, yi, v)
			m.touchedS[xi] = true
			m.touchedT[yi] = true
			if m.links != nil {
				m.links.set(xi, yi, m.strongLink(xi, yi))
			}
		}
	}
}

// reindexLinks rebuilds the strong-link index from the current leaf wsim
// values (used after leaf initialization and by SecondPass).
func (m *matcher) reindexLinks() {
	if m.links == nil {
		return
	}
	for _, xi := range m.ts.Leaves(m.ts.Root) {
		for _, yi := range m.tt.Leaves(m.tt.Root) {
			m.links.set(xi, yi, m.strongLink(xi, yi))
		}
	}
}

// --- lazy-expansion memoization (§8.4) --------------------------------
//
// Context copies created by type substitution or join views duplicate
// subtrees; comparing two such duplicates repeats the exact computation as
// long as none of the involved leaves has been touched by an
// increase/decrease step (the paper's argument for lazy expansion: at
// first comparison, similarity depends only on the subtrees). The memo key
// is the canonical identity of the basis leaves — a copy's leaf
// canonicalizes to the first materialized node of the same element — so
// ssim(ShipTo, BillTo') is computed once no matter how many contexts the
// shared type was expanded into. This assumes node-level lsim is
// context-independent, which holds for Cupid: lsim is computed per schema
// element and inherited by every context copy.

func canonical(tr *schematree.Tree, idx int) int {
	n := tr.Nodes[idx]
	if n.CopyOf != nil {
		return n.CopyOf.Idx
	}
	return idx
}

// sig builds the canonical signature of a basis set within one tree.
func sig(tr *schematree.Tree, basis []int) string {
	b := make([]byte, 0, 4*len(basis))
	for _, i := range basis {
		c := canonical(tr, i)
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(b)
}

func (m *matcher) untouched(fromTree int, basis []int) bool {
	touched := m.touchedS
	if fromTree == 1 {
		touched = m.touchedT
	}
	for _, i := range basis {
		if touched[i] {
			return false
		}
	}
	return true
}

func (m *matcher) memoLookup(s, t *schematree.Node, ls, lt []int) (float64, bool) {
	if !m.untouched(0, ls) || !m.untouched(1, lt) {
		return 0, false
	}
	v, ok := m.memo[[2]string{sig(m.ts, ls), sig(m.tt, lt)}]
	return v, ok
}

func (m *matcher) memoStore(s, t *schematree.Node, ls, lt []int, v float64) {
	if m.untouched(0, ls) && m.untouched(1, lt) {
		m.memo[[2]string{sig(m.ts, ls), sig(m.tt, lt)}] = v
	}
}

// SecondPass re-computes the structural and weighted similarity of
// non-leaf pairs from the final leaf similarities (paper §7: the updating
// of leaf similarities during tree match may affect the structural
// similarity of non-leaf nodes after they were first calculated). No
// increase/decrease steps run during the second pass.
func SecondPass(res *Result, ts, tt *schematree.Tree, lsim matrix.Matrix, p Params) {
	m := &matcher{ts: ts, tt: tt, lsim: lsim, p: p, compat: p.Compat, res: res}
	if m.compat == nil {
		m.compat = DefaultCompat()
	}
	m.touchedS = make([]bool, ts.Len())
	m.touchedT = make([]bool, tt.Len())
	m.frontS = make([][]int, ts.Len())
	m.frontT = make([][]int, tt.Len())
	for _, n := range ts.Nodes {
		m.frontS[n.Idx] = m.basis(ts, n)
	}
	for _, n := range tt.Nodes {
		m.frontT[n.Idx] = m.basis(tt, n)
	}
	if p.FastStrongLinks && p.StructuralBasis == BasisLeaves && p.FrontierDepth == 0 {
		m.links = newLinkIndex(ts, tt)
		m.reindexLinks()
	}
	for _, s := range ts.Nodes {
		for _, t := range tt.Nodes {
			if s.IsLeaf() && t.IsLeaf() {
				continue
			}
			ls, lt := m.frontS[s.Idx], m.frontT[t.Idx]
			if m.p.LeafCountPruning {
				a, b := len(ls), len(lt)
				if a > b {
					a, b = b, a
				}
				if float64(b) > m.p.LeafCountRatio*float64(a) {
					continue
				}
			}
			ssim := m.structuralSim(s, t, ls, lt)
			res.SSim.Set(s.Idx, t.Idx, ssim)
			res.WSim.Set(s.Idx, t.Idx, p.WStruct*ssim+(1-p.WStruct)*lsim.At(s.Idx, t.Idx))
		}
	}
}
